#include "planner/cost_model.h"

#include <algorithm>
#include <sstream>

#include "core/load_planner.h"
#include "lp/covers.h"
#include "mpc/hypercube.h"
#include "query/decomposition.h"
#include "query/join_tree.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace coverpack {
namespace planner {

namespace {

/// Saturation bound shared with the join-order DP's cardinality cap.
constexpr uint64_t kLoadCap = uint64_t{1} << 60;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return (a > kLoadCap - std::min(b, kLoadCap)) ? kLoadCap : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kLoadCap / b) return kLoadCap;
  return a * b;
}

uint64_t TickCost(uint32_t rounds, uint64_t load) {
  return uint64_t{rounds} * kPlannerRoundLatencyTicks +
         CeilDiv(load, kPlannerTuplesPerTick);
}

/// One-round estimate: the size-aware share optimizer's expected
/// per-server receive volume, plus the residual load of the heaviest
/// value of every sharded attribute (the skew-aware split spreads a heavy
/// value of relation e over every dimension of e's grid slice except the
/// skewed one).
CostEstimate EstimateOneRound(const Hypergraph& query, uint32_t p,
                              const StatsSnapshot& stats) {
  CostEstimate est;
  est.algorithm = Algorithm::kOneRound;
  est.applicable = true;
  const mpc::ShareVector shares =
      mpc::OptimizeSharesForSizes(query, stats.RelationSizes(), p);
  uint64_t uniform = 0;
  uint64_t skew = 0;
  for (EdgeId e = 0; e < query.num_edges(); ++e) {
    const RelationStats& relation = stats.relations[e];
    uint64_t cell_divisor = 1;
    for (AttrId x : query.edge(e).attrs.ToVector()) {
      cell_divisor = SatMul(cell_divisor, shares.shares[x]);
    }
    uniform = SatAdd(uniform, CeilDiv(relation.rows, cell_divisor));
    for (AttrId x : query.edge(e).attrs.ToVector()) {
      if (shares.shares[x] <= 1) continue;
      const uint64_t other_dims = std::max<uint64_t>(1, cell_divisor / shares.shares[x]);
      skew = std::max(skew, CeilDiv(relation.ColumnFor(x).max_degree, other_dims));
    }
  }
  est.est_load = std::max(uniform, skew);
  est.est_rounds = 1;
  est.est_cost_ticks = TickCost(est.est_rounds, est.est_load);
  std::ostringstream detail;
  detail << "grid=" << shares.grid_size << " uniform=" << uniform << " skew=" << skew;
  est.detail = detail.str();
  return est;
}

/// Theorem 5 estimate: the Theorem 4 threshold from the stats' sizes
/// (identical to the executor's PlanLoadOptimal), floored by the scatter
/// round's N_total/p.
CostEstimate EstimateAcyclic(const Hypergraph& query, uint32_t p,
                             const StatsSnapshot& stats, const LpNumbers& lp,
                             uint64_t threshold) {
  CostEstimate est;
  est.algorithm = Algorithm::kAcyclicMultiRound;
  est.applicable = lp.acyclic;
  if (!est.applicable) return est;
  const uint64_t scatter = CeilDiv(stats.total_rows, uint64_t{p});
  est.est_load = std::max(threshold, scatter);
  est.est_rounds = 2 + query.num_edges();
  est.est_cost_ticks = TickCost(est.est_rounds, est.est_load);
  std::ostringstream detail;
  detail << "L=" << threshold << " scatter=" << scatter;
  est.detail = detail.str();
  return est;
}

/// Output-balanced estimate: input slice N_total/p plus the output share
/// OUT/p, floored by the heaviest root-tuple extension group (the
/// implementation never splits one root tuple's extensions).
CostEstimate EstimateOutputBalanced(const Hypergraph& query, uint32_t p,
                                    const StatsSnapshot& stats, const LpNumbers& lp,
                                    const JoinOrderPlan& dp) {
  CostEstimate est;
  est.algorithm = Algorithm::kOutputBalanced;
  est.applicable = lp.acyclic && lp.join_tree_roots == 1;
  if (!est.applicable) return est;
  uint64_t heavy_group = 1;
  const auto tree = JoinTree::Build(query);
  CP_CHECK(tree.has_value());
  for (uint32_t node = 0; node < tree->num_nodes(); ++node) {
    if (tree->IsRoot(node)) continue;
    const AttrSet shared = query.edge(node).attrs.Intersect(
        query.edge(tree->parent(node)).attrs);
    // Extensions per parent tuple: the child's heaviest join-key degree,
    // taking the tightest shared attribute (all must match).
    uint64_t factor = kLoadCap;
    for (AttrId x : shared.ToVector()) {
      factor = std::min(factor, stats.relations[node].ColumnFor(x).max_degree);
    }
    if (shared.empty()) factor = std::max<uint64_t>(1, stats.relations[node].rows);
    heavy_group = SatMul(heavy_group, std::max<uint64_t>(1, factor));
  }
  // One root tuple's extension group can never exceed the whole output, so
  // the degree product (wildly pessimistic under skew — every max degree
  // rarely stacks on one tuple) is capped by the DP's OUT estimate.
  heavy_group = std::min(heavy_group, std::max<uint64_t>(1, dp.out_estimate));
  const uint64_t input_slice = CeilDiv(stats.total_rows, uint64_t{p});
  const uint64_t out_slice = CeilDiv(dp.out_estimate, uint64_t{p});
  est.est_load = SatAdd(input_slice, std::max(out_slice, heavy_group));
  est.est_rounds = 5;  // 3 semi-join reduction rounds + weights + slices
  est.est_cost_ticks = TickCost(est.est_rounds, est.est_load);
  std::ostringstream detail;
  detail << "OUT~" << dp.out_estimate << " in/p=" << input_slice
         << " out/p=" << out_slice << " heavy_group=" << heavy_group;
  est.detail = detail.str();
  return est;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kOneRound: return "one_round";
    case Algorithm::kAcyclicMultiRound: return "acyclic";
    case Algorithm::kOutputBalanced: return "output_balanced";
  }
  return "unknown";
}

LpNumbers ComputeLpNumbers(const Hypergraph& query) {
  LpNumbers lp;
  lp.rho_star = RhoStar(query);
  lp.tau_star = TauStar(query);
  lp.psi_star = EdgeQuasiPackingNumber(query);
  const auto tree = JoinTree::Build(query);
  lp.acyclic = tree.has_value();
  lp.join_tree_roots = lp.acyclic ? static_cast<uint32_t>(tree->Roots().size()) : 0;
  return lp;
}

const CostEstimate& CostTable::ForAlgorithm(Algorithm algorithm) const {
  return entries[static_cast<size_t>(algorithm)];
}

std::string CostTable::ToString() const {
  std::ostringstream out;
  out << "thm5_threshold=" << thm5_threshold << " OUT~" << join_order.out_estimate
      << " C_out~" << join_order.c_out << " order=" << join_order.order << "\n";
  for (const CostEstimate& est : entries) {
    out << "  " << AlgorithmName(est.algorithm)
        << (est.applicable ? "" : " [inapplicable]")
        << (est.applicable && !est.exponent_safe ? " [exponent-unsafe]" : "");
    if (est.applicable) {
      out << " load~" << est.est_load << " rounds~" << est.est_rounds << " ticks~"
          << est.est_cost_ticks << " (" << est.detail << ")";
    }
    out << "\n";
  }
  return out.str();
}

uint64_t EstimateOptimalThreshold(const Hypergraph& query, const StatsSnapshot& stats,
                                  uint32_t p) {
  uint64_t best = 1;
  for (EdgeSet s : SFamily(query)) {
    if (s.empty()) continue;
    long double product = 1.0L;
    for (EdgeId e : s.ToVector()) {
      product *= static_cast<long double>(stats.relations[e].rows);
    }
    best = std::max(best, RatioRoot(product, p, s.size()));
  }
  return best;
}

CostTable EstimateCosts(const Hypergraph& query, uint32_t p, const StatsSnapshot& stats,
                        const LpNumbers& lp) {
  CP_CHECK_GE(p, 1u);
  CP_CHECK_EQ(stats.relations.size(), query.num_edges());
  CostTable table;
  table.join_order = PlanJoinOrder(query, stats);
  table.thm5_threshold = lp.acyclic ? EstimateOptimalThreshold(query, stats, p) : 0;

  CostEstimate one_round = EstimateOneRound(query, p, stats);
  CostEstimate acyclic = EstimateAcyclic(query, p, stats, lp, table.thm5_threshold);
  CostEstimate balanced =
      EstimateOutputBalanced(query, p, stats, lp, table.join_order);

  // Exponent guards (see the header): Theorem 5 is the yardstick whenever
  // the query is acyclic.
  acyclic.exponent_safe = acyclic.applicable;
  one_round.exponent_safe = !lp.acyclic || lp.psi_star == lp.rho_star;
  balanced.exponent_safe =
      balanced.applicable && acyclic.applicable &&
      balanced.est_load <= SatMul(kOutputBalancedSlack,
                                  std::max<uint64_t>(1, acyclic.est_load));

  table.entries = {one_round, acyclic, balanced};
  return table;
}

}  // namespace planner
}  // namespace coverpack
