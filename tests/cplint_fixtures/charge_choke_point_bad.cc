// cplint fixture: charges the load tracker outside mpc/exchange.cc.
void Leak(LoadTracker& tracker, uint32_t round, uint32_t server, uint64_t n) {
  tracker.Add(round, server, n);
}
void LeakViaAccessor(Cluster* cluster, uint32_t round, uint32_t server, uint64_t n) {
  cluster->tracker().Add(round, server, n);
}
