/// \file thm5_random_queries.cc
/// \brief Generalization check for Theorem 5: the fitted load exponent
/// matches -1/rho* not just on the catalog queries but on randomly
/// generated alpha-acyclic shapes.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "query/join_tree.h"
#include "workload/generators.h"
#include "workload/random_queries.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunThm5RandomQueries(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  std::vector<uint32_t> ps{16, 64, 256, 1024};
  TablePrinter table({"seed", "query", "rho*", "fitted", "theory", "match"});
  uint32_t matches = 0;
  uint32_t total = 0;
  report.AddParam("seeds", uint64_t{10});
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(ExperimentSeed(seed * 48271));
    workload::RandomAcyclicOptions options;
    options.min_edges = 3;
    options.max_edges = 6;
    Hypergraph q = workload::RandomAcyclicQuery(&rng, options);
    Rational rho = RhoStar(q);
    double theory = -1.0 / rho.ToDouble();
    // Size N by query weight so the sweep stays fast.
    uint64_t n = rho >= Rational(4) ? 2000 : 8000;
    Instance instance = workload::MatchingInstance(q, n);

    std::vector<double> xs;
    std::vector<double> ys;
    for (uint32_t p : ps) {
      AcyclicRunOptions run_options;
      run_options.collect = false;
      run_options.p = p;
      AcyclicRunResult run = ComputeAcyclicJoin(q, instance, run_options);
      if (p == ps.back()) {
        ProfileRun(report, "seed" + std::to_string(seed) + "/p" + std::to_string(p),
                   run.load_tracker);
      }
      xs.push_back(p);
      ys.push_back(static_cast<double>(run.max_load));
    }
    PowerLawFit fit = FitPowerLaw(xs, ys);
    bool ok = std::abs(fit.slope - theory) < 0.15;
    report.exponents.push_back(
        {"seed" + std::to_string(seed) + "/" + q.ToString(), fit.slope, theory, 0.15, ok});
    matches += ok;
    ++total;
    table.AddRow({std::to_string(seed), q.ToString(), rho.ToString(),
                  FormatDouble(fit.slope, 3), FormatDouble(theory, 3),
                  ok ? "MATCH" : "DEVIATION"});
  }
  table.Print(std::cout);
  std::cout << matches << "/" << total << " random acyclic queries match -1/rho*\n";
  report.metrics.AddCounter("random_queries_matched", matches);
  report.metrics.AddCounter("random_queries_total", total);
  bool ok = matches == total;
  FinishReport(report, ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
