// cplint fixture: a suppressed unordered iteration (commutative sum).
#include <unordered_map>

long Sum() {
  std::unordered_map<int, long> counts;
  long total = 0;
  // cplint: allow(no-unordered-iteration)
  for (const auto& [key, value] : counts) total += value;
  return total;
}
