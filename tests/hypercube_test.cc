#include "mpc/hypercube.h"

#include <gtest/gtest.h>

#include "lp/covers.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "relation/oracle.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

TEST(SharesTest, OptimalObjectiveIsInverseTauStar) {
  // The share LP's optimum equals 1/tau* by duality.
  for (const auto& entry : catalog::StandardRoster()) {
    mpc::ShareVector shares = mpc::OptimizeShares(entry.query, 64);
    EXPECT_EQ(shares.objective, TauStar(entry.query).Inverse()) << entry.name;
    EXPECT_LE(shares.grid_size, 64u) << entry.name;
  }
}

TEST(SharesTest, TriangleSharesSplitEvenly) {
  mpc::ShareVector shares = mpc::OptimizeShares(catalog::Triangle(), 64);
  // y = (1/3, 1/3, 1/3) -> shares 64^(1/3) = 4 each.
  EXPECT_EQ(shares.shares, (std::vector<uint32_t>{4, 4, 4}));
  EXPECT_EQ(shares.grid_size, 64u);
}

TEST(SharesTest, UniformSharesOverSubset) {
  Hypergraph q = catalog::Triangle();
  mpc::ShareVector shares = mpc::UniformShares(q, q.AllAttrs(), 27);
  EXPECT_EQ(shares.shares, (std::vector<uint32_t>{3, 3, 3}));
  EXPECT_EQ(shares.grid_size, 27u);
}

class HypercubeCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint32_t, uint64_t>> {};

/// HyperCube must emit exactly the oracle's join results, for any query
/// shape, server count, and seed.
TEST_P(HypercubeCorrectnessTest, MatchesOracle) {
  auto [text, p, seed] = GetParam();
  Hypergraph q = ParseQuery(text);
  Rng rng(seed);
  Instance instance = workload::UniformInstance(q, 80, 10, &rng);
  Cluster cluster(p);
  mpc::ShareVector shares = mpc::OptimizeShares(q, p);
  mpc::HypercubeResult result =
      mpc::HypercubeJoin(&cluster, q, instance, shares, 0, /*collect=*/true);
  Relation expected = GenericJoin(q, instance);
  EXPECT_EQ(result.output_count, expected.size()) << text;
  EXPECT_TRUE(result.results.Gather().SameContentAs(expected)) << text;
  EXPECT_EQ(result.max_receive_load, cluster.tracker().MaxLoad());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HypercubeCorrectnessTest,
    ::testing::Combine(::testing::Values("R1(A,B), R2(B,C), R3(C,A)",
                                         "R1(A,B), R2(B,C), R3(C,D)",
                                         "R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F)",
                                         "R1(A,B), R2(A,C), R3(A,D)"),
                       ::testing::Values(4u, 16u, 64u), ::testing::Values(3u, 17u)));

TEST(HypercubeTest, NoDuplicateEmissions) {
  // Each join result materializes on exactly one grid cell.
  Hypergraph q = catalog::Triangle();
  Rng rng(5);
  Instance instance = workload::UniformInstance(q, 60, 6, &rng);
  Cluster cluster(27);
  mpc::ShareVector shares = mpc::UniformShares(q, q.AllAttrs(), 27);
  mpc::HypercubeResult result =
      mpc::HypercubeJoin(&cluster, q, instance, shares, 0, /*collect=*/true);
  Relation gathered = result.results.Gather();
  size_t before = gathered.size();
  gathered.Dedup();
  EXPECT_EQ(gathered.size(), before);
}

TEST(HypercubeTest, MatchingInstanceLoadNearTheory) {
  // On a matching (skew-free) database the load should be close to
  // N / p^(1/tau*); certainly within a small constant of it.
  Hypergraph q = catalog::Triangle();
  uint64_t n = 4096;
  Instance instance = workload::MatchingInstance(q, n);
  uint32_t p = 64;
  Cluster cluster(p);
  mpc::ShareVector shares = mpc::OptimizeShares(q, p);
  mpc::HypercubeResult result =
      mpc::HypercubeJoin(&cluster, q, instance, shares, 0, /*collect=*/false);
  // tau* = 3/2 -> p^(2/3) = 16; theory load = 3 relations * N/16 per cell.
  double theory = 3.0 * static_cast<double>(n) / 16.0;
  EXPECT_LT(static_cast<double>(result.max_receive_load), 2.5 * theory);
  EXPECT_GT(static_cast<double>(result.max_receive_load), 0.3 * theory);
}

TEST(HypercubeTest, SkewDegradesLoad) {
  // A heavy-hitter instance forces one server to receive a constant
  // fraction of a relation: the weakness the multi-round algorithm fixes.
  Hypergraph q = catalog::SemiJoinExample();  // R1(A), R2(A,B), R3(B)
  uint64_t n = 2000;
  Instance skewed(q);
  skewed[0].AppendRow({0});
  for (Value v = 0; v < n; ++v) skewed[1].AppendRow({0, v});  // A=0 heavy
  for (Value v = 0; v < n; ++v) skewed[2].AppendRow({v});
  uint32_t p = 16;
  Cluster cluster(p);
  mpc::ShareVector shares = mpc::OptimizeShares(q, p);
  mpc::HypercubeResult result =
      mpc::HypercubeJoin(&cluster, q, skewed, shares, 0, /*collect=*/false);
  // All of R2 hashes to one coordinate of the A dimension.
  EXPECT_GE(result.max_receive_load, n / 4);
}

}  // namespace
}  // namespace coverpack
