/// Differential oracle for the plan chooser (ctest label: planner): over a
/// seeded corpus of ~60 queries, run *every* applicable algorithm of the
/// menu for real and check that the chooser's pick (a) lands within 10% of
/// the best measured bottleneck load on >= 95% of cases — with the best
/// floored at one balanced input share, since any pick at or below that
/// floor is as good as optimal — and (b) never loses the theoretical
/// exponent (<= 4x the best on *every* case). Any violation prints the
/// full repro: query, per-relation stats, cost table, and every measured
/// run, so a failure is replayable from the log alone.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "planner/differential.h"
#include "planner/plan_chooser.h"
#include "planner/stats.h"
#include "query/hypergraph.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace planner {
namespace {

// Same corpus family and accuracy knobs as the planner_ablation bench
// experiment. p = 32 puts the corpus sizes (n = 256..1024 rows/relation)
// in the regime where the algorithms' asymptotic differences dominate
// their data-dependent constants; at much larger p the heavy-value
// constant factors of the Zipf cases drown the signal the estimators can
// legitimately see (16-bucket histograms + max degrees).
constexpr uint64_t kCorpusSeed = 0x0D1FFE7E;
constexpr uint32_t kRandomCases = 50;  // + 10 fixed = 60 cases
constexpr uint32_t kServers = 32;
constexpr double kWithinSlack = 1.10;
constexpr double kWithinQuota = 0.95;
constexpr double kExponentSlack = 4.0;

class PlannerDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }

 private:
  unsigned saved_threads_ = 0;
};

TEST_F(PlannerDifferentialTest, ChooserTracksBestMeasuredLoadOverSeededCorpus) {
  const std::vector<DifferentialCase> corpus =
      BuildDifferentialCorpus(kCorpusSeed, kRandomCases);
  ASSERT_GE(corpus.size(), 60u);

  uint32_t within = 0;
  std::vector<std::string> misses;
  for (const DifferentialCase& c : corpus) {
    const DifferentialOutcome outcome = EvaluateCase(c.query, c.instance, kServers);
    ASSERT_FALSE(outcome.runs.empty()) << c.name;
    if (outcome.ChooserWithin(kWithinSlack)) {
      ++within;
    } else {
      misses.push_back(outcome.Repro(c.name, c.query, kServers));
    }
    // The hard guarantee: the pick never loses the theoretical exponent.
    EXPECT_TRUE(outcome.ChooserWithin(kExponentSlack))
        << outcome.Repro(c.name, c.query, kServers);
  }

  const double fraction = static_cast<double>(within) /
                          static_cast<double>(corpus.size());
  if (fraction < kWithinQuota) {
    for (const std::string& repro : misses) ADD_FAILURE() << repro;
  }
  EXPECT_GE(fraction, kWithinQuota)
      << within << "/" << corpus.size() << " cases within "
      << (kWithinSlack - 1.0) * 100 << "% of the best measured load";
}

TEST_F(PlannerDifferentialTest, ChosenAlgorithmAlwaysAppearsInTheMeasuredMenu) {
  // EvaluateCase CP_CHECKs this internally; here we assert the contract
  // explicitly over a smaller corpus so a regression names the case.
  const std::vector<DifferentialCase> corpus = BuildDifferentialCorpus(0xBEEF, 12);
  for (const DifferentialCase& c : corpus) {
    const DifferentialOutcome outcome = EvaluateCase(c.query, c.instance, kServers);
    bool found = false;
    for (const AlgorithmRun& run : outcome.runs) {
      if (run.algorithm == outcome.decision.algorithm) found = true;
    }
    EXPECT_TRUE(found) << outcome.Repro(c.name, c.query, kServers);
  }
}

TEST_F(PlannerDifferentialTest, DecisionsAreThreadCountInvariantOverCorpus) {
  // The chooser reads shard-parallel statistics; its decision digest must
  // not depend on how many threads built them.
  const std::vector<DifferentialCase> corpus = BuildDifferentialCorpus(0xC0FFEE, 8);
  std::vector<std::string> serial;
  ThreadPool::SetGlobalThreads(1);
  for (const DifferentialCase& c : corpus) {
    const StatsSnapshot stats = BuildStatsSnapshot(c.query, c.instance);
    serial.push_back(PlanChooser::Choose(c.query, kServers, stats).Digest());
  }
  ThreadPool::SetGlobalThreads(4);
  for (size_t i = 0; i < corpus.size(); ++i) {
    const StatsSnapshot stats =
        BuildStatsSnapshot(corpus[i].query, corpus[i].instance);
    const std::string digest =
        PlanChooser::Choose(corpus[i].query, kServers, stats).Digest();
    EXPECT_EQ(serial[i], digest) << corpus[i].name;
  }
}

}  // namespace
}  // namespace planner
}  // namespace coverpack
