/// \file generators.h
/// \brief Synthetic workload generators for tests and benchmarks.
///
/// Three regimes matter for the paper's story: *matching* (skew-free)
/// instances where one-round HyperCube is at its best, *skewed* (Zipf /
/// heavy-hitter) instances that defeat it, and *Cartesian-product*-shaped
/// relations used by all of the paper's hard instances.

#ifndef COVERPACK_WORKLOAD_GENERATORS_H_
#define COVERPACK_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "query/hypergraph.h"
#include "relation/instance.h"
#include "util/random.h"

namespace coverpack {
namespace workload {

/// `n` distinct uniform-random tuples with each attribute drawn from
/// [0, domain).
Relation UniformRandom(AttrSet attrs, size_t n, uint64_t domain, Rng* rng);

/// The matching (diagonal) relation: tuple i assigns value i to every
/// attribute; n tuples. Matching databases are the skew-free ideal of the
/// one-round literature.
Relation Matching(AttrSet attrs, size_t n);

/// Full Cartesian product over per-attribute domain sizes `dims` (ordered
/// by ascending AttrId). Size = prod(dims).
Relation Cartesian(AttrSet attrs, const std::vector<uint64_t>& dims);

/// `n` tuples where every attribute is drawn from a Zipf(skew) distribution
/// over [0, domain). skew = 0 is uniform; skew >= 1 is heavily skewed.
Relation Zipf(AttrSet attrs, size_t n, uint64_t domain, double skew, Rng* rng);

/// One-to-one mapping over two chosen attributes of the schema (pairs
/// (i, i)); other attributes are fixed to 0. Used by Example 3.4.
Relation OneToOne(AttrSet attrs, AttrId a, AttrId b, size_t n);

/// Instance builders applying one generator to every relation.
Instance UniformInstance(const Hypergraph& query, size_t n, uint64_t domain, Rng* rng);
Instance MatchingInstance(const Hypergraph& query, size_t n);
Instance ZipfInstance(const Hypergraph& query, size_t n, uint64_t domain, double skew, Rng* rng);

}  // namespace workload
}  // namespace coverpack

#endif  // COVERPACK_WORKLOAD_GENERATORS_H_
