// cplint fixture: a cost model that stamps plans with the host's wall
// clock. In src/planner/ this would leak host time into estimated ticks
// (and therefore plan decisions), so the chooser's decision digest could
// never be byte-diffed across thread counts or fault schedules.
#include <chrono>
#include <ctime>

struct CostProbe {
  long planned_at = 0;
  long epoch_seconds = 0;
};

CostProbe StampPlan() {
  CostProbe probe;
  probe.planned_at =
      std::chrono::system_clock::now().time_since_epoch().count();
  probe.epoch_seconds = time(nullptr);
  return probe;
}
