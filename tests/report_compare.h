/// \file report_compare.h
/// \brief Shared helpers for comparing RunReports and simulator state
/// bit-for-bit across test binaries (determinism, chaos/resilience).
///
/// Header-only on purpose: the test binaries that need these (cp_tests,
/// cp_determinism_tests, cp_chaos_tests) link different library sets, and
/// a tests-utility library would drag the bench registry into all of them.

#ifndef COVERPACK_TESTS_REPORT_COMPARE_H_
#define COVERPACK_TESTS_REPORT_COMPARE_H_

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>

#include "mpc/load_tracker.h"
#include "relation/relation.h"
#include "telemetry/run_report.h"

namespace coverpack {
namespace testutil {

inline std::string ReportJson(const telemetry::RunReport& report) {
  std::ostringstream out;
  report.ToJson().Write(out);
  return out.str();
}

/// Replaces every `"timers":{...}` subobject with `"timers":{}` — wall-clock
/// timer samples are the only report content allowed to differ between two
/// runs of the same experiment.
inline std::string MaskTimers(const std::string& json) {
  std::string out;
  const std::string key = "\"timers\":";
  size_t pos = 0;
  while (true) {
    size_t hit = json.find(key, pos);
    if (hit == std::string::npos) {
      out.append(json, pos, std::string::npos);
      break;
    }
    size_t brace = hit + key.size();
    while (brace < json.size() && json[brace] != '{') ++brace;
    int depth = 0;
    size_t end = brace;
    for (; end < json.size(); ++end) {
      if (json[end] == '{') {
        ++depth;
      } else if (json[end] == '}') {
        if (--depth == 0) {
          ++end;
          break;
        }
      }
    }
    out.append(json, pos, hit - pos);
    out += "\"timers\":{}";
    pos = end;
  }
  return out;
}

/// Removes every `"<prefix>...":<value>` member (and its adjacent comma)
/// from a report JSON string. Used to compare a fault-injected run against
/// a fault-free one: after stripping the "fault." / "recovery." ledger
/// keys, the two reports must be byte-identical.
inline std::string StripMetricsWithPrefix(const std::string& json,
                                          const std::string& prefix) {
  const std::string needle = "\"" + prefix;
  std::string out;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t hit = json.find(needle, pos);
    if (hit == std::string::npos) {
      out.append(json, pos, std::string::npos);
      break;
    }
    // Swallow the pretty-printing whitespace that introduces the member, so
    // removal leaves no blank line behind.
    size_t member_start = hit;
    while (member_start > pos && (json[member_start - 1] == ' ' || json[member_start - 1] == '\n' ||
                                  json[member_start - 1] == '\t' || json[member_start - 1] == '\r')) {
      --member_start;
    }
    out.append(json, pos, member_start - pos);
    // Skip the key string (metric keys contain no escapes) and the colon.
    size_t p = hit + 1;
    while (p < json.size() && json[p] != '"') ++p;
    ++p;
    while (p < json.size() && json[p] != ':') ++p;
    ++p;
    // Skip the value: a scalar, or a balanced {...}/[...] (histograms).
    int depth = 0;
    bool in_string = false;
    for (; p < json.size(); ++p) {
      char c = json[p];
      if (in_string) {
        if (c == '\\') {
          ++p;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (p < json.size() && json[p] == ',') {
      ++p;  // member had a successor: swallow the separating comma
    } else {
      // Last member of its object: drop the comma before it and keep the
      // whitespace that introduces the closing brace.
      while (p > 0 && (json[p - 1] == ' ' || json[p - 1] == '\n' || json[p - 1] == '\t' ||
                       json[p - 1] == '\r')) {
        --p;
      }
      if (!out.empty() && out.back() == ',') out.pop_back();
    }
    pos = p;
  }
  return out;
}

/// Strips the whole resilience ledger ("fault.*" and "recovery.*" keys).
inline std::string StripResilienceMetrics(const std::string& json) {
  return StripMetricsWithPrefix(StripMetricsWithPrefix(json, "fault."), "recovery.");
}

/// Strips the elastic-cluster ledger ("cluster.*" keys). Composed with
/// StripResilienceMetrics when diffing a cluster experiment's clean run
/// against a fault-injected one.
inline std::string StripClusterMetrics(const std::string& json) {
  return StripMetricsWithPrefix(json, "cluster.");
}

inline bool RelationsEqual(const Relation& a, const Relation& b) {
  if (!(a.attrs() == b.attrs()) || a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    auto ra = a.row(i), rb = b.row(i);
    for (size_t c = 0; c < ra.size(); ++c) {
      if (ra[c] != rb[c]) return false;
    }
  }
  return true;
}

inline bool TrackersEqual(const LoadTracker& a, const LoadTracker& b) {
  if (a.num_servers() != b.num_servers() || a.num_rounds() != b.num_rounds()) return false;
  for (uint32_t round = 0; round < a.num_rounds(); ++round) {
    for (uint32_t server = 0; server < a.num_servers(); ++server) {
      if (a.At(round, server) != b.At(round, server)) return false;
    }
  }
  return true;
}

}  // namespace testutil
}  // namespace coverpack

#endif  // COVERPACK_TESTS_REPORT_COMPARE_H_
