/// \file columnar_substrate_test.cc
/// \brief Tests for the columnar execution substrate: the arena scratch
/// allocator, the radix-partitioned grouped key index, key-equality
/// soundness under crafted 64-bit hash collisions, overflow guards on
/// Relation growth, and zero-width (nullary) relations through every new
/// columnar path.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "relation/join_index.h"
#include "relation/operators.h"
#include "relation/relation.h"
#include "util/arena.h"
#include "util/hash.h"

namespace coverpack {
namespace {

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  auto* a = arena.AllocateArray<uint64_t>(10);
  auto* b = arena.AllocateArray<uint32_t>(7);
  auto* c = arena.AllocateArray<uint64_t>(3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(uint64_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(uint32_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % alignof(uint64_t), 0u);
  for (int i = 0; i < 10; ++i) a[i] = 1;
  for (int i = 0; i < 7; ++i) b[i] = 2;
  for (int i = 0; i < 3; ++i) c[i] = 3;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a[i], 1u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(b[i], 2u);
  EXPECT_EQ(arena.used(), 10 * sizeof(uint64_t) + 7 * sizeof(uint32_t) + 3 * sizeof(uint64_t));
}

TEST(ArenaTest, ResetKeepsPagesAndRewindsUsage) {
  Arena arena;
  arena.AllocateArray<char>(1 << 18);  // forces past the first 64 KiB page
  size_t pages = arena.num_pages();
  size_t reserved = arena.reserved();
  EXPECT_GE(pages, 1u);
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.num_pages(), pages);     // pages survive Reset...
  EXPECT_EQ(arena.reserved(), reserved);   // ...so steady state reallocates nothing
  arena.AllocateArray<char>(1 << 18);
  EXPECT_EQ(arena.num_pages(), pages);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedPage) {
  Arena arena;
  size_t huge = Arena::kMinPageBytes * 4;
  char* p = arena.AllocateArray<char>(huge);
  p[0] = 'x';
  p[huge - 1] = 'y';
  EXPECT_EQ(p[0], 'x');
  EXPECT_EQ(p[huge - 1], 'y');
  EXPECT_GE(arena.used(), huge);
}

TEST(ArenaTest, MarkRewindRestoresFrame) {
  Arena arena;
  arena.AllocateArray<uint64_t>(100);
  Arena::Mark mark = arena.Position();
  size_t used_at_mark = arena.used();
  arena.AllocateArray<uint64_t>(5000);
  EXPECT_GT(arena.used(), used_at_mark);
  arena.RewindTo(mark);
  EXPECT_EQ(arena.used(), used_at_mark);
}

TEST(ArenaVectorTest, GrowthPreservesContents) {
  Arena arena;
  ArenaVector<uint32_t> v(&arena);
  EXPECT_TRUE(v.empty());
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
  EXPECT_EQ(v.back(), 999u * 3);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(ArenaScopeTest, NestedScopesStackAndRecordTelemetry) {
  MemoryTelemetry::Reset();
  Arena arena;
  {
    ArenaScope outer(&arena);
    outer.arena()->AllocateArray<uint64_t>(8);
    EXPECT_EQ(outer.used(), 8 * sizeof(uint64_t));
    {
      ArenaScope inner(&arena);
      inner.arena()->AllocateArray<uint64_t>(4);
      EXPECT_EQ(inner.used(), 4 * sizeof(uint64_t));
    }
    // The inner frame rewound its own allocations only.
    EXPECT_EQ(outer.used(), 8 * sizeof(uint64_t));
  }
  EXPECT_EQ(arena.used(), 0u);
  MemoryTelemetrySnapshot snapshot = MemoryTelemetry::Snapshot();
  EXPECT_EQ(snapshot.scopes, 2u);
  EXPECT_EQ(snapshot.bytes_total, 12 * sizeof(uint64_t));
  EXPECT_EQ(snapshot.high_water_bytes, 8 * sizeof(uint64_t));
  MemoryTelemetry::Reset();
  EXPECT_EQ(MemoryTelemetry::Snapshot().scopes, 0u);
}

// ---------------------------------------------------------------------------
// Crafted hash collisions: key-equality soundness of the grouped index.
//
// MixHash is bijective (xorshift-by-33 is an involution for 64-bit words,
// and both multipliers are odd), so single-column keys cannot collide and a
// genuine collision needs two columns. We invert MixHash with the modular
// inverses of the Murmur3 multipliers and solve
//   HashCombine(s_a, a1) == HashCombine(s_b, b1)
// for b1 given everything else — yielding two distinct (v0, v1) keys whose
// full 64-bit HashRowKey values are equal.

uint64_t ModInverse64(uint64_t m) {
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - m * inv;  // Newton iteration mod 2^64
  return inv;
}

uint64_t InverseMixHash(uint64_t y) {
  y ^= y >> 33;
  y *= ModInverse64(0xC4CEB9FE1A85EC53ull);
  y ^= y >> 33;
  y *= ModInverse64(0xFF51AFD7ED558CCDull);
  y ^= y >> 33;
  return y;
}

/// Returns two distinct two-column keys with identical HashRowKey.
void CraftCollidingKeys(Value out_a[2], Value out_b[2]) {
  constexpr uint64_t kFnv = 0xCBF29CE484222325ull;
  constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ull;
  const Value a0 = 17, a1 = 42, b0 = 99;  // arbitrary, a0 != b0
  uint64_t s_a = HashCombine(kFnv, a0);
  uint64_t s_b = HashCombine(kFnv, b0);
  uint64_t target = HashCombine(s_a, a1);
  // HashCombine(s, v) = s ^ (MixHash(v) + kGolden + (s<<6) + (s>>2)).
  uint64_t mix_b1 = (s_b ^ target) - kGolden - (s_b << 6) - (s_b >> 2);
  Value b1 = InverseMixHash(mix_b1);
  out_a[0] = a0;
  out_a[1] = a1;
  out_b[0] = b0;
  out_b[1] = b1;
}

TEST(HashCollisionTest, CraftedKeysActuallyCollide) {
  EXPECT_EQ(InverseMixHash(MixHash(0xDEADBEEFCAFEull)), 0xDEADBEEFCAFEull);
  Value a[2], b[2];
  CraftCollidingKeys(a, b);
  const uint32_t cols[2] = {0, 1};
  ASSERT_TRUE(a[0] != b[0] || a[1] != b[1]);
  ASSERT_EQ(HashRowKey(a, cols, 2), HashRowKey(b, cols, 2))
      << "collision construction broke; the soundness tests below would be vacuous";
}

TEST(HashCollisionTest, GroupedIndexGroupsByHashButCallersVerifyKeys) {
  Value a[2], b[2];
  CraftCollidingKeys(a, b);
  Relation rel(AttrSet::FromIds({0, 1}));
  rel.AppendRow({a[0], a[1]});
  rel.AppendRow({b[0], b[1]});

  Arena arena;
  GroupedKeyIndex index(&arena);
  const uint32_t cols[2] = {0, 1};
  index.Build(rel, cols, 2);
  // Both rows share the 64-bit hash, so they land in ONE group — the
  // documented contract that makes caller-side key verification mandatory.
  EXPECT_EQ(index.num_groups(), 1u);
  auto candidates = index.Probe(HashRowKey(a, cols, 2));
  EXPECT_EQ(candidates.end - candidates.begin, 2);
  EXPECT_FALSE(RowKeysEqual(a, cols, b, cols, 2));
}

TEST(HashCollisionTest, SemiJoinAndHashJoinStaySoundUnderCollision) {
  Value a[2], b[2];
  CraftCollidingKeys(a, b);
  AttrSet schema = AttrSet::FromIds({0, 1});
  Relation left(schema), right(schema);
  left.AppendRow({a[0], a[1]});
  right.AppendRow({b[0], b[1]});

  // Same hash, different keys: no matches may be emitted.
  EXPECT_TRUE(SemiJoin(left, right).empty());
  EXPECT_TRUE(HashJoin(left, right).empty());

  // With the genuinely equal key added, exactly the real match survives.
  right.AppendRow({a[0], a[1]});
  Relation reduced = SemiJoin(left, right);
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced.row(0)[0], a[0]);
  EXPECT_EQ(reduced.row(0)[1], a[1]);
  EXPECT_EQ(HashJoin(left, right).size(), 1u);
}

TEST(HashCollisionTest, KeyedWeightSumsKeepsCollidingKeysSeparate) {
  Value a[2], b[2];
  CraftCollidingKeys(a, b);
  Relation rel(AttrSet::FromIds({0, 1}));
  rel.AppendRow({a[0], a[1]});
  rel.AppendRow({b[0], b[1]});
  rel.AppendRow({a[0], a[1]});
  const uint64_t weights[3] = {5, 7, 11};

  Arena arena;
  KeyedWeightSums sums(&arena);
  const uint32_t cols[2] = {0, 1};
  sums.Build(rel, cols, 2, weights);
  EXPECT_EQ(sums.Lookup(a, cols), 16u);  // 5 + 11, never the colliding 7
  EXPECT_EQ(sums.Lookup(b, cols), 7u);
  const Value absent[2] = {a[0], a[1] + 1};
  EXPECT_EQ(sums.Lookup(absent, cols), 0u);
}

// ---------------------------------------------------------------------------
// Overflow guards on Relation growth.

TEST(RelationOverflowTest, SafeSizesPassTheGuard) {
  Relation r(AttrSet::FromIds({0, 1, 2}));
  r.Reserve(1024);
  Value* out = r.AppendUninitialized(2);
  for (int i = 0; i < 6; ++i) out[i] = static_cast<Value>(i);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.row(1)[2], 5u);
}

#ifndef NDEBUG
TEST(RelationOverflowDeathTest, ReserveRejectsRowCountOverflow) {
  Relation r(AttrSet::FromIds({0, 1, 2}));
  // rows * width would wrap size_t.
  EXPECT_DEATH(r.Reserve(std::numeric_limits<size_t>::max() / 2), "RowCountFits");
}

TEST(RelationOverflowDeathTest, AppendRowsRejectsRowCountOverflow) {
  Relation r(AttrSet::FromIds({0, 1}));
  Value row[2] = {1, 2};
  EXPECT_DEATH(r.AppendRows(row, std::numeric_limits<size_t>::max() / 2), "RowCountFits");
}

TEST(RelationOverflowDeathTest, AppendUninitializedRejectsRowCountOverflow) {
  Relation r(AttrSet::FromIds({0, 1}));
  EXPECT_DEATH(r.AppendUninitialized(std::numeric_limits<size_t>::max() / 2), "RowCountFits");
}
#endif  // !NDEBUG

// ---------------------------------------------------------------------------
// Zero-width (nullary) relations through the columnar paths.

Relation Nullary(size_t rows) {
  Relation r((AttrSet()));
  for (size_t i = 0; i < rows; ++i) r.AppendRow({});
  return r;
}

TEST(ZeroWidthTest, DedupCollapsesToOneEmptyTuple) {
  Relation r = Nullary(5);
  r.Dedup();
  EXPECT_EQ(r.size(), 1u);
  r.Dedup();  // idempotent, including on the single-row result
  EXPECT_EQ(r.size(), 1u);
}

TEST(ZeroWidthTest, SortRowsAndSameContentAs) {
  Relation a = Nullary(3);
  Relation b = Nullary(3);
  a.SortRows();
  EXPECT_TRUE(a.SameContentAs(b));
  EXPECT_FALSE(a.SameContentAs(Nullary(2)));
}

TEST(ZeroWidthTest, JoinsOverNullaryOperands) {
  // Disjoint-schema semijoin against a nonempty nullary right keeps left.
  Relation left(AttrSet::FromIds({0}));
  left.AppendRow({7});
  left.AppendRow({8});
  Relation reduced = SemiJoin(left, Nullary(2));
  EXPECT_TRUE(reduced.SameContentAs(left));
  EXPECT_TRUE(SemiJoin(left, Nullary(0)).empty());

  // Nullary x unary hash join = cross product on the shared empty key.
  Relation joined = HashJoin(Nullary(2), left);
  EXPECT_EQ(joined.attrs(), left.attrs());
  EXPECT_EQ(joined.size(), 4u);

  // Nullary x nullary: all-empty keys match pairwise.
  Relation both = HashJoin(Nullary(2), Nullary(3));
  EXPECT_EQ(both.width(), 0u);
  EXPECT_EQ(both.size(), 6u);
}

TEST(ZeroWidthTest, ProjectToEmptySchemaDedups) {
  Relation r(AttrSet::FromIds({3}));
  r.AppendRow({1});
  r.AppendRow({2});
  Relation projected = Project(r, AttrSet());
  EXPECT_EQ(projected.width(), 0u);
  EXPECT_EQ(projected.size(), 1u);  // projection dedups: one empty tuple
}

TEST(ZeroWidthTest, GroupedIndexAtWidthZero) {
  Relation r = Nullary(4);
  Arena arena;
  GroupedKeyIndex index(&arena);
  index.Build(r, nullptr, 0);
  EXPECT_EQ(index.num_groups(), 1u);  // every row has the same (empty) key
  uint64_t empty_hash = HashRowKey(nullptr, nullptr, 0);
  auto candidates = index.Probe(empty_hash);
  EXPECT_EQ(candidates.end - candidates.begin, 4);

  KeyedWeightSums sums(&arena);
  sums.Build(r, nullptr, 0, nullptr);  // null weights = all ones
  EXPECT_EQ(sums.Lookup(nullptr, nullptr), 4u);
}

}  // namespace
}  // namespace coverpack
