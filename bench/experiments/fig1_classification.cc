/// \file fig1_classification.cc
/// \brief Regenerates Figure 1: the classification of join queries.
///
/// Prints, for every catalog query, its structural classes (alpha-/berge-
/// acyclic, tree, path, r-hierarchical, Loomis-Whitney, degree-two) and
/// checks the containments the figure draws: path < tree < alpha-acyclic,
/// berge-acyclic < alpha-acyclic, LW and degree-two straddling the cyclic
/// side.

#include <iostream>

#include "bench_util.h"
#include "experiments/runners.h"
#include "query/catalog.h"
#include "query/properties.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunFig1Classification(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  TablePrinter table({"query", "relations", "attrs", "classification"});
  bool containments_hold = true;
  for (const auto& entry : catalog::StandardRoster()) {
    report.metrics.AddCounter("queries_classified");
    table.AddRow({entry.name, std::to_string(entry.query.num_edges()),
                  std::to_string(entry.query.AllAttrs().size()),
                  ClassificationString(entry.query)});
    // Containments of Figure 1.
    if (IsPathJoin(entry.query) && !IsTreeJoin(entry.query)) containments_hold = false;
    if (IsTreeJoin(entry.query) && !IsAlphaAcyclic(entry.query)) containments_hold = false;
    if (IsBergeAcyclic(entry.query) && !IsAlphaAcyclic(entry.query)) containments_hold = false;
    if (IsLoomisWhitney(entry.query) && IsAlphaAcyclic(entry.query)) containments_hold = false;
  }
  table.Print(std::cout);
  report.AddParam("roster_size", report.metrics.CounterValue("queries_classified"));

  std::cout << "containments: path c tree c alpha-acyclic; berge c alpha; "
               "LW joins are cyclic: "
            << (containments_hold ? "all hold" : "VIOLATED") << "\n";
  FinishReport(report, containments_hold);
  return report;
}

}  // namespace bench
}  // namespace coverpack
