#include "telemetry/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace coverpack {
namespace telemetry {

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Int(int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = value;
  return v;
}

JsonValue JsonValue::Uint(uint64_t value) {
  JsonValue v;
  v.kind_ = Kind::kUint;
  v.uint_ = value;
  return v;
}

JsonValue JsonValue::Double(double value) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = value;
  return v;
}

JsonValue JsonValue::Str(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::Append(JsonValue element) {
  CP_CHECK(kind_ == Kind::kArray) << "JsonValue::Append on a non-array";
  array_.push_back(std::move(element));
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  CP_CHECK(kind_ == Kind::kObject) << "JsonValue::Set on a non-object";
  for (auto& [existing_key, existing_value] : object_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

size_t JsonValue::size() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

void AppendJsonEscaped(const std::string& raw, std::string* out) {
  out->push_back('"');
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

namespace {

/// Shortest round-trip rendering of a finite double; integral values keep
/// a trailing ".0" so consumers see a float, not an int.
void WriteDouble(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  char buffer[32];
  auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  CP_CHECK(ec == std::errc());
  std::string rendered(buffer, ptr);
  if (rendered.find_first_of(".eE") == std::string::npos) rendered += ".0";
  out << rendered;
}

void WriteString(std::ostream& out, const std::string& raw) {
  std::string escaped;
  escaped.reserve(raw.size() + 2);
  AppendJsonEscaped(raw, &escaped);
  out << escaped;
}

void Newline(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

}  // namespace

void JsonValue::WriteIndented(std::ostream& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out << "null";
      break;
    case Kind::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      out << int_;
      break;
    case Kind::kUint:
      out << uint_;
      break;
    case Kind::kDouble:
      WriteDouble(out, double_);
      break;
    case Kind::kString:
      WriteString(out, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out << ',';
        Newline(out, indent, depth + 1);
        array_[i].WriteIndented(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out << ',';
        Newline(out, indent, depth + 1);
        WriteString(out, object_[i].first);
        out << (indent > 0 ? ": " : ":");
        object_[i].second.WriteIndented(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out << '}';
      break;
    }
  }
}

void JsonValue::Write(std::ostream& out, int indent) const {
  WriteIndented(out, indent, 0);
}

std::string JsonValue::ToString(int indent) const {
  std::ostringstream out;
  Write(out, indent);
  return out.str();
}

}  // namespace telemetry
}  // namespace coverpack
