// cplint fixture: range-for over an unordered container.
#include <unordered_map>

long Sum(const std::unordered_map<int, long>& unused) {
  std::unordered_map<int, long> counts;
  long total = 0;
  for (const auto& [key, value] : counts) total += value;
  return total;
}
