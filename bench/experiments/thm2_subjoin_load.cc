/// \file thm2_subjoin_load.cc
/// \brief Validates Theorems 1/2: the conservative run stays within a
/// constant of its subjoin-based threshold L, and the threshold adapts to
/// the instance (random instances get a smaller L than worst-case ones).

#include <iostream>
#include <string>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "core/load_planner.h"
#include "experiments/runners.h"
#include "query/catalog.h"
#include "query/join_tree.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunThm2SubjoinLoad(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  Hypergraph q = catalog::Path(4);
  auto tree = JoinTree::Build(q);
  bool all_ok = true;
  report.AddParam("query", q.ToString());
  report.AddParam("N", uint64_t{10000});

  TablePrinter table({"instance", "N", "p", "L planned", "L measured", "measured/planned",
                      "rounds"});
  for (uint32_t p : {16u, 64u, 256u}) {
    for (const char* kind : {"random", "matching"}) {
      uint64_t n = 10000;
      Rng rng(ExperimentSeed(77));
      Instance instance = std::string(kind) == "random"
                              ? workload::UniformInstance(q, n, n / 10, &rng)
                              : workload::MatchingInstance(q, n);
      AcyclicRunOptions options;
      options.policy = RunPolicy::kConservative;
      options.collect = false;
      options.p = p;
      AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
      ProfileRun(report, std::string(kind) + "/p" + std::to_string(p), run.load_tracker);
      double ratio =
          static_cast<double>(run.max_load) / static_cast<double>(run.load_threshold);
      table.AddRow({kind, std::to_string(n), std::to_string(p),
                    std::to_string(run.load_threshold), std::to_string(run.max_load),
                    FormatDouble(ratio, 2), std::to_string(run.rounds)});
      // Shape claim: measured load within a constant factor of L.
      if (ratio > 8.0) all_ok = false;
    }
  }
  table.Print(std::cout);

  // Instance adaptivity: the subjoin threshold on a semi-join-reducible
  // instance is much smaller than the worst-case product bound.
  uint64_t n = 10000;
  Instance sparse(q);
  for (Value v = 0; v < n; ++v) {
    sparse[0].AppendRow({v, v});
    sparse[1].AppendRow({v, v});
    sparse[2].AppendRow({v, v});
    sparse[3].AppendRow({v, v});
  }
  uint64_t adaptive = PlanLoadConservative(q, *tree, sparse, 64);
  uint64_t worst_case = PlanLoadOptimal(q, sparse, 64);
  std::cout << "matching instance: adaptive Theorem-2 L = " << adaptive
            << " vs worst-case Theorem-4 L = " << worst_case << "\n";
  report.metrics.SetGauge("adaptive_L", static_cast<double>(adaptive));
  report.metrics.SetGauge("worst_case_L", static_cast<double>(worst_case));
  // Disconnected pairs on a matching instance still have product subjoins,
  // so adaptivity is bounded; but the adaptive L never exceeds worst-case.
  all_ok = all_ok && adaptive <= worst_case + 1;

  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
