#include "relation/relation.h"

#include <algorithm>
#include <sstream>

namespace coverpack {

namespace {

/// Reusable per-thread scratch for the sort/dedup/compare paths. The
/// simulator sorts and dedups relations constantly (canonicalization,
/// projections, result comparison); gathering through buffers that keep
/// their capacity across calls removes two allocations per call.
/// Thread-local so concurrent pool tasks never share a buffer.
struct SortScratch {
  std::vector<size_t> order;        // row permutation being sorted
  std::vector<size_t> other_order;  // second permutation for comparisons
  std::vector<Value> gather;        // sorted flat rows, swapped into place
};

SortScratch& LocalScratch() {
  thread_local SortScratch scratch;
  return scratch;
}

/// Fills `*order` with the identity permutation of `rows` indices and sorts
/// it by lexicographic row order over the flat storage.
void SortedOrder(const std::vector<Value>& data, uint32_t width, size_t rows,
                 std::vector<size_t>* order) {
  order->resize(rows);
  for (size_t i = 0; i < rows; ++i) (*order)[i] = i;
  const Value* base = data.data();
  std::sort(order->begin(), order->end(), [base, width](size_t a, size_t b) {
    const Value* pa = base + a * width;
    const Value* pb = base + b * width;
    return std::lexicographical_compare(pa, pa + width, pb, pb + width);
  });
}

/// Sorts the flat row storage lexicographically, gathering through the
/// thread-local scratch buffer (its capacity is reused across calls).
void SortFlatRows(std::vector<Value>* data, uint32_t width, size_t rows) {
  if (width == 0 || rows == 0) return;
  SortScratch& scratch = LocalScratch();
  SortedOrder(*data, width, rows, &scratch.order);
  scratch.gather.clear();
  scratch.gather.reserve(data->size());
  for (size_t i : scratch.order) {
    const Value* p = data->data() + i * width;
    scratch.gather.insert(scratch.gather.end(), p, p + width);
  }
  // Swap rather than assign: the relation adopts the gathered buffer and
  // the scratch inherits this relation's old allocation for the next call.
  data->swap(scratch.gather);
}

}  // namespace

void Relation::Dedup() {
  if (num_rows_ == 0) return;
  if (width_ == 0) {
    // A nullary relation holds copies of the empty tuple; dedup keeps one.
    num_rows_ = 1;
    return;
  }
  SortFlatRows(&data_, width_, num_rows_);
  size_t write = 1;
  for (size_t i = 1; i < num_rows_; ++i) {
    const Value* prev = data_.data() + (write - 1) * width_;
    const Value* cur = data_.data() + i * width_;
    if (!std::equal(cur, cur + width_, prev)) {
      std::copy(cur, cur + width_, data_.data() + write * width_);
      ++write;
    }
  }
  data_.resize(write * width_);
  num_rows_ = write;
}

void Relation::SortRows() { SortFlatRows(&data_, width_, num_rows_); }

bool Relation::SameContentAs(const Relation& other) const {
  if (attrs_ != other.attrs_) return false;
  if (num_rows_ != other.num_rows_) return false;
  if (width_ == 0 || num_rows_ == 0) return true;
  // Compare sorted row orders without materializing sorted copies of
  // either relation: two index permutations and one linear walk.
  SortScratch& scratch = LocalScratch();
  SortedOrder(data_, width_, num_rows_, &scratch.order);
  SortedOrder(other.data_, width_, num_rows_, &scratch.other_order);
  for (size_t k = 0; k < num_rows_; ++k) {
    const Value* pa = data_.data() + scratch.order[k] * width_;
    const Value* pb = other.data_.data() + scratch.other_order[k] * width_;
    if (!std::equal(pa, pa + width_, pb)) return false;
  }
  return true;
}

std::string Relation::ToString(size_t limit) const {
  std::ostringstream oss;
  oss << "Relation(attrs=" << attrs_.bits() << ", rows=" << size() << ") {";
  for (size_t i = 0; i < size() && i < limit; ++i) {
    oss << (i == 0 ? " " : ", ") << "(";
    auto r = row(i);
    for (size_t j = 0; j < r.size(); ++j) {
      if (j) oss << ",";
      oss << r[j];
    }
    oss << ")";
  }
  if (size() > limit) oss << ", ...";
  oss << " }";
  return oss.str();
}

}  // namespace coverpack
