/// \file acyclic_join.h
/// \brief The paper's multi-round generic algorithm for alpha-acyclic joins
/// (Sections 3 and 4).
///
/// The algorithm recursively decomposes the join along its join tree:
///
///  * reduce — remove dangling tuples by semi-joins and relations contained
///    in other relations (Section 3.1, Case I preamble);
///  * Case I — pick a join attribute x and a set S^x of relations
///    containing x; split dom(x) into *heavy* values (degree > L in some
///    relation of S^x, each handled by recursing on the residual query Q_x)
///    and *light* groups (parallel-packed to total degree O(L), broadcast
///    to the group's servers while the rest of the query recurses as Q_y);
///  * Case II — when the join forest has several components, compute their
///    Cartesian product on a grid of server groups.
///
/// Two runs of the same skeleton differ only in the choice policy and the
/// threshold planner: the *conservative* run uses S^x = {e1} (a single
/// leaf) and Theorem 2's subjoin-based L; the *optimal* run uses
/// S^x = E_x (every relation containing x — the aggressive choice Section
/// 3.3 calls for) and Theorem 4's S(E)-based L, which is N / p^(1/rho*)
/// for uniform relation sizes (Theorem 5).
///
/// The simulation charges every data placement for real (scatter of
/// subinstances, broadcasts to light groups, grid replication) and charges
/// the O(N/p) statistics primitives their proven cost; see DESIGN.md.

#ifndef COVERPACK_CORE_ACYCLIC_JOIN_H_
#define COVERPACK_CORE_ACYCLIC_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mpc/load_tracker.h"
#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {

/// Which run of the generic algorithm to execute (Section 3.2 vs 4.1).
enum class RunPolicy {
  kConservative,  ///< S^x = {e1}; L from Theorem 2 (subjoin-based)
  kOptimal,       ///< S^x = E_x;  L from Theorem 4 (S(E)-based)
};

/// Options for ComputeAcyclicJoin.
struct AcyclicRunOptions {
  RunPolicy policy = RunPolicy::kOptimal;
  bool collect = true;        ///< materialize and return the join results
  uint64_t load_threshold = 0;  ///< L; 0 = plan automatically for `p`
  uint32_t p = 64;            ///< server budget used by the planner
  bool trace = false;         ///< record the decomposition decisions
};

/// One recursion event of a traced run.
struct TraceEvent {
  int depth = 0;
  enum Kind { kBaseCase, kCaseOne, kCaseTwo } kind = kBaseCase;
  std::string query;          ///< the (reduced) subquery at this level
  std::string attribute;      ///< Case I: the chosen attribute x
  std::string choice_set;     ///< Case I: the relations of S^x
  uint32_t heavy_values = 0;  ///< Case I: |H(x, S^x)|
  uint32_t light_groups = 0;  ///< Case I: number of parallel-packed groups
  uint32_t components = 0;    ///< Case II: number of Cartesian components
  uint64_t input_tuples = 0;  ///< total input of this subquery
};

/// Outcome of a run: the measured MPC complexity plus (optionally) results.
struct AcyclicRunResult {
  Relation results;            ///< join results (collect mode)
  uint64_t output_count = 0;   ///< rows of `results` (collect mode)
  uint64_t max_load = 0;       ///< max tuples received by a server in a round
  uint32_t rounds = 0;         ///< communication rounds used
  uint64_t servers_used = 0;   ///< servers the run actually allocated
  uint64_t total_communication = 0;
  uint64_t load_threshold = 0; ///< the L the run was executed with
  std::vector<TraceEvent> trace;  ///< populated when options.trace is set
  /// The run's full (round, server) load matrix — max_load/rounds/
  /// total_communication above are summaries of it. The telemetry layer
  /// derives per-round skew profiles from this tracker.
  LoadTracker load_tracker{1};
};

/// Renders a trace as an indented decomposition tree.
std::string TraceToString(const std::vector<TraceEvent>& trace);

/// Computes Q(R) with the generic multi-round algorithm. The query must be
/// alpha-acyclic. Results are verified against the sequential oracle in
/// tests; benches run with collect = false and read the load statistics.
AcyclicRunResult ComputeAcyclicJoin(const Hypergraph& query, const Instance& instance,
                                    const AcyclicRunOptions& options);

/// Theoretical number of servers needed to run this instance at load L
/// (the max-form of Theorem 1's / Theorem 3's Psi bounds). The benches
/// compare the executed servers_used against this prediction.
uint64_t TheoreticalServerDemand(const Hypergraph& query, const Instance& instance,
                                 uint64_t load_threshold, RunPolicy policy);

}  // namespace coverpack

#endif  // COVERPACK_CORE_ACYCLIC_JOIN_H_
