/// \file bench_fig7_packing_provable.cc
/// \brief Thin wrapper: the experiment body lives in
/// bench/experiments/fig7_packing_provable.cc and is registered in the experiment
/// registry, so the unified driver (coverpack_bench) and this historical
/// one-display binary share one implementation.

#include "experiments/experiments.h"

int main() { return coverpack::bench::RunExperimentStandalone("fig7_packing_provable"); }
