#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "lowerbound/hard_instance.h"
#include "query/catalog.h"
#include "relation/instance.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

TEST(SplitSeedTest, Replayable) {
  EXPECT_EQ(SplitSeed(42, 0), SplitSeed(42, 0));
  EXPECT_EQ(SplitSeed(42, 7), SplitSeed(42, 7));
  EXPECT_EQ(SplitSeed(0, 0), SplitSeed(0, 0));
}

TEST(SplitSeedTest, StreamsArePairwiseDistinctPerParent) {
  for (uint64_t parent : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    std::set<uint64_t> seeds;
    for (uint64_t stream = 0; stream < 512; ++stream) {
      seeds.insert(SplitSeed(parent, stream));
    }
    EXPECT_EQ(seeds.size(), 512u) << "collision under parent " << parent;
  }
}

TEST(SplitSeedTest, StreamsYieldDisjointSequences) {
  // Child generators must behave as independent streams: across several
  // streams of one parent, the first outputs never collide (a collision of
  // 64-bit values over this few draws would be astronomically unlikely).
  std::set<uint64_t> outputs;
  constexpr int kStreams = 16, kDraws = 128;
  for (uint64_t stream = 0; stream < kStreams; ++stream) {
    Rng rng(SplitSeed(12345, stream));
    for (int i = 0; i < kDraws; ++i) outputs.insert(rng.Next());
  }
  EXPECT_EQ(outputs.size(), size_t{kStreams} * kDraws);
}

TEST(SplitSeedTest, ChildStreamDiffersFromParent) {
  Rng parent(12345);
  Rng child(SplitSeed(12345, 0));
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) differs = parent.Next() != child.Next();
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Sharded generators: bit-identical output at any global thread count.
// ---------------------------------------------------------------------------

bool RelationsEqual(const Relation& a, const Relation& b) {
  if (!(a.attrs() == b.attrs()) || a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    auto ra = a.row(i), rb = b.row(i);
    for (size_t c = 0; c < ra.size(); ++c) {
      if (ra[c] != rb[c]) return false;
    }
  }
  return true;
}

/// Restores the global pool size after each test so the sweep cannot leak
/// into unrelated tests.
class ShardedGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }

  /// Runs `make` once at 1 thread and once at 4, asserting bit-identical
  /// relations, for every seed in [0, 8).
  template <typename MakeFn>
  void ExpectThreadCountInvariant(const MakeFn& make) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      ThreadPool::SetGlobalThreads(1);
      Relation serial = make(seed);
      ThreadPool::SetGlobalThreads(4);
      Relation parallel = make(seed);
      EXPECT_TRUE(RelationsEqual(serial, parallel)) << "seed " << seed;
    }
  }

 private:
  unsigned saved_threads_ = 1;
};

TEST_F(ShardedGeneratorTest, UniformRandomIsThreadCountInvariant) {
  ExpectThreadCountInvariant([](uint64_t seed) {
    Rng rng(seed);
    return workload::UniformRandom(AttrSet::FromIds({0, 1, 2}), 5000, 1000, &rng);
  });
}

TEST_F(ShardedGeneratorTest, UniformRandomLeavesRngInSameState) {
  // The parallel refill must consume the same number of parent draws as the
  // serial one, or downstream code sharing the Rng would diverge.
  ThreadPool::SetGlobalThreads(1);
  Rng serial_rng(3);
  workload::UniformRandom(AttrSet::FromIds({0, 1}), 2000, 5000, &serial_rng);
  ThreadPool::SetGlobalThreads(4);
  Rng parallel_rng(3);
  workload::UniformRandom(AttrSet::FromIds({0, 1}), 2000, 5000, &parallel_rng);
  EXPECT_EQ(serial_rng.Next(), parallel_rng.Next());
}

TEST_F(ShardedGeneratorTest, ZipfIsThreadCountInvariant) {
  ExpectThreadCountInvariant([](uint64_t seed) {
    Rng rng(seed);
    return workload::Zipf(AttrSet::FromIds({0, 1}), 4000, 2000, 1.1, &rng);
  });
}

TEST_F(ShardedGeneratorTest, CartesianIsThreadCountInvariant) {
  // Cartesian is seedless; sweep thread counts over a fixed shape instead.
  ThreadPool::SetGlobalThreads(1);
  Relation serial = workload::Cartesian(AttrSet::FromIds({0, 1, 2}), {17, 23, 31});
  ThreadPool::SetGlobalThreads(4);
  Relation parallel = workload::Cartesian(AttrSet::FromIds({0, 1, 2}), {17, 23, 31});
  EXPECT_TRUE(RelationsEqual(serial, parallel));
  EXPECT_EQ(serial.size(), 17u * 23u * 31u);
}

TEST_F(ShardedGeneratorTest, UniformInstanceIsThreadCountInvariant) {
  Hypergraph triangle = catalog::Triangle();
  for (uint64_t seed = 0; seed < 8; ++seed) {
    ThreadPool::SetGlobalThreads(1);
    Rng serial_rng(seed);
    Instance serial = workload::UniformInstance(triangle, 2000, 500, &serial_rng);
    ThreadPool::SetGlobalThreads(4);
    Rng parallel_rng(seed);
    Instance parallel = workload::UniformInstance(triangle, 2000, 500, &parallel_rng);
    ASSERT_EQ(serial.num_relations(), parallel.num_relations());
    for (size_t e = 0; e < serial.num_relations(); ++e) {
      EXPECT_TRUE(RelationsEqual(serial[static_cast<EdgeId>(e)],
                                 parallel[static_cast<EdgeId>(e)]))
          << "seed " << seed << " relation " << e;
    }
  }
}

TEST_F(ShardedGeneratorTest, BoxJoinHardInstanceIsThreadCountInvariant) {
  Hypergraph box = catalog::BoxJoin();
  for (uint64_t seed = 0; seed < 8; ++seed) {
    ThreadPool::SetGlobalThreads(1);
    lowerbound::HardInstance serial = lowerbound::BoxJoinHardInstance(box, 4096, seed);
    ThreadPool::SetGlobalThreads(4);
    lowerbound::HardInstance parallel = lowerbound::BoxJoinHardInstance(box, 4096, seed);
    EXPECT_EQ(serial.domain_sizes, parallel.domain_sizes);
    ASSERT_EQ(serial.instance.num_relations(), parallel.instance.num_relations());
    for (size_t e = 0; e < serial.instance.num_relations(); ++e) {
      EXPECT_TRUE(RelationsEqual(serial.instance[static_cast<EdgeId>(e)],
                                 parallel.instance[static_cast<EdgeId>(e)]))
          << "seed " << seed << " relation " << e;
    }
  }
}

TEST_F(ShardedGeneratorTest, DegreeTwoHardInstanceIsThreadCountInvariant) {
  Hypergraph box = catalog::BoxJoin();
  PackingProvability witness = lowerbound::BoxJoinWitness(box);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    ThreadPool::SetGlobalThreads(1);
    lowerbound::HardInstance serial =
        lowerbound::DegreeTwoHardInstance(box, witness, 4096, seed);
    ThreadPool::SetGlobalThreads(4);
    lowerbound::HardInstance parallel =
        lowerbound::DegreeTwoHardInstance(box, witness, 4096, seed);
    ASSERT_EQ(serial.instance.num_relations(), parallel.instance.num_relations());
    for (size_t e = 0; e < serial.instance.num_relations(); ++e) {
      EXPECT_TRUE(RelationsEqual(serial.instance[static_cast<EdgeId>(e)],
                                 parallel.instance[static_cast<EdgeId>(e)]))
          << "seed " << seed << " relation " << e;
    }
  }
}

}  // namespace
}  // namespace coverpack
