#include "workload/generators.h"

#include "util/logging.h"

namespace coverpack {
namespace workload {

Relation UniformRandom(AttrSet attrs, size_t n, uint64_t domain, Rng* rng) {
  CP_CHECK_GT(domain, 0u);
  Relation relation(attrs);
  relation.Reserve(n);
  uint32_t width = attrs.size();
  std::vector<Value> row(width);
  // Draw until n distinct tuples exist (or the domain is exhausted).
  size_t attempts = 0;
  size_t max_attempts = n * 20 + 1000;
  while (relation.size() < n && attempts < max_attempts) {
    size_t deficit = n - relation.size();
    for (size_t i = 0; i < deficit; ++i) {
      for (uint32_t c = 0; c < width; ++c) row[c] = rng->Uniform(domain);
      relation.AppendRow(std::span<const Value>(row));
    }
    relation.Dedup();
    attempts += deficit;
  }
  return relation;
}

Relation Matching(AttrSet attrs, size_t n) {
  Relation relation(attrs);
  relation.Reserve(n);
  uint32_t width = attrs.size();
  std::vector<Value> row(width);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t c = 0; c < width; ++c) row[c] = i;
    relation.AppendRow(std::span<const Value>(row));
  }
  return relation;
}

Relation Cartesian(AttrSet attrs, const std::vector<uint64_t>& dims) {
  uint32_t width = attrs.size();
  CP_CHECK_EQ(dims.size(), width);
  uint64_t total = 1;
  for (uint64_t d : dims) {
    CP_CHECK_GT(d, 0u);
    total *= d;
    CP_CHECK_LT(total, uint64_t{1} << 32) << "Cartesian relation too large";
  }
  Relation relation(attrs);
  relation.Reserve(total);
  std::vector<Value> row(width, 0);
  for (uint64_t index = 0; index < total; ++index) {
    uint64_t rest = index;
    for (uint32_t c = 0; c < width; ++c) {
      row[c] = rest % dims[c];
      rest /= dims[c];
    }
    relation.AppendRow(std::span<const Value>(row));
  }
  return relation;
}

Relation Zipf(AttrSet attrs, size_t n, uint64_t domain, double skew, Rng* rng) {
  ZipfSampler sampler(domain, skew);
  Relation relation(attrs);
  relation.Reserve(n);
  uint32_t width = attrs.size();
  std::vector<Value> row(width);
  size_t attempts = 0;
  size_t max_attempts = n * 50 + 1000;
  while (relation.size() < n && attempts < max_attempts) {
    size_t deficit = n - relation.size();
    for (size_t i = 0; i < deficit; ++i) {
      for (uint32_t c = 0; c < width; ++c) row[c] = sampler.Sample(rng);
      relation.AppendRow(std::span<const Value>(row));
    }
    relation.Dedup();
    attempts += deficit;
  }
  return relation;
}

Relation OneToOne(AttrSet attrs, AttrId a, AttrId b, size_t n) {
  CP_CHECK(attrs.Contains(a));
  CP_CHECK(attrs.Contains(b));
  CP_CHECK(a != b);
  Relation relation(attrs);
  relation.Reserve(n);
  uint32_t width = attrs.size();
  uint32_t col_a = relation.ColumnOf(a);
  uint32_t col_b = relation.ColumnOf(b);
  std::vector<Value> row(width, 0);
  for (size_t i = 0; i < n; ++i) {
    row[col_a] = i;
    row[col_b] = i;
    relation.AppendRow(std::span<const Value>(row));
  }
  return relation;
}

Instance UniformInstance(const Hypergraph& query, size_t n, uint64_t domain, Rng* rng) {
  Instance instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    instance[e] = UniformRandom(query.edge(e).attrs, n, domain, rng);
  }
  return instance;
}

Instance MatchingInstance(const Hypergraph& query, size_t n) {
  Instance instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    instance[e] = Matching(query.edge(e).attrs, n);
  }
  return instance;
}

Instance ZipfInstance(const Hypergraph& query, size_t n, uint64_t domain, double skew,
                      Rng* rng) {
  Instance instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    instance[e] = Zipf(query.edge(e).attrs, n, domain, skew, rng);
  }
  return instance;
}

}  // namespace workload
}  // namespace coverpack
