/// \file hard_instance.h
/// \brief The paper's hard-instance constructions (Section 5, Example 3.4).
///
/// Theorem 6's box-join instance: dom(A)=dom(B)=dom(C)=N^(1/3),
/// dom(D)=dom(E)=dom(F)=N^(2/3); R1(A,B,C), R3(A,D), R4(B,E), R5(C,F) are
/// full Cartesian products of ~N tuples, and R2(D,E,F) samples each
/// combination with probability 1/N. The join is R1 x R2 (output ~N^2, the
/// AGM bound), yet no server can emit more than ~2L^3/N results from L
/// loaded tuples.
///
/// Theorem 7 generalizes this to any edge-packing-provable degree-two join
/// via its witness vertex cover x: dom(v) has N^{x_v} values, deterministic
/// edges (sum x_v = 1) are Cartesian products, probabilistic edges
/// (sum x_v > 1) are sampled with probability N^{1 - sum x_v}.
///
/// Example 3.4's instance separates the conservative run from the optimal
/// run on the Figure 4 query.

#ifndef COVERPACK_LOWERBOUND_HARD_INSTANCE_H_
#define COVERPACK_LOWERBOUND_HARD_INSTANCE_H_

#include <cstdint>

#include "lp/packing_provable.h"
#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {
namespace lowerbound {

/// Per-attribute domain sizes of a hard instance (indexed by AttrId),
/// returned alongside the instance so the emit-capacity search knows the
/// search space.
struct HardInstance {
  Instance instance;
  std::vector<uint64_t> domain_sizes;
  uint64_t n = 0;            ///< the paper's N parameter
  uint64_t expected_output = 0;  ///< N^{rho*} (up to sampling noise)
};

/// The canonical Theorem 6 witness for the box join: x_A = x_B = x_C = 1/3,
/// x_D = x_E = x_F = 2/3 (Section 5.2). The automatic witness search can
/// return other optimal covers; this one reproduces the paper's exact
/// construction.
PackingProvability BoxJoinWitness(const Hypergraph& box);

/// The uniform witness x_v = 1/2 for degree-two joins where every edge is
/// binary and it is optimal (even cycles). Aborts if invalid.
PackingProvability UniformHalfWitness(const Hypergraph& query);

/// Theorem 6's probabilistic box-join instance. `query` must be
/// catalog::BoxJoin() (checked). n should be a perfect cube for exact
/// domain sizes; otherwise domains use floor(n^(1/3)) / floor(n^(2/3)).
HardInstance BoxJoinHardInstance(const Hypergraph& query, uint64_t n, uint64_t seed);

/// Theorem 7's construction for any edge-packing-provable degree-two join,
/// driven by the witness cover. Aborts if `witness.provable` is false.
HardInstance DegreeTwoHardInstance(const Hypergraph& query, const PackingProvability& witness,
                                   uint64_t n, uint64_t seed);

/// Example 3.4's instance for the Figure 4 query: one value for A, B, C;
/// n values for the remaining attributes; e4 is a one-to-one mapping over
/// (H, J); every other relation is a Cartesian product with ~n tuples.
HardInstance Example34Instance(const Hypergraph& figure4_query, uint64_t n);

}  // namespace lowerbound
}  // namespace coverpack

#endif  // COVERPACK_LOWERBOUND_HARD_INSTANCE_H_
