// cplint fixture: a suppressed unannotated mutex member.
#include <mutex>

class Ledger {
 private:
  // cplint: allow(audit-pairing)
  std::mutex mutex_;
};
