// cplint fixture: includes what it uses.
#ifndef CPLINT_FIXTURE_INCLUDE_HYGIENE_GOOD_H_
#define CPLINT_FIXTURE_INCLUDE_HYGIENE_GOOD_H_

#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

inline void Check(int x) { CP_CHECK(x > 0); }

class Guarded {
 private:
  Mutex mutex_;
  int value_ CP_GUARDED_BY(mutex_) = 0;
};

#endif  // CPLINT_FIXTURE_INCLUDE_HYGIENE_GOOD_H_
