/// \file fig56_decomposition.cc
/// \brief Regenerates Figures 5/6: twig decompositions, linear covers, and
/// the S(E) family of Theorem 3.
///
/// For each acyclic catalog query we print the twig decomposition (split
/// at internal cover nodes), the linear cover of every twig, and the
/// assembled family S(E), and verify the pivotal identity
/// max_{S in S(E)} |S| = rho* that turns Theorem 4 into Theorem 5.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "query/catalog.h"
#include "query/decomposition.h"
#include "query/join_tree.h"
#include "query/properties.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunFig56Decomposition(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);
  bool all_ok = true;
  for (const auto& entry : catalog::StandardRoster()) {
    if (!IsAlphaAcyclic(entry.query)) continue;
    const Hypergraph& q = entry.query;
    std::cout << "--- " << entry.name << ": " << q.ToString() << "\n";
    Hypergraph reduced = Reduce(q);
    auto tree = JoinTree::Build(reduced);
    if (!tree) continue;
    EdgeSet cover = MinimumIntegralEdgeCover(reduced).edges;
    for (EdgeSet component : tree->Components()) {
      TwigDecomposition d = DecomposeTwigs(*tree, component, cover);
      std::cout << DecompositionToString(reduced, d);
    }
    std::vector<EdgeSet> family = SFamily(q);
    uint32_t max_size = 0;
    for (EdgeSet s : family) max_size = std::max(max_size, s.size());
    Rational rho = RhoStar(q);
    bool ok = rho.is_integer() && max_size == static_cast<uint32_t>(rho.num());
    all_ok = all_ok && ok;
    report.metrics.AddCounter("acyclic_queries_checked");
    report.metrics.AddCounter("s_family_sets", family.size());
    std::cout << "|S(E)| = " << family.size() << " sets, max set size " << max_size
              << " vs rho* = " << rho << "  [" << (ok ? "MATCH" : "DEVIATION") << "]\n";
  }
  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
