/// \file plan_chooser.h
/// \brief Picks one algorithm from the menu for one (query, p, stats).
///
/// PlanChooser::Choose filters the cost model's table to the applicable,
/// exponent-safe candidates and picks the minimum by (estimated load,
/// estimated ticks, algorithm order) — a total order, so the decision is
/// deterministic and bit-identical anywhere the stats are. The returned
/// PlanDecision carries the whole cost table plus the join-order DP's
/// intra-server order so a failing differential test can print the full
/// repro, and a Digest() so determinism/chaos tests can byte-diff
/// decisions across thread counts and fault schedules.

#ifndef COVERPACK_PLANNER_PLAN_CHOOSER_H_
#define COVERPACK_PLANNER_PLAN_CHOOSER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "planner/cost_model.h"
#include "planner/stats.h"
#include "query/hypergraph.h"

namespace coverpack {
namespace planner {

/// The chooser's verdict for one (query, p, stats) triple.
struct PlanDecision {
  Algorithm algorithm = Algorithm::kOneRound;
  uint64_t est_load = 0;
  uint32_t est_rounds = 0;
  uint64_t est_cost_ticks = 0;
  uint64_t out_estimate = 0;   ///< the DP's OUT estimate
  std::string join_order;      ///< intra-server join order (DP rendering)
  CostTable table;             ///< every candidate, for repro printing
  LpNumbers lp;
  std::string rationale;       ///< one line: why this candidate won

  /// Deterministic byte-digest of the decision and its inputs' summary —
  /// equal digests mean the chooser saw the same stats and decided the
  /// same way. No floats, no pointers, no iteration over unordered state.
  std::string Digest() const;
};

/// Tallies the planner's work across one experiment or service run; the
/// telemetry layer snapshots this into planner.* report metrics.
struct DecisionLedger {
  uint64_t decisions_one_round = 0;
  uint64_t decisions_acyclic = 0;
  uint64_t decisions_output_balanced = 0;
  uint64_t cache_hits = 0;    ///< decisions served from a PlanCache entry
  uint64_t cache_misses = 0;  ///< decisions computed fresh
  std::vector<double> est_error_ratios;  ///< est_load / actual_load per run

  void CountDecision(Algorithm algorithm);
  uint64_t TotalDecisions() const;
};

class PlanChooser {
 public:
  /// Chooses the algorithm; computes the LP numbers internally.
  static PlanDecision Choose(const Hypergraph& query, uint32_t p,
                             const StatsSnapshot& stats);

  /// Same, with precomputed LP numbers (the PlanCache already has them).
  static PlanDecision Choose(const Hypergraph& query, uint32_t p,
                             const StatsSnapshot& stats, const LpNumbers& lp);
};

}  // namespace planner
}  // namespace coverpack

#endif  // COVERPACK_PLANNER_PLAN_CHOOSER_H_
