/// \file parser.h
/// \brief Tiny textual DSL for join queries.
///
/// Grammar:  query    := relation ("," relation)*
///           relation := NAME "(" NAME ("," NAME)* ")"
/// e.g. "R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F)" is the box join.
/// Whitespace is insignificant. Names are [A-Za-z0-9_]+.

#ifndef COVERPACK_QUERY_PARSER_H_
#define COVERPACK_QUERY_PARSER_H_

#include <string>

#include "query/hypergraph.h"

namespace coverpack {

/// Parses the DSL; aborts with a message on malformed input (queries are
/// compiled-in constants in this library, so a malformed query is a bug).
Hypergraph ParseQuery(const std::string& text);

}  // namespace coverpack

#endif  // COVERPACK_QUERY_PARSER_H_
