/// \file logging.h
/// \brief Assertion and check macros used throughout the library.
///
/// Follows the CHECK/DCHECK idiom: CP_CHECK is always on and aborts with a
/// message on failure; CP_DCHECK compiles away in NDEBUG builds. Both are
/// for programming errors (broken invariants), not for data-dependent
/// conditions, which should surface through Status.
///
/// The binary forms CP_CHECK_EQ/NE/LT/LE/GT/GE evaluate each operand
/// exactly once and print both operand values on failure, so
///
///   CP_CHECK_EQ(tracker.TotalCommunication(), before + delta);
///
/// reports `a == b (120 vs 117)` instead of just the failed expression.
/// CP_DCHECK_* are the NDEBUG-stripped variants; their operands stay
/// odr-used in release builds, so variables referenced only in checks do
/// not trigger -Wunused.

#ifndef COVERPACK_UTIL_LOGGING_H_
#define COVERPACK_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

namespace coverpack {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " check failed: " << condition << " ";
  }

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  /// Emits the message (with trailing newline) as one std::cerr write so
  /// failures racing on different threads cannot interleave, then aborts.
  [[noreturn]] ~FatalLogMessage() {
    stream_ << '\n';
    const std::string message = stream_.str();
    std::cerr.write(message.data(), static_cast<std::streamsize>(message.size()));
    std::cerr.flush();
    std::abort();
  }

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// True iff a `const T&` can be streamed into std::ostream.
template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>> : std::true_type {};

/// Streams `value` if its type is printable, a placeholder otherwise, so
/// the CP_CHECK_* macros work on any operand type.
template <typename T>
void PrintCheckOperand(std::ostream& os, const T& value) {
  if constexpr (IsStreamable<T>::value) {
    os << value;
  } else {
    os << "<unprintable>";
  }
}

// One function template per comparison: evaluates the operands it is
// handed (already evaluated exactly once by the macro), returns null on
// success or the full failure message on violation.
#define CP_INTERNAL_DEFINE_CHECK_OP(name, op)                                   \
  template <typename A, typename B>                                             \
  std::unique_ptr<std::string> name(const A& a, const B& b, const char* expr) { \
    if (a op b) return nullptr;                                                 \
    std::ostringstream oss;                                                     \
    oss << expr << " (";                                                        \
    PrintCheckOperand(oss, a);                                                  \
    oss << " vs ";                                                              \
    PrintCheckOperand(oss, b);                                                  \
    oss << ")";                                                                 \
    return std::make_unique<std::string>(oss.str());                            \
  }

CP_INTERNAL_DEFINE_CHECK_OP(CheckOpEq, ==)
CP_INTERNAL_DEFINE_CHECK_OP(CheckOpNe, !=)
CP_INTERNAL_DEFINE_CHECK_OP(CheckOpLt, <)
CP_INTERNAL_DEFINE_CHECK_OP(CheckOpLe, <=)
CP_INTERNAL_DEFINE_CHECK_OP(CheckOpGt, >)
CP_INTERNAL_DEFINE_CHECK_OP(CheckOpGe, >=)

#undef CP_INTERNAL_DEFINE_CHECK_OP

}  // namespace internal
}  // namespace coverpack

#define CP_CHECK(condition)                                            \
  if (!(condition))                                                    \
  ::coverpack::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define CP_INTERNAL_CHECK_OP(impl, op_str, a, b)                            \
  if (auto cp_internal_check_msg =                                          \
          ::coverpack::internal::impl((a), (b), #a " " op_str " " #b))      \
  ::coverpack::internal::FatalLogMessage(__FILE__, __LINE__,                \
                                         cp_internal_check_msg->c_str())

#define CP_CHECK_EQ(a, b) CP_INTERNAL_CHECK_OP(CheckOpEq, "==", a, b)
#define CP_CHECK_NE(a, b) CP_INTERNAL_CHECK_OP(CheckOpNe, "!=", a, b)
#define CP_CHECK_LT(a, b) CP_INTERNAL_CHECK_OP(CheckOpLt, "<", a, b)
#define CP_CHECK_LE(a, b) CP_INTERNAL_CHECK_OP(CheckOpLe, "<=", a, b)
#define CP_CHECK_GT(a, b) CP_INTERNAL_CHECK_OP(CheckOpGt, ">", a, b)
#define CP_CHECK_GE(a, b) CP_INTERNAL_CHECK_OP(CheckOpGe, ">=", a, b)

#ifdef NDEBUG
// The `if (false)` wrapper keeps the condition and both operands compiled
// (odr-used, never evaluated) — the void-cast idiom with streaming intact —
// so variables used only in debug checks don't trip -Wunused in release.
#define CP_DCHECK(condition) \
  if (false) CP_CHECK(condition)
#define CP_DCHECK_EQ(a, b) \
  if (false) CP_CHECK_EQ(a, b)
#define CP_DCHECK_NE(a, b) \
  if (false) CP_CHECK_NE(a, b)
#define CP_DCHECK_LT(a, b) \
  if (false) CP_CHECK_LT(a, b)
#define CP_DCHECK_LE(a, b) \
  if (false) CP_CHECK_LE(a, b)
#define CP_DCHECK_GT(a, b) \
  if (false) CP_CHECK_GT(a, b)
#define CP_DCHECK_GE(a, b) \
  if (false) CP_CHECK_GE(a, b)
#else
#define CP_DCHECK(condition) CP_CHECK(condition)
#define CP_DCHECK_EQ(a, b) CP_CHECK_EQ(a, b)
#define CP_DCHECK_NE(a, b) CP_CHECK_NE(a, b)
#define CP_DCHECK_LT(a, b) CP_CHECK_LT(a, b)
#define CP_DCHECK_LE(a, b) CP_CHECK_LE(a, b)
#define CP_DCHECK_GT(a, b) CP_CHECK_GT(a, b)
#define CP_DCHECK_GE(a, b) CP_CHECK_GE(a, b)
#endif

#endif  // COVERPACK_UTIL_LOGGING_H_
