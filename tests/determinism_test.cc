/// \file determinism_test.cc
/// \brief The determinism golden tests: the simulator must be bit-identical
/// at any thread count.
///
/// Two layers of coverage:
///
///  * every *fast* registered experiment runs at --threads=1 and
///    --threads=4 and must produce byte-identical RunReport JSON
///    (wall-clock timers masked — they are the only sanctioned
///    nondeterminism);
///  * seeded end-to-end pipelines (workload generation -> acyclic /
///    one-round execution) compare full LoadTracker matrices, result
///    relations, and decomposition traces across thread counts for
///    several seeds.
///
/// This binary links the bench experiment registry, so it lives apart
/// from cp_tests (which must not depend on bench/).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "core/acyclic_join.h"
#include "core/one_round.h"
#include "experiments/experiments.h"
#include "mpc/cluster.h"
#include "mpc/exchange.h"
#include "mpc/load_tracker.h"
#include "planner/differential.h"
#include "planner/plan_chooser.h"
#include "planner/stats.h"
#include "query/catalog.h"
#include "relation/instance.h"
#include "report_compare.h"
#include "resilience/fault_injector.h"
#include "service/query_service.h"
#include "telemetry/run_report.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

using testutil::MaskTimers;
using testutil::RelationsEqual;
using testutil::ReportJson;
using testutil::StripClusterMetrics;
using testutil::StripResilienceMetrics;
using testutil::TrackersEqual;

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }

 private:
  unsigned saved_threads_ = 1;
};

TEST_F(DeterminismTest, MaskTimersReplacesTimerObjects) {
  EXPECT_EQ(MaskTimers(R"({"timers":{"a":{"count":1,"total_ms":2.5}},"x":1})"),
            R"({"timers":{},"x":1})");
  EXPECT_EQ(MaskTimers(R"({"x":1})"), R"({"x":1})");
}

TEST_F(DeterminismTest, FastExperimentsAreBitIdenticalAcrossThreadCounts) {
  for (const bench::Experiment& experiment : bench::AllExperiments()) {
    if (!experiment.fast) continue;
    SCOPED_TRACE(experiment.id);
    ThreadPool::SetGlobalThreads(1);
    telemetry::RunReport serial = bench::RunExperiment(experiment);
    ThreadPool::SetGlobalThreads(4);
    telemetry::RunReport parallel = bench::RunExperiment(experiment);
    EXPECT_EQ(serial.ok, parallel.ok);
    EXPECT_EQ(MaskTimers(ReportJson(serial)), MaskTimers(ReportJson(parallel)));
  }
}

/// One randomized exchange: routes `data` over p servers with a seeded,
/// index-determined route function (occasional replication), executes it,
/// and returns the delivered shards plus the cluster tracker and stats.
struct ExchangeOutcome {
  std::vector<Relation> shards;
  LoadTracker tracker;
  mpc::ExchangeStats stats;
};

ExchangeOutcome RunRandomExchange(const Relation& data, uint32_t p, uint64_t salt) {
  Cluster cluster(p);
  std::vector<Relation> shards(p, Relation(data.attrs()));
  mpc::ExchangePlan plan = mpc::Exchange::Plan(
      p, data,
      [p, salt](size_t i, auto emit) {
        uint64_t h = SplitSeed(salt, i);
        emit(h % p);
        if ((h >> 32) % 4 == 0) emit((h >> 16) % p);  // ~25% of rows replicate
      },
      /*record=*/true, /*emits_per_row_hint=*/2);
  mpc::ExchangeStats stats = mpc::Exchange::Execute(
      &cluster, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; },
      "determinism_property");
  return {std::move(shards), cluster.tracker(), stats};
}

TEST_F(DeterminismTest, ExchangeConservesTuplesAndDeliversBitIdentically) {
  // Property: for random relations, route functions, and cluster widths,
  // the total tuples sent equal the sum of per-server tracker charges for
  // the round, and delivery is bit-identical at 1 vs 4 threads. Relations
  // span several routing shards (> 2 * kExchangeRouteGrain rows) so the
  // parallel path genuinely exercises the shard merge.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE(seed);
    Rng rng(SplitSeed(0xC0FFEE, seed));
    const uint32_t p = static_cast<uint32_t>(rng.UniformInRange(1, 13));
    const uint32_t width = static_cast<uint32_t>(rng.UniformInRange(1, 4));
    const size_t rows = static_cast<size_t>(rng.UniformInRange(1, 3 * 2048));
    Relation data(AttrSet::FirstN(width));
    std::vector<Value> row(width);
    for (size_t i = 0; i < rows; ++i) {
      for (uint32_t c = 0; c < width; ++c) row[c] = rng.Next();
      data.AppendRow(std::span<const Value>(row));
    }
    const uint64_t salt = rng.Next();

    ThreadPool::SetGlobalThreads(1);
    ExchangeOutcome serial = RunRandomExchange(data, p, salt);
    ThreadPool::SetGlobalThreads(4);
    ExchangeOutcome parallel = RunRandomExchange(data, p, salt);

    // Conservation: sent == delivered == charged == sum of tracker cells.
    uint64_t tracker_sum = 0;
    for (uint32_t s = 0; s < p; ++s) tracker_sum += serial.tracker.At(0, s);
    EXPECT_EQ(serial.stats.delivered, serial.stats.planned);
    EXPECT_EQ(serial.stats.charged, serial.stats.planned);
    EXPECT_EQ(tracker_sum, serial.stats.planned);
    uint64_t shard_sum = 0;
    for (const Relation& shard : serial.shards) shard_sum += shard.size();
    EXPECT_EQ(shard_sum, serial.stats.delivered);

    // Thread-count invariance: same tracker, same shard bytes.
    EXPECT_TRUE(TrackersEqual(serial.tracker, parallel.tracker));
    ASSERT_EQ(serial.shards.size(), parallel.shards.size());
    for (uint32_t s = 0; s < p; ++s) {
      EXPECT_EQ(serial.shards[s].raw(), parallel.shards[s].raw());
      EXPECT_EQ(serial.shards[s].size(), parallel.shards[s].size());
    }
  }
}

TEST_F(DeterminismTest, AcyclicJoinIsBitIdenticalAcrossThreadCounts) {
  Hypergraph query = catalog::Path(4);
  AcyclicRunOptions options;
  options.policy = RunPolicy::kOptimal;
  options.collect = true;
  options.p = 64;
  options.trace = true;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(seed);
    ThreadPool::SetGlobalThreads(1);
    Rng serial_rng(seed);
    Instance serial_instance = workload::UniformInstance(query, 2000, 200, &serial_rng);
    AcyclicRunResult serial = ComputeAcyclicJoin(query, serial_instance, options);

    ThreadPool::SetGlobalThreads(4);
    Rng parallel_rng(seed);
    Instance parallel_instance = workload::UniformInstance(query, 2000, 200, &parallel_rng);
    AcyclicRunResult parallel = ComputeAcyclicJoin(query, parallel_instance, options);

    EXPECT_EQ(serial.output_count, parallel.output_count);
    EXPECT_EQ(serial.max_load, parallel.max_load);
    EXPECT_EQ(serial.rounds, parallel.rounds);
    EXPECT_EQ(serial.servers_used, parallel.servers_used);
    EXPECT_EQ(serial.total_communication, parallel.total_communication);
    EXPECT_EQ(serial.load_threshold, parallel.load_threshold);
    EXPECT_TRUE(RelationsEqual(serial.results, parallel.results));
    EXPECT_TRUE(TrackersEqual(serial.load_tracker, parallel.load_tracker));
    EXPECT_EQ(TraceToString(serial.trace), TraceToString(parallel.trace));
  }
}

TEST_F(DeterminismTest, FastExperimentsAreBitIdenticalUnderFaultInjection) {
  // The resilience tentpole guarantee: running ANY experiment under a
  // FaultPlan with crashes and message corruption yields a report that is
  // byte-identical to the fault-free run once the fault./recovery. ledger
  // keys are stripped — and the fault-injected run itself is byte-identical
  // (ledger included) at 1 vs 4 threads, because every fault decision is a
  // pure function of exchange content, not of scheduling.
  resilience::FaultSpec spec;
  spec.seed = 0xFA17;
  spec.crash_rate = 0.05;
  spec.drop_rate = 0.001;
  spec.duplicate_rate = 0.001;
  for (const bench::Experiment& experiment : bench::AllExperiments()) {
    if (!experiment.fast) continue;
    SCOPED_TRACE(experiment.id);
    ThreadPool::SetGlobalThreads(4);
    telemetry::RunReport clean = bench::RunExperiment(experiment);
    telemetry::RunReport faulted_serial;
    telemetry::RunReport faulted_parallel;
    {
      resilience::ScopedFaultInjection injection(spec);
      ThreadPool::SetGlobalThreads(1);
      faulted_serial = bench::RunExperiment(experiment);
      ThreadPool::SetGlobalThreads(4);
      faulted_parallel = bench::RunExperiment(experiment);
    }
    EXPECT_EQ(clean.ok, faulted_parallel.ok);
    // Both sides stripped: for almost every experiment the clean report has
    // no ledger keys and stripping is a no-op, but resilience_overhead
    // injects faults internally and legitimately ledgers them even when no
    // outer FaultPlan is installed.
    EXPECT_EQ(StripResilienceMetrics(MaskTimers(ReportJson(clean))),
              StripResilienceMetrics(MaskTimers(ReportJson(faulted_parallel))));
    EXPECT_EQ(MaskTimers(ReportJson(faulted_serial)),
              MaskTimers(ReportJson(faulted_parallel)));
  }
}

TEST_F(DeterminismTest, AcyclicJoinRecoversBitIdenticallyUnderFaults) {
  // End-to-end pipeline under heavy faults: materialized results, tracker,
  // and decomposition trace all match the fault-free run exactly.
  Hypergraph query = catalog::Path(4);
  AcyclicRunOptions options;
  options.policy = RunPolicy::kOptimal;
  options.collect = true;
  options.p = 64;
  options.trace = true;
  Rng rng(11);
  Instance instance = workload::UniformInstance(query, 2000, 200, &rng);
  ThreadPool::SetGlobalThreads(4);
  AcyclicRunResult clean = ComputeAcyclicJoin(query, instance, options);

  resilience::FaultSpec spec;
  spec.seed = 0xFA17;
  spec.crash_rate = 0.2;
  spec.drop_rate = 0.01;
  spec.duplicate_rate = 0.01;
  for (unsigned threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    ThreadPool::SetGlobalThreads(threads);
    resilience::ScopedFaultInjection injection(spec);
    AcyclicRunResult faulted = ComputeAcyclicJoin(query, instance, options);
    EXPECT_EQ(clean.output_count, faulted.output_count);
    EXPECT_EQ(clean.max_load, faulted.max_load);
    EXPECT_EQ(clean.rounds, faulted.rounds);
    EXPECT_EQ(clean.servers_used, faulted.servers_used);
    EXPECT_EQ(clean.total_communication, faulted.total_communication);
    EXPECT_TRUE(RelationsEqual(clean.results, faulted.results));
    EXPECT_TRUE(TrackersEqual(clean.load_tracker, faulted.load_tracker));
    EXPECT_EQ(TraceToString(clean.trace), TraceToString(faulted.trace));
  }
}

TEST_F(DeterminismTest, OneRoundIsBitIdenticalAcrossThreadCounts) {
  Hypergraph query = catalog::Triangle();
  OneRoundOptions options;
  options.collect = true;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(seed);
    ThreadPool::SetGlobalThreads(1);
    Rng serial_rng(seed);
    Instance serial_instance = workload::ZipfInstance(query, 2000, 300, 1.1, &serial_rng);
    OneRoundResult serial = ComputeOneRoundSkewAware(query, serial_instance, 64, options);

    ThreadPool::SetGlobalThreads(4);
    Rng parallel_rng(seed);
    Instance parallel_instance = workload::ZipfInstance(query, 2000, 300, 1.1, &parallel_rng);
    OneRoundResult parallel = ComputeOneRoundSkewAware(query, parallel_instance, 64, options);

    EXPECT_EQ(serial.output_count, parallel.output_count);
    EXPECT_EQ(serial.max_load, parallel.max_load);
    EXPECT_EQ(serial.servers_used, parallel.servers_used);
    EXPECT_TRUE(RelationsEqual(serial.results, parallel.results));
    EXPECT_TRUE(TrackersEqual(serial.load_tracker, parallel.load_tracker));
  }
}

// The fast-experiment loops above already cover service_throughput, but
// the service's whole point is simulated-clock determinism, so it gets an
// explicit 1-vs-4-thread byte diff of the full report — cache hit/miss
// counters, latency percentiles, per-scenario throughput and all.
TEST_F(DeterminismTest, ServiceThroughputReportIsBitIdenticalAcrossThreadCounts) {
  const bench::Experiment* experiment = bench::FindExperiment("service_throughput");
  ASSERT_NE(experiment, nullptr);
  ThreadPool::SetGlobalThreads(1);
  telemetry::RunReport serial = bench::RunExperiment(*experiment);
  ThreadPool::SetGlobalThreads(4);
  telemetry::RunReport parallel = bench::RunExperiment(*experiment);
  EXPECT_TRUE(serial.ok);
  const std::string serial_json = MaskTimers(ReportJson(serial));
  EXPECT_EQ(serial_json, MaskTimers(ReportJson(parallel)));
  // The diff above is only meaningful if the cache telemetry is really in
  // the compared bytes.
  EXPECT_NE(serial_json.find("cache.open_c8_warm.hits"), std::string::npos);
  EXPECT_NE(serial_json.find("service.open_c8_cold.throughput_qpk"), std::string::npos);
}

TEST_F(DeterminismTest, PlannerAblationReportIsBitIdenticalAcrossThreadCounts) {
  const bench::Experiment* experiment = bench::FindExperiment("planner_ablation");
  ASSERT_NE(experiment, nullptr);
  ThreadPool::SetGlobalThreads(1);
  telemetry::RunReport serial = bench::RunExperiment(*experiment);
  ThreadPool::SetGlobalThreads(4);
  telemetry::RunReport parallel = bench::RunExperiment(*experiment);
  EXPECT_TRUE(serial.ok);
  const std::string serial_json = MaskTimers(ReportJson(serial));
  EXPECT_EQ(serial_json, MaskTimers(ReportJson(parallel)));
  // The diff above is only meaningful if the planner telemetry is really
  // in the compared bytes.
  EXPECT_NE(serial_json.find("planner.ablation.decisions_total"), std::string::npos);
  EXPECT_NE(serial_json.find("planner.ablation.within_10pct_fraction"),
            std::string::npos);
  EXPECT_NE(serial_json.find("planner.ablation.cache_misses"), std::string::npos);
}

// The cluster subsystem's determinism contract, explicitly: the elastic
// sweep (speed-weighted routing, membership migrations, chaos composition)
// is byte-identical at 1 vs 4 threads, and a crash-storm FaultPlan wrapped
// around the whole experiment changes nothing but the fault./recovery.
// ledger — the cluster.* ledger itself is content-determined, so it is
// compared, not stripped, in the thread diff, and stripped only alongside
// the resilience keys in the chaos diff.
TEST_F(DeterminismTest, ClusterElasticReportIsBitIdenticalAcrossThreadsAndChaos) {
  const bench::Experiment* experiment = bench::FindExperiment("cluster_elastic");
  ASSERT_NE(experiment, nullptr);
  ThreadPool::SetGlobalThreads(1);
  telemetry::RunReport serial = bench::RunExperiment(*experiment);
  ThreadPool::SetGlobalThreads(4);
  telemetry::RunReport parallel = bench::RunExperiment(*experiment);
  EXPECT_TRUE(serial.ok);
  const std::string serial_json = MaskTimers(ReportJson(serial));
  EXPECT_EQ(serial_json, MaskTimers(ReportJson(parallel)));
  // The diff above is only meaningful if the cluster ledger is really in
  // the compared bytes.
  EXPECT_NE(serial_json.find("cluster.tuples_migrated"), std::string::npos);
  EXPECT_NE(serial_json.find("cluster.migrations"), std::string::npos);

  resilience::FaultSpec storm;
  storm.seed = 0x57021;
  storm.crash_rate = 0.15;
  storm.drop_rate = 0.005;
  storm.duplicate_rate = 0.005;
  telemetry::RunReport stormy;
  {
    resilience::ScopedFaultInjection injection(storm);
    stormy = bench::RunExperiment(*experiment);
  }
  EXPECT_EQ(serial.ok, stormy.ok);
  EXPECT_EQ(StripClusterMetrics(StripResilienceMetrics(serial_json)),
            StripClusterMetrics(
                StripResilienceMetrics(MaskTimers(ReportJson(stormy)))));
}

TEST_F(DeterminismTest, PlanChooserDecisionDigestsAreThreadCountInvariant) {
  // The chooser reads shard-parallel statistics; every decision's byte
  // digest (algorithm, estimates, LP numbers, per-candidate table) must be
  // identical no matter how many threads built the stats.
  const auto corpus = planner::BuildDifferentialCorpus(0x9DEC1DE, 12);
  std::vector<std::string> serial;
  ThreadPool::SetGlobalThreads(1);
  for (const auto& c : corpus) {
    const planner::StatsSnapshot stats = planner::BuildStatsSnapshot(c.query, c.instance);
    serial.push_back(planner::PlanChooser::Choose(c.query, 32, stats).Digest());
  }
  ThreadPool::SetGlobalThreads(4);
  for (size_t i = 0; i < corpus.size(); ++i) {
    const planner::StatsSnapshot stats =
        planner::BuildStatsSnapshot(corpus[i].query, corpus[i].instance);
    EXPECT_EQ(serial[i],
              planner::PlanChooser::Choose(corpus[i].query, 32, stats).Digest())
        << corpus[i].name;
  }
}

// Cold-vs-warm cache invariance, straight on the service (no bench layer):
// the second identical run is served 100% from the cache, repeats every
// per-entry load fingerprint, and both runs are reproducible from scratch
// at a different thread count.
TEST_F(DeterminismTest, ServiceColdAndWarmRunsAreThreadCountInvariant) {
  const auto make_service = [] {
    service::ServiceConfig config;
    config.total_servers = 128;
    config.servers_per_query = 32;
    config.workload.clients = 4;
    config.workload.queries_per_client = 5;
    config.workload.seed = 0xD1CE;
    auto svc = std::make_unique<service::QueryService>(config);
    svc->RegisterQuery("path3", catalog::Path(3),
                       workload::MatchingInstance(catalog::Path(3), 512));
    svc->RegisterQuery("line3", catalog::Line3(),
                       workload::MatchingInstance(catalog::Line3(), 512));
    svc->RegisterQuery("triangle", catalog::Triangle(),
                       workload::MatchingInstance(catalog::Triangle(), 512));
    svc->RegisterQuery("star3", catalog::Star(3),
                       workload::MatchingInstance(catalog::Star(3), 512));
    return svc;
  };

  ThreadPool::SetGlobalThreads(1);
  auto serial_svc = make_service();
  const service::ServiceRunStats cold_serial = serial_svc->Run();
  const service::ServiceRunStats warm_serial = serial_svc->Run();

  ThreadPool::SetGlobalThreads(4);
  auto parallel_svc = make_service();
  const service::ServiceRunStats cold_parallel = parallel_svc->Run();
  const service::ServiceRunStats warm_parallel = parallel_svc->Run();

  // Byte-identical digests across thread counts, cold and warm alike —
  // the digest includes every outcome, fingerprint, and cache counter.
  EXPECT_EQ(cold_serial.Digest(), cold_parallel.Digest());
  EXPECT_EQ(warm_serial.Digest(), warm_parallel.Digest());

  // Warm means warm: 100% hits, nothing inserted, loads repeated exactly.
  EXPECT_EQ(warm_serial.cache.hits, warm_serial.arrivals);
  EXPECT_EQ(warm_serial.cache.misses, 0u);
  EXPECT_EQ(warm_serial.cache.insertions, 0u);
  EXPECT_GT(cold_serial.cache.misses, 0u);
  ASSERT_EQ(warm_serial.entry_fingerprints.size(), cold_serial.entry_fingerprints.size());
  for (size_t i = 0; i < warm_serial.entry_fingerprints.size(); ++i) {
    if (cold_serial.entry_fingerprints[i].executed &&
        warm_serial.entry_fingerprints[i].executed) {
      EXPECT_EQ(warm_serial.entry_fingerprints[i], cold_serial.entry_fingerprints[i]);
    }
  }
  EXPECT_EQ(warm_serial.load_mismatches, 0u);
  EXPECT_EQ(cold_serial.load_mismatches, 0u);
}

}  // namespace
}  // namespace coverpack
