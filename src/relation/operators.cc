#include "relation/operators.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"
#include "util/logging.h"

namespace coverpack {

namespace {

/// Hashes the projection of a row onto `key_cols`.
uint64_t HashKey(std::span<const Value> row, const std::vector<uint32_t>& key_cols) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (uint32_t col : key_cols) h = HashCombine(h, row[col]);
  return h;
}

bool KeysEqual(std::span<const Value> a, const std::vector<uint32_t>& a_cols,
               std::span<const Value> b, const std::vector<uint32_t>& b_cols) {
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (a[a_cols[i]] != b[b_cols[i]]) return false;
  }
  return true;
}

std::vector<uint32_t> ColumnsOf(const Relation& relation, AttrSet attrs) {
  std::vector<uint32_t> cols;
  for (AttrId attr : attrs.ToVector()) cols.push_back(relation.ColumnOf(attr));
  return cols;
}

}  // namespace

Relation Select(const Relation& input, AttrId attr, Value value) {
  Relation output(input.attrs());
  uint32_t col = input.ColumnOf(attr);
  for (size_t i = 0; i < input.size(); ++i) {
    auto row = input.row(i);
    if (row[col] == value) output.AppendRow(row);
  }
  return output;
}

Relation SelectIn(const Relation& input, AttrId attr, const std::vector<Value>& sorted_values) {
  Relation output(input.attrs());
  uint32_t col = input.ColumnOf(attr);
  for (size_t i = 0; i < input.size(); ++i) {
    auto row = input.row(i);
    if (std::binary_search(sorted_values.begin(), sorted_values.end(), row[col])) {
      output.AppendRow(row);
    }
  }
  return output;
}

Relation Project(const Relation& input, AttrSet attrs) {
  CP_CHECK(attrs.IsSubsetOf(input.attrs()));
  Relation output(attrs);
  std::vector<uint32_t> cols = ColumnsOf(input, attrs);
  std::vector<Value> buffer(cols.size());
  for (size_t i = 0; i < input.size(); ++i) {
    auto row = input.row(i);
    for (size_t j = 0; j < cols.size(); ++j) buffer[j] = row[cols[j]];
    output.AppendRow(std::span<const Value>(buffer));
  }
  output.Dedup();
  return output;
}

std::vector<Value> DistinctValues(const Relation& input, AttrId attr) {
  std::vector<Value> values;
  uint32_t col = input.ColumnOf(attr);
  values.reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) values.push_back(input.row(i)[col]);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

Relation SemiJoin(const Relation& left, const Relation& right) {
  AttrSet shared = left.attrs().Intersect(right.attrs());
  if (shared.empty()) {
    return right.empty() ? Relation(left.attrs()) : left;
  }
  std::vector<uint32_t> left_cols = ColumnsOf(left, shared);
  std::vector<uint32_t> right_cols = ColumnsOf(right, shared);

  // Build a hash set of the right side's shared-attribute projections.
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  for (size_t i = 0; i < right.size(); ++i) {
    index[HashKey(right.row(i), right_cols)].push_back(i);
  }
  Relation output(left.attrs());
  for (size_t i = 0; i < left.size(); ++i) {
    auto row = left.row(i);
    auto it = index.find(HashKey(row, left_cols));
    if (it == index.end()) continue;
    for (size_t j : it->second) {
      if (KeysEqual(row, left_cols, right.row(j), right_cols)) {
        output.AppendRow(row);
        break;
      }
    }
  }
  return output;
}

Relation HashJoin(const Relation& left, const Relation& right) {
  AttrSet shared = left.attrs().Intersect(right.attrs());
  AttrSet out_attrs = left.attrs().Union(right.attrs());
  Relation output(out_attrs);

  std::vector<uint32_t> left_cols = ColumnsOf(left, shared);
  std::vector<uint32_t> right_cols = ColumnsOf(right, shared);

  std::unordered_map<uint64_t, std::vector<size_t>> index;
  for (size_t i = 0; i < right.size(); ++i) {
    index[HashKey(right.row(i), right_cols)].push_back(i);
  }

  // Output column plan: for each output attribute, where to read it from.
  struct Source {
    bool from_left;
    uint32_t col;
  };
  std::vector<Source> plan;
  for (AttrId attr : out_attrs.ToVector()) {
    if (left.attrs().Contains(attr)) {
      plan.push_back({true, left.ColumnOf(attr)});
    } else {
      plan.push_back({false, right.ColumnOf(attr)});
    }
  }

  std::vector<Value> buffer(plan.size());
  for (size_t i = 0; i < left.size(); ++i) {
    auto lrow = left.row(i);
    auto it = index.find(HashKey(lrow, left_cols));
    if (it == index.end()) continue;
    for (size_t j : it->second) {
      auto rrow = right.row(j);
      if (!KeysEqual(lrow, left_cols, rrow, right_cols)) continue;
      for (size_t k = 0; k < plan.size(); ++k) {
        buffer[k] = plan[k].from_left ? lrow[plan[k].col] : rrow[plan[k].col];
      }
      output.AppendRow(std::span<const Value>(buffer));
    }
  }
  return output;
}

Relation MultiwayJoin(const std::vector<const Relation*>& inputs) {
  CP_CHECK(!inputs.empty());
  std::vector<const Relation*> ordered = inputs;
  std::sort(ordered.begin(), ordered.end(),
            [](const Relation* a, const Relation* b) { return a->size() < b->size(); });
  Relation result = *ordered[0];
  for (size_t i = 1; i < ordered.size(); ++i) {
    result = HashJoin(result, *ordered[i]);
    if (result.empty()) break;
  }
  return result;
}

Relation AttachConstant(const Relation& input, AttrId attr, Value value) {
  CP_CHECK(!input.attrs().Contains(attr));
  AttrSet out_attrs = input.attrs().Union(AttrSet::Single(attr));
  Relation output(out_attrs);
  output.Reserve(input.size());
  uint32_t insert_at = output.ColumnOf(attr);
  std::vector<Value> buffer(output.width());
  for (size_t i = 0; i < input.size(); ++i) {
    auto row = input.row(i);
    for (uint32_t c = 0; c < insert_at; ++c) buffer[c] = row[c];
    buffer[insert_at] = value;
    for (uint32_t c = insert_at; c < input.width(); ++c) buffer[c + 1] = row[c];
    output.AppendRow(std::span<const Value>(buffer));
  }
  return output;
}

Relation DropColumn(const Relation& input, AttrId attr) {
  CP_CHECK(input.attrs().Contains(attr));
  AttrSet out_attrs = input.attrs().Minus(AttrSet::Single(attr));
  Relation output(out_attrs);
  output.Reserve(input.size());
  uint32_t drop_at = input.ColumnOf(attr);
  std::vector<Value> buffer(output.width());
  for (size_t i = 0; i < input.size(); ++i) {
    auto row = input.row(i);
    uint32_t w = 0;
    for (uint32_t c = 0; c < input.width(); ++c) {
      if (c != drop_at) buffer[w++] = row[c];
    }
    output.AppendRow(std::span<const Value>(buffer));
  }
  return output;
}

std::vector<std::pair<Value, uint64_t>> DegreeHistogram(const Relation& input, AttrId attr) {
  std::unordered_map<Value, uint64_t> counts;
  uint32_t col = input.ColumnOf(attr);
  for (size_t i = 0; i < input.size(); ++i) ++counts[input.row(i)[col]];
  std::vector<std::pair<Value, uint64_t>> histogram(counts.begin(), counts.end());
  std::sort(histogram.begin(), histogram.end());
  return histogram;
}

}  // namespace coverpack
