// cplint fixture: the planner's simulated cost clock. Estimated ticks are
// derived from tuple counts and round latencies on a uint64 tick axis —
// pure functions of the statistics, never of host time.
#include <cstdint>

constexpr uint64_t kRoundLatencyTicks = 32;
constexpr uint64_t kTuplesPerTick = 64;

uint64_t PlanCostTicks(uint32_t rounds, uint64_t load) {
  return uint64_t{rounds} * kRoundLatencyTicks +
         (load + kTuplesPerTick - 1) / kTuplesPerTick;
}
