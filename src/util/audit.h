/// \file audit.h
/// \brief Compile-time-gated runtime invariant audits for the MPC simulator.
///
/// The whole value of this reproduction is *exact* load accounting: every
/// claimed bound is checked by comparing LoadTracker::MaxLoad() against the
/// paper's closed-form N / p^(1/x) exponents, so a silent accounting bug (a
/// lost tuple in a tracker merge, a denormalized Rational in a simplex
/// pivot, a hypercube grid whose dimensions exceed p) corrupts every bench
/// downstream without failing any test. This header provides the defense:
///
///  * CP_AUDIT / CP_AUDIT_EQ / ... — check macros that compile to nothing
///    unless the build defines COVERPACK_AUDIT (cmake -DCOVERPACK_AUDIT=ON).
///    Hot paths use them for conservation checks that would be too costly
///    to run unconditionally (they often recompute whole-tracker totals).
///  * CP_AUDIT_ONLY(...) — splices statements (typically the "before"
///    snapshots those checks compare against) into audit builds only.
///  * SimulatorAuditor — named verifiers for the recurring invariant
///    shapes (conservation, exchange symmetry, grid capacity, normalized
///    fractions) plus a global audit counter tests can use to prove the
///    hooks actually fired. The verifiers themselves are compiled in every
///    build so unit tests exercise them unconditionally; only the hot-path
///    hooks are gated.
///
/// Every audit failure aborts through the CP_CHECK machinery — an audit
/// that fails means a theorem-checking quantity is already corrupt, and
/// continuing would validate garbage against the paper's bounds.

#ifndef COVERPACK_UTIL_AUDIT_H_
#define COVERPACK_UTIL_AUDIT_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace coverpack {
namespace audit {

/// Process-wide invariant auditor for the simulator. All state is static:
/// audits run inside primitives that have no natural place to thread an
/// auditor instance through, and the only mutable state is one atomic
/// counter.
class SimulatorAuditor {
 public:
  /// True iff this build compiled the CP_AUDIT hot-path hooks in.
  static constexpr bool kCompiledIn =
#ifdef COVERPACK_AUDIT
      true;
#else
      false;
#endif

  /// Number of audit checks performed since process start (or ResetStats).
  static uint64_t checks_performed();

  /// Resets the audit counter (tests only).
  static void ResetStats();

  /// Bumps the audit counter; called by the CP_AUDIT macros and the named
  /// verifiers below. Thread-safe.
  static void NoteCheck();

  // ---- Named verifiers ----------------------------------------------------
  // Always compiled; abort via CP_CHECK on violation. `context` names the
  // operation being audited and is echoed in the failure message.

  /// An operation that reported adding `delta` units to a quantity that
  /// was `before` must leave it at exactly `before + delta`: merges and
  /// charge primitives may neither lose nor invent communication volume.
  static void VerifyConservation(uint64_t before, uint64_t delta, uint64_t after,
                                 const char* context);

  /// A routing/exchange step must deliver exactly as many tuples as were
  /// sent into it.
  static void VerifyExchange(uint64_t sent, uint64_t received, const char* context);

  /// A hypercube share vector must satisfy prod_i shares[i] == grid_size
  /// and grid_size <= p, with every dimension >= 1.
  static void VerifyGridFits(const std::vector<uint32_t>& shares, uint64_t grid_size,
                             uint64_t p, const char* context);

  /// A num/den pair claiming to be a normalized rational must have den > 0
  /// and gcd(|num|, den) == 1.
  static void VerifyNormalizedFraction(int64_t num, int64_t den, const char* context);
};

}  // namespace audit
}  // namespace coverpack

#ifdef COVERPACK_AUDIT

#define CP_AUDIT(condition)                                \
  do {                                                     \
    ::coverpack::audit::SimulatorAuditor::NoteCheck();     \
    CP_CHECK(condition);                                   \
  } while (false)
#define CP_INTERNAL_AUDIT_OP(check, a, b)                  \
  do {                                                     \
    ::coverpack::audit::SimulatorAuditor::NoteCheck();     \
    check(a, b);                                           \
  } while (false)
#define CP_AUDIT_EQ(a, b) CP_INTERNAL_AUDIT_OP(CP_CHECK_EQ, a, b)
#define CP_AUDIT_NE(a, b) CP_INTERNAL_AUDIT_OP(CP_CHECK_NE, a, b)
#define CP_AUDIT_LT(a, b) CP_INTERNAL_AUDIT_OP(CP_CHECK_LT, a, b)
#define CP_AUDIT_LE(a, b) CP_INTERNAL_AUDIT_OP(CP_CHECK_LE, a, b)
#define CP_AUDIT_GT(a, b) CP_INTERNAL_AUDIT_OP(CP_CHECK_GT, a, b)
#define CP_AUDIT_GE(a, b) CP_INTERNAL_AUDIT_OP(CP_CHECK_GE, a, b)

/// Splices its arguments into the enclosing scope in audit builds only.
/// Use for snapshots whose sole consumers are CP_AUDIT checks.
#define CP_AUDIT_ONLY(...) __VA_ARGS__

#else  // !COVERPACK_AUDIT

// The no-op forms swallow their arguments entirely: operands may reference
// variables that only CP_AUDIT_ONLY declares, so they must not be compiled
// here at all.
#define CP_AUDIT(condition) \
  do {                      \
  } while (false)
#define CP_AUDIT_EQ(a, b) \
  do {                    \
  } while (false)
#define CP_AUDIT_NE(a, b) \
  do {                    \
  } while (false)
#define CP_AUDIT_LT(a, b) \
  do {                    \
  } while (false)
#define CP_AUDIT_LE(a, b) \
  do {                    \
  } while (false)
#define CP_AUDIT_GT(a, b) \
  do {                    \
  } while (false)
#define CP_AUDIT_GE(a, b) \
  do {                    \
  } while (false)
#define CP_AUDIT_ONLY(...)

#endif  // COVERPACK_AUDIT

#endif  // COVERPACK_UTIL_AUDIT_H_
