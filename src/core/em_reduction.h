/// \file em_reduction.h
/// \brief The MPC -> external memory (EM) reduction of Section 1.3/1.4.
///
/// [19] shows a cost-preserving conversion: an MPC algorithm running in r
/// rounds with load L(N, p) yields an EM algorithm by simulating
/// p° = min{ p : L(N, p) <= M / r } virtual servers with an M-word memory,
/// spending one scan of the communicated data per round:
/// I/O = O(r * p° * L / B). Plugging in Theorem 5's L = N / p^(1/rho*)
/// gives p° = (r N / M)^{rho*} and I/O = O(N^{rho*} / (M^{rho*-1} B)) for
/// every alpha-acyclic join — the paper's claim that its result shadows
/// the earlier Berge-acyclic-only EM algorithm of [14].

#ifndef COVERPACK_CORE_EM_REDUCTION_H_
#define COVERPACK_CORE_EM_REDUCTION_H_

#include <cstdint>

#include "query/hypergraph.h"

namespace coverpack {

/// External-memory cost parameters (words).
struct EmCostModel {
  uint64_t memory = 1 << 20;  ///< M: words of internal memory
  uint64_t block = 1 << 10;   ///< B: words per I/O block
};

/// Result of reducing an MPC run to the EM model.
struct EmReductionResult {
  uint64_t p_star = 0;       ///< min p with L(N, p) <= M / rounds
  uint64_t load_at_p_star = 0;
  uint64_t io_count = 0;     ///< r * p_star * L(p_star) / B
  double closed_form = 0.0;  ///< N^{rho*} / (M^{rho*-1} B)
};

/// Applies the reduction to the Theorem 5 algorithm on an alpha-acyclic
/// query with uniform relation size n. `rounds` is the constant round
/// count of the MPC algorithm (query-dependent; measured runs report it).
EmReductionResult ReduceMpcToEm(const Hypergraph& query, uint64_t n, const EmCostModel& em,
                                uint32_t rounds);

/// The closed form O(N^{rho*} / (M^{rho*-1} B)) for comparison.
double EmIoClosedForm(const Hypergraph& query, uint64_t n, const EmCostModel& em);

}  // namespace coverpack

#endif  // COVERPACK_CORE_EM_REDUCTION_H_
