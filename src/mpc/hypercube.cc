#include "mpc/hypercube.h"

#include <algorithm>
#include <cmath>

#include "lp/simplex.h"
#include "mpc/exchange.h"
#include "relation/oracle.h"
#include "util/arena.h"
#include "util/audit.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace mpc {

namespace {

/// Per-attribute salted hash for grid coordinates.
uint32_t CoordinateHash(AttrId attr, Value value, uint32_t extent) {
  if (extent <= 1) return 0;
  return static_cast<uint32_t>(MixHash(value * 0x100000001B3ull + attr + 1) % extent);
}

/// Reduces integer shares until their product fits into p, removing from
/// the largest dimension first (costs the least in load).
void FitSharesToP(std::vector<uint32_t>* shares, uint32_t p, uint64_t* grid_size) {
  auto product = [&] {
    uint64_t total = 1;
    for (uint32_t share : *shares) {
      total *= share;
      if (total > (uint64_t{1} << 40)) break;
    }
    return total;
  };
  while (product() > p) {
    auto it = std::max_element(shares->begin(), shares->end());
    CP_CHECK_GT(*it, 1u) << "cannot fit shares into p";
    --(*it);
  }
  *grid_size = product();
  CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyGridFits(*shares, *grid_size, p,
                                                        "FitSharesToP");)
}

/// floor(p^(num/den)) computed exactly when p^num fits in 64 bits, with a
/// floating-point fallback for extreme exponents.
uint32_t IntegerPower(uint32_t p, const Rational& exponent) {
  if (exponent.is_zero() || !exponent.is_positive()) return 1;
  uint64_t num = static_cast<uint64_t>(exponent.num());
  uint32_t den = static_cast<uint32_t>(exponent.den());
  double bits = static_cast<double>(num) * std::log2(static_cast<double>(p));
  if (bits < 62.0) {
    uint64_t powered = SaturatingPow(p, static_cast<uint32_t>(num));
    return static_cast<uint32_t>(FloorNthRoot(powered, den));
  }
  return static_cast<uint32_t>(
      std::floor(std::pow(static_cast<double>(p), exponent.ToDouble())));
}

}  // namespace

ShareVector OptimizeShares(const Hypergraph& query, uint32_t p) {
  uint32_t num_attrs = query.num_attrs();
  // Variables: y_0..y_{n-1}, t. Maximize t subject to
  //   sum_x y_x <= 1, and for every edge e: t - sum_{x in e} y_x <= 0.
  LinearProgram lp(num_attrs + 1);
  std::vector<Rational> budget(num_attrs + 1, Rational(0));
  for (AttrId v : query.AllAttrs().ToVector()) budget[v] = Rational(1);
  lp.AddLeq(budget, Rational(1));
  for (const auto& edge : query.edges()) {
    std::vector<Rational> row(num_attrs + 1, Rational(0));
    row[num_attrs] = Rational(1);
    for (AttrId v : edge.attrs.ToVector()) row[v] = Rational(-1);
    lp.AddLeq(row, Rational(0));
  }
  std::vector<Rational> objective(num_attrs + 1, Rational(0));
  objective[num_attrs] = Rational(1);
  lp.SetObjective(objective);
  LpResult solved = lp.Maximize();
  CP_CHECK_EQ(solved.status, LpStatus::kOptimal);

  ShareVector result;
  result.objective = solved.objective;
  result.exponents.assign(solved.solution.begin(), solved.solution.begin() + num_attrs);
  result.shares.assign(num_attrs, 1);
  for (AttrId v = 0; v < num_attrs; ++v) {
    result.shares[v] = std::max<uint32_t>(1, IntegerPower(p, result.exponents[v]));
  }
  FitSharesToP(&result.shares, p, &result.grid_size);
  return result;
}

ShareVector UniformShares(const Hypergraph& query, AttrSet attrs, uint32_t p) {
  ShareVector result;
  uint32_t num_attrs = query.num_attrs();
  result.shares.assign(num_attrs, 1);
  result.exponents.assign(num_attrs, Rational(0));
  uint32_t k = attrs.size();
  if (k == 0) {
    result.grid_size = 1;
    return result;
  }
  uint32_t per_dim = static_cast<uint32_t>(FloorNthRoot(p, k));
  per_dim = std::max<uint32_t>(1, per_dim);
  for (AttrId v : attrs.ToVector()) {
    result.shares[v] = per_dim;
    result.exponents[v] = Rational(1, k);
  }
  FitSharesToP(&result.shares, p, &result.grid_size);
  return result;
}

ShareVector OptimizeSharesForSizes(const Hypergraph& query,
                                   const std::vector<uint64_t>& relation_sizes, uint32_t p) {
  CP_CHECK_EQ(relation_sizes.size(), query.num_edges());
  uint32_t num_attrs = query.num_attrs();
  ShareVector result;
  result.shares.assign(num_attrs, 1);
  result.exponents.assign(num_attrs, Rational(0));
  result.objective = OptimizeShares(query, p).objective;  // 1/tau* for reporting

  auto cost = [&](const std::vector<uint32_t>& shares) {
    double total = 0.0;
    for (uint32_t e = 0; e < query.num_edges(); ++e) {
      double denom = 1.0;
      for (AttrId v : query.edge(e).attrs.ToVector()) {
        denom *= static_cast<double>(shares[v]);
      }
      total += static_cast<double>(relation_sizes[e]) / denom;
    }
    return total;
  };
  auto product = [&](const std::vector<uint32_t>& shares) {
    uint64_t total = 1;
    for (uint32_t share : shares) {
      total *= share;
      if (total > p) return total;
    }
    return total;
  };

  // Greedy: repeatedly increment the share that lowers the replication
  // cost the most while the grid still fits into p.
  bool improved = true;
  while (improved) {
    improved = false;
    double best_cost = cost(result.shares);
    AttrId best_attr = num_attrs;
    for (AttrId v : query.AllAttrs().ToVector()) {
      std::vector<uint32_t> trial = result.shares;
      ++trial[v];
      if (product(trial) > p) continue;
      double trial_cost = cost(trial);
      if (trial_cost < best_cost - 1e-12) {
        best_cost = trial_cost;
        best_attr = v;
      }
    }
    if (best_attr != num_attrs) {
      ++result.shares[best_attr];
      improved = true;
    }
  }
  result.grid_size = product(result.shares);
  CP_CHECK_LE(result.grid_size, p);
  CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyGridFits(result.shares, result.grid_size, p,
                                                        "OptimizeSharesForSizes");)
  return result;
}

HypercubeResult HypercubeJoin(Cluster* cluster, const Hypergraph& query,
                              const Instance& instance, const ShareVector& shares,
                              uint32_t round, bool collect) {
  instance.CheckAgainst(query);
  uint32_t num_attrs = query.num_attrs();
  CP_CHECK_EQ(shares.shares.size(), num_attrs);
  CP_CHECK_LE(shares.grid_size, cluster->p());
  CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyGridFits(shares.shares, shares.grid_size,
                                                        cluster->p(), "HypercubeJoin");)

  // Mixed-radix strides over attribute dimensions. All routing scratch
  // (strides, per-edge bound/free dimension arrays) lives in one arena
  // frame: AddSource evaluates routes before returning, so nothing below
  // outlives the frame.
  ArenaScope scope;
  Arena* arena = scope.arena();
  uint64_t* stride = arena->AllocateArray<uint64_t>(num_attrs);
  uint64_t extent = 1;
  for (AttrId v = 0; v < num_attrs; ++v) {
    stride[v] = extent;
    extent *= shares.shares[v];
  }
  CP_CHECK_EQ(extent, shares.grid_size);

  // Route every tuple of every relation to all consistent grid cells: one
  // Exchange over the grid with one routed source per relation. In collect
  // mode the routes are recorded and Execute delivers the rows; otherwise
  // only per-cell receive counts are planned (charge-only routing).
  std::vector<Instance> per_server;
  if (collect) per_server.assign(shares.grid_size, Instance(query));
  ExchangePlan plan(static_cast<uint32_t>(shares.grid_size));
  CP_AUDIT_ONLY(uint64_t expected_receives = 0;)

  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    const Relation& relation = instance[e];
    AttrSet edge_attrs = query.edge(e).attrs;
    // Free dimensions: attributes not in this relation with share > 1.
    ArenaVector<AttrId> free_dims(arena);
    uint64_t free_combos = 1;
    for (AttrId v = 0; v < num_attrs; ++v) {
      if (!edge_attrs.Contains(v) && shares.shares[v] > 1) {
        free_dims.push_back(v);
        free_combos *= shares.shares[v];
      }
    }
    // Hypercube replication factor: every tuple of e lands on exactly
    // free_combos grid cells, one per combination of free coordinates.
    CP_AUDIT_ONLY(expected_receives += relation.size() * free_combos;)
    ArenaVector<uint32_t> cols(arena);
    ArenaVector<AttrId> bound(arena);
    for (AttrId v : edge_attrs.ToVector()) {
      bound.push_back(v);
      cols.push_back(relation.ColumnOf(v));
    }
    auto route_row = [&](size_t i, const auto& emit) {
      auto row = relation.row(i);
      uint64_t base = 0;
      for (size_t j = 0; j < bound.size(); ++j) {
        base += stride[bound[j]] * CoordinateHash(bound[j], row[cols[j]], shares.shares[bound[j]]);
      }
      // Enumerate all combinations over the free dimensions.
      for (uint64_t combo = 0; combo < free_combos; ++combo) {
        uint64_t cell = base;
        uint64_t rest = combo;
        for (AttrId v : free_dims) {
          cell += stride[v] * (rest % shares.shares[v]);
          rest /= shares.shares[v];
        }
        emit(cell);
      }
    };
    // Source index == edge index: AddSource is called once per edge, in
    // edge order, so the sink below can key destinations by edge.
    plan.AddSource(relation, /*record=*/collect, route_row, free_combos);
  }

  HypercubeResult result;
  ExchangeStats stats;
  if (collect) {
    // Delivery replays routes in ascending (edge, shard, row) order — the
    // per-cell append order of the serial path.
    stats = Exchange::Execute(
        cluster, round, plan,
        [&per_server](size_t edge, uint32_t cell) { return &per_server[cell][edge]; },
        "hypercube");
  } else {
    stats = Exchange::Execute(cluster, round, plan, "hypercube");
  }
  result.max_receive_load = stats.max_receive;
  // Routing conservation: the grid received exactly size(e) * free_combos(e)
  // tuples per relation. (The planned == charged half of the invariant is
  // audited inside Exchange::Execute.)
  CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyExchange(expected_receives, stats.planned,
                                                        "HypercubeJoin routing");)

  if (collect) {
    result.results = DistRelation(query.AllAttrs(), cluster->p());
    // Per-cell joins are independent: each writes its own output shard, and
    // the per-cell counts are summed in cell order afterwards.
    std::vector<uint64_t> cell_outputs(shares.grid_size, 0);
    ThreadPool::Global().ParallelFor(0, shares.grid_size, 1, [&](size_t s) {
      Relation local = GenericJoin(query, per_server[s]);
      cell_outputs[s] = local.size();
      result.results.shard(static_cast<uint32_t>(s)) = std::move(local);
    });
    for (uint64_t count : cell_outputs) result.output_count += count;
  }
  return result;
}

}  // namespace mpc
}  // namespace coverpack
