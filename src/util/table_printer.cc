#include "util/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace coverpack {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_rule = [&] {
    os << "+";
    for (size_t width : widths) os << std::string(width + 2, '-') << "+";
    os << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
  print_rule();
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace coverpack
