#include "query/join_tree.h"

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"
#include "query/properties.h"

namespace coverpack {
namespace {

/// Checks the running-intersection property directly.
void ExpectValidJoinTree(const Hypergraph& query, const JoinTree& tree) {
  for (AttrId v : query.AllAttrs().ToVector()) {
    EdgeSet holders = query.EdgesContaining(v);
    if (holders.size() <= 1) continue;
    // Count tree edges among holders: connectivity needs exactly
    // |holders| - 1 within-holder parent links.
    uint32_t links = 0;
    for (EdgeId node : holders.ToVector()) {
      uint32_t parent = tree.parent(node);
      if (parent != JoinTree::kNoParent && holders.Contains(parent)) ++links;
    }
    EXPECT_EQ(links, holders.size() - 1)
        << "attribute " << query.attr_name(v) << " not connected in tree";
  }
}

TEST(JoinTreeTest, BuildsForAcyclicQueries) {
  for (const auto& entry : catalog::StandardRoster()) {
    auto tree = JoinTree::Build(entry.query);
    EXPECT_EQ(tree.has_value(), IsAlphaAcyclic(entry.query)) << entry.name;
    if (tree) ExpectValidJoinTree(entry.query, *tree);
  }
}

TEST(JoinTreeTest, Figure4TreeIsValid) {
  Hypergraph q = catalog::Figure4Query();
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  ExpectValidJoinTree(q, *tree);
  EXPECT_EQ(tree->Roots().size(), 1u);
  EXPECT_EQ(tree->num_nodes(), 8u);
}

TEST(JoinTreeTest, DisconnectedQueryGivesForest) {
  Hypergraph q = ParseQuery("R1(A,B), R2(B,C), R3(X,Y)");
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->Roots().size(), 2u);
  EXPECT_EQ(tree->Components().size(), 2u);
}

TEST(JoinTreeTest, CyclicQueriesRejected) {
  EXPECT_FALSE(JoinTree::Build(catalog::Triangle()).has_value());
  EXPECT_FALSE(JoinTree::Build(catalog::BoxJoin()).has_value());
  EXPECT_FALSE(JoinTree::Build(catalog::LoomisWhitney(4)).has_value());
}

TEST(JoinTreeTest, TreeComponentsDefinition31) {
  // Example 3.2 shape: on the Figure 4 tree, {e1, e3, e7} are pairwise
  // tree-disconnected even though they share attribute A.
  Hypergraph q = catalog::Figure4Query();
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  EdgeSet s1;
  s1.Insert(*q.FindEdge("e1"));
  s1.Insert(*q.FindEdge("e3"));
  s1.Insert(*q.FindEdge("e7"));
  EXPECT_EQ(tree->TreeComponents(s1).size(), 3u);
  // Adding e0 merges e1 and e3 with it (both are its tree neighbors).
  EdgeSet s2 = s1;
  s2.Insert(*q.FindEdge("e0"));
  std::vector<EdgeSet> components = tree->TreeComponents(s2);
  EXPECT_LT(components.size(), 4u);
}

TEST(JoinTreeTest, PathBetween) {
  Hypergraph q = catalog::Path(5);
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  EdgeId r1 = *q.FindEdge("R1");
  EdgeId r5 = *q.FindEdge("R5");
  std::vector<uint32_t> path = tree->PathBetween(r1, r5);
  EXPECT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), r1);
  EXPECT_EQ(path.back(), r5);
}

TEST(JoinTreeTest, RerootPreservesStructure) {
  Hypergraph q = catalog::Path(4);
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  EdgeId r4 = *q.FindEdge("R4");
  tree->RerootAt(r4);
  EXPECT_TRUE(tree->IsRoot(r4));
  EXPECT_EQ(tree->Roots().size(), 1u);
  ExpectValidJoinTree(q, *tree);
  // Still a tree: every other node has a parent.
  uint32_t no_parent = 0;
  for (uint32_t n = 0; n < tree->num_nodes(); ++n) {
    if (tree->parent(n) == JoinTree::kNoParent) ++no_parent;
  }
  EXPECT_EQ(no_parent, 1u);
}

TEST(JoinTreeTest, LeavesOfStar) {
  Hypergraph q = catalog::Star(4);
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->Leaves().size(), 3u);  // hub + 3 leaves
}

}  // namespace
}  // namespace coverpack
