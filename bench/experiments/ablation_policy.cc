/// \file ablation_policy.cc
/// \brief Ablation of the two design choices the paper separates:
///
/// (1) the choice set S^x — conservative {e1} (Section 3.2) vs aggressive
///     E_x (Section 4's path-style choices), executed at the *same*
///     threshold L so only the decomposition strategy differs;
/// (2) the threshold planner — Theorem 2's subjoin L vs Theorem 4's S(E)
///     L, executed with the same policy.
///
/// Output: measured load / rounds / servers per combination, showing that
/// the worst-case-optimal configuration is (E_x, Theorem-4 L), while the
/// conservative configuration is instance-adaptive.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "core/load_planner.h"
#include "experiments/runners.h"
#include "query/catalog.h"
#include "query/join_tree.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunAblationPolicy(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  struct Workload {
    std::string name;
    Hypergraph query;
    uint64_t n;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"path5/matching", catalog::Path(5), 8000});
  workloads.push_back({"figure4/matching", catalog::Figure4Query(), 2000});

  uint32_t p = 256;
  report.AddParam("p", uint64_t{p});
  bool all_ok = true;
  for (const auto& w : workloads) {
    telemetry::MetricsRegistry::ScopedTimer timer(&report.metrics, "workload/" + w.name);
    Instance instance = workload::MatchingInstance(w.query, w.n);
    auto tree = JoinTree::Build(w.query);
    uint64_t l_conservative = PlanLoadConservative(w.query, *tree, instance, p);
    uint64_t l_optimal = PlanLoadOptimal(w.query, instance, p);
    std::cout << "--- " << w.name << " (N = " << w.n << ", p = " << p
              << "): L_thm2 = " << l_conservative << ", L_thm4 = " << l_optimal << "\n";
    report.AddParam(w.name + "/N", w.n);

    TablePrinter table({"S^x policy", "L source", "L", "measured load", "rounds",
                        "servers"});
    for (RunPolicy policy : {RunPolicy::kConservative, RunPolicy::kOptimal}) {
      for (uint64_t load : {l_conservative, l_optimal}) {
        AcyclicRunOptions options;
        options.policy = policy;
        options.collect = false;
        options.p = p;
        options.load_threshold = load;
        AcyclicRunResult run = ComputeAcyclicJoin(w.query, instance, options);
        const char* policy_name =
            policy == RunPolicy::kConservative ? "e1" : "Ex";
        const char* load_name = load == l_conservative ? "thm2" : "thm4";
        ProfileRun(report,
                   w.name + "/" + policy_name + "/" + load_name, run.load_tracker);
        table.AddRow({policy == RunPolicy::kConservative ? "{e1}" : "E_x",
                      load == l_conservative ? "Thm2" : "Thm4", std::to_string(load),
                      std::to_string(run.max_load), std::to_string(run.rounds),
                      std::to_string(run.servers_used)});
        // Every configuration must stay within a constant of its L.
        if (run.max_load > 16 * load) all_ok = false;
      }
    }
    table.Print(std::cout);
  }
  std::cout << "every (policy, L) configuration executes within a constant of its "
               "threshold; the aggressive E_x choice trades slightly higher broadcast "
               "constants for the worst-case-optimal exponent.\n";
  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
