#include "core/acyclic_join.h"

#include <gtest/gtest.h>

#include "core/load_planner.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "relation/oracle.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

struct Case {
  const char* text;
  RunPolicy policy;
  uint64_t seed;
  double skew;  // 0 = uniform
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << c.text << (c.policy == RunPolicy::kOptimal ? " optimal" : " conservative") << " seed "
      << c.seed << " skew " << c.skew;
}

class AcyclicJoinCorrectness : public ::testing::TestWithParam<Case> {};

/// The central correctness property: the multi-round MPC run emits exactly
/// the oracle's join results, whatever the policy, instance, or skew.
TEST_P(AcyclicJoinCorrectness, MatchesOracle) {
  const Case& c = GetParam();
  Hypergraph q = ParseQuery(c.text);
  Rng rng(c.seed);
  Instance instance = c.skew == 0.0 ? workload::UniformInstance(q, 120, 12, &rng)
                                    : workload::ZipfInstance(q, 120, 20, c.skew, &rng);
  AcyclicRunOptions options;
  options.policy = c.policy;
  options.collect = true;
  options.p = 16;
  AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
  Relation expected = GenericJoin(q, instance);
  EXPECT_EQ(run.output_count, expected.size());
  EXPECT_TRUE(run.results.SameContentAs(expected));
  EXPECT_GT(run.load_threshold, 0u);
  EXPECT_LT(run.rounds, 64u);
}

constexpr const char* kLine3 = "R1(A,B), R2(B,C), R3(C,D)";
constexpr const char* kPath5 = "R1(A,B), R2(B,C), R3(C,D), R4(D,E), R5(E,F)";
constexpr const char* kStar = "R1(A,B), R2(A,C), R3(A,D)";
constexpr const char* kStarDual = "R0(A,B,C), R1(A), R2(B), R3(C)";
constexpr const char* kAlphaNotBerge = "R0(A,B,C), R1(A,B,D), R2(B,C,E), R3(A,C,F)";
constexpr const char* kDisconnected = "R1(A,B), R2(B,C), R3(X,Y)";
constexpr const char* kFig4 =
    "e0(A,B,C,H), e1(A,B,D), e2(B,C,E), e3(A,C,F), e4(A,B,H,J), e5(A,H,I), e6(A,I,K), e7(A,I,G)";

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  for (const char* text :
       {kLine3, kPath5, kStar, kStarDual, kAlphaNotBerge, kDisconnected, kFig4}) {
    for (RunPolicy policy : {RunPolicy::kConservative, RunPolicy::kOptimal}) {
      for (uint64_t seed : {1u, 2u}) {
        cases.push_back({text, policy, seed, 0.0});
      }
      cases.push_back({text, policy, 7u, 1.1});  // heavy skew exercises H(x)
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AcyclicJoinCorrectness, ::testing::ValuesIn(MakeCases()));

TEST(AcyclicJoinTest, EmptyInputEmptyOutput) {
  Hypergraph q = catalog::Line3();
  Instance instance(q);
  instance[0].AppendRow({1, 2});
  AcyclicRunOptions options;
  AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
  EXPECT_EQ(run.output_count, 0u);
}

TEST(AcyclicJoinTest, SingleRelationBaseCase) {
  Hypergraph q = ParseQuery("R1(A,B)");
  Instance instance(q);
  for (Value v = 0; v < 50; ++v) instance[0].AppendRow({v, v + 1});
  AcyclicRunOptions options;
  options.p = 4;
  AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
  EXPECT_EQ(run.output_count, 50u);
  EXPECT_TRUE(run.results.SameContentAs(instance[0]));
}

TEST(AcyclicJoinTest, HeavyValueIsolatedCorrectly) {
  // One value of B is extremely heavy: forces the heavy branch.
  Hypergraph q = catalog::Line3();
  Instance instance(q);
  for (Value v = 0; v < 200; ++v) {
    instance[0].AppendRow({v, 0});       // all A point at B=0
    instance[1].AppendRow({0, v});       // B=0 fans out to all C
    instance[2].AppendRow({v, v});
  }
  AcyclicRunOptions options;
  options.p = 8;
  options.collect = true;
  for (RunPolicy policy : {RunPolicy::kConservative, RunPolicy::kOptimal}) {
    options.policy = policy;
    AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
    Relation expected = GenericJoin(q, instance);
    EXPECT_EQ(run.output_count, expected.size());
    EXPECT_TRUE(run.results.SameContentAs(expected));
  }
}

TEST(AcyclicJoinTest, ExplicitLoadThresholdIsRespected) {
  Hypergraph q = catalog::Line3();
  Rng rng(3);
  Instance instance = workload::UniformInstance(q, 100, 10, &rng);
  AcyclicRunOptions options;
  options.load_threshold = 40;
  AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
  EXPECT_EQ(run.load_threshold, 40u);
  EXPECT_TRUE(run.results.SameContentAs(GenericJoin(q, instance)));
}

TEST(AcyclicJoinTest, RoundsIndependentOfDataSize) {
  // O(1) rounds: growing N must not grow the round count.
  Hypergraph q = catalog::Line3();
  uint32_t rounds_small = 0;
  uint32_t rounds_large = 0;
  for (size_t n : {50u, 400u}) {
    Rng rng(5);
    Instance instance = workload::UniformInstance(q, n, n / 4, &rng);
    AcyclicRunOptions options;
    options.p = 16;
    options.collect = false;
    AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
    (n == 50u ? rounds_small : rounds_large) = run.rounds;
  }
  EXPECT_LE(rounds_large, rounds_small + 6);  // same query-size constant
}

TEST(AcyclicJoinTest, LoadOnlyModeTracksSameLoads) {
  Hypergraph q = catalog::Path(4);
  Rng rng(9);
  Instance instance = workload::UniformInstance(q, 150, 15, &rng);
  AcyclicRunOptions collect_opts;
  collect_opts.p = 16;
  collect_opts.collect = true;
  AcyclicRunOptions load_opts = collect_opts;
  load_opts.collect = false;
  AcyclicRunResult with_results = ComputeAcyclicJoin(q, instance, collect_opts);
  AcyclicRunResult load_only = ComputeAcyclicJoin(q, instance, load_opts);
  EXPECT_EQ(with_results.max_load, load_only.max_load);
  EXPECT_EQ(with_results.rounds, load_only.rounds);
  EXPECT_EQ(with_results.servers_used, load_only.servers_used);
}

TEST(LoadPlannerTest, UniformClosedFormMatchesTheorem5) {
  // L = N / p^(1/rho*) for uniform sizes.
  Hypergraph q = catalog::Path(5);  // rho* = 3
  EXPECT_EQ(PlanLoadUniform(q, 64000, 64), 16000u);
  Hypergraph line = catalog::Line3();  // rho* = 2
  EXPECT_EQ(PlanLoadUniform(line, 10000, 100), 1000u);
}

TEST(LoadPlannerTest, OptimalPlannerMatchesClosedFormOnUniformInstances) {
  Hypergraph q = catalog::Line3();
  Instance instance = workload::MatchingInstance(q, 1000);
  uint64_t planned = PlanLoadOptimal(q, instance, 25);
  EXPECT_EQ(planned, PlanLoadUniform(q, 1000, 25));
}

TEST(LoadPlannerTest, ConservativeIsInstanceTighterOnUniformSizes) {
  // Theorem 2's subjoin bound is instance-dependent: on same-size random
  // instances it never exceeds Theorem 4's worst-case product bound
  // (subjoin(S) <= prod_e |R(e)| for every family set), and the two meet
  // on Cartesian-product hard instances.
  for (uint64_t seed : {3u, 4u}) {
    Hypergraph q = catalog::Path(4);
    Rng rng(seed);
    Instance instance = workload::UniformInstance(q, 200, 14, &rng);
    auto tree = JoinTree::Build(q);
    ASSERT_TRUE(tree);
    uint64_t conservative = PlanLoadConservative(q, *tree, instance, 16);
    uint64_t optimal = PlanLoadOptimal(q, instance, 16);
    EXPECT_LE(conservative, optimal + 1);  // +1 absorbs rounding
  }
  // On a matching instance the disconnected pair {R1, R4} makes the
  // subjoin a full product; both planners then agree on the exponent class.
  Hypergraph q = catalog::Path(4);
  Instance matching = workload::MatchingInstance(q, 1024);
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree);
  uint64_t conservative = PlanLoadConservative(q, *tree, matching, 16);
  EXPECT_GE(conservative, 1024u / 4u);  // (N^2/p)^(1/2) = N/4 at least
}

TEST(LoadPlannerTest, TheoreticalServerDemandScalesWithLoad) {
  Hypergraph q = catalog::Line3();
  Instance instance = workload::MatchingInstance(q, 1000);
  uint64_t demand_small_load = TheoreticalServerDemand(q, instance, 100, RunPolicy::kOptimal);
  uint64_t demand_large_load = TheoreticalServerDemand(q, instance, 1000, RunPolicy::kOptimal);
  EXPECT_GT(demand_small_load, demand_large_load);
}

}  // namespace
}  // namespace coverpack
