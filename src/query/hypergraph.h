/// \file hypergraph.h
/// \brief The join-query hypergraph Q = (V, E).
///
/// Vertices model attributes and hyperedges model relations (Section 1.1 of
/// the paper). The hypergraph is immutable after construction through
/// Builder; derived queries (residual Q_x, reduced queries, subqueries) are
/// produced as new Hypergraph values so algorithm recursions cannot corrupt
/// shared state.

#ifndef COVERPACK_QUERY_HYPERGRAPH_H_
#define COVERPACK_QUERY_HYPERGRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "query/attr_set.h"

namespace coverpack {

/// Identifies a hyperedge (relation) within one Hypergraph (dense, 0-based).
using EdgeId = uint32_t;

/// A set of EdgeId; edges also number < 64 so the same bitmask type works.
using EdgeSet = AttrSet;

/// One relation schema in the query.
struct Edge {
  std::string name;    ///< Relation name, e.g. "R1".
  AttrSet attrs;       ///< Attributes of this relation.
};

/// An immutable join-query hypergraph.
class Hypergraph {
 public:
  /// Incrementally assembles a Hypergraph.
  class Builder {
   public:
    /// Adds (or finds) an attribute by name, returning its id.
    AttrId AddAttribute(const std::string& name);

    /// Adds a relation over the named attributes (created on demand).
    /// Duplicate relation names are rejected.
    EdgeId AddRelation(const std::string& name, const std::vector<std::string>& attr_names);

    /// Adds a relation over existing attribute ids.
    EdgeId AddRelationByIds(const std::string& name, const std::vector<AttrId>& attr_ids);

    Hypergraph Build() const;

   private:
    std::vector<std::string> attr_names_;
    std::vector<Edge> edges_;
  };

  uint32_t num_attrs() const { return static_cast<uint32_t>(attr_names_.size()); }
  uint32_t num_edges() const { return static_cast<uint32_t>(edges_.size()); }

  const std::string& attr_name(AttrId id) const { return attr_names_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Looks up an attribute id by name.
  std::optional<AttrId> FindAttribute(const std::string& name) const;

  /// Looks up an edge id by relation name.
  std::optional<EdgeId> FindEdge(const std::string& name) const;

  /// All attributes of the query (union of all edges).
  AttrSet AllAttrs() const;

  /// All edges of the query as a set.
  EdgeSet AllEdges() const { return EdgeSet::FirstN(num_edges()); }

  /// Set of edges containing attribute x (the paper's E_x).
  EdgeSet EdgesContaining(AttrId x) const;

  /// Number of edges containing attribute x (its degree).
  uint32_t AttrDegree(AttrId x) const { return EdgesContaining(x).size(); }

  /// Union of attributes over a set of edges.
  AttrSet AttrsOf(EdgeSet edges) const;

  /// The residual query Q_x = (V - x, {e - x : e in E}). The attribute name
  /// table is kept whole so attribute ids stay stable across residuals;
  /// edges that become empty are dropped (their ids shift).
  Hypergraph Residual(AttrSet removed_attrs) const;

  /// Returns the query induced by a subset of edges. The attribute name
  /// table is kept whole (attribute ids stable); edge ids are renumbered
  /// densely, relatable through SameNamedEdgeIn.
  Hypergraph InducedByEdges(EdgeSet kept) const;

  /// Maps every edge id in *this* graph to the id of the same-named edge in
  /// `other` (or nullopt if absent). Used when relating derived queries
  /// back to the original.
  std::optional<EdgeId> SameNamedEdgeIn(const Hypergraph& other, EdgeId id) const;

  /// True if the hypergraph is "reduced": no edge is a subset of another
  /// (Section 3: the algorithm removes such edges by semi-joins first).
  bool IsReduced() const;

  /// Connected components of the edge set (edges sharing an attribute are
  /// connected). Returns one EdgeSet per component.
  std::vector<EdgeSet> ConnectedComponents() const;

  /// Human-readable form, e.g. "R1(A,B,C) |><| R2(D,E,F)".
  std::string ToString() const;

 private:
  Hypergraph(std::vector<std::string> attr_names, std::vector<Edge> edges)
      : attr_names_(std::move(attr_names)), edges_(std::move(edges)) {}

  std::vector<std::string> attr_names_;
  std::vector<Edge> edges_;
};

}  // namespace coverpack

#endif  // COVERPACK_QUERY_HYPERGRAPH_H_
