#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coverpack {

namespace {

/// Depth of pool-task nesting on this thread (workers and callers helping
/// their own batches both count). Nonzero means "inside a pool task".
thread_local int tl_pool_task_depth = 0;

/// RAII depth bump so exceptions unwind it correctly.
struct PoolTaskScope {
  PoolTaskScope() { ++tl_pool_task_depth; }
  ~PoolTaskScope() { --tl_pool_task_depth; }
};

/// The process-global pool registry: the pool pointer and requested size
/// under one annotated mutex. The pool itself is leaked on purpose:
/// joining workers during static destruction is a well-known shutdown
/// hazard, and the pool owns no resources the OS does not reclaim.
struct GlobalPoolState {
  Mutex mutex;
  ThreadPool* pool CP_GUARDED_BY(mutex) = nullptr;
  unsigned threads CP_GUARDED_BY(mutex) = 0;  // 0 = not set; fall back to hw concurrency
};

GlobalPoolState& GlobalPool() {
  static GlobalPoolState state;
  return state;
}

unsigned DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(std::max(1u, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (unsigned i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(queue_mutex_);
    stopping_ = true;
    // Unstarted Submit closures are discarded; queued batch announcements
    // are safe to drop because every batch's submitter drains it itself.
    queue_.clear();
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::NumShards(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return 0;
  grain = std::max<size_t>(1, grain);
  return (end - begin + grain - 1) / grain;
}

void ThreadPool::RunShard(Batch* batch, size_t shard) {
  {
    PoolTaskScope scope;
    // After a shard has thrown, remaining shards are skipped (claimed and
    // accounted, not executed) so a poisoned batch drains quickly.
    bool poisoned;
    {
      MutexLock lock(batch->error_mutex);
      poisoned = batch->error != nullptr;
    }
    if (!poisoned) {
      const size_t shard_begin = batch->begin + shard * batch->grain;
      const size_t shard_end = std::min(shard_begin + batch->grain, batch->end);
      try {
        (*batch->fn)(shard_begin, shard_end, shard);
      } catch (...) {
        MutexLock lock(batch->error_mutex);
        if (batch->error == nullptr) batch->error = std::current_exception();
      }
    }
  }
  const size_t done = batch->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (done == batch->shards) {
    // Lock/unlock pairs with the submitter's predicate re-check so the
    // notify cannot slip between its check and its wait.
    { MutexLock lock(batch->done_mutex); }
    batch->done_cv.notify_all();
  }
}

void ThreadPool::DrainBatch(Batch* batch) {
  for (;;) {
    const size_t shard = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= batch->shards) return;
    RunShard(batch, shard);
  }
}

void ThreadPool::ParallelForShards(size_t begin, size_t end, size_t grain,
                                   const ShardFn& fn) {
  grain = std::max<size_t>(1, grain);
  const size_t shards = NumShards(begin, end, grain);
  if (shards == 0) return;

  // Serial path: no workers, or nothing to share. Exceptions propagate
  // directly; later shards after a throw never run, matching the parallel
  // path's poisoned-batch skip.
  if (num_threads_ <= 1 || shards == 1) {
    for (size_t shard = 0; shard < shards; ++shard) {
      PoolTaskScope scope;
      const size_t shard_begin = begin + shard * grain;
      fn(shard_begin, std::min(shard_begin + grain, end), shard);
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->begin = begin;
  batch->end = end;
  batch->grain = grain;
  batch->shards = shards;
  batch->fn = &fn;

  // Announce the batch to at most (workers, shards-1) helpers — the
  // calling thread takes the remaining share itself.
  const size_t announcements = std::min<size_t>(num_threads_ - 1, shards - 1);
  {
    MutexLock lock(queue_mutex_);
    if (!stopping_) {
      for (size_t i = 0; i < announcements; ++i) {
        queue_.push_back(QueueEntry{batch, nullptr});
      }
    }
  }
  if (announcements == 1) {
    queue_cv_.notify_one();
  } else {
    queue_cv_.notify_all();
  }

  // The caller participates in its own batch: this is what makes nested
  // ParallelFor from inside a worker deadlock-free — every batch has at
  // least one thread (its creator) claiming shards.
  DrainBatch(batch.get());

  {
    // Explicit predicate loop (not the lambda overload): the thread-safety
    // analysis does not carry held capabilities into lambda bodies.
    MutexLock lock(batch->done_mutex);
    while (batch->completed.load(std::memory_order_acquire) != batch->shards) {
      batch->done_cv.wait(batch->done_mutex);
    }
  }

  std::exception_ptr error;
  {
    MutexLock lock(batch->error_mutex);
    error = batch->error;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& fn) {
  ParallelForShards(begin, end, grain,
                    [&fn](size_t shard_begin, size_t shard_end, size_t /*shard*/) {
                      for (size_t i = shard_begin; i < shard_end; ++i) fn(i);
                    });
}

void ThreadPool::Submit(std::function<void()> fn) {
  CP_CHECK(fn != nullptr);
  if (num_threads_ <= 1) {
    PoolTaskScope scope;
    fn();
    return;
  }
  {
    MutexLock lock(queue_mutex_);
    if (!stopping_) queue_.push_back(QueueEntry{nullptr, std::move(fn)});
  }
  queue_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueueEntry entry;
    {
      MutexLock lock(queue_mutex_);
      while (!stopping_ && queue_.empty()) queue_cv_.wait(queue_mutex_);
      if (stopping_) return;
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    if (entry.batch != nullptr) {
      DrainBatch(entry.batch.get());
    } else {
      // Submit closures must not throw (fire-and-forget has nowhere to
      // deliver an exception); a throw here terminates, loudly.
      PoolTaskScope scope;
      entry.simple();
    }
  }
}

bool ThreadPool::InPoolTask() { return tl_pool_task_depth > 0; }

ThreadPool& ThreadPool::Global() {
  GlobalPoolState& state = GlobalPool();
  MutexLock lock(state.mutex);
  if (state.pool == nullptr) {
    unsigned threads = state.threads == 0 ? DefaultThreads() : state.threads;
    state.pool = new ThreadPool(threads);
  }
  return *state.pool;
}

void ThreadPool::SetGlobalThreads(unsigned num_threads) {
  num_threads = std::max(1u, num_threads);
  GlobalPoolState& state = GlobalPool();
  MutexLock lock(state.mutex);
  state.threads = num_threads;
  if (state.pool != nullptr && state.pool->num_threads() != num_threads) {
    delete state.pool;  // joins the old workers; no work may be in flight
    state.pool = nullptr;
  }
}

unsigned ThreadPool::GlobalThreads() {
  GlobalPoolState& state = GlobalPool();
  MutexLock lock(state.mutex);
  if (state.threads != 0) return state.threads;
  return DefaultThreads();
}

}  // namespace coverpack
