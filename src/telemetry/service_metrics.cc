#include "telemetry/service_metrics.h"

#include <vector>

namespace coverpack {
namespace telemetry {

void SnapshotServiceStatsInto(const service::ServiceRunStats& stats,
                              const std::string& scenario, MetricsRegistry* registry) {
  const std::string service_prefix = "service." + scenario + ".";
  const std::string cache_prefix = "cache." + scenario + ".";

  registry->AddCounter(service_prefix + "arrivals", stats.arrivals);
  registry->AddCounter(service_prefix + "completed", stats.completed);
  registry->AddCounter(service_prefix + "plan_bypasses", stats.plan_bypasses);
  registry->AddCounter(service_prefix + "load_mismatches", stats.load_mismatches);
  registry->SetGauge(service_prefix + "sim_end_ticks",
                     static_cast<double>(stats.sim_end_ticks));
  registry->SetGauge(service_prefix + "throughput_qpk", stats.throughput_qpk);
  registry->SetGauge(service_prefix + "latency_p50_ticks",
                     static_cast<double>(stats.latency_p50_ticks));
  registry->SetGauge(service_prefix + "latency_p99_ticks",
                     static_cast<double>(stats.latency_p99_ticks));
  registry->SetGauge(service_prefix + "latency_max_ticks",
                     static_cast<double>(stats.latency_max_ticks));
  registry->SetGauge(service_prefix + "latency_mean_ticks", stats.latency_mean_ticks);
  registry->SetGauge(service_prefix + "queue_wait_p99_ticks",
                     static_cast<double>(stats.queue_wait_p99_ticks));
  registry->SetGauge(service_prefix + "max_queue_depth",
                     static_cast<double>(stats.max_queue_depth));
  registry->SetGauge(service_prefix + "peak_servers_leased",
                     static_cast<double>(stats.peak_servers_leased));

  // The full latency distribution, tick-bucketed in powers of two.
  static const std::vector<double> kLatencyBounds{64,   128,  256,   512,  1024,
                                                  2048, 4096, 8192, 16384, 65536};
  Histogram& latencies =
      registry->GetHistogram(service_prefix + "latency_ticks", kLatencyBounds);
  for (uint64_t latency : stats.latencies_sorted) {
    latencies.Observe(static_cast<double>(latency));
  }

  registry->AddCounter(cache_prefix + "hits", stats.cache.hits);
  registry->AddCounter(cache_prefix + "misses", stats.cache.misses);
  registry->AddCounter(cache_prefix + "insertions", stats.cache.insertions);
  registry->AddCounter(cache_prefix + "evictions", stats.cache.evictions);
  registry->AddCounter(cache_prefix + "collisions", stats.cache.collisions);
  registry->SetGauge(cache_prefix + "size", static_cast<double>(stats.cache.size));
  registry->SetGauge(cache_prefix + "capacity", static_cast<double>(stats.cache.capacity));
}

}  // namespace telemetry
}  // namespace coverpack
