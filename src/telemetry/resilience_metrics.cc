#include "telemetry/resilience_metrics.h"

#include <vector>

#include "resilience/fault_injector.h"

namespace coverpack {
namespace telemetry {

void SnapshotResilienceTelemetryInto(MetricsRegistry* registry) {
  static const std::vector<double> kAttemptBounds = {1.0, 2.0, 3.0, 4.0, 6.0, 8.0};
  static const std::vector<double> kResentBounds = {1.0, 10.0, 100.0, 1000.0,
                                                    1e4, 1e5,  1e6,   1e7};
  const resilience::ResilienceTelemetrySnapshot snapshot =
      resilience::ResilienceTelemetry::Snapshot();
  if (snapshot.exchanges_injected == 0) return;
  registry->AddCounter("fault.exchanges_injected", snapshot.exchanges_injected);
  registry->AddCounter("fault.exchanges_faulted", snapshot.exchanges_faulted);
  registry->AddCounter("fault.crashes", snapshot.crashes);
  registry->AddCounter("fault.rows_dropped", snapshot.rows_dropped);
  registry->AddCounter("fault.rows_duplicated", snapshot.rows_duplicated);
  registry->AddCounter("recovery.retries", snapshot.retries);
  registry->AddCounter("recovery.full_reruns", snapshot.full_reruns);
  registry->AddCounter("recovery.backoff_units", snapshot.backoff_units);
  registry->AddCounter("recovery.tuples_resent", snapshot.tuples_resent);
  registry->AddCounter("recovery.tuples_resent_crash", snapshot.tuples_resent_crash);
  registry->AddCounter("recovery.tuples_resent_corruption",
                       snapshot.tuples_resent_corruption);
  registry->AddCounter("recovery.tuples_resent_full_rerun",
                       snapshot.tuples_resent_full_rerun);
  registry->AddCounter("recovery.checkpoints_captured", snapshot.checkpoints_captured);
  registry->AddCounter("recovery.checkpoint_tuples", snapshot.checkpoint_tuples);
  registry->SetGauge("recovery.max_single_resend",
                     static_cast<double>(snapshot.max_single_resend));
  Histogram& attempts =
      registry->GetHistogram("recovery.attempts_per_exchange", kAttemptBounds);
  for (double v : snapshot.attempts_samples) attempts.Observe(v);
  Histogram& resent =
      registry->GetHistogram("recovery.resent_per_faulted_exchange", kResentBounds);
  for (double v : snapshot.resent_samples) resent.Observe(v);
}

}  // namespace telemetry
}  // namespace coverpack
