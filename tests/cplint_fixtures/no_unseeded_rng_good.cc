// cplint fixture: all randomness derives from the experiment seed.
#include <random>

int Draw(uint64_t seed, uint32_t shard) {
  std::mt19937_64 gen(SplitSeed(seed, shard));
  return static_cast<int>(gen());
}
// Identifiers containing "rand" (operand, Random) must not trip the rule.
int operand(int x) { return x; }
