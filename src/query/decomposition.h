/// \file decomposition.h
/// \brief Twig decompositions, linear covers, and Theorem 3's S(E) family.
///
/// Section 4 of the paper derives worst-case optimality for acyclic joins
/// from a decomposition of the join tree: the tree is split into *twigs*
/// at internal nodes of an (integral, optimal) edge cover; each twig is
/// covered by node-disjoint root-to-leaf paths (a *linear cover*,
/// Definition 4.7); and the family S(E) of relation subsets that appear in
/// the load formula of Theorem 4 is assembled by picking one relation per
/// linear piece (plus optionally an owned twig root). The pivotal property
/// — verified by tests — is that the largest set in S(E) has exactly rho*
/// relations, which turns Theorem 4's bound into N / p^(1/rho*)
/// (Theorem 5) for uniform relation sizes.

#ifndef COVERPACK_QUERY_DECOMPOSITION_H_
#define COVERPACK_QUERY_DECOMPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/hypergraph.h"
#include "query/join_tree.h"

namespace coverpack {

/// One twig of a join-tree decomposition.
struct Twig {
  uint32_t root = 0;      ///< Node id of the twig's root.
  bool owns_root = true;  ///< False when the root is a leaf of the parent twig.
  EdgeSet nodes;          ///< All nodes of the twig (including the root).
  /// Node-disjoint linear pieces covering the twig; pieces[0] starts at the
  /// root; every piece is ordered from its near-root end to its leaf.
  std::vector<std::vector<uint32_t>> pieces;
};

/// A twig decomposition of one join-tree component.
struct TwigDecomposition {
  std::vector<Twig> twigs;  ///< In discovery order (parent twigs first).
};

/// Decomposes the component of `tree` containing `component_nodes` into
/// twigs, splitting at internal nodes of `cover` (an integral edge cover of
/// the query). The tree is re-rooted internally; `tree` is taken by value.
TwigDecomposition DecomposeTwigs(JoinTree tree, EdgeSet component_nodes, EdgeSet cover);

/// The family S(E) of Theorem 3 for an alpha-acyclic query: every set is a
/// subset of relations built by picking one relation per linear piece of
/// the twig decomposition (plus optional owned roots), unioned with the
/// singleton sets produced by removing subsumed relations. All EdgeIds are
/// relative to `query`. Aborts if the query is cyclic.
std::vector<EdgeSet> SFamily(const Hypergraph& query);

/// max_{S in SFamily, S nonempty} |S|. Equals rho* for acyclic queries
/// (this is the content of Theorem 5; asserted in tests).
uint32_t MaxSFamilySetSize(const Hypergraph& query);

/// Pretty rendering of a decomposition for benches (Figure 5/6 output).
std::string DecompositionToString(const Hypergraph& query, const TwigDecomposition& decomposition);

}  // namespace coverpack

#endif  // COVERPACK_QUERY_DECOMPOSITION_H_
