/// \file intro_gap.cc
/// \brief Regenerates the Section 1.3 motivating gaps.
///
/// (a) R1(A) |><| R2(A,B) |><| R3(B): one round forces ~N/p^(1/2)
///     (psi* = 2) on the skewed worst case, while two semi-join rounds run
///     with linear load N/p (rho* = 1): a sqrt(p) gap.
/// (b) the star-dual join R0(X1..Xk) |><| R1(X1) ... |><| Rk(Xk): the gap
///     widens to p^((k-1)/k).
/// We sweep p, fit both load curves, and compare the exponents. Note the
/// psi* one-round bound is information-theoretic (it holds for *every*
/// one-round algorithm); a simulator can only execute specific algorithms,
/// which may beat psi* on friendly instances — so the assertions here are
/// (a) the multi-round load is linear (exponent -1) and (b) the
/// one-round / multi-round gap grows with p, reaching the predicted order.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "core/one_round.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "query/catalog.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

namespace {

/// Worst-case instance for one-round on the semi-join example: R2 is a
/// full bipartite product over sqrt(N) x sqrt(N) values, R1 and R3 cover
/// the full domains.
Instance SemiJoinWorstCase(const Hypergraph& q, uint64_t n) {
  Instance instance(q);
  uint64_t side = static_cast<uint64_t>(std::sqrt(static_cast<double>(n)));
  for (Value a = 0; a < side; ++a) {
    for (Value b = 0; b < side; ++b) instance[1].AppendRow({a, b});
  }
  for (Value a = 0; a < side; ++a) instance[0].AppendRow({a});
  for (Value b = 0; b < side; ++b) instance[2].AppendRow({b});
  return instance;
}

/// Worst case for one round on star-dual: R0 a Cartesian product over
/// n^(1/k)-sized domains; satellites cover the domains.
Instance StarDualWorstCase(const Hypergraph& q, uint32_t k, uint64_t n) {
  Instance instance(q);
  uint64_t side = static_cast<uint64_t>(std::pow(static_cast<double>(n), 1.0 / k) + 1e-9);
  std::vector<uint64_t> dims(k, side);
  instance[0] = workload::Cartesian(q.edge(0).attrs, dims);
  for (uint32_t i = 1; i <= k; ++i) {
    for (Value v = 0; v < side; ++v) instance[i].AppendRow({v});
  }
  return instance;
}

}  // namespace

telemetry::RunReport RunIntroGap(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  bool all_ok = true;
  std::vector<uint32_t> ps{16, 64, 256, 1024};

  {
    Hypergraph q = catalog::SemiJoinExample();
    uint64_t n = 16384;
    Instance instance = SemiJoinWorstCase(q, n);
    report.AddParam("semi_join_N", n);
    std::cout << "--- semi-join example, psi* = " << EdgeQuasiPackingNumber(q)
              << ", rho* = " << RhoStar(q) << "\n";
    TablePrinter table({"p", "one-round load", "multi-round load", "gap"});
    std::vector<double> xs, one_round_loads, multi_loads;
    for (uint32_t p : ps) {
      OneRoundOptions or_options;
      or_options.collect = false;
      OneRoundResult one = ComputeOneRoundSkewAware(q, instance, p, or_options);
      AcyclicRunOptions mr_options;
      mr_options.collect = false;
      mr_options.p = p;
      AcyclicRunResult multi = ComputeAcyclicJoin(q, instance, mr_options);
      if (p == ps.back()) {
        ProfileRun(report, "semi_join/one_round/p" + std::to_string(p), one.load_tracker);
        ProfileRun(report, "semi_join/multi_round/p" + std::to_string(p),
                   multi.load_tracker);
      }
      table.AddRow({std::to_string(p), std::to_string(one.max_load),
                    std::to_string(multi.max_load),
                    FormatDouble(static_cast<double>(one.max_load) /
                                     std::max<uint64_t>(1, multi.max_load),
                                 2)});
      xs.push_back(p);
      one_round_loads.push_back(static_cast<double>(one.max_load));
      multi_loads.push_back(static_cast<double>(multi.max_load));
    }
    table.Print(std::cout);
    PowerLawFit one_fit = FitPowerLaw(xs, one_round_loads);
    PowerLawFit multi_fit = FitPowerLaw(xs, multi_loads);
    std::cout << "one-round fitted exponent " << FormatDouble(one_fit.slope, 3)
              << " (worst-case guarantee -1/psi* = -0.5)\n";
    bool ok2 = ReportExponent(report, "multi-round (rho*=1)", multi_fit.slope, -1.0, 0.2);
    double gap_first = one_round_loads.front() / std::max(1.0, multi_loads.front());
    double gap_last = one_round_loads.back() / std::max(1.0, multi_loads.back());
    bool gap_grows = gap_last > 1.5 * gap_first && gap_last >= 4.0;
    std::cout << "one-round/multi-round gap grows from " << FormatDouble(gap_first, 2)
              << " to " << FormatDouble(gap_last, 2) << " across the p sweep ["
              << (gap_grows ? "GROWS" : "FLAT") << "]\n";
    report.metrics.SetGauge("semi_join_gap_first", gap_first);
    report.metrics.SetGauge("semi_join_gap_last", gap_last);
    all_ok = all_ok && ok2 && gap_grows;
    std::cout << "\n";
  }

  {
    uint32_t k = 3;
    Hypergraph q = catalog::StarDual(k);
    uint64_t n = 27000;
    Instance instance = StarDualWorstCase(q, k, n);
    report.AddParam("star_dual_N", n);
    report.AddParam("star_dual_k", uint64_t{k});
    std::cout << "--- star-dual (k=3), psi* = " << EdgeQuasiPackingNumber(q)
              << ", rho* = " << RhoStar(q) << "\n";
    TablePrinter table({"p", "one-round load", "multi-round load", "gap"});
    std::vector<double> xs, one_round_loads, multi_loads;
    for (uint32_t p : ps) {
      OneRoundOptions or_options;
      or_options.collect = false;
      OneRoundResult one = ComputeOneRoundSkewAware(q, instance, p, or_options);
      AcyclicRunOptions mr_options;
      mr_options.collect = false;
      mr_options.p = p;
      AcyclicRunResult multi = ComputeAcyclicJoin(q, instance, mr_options);
      if (p == ps.back()) {
        ProfileRun(report, "star_dual/one_round/p" + std::to_string(p), one.load_tracker);
        ProfileRun(report, "star_dual/multi_round/p" + std::to_string(p),
                   multi.load_tracker);
      }
      table.AddRow({std::to_string(p), std::to_string(one.max_load),
                    std::to_string(multi.max_load),
                    FormatDouble(static_cast<double>(one.max_load) /
                                     std::max<uint64_t>(1, multi.max_load),
                                 2)});
      xs.push_back(p);
      one_round_loads.push_back(static_cast<double>(one.max_load));
      multi_loads.push_back(static_cast<double>(multi.max_load));
    }
    table.Print(std::cout);
    PowerLawFit one_fit = FitPowerLaw(xs, one_round_loads);
    PowerLawFit multi_fit = FitPowerLaw(xs, multi_loads);
    std::cout << "one-round fitted exponent " << FormatDouble(one_fit.slope, 3)
              << " (worst-case guarantee -1/psi* = -0.333)\n";
    bool ok2 = ReportExponent(report, "multi-round (rho*=1)", multi_fit.slope, -1.0, 0.2);
    double gap_first = one_round_loads.front() / std::max(1.0, multi_loads.front());
    double gap_last = one_round_loads.back() / std::max(1.0, multi_loads.back());
    bool gap_grows = gap_last > 1.5 * gap_first;
    std::cout << "one-round/multi-round gap grows from " << FormatDouble(gap_first, 2)
              << " to " << FormatDouble(gap_last, 2) << " across the p sweep ["
              << (gap_grows ? "GROWS" : "FLAT") << "]\n";
    report.metrics.SetGauge("star_dual_gap_first", gap_first);
    report.metrics.SetGauge("star_dual_gap_last", gap_last);
    all_ok = all_ok && ok2 && gap_grows;
  }

  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
