/// \file bench_fig2_box_join.cc
/// \brief Regenerates Figure 2: the box join's hypergraph and its
/// cover/packing structure (rho* = 2 via {R1,R2}, tau* = 3 via {R3,R4,R5}).

#include <iostream>

#include "bench_util.h"
#include "lp/covers.h"
#include "lp/packing_provable.h"
#include "lowerbound/hard_instance.h"
#include "query/catalog.h"

namespace coverpack {
namespace {

int RunBench() {
  bench::Banner("Figure 2", "box join: rho* = 2 ({R1,R2}), tau* = 3 ({R3,R4,R5})");
  Hypergraph box = catalog::BoxJoin();
  std::cout << "query: " << box.ToString() << "\n\n";

  EdgeWeighting cover = FractionalEdgeCover(box);
  EdgeWeighting packing = FractionalEdgePacking(box);
  TablePrinter table({"relation", "cover weight", "packing weight"});
  for (uint32_t e = 0; e < box.num_edges(); ++e) {
    table.AddRow({box.edge(e).name, cover.weights[e].ToString(), packing.weights[e].ToString()});
  }
  table.Print(std::cout);
  std::cout << "rho* = " << cover.total << ", tau* = " << packing.total
            << ", psi* = " << EdgeQuasiPackingNumber(box) << "\n";

  PackingProvability witness = lowerbound::BoxJoinWitness(box);
  std::cout << "edge-packing-provable: " << (witness.provable ? "yes" : "no")
            << "; witness vertex cover x_A=x_B=x_C=1/3, x_D=x_E=x_F=2/3; probabilistic E' = {";
  for (size_t i = 0; i < witness.probabilistic.size(); ++i) {
    std::cout << (i ? ", " : "") << box.edge(witness.probabilistic[i]).name;
  }
  std::cout << "}\n";

  bool ok = cover.total == Rational(2) && packing.total == Rational(3) && witness.provable;
  bench::Verdict("Figure2", ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace coverpack

int main() { return coverpack::RunBench(); }
