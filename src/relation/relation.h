/// \file relation.h
/// \brief Tuples and relations over the attributes of a query.
///
/// A tuple is an assignment of a 64-bit value to each attribute of its
/// schema (Section 1.1). Relations store rows in a flat column-major-free
/// layout: a row is `width` consecutive values ordered by ascending AttrId,
/// which makes projections and schema alignment deterministic.

#ifndef COVERPACK_RELATION_RELATION_H_
#define COVERPACK_RELATION_RELATION_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "query/attr_set.h"
#include "util/logging.h"

namespace coverpack {

/// Attribute values. Domains are dense integer ranges per attribute.
using Value = uint64_t;

/// A set of tuples over a fixed schema.
class Relation {
 public:
  Relation() = default;

  /// Creates an empty relation over the given attributes.
  explicit Relation(AttrSet attrs) : attrs_(attrs), width_(attrs.size()) {}

  AttrSet attrs() const { return attrs_; }
  uint32_t width() const { return width_; }
  /// Number of rows. Stored explicitly so nullary (zero-width) relations —
  /// boolean subquery results, whose rows carry no values — count their
  /// empty tuples like any other schema.
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Row access: `width()` values ordered by ascending AttrId.
  std::span<const Value> row(size_t i) const {
    return std::span<const Value>(data_.data() + i * width_, width_);
  }

  /// Appends a row; values must be ordered by ascending AttrId of the schema.
  void AppendRow(std::span<const Value> values) {
    CP_DCHECK(values.size() == width_);
    AppendRows(values.data(), 1);
  }

  void AppendRow(std::initializer_list<Value> values) {
    AppendRow(std::span<const Value>(values.begin(), values.size()));
  }

  /// Appends `count` rows stored contiguously at `values` (count * width()
  /// values, same layout as raw()). The bulk path of the Exchange layer and
  /// of result concatenation: one insert instead of per-row copies.
  void AppendRows(const Value* values, size_t count) {
    CP_DCHECK(RowCountFits(count));
    if (width_ != 0) data_.insert(data_.end(), values, values + count * size_t{width_});
    num_rows_ += count;
  }

  /// Appends `count` rows of uninitialized storage and returns the write
  /// cursor (count * width() values, row-major). The columnar operators
  /// count their output first, append once, and fill in place — no per-row
  /// growth checks. Callers must write every value before reading back.
  Value* AppendUninitialized(size_t count) {
    CP_DCHECK(RowCountFits(count));
    size_t offset = data_.size();
    data_.resize(offset + count * size_t{width_});
    num_rows_ += count;
    return data_.data() + offset;
  }

  /// Appends every row of `other`, which must share this schema.
  void AppendAll(const Relation& other) {
    CP_DCHECK(other.width_ == width_);
    AppendRows(other.data_.data(), other.num_rows_);
  }

  /// Index of an attribute within a row, i.e. its rank in the schema.
  /// Precondition: attrs().Contains(attr).
  uint32_t ColumnOf(AttrId attr) const {
    CP_DCHECK(attrs_.Contains(attr));
    return static_cast<uint32_t>(
        std::popcount(attrs_.bits() & ((uint64_t{1} << attr) - 1)));
  }

  /// Value of `attr` in row i.
  Value At(size_t i, AttrId attr) const { return row(i)[ColumnOf(attr)]; }

  void Reserve(size_t rows) {
    CP_DCHECK(RowCountFits(rows));
    data_.reserve(rows * size_t{width_});
  }
  void Clear() {
    data_.clear();
    num_rows_ = 0;
  }

  /// Drops every row past the first `rows` (rows <= size()). Mutation is
  /// append-only everywhere else, so truncating to a recorded size restores
  /// the relation bit-exactly — the restore primitive of the resilience
  /// layer's round replay.
  void Truncate(size_t rows) {
    CP_DCHECK_LE(rows, num_rows_);
    data_.resize(rows * size_t{width_});
    num_rows_ = rows;
  }

  /// Removes duplicate rows (sorts internally).
  void Dedup();

  /// Sorts rows lexicographically (for canonical comparison in tests).
  void SortRows();

  /// True if both relations have the same schema and the same row multiset.
  bool SameContentAs(const Relation& other) const;

  /// Renders up to `limit` rows for debugging.
  std::string ToString(size_t limit = 20) const;

  /// Flat row storage: size() * width() values, rows consecutive. Mutation
  /// goes through AppendRow/AppendRows so the row count stays in sync.
  const std::vector<Value>& raw() const { return data_; }

 private:
  /// Guards the `rows * width_` products of Reserve/Append against size_t
  /// wraparound (a wrapped product would silently desync num_rows_ from the
  /// flat storage).
  bool RowCountFits(size_t rows) const {
    if (width_ == 0) return num_rows_ <= std::numeric_limits<size_t>::max() - rows;
    return rows <= (std::numeric_limits<size_t>::max() - data_.size()) / width_;
  }

  AttrSet attrs_;
  uint32_t width_ = 0;
  size_t num_rows_ = 0;
  std::vector<Value> data_;
};

}  // namespace coverpack

#endif  // COVERPACK_RELATION_RELATION_H_
