/// \file elastic.h
/// \brief Elastic p: round-boundary membership changes with deterministic
/// state migration through the Exchange choke point.
///
/// Servers join and leave only at round boundaries (the granularity every
/// bound in the paper is stated at, and the granularity the resilience
/// layer checkpoints at). A membership change triggers one rebalancing
/// Exchange:
///
///  1. Targets: the post-change state distribution is the largest-remainder
///     apportionment of the current row count proportional to the new
///     members' speeds.
///  2. Keeps: every staying server keeps min(current, target) of its own
///     rows — the longest prefix it may retain. Leavers keep nothing.
///  3. Moves: surplus tails stream to deficit servers in ascending
///     (source slot, destination slot) order — a pure function of the
///     shard sizes, so the migration plan is bit-identical across thread
///     counts and fault schedules.
///
/// The move is a regular recorded Exchange: it is charged to the tracker
/// in its round, audited for conservation in COVERPACK_AUDIT builds, and
/// delivered through any installed interposer — so a crash-storm FaultPlan
/// exercises restore-and-replay on migrations exactly as it does on
/// algorithm exchanges. The pre-migration snapshot is noted in a
/// RoundCheckpointStore (the resilience layer's round-boundary ledger).
///
/// RunElasticPipeline drives a synthetic multi-round partition workload
/// over a ClusterProfile — the harness behind the cluster_elastic
/// experiment and the elastic determinism/chaos tests.

#ifndef COVERPACK_CLUSTER_ELASTIC_H_
#define COVERPACK_CLUSTER_ELASTIC_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster_profile.h"
#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "resilience/checkpoint.h"

namespace coverpack {
namespace cluster {

/// What one migration moved.
struct MigrationResult {
  mpc::ExchangeStats stats;          ///< the rebalancing exchange's volumes
  uint64_t tuples_from_leavers = 0;  ///< rows drained off departing servers
  uint64_t tuples_to_joiners = 0;    ///< rows seeding arriving servers
  uint32_t servers_joined = 0;
  uint32_t servers_left = 0;
};

/// Migrates `state` from membership `from` to membership `to` (both
/// ascending slot-id lists over the same slot space), rebalancing to
/// shares proportional to `to_speeds` (aligned with `to`). Charged to
/// `cluster` in `round` and audited like any other exchange. Notes the
/// pre-migration snapshot in `checkpoints` (may be null) and records the
/// move in the ClusterTelemetry ledger. No-op when `from == to`.
MigrationResult MigrateToEpoch(Cluster* cluster, DistRelation* state,
                               const std::vector<uint32_t>& from,
                               const std::vector<uint32_t>& to,
                               const std::vector<double>& to_speeds, uint32_t round,
                               resilience::RoundCheckpointStore* checkpoints);

/// Configuration of one elastic pipeline run.
struct ElasticRunConfig {
  uint32_t base_p = 8;
  SpeedSpec speeds;
  ElasticSpec schedule;
  uint64_t rows = 10000;
  uint32_t width = 3;     ///< columns of the synthetic relation
  uint32_t rounds = 6;    ///< partition rounds after the initial scatter
  uint64_t seed = 0x0e1a57ull;
  /// true: scatter/partition shares proportional to speed; false: the
  /// speed-oblivious uniform baseline (same slots, all weights 1).
  bool speed_aware = true;
};

/// What one pipeline run produced. `content_hash` digests every nonempty
/// shard's (slot, rows) in slot order — equal hashes mean bit-identical
/// distributed state on every occupied slot, regardless of how many idle
/// slots the schedule reserved.
struct ElasticRunResult {
  LoadTracker tracker{1};               ///< loads over the full slot space
  std::vector<size_t> final_shard_sizes;
  uint64_t final_rows = 0;
  uint64_t content_hash = 0;
  uint32_t epochs = 0;                  ///< memberships the run passed through
  uint64_t tuples_migrated = 0;
  resilience::RoundCheckpointStore checkpoints;
};

/// Runs the synthetic elastic workload: a weighted scatter of `rows`
/// seeded random tuples (round 0), then `rounds` hash-partition rounds on
/// rotating key columns, migrating state at every membership boundary of
/// the profile built from (base_p, speeds, schedule). Fully deterministic
/// in the config; with an empty schedule the migration machinery is never
/// entered, so the run is byte-identical to a fixed-p run by construction
/// of the code path — which the cluster_elastic experiment verifies by
/// digest against an independently-driven fixed-p pipeline.
ElasticRunResult RunElasticPipeline(const ElasticRunConfig& config);

}  // namespace cluster
}  // namespace coverpack

#endif  // COVERPACK_CLUSTER_ELASTIC_H_
