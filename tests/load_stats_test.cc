/// Load-skew profiling coverage: the new LoadTracker read helpers, the
/// nearest-rank percentile, and ProfileLoadTracker on hand-built trackers
/// — including trackers assembled through Merge/MergeMapped the way the
/// recursive simulator builds them, and empty/single-round edge cases.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mpc/load_tracker.h"
#include "telemetry/load_stats.h"

namespace coverpack {
namespace telemetry {
namespace {

TEST(LoadTrackerStatsTest, RoundLoadsExposesZerosForIdleServers) {
  LoadTracker tracker(4);
  tracker.Add(0, 1, 10);
  tracker.Add(0, 3, 2);
  const std::vector<uint64_t>& loads = tracker.RoundLoads(0);
  ASSERT_EQ(loads.size(), 4u);
  EXPECT_EQ(loads[0], 0u);
  EXPECT_EQ(loads[1], 10u);
  EXPECT_EQ(loads[2], 0u);
  EXPECT_EQ(loads[3], 2u);
}

TEST(LoadTrackerStatsTest, TotalAndMeanOfRound) {
  LoadTracker tracker(4);
  tracker.Add(0, 0, 6);
  tracker.Add(0, 2, 2);
  tracker.Add(1, 1, 8);
  EXPECT_EQ(tracker.TotalOfRound(0), 8u);
  EXPECT_EQ(tracker.TotalOfRound(1), 8u);
  EXPECT_DOUBLE_EQ(tracker.MeanLoadOfRound(0), 2.0);
  EXPECT_DOUBLE_EQ(tracker.MeanLoadOfRound(1), 2.0);
  // Absent rounds read as zero rather than aborting.
  EXPECT_EQ(tracker.TotalOfRound(7), 0u);
  EXPECT_DOUBLE_EQ(tracker.MeanLoadOfRound(7), 0.0);
}

TEST(LoadPercentileTest, NearestRankDefinition) {
  std::vector<uint64_t> loads{10, 0, 30, 20};  // sorted: 0 10 20 30
  EXPECT_EQ(LoadPercentile(loads, 50), 10u);   // rank ceil(0.5*4) = 2
  EXPECT_EQ(LoadPercentile(loads, 75), 20u);   // rank 3
  EXPECT_EQ(LoadPercentile(loads, 90), 30u);   // rank ceil(3.6) = 4
  EXPECT_EQ(LoadPercentile(loads, 100), 30u);
  // q = 0 still reads the first order statistic (rank clamps to 1).
  EXPECT_EQ(LoadPercentile(loads, 0), 0u);
}

TEST(LoadPercentileTest, SingleElement) {
  EXPECT_EQ(LoadPercentile({42}, 50), 42u);
  EXPECT_EQ(LoadPercentile({42}, 99), 42u);
}

TEST(ProfileLoadTrackerTest, EmptyTrackerYieldsEmptyProfile) {
  LoadTracker tracker(8);
  LoadSkewProfile profile = ProfileLoadTracker(tracker, "empty");
  EXPECT_EQ(profile.name, "empty");
  EXPECT_EQ(profile.num_servers, 8u);
  EXPECT_EQ(profile.num_rounds, 0u);
  EXPECT_EQ(profile.max_load, 0u);
  EXPECT_EQ(profile.total_communication, 0u);
  EXPECT_DOUBLE_EQ(profile.overall_skew_ratio, 0.0);
  EXPECT_TRUE(profile.rounds.empty());
}

TEST(ProfileLoadTrackerTest, SingleRoundUniformLoadHasSkewOne) {
  LoadTracker tracker(4);
  for (uint32_t s = 0; s < 4; ++s) tracker.Add(0, s, 5);
  LoadSkewProfile profile = ProfileLoadTracker(tracker, "uniform");
  ASSERT_EQ(profile.rounds.size(), 1u);
  const RoundLoadStats& round = profile.rounds[0];
  EXPECT_EQ(round.round, 0u);
  EXPECT_EQ(round.max_load, 5u);
  EXPECT_DOUBLE_EQ(round.mean_load, 5.0);
  EXPECT_DOUBLE_EQ(round.skew_ratio, 1.0);
  EXPECT_EQ(round.p50, 5u);
  EXPECT_EQ(round.p90, 5u);
  EXPECT_EQ(round.p99, 5u);
  EXPECT_EQ(round.total, 20u);
  EXPECT_EQ(round.busy_servers, 4u);
  EXPECT_DOUBLE_EQ(profile.overall_skew_ratio, 1.0);
}

TEST(ProfileLoadTrackerTest, SkewedRoundStatistics) {
  // One hot server out of four: max 30, mean 10 => skew 3.
  LoadTracker tracker(4);
  tracker.Add(0, 0, 30);
  tracker.Add(0, 1, 6);
  tracker.Add(0, 2, 4);
  LoadSkewProfile profile = ProfileLoadTracker(tracker, "skewed");
  ASSERT_EQ(profile.rounds.size(), 1u);
  const RoundLoadStats& round = profile.rounds[0];
  EXPECT_EQ(round.max_load, 30u);
  EXPECT_DOUBLE_EQ(round.mean_load, 10.0);
  EXPECT_DOUBLE_EQ(round.skew_ratio, 3.0);
  EXPECT_EQ(round.p50, 4u);   // sorted 0 4 6 30, rank 2
  EXPECT_EQ(round.p90, 30u);  // rank 4
  EXPECT_EQ(round.busy_servers, 3u);
  EXPECT_EQ(profile.max_load, 30u);
  EXPECT_EQ(profile.total_communication, 40u);
}

TEST(ProfileLoadTrackerTest, MultiRoundAggregates) {
  LoadTracker tracker(2);
  tracker.Add(0, 0, 10);  // round 0: total 10, max 10
  tracker.Add(2, 1, 4);   // round 2: total 4; round 1 left empty
  LoadSkewProfile profile = ProfileLoadTracker(tracker, "multi");
  EXPECT_EQ(profile.num_rounds, 3u);
  ASSERT_EQ(profile.rounds.size(), 3u);
  EXPECT_EQ(profile.rounds[0].total, 10u);
  EXPECT_EQ(profile.rounds[1].total, 0u);
  EXPECT_DOUBLE_EQ(profile.rounds[1].skew_ratio, 0.0);
  EXPECT_EQ(profile.rounds[1].busy_servers, 0u);
  EXPECT_EQ(profile.rounds[2].total, 4u);
  EXPECT_EQ(profile.max_load, 10u);
  EXPECT_EQ(profile.total_communication, 14u);
  // Overall skew: max cell 10 / mean cell (14 / 6 cells).
  EXPECT_NEAR(profile.overall_skew_ratio, 10.0 / (14.0 / 6.0), 1e-12);
}

TEST(ProfileLoadTrackerTest, MergedTrackersProfileLikeDirectConstruction) {
  // The simulator builds trackers recursively: leaf runs merge into the
  // parent at a server offset. Profiling must see through that assembly.
  LoadTracker parent(4);
  parent.Add(0, 0, 8);
  LoadTracker child(2);
  child.Add(0, 0, 3);
  child.Add(1, 1, 5);
  parent.Merge(child, /*server_offset=*/2, /*round_offset=*/1);

  LoadTracker direct(4);
  direct.Add(0, 0, 8);
  direct.Add(1, 2, 3);
  direct.Add(2, 3, 5);

  LoadSkewProfile merged_profile = ProfileLoadTracker(parent, "x");
  LoadSkewProfile direct_profile = ProfileLoadTracker(direct, "x");
  ASSERT_EQ(merged_profile.rounds.size(), direct_profile.rounds.size());
  for (size_t i = 0; i < merged_profile.rounds.size(); ++i) {
    EXPECT_EQ(merged_profile.rounds[i].max_load, direct_profile.rounds[i].max_load);
    EXPECT_EQ(merged_profile.rounds[i].total, direct_profile.rounds[i].total);
    EXPECT_EQ(merged_profile.rounds[i].p50, direct_profile.rounds[i].p50);
  }
  EXPECT_EQ(merged_profile.total_communication, direct_profile.total_communication);
}

TEST(ProfileLoadTrackerTest, MergeMappedReplicationShowsUpInTotals) {
  // Case-II style replication: a 2-server child replicated across a 4-server
  // grid (physical server s maps to child server s % 2). Every child cell
  // is charged twice, so totals double while per-round max stays the
  // child's max.
  LoadTracker child(2);
  child.Add(0, 0, 7);
  child.Add(0, 1, 3);
  LoadTracker grid(4);
  grid.MergeMapped(child, /*round_offset=*/0,
                   [](uint32_t physical) { return physical % 2; });

  LoadSkewProfile profile = ProfileLoadTracker(grid, "replicated");
  ASSERT_EQ(profile.rounds.size(), 1u);
  EXPECT_EQ(profile.rounds[0].max_load, 7u);
  EXPECT_EQ(profile.rounds[0].total, 20u);
  EXPECT_EQ(profile.rounds[0].busy_servers, 4u);
  EXPECT_DOUBLE_EQ(profile.rounds[0].mean_load, 5.0);
  EXPECT_DOUBLE_EQ(profile.rounds[0].skew_ratio, 7.0 / 5.0);
}

}  // namespace
}  // namespace telemetry
}  // namespace coverpack
