/// \file bench_thm6_box_lower.cc
/// \brief Thin wrapper: the experiment body lives in
/// bench/experiments/thm6_box_lower.cc and is registered in the experiment
/// registry, so the unified driver (coverpack_bench) and this historical
/// one-display binary share one implementation.

#include "experiments/experiments.h"

int main() { return coverpack::bench::RunExperimentStandalone("thm6_box_lower"); }
