#include "query/parser.h"

#include <cctype>

#include "util/logging.h"

namespace coverpack {

namespace {

/// Single-pass recursive-descent scanner over the query text.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text), pos_(0) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    CP_CHECK(pos_ < text_.size()) << "unexpected end of query text";
    return text_[pos_];
  }

  void Expect(char c) {
    CP_CHECK(Peek() == c) << "expected '" << c << "' at position " << pos_ << " in \"" << text_
                          << "\"";
    ++pos_;
  }

  std::string Name() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    CP_CHECK(pos_ > start) << "expected a name at position " << start << " in \"" << text_ << "\"";
    return text_.substr(start, pos_ - start);
  }

 private:
  const std::string& text_;
  size_t pos_;
};

}  // namespace

Hypergraph ParseQuery(const std::string& text) {
  Scanner scanner(text);
  Hypergraph::Builder builder;
  bool first = true;
  while (!scanner.AtEnd()) {
    if (!first) scanner.Expect(',');
    first = false;
    std::string relation = scanner.Name();
    scanner.Expect('(');
    std::vector<std::string> attrs;
    attrs.push_back(scanner.Name());
    while (scanner.Peek() == ',') {
      scanner.Expect(',');
      attrs.push_back(scanner.Name());
    }
    scanner.Expect(')');
    builder.AddRelation(relation, attrs);
  }
  Hypergraph graph = builder.Build();
  CP_CHECK_GT(graph.num_edges(), 0u) << "empty query";
  return graph;
}

}  // namespace coverpack
