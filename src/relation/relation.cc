#include "relation/relation.h"

#include <algorithm>
#include <sstream>

namespace coverpack {

namespace {

/// Sorts the flat row storage lexicographically in place.
void SortFlatRows(std::vector<Value>* data, uint32_t width) {
  if (width == 0 || data->empty()) return;
  size_t rows = data->size() / width;
  std::vector<size_t> order(rows);
  for (size_t i = 0; i < rows; ++i) order[i] = i;
  auto row_less = [&](size_t a, size_t b) {
    const Value* pa = data->data() + a * width;
    const Value* pb = data->data() + b * width;
    return std::lexicographical_compare(pa, pa + width, pb, pb + width);
  };
  std::sort(order.begin(), order.end(), row_less);
  std::vector<Value> sorted;
  sorted.reserve(data->size());
  for (size_t i : order) {
    const Value* p = data->data() + i * width;
    sorted.insert(sorted.end(), p, p + width);
  }
  *data = std::move(sorted);
}

}  // namespace

void Relation::Dedup() {
  if (width_ == 0 || data_.empty()) return;
  SortFlatRows(&data_, width_);
  size_t rows = data_.size() / width_;
  size_t write = 1;
  for (size_t i = 1; i < rows; ++i) {
    const Value* prev = data_.data() + (write - 1) * width_;
    const Value* cur = data_.data() + i * width_;
    if (!std::equal(cur, cur + width_, prev)) {
      std::copy(cur, cur + width_, data_.data() + write * width_);
      ++write;
    }
  }
  data_.resize(write * width_);
}

void Relation::SortRows() { SortFlatRows(&data_, width_); }

bool Relation::SameContentAs(const Relation& other) const {
  if (attrs_ != other.attrs_) return false;
  if (size() != other.size()) return false;
  Relation a = *this;
  Relation b = other;
  a.SortRows();
  b.SortRows();
  return a.data_ == b.data_;
}

std::string Relation::ToString(size_t limit) const {
  std::ostringstream oss;
  oss << "Relation(attrs=" << attrs_.bits() << ", rows=" << size() << ") {";
  for (size_t i = 0; i < size() && i < limit; ++i) {
    oss << (i == 0 ? " " : ", ") << "(";
    auto r = row(i);
    for (size_t j = 0; j < r.size(); ++j) {
      if (j) oss << ",";
      oss << r[j];
    }
    oss << ")";
  }
  if (size() > limit) oss << ", ...";
  oss << " }";
  return oss.str();
}

}  // namespace coverpack
