/// \file covers.h
/// \brief Query-dependent LP quantities: rho*, tau*, psi*, vertex covers.
///
/// These are the three numbers the paper's title is about: the optimal
/// fractional edge covering number rho* governs the multi-round upper bound
/// (Theorem 5), the optimal fractional edge packing number tau* governs the
/// new lower bound (Theorems 6/7), and the quasi-packing number psi* governs
/// the one-round bound of prior work.

#ifndef COVERPACK_LP_COVERS_H_
#define COVERPACK_LP_COVERS_H_

#include <optional>
#include <vector>

#include "query/hypergraph.h"
#include "util/rational.h"

namespace coverpack {

/// A fractional weighting of the edges of a query.
struct EdgeWeighting {
  Rational total;                 ///< Sum of the weights (the "number").
  std::vector<Rational> weights;  ///< One weight per EdgeId.
};

/// A fractional weighting of the vertices (attributes) of a query.
/// weights are indexed by AttrId over the *full* attribute table; ids not
/// occurring in any edge get weight zero.
struct VertexWeighting {
  Rational total;
  std::vector<Rational> weights;
};

/// Optimal fractional edge covering: minimize sum f(e) with
/// sum_{e : v in e} f(e) >= 1 for every attribute v. (rho*)
EdgeWeighting FractionalEdgeCover(const Hypergraph& query);

/// Optimal fractional edge packing: maximize sum f(e) with
/// sum_{e : v in e} f(e) <= 1 for every attribute v. (tau*)
EdgeWeighting FractionalEdgePacking(const Hypergraph& query);

/// Optimal fractional edge quasi-packing psi* = max over all attribute
/// subsets x of tau*(Q_x) (footnote 2 of the paper). Exponential in the
/// number of attributes — queries have constant size.
Rational EdgeQuasiPackingNumber(const Hypergraph& query);

/// Optimal fractional vertex covering: minimize sum x_v with
/// sum_{v in e} x_v >= 1 for every edge e. By LP duality its value
/// equals tau*.
VertexWeighting FractionalVertexCover(const Hypergraph& query);

/// Shorthand accessors.
Rational RhoStar(const Hypergraph& query);
Rational TauStar(const Hypergraph& query);

/// True if every weight has denominator 1.
bool IsIntegral(const std::vector<Rational>& weights);

/// True if every weight has denominator 1 or 2.
bool IsHalfIntegral(const std::vector<Rational>& weights);

/// The AGM exponent of a subset of attributes: the optimal fractional edge
/// cover number of the query restricted to covering only `attrs`
/// (minimize sum f(e), sum_{e : v in e} f(e) >= 1 for v in attrs).
Rational RhoStarOfAttrs(const Hypergraph& query, AttrSet attrs);

}  // namespace coverpack

#endif  // COVERPACK_LP_COVERS_H_
