#include "cluster/elastic.h"

#include <algorithm>
#include <utility>

#include "cluster/cluster_telemetry.h"
#include "cluster/routing.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/random.h"

namespace coverpack {
namespace cluster {

namespace {

/// One contiguous slice of a surplus tail: rows [previous end, end) of the
/// source shard stream to `dest`.
struct Segment {
  uint64_t end = 0;
  uint32_t dest = 0;
};

}  // namespace

MigrationResult MigrateToEpoch(Cluster* cluster, DistRelation* state,
                               const std::vector<uint32_t>& from,
                               const std::vector<uint32_t>& to,
                               const std::vector<double>& to_speeds, uint32_t round,
                               resilience::RoundCheckpointStore* checkpoints) {
  MigrationResult result;
  if (from == to) return result;
  CP_CHECK(cluster != nullptr);
  CP_CHECK(state != nullptr);
  CP_CHECK_EQ(to.size(), to_speeds.size());
  const uint32_t num_slots = state->num_shards();
  std::vector<bool> in_from(num_slots, false);
  std::vector<bool> in_to(num_slots, false);
  for (uint32_t slot : from) in_from[slot] = true;
  for (uint32_t slot : to) in_to[slot] = true;
  for (uint32_t slot : to) {
    if (!in_from[slot]) ++result.servers_joined;
  }
  uint64_t total = 0;
  for (uint32_t slot = 0; slot < num_slots; ++slot) {
    if (in_from[slot]) {
      total += state->shard(slot).size();
    } else {
      // State lives only on members; anything else is a routing bug.
      CP_CHECK_EQ(state->shard(slot).size(), 0u);
    }
    if (in_from[slot] && !in_to[slot]) ++result.servers_left;
  }

  // Post-migration targets: shares of the current rows proportional to the
  // new members' speeds.
  const std::vector<uint64_t> targets = ProportionalShares(to_speeds, total);
  std::vector<uint64_t> target_of(num_slots, 0);
  for (size_t i = 0; i < to.size(); ++i) target_of[to[i]] = targets[i];

  // Deficits in ascending destination order; surpluses stream into them in
  // ascending source order. Pure function of (shard sizes, targets).
  struct Deficit {
    uint32_t slot;
    uint64_t need;
  };
  std::vector<Deficit> deficits;
  for (size_t i = 0; i < to.size(); ++i) {
    const uint64_t current = state->shard(to[i]).size();
    if (targets[i] > current) deficits.push_back({to[i], targets[i] - current});
  }

  if (checkpoints != nullptr) checkpoints->NoteCapture(round, total);

  struct SurplusSource {
    uint32_t slot;
    uint64_t keep;
    std::vector<Segment> segments;
  };
  std::vector<SurplusSource> sources;
  size_t d = 0;
  for (uint32_t slot : from) {
    const uint64_t current = state->shard(slot).size();
    const uint64_t keep = std::min<uint64_t>(current, target_of[slot]);
    if (current <= keep) continue;
    SurplusSource source{slot, keep, {}};
    uint64_t row = keep;
    while (row < current) {
      CP_CHECK_LT(d, deficits.size());
      if (deficits[d].need == 0) {
        ++d;
        continue;
      }
      const uint64_t take = std::min(current - row, deficits[d].need);
      row += take;
      deficits[d].need -= take;
      source.segments.push_back({row, deficits[d].slot});
      if (!in_to[slot]) result.tuples_from_leavers += take;
      if (!in_from[deficits[d].slot]) result.tuples_to_joiners += take;
    }
    sources.push_back(std::move(source));
  }

  if (!sources.empty()) {
    // One rebalancing Exchange: recorded routes, charged in `round`,
    // audited at the choke point, delivered through any installed
    // interposer. Surplus tails truncate only after the clean delivery.
    mpc::ExchangePlan plan(num_slots);
    for (const SurplusSource& source : sources) {
      const uint64_t keep = source.keep;
      const std::vector<Segment> segments = source.segments;
      plan.AddSource(state->shard(source.slot), /*record=*/true,
                     [keep, segments](size_t i, auto emit) {
                       if (i < keep) return;
                       const auto it = std::upper_bound(
                           segments.begin(), segments.end(), static_cast<uint64_t>(i),
                           [](uint64_t row, const Segment& s) { return row < s.end; });
                       emit(it->dest);
                     });
    }
    result.stats = mpc::Exchange::Execute(
        cluster, round, plan,
        [state](size_t, uint32_t server) { return &state->shard(server); }, "migrate");
    for (const SurplusSource& source : sources) {
      state->shard(source.slot).Truncate(source.keep);
    }
  }

  CP_CHECK_EQ(state->TotalSize(), total);
  for (uint32_t slot = 0; slot < num_slots; ++slot) {
    if (!in_to[slot]) CP_CHECK_EQ(state->shard(slot).size(), 0u);
  }

  ClusterTelemetry::MigrationRecord record;
  record.servers_joined = result.servers_joined;
  record.servers_left = result.servers_left;
  record.tuples_moved = result.stats.planned;
  record.tuples_from_leavers = result.tuples_from_leavers;
  record.tuples_to_joiners = result.tuples_to_joiners;
  record.max_single_receive = result.stats.max_receive;
  record.checkpoint_tuples = total;
  ClusterTelemetry::RecordMigration(record);
  return result;
}

namespace {

SpeedWeightedRouter RouterForEpoch(const ClusterProfile& profile, const Epoch& epoch,
                                   bool speed_aware) {
  std::vector<double> weights =
      speed_aware ? profile.ActiveSpeeds(epoch)
                  : std::vector<double>(epoch.active.size(), 1.0);
  return SpeedWeightedRouter(epoch.active, std::move(weights));
}

}  // namespace

ElasticRunResult RunElasticPipeline(const ElasticRunConfig& config) {
  CP_CHECK_GE(config.width, 1u);
  CP_CHECK_GE(config.rounds, 1u);
  const ClusterProfile profile(config.base_p, config.speeds, config.schedule);
  Cluster cluster(profile.num_slots());
  ClusterTelemetry::RecordRun();

  // Synthetic input: `rows` random tuples from a moderate key domain, so
  // partition rounds see both repeated and unique keys. One serial Rng —
  // the stream depends only on the seed.
  Relation data(AttrSet::FirstN(config.width));
  const uint64_t domain = 1 + config.rows / 2;
  Rng rng(SplitSeed(config.seed, 0));
  std::vector<Value> buffer;
  buffer.reserve(config.rows * config.width);
  for (uint64_t i = 0; i < config.rows; ++i) {
    for (uint32_t c = 0; c < config.width; ++c) buffer.push_back(rng.Uniform(domain));
  }
  data.AppendRows(buffer.data(), config.rows);

  DistRelation state(data.attrs(), profile.num_slots());
  const Epoch* current = &profile.EpochForRound(0);
  {
    // Round 0: the charged arrival scatter, shares proportional to speed
    // (or uniform for the oblivious baseline).
    const SpeedWeightedRouter router = RouterForEpoch(profile, *current, config.speed_aware);
    mpc::ExchangePlan plan(profile.num_slots());
    AddWeightedScatter(&plan, data, router, /*record=*/true);
    mpc::Exchange::Execute(
        &cluster, 0, plan,
        [&state](size_t, uint32_t server) { return &state.shard(server); },
        "cluster_scatter");
  }

  ElasticRunResult result;
  for (uint32_t round = 1; round <= config.rounds; ++round) {
    const Epoch& epoch = profile.EpochForRound(round);
    if (epoch.active != current->active) {
      std::vector<double> weights =
          config.speed_aware ? profile.ActiveSpeeds(epoch)
                             : std::vector<double>(epoch.active.size(), 1.0);
      const MigrationResult migration =
          MigrateToEpoch(&cluster, &state, current->active, epoch.active, weights, round,
                         &result.checkpoints);
      result.tuples_migrated += migration.stats.planned;
    }
    current = &epoch;

    const SpeedWeightedRouter router = RouterForEpoch(profile, epoch, config.speed_aware);
    const std::vector<uint32_t> key_columns{(round - 1) % config.width};
    DistRelation next(data.attrs(), profile.num_slots());
    mpc::ExchangePlan plan(profile.num_slots());
    for (uint32_t slot : epoch.active) {
      AddWeightedHashPartition(&plan, state.shard(slot), key_columns,
                               HashCombine(config.seed, round), router, /*record=*/true);
    }
    mpc::Exchange::Execute(
        &cluster, round, plan,
        [&next](size_t, uint32_t server) { return &next.shard(server); },
        "cluster_partition");
    state = std::move(next);
    CP_CHECK_EQ(state.TotalSize(), config.rows);
  }

  result.tracker = cluster.tracker();
  result.final_rows = state.TotalSize();
  uint64_t content = 0xe1a57ull;
  for (uint32_t slot = 0; slot < state.num_shards(); ++slot) {
    result.final_shard_sizes.push_back(state.shard(slot).size());
    // Empty shards contribute nothing: a slot the schedule reserved but
    // never activated cannot perturb the digest, so an unfired schedule
    // hashes identical to a fixed-p run.
    if (state.shard(slot).size() == 0) continue;
    content = HashCombine(content, slot);
    content = HashCombine(content, HashVector(state.shard(slot).raw()));
  }
  result.content_hash = content;
  for (const Epoch& epoch : profile.epochs()) {
    if (epoch.first_round <= config.rounds) ++result.epochs;
  }
  return result;
}

}  // namespace cluster
}  // namespace coverpack
