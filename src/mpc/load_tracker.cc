#include "mpc/load_tracker.h"

#include <algorithm>

#include "util/audit.h"
#include "util/logging.h"

namespace coverpack {

LoadTracker::LoadTracker(uint32_t num_servers) : num_servers_(num_servers) {
  CP_CHECK_GE(num_servers, 1u);
}

void LoadTracker::Add(uint32_t round, uint32_t server, uint64_t amount) {
  CP_CHECK_LT(server, num_servers_);
  if (round >= rounds_.size()) {
    rounds_.resize(round + 1, std::vector<uint64_t>(num_servers_, 0));
  }
  rounds_[round][server] += amount;
}

uint64_t LoadTracker::At(uint32_t round, uint32_t server) const {
  if (round >= rounds_.size()) return 0;
  return rounds_[round][server];
}

uint64_t LoadTracker::MaxLoad() const {
  uint64_t max_load = 0;
  for (const auto& round : rounds_) {
    for (uint64_t load : round) max_load = std::max(max_load, load);
  }
  return max_load;
}

uint64_t LoadTracker::MaxLoadOfRound(uint32_t round) const {
  if (round >= rounds_.size()) return 0;
  uint64_t max_load = 0;
  for (uint64_t load : rounds_[round]) max_load = std::max(max_load, load);
  return max_load;
}

uint64_t LoadTracker::TotalCommunication() const {
  uint64_t total = 0;
  for (const auto& round : rounds_) {
    for (uint64_t load : round) total += load;
  }
  return total;
}

const std::vector<uint64_t>& LoadTracker::RoundLoads(uint32_t round) const {
  CP_CHECK_LT(round, rounds_.size());
  return rounds_[round];
}

uint64_t LoadTracker::TotalOfRound(uint32_t round) const {
  if (round >= rounds_.size()) return 0;
  uint64_t total = 0;
  for (uint64_t load : rounds_[round]) total += load;
  return total;
}

double LoadTracker::MeanLoadOfRound(uint32_t round) const {
  if (round >= rounds_.size()) return 0.0;
  return static_cast<double>(TotalOfRound(round)) / static_cast<double>(num_servers_);
}

void LoadTracker::Merge(const LoadTracker& child, uint32_t server_offset,
                        uint32_t round_offset) {
  CP_CHECK_LE(server_offset + child.num_servers_, num_servers_);
  // Disjoint server groups: the merge must transfer the child's volume
  // exactly, with replication factor 1.
  CP_AUDIT_ONLY(const uint64_t total_before = TotalCommunication();
                const uint64_t child_total = child.TotalCommunication();)
  for (uint32_t r = 0; r < child.num_rounds(); ++r) {
    for (uint32_t s = 0; s < child.num_servers_; ++s) {
      uint64_t load = child.rounds_[r][s];
      if (load != 0) Add(round_offset + r, server_offset + s, load);
    }
  }
  CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyConservation(
      total_before, child_total, TotalCommunication(), "LoadTracker::Merge");)
}

void LoadTracker::MergeMapped(const LoadTracker& child, uint32_t round_offset,
                              const std::function<uint32_t(uint32_t)>& physical_to_child) {
  // Each child server's column is replicated once per physical server that
  // maps to it, so the merged volume is the child's volume scaled by the
  // (per-column) replication factor. Recompute that expectation up front
  // and hold the merge to it.
  CP_AUDIT_ONLY(
      const uint64_t total_before = TotalCommunication();
      uint64_t expected_delta = 0;
      for (uint32_t s = 0; s < num_servers_; ++s) {
        uint32_t c = physical_to_child(s);
        if (c >= child.num_servers_) continue;
        for (uint32_t r = 0; r < child.num_rounds(); ++r) expected_delta += child.At(r, c);
      })
  for (uint32_t s = 0; s < num_servers_; ++s) {
    uint32_t c = physical_to_child(s);
    if (c >= child.num_servers_) continue;
    for (uint32_t r = 0; r < child.num_rounds(); ++r) {
      uint64_t load = child.rounds_[r][c];
      if (load != 0) Add(round_offset + r, s, load);
    }
  }
  CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyConservation(
      total_before, expected_delta, TotalCommunication(), "LoadTracker::MergeMapped");)
}

}  // namespace coverpack
