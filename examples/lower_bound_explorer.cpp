/// \file lower_bound_explorer.cpp
/// \brief Interactive tour of the Theorem 6 lower bound.
///
/// Builds the probabilistic box-join hard instance, then walks the proof:
/// the output hits the AGM bound, yet the best Cartesian load shape a
/// server can pick yields only ~2L^3/N results, so p servers force
/// L >= N / (2p)^(1/3) — beating the cover-based bound N / p^(1/2).
///
///   $ ./lower_bound_explorer [N] [p]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "lowerbound/emit_capacity.h"
#include "lowerbound/hard_instance.h"
#include "query/catalog.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace coverpack;
  using namespace coverpack::lowerbound;

  uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32768;
  uint32_t p = argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 512;

  Hypergraph box = catalog::BoxJoin();
  PackingProvability witness = BoxJoinWitness(box);
  std::cout << "query: " << box.ToString() << "\n";
  std::cout << "rho* = " << witness.rho_star << " (cover {R1,R2}), tau* = "
            << witness.tau_star << " (packing {R3,R4,R5})\n\n";

  HardInstance hard = BoxJoinHardInstance(box, n, /*seed=*/99);
  n = hard.n;
  uint64_t r2 = hard.instance[*box.FindEdge("R2")].size();
  std::cout << "hard instance: N = " << n << "; R1,R3,R4,R5 Cartesian (" << n
            << " tuples each); R2 sampled at rate 1/N (" << r2 << " tuples)\n";
  std::cout << "output = |R1| x |R2| = " << n * r2 << "  (AGM bound N^2 = " << n * n
            << ")\n\n";

  uint64_t load = static_cast<uint64_t>(static_cast<double>(n) /
                                        std::pow(2.0 * static_cast<double>(p), 1.0 / 3.0));
  std::cout << "suppose every server is limited to L = N/(2p)^(1/3) = " << load
            << " tuples per relation.\n";
  EmitCapacityResult cap = SearchEmitCapacity(box, hard, witness, load, 200);
  std::cout << "searched " << cap.shapes_searched << " Cartesian load shapes ("
            << cap.shapes_evaluated_exactly << " evaluated exactly):\n";
  std::cout << "  best shape emits J(L) = " << cap.measured << " results\n";
  std::cout << "  Theorem 6 cap 2L^3/N   = " << FormatDouble(cap.predicted_cap, 0) << "  ["
            << (static_cast<double>(cap.measured) <= cap.predicted_cap ? "HOLDS" : "VIOLATED")
            << "]\n";
  if (!cap.best_shape.empty()) {
    std::cout << "  best shape loads per attribute (A,B,C,D,E,F): ";
    for (size_t i = 0; i < cap.best_shape.size(); ++i) {
      std::cout << (i ? " x " : "") << cap.best_shape[i];
    }
    std::cout << "\n";
  }

  double total_emittable = static_cast<double>(p) * cap.predicted_cap;
  std::cout << "\ncounting argument: p * J(L) = " << FormatDouble(total_emittable, 0)
            << " < OUT = " << n * r2 << " -> L must exceed " << load << ".\n";

  TablePrinter table({"p", "new bound N/(2p)^(1/3)", "AGM bound N/p^(1/2)", "factor"});
  for (uint32_t pp : {64u, 512u, 4096u, 32768u}) {
    double new_bound = CountingArgumentLoadBound(n, pp, witness.tau_star);
    double agm = static_cast<double>(n) / std::sqrt(static_cast<double>(pp));
    table.AddRow({std::to_string(pp), FormatDouble(new_bound, 1), FormatDouble(agm, 1),
                  FormatDouble(new_bound / agm, 2)});
  }
  table.Print(std::cout);
  std::cout << "packing, not cover, governs the multi-round lower bound here.\n";
  return 0;
}
