// cplint fixture: a suppressed per-row append (cold path, measured exempt).
void EmitOne(const Relation& input, size_t i, Relation* output) {
  // cplint: allow(no-per-row-append) -- one row per call, not a row loop
  output->AppendRow(input.row(i));
}
