/// \file bench_filter_test.cc
/// \brief Unit tests for the bench driver's --filter semantics: historical
/// case-insensitive substring terms, plus '*'/'?' whole-id glob terms.
/// Compiled into cp_determinism_tests because that is the test binary that
/// links the bench experiment registry.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/experiments.h"

namespace coverpack {
namespace {

std::vector<std::string> MatchingIds(const std::string& filter) {
  std::vector<std::string> ids;
  for (const bench::Experiment& experiment : bench::AllExperiments()) {
    if (bench::ExperimentMatchesFilter(experiment, filter)) ids.push_back(experiment.id);
  }
  return ids;
}

TEST(ExperimentFilterTest, SubstringTermsKeepHistoricalSemantics) {
  EXPECT_EQ(MatchingIds("table1"), std::vector<std::string>{"table1_complexity"});
  // Display ids match too, case-insensitively.
  EXPECT_EQ(MatchingIds("THEOREM5"),
            (std::vector<std::string>{"thm5_optimal_acyclic", "thm5_random_queries"}));
  EXPECT_TRUE(MatchingIds("no_such_experiment").empty());
}

TEST(ExperimentFilterTest, StarGlobMatchesWholeIds) {
  EXPECT_EQ(MatchingIds("thm5*"),
            (std::vector<std::string>{"thm5_optimal_acyclic", "thm5_random_queries"}));
  // A glob is anchored: without a trailing '*' the prefix alone matches
  // nothing, unlike a substring term.
  EXPECT_TRUE(MatchingIds("thm5_optimal*").size() == 1);
  EXPECT_TRUE(MatchingIds("thm5_optim").size() == 1);   // substring, unanchored
  EXPECT_TRUE(MatchingIds("*_optimal_acyclic").size() == 1);
  EXPECT_EQ(MatchingIds("service*"), std::vector<std::string>{"service_throughput"});
  EXPECT_EQ(MatchingIds("*throughput"), std::vector<std::string>{"service_throughput"});
  EXPECT_TRUE(MatchingIds("nosuch*").empty());
}

TEST(ExperimentFilterTest, QuestionMarkMatchesExactlyOneCharacter) {
  // fig?_* keeps the one-digit figure experiments and excludes fig56.
  const std::vector<std::string> ids = MatchingIds("fig?_*");
  EXPECT_EQ(ids.size(), 5u);
  for (const std::string& id : ids) {
    EXPECT_NE(id, "fig56_decomposition");
  }
  EXPECT_EQ(MatchingIds("fig??_*"),
            std::vector<std::string>{"fig56_decomposition"});
}

TEST(ExperimentFilterTest, GlobsSpanEmptyRunsAndAreCaseInsensitive) {
  EXPECT_EQ(MatchingIds("**service**"), std::vector<std::string>{"service_throughput"});
  EXPECT_EQ(MatchingIds("SERVICE*"), std::vector<std::string>{"service_throughput"});
  // '*' alone selects everything.
  EXPECT_EQ(MatchingIds("*").size(), bench::AllExperiments().size());
}

}  // namespace
}  // namespace coverpack
