/// \file cluster_telemetry.h
/// \brief Process-global ledger of elastic-cluster activity.
///
/// Mirrors ExchangeTelemetry / ResilienceTelemetry: Reset before a run,
/// Record from the migration machinery, Snapshot into RunReport metrics
/// ("cluster.*" keys — see telemetry/cluster_metrics.h). Everything
/// recorded is content-determined (epoch transitions, planned migration
/// volumes), never schedule- or thread-dependent, so cluster.* values are
/// bit-identical across thread counts and fault plans — the determinism
/// suite relies on this.

#ifndef COVERPACK_CLUSTER_CLUSTER_TELEMETRY_H_
#define COVERPACK_CLUSTER_CLUSTER_TELEMETRY_H_

#include <cstdint>
#include <vector>

namespace coverpack {
namespace cluster {

/// Point-in-time copy of the ledger. Sample vectors hold integer-valued
/// doubles, so histogram aggregates downstream are exact.
struct ClusterTelemetrySnapshot {
  uint64_t runs = 0;                ///< elastic pipelines executed
  uint64_t migrations = 0;          ///< rebalancing exchanges executed
  uint64_t servers_joined = 0;      ///< servers activated across all epochs
  uint64_t servers_left = 0;        ///< servers deactivated across all epochs
  uint64_t tuples_migrated = 0;     ///< total planned migration volume
  uint64_t tuples_from_leavers = 0; ///< ... of which drained off leavers
  uint64_t tuples_to_joiners = 0;   ///< ... of which seeded joiners
  uint64_t checkpoints_captured = 0;  ///< round-boundary snapshots noted
  uint64_t checkpoint_tuples = 0;     ///< tuples those snapshots protected
  uint64_t max_single_migration = 0;  ///< largest per-server migration receive
  std::vector<double> migration_samples;  ///< tuples moved, one per migration
};

class ClusterTelemetry {
 public:
  /// One migration's worth of accounting, merged atomically.
  struct MigrationRecord {
    uint32_t servers_joined = 0;
    uint32_t servers_left = 0;
    uint64_t tuples_moved = 0;
    uint64_t tuples_from_leavers = 0;
    uint64_t tuples_to_joiners = 0;
    uint64_t max_single_receive = 0;
    uint64_t checkpoint_tuples = 0;
  };

  static void Reset();
  static void RecordRun();
  static void RecordMigration(const MigrationRecord& record);
  static ClusterTelemetrySnapshot Snapshot();
};

}  // namespace cluster
}  // namespace coverpack

#endif  // COVERPACK_CLUSTER_CLUSTER_TELEMETRY_H_
