#include "service/query_shape.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "util/hash.h"

namespace coverpack {
namespace service {

namespace {

// Domain-separation seeds so attribute colors, edge colors, and the
// individualization mark can never alias each other.
constexpr uint64_t kAttrSeed = 0xA1171B7E5EED0001ull;
constexpr uint64_t kEdgeSeed = 0xED6E5EED00000002ull;
constexpr uint64_t kIndividualizeSeed = 0x1D1A5EED00000003ull;

/// One simultaneous coloring of the incidence structure.
struct Coloring {
  std::vector<uint64_t> attr;  // per AttrId; unused attrs hold 0
  std::vector<uint64_t> edge;  // per EdgeId
};

uint32_t DistinctColorCount(const AttrSet used, const Coloring& coloring) {
  std::vector<uint64_t> all;
  all.reserve(used.size() + coloring.edge.size());
  for (AttrId a : used.ToVector()) all.push_back(coloring.attr[a]);
  for (uint64_t c : coloring.edge) all.push_back(c);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return static_cast<uint32_t>(all.size());
}

Coloring InitialColoring(const Hypergraph& query, const AttrSet used) {
  Coloring coloring;
  coloring.attr.assign(query.num_attrs(), 0);
  coloring.edge.assign(query.num_edges(), 0);
  for (AttrId a : used.ToVector()) {
    coloring.attr[a] = HashCombine(kAttrSeed, query.AttrDegree(a));
  }
  for (EdgeId e = 0; e < query.num_edges(); ++e) {
    coloring.edge[e] = HashCombine(kEdgeSeed, query.edge(e).attrs.size());
  }
  return coloring;
}

/// One round of simultaneous refinement: every edge absorbs the sorted
/// multiset of its attributes' colors, every attribute the sorted multiset
/// of its edges' colors. Sorting makes each step invariant under renaming.
Coloring RefineOnce(const Hypergraph& query, const AttrSet used, const Coloring& coloring) {
  Coloring next;
  next.attr.assign(query.num_attrs(), 0);
  next.edge.assign(query.num_edges(), 0);
  for (EdgeId e = 0; e < query.num_edges(); ++e) {
    std::vector<uint64_t> neighbor_colors;
    for (AttrId a : query.edge(e).attrs.ToVector()) {
      neighbor_colors.push_back(coloring.attr[a]);
    }
    std::sort(neighbor_colors.begin(), neighbor_colors.end());
    next.edge[e] = HashCombine(coloring.edge[e], HashVector(neighbor_colors));
  }
  for (AttrId a : used.ToVector()) {
    std::vector<uint64_t> neighbor_colors;
    for (EdgeId e : query.EdgesContaining(a).ToVector()) {
      neighbor_colors.push_back(coloring.edge[e]);
    }
    std::sort(neighbor_colors.begin(), neighbor_colors.end());
    next.attr[a] = HashCombine(coloring.attr[a], HashVector(neighbor_colors));
  }
  return next;
}

/// Refines until the color partition stops splitting. Refinement never
/// merges classes (colors are chained hashes), so a stable distinct count
/// means a stable partition; the iteration count depends only on the
/// partition trajectory, which is itself isomorphism-invariant.
void RefineToStable(const Hypergraph& query, const AttrSet used, Coloring* coloring) {
  uint32_t distinct = DistinctColorCount(used, *coloring);
  const uint32_t max_rounds = used.size() + query.num_edges() + 2;
  for (uint32_t round = 0; round < max_rounds; ++round) {
    Coloring next = RefineOnce(query, used, *coloring);
    const uint32_t next_distinct = DistinctColorCount(used, next);
    *coloring = std::move(next);
    if (next_distinct == distinct) break;
    distinct = next_distinct;
  }
}

/// A stable hash of a whole coloring: sorted attr colors + sorted edge
/// colors, order-free on both sides.
uint64_t ColoringHash(const AttrSet used, const Coloring& coloring) {
  std::vector<uint64_t> attrs;
  for (AttrId a : used.ToVector()) attrs.push_back(coloring.attr[a]);
  std::sort(attrs.begin(), attrs.end());
  std::vector<uint64_t> edges = coloring.edge;
  std::sort(edges.begin(), edges.end());
  return HashCombine(HashVector(attrs), HashVector(edges));
}

bool HasSymmetricAttrs(const AttrSet used, const Coloring& coloring) {
  std::vector<uint64_t> attrs;
  for (AttrId a : used.ToVector()) attrs.push_back(coloring.attr[a]);
  std::sort(attrs.begin(), attrs.end());
  return std::adjacent_find(attrs.begin(), attrs.end()) != attrs.end();
}

/// Renders the edge list of a discrete attr coloring (every used attribute
/// holds a distinct color): attrs are labeled by their color rank, each edge
/// becomes its sorted label list, and the edge renderings are sorted. With
/// distinct labels this spells out the full incidence structure, so two
/// queries render equal iff they are isomorphic as hypergraphs.
std::string RenderDiscreteForm(const Hypergraph& query, const AttrSet used,
                               const Coloring& coloring) {
  std::map<uint64_t, uint32_t> attr_rank;
  for (AttrId a : used.ToVector()) attr_rank.emplace(coloring.attr[a], 0);
  uint32_t rank = 0;
  for (auto& [color, r] : attr_rank) r = rank++;

  std::vector<std::string> edge_forms;
  for (EdgeId e = 0; e < query.num_edges(); ++e) {
    std::vector<uint32_t> ranks;
    for (AttrId a : query.edge(e).attrs.ToVector()) ranks.push_back(attr_rank[coloring.attr[a]]);
    std::sort(ranks.begin(), ranks.end());
    std::ostringstream form;
    form << "(";
    for (size_t i = 0; i < ranks.size(); ++i) form << (i == 0 ? "" : " ") << "a" << ranks[i];
    form << ")";
    edge_forms.push_back(form.str());
  }
  std::sort(edge_forms.begin(), edge_forms.end());

  std::ostringstream form;
  for (size_t i = 0; i < edge_forms.size(); ++i) form << (i == 0 ? "" : ",") << edge_forms[i];
  return form.str();
}

/// Canonical labeling by branching individualization-refinement: while the
/// attr coloring has a non-singleton class, pick the class with the smallest
/// color value, individualize each member in turn, refine, and recurse; the
/// lexicographically smallest discrete rendering wins. The branch set is
/// determined by colors alone (never by attribute ids), and the minimum over
/// a class is order-free, so the result is invariant under attribute
/// renaming. Each level singles out at least one more attribute and
/// refinement never merges classes, so depth is at most the attr count;
/// branching is exponential only for highly symmetric queries, which at the
/// hypergraph sizes this service caches (single-digit attrs) stays cheap.
std::string CanonicalFormFrom(const Hypergraph& query, const AttrSet used,
                              const Coloring& coloring) {
  // Find the smallest color shared by at least two used attributes.
  std::map<uint64_t, uint32_t> multiplicity;
  for (AttrId a : used.ToVector()) ++multiplicity[coloring.attr[a]];
  uint64_t target_color = 0;
  bool discrete = true;
  for (const auto& [color, count] : multiplicity) {
    if (count >= 2) {
      target_color = color;
      discrete = false;
      break;
    }
  }
  if (discrete) return RenderDiscreteForm(query, used, coloring);

  std::string best;
  for (AttrId a : used.ToVector()) {
    if (coloring.attr[a] != target_color) continue;
    Coloring branch = coloring;
    branch.attr[a] = HashCombine(branch.attr[a], kIndividualizeSeed);
    RefineToStable(query, used, &branch);
    std::string form = CanonicalFormFrom(query, used, branch);
    if (best.empty() || form < best) best = std::move(form);
  }
  return best;
}

}  // namespace

ShapeCanon CanonicalizeShape(const Hypergraph& query) {
  const AttrSet used = query.AllAttrs();
  Coloring coloring = InitialColoring(query, used);
  RefineToStable(query, used, &coloring);

  // Plain 1-WL cannot separate some symmetric non-isomorphic pairs (one
  // 6-cycle vs. two triangles: every attr has degree 2, every edge arity 2,
  // nothing ever splits). When symmetric attributes remain, rerun the
  // refinement once per attribute with that attribute individualized and
  // fold the resulting stable-coloring hash back into its color. The
  // per-attribute signature is an invariant of the attribute's orbit, so
  // the strengthened coloring stays isomorphism-invariant.
  if (HasSymmetricAttrs(used, coloring)) {
    std::vector<uint64_t> signatures(query.num_attrs(), 0);
    for (AttrId a : used.ToVector()) {
      Coloring individualized = coloring;
      individualized.attr[a] = HashCombine(individualized.attr[a], kIndividualizeSeed);
      RefineToStable(query, used, &individualized);
      signatures[a] = ColoringHash(used, individualized);
    }
    for (AttrId a : used.ToVector()) {
      coloring.attr[a] = HashCombine(coloring.attr[a], signatures[a]);
    }
    RefineToStable(query, used, &coloring);
  }

  // Render the canonical form from a discrete canonical labeling (branching
  // individualization-refinement, lexicographic minimum). Distinct labels
  // make the rendered edge list spell out the incidence structure itself, so
  // the guard separates even color-uniform WL twins (one 6-cycle vs. two
  // triangles) whose rank renderings would coincide.
  ShapeCanon canon;
  canon.num_attrs = used.size();
  canon.num_edges = query.num_edges();
  canon.edge_colors = coloring.edge;
  std::ostringstream form;
  form << "V" << canon.num_attrs << ";E" << canon.num_edges << ";"
       << CanonicalFormFrom(query, used, coloring);
  canon.canonical_form = form.str();
  canon.hash = HashCombine(HashCombine(ColoringHash(used, coloring), canon.num_attrs),
                           canon.num_edges);
  return canon;
}

uint64_t QueryShapeHash(const Hypergraph& query) { return CanonicalizeShape(query).hash; }

uint64_t StatsSignature(const ShapeCanon& canon, const Instance& instance) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  pairs.reserve(canon.edge_colors.size());
  for (EdgeId e = 0; e < canon.edge_colors.size(); ++e) {
    pairs.emplace_back(canon.edge_colors[e], instance[e].size());
  }
  std::sort(pairs.begin(), pairs.end());
  std::vector<uint64_t> flat;
  flat.reserve(pairs.size() * 2);
  for (const auto& [color, size] : pairs) {
    flat.push_back(color);
    flat.push_back(size);
  }
  return HashVector(flat);
}

bool SizesUniformPerColorClass(const ShapeCanon& canon, const Instance& instance) {
  std::map<uint64_t, uint64_t> class_size;
  for (EdgeId e = 0; e < canon.edge_colors.size(); ++e) {
    const auto [it, inserted] = class_size.emplace(canon.edge_colors[e], instance[e].size());
    if (!inserted && it->second != instance[e].size()) return false;
  }
  return true;
}

}  // namespace service
}  // namespace coverpack
