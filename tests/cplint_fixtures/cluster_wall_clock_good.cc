// cplint fixture: the sanctioned cluster speed source — a pure function
// of (spec seed, slot id). Content-keyed like FaultPlan: any process, any
// thread count, any fault schedule derives the identical fleet.
#include <cstdint>

double SeededSlotSpeed(uint64_t spec_seed, uint32_t slot) {
  uint64_t z = spec_seed ^ (0x9E3779B97F4A7C15ull * (slot + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return 1.0 + static_cast<double>((z >> 11) % 7000) / 1000.0;
}
