#include "mpc/primitives.h"

#include <algorithm>

#include "mpc/exchange.h"
#include "relation/operators.h"
#include "util/arena.h"
#include "util/audit.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace mpc {

namespace {

uint64_t KeyHashOfRow(const Relation& relation, size_t row, const std::vector<uint32_t>& cols) {
  uint64_t h = 0xCBF29CE484222325ull;
  auto r = relation.row(row);
  for (uint32_t col : cols) h = HashCombine(h, r[col]);
  return h;
}

}  // namespace

DistRelation HashPartition(Cluster* cluster, const DistRelation& input, AttrSet key,
                           uint32_t round) {
  CP_CHECK(key.IsSubsetOf(input.attrs()));
  uint32_t p = cluster->p();
  DistRelation output(input.attrs(), p);
  // Column ranks are schema-wide, identical across shards.
  const Relation schema(input.attrs());
  std::vector<uint32_t> cols;
  cols.reserve(key.size());
  for (AttrId attr : key.ToVector()) {
    cols.push_back(schema.ColumnOf(attr));
  }
  // One Exchange with one routed source per input shard: the route hashing
  // runs shard-parallel inside the plan phase; Execute delivers in
  // ascending (input shard, row) order, so each output shard's row order
  // is byte-identical to the serial path. Charging and the conservation
  // audit (tuples planned == delivered == charged) happen at the Exchange
  // choke point.
  ExchangePlan plan(p);
  for (uint32_t s = 0; s < input.num_shards(); ++s) {
    const Relation& shard = input.shard(s);
    plan.AddSource(shard, /*record=*/true, [&shard, &cols, p](size_t i, auto emit) {
      emit(KeyHashOfRow(shard, i, cols) % p);
    });
  }
  const ExchangeStats stats = Exchange::Execute(
      cluster, round, plan,
      [&output](size_t, uint32_t server) { return &output.shard(server); }, "hash_partition");
  // Repartitioning may neither drop nor duplicate tuples.
  CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyExchange(input.TotalSize(), stats.delivered,
                                                        "HashPartition");)
  (void)stats;
  return output;
}

void ChargeBroadcast(Cluster* cluster, size_t data_size, uint32_t round) {
  if (data_size == 0) return;
  ExchangePlan plan(cluster->p());
  plan.PlanBroadcast(data_size);
  Exchange::Execute(cluster, round, plan, "broadcast");
}

void ChargeLinear(Cluster* cluster, uint64_t total_items, uint32_t round) {
  if (total_items == 0) return;
  ExchangePlan plan(cluster->p());
  plan.PlanLinear(total_items);
  Exchange::Execute(cluster, round, plan, "linear");
}

std::unordered_map<Value, uint64_t> DegreeByValue(Cluster* cluster, const DistRelation& input,
                                                  AttrId attr, uint32_t* round) {
  // Local pre-aggregation is free; the exchange of (value, count) pairs and
  // the final combine are two O(N/p) rounds of the sort-based reduce-by-key.
  // Per-shard aggregation runs in parallel as a column gather + sort +
  // run-length encode over the pool thread's scratch arena (no hash table,
  // no per-shard map allocations); the combine walks shards in ascending
  // order, and the merged map's content is insertion-order independent.
  std::unordered_map<Value, uint64_t> degrees;
  uint64_t pair_count = 0;
  std::vector<std::vector<std::pair<Value, uint64_t>>> locals(input.num_shards());
  ThreadPool::Global().ParallelFor(0, input.num_shards(), 1, [&](size_t s) {
    const Relation& shard = input.shard(static_cast<uint32_t>(s));
    if (shard.empty()) return;
    const size_t n = shard.size();
    const uint32_t width = shard.width();
    const Value* src = shard.raw().data() + shard.ColumnOf(attr);
    ArenaScope scope;
    Value* values = scope.arena()->AllocateArray<Value>(n);
    for (size_t i = 0; i < n; ++i) values[i] = src[i * width];
    std::sort(values, values + n);
    for (size_t i = 0; i < n;) {
      size_t run = i + 1;
      while (run < n && values[run] == values[i]) ++run;
      locals[s].emplace_back(values[i], run - i);
      i = run;
    }
  });
  for (uint32_t s = 0; s < input.num_shards(); ++s) {
    pair_count += locals[s].size();
    for (const auto& [value, count] : locals[s]) degrees[value] += count;
  }
  // Reduce-by-key conserves counts: the degrees of all values must sum to
  // exactly the number of input tuples.
  CP_AUDIT_ONLY(
      // Commutative sum for the conservation audit; order-independent.
      // cplint: allow(no-unordered-iteration)
      uint64_t degree_sum = 0; for (const auto& [value, count] : degrees) degree_sum += count;
      audit::SimulatorAuditor::VerifyExchange(input.TotalSize(), degree_sum,
                                              "DegreeByValue count conservation");)
  ChargeLinear(cluster, pair_count, *round);
  ChargeLinear(cluster, degrees.size(), *round + 1);
  *round += 2;
  return degrees;
}

DistRelation SemiJoinMpc(Cluster* cluster, const DistRelation& left, const DistRelation& right,
                         uint32_t* round) {
  AttrSet shared = left.attrs().Intersect(right.attrs());
  CP_CHECK(!shared.empty()) << "MPC semi-join requires a shared attribute";
  DistRelation left_parts = HashPartition(cluster, left, shared, *round);
  DistRelation right_parts = HashPartition(cluster, right, shared, *round);
  *round += 1;
  DistRelation output(left.attrs(), cluster->p());
  // One independent semi-join per server; each writes its own shard.
  ThreadPool::Global().ParallelFor(0, cluster->p(), 1, [&](size_t s) {
    uint32_t server = static_cast<uint32_t>(s);
    output.shard(server) = SemiJoin(left_parts.shard(server), right_parts.shard(server));
  });
  // A semi-join filters the left side; it can never grow it.
  CP_AUDIT_LE(output.TotalSize(), left.TotalSize());
  return output;
}

std::vector<uint32_t> ParallelPack(Cluster* cluster, const std::vector<uint64_t>& weights,
                                   uint64_t capacity, uint32_t* round) {
  CP_CHECK_GT(capacity, 0u);
  // First-fit over descending weights gives bins in (capacity, 2*capacity]
  // except possibly the last — the guarantee of the [15] primitive.
  std::vector<size_t> order(weights.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return weights[a] > weights[b]; });
  std::vector<uint32_t> bin_of(weights.size(), 0);
  std::vector<uint64_t> bin_load;
  bin_load.reserve(weights.size());
  for (size_t i : order) {
    CP_CHECK_LE(weights[i], capacity) << "parallel-packing input exceeds capacity";
    bool placed = false;
    for (size_t b = 0; b < bin_load.size(); ++b) {
      if (bin_load[b] + weights[i] <= 2 * capacity && bin_load[b] < capacity) {
        bin_load[b] += weights[i];
        bin_of[i] = static_cast<uint32_t>(b);
        placed = true;
        break;
      }
    }
    if (!placed) {
      bin_load.push_back(weights[i]);
      bin_of[i] = static_cast<uint32_t>(bin_load.size() - 1);
    }
  }
  // The [15] guarantee this simulator charges for: no bin above 2*capacity,
  // at most one bin under capacity, and no weight lost or double-binned.
  CP_AUDIT_ONLY(
      uint64_t weight_sum = 0; for (uint64_t w : weights) weight_sum += w;
      uint64_t binned_sum = 0; uint32_t under_full = 0;
      for (uint64_t load : bin_load) {
        binned_sum += load;
        CP_CHECK_LE(load, 2 * capacity) << "parallel-packing bin overflows 2*capacity ";
        if (load < capacity) ++under_full;
      }
      CP_AUDIT_LE(under_full, 1u);
      audit::SimulatorAuditor::VerifyExchange(weight_sum, binned_sum,
                                              "ParallelPack weight conservation");)
  ChargeLinear(cluster, weights.size(), *round);
  *round += 1;
  return bin_of;
}

}  // namespace mpc
}  // namespace coverpack
