/// \file determinism_test.cc
/// \brief The determinism golden tests: the simulator must be bit-identical
/// at any thread count.
///
/// Two layers of coverage:
///
///  * every *fast* registered experiment runs at --threads=1 and
///    --threads=4 and must produce byte-identical RunReport JSON
///    (wall-clock timers masked — they are the only sanctioned
///    nondeterminism);
///  * seeded end-to-end pipelines (workload generation -> acyclic /
///    one-round execution) compare full LoadTracker matrices, result
///    relations, and decomposition traces across thread counts for
///    several seeds.
///
/// This binary links the bench experiment registry, so it lives apart
/// from cp_tests (which must not depend on bench/).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "core/acyclic_join.h"
#include "core/one_round.h"
#include "experiments/experiments.h"
#include "mpc/load_tracker.h"
#include "query/catalog.h"
#include "relation/instance.h"
#include "telemetry/run_report.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

std::string ReportJson(const telemetry::RunReport& report) {
  std::ostringstream out;
  report.ToJson().Write(out);
  return out.str();
}

/// Replaces every `"timers":{...}` subobject with `"timers":{}` — wall-clock
/// timer samples are the only report content allowed to differ between two
/// runs of the same experiment.
std::string MaskTimers(const std::string& json) {
  std::string out;
  const std::string key = "\"timers\":";
  size_t pos = 0;
  while (true) {
    size_t hit = json.find(key, pos);
    if (hit == std::string::npos) {
      out.append(json, pos, std::string::npos);
      break;
    }
    size_t brace = hit + key.size();
    while (brace < json.size() && json[brace] != '{') ++brace;
    int depth = 0;
    size_t end = brace;
    for (; end < json.size(); ++end) {
      if (json[end] == '{') {
        ++depth;
      } else if (json[end] == '}') {
        if (--depth == 0) {
          ++end;
          break;
        }
      }
    }
    out.append(json, pos, hit - pos);
    out += "\"timers\":{}";
    pos = end;
  }
  return out;
}

bool RelationsEqual(const Relation& a, const Relation& b) {
  if (!(a.attrs() == b.attrs()) || a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    auto ra = a.row(i), rb = b.row(i);
    for (size_t c = 0; c < ra.size(); ++c) {
      if (ra[c] != rb[c]) return false;
    }
  }
  return true;
}

bool TrackersEqual(const LoadTracker& a, const LoadTracker& b) {
  if (a.num_servers() != b.num_servers() || a.num_rounds() != b.num_rounds()) return false;
  for (uint32_t round = 0; round < a.num_rounds(); ++round) {
    for (uint32_t server = 0; server < a.num_servers(); ++server) {
      if (a.At(round, server) != b.At(round, server)) return false;
    }
  }
  return true;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }

 private:
  unsigned saved_threads_ = 1;
};

TEST_F(DeterminismTest, MaskTimersReplacesTimerObjects) {
  EXPECT_EQ(MaskTimers(R"({"timers":{"a":{"count":1,"total_ms":2.5}},"x":1})"),
            R"({"timers":{},"x":1})");
  EXPECT_EQ(MaskTimers(R"({"x":1})"), R"({"x":1})");
}

TEST_F(DeterminismTest, FastExperimentsAreBitIdenticalAcrossThreadCounts) {
  for (const bench::Experiment& experiment : bench::AllExperiments()) {
    if (!experiment.fast) continue;
    SCOPED_TRACE(experiment.id);
    ThreadPool::SetGlobalThreads(1);
    telemetry::RunReport serial = experiment.run(experiment);
    ThreadPool::SetGlobalThreads(4);
    telemetry::RunReport parallel = experiment.run(experiment);
    EXPECT_EQ(serial.ok, parallel.ok);
    EXPECT_EQ(MaskTimers(ReportJson(serial)), MaskTimers(ReportJson(parallel)));
  }
}

TEST_F(DeterminismTest, AcyclicJoinIsBitIdenticalAcrossThreadCounts) {
  Hypergraph query = catalog::Path(4);
  AcyclicRunOptions options;
  options.policy = RunPolicy::kOptimal;
  options.collect = true;
  options.p = 64;
  options.trace = true;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(seed);
    ThreadPool::SetGlobalThreads(1);
    Rng serial_rng(seed);
    Instance serial_instance = workload::UniformInstance(query, 2000, 200, &serial_rng);
    AcyclicRunResult serial = ComputeAcyclicJoin(query, serial_instance, options);

    ThreadPool::SetGlobalThreads(4);
    Rng parallel_rng(seed);
    Instance parallel_instance = workload::UniformInstance(query, 2000, 200, &parallel_rng);
    AcyclicRunResult parallel = ComputeAcyclicJoin(query, parallel_instance, options);

    EXPECT_EQ(serial.output_count, parallel.output_count);
    EXPECT_EQ(serial.max_load, parallel.max_load);
    EXPECT_EQ(serial.rounds, parallel.rounds);
    EXPECT_EQ(serial.servers_used, parallel.servers_used);
    EXPECT_EQ(serial.total_communication, parallel.total_communication);
    EXPECT_EQ(serial.load_threshold, parallel.load_threshold);
    EXPECT_TRUE(RelationsEqual(serial.results, parallel.results));
    EXPECT_TRUE(TrackersEqual(serial.load_tracker, parallel.load_tracker));
    EXPECT_EQ(TraceToString(serial.trace), TraceToString(parallel.trace));
  }
}

TEST_F(DeterminismTest, OneRoundIsBitIdenticalAcrossThreadCounts) {
  Hypergraph query = catalog::Triangle();
  OneRoundOptions options;
  options.collect = true;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(seed);
    ThreadPool::SetGlobalThreads(1);
    Rng serial_rng(seed);
    Instance serial_instance = workload::ZipfInstance(query, 2000, 300, 1.1, &serial_rng);
    OneRoundResult serial = ComputeOneRoundSkewAware(query, serial_instance, 64, options);

    ThreadPool::SetGlobalThreads(4);
    Rng parallel_rng(seed);
    Instance parallel_instance = workload::ZipfInstance(query, 2000, 300, 1.1, &parallel_rng);
    OneRoundResult parallel = ComputeOneRoundSkewAware(query, parallel_instance, 64, options);

    EXPECT_EQ(serial.output_count, parallel.output_count);
    EXPECT_EQ(serial.max_load, parallel.max_load);
    EXPECT_EQ(serial.servers_used, parallel.servers_used);
    EXPECT_TRUE(RelationsEqual(serial.results, parallel.results));
    EXPECT_TRUE(TrackersEqual(serial.load_tracker, parallel.load_tracker));
  }
}

}  // namespace
}  // namespace coverpack
