/// \file bench_util.h
/// \brief Shared helpers for the bench experiments and their binaries.
///
/// Every experiment under bench/experiments/ regenerates one display of
/// the paper (see DESIGN.md's per-experiment index) and prints a
/// self-contained text report: the paper's claim, the measured numbers,
/// and a PASS/DEVIATION verdict on the shape-level comparison. The same
/// helpers also record what they print into the experiment's
/// telemetry::RunReport, so the text report and BENCH_results.json can
/// never drift apart.

#ifndef COVERPACK_BENCH_BENCH_UTIL_H_
#define COVERPACK_BENCH_BENCH_UTIL_H_

// <cmath> is included directly: ReportExponent calls std::abs on double,
// and relying on a transitive <cstdint> (via math_util.h) can silently
// select the integer abs overload set on some toolchains.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "telemetry/run_report.h"
#include "util/math_util.h"
#include "util/table_printer.h"

namespace coverpack {
namespace bench {

/// Prints the standard banner for a bench experiment.
inline void Banner(const std::string& id, const std::string& claim) {
  std::cout << "=============================================================\n";
  std::cout << "EXPERIMENT " << id << "\n";
  std::cout << "Paper claim: " << claim << "\n";
  std::cout << "=============================================================\n";
}

/// Prints a fitted exponent against its theoretical value and returns
/// whether they agree within `tolerance` (absolute, on the exponent).
inline bool ReportExponent(const std::string& label, double fitted, double theory,
                           double tolerance = 0.15) {
  bool ok = std::abs(fitted - theory) <= tolerance;
  std::cout << label << ": fitted exponent " << FormatDouble(fitted, 3) << " vs theory "
            << FormatDouble(theory, 3) << "  [" << (ok ? "MATCH" : "DEVIATION") << "]\n";
  return ok;
}

/// Same, but also records the comparison into `report` for
/// BENCH_results.json.
inline bool ReportExponent(telemetry::RunReport& report, const std::string& label,
                           double fitted, double theory, double tolerance = 0.15) {
  bool ok = ReportExponent(label, fitted, theory, tolerance);
  report.exponents.push_back({label, fitted, theory, tolerance, ok});
  return ok;
}

/// Prints the final verdict line (grep-able by EXPERIMENTS.md tooling).
inline void Verdict(const std::string& id, bool ok) {
  std::cout << "VERDICT " << id << ": " << (ok ? "SHAPE-REPRODUCED" : "DEVIATION") << "\n\n";
}

/// Records the experiment outcome and prints its VERDICT line. Every
/// experiment ends with this call; the returned report is what the
/// unified driver serializes.
inline void FinishReport(telemetry::RunReport& report, bool ok) {
  report.ok = ok;
  Verdict(report.display_id, ok);
}

}  // namespace bench
}  // namespace coverpack

#endif  // COVERPACK_BENCH_BENCH_UTIL_H_
