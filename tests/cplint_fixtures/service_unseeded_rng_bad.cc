// cplint fixture: a client simulator drawing arrivals from ambient
// randomness. In src/service/ this would make the arrival schedule differ
// run to run, so cached-vs-cold comparisons and thread-count diffs would
// never be byte-identical.
#include <random>

unsigned NextInterarrival() {
  std::random_device entropy;
  std::mt19937_64 gen;
  return static_cast<unsigned>(gen() ^ entropy());
}

int LegacyJitter() { return rand(); }
