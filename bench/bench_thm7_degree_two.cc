/// \file bench_thm7_degree_two.cc
/// \brief Thin wrapper: the experiment body lives in
/// bench/experiments/thm7_degree_two.cc and is registered in the experiment
/// registry, so the unified driver (coverpack_bench) and this historical
/// one-display binary share one implementation.

#include "experiments/experiments.h"

int main() { return coverpack::bench::RunExperimentStandalone("thm7_degree_two"); }
