#include "relation/join_index.h"

#include <bit>
#include <cstring>

#include "util/hash.h"
#include "util/logging.h"

namespace coverpack {

namespace {

constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

/// Target build rows per radix partition: small enough that a partition's
/// table and group runs stay cache-resident while it is built and probed.
constexpr size_t kRowsPerPartition = size_t{1} << 12;
constexpr size_t kMaxPartitions = size_t{1} << 10;

size_t NextPow2(size_t v) { return std::bit_ceil(v); }

}  // namespace

uint64_t HashRowKey(const Value* row, const uint32_t* cols, size_t num_cols) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < num_cols; ++i) h = HashCombine(h, row[cols[i]]);
  return h;
}

void GroupedKeyIndex::Build(const Relation& rel, const uint32_t* key_cols,
                            size_t num_key_cols) {
  const size_t n = rel.size();
  CP_CHECK(n <= kEmptySlot);
  num_rows_ = n;
  num_groups_ = 0;
  if (n == 0) return;

  const uint32_t width = rel.width();
  const Value* base = rel.raw().data();

  // Hash every row's key once, and feed the bloom filter as we go.
  hashes_ = arena_->AllocateArray<uint64_t>(n);
  const size_t bloom_words = NextPow2(n / 4 + 8);
  bloom_mask_ = bloom_words - 1;
  bloom_ = arena_->AllocateArray<uint64_t>(bloom_words);
  std::memset(bloom_, 0, bloom_words * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = HashRowKey(base + i * width, key_cols, num_key_cols);
    hashes_[i] = h;
    bloom_[(h >> 32) & bloom_mask_] |=
        (uint64_t{1} << (h & 63)) | (uint64_t{1} << ((h >> 6) & 63));
  }

  // Partition rows by the hash's top bits: counts first, then a stable
  // ascending scatter (row ids within a partition stay sorted).
  size_t num_partitions =
      std::min(kMaxPartitions, NextPow2(n / kRowsPerPartition + 1));
  partition_shift_ = 64 - static_cast<uint32_t>(std::countr_zero(num_partitions));
  if (num_partitions == 1) partition_shift_ = 64;

  uint32_t* part_count = arena_->AllocateArray<uint32_t>(num_partitions + 1);
  std::memset(part_count, 0, (num_partitions + 1) * sizeof(uint32_t));
  auto partition_of = [this](uint64_t h) -> size_t {
    return partition_shift_ == 64 ? 0 : h >> partition_shift_;
  };
  for (size_t i = 0; i < n; ++i) ++part_count[partition_of(hashes_[i])];

  uint32_t* part_start = arena_->AllocateArray<uint32_t>(num_partitions + 1);
  uint32_t sum = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    part_start[p] = sum;
    sum += part_count[p];
  }
  part_start[num_partitions] = sum;

  uint32_t* part_rows = arena_->AllocateArray<uint32_t>(n);
  {
    uint32_t* fill = arena_->AllocateArray<uint32_t>(num_partitions);
    std::memcpy(fill, part_start, num_partitions * sizeof(uint32_t));
    for (size_t i = 0; i < n; ++i) {
      part_rows[fill[partition_of(hashes_[i])]++] = static_cast<uint32_t>(i);
    }
  }

  // Per-partition open-addressing tables over a shared slot array.
  Partition* partitions = arena_->AllocateArray<Partition>(num_partitions);
  size_t total_slots = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    size_t capacity = NextPow2(size_t{part_count[p]} * 2 + 4);
    partitions[p].slot_offset = static_cast<uint32_t>(total_slots);
    partitions[p].slot_mask = static_cast<uint32_t>(capacity - 1);
    total_slots += capacity;
  }
  partitions_ = partitions;
  slot_hash_ = arena_->AllocateArray<uint64_t>(total_slots);
  slot_group_ = arena_->AllocateArray<uint32_t>(total_slots);
  std::memset(slot_group_, 0xFF, total_slots * sizeof(uint32_t));

  // Pass 1: discover groups (first occurrence claims a slot), count members.
  group_of_row_ = arena_->AllocateArray<uint32_t>(n);
  group_len_ = arena_->AllocateArray<uint32_t>(n);  // <= n groups
  for (size_t k = 0; k < n; ++k) {
    uint32_t row_id = part_rows[k];
    uint64_t h = hashes_[row_id];
    const Partition& part = partitions[partition_of(h)];
    uint32_t idx = static_cast<uint32_t>(h) & part.slot_mask;
    for (;;) {
      uint32_t slot = part.slot_offset + idx;
      if (slot_group_[slot] == kEmptySlot) {
        uint32_t g = static_cast<uint32_t>(num_groups_++);
        slot_group_[slot] = g;
        slot_hash_[slot] = h;
        group_len_[g] = 1;
        group_of_row_[row_id] = g;
        break;
      }
      if (slot_hash_[slot] == h) {
        uint32_t g = slot_group_[slot];
        ++group_len_[g];
        group_of_row_[row_id] = g;
        break;
      }
      idx = (idx + 1) & part.slot_mask;
    }
  }

  group_start_ = arena_->AllocateArray<uint32_t>(num_groups_ + 1);
  {
    uint32_t offset = 0;
    for (size_t g = 0; g < num_groups_; ++g) {
      group_start_[g] = offset;
      offset += group_len_[g];
    }
    group_start_[num_groups_] = offset;
  }

  // Pass 2: stable scatter of ascending row ids into their group runs.
  // Iterating build rows in id order (not partition order) keeps every
  // group's run ascending regardless of partitioning.
  row_ids_ = arena_->AllocateArray<uint32_t>(n);
  {
    uint32_t* fill = arena_->AllocateArray<uint32_t>(num_groups_);
    std::memcpy(fill, group_start_, num_groups_ * sizeof(uint32_t));
    for (size_t i = 0; i < n; ++i) {
      row_ids_[fill[group_of_row_[i]]++] = static_cast<uint32_t>(i);
    }
  }
}

uint32_t GroupedKeyIndex::ProbeGroup(uint64_t hash) const {
  if (num_rows_ == 0) return kNoGroup;
  const Partition& part =
      partitions_[partition_shift_ == 64 ? 0 : hash >> partition_shift_];
  uint32_t idx = static_cast<uint32_t>(hash) & part.slot_mask;
  for (;;) {
    uint32_t slot = part.slot_offset + idx;
    uint32_t g = slot_group_[slot];
    if (g == kEmptySlot) return kNoGroup;
    if (slot_hash_[slot] == hash) return g;
    idx = (idx + 1) & part.slot_mask;
  }
}

GroupedKeyIndex::Candidates GroupedKeyIndex::Probe(uint64_t hash) const {
  uint32_t g = ProbeGroup(hash);
  if (g == kNoGroup) return Candidates{};
  return GroupRows(g);
}

namespace {

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;
  return sum < a ? ~uint64_t{0} : sum;
}

}  // namespace

void KeyedWeightSums::Build(const Relation& rel, const uint32_t* key_cols,
                            size_t num_key_cols, const uint64_t* weights) {
  index_.Build(rel, key_cols, num_key_cols);
  build_base_ = rel.raw().data();
  build_width_ = rel.width();
  key_cols_ = key_cols;
  num_key_cols_ = num_key_cols;
  entries_.clear();
  const size_t n = rel.size();
  if (n == 0) return;
  group_head_ = arena_->AllocateArray<uint32_t>(index_.num_groups());
  std::memset(group_head_, 0xFF, index_.num_groups() * sizeof(uint32_t));
  const uint32_t* group_of_row = index_.group_of_row();
  for (size_t i = 0; i < n; ++i) {
    const Value* row = build_base_ + i * build_width_;
    const uint64_t w = weights == nullptr ? 1 : weights[i];
    uint32_t g = group_of_row[i];
    uint32_t e = group_head_[g];
    while (e != kNone &&
           !RowKeysEqual(row, key_cols_,
                         build_base_ + size_t{entries_[e].rep_row} * build_width_,
                         key_cols_, num_key_cols_)) {
      e = entries_[e].next;
    }
    if (e != kNone) {
      entries_[e].sum = SaturatingAdd(entries_[e].sum, w);
    } else {
      entries_.push_back(Entry{static_cast<uint32_t>(i), group_head_[g], w});
      group_head_[g] = static_cast<uint32_t>(entries_.size() - 1);
    }
  }
}

uint64_t KeyedWeightSums::Lookup(const Value* row, const uint32_t* cols) const {
  if (index_.num_rows() == 0) return 0;
  uint64_t h = HashRowKey(row, cols, num_key_cols_);
  if (!index_.MightContain(h)) return 0;
  uint32_t g = index_.ProbeGroup(h);
  if (g == GroupedKeyIndex::kNoGroup) return 0;
  uint32_t e = group_head_[g];
  while (e != kNone) {
    if (RowKeysEqual(row, cols,
                     build_base_ + size_t{entries_[e].rep_row} * build_width_,
                     key_cols_, num_key_cols_)) {
      return entries_[e].sum;
    }
    e = entries_[e].next;
  }
  return 0;
}

}  // namespace coverpack
