/// \file bench_fig2_box_join.cc
/// \brief Thin wrapper: the experiment body lives in
/// bench/experiments/fig2_box_join.cc and is registered in the experiment
/// registry, so the unified driver (coverpack_bench) and this historical
/// one-display binary share one implementation.

#include "experiments/experiments.h"

int main() { return coverpack::bench::RunExperimentStandalone("fig2_box_join"); }
