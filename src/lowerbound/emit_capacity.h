/// \file emit_capacity.h
/// \brief J(L): how many join results one server can emit from L tuples.
///
/// The heart of the Theorem 6/7 lower bounds: on the hard instances, a
/// server that loads at most L tuples per relation can produce at most
/// ~2 L^{tau*} N^{rho* - tau*} results, no matter which tuples it picks
/// (Lemma 5.1 reduces the choice to Cartesian-shaped loads; Step 2 applies
/// Chernoff over all Cartesian shapes). This module searches the Cartesian
/// load space: it enumerates per-attribute loaded-value counts z_v (powers
/// of two, plus the full domain), prunes shapes whose deterministic
/// relations exceed L, scores shapes by their expected yield, and exactly
/// counts the probabilistic relations' contribution for the top shapes.
/// The counting argument p * J(L) >= OUT then yields L >= N / p^(1/tau*).

#ifndef COVERPACK_LOWERBOUND_EMIT_CAPACITY_H_
#define COVERPACK_LOWERBOUND_EMIT_CAPACITY_H_

#include <cstdint>
#include <vector>

#include "lowerbound/hard_instance.h"
#include "lp/packing_provable.h"
#include "query/hypergraph.h"
#include "util/rational.h"

namespace coverpack {
namespace lowerbound {

/// Result of the emit-capacity search.
struct EmitCapacityResult {
  uint64_t measured = 0;        ///< max exact J over the evaluated shapes
  double expected_best = 0.0;   ///< max expected J over the whole grid
  double predicted_cap = 0.0;   ///< 2 * L^{tau*} * N^{rho* - tau*}
  std::vector<uint64_t> best_shape;  ///< z_v of the best evaluated shape
  uint64_t shapes_searched = 0;
  uint64_t shapes_evaluated_exactly = 0;
};

/// Searches Cartesian load shapes for the maximum number of join results a
/// single server can emit from at most `load` tuples per relation of the
/// hard instance. Applies to any edge-packing-provable degree-two join
/// (the box join included).
EmitCapacityResult SearchEmitCapacity(const Hypergraph& query, const HardInstance& hard,
                                      const PackingProvability& witness, uint64_t load,
                                      size_t exact_top_k = 200);

/// The counting-argument bound: with per-server capacity cap(L) =
/// c * L^{tau*} * N^{rho* - tau*} and OUT = N^{rho*} results to emit,
/// p servers force L >= N / (c * p)^(1/tau*). Returns that load bound.
double CountingArgumentLoadBound(uint64_t n, uint32_t p, const Rational& tau_star,
                                 double capacity_constant = 2.0);

}  // namespace lowerbound
}  // namespace coverpack

#endif  // COVERPACK_LOWERBOUND_EMIT_CAPACITY_H_
