// cplint fixture: ordered iteration patterns that must stay quiet —
// a vector range-for, a classic indexed for over an unordered map's
// size, and lookups without iteration.
#include <unordered_map>
#include <vector>

long Sum(const std::unordered_map<int, long>& counts) {
  std::vector<int> keys;
  for (int key : keys) (void)key;
  for (size_t i = 0; i < keys.size(); ++i) (void)i;
  return static_cast<long>(counts.size());
}
