/// \file load_planner.h
/// \brief Chooses the load threshold L for the generic acyclic algorithm.
///
/// Theorem 2 (conservative run): L = max_{S subset E} (|subjoin(T,R,S)| / p)^(1/|S|).
/// Theorem 4 (worst-case-optimal run): L = max_{S in S(E)} (prod_{e in S} |R(e)| / p)^(1/|S|),
/// which collapses to N / p^(1/rho*) when every relation has at most N
/// tuples (Theorem 5). The benches print both planners' L side by side to
/// regenerate the Example 3.4 gap.

#ifndef COVERPACK_CORE_LOAD_PLANNER_H_
#define COVERPACK_CORE_LOAD_PLANNER_H_

#include <cstdint>

#include "query/hypergraph.h"
#include "query/join_tree.h"
#include "relation/instance.h"

namespace coverpack {

/// Theorem 2's threshold: subjoin-based, maximized over all subsets of E.
uint64_t PlanLoadConservative(const Hypergraph& query, const JoinTree& tree,
                              const Instance& instance, uint32_t p);

/// Theorem 4's threshold: maximized over the family S(E) of Theorem 3.
/// Requires an alpha-acyclic query.
uint64_t PlanLoadOptimal(const Hypergraph& query, const Instance& instance, uint32_t p);

/// Theorem 5's closed form N / p^(1/rho*) (rho* integral for acyclic
/// queries), rounded up. Provided separately so benches can compare the
/// generic planner against the closed form.
uint64_t PlanLoadUniform(const Hypergraph& query, uint64_t n, uint32_t p);

/// ceil((numerator / p)^(1/k)) with saturation-safe arithmetic.
uint64_t RatioRoot(long double numerator, uint32_t p, uint32_t k);

}  // namespace coverpack

#endif  // COVERPACK_CORE_LOAD_PLANNER_H_
