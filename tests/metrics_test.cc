/// MetricsRegistry coverage: counter/gauge semantics, histogram bucket
/// boundaries and structural invariants, scoped timers, deterministic JSON
/// serialization, and — in audit builds — proof that Observe re-verifies
/// the histogram invariants through the auditor counter.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "util/audit.h"

namespace coverpack {
namespace telemetry {
namespace {

TEST(HistogramTest, ObservePlacesSamplesAtInclusiveUpperBounds) {
  Histogram histogram({1.0, 2.0, 4.0});
  // Inclusive upper bounds: v lands in the first bucket with v <= bound.
  histogram.Observe(0.5);  // bucket 0 (<= 1)
  histogram.Observe(1.0);  // bucket 0 (inclusive)
  histogram.Observe(1.5);  // bucket 1
  histogram.Observe(4.0);  // bucket 2 (inclusive)
  histogram.Observe(9.0);  // overflow bucket
  ASSERT_EQ(histogram.counts().size(), 4u);
  EXPECT_EQ(histogram.counts()[0], 2u);
  EXPECT_EQ(histogram.counts()[1], 1u);
  EXPECT_EQ(histogram.counts()[2], 1u);
  EXPECT_EQ(histogram.counts()[3], 1u);
  EXPECT_EQ(histogram.total_count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 16.0);
  histogram.VerifyInvariants("metrics_test");
}

TEST(HistogramTest, EmptyHistogramIsStructurallyValid) {
  Histogram histogram({1.0, 10.0});
  EXPECT_EQ(histogram.total_count(), 0u);
  histogram.VerifyInvariants("metrics_test");
}

TEST(HistogramDeathTest, NonIncreasingBoundsAbort) {
  EXPECT_DEATH(Histogram({1.0, 1.0}), "");
  EXPECT_DEATH(Histogram({2.0, 1.0}), "");
}

TEST(MetricsRegistryTest, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("absent"), 0u);
  registry.AddCounter("events");
  registry.AddCounter("events", 4);
  EXPECT_EQ(registry.CounterValue("events"), 5u);
}

TEST(MetricsRegistryTest, GaugesOverwrite) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.GaugeValue("absent"), 0.0);
  registry.SetGauge("ratio", 2.0);
  registry.SetGauge("ratio", 0.25);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("ratio"), 0.25);
}

TEST(MetricsRegistryTest, GetHistogramCreatesOnceAndReuses) {
  MetricsRegistry registry;
  const std::vector<double> bounds{1.0, 2.0};
  Histogram& first = registry.GetHistogram("skew", bounds);
  first.Observe(1.5);
  Histogram& again = registry.GetHistogram("skew", bounds);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.total_count(), 1u);
  ASSERT_NE(registry.FindHistogram("skew"), nullptr);
  EXPECT_EQ(registry.FindHistogram("absent"), nullptr);
}

TEST(MetricsRegistryDeathTest, GetHistogramRejectsChangedBounds) {
  MetricsRegistry registry;
  registry.GetHistogram("skew", {1.0, 2.0});
  EXPECT_DEATH(registry.GetHistogram("skew", {1.0, 3.0}), "");
}

TEST(MetricsRegistryTest, TimersAggregateSamples) {
  MetricsRegistry registry;
  registry.RecordTimeMs("step", 4.0);
  registry.RecordTimeMs("step", 2.0);
  registry.RecordTimeMs("step", 6.0);
  const TimerStat* stat = registry.FindTimer("step");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 3u);
  EXPECT_DOUBLE_EQ(stat->total_ms, 12.0);
  EXPECT_DOUBLE_EQ(stat->min_ms, 2.0);
  EXPECT_DOUBLE_EQ(stat->max_ms, 6.0);
  EXPECT_EQ(registry.FindTimer("absent"), nullptr);
}

TEST(MetricsRegistryTest, ScopedTimerRecordsOnDestruction) {
  MetricsRegistry registry;
  {
    MetricsRegistry::ScopedTimer timer(&registry, "scope");
    EXPECT_GE(timer.ElapsedMs(), 0.0);
    EXPECT_EQ(registry.FindTimer("scope"), nullptr);  // not yet recorded
  }
  const TimerStat* stat = registry.FindTimer("scope");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 1u);
  EXPECT_GE(stat->total_ms, 0.0);
}

TEST(MetricsRegistryTest, EmptyReflectsContents) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.AddCounter("one");
  EXPECT_FALSE(registry.empty());
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAndSorted) {
  MetricsRegistry registry;
  registry.AddCounter("zeta", 1);
  registry.AddCounter("alpha", 2);
  registry.SetGauge("g", 1.5);
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  registry.RecordTimeMs("t", 3.0);
  std::string first = registry.ToJson().ToString(0);
  std::string second = registry.ToJson().ToString(0);
  EXPECT_EQ(first, second);
  // map storage => counters serialize in sorted key order.
  EXPECT_LT(first.find("\"alpha\""), first.find("\"zeta\""));
  EXPECT_NE(first.find("\"counters\""), std::string::npos);
  EXPECT_NE(first.find("\"gauges\""), std::string::npos);
  EXPECT_NE(first.find("\"histograms\""), std::string::npos);
  EXPECT_NE(first.find("\"timers\""), std::string::npos);
}

TEST(MetricsRegistryAuditTest, ObserveFiresAuditorChecksWhenCompiledIn) {
  if (!audit::SimulatorAuditor::kCompiledIn) {
    GTEST_SKIP() << "COVERPACK_AUDIT is off in this build";
  }
  audit::SimulatorAuditor::ResetStats();
  MetricsRegistry registry;
  registry.GetHistogram("audited", {1.0, 2.0}).Observe(1.5);
  registry.AddCounter("audited_counter");
  // Observe re-verifies histogram invariants and AddCounter audits
  // monotonicity; both go through the global auditor counter.
  EXPECT_GT(audit::SimulatorAuditor::checks_performed(), 0u);
}

}  // namespace
}  // namespace telemetry
}  // namespace coverpack
