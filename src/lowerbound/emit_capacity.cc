#include "lowerbound/emit_capacity.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/logging.h"

namespace coverpack {
namespace lowerbound {

namespace {

/// One candidate Cartesian load shape with its expected yield.
struct Shape {
  std::vector<uint64_t> z;  ///< loaded distinct values per attribute
  double expected;          ///< expected join results from this shape
};

/// Candidate per-attribute load counts: powers of two up to the domain,
/// plus the domain size itself.
std::vector<uint64_t> CandidateCounts(uint64_t domain) {
  std::vector<uint64_t> counts;
  for (uint64_t z = 1; z < domain; z *= 2) counts.push_back(z);
  counts.push_back(domain);
  return counts;
}

/// Expected number of tuples of a probabilistic relation inside the box
/// prod_{v in e} [0, z_v): volume * N / prod dom(v).
double ExpectedInBox(const Hypergraph& query, const HardInstance& hard, EdgeId e,
                     const std::vector<uint64_t>& z) {
  double volume = 1.0;
  double domain = 1.0;
  for (AttrId v : query.edge(e).attrs.ToVector()) {
    volume *= static_cast<double>(z[v]);
    domain *= static_cast<double>(hard.domain_sizes[v]);
  }
  return volume * static_cast<double>(hard.n) / domain;
}

/// Exact number of tuples of relation e inside the box, capped at `load`.
uint64_t ExactInBox(const Hypergraph& query, const HardInstance& hard, EdgeId e,
                    const std::vector<uint64_t>& z, uint64_t load) {
  const Relation& relation = hard.instance[e];
  std::vector<AttrId> attrs = query.edge(e).attrs.ToVector();
  uint64_t count = 0;
  for (size_t i = 0; i < relation.size(); ++i) {
    auto row = relation.row(i);
    bool inside = true;
    for (size_t c = 0; c < attrs.size(); ++c) {
      if (row[c] >= z[attrs[c]]) {
        inside = false;
        break;
      }
    }
    if (inside && ++count >= load) break;
  }
  return std::min(count, load);
}

}  // namespace

EmitCapacityResult SearchEmitCapacity(const Hypergraph& query, const HardInstance& hard,
                                      const PackingProvability& witness, uint64_t load,
                                      size_t exact_top_k) {
  CP_CHECK(witness.provable);
  EmitCapacityResult result;
  result.predicted_cap =
      2.0 * std::pow(static_cast<double>(load), witness.tau_star.ToDouble()) *
      std::pow(static_cast<double>(hard.n),
               witness.rho_star.ToDouble() - witness.tau_star.ToDouble());

  EdgeSet probabilistic;
  for (EdgeId e : witness.probabilistic) probabilistic.Insert(e);
  // Attributes covered by some probabilistic edge (their combinations are
  // filtered by membership); the rest contribute their full product.
  AttrSet prob_attrs;
  for (EdgeId e : probabilistic.ToVector()) {
    prob_attrs = prob_attrs.Union(query.edge(e).attrs);
  }

  std::vector<AttrId> attrs = query.AllAttrs().ToVector();
  std::vector<std::vector<uint64_t>> candidates;
  candidates.reserve(attrs.size());
  for (AttrId v : attrs) candidates.push_back(CandidateCounts(hard.domain_sizes[v]));

  // Deterministic load constraints: prod_{v in e} z_v <= load.
  std::vector<AttrSet> deterministic_edges;
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (!probabilistic.Contains(e)) deterministic_edges.push_back(query.edge(e).attrs);
  }

  std::vector<Shape> top;
  std::vector<uint64_t> z(query.num_attrs(), 1);

  // Depth-first enumeration with per-edge product pruning.
  auto feasible_so_far = [&](size_t bound_upto) {
    AttrSet bound;
    for (size_t i = 0; i < bound_upto; ++i) bound.Insert(attrs[i]);
    for (AttrSet edge : deterministic_edges) {
      double product = 1.0;
      for (AttrId v : edge.Intersect(bound).ToVector()) {
        product *= static_cast<double>(z[v]);
      }
      if (product > static_cast<double>(load)) return false;
    }
    return true;
  };

  std::function<void(size_t)> enumerate = [&](size_t depth) {
    if (!feasible_so_far(depth)) return;
    if (depth == attrs.size()) {
      ++result.shapes_searched;
      double expected = 1.0;
      for (AttrId v : attrs) {
        if (!prob_attrs.Contains(v)) expected *= static_cast<double>(z[v]);
      }
      for (EdgeId e : probabilistic.ToVector()) {
        expected *= std::min(static_cast<double>(load), ExpectedInBox(query, hard, e, z));
      }
      // Probabilistic edges are vertex-disjoint, so combinations over their
      // attributes are exactly their in-box tuples (multiplied above);
      // every other attribute contributes its loaded-value count.
      result.expected_best = std::max(result.expected_best, expected);
      top.push_back(Shape{z, expected});
      std::push_heap(top.begin(), top.end(),
                     [](const Shape& a, const Shape& b) { return a.expected > b.expected; });
      if (top.size() > exact_top_k) {
        std::pop_heap(top.begin(), top.end(),
                      [](const Shape& a, const Shape& b) { return a.expected > b.expected; });
        top.pop_back();
      }
      return;
    }
    for (uint64_t candidate : candidates[depth]) {
      z[attrs[depth]] = candidate;
      enumerate(depth + 1);
    }
    z[attrs[depth]] = 1;
  };
  enumerate(0);

  // Exact evaluation of the best shapes.
  for (const Shape& shape : top) {
    ++result.shapes_evaluated_exactly;
    uint64_t exact = 1;
    bool overflow = false;
    for (AttrId v : attrs) {
      if (!prob_attrs.Contains(v)) {
        if (shape.z[v] != 0 && exact > UINT64_MAX / shape.z[v]) {
          overflow = true;
          break;
        }
        exact *= shape.z[v];
      }
    }
    if (overflow) continue;
    for (EdgeId e : probabilistic.ToVector()) {
      uint64_t in_box = ExactInBox(query, hard, e, shape.z, load);
      if (in_box != 0 && exact > UINT64_MAX / in_box) {
        overflow = true;
        break;
      }
      exact *= in_box;
    }
    if (overflow) continue;
    if (exact > result.measured) {
      result.measured = exact;
      result.best_shape = shape.z;
    }
  }
  return result;
}

double CountingArgumentLoadBound(uint64_t n, uint32_t p, const Rational& tau_star,
                                 double capacity_constant) {
  double tau = tau_star.ToDouble();
  return static_cast<double>(n) /
         std::pow(capacity_constant * static_cast<double>(p), 1.0 / tau);
}

}  // namespace lowerbound
}  // namespace coverpack
