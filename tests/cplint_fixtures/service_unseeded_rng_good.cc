// cplint fixture: every client-sim draw derives from the experiment seed
// split per client, matching the service's replayable arrival streams.
#include <cstdint>
#include <random>

uint64_t SplitClientSeed(uint64_t base_seed, uint32_t client);

unsigned NextInterarrival(uint64_t base_seed, uint32_t client) {
  std::mt19937_64 gen(SplitClientSeed(base_seed, client));
  return static_cast<unsigned>(gen());
}
