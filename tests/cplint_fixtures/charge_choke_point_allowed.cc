// cplint fixture: a suppressed out-of-line charge.
void Leak(LoadTracker& tracker, uint32_t round, uint32_t server, uint64_t n) {
  // cplint: allow(charge-choke-point)
  tracker.Add(round, server, n);
}
