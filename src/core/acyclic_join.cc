#include "core/acyclic_join.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "core/load_planner.h"
#include "mpc/cluster.h"
#include "mpc/exchange.h"
#include "mpc/primitives.h"
#include "query/decomposition.h"
#include "query/join_tree.h"
#include "relation/operators.h"
#include "relation/oracle.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace coverpack {

namespace {

/// Hard cap on servers a recursion level may allocate; hitting it means L
/// was chosen absurdly small for the instance.
constexpr uint64_t kMaxServers = uint64_t{1} << 24;

/// Result of one recursive invocation: the subquery's results (collect
/// mode) plus its own cluster whose tracker the parent merges.
struct SubRun {
  Relation results;
  std::unique_ptr<Cluster> cluster;
  uint32_t rounds = 0;
};

/// The recursive engine. One instance per ComputeAcyclicJoin call.
///
/// Subqueries (heavy values, light groups, Cartesian components) run in
/// parallel on the global pool. Every parallel child gets a private trace
/// buffer and a private cluster; the parent splices/merges them in child
/// index order, so traces, trackers, and results are byte-identical to the
/// serial execution at any thread count.
class Engine {
 public:
  Engine(RunPolicy policy, bool collect, uint64_t load_threshold)
      : policy_(policy), collect_(collect), load_(load_threshold) {
    CP_CHECK_GE(load_, 1u);
  }

  /// \param trace the sink this subtree's events go to (nullptr = tracing
  /// off). Passed explicitly — not a member — so concurrent subtrees can
  /// record into disjoint buffers.
  SubRun Run(Hypergraph query, Instance instance, bool charge_input, int depth,
             std::vector<TraceEvent>* trace);

 private:
  SubRun CaseOne(const Hypergraph& query, const Instance& instance, const JoinTree& tree,
                 uint32_t stats_rounds, int depth, std::vector<TraceEvent>* trace);
  SubRun CaseTwo(const Hypergraph& query, const Instance& instance,
                 const std::vector<EdgeSet>& components, uint32_t stats_rounds, int depth,
                 std::vector<TraceEvent>* trace);

  static void Record(TraceEvent event, std::vector<TraceEvent>* trace) {
    if (trace != nullptr) trace->push_back(std::move(event));
  }

  RunPolicy policy_;
  bool collect_;
  uint64_t load_;
};

/// One parallel subquery's outcome: filled in by a pool task, consumed by
/// the parent in child index order.
struct ChildSlot {
  bool viable = false;
  SubRun child;
  Relation result;  // collect-mode contribution (already re-joined/attached)
  bool has_result = false;
  std::vector<TraceEvent> trace;
};

/// Applies the reduce step: full semi-join reduction plus removal of
/// subsumed relations (tracked as formula charges by the caller). Returns
/// the reduced (query, instance) pair.
std::pair<Hypergraph, Instance> ReduceStep(const Hypergraph& query, const JoinTree& tree,
                                           const Instance& instance) {
  Instance reduced = SemiJoinReduce(query, tree, instance);
  // Drop relations contained in other relations, after filtering the
  // container by a semi-join (Section 3.1 Case I).
  EdgeSet kept = query.AllEdges();
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId small : kept.ToVector()) {
      for (EdgeId big : kept.ToVector()) {
        if (small == big) continue;
        if (query.edge(small).attrs.IsSubsetOf(query.edge(big).attrs)) {
          reduced[big] = SemiJoin(reduced[big], reduced[small]);
          kept.Remove(small);
          changed = true;
          break;
        }
      }
      if (changed) break;
    }
  }
  Hypergraph new_query = query.InducedByEdges(kept);
  Instance new_instance(new_query);
  std::vector<EdgeId> kept_ids = kept.ToVector();
  for (size_t i = 0; i < kept_ids.size(); ++i) {
    new_instance[static_cast<EdgeId>(i)] = std::move(reduced[kept_ids[i]]);
  }
  return {std::move(new_query), std::move(new_instance)};
}

/// Charges ceil(size/p) per relation to every server: the receive cost of
/// distributing a fresh subinstance round-robin over a child group. One
/// Exchange accumulating the per-relation linear charges.
void ChargeInputScatter(Cluster* cluster, const Instance& instance, uint32_t round) {
  mpc::ExchangePlan plan(cluster->p());
  for (size_t e = 0; e < instance.num_relations(); ++e) {
    plan.PlanLinear(instance[e].size());
  }
  if (plan.total_planned() == 0) return;
  mpc::Exchange::Execute(cluster, round, plan, "input_scatter");
}

SubRun MakeEmptyRun(AttrSet schema) {
  SubRun run;
  run.results = Relation(schema);
  run.cluster = std::make_unique<Cluster>(1);
  run.rounds = 0;
  return run;
}

}  // namespace

uint64_t TheoreticalServerDemand(const Hypergraph& query, const Instance& instance,
                                 uint64_t load_threshold, RunPolicy policy) {
  auto tree = JoinTree::Build(query);
  CP_CHECK(tree.has_value());
  long double best = 1.0L;
  long double load = static_cast<long double>(load_threshold);
  // Enough servers to hold every relation at load L.
  for (size_t e = 0; e < instance.num_relations(); ++e) {
    best = std::max(best, static_cast<long double>(instance[e].size()) / load);
  }
  if (policy == RunPolicy::kConservative) {
    for (SubsetIterator it(query.AllEdges()); !it.Done(); it.Next()) {
      EdgeSet s = it.Current();
      if (s.empty()) continue;
      long double subjoin =
          static_cast<long double>(SubjoinSize(query, *tree, instance, s));
      long double psi = subjoin / std::pow(load, static_cast<long double>(s.size()));
      best = std::max(best, psi);
    }
  } else {
    for (EdgeSet s : SFamily(query)) {
      if (s.empty()) continue;
      long double product = 1.0L;
      for (EdgeId e : s.ToVector()) product *= static_cast<long double>(instance[e].size());
      long double psi = product / std::pow(load, static_cast<long double>(s.size()));
      best = std::max(best, psi);
    }
  }
  uint64_t demand = static_cast<uint64_t>(std::ceil(best));
  return std::max<uint64_t>(1, demand);
}

namespace {

SubRun Engine::Run(Hypergraph query, Instance instance, bool charge_input, int depth,
                   std::vector<TraceEvent>* trace) {
  CP_CHECK_LT(depth, 128) << "recursion failed to terminate";
  instance.CheckAgainst(query);

  // Empty relations mean an empty join.
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (instance[e].empty()) return MakeEmptyRun(query.AllAttrs());
  }

  auto tree = JoinTree::Build(query);
  CP_CHECK(tree.has_value()) << "query must stay acyclic: " << query.ToString();

  // Reduce (semi-join reduction + subsumed-edge removal). Charged as a
  // constant number of O(N/p) rounds below, once the cluster exists.
  auto [reduced_query, reduced_instance] = ReduceStep(query, *tree, instance);
  query = std::move(reduced_query);
  instance = std::move(reduced_instance);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (instance[e].empty()) return MakeEmptyRun(query.AllAttrs());
  }
  tree = JoinTree::Build(query);
  CP_CHECK(tree.has_value());

  uint32_t stats_rounds = charge_input ? 1 : 0;  // round 0: input scatter
  uint32_t reduce_rounds = 2;                    // semi-join reduction passes
  stats_rounds += reduce_rounds;

  // Base case: a single relation; emit directly.
  if (query.num_edges() == 1) {
    TraceEvent event;
    event.depth = depth;
    event.kind = TraceEvent::kBaseCase;
    event.query = query.ToString();
    event.input_tuples = instance.TotalSize();
    Record(std::move(event), trace);
    uint64_t servers = std::max<uint64_t>(1, CeilDiv(instance[0].size(), load_));
    SubRun run;
    run.cluster = std::make_unique<Cluster>(static_cast<uint32_t>(servers));
    if (charge_input) ChargeInputScatter(run.cluster.get(), instance, 0);
    mpc::ChargeLinear(run.cluster.get(), instance[0].size(), charge_input ? 1 : 0);
    run.rounds = stats_rounds;
    if (collect_) run.results = instance[0];
    return run;
  }

  std::vector<EdgeSet> components = tree->Components();
  if (components.size() > 1) {
    TraceEvent event;
    event.depth = depth;
    event.kind = TraceEvent::kCaseTwo;
    event.query = query.ToString();
    event.components = static_cast<uint32_t>(components.size());
    event.input_tuples = instance.TotalSize();
    Record(std::move(event), trace);
    SubRun run = CaseTwo(query, instance, components, stats_rounds, depth, trace);
    if (charge_input) ChargeInputScatter(run.cluster.get(), instance, 0);
    mpc::ChargeLinear(run.cluster.get(), instance.TotalSize(), charge_input ? 1 : 0);
    return run;
  }

  // Case I. The cluster is created inside (its size depends on the
  // children); stats charges are applied there.
  SubRun run = CaseOne(query, instance, *tree, stats_rounds, depth, trace);
  if (charge_input) ChargeInputScatter(run.cluster.get(), instance, 0);
  return run;
}

SubRun Engine::CaseOne(const Hypergraph& query, const Instance& instance, const JoinTree& tree,
                       uint32_t stats_rounds, int depth, std::vector<TraceEvent>* trace) {
  // ---- Choose the leaf e1, its parent e0, the attribute x, and S^x. ----
  uint32_t e1 = JoinTree::kNoParent;
  for (uint32_t node = 0; node < tree.num_nodes(); ++node) {
    if (tree.IsLeaf(node) && tree.parent(node) != JoinTree::kNoParent) {
      e1 = node;
      break;
    }
  }
  CP_CHECK(e1 != JoinTree::kNoParent) << "connected tree with >= 2 nodes has a leaf";
  uint32_t e0 = tree.parent(e1);
  AttrSet shared = query.edge(e1).attrs.Intersect(query.edge(e0).attrs);
  CP_CHECK(!shared.empty()) << "tree edge without shared attribute";
  AttrId x = shared.First();

  EdgeSet sx;
  if (policy_ == RunPolicy::kOptimal) {
    sx = query.EdgesContaining(x);  // E_x: the aggressive choice
  } else {
    sx = EdgeSet::Single(e1);  // the conservative choice of Section 3.2
  }
  CP_CHECK(sx.Contains(e1));

  // ---- Step 1: degree statistics over x in the relations of S^x. ----
  // Heavy: degree > L in at least one relation of S^x. DegreeHistogram
  // returns value-sorted runs, so the per-value max/total over S^x is a
  // sort + run-length merge — no hash maps, and heavy/light come out
  // value-sorted for free. `weights[i]` is the total degree of light[i]
  // (the packing weight).
  uint64_t sx_total_size = 0;
  std::vector<std::pair<Value, uint64_t>> degree_pairs;
  for (EdgeId e : sx.ToVector()) {
    sx_total_size += instance[e].size();
    auto histogram = DegreeHistogram(instance[e], x);
    degree_pairs.insert(degree_pairs.end(), histogram.begin(), histogram.end());
  }
  std::sort(degree_pairs.begin(), degree_pairs.end());
  std::vector<Value> heavy;
  std::vector<Value> light;
  std::vector<uint64_t> weights;  // total degree per light value
  for (size_t i = 0; i < degree_pairs.size();) {
    const Value value = degree_pairs[i].first;
    uint64_t max_degree = 0;
    uint64_t total_degree = 0;
    size_t run = i;
    while (run < degree_pairs.size() && degree_pairs[run].first == value) {
      max_degree = std::max(max_degree, degree_pairs[run].second);
      total_degree += degree_pairs[run].second;
      ++run;
    }
    if (max_degree > load_) {
      heavy.push_back(value);
    } else {
      light.push_back(value);
      weights.push_back(total_degree);
    }
    i = run;
  }

  // Light groups via parallel-packing on total degree, capacity |S^x| * L.
  uint64_t capacity = std::max<uint64_t>(1, static_cast<uint64_t>(sx.size()) * load_);
  // First-fit packing (the ParallelPack primitive, charged after the
  // cluster exists).
  std::vector<uint32_t> bin_of(light.size(), 0);
  uint32_t num_groups = 0;
  {
    std::vector<size_t> order(light.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return weights[a] > weights[b]; });
    std::vector<uint64_t> bin_load;
    for (size_t i : order) {
      bool placed = false;
      for (size_t b = 0; b < bin_load.size(); ++b) {
        if (bin_load[b] < capacity && bin_load[b] + weights[i] <= 2 * capacity) {
          bin_load[b] += weights[i];
          bin_of[i] = static_cast<uint32_t>(b);
          placed = true;
          break;
        }
      }
      if (!placed) {
        bin_load.push_back(weights[i]);
        bin_of[i] = static_cast<uint32_t>(bin_load.size() - 1);
      }
    }
    num_groups = static_cast<uint32_t>(bin_load.size());
  }
  stats_rounds += 3;  // two reduce-by-key rounds + one packing round

  {
    TraceEvent event;
    event.depth = depth;
    event.kind = TraceEvent::kCaseOne;
    event.query = query.ToString();
    event.attribute = query.attr_name(x);
    for (EdgeId e : sx.ToVector()) {
      if (!event.choice_set.empty()) event.choice_set += ",";
      event.choice_set += query.edge(e).name;
    }
    event.heavy_values = static_cast<uint32_t>(heavy.size());
    event.light_groups = num_groups;
    event.input_tuples = instance.TotalSize();
    Record(std::move(event), trace);
  }

  // ---- Step 2 + 3: build and run the subqueries. ----
  // Every heavy value and every light group is an independent subquery:
  // they run as pool tasks filling per-index slots, and the slots are
  // harvested in index order below so children/results/traces keep the
  // serial order. Recursive Runs inside the tasks may themselves fan out
  // (nested ParallelFor) — the pool is re-entrant.
  ThreadPool& pool = ThreadPool::Global();
  std::vector<TraceEvent>* const parent_trace = trace;

  // Heavy assignments -> residual query Q_x.
  Hypergraph query_x = query.Residual(AttrSet::Single(x));
  std::vector<ChildSlot> heavy_slots(heavy.size());
  pool.ParallelFor(0, heavy.size(), 1, [&](size_t hi) {
    Value a = heavy[hi];
    ChildSlot& slot = heavy_slots[hi];
    Instance instance_a(query_x);
    for (uint32_t e = 0; e < query_x.num_edges(); ++e) {
      EdgeId original = *query_x.SameNamedEdgeIn(query, e);
      const Relation& source = instance[original];
      if (source.attrs().Contains(x)) {
        Relation selected = Select(source, x, a);
        if (selected.empty()) return;  // not viable
        instance_a[e] = DropColumn(selected, x);
      } else {
        instance_a[e] = source;
      }
    }
    slot.child = Run(query_x, std::move(instance_a), /*charge_input=*/true, depth + 1,
                     parent_trace != nullptr ? &slot.trace : nullptr);
    slot.viable = true;
    if (collect_ && !slot.child.results.empty()) {
      slot.result = AttachConstant(slot.child.results, x, a);
      slot.has_result = true;
    }
  });

  // Light groups -> residual query Q_y = E - S^x plus a broadcast of the
  // group's S^x tuples.
  EdgeSet rest = query.AllEdges().Minus(sx);
  Hypergraph query_y = query.InducedByEdges(rest);
  std::vector<ChildSlot> light_slots(num_groups);
  pool.ParallelFor(0, num_groups, 1, [&](size_t gi) {
    uint32_t g = static_cast<uint32_t>(gi);
    ChildSlot& slot = light_slots[gi];
    std::vector<Value> group_values;
    for (size_t i = 0; i < light.size(); ++i) {
      if (bin_of[i] == g) group_values.push_back(light[i]);
    }
    std::sort(group_values.begin(), group_values.end());

    std::vector<Relation> broadcast;
    uint64_t broadcast_size = 0;
    for (EdgeId e : sx.ToVector()) {
      Relation part = SelectIn(instance[e], x, group_values);
      if (part.empty()) return;  // not viable
      broadcast_size += part.size();
      broadcast.push_back(std::move(part));
    }

    if (rest.empty()) {
      // Nothing left to recurse on: a single server joins the broadcast.
      slot.child.cluster = std::make_unique<Cluster>(1);
      mpc::ChargeBroadcast(slot.child.cluster.get(), broadcast_size, 0);
      slot.child.rounds = 1;
      slot.viable = true;
      if (collect_) {
        std::vector<const Relation*> parts;
        for (const Relation& b : broadcast) parts.push_back(&b);
        Relation joined = MultiwayJoin(parts);
        if (!joined.empty()) {
          slot.result = std::move(joined);
          slot.has_result = true;
        }
      }
      return;
    }

    Instance instance_g(query_y);
    for (uint32_t e = 0; e < query_y.num_edges(); ++e) {
      EdgeId original = *query_y.SameNamedEdgeIn(query, e);
      const Relation& source = instance[original];
      if (source.attrs().Contains(x)) {
        instance_g[e] = SelectIn(source, x, group_values);
      } else {
        instance_g[e] = source;
      }
    }
    slot.child = Run(query_y, std::move(instance_g), /*charge_input=*/true, depth + 1,
                     parent_trace != nullptr ? &slot.trace : nullptr);
    // The group's S^x tuples are broadcast to every server of the group.
    mpc::ChargeBroadcast(slot.child.cluster.get(), broadcast_size, 0);
    slot.viable = true;
    if (collect_ && !slot.child.results.empty()) {
      std::vector<const Relation*> parts{&slot.child.results};
      for (const Relation& b : broadcast) parts.push_back(&b);
      Relation joined = MultiwayJoin(parts);
      if (!joined.empty()) {
        slot.result = std::move(joined);
        slot.has_result = true;
      }
    }
  });

  // Harvest in index order (heavy values first, then light groups), which
  // is exactly the serial iteration order.
  std::vector<SubRun> children;
  std::vector<Relation> child_results;
  auto harvest = [&](std::vector<ChildSlot>& slots) {
    for (ChildSlot& slot : slots) {
      if (!slot.viable) continue;
      if (parent_trace != nullptr) {
        for (TraceEvent& event : slot.trace) parent_trace->push_back(std::move(event));
      }
      if (slot.has_result) child_results.push_back(std::move(slot.result));
      children.push_back(std::move(slot.child));
    }
  };
  harvest(heavy_slots);
  harvest(light_slots);

  // ---- Assemble the parent cluster. ----
  uint64_t total_servers = 0;
  for (const SubRun& child : children) total_servers += child.cluster->p();
  total_servers = std::max<uint64_t>(total_servers, CeilDiv(instance.TotalSize(), load_));
  total_servers = std::max<uint64_t>(total_servers, 1);
  CP_CHECK_LE(total_servers, kMaxServers);

  SubRun run;
  run.cluster = std::make_unique<Cluster>(static_cast<uint32_t>(total_servers));
  // Formula charges for the reduce + statistics + packing rounds.
  for (uint32_t r = 0; r + 1 < stats_rounds; ++r) {
    mpc::ChargeLinear(run.cluster.get(), instance.TotalSize(), r + 1);
  }
  uint32_t server_offset = 0;
  uint32_t max_child_rounds = 0;
  for (SubRun& child : children) {
    run.cluster->tracker().Merge(child.cluster->tracker(), server_offset, stats_rounds);
    server_offset += child.cluster->p();
    max_child_rounds = std::max(max_child_rounds, child.rounds);
  }
  run.rounds = stats_rounds + max_child_rounds;

  if (collect_) {
    run.results = Relation(query.AllAttrs());
    for (const Relation& part : child_results) {
      CP_CHECK(part.attrs() == run.results.attrs());
      run.results.AppendAll(part);
    }
  }
  return run;
}

SubRun Engine::CaseTwo(const Hypergraph& query, const Instance& instance,
                       const std::vector<EdgeSet>& components, uint32_t stats_rounds,
                       int depth, std::vector<TraceEvent>* trace) {
  // Run every component once (in parallel — components are independent);
  // replicate its loads across the grid. Traces splice in component order.
  std::vector<SubRun> children(components.size());
  std::vector<std::vector<TraceEvent>> child_traces(components.size());
  ThreadPool::Global().ParallelFor(0, components.size(), 1, [&](size_t c) {
    EdgeSet component = components[c];
    Hypergraph sub_query = query.InducedByEdges(component);
    Instance sub_instance(sub_query);
    std::vector<EdgeId> members = component.ToVector();
    for (size_t i = 0; i < members.size(); ++i) {
      sub_instance[static_cast<EdgeId>(i)] = instance[members[i]];
    }
    children[c] = Run(sub_query, std::move(sub_instance), /*charge_input=*/true, depth + 1,
                      trace != nullptr ? &child_traces[c] : nullptr);
  });
  if (trace != nullptr) {
    for (std::vector<TraceEvent>& child_trace : child_traces) {
      for (TraceEvent& event : child_trace) trace->push_back(std::move(event));
    }
  }

  uint64_t grid = 1;
  for (const SubRun& child : children) {
    grid *= child.cluster->p();
    CP_CHECK_LE(grid, kMaxServers) << "Cartesian grid too large";
  }

  SubRun run;
  run.cluster = std::make_unique<Cluster>(static_cast<uint32_t>(grid));
  uint64_t stride = 1;
  uint32_t max_child_rounds = 0;
  for (const SubRun& child : children) {
    uint32_t extent = child.cluster->p();
    uint64_t local_stride = stride;
    run.cluster->tracker().MergeMapped(
        child.cluster->tracker(), stats_rounds,
        [local_stride, extent](uint32_t s) {
          return static_cast<uint32_t>((s / local_stride) % extent);
        });
    stride *= extent;
    max_child_rounds = std::max(max_child_rounds, child.rounds);
  }
  run.rounds = stats_rounds + max_child_rounds;

  if (collect_) {
    std::vector<const Relation*> parts;
    for (const SubRun& child : children) parts.push_back(&child.results);
    run.results = MultiwayJoin(parts);
  }
  return run;
}

}  // namespace

AcyclicRunResult ComputeAcyclicJoin(const Hypergraph& query, const Instance& instance,
                                    const AcyclicRunOptions& options) {
  instance.CheckAgainst(query);
  auto tree = JoinTree::Build(query);
  CP_CHECK(tree.has_value()) << "ComputeAcyclicJoin requires an alpha-acyclic query";

  uint64_t load = options.load_threshold;
  if (load == 0) {
    load = options.policy == RunPolicy::kConservative
               ? PlanLoadConservative(query, *tree, instance, options.p)
               : PlanLoadOptimal(query, instance, options.p);
  }

  AcyclicRunResult result;
  Engine engine(options.policy, options.collect, load);
  SubRun run = engine.Run(query, instance, /*charge_input=*/false, 0,
                          options.trace ? &result.trace : nullptr);

  result.max_load = run.cluster->tracker().MaxLoad();
  result.rounds = run.rounds;
  result.servers_used = run.cluster->p();
  result.total_communication = run.cluster->tracker().TotalCommunication();
  result.load_threshold = load;
  result.load_tracker = run.cluster->tracker();
  if (options.collect) {
    result.results = std::move(run.results);
    result.output_count = result.results.size();
  }
  return result;
}

std::string TraceToString(const std::vector<TraceEvent>& trace) {
  std::string out;
  for (const TraceEvent& event : trace) {
    out.append(static_cast<size_t>(event.depth) * 2, ' ');
    switch (event.kind) {
      case TraceEvent::kBaseCase:
        out += "emit " + event.query;
        break;
      case TraceEvent::kCaseOne:
        out += "case-I on x=" + event.attribute + " S^x={" + event.choice_set + "} (" +
               std::to_string(event.heavy_values) + " heavy, " +
               std::to_string(event.light_groups) + " light groups): " + event.query;
        break;
      case TraceEvent::kCaseTwo:
        out += "case-II cartesian over " + std::to_string(event.components) +
               " components: " + event.query;
        break;
    }
    out += " [" + std::to_string(event.input_tuples) + " tuples]\n";
  }
  return out;
}

}  // namespace coverpack
