// cplint fixture: mutex-guarded state carrying the CP_ annotations.
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Ledger {
 public:
  void Bump() {
    MutexLock lock(mutex_);
    ++count_;
  }

 private:
  Mutex mutex_;
  long count_ CP_GUARDED_BY(mutex_) = 0;
};
