/// \file json_writer.h
/// \brief Dependency-free minimal JSON document builder and serializer.
///
/// The telemetry subsystem emits machine-readable run reports
/// (BENCH_results.json) without taking on a third-party JSON dependency:
/// the container images this repo builds in carry only gtest/benchmark.
/// JsonValue is a small ordered document tree — enough to build objects,
/// arrays, and scalars and serialize them as standards-compliant JSON.
///
/// Serialization guarantees (unit-tested in tests/json_writer_test.cc):
///  * strings are escaped per RFC 8259 (quote, backslash, \b \f \n \r \t,
///    other control characters as \u00XX);
///  * non-finite doubles (NaN, +/-inf) render as `null` — JSON has no
///    representation for them and emitting them raw would corrupt the file;
///  * object keys keep insertion order, so diffs of BENCH_results.json are
///    stable across runs;
///  * integers round-trip exactly (no double conversion for int64/uint64).

#ifndef COVERPACK_TELEMETRY_JSON_WRITER_H_
#define COVERPACK_TELEMETRY_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace coverpack {
namespace telemetry {

/// An ordered JSON document node: null, bool, int64, uint64, double,
/// string, array, or object.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  /// Default-constructs null.
  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Int(int64_t value);
  static JsonValue Uint(uint64_t value);
  static JsonValue Double(double value);
  static JsonValue Str(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Appends an element; the value must be an array.
  void Append(JsonValue element);

  /// Sets `key` on an object (insertion order preserved; setting an
  /// existing key overwrites in place). The value must be an object.
  void Set(const std::string& key, JsonValue value);

  // Scalar-friendly Set overloads so call sites stay terse.
  void Set(const std::string& key, bool value) { Set(key, Bool(value)); }
  void Set(const std::string& key, int64_t value) { Set(key, Int(value)); }
  void Set(const std::string& key, uint64_t value) { Set(key, Uint(value)); }
  void Set(const std::string& key, uint32_t value) { Set(key, Uint(value)); }
  void Set(const std::string& key, int value) { Set(key, Int(int64_t{value})); }
  void Set(const std::string& key, double value) { Set(key, Double(value)); }
  void Set(const std::string& key, const char* value) { Set(key, Str(value)); }
  void Set(const std::string& key, const std::string& value) { Set(key, Str(value)); }

  size_t size() const;

  /// Serializes to `out`. `indent` > 0 pretty-prints with that many spaces
  /// per nesting level; `indent` == 0 emits the compact one-line form.
  void Write(std::ostream& out, int indent = 2) const;

  std::string ToString(int indent = 2) const;

 private:
  void WriteIndented(std::ostream& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Appends the RFC 8259 escaped form of `raw` (with surrounding quotes)
/// to `out`. Exposed for direct use and testing.
void AppendJsonEscaped(const std::string& raw, std::string* out);

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_JSON_WRITER_H_
