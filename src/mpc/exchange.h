/// \file exchange.h
/// \brief The unified inter-server data-movement layer of the simulator.
///
/// Every load bound in the paper is a statement about *communication* —
/// what each server receives per round — so the simulator funnels all
/// inter-server data movement through this single choke point. One place
/// charges the LoadTracker, one place audits conservation, one place emits
/// telemetry, and one place owns the copy discipline; a future backend
/// (real sockets, compressed messages, a byte-cost model) is a change to
/// this file, not to five call sites.
///
/// An exchange is two-phase:
///
///  1. **Plan** — an ExchangePlan accumulates what every destination server
///     will receive: routed relation rows (AddSource with a pluggable
///     route function, evaluated shard-parallel on the global ThreadPool
///     with a thread-count-invariant shard decomposition), uniform
///     broadcast / O(N/p)-linear charges (PlanBroadcast / PlanLinear), or
///     explicit per-server receive volumes computed elsewhere
///     (PlanReceive). Routed sources either *record* their (server, row)
///     routes for delivery or only count receives (charge-only routing,
///     used when the simulation needs the load but not the data).
///  2. **Execute** — delivers every recorded route into its destination
///     relation via the sink callback, in deterministic (source, shard,
///     row, emit) order, with reserve-ahead bulk appends (consecutive rows
///     bound for the same server coalesce into one flat copy) instead of
///     per-row AppendRow calls — then charges the cluster's tracker
///     **exactly once per server** for the round.
///
/// In COVERPACK_AUDIT builds Execute verifies the conservation invariant
/// at the choke point: tuples planned == tuples delivered == load charged
/// for the round. Every execution also feeds the process-global
/// ExchangeTelemetry aggregation (tuples moved, fan-in, skew), which the
/// bench harness snapshots into each experiment's RunReport metrics.
///
/// Which paper primitive each call site models is catalogued in DESIGN.md
/// ("The Exchange layer").

#ifndef COVERPACK_MPC_EXCHANGE_H_
#define COVERPACK_MPC_EXCHANGE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mpc/cluster.h"
#include "relation/relation.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace mpc {

/// Rows per routing shard of the plan phase. Fixed (never derived from the
/// thread count) so the shard decomposition — and therefore every record
/// and merge order — is identical at any parallelism level.
inline constexpr size_t kExchangeRouteGrain = 2048;

/// What one Execute call did. `planned` covers the whole plan (routed rows
/// plus uniform/explicit charges); `delivered` counts only rows that
/// materialized into destination relations; `charged` is the tracker
/// volume (zero when executed without a cluster).
struct ExchangeStats {
  uint64_t planned = 0;
  uint64_t delivered = 0;
  uint64_t charged = 0;
  uint64_t max_receive = 0;  ///< max planned receive of any single server
};

/// Phase 1: the deterministic row -> server routing of one exchange.
class ExchangePlan {
 public:
  /// An empty plan over `num_servers` destination servers.
  explicit ExchangePlan(uint32_t num_servers) : num_servers_(num_servers) {
    CP_CHECK_GE(num_servers, 1u);
  }

  uint32_t num_servers() const { return num_servers_; }

  /// Routes `source` through the pluggable route function:
  /// `route(i, emit)` must call `emit(server)` for every server that is to
  /// receive row i, deterministically (replication = multiple emits). The
  /// route function is evaluated shard-parallel over fixed-size shards;
  /// shard results merge in ascending shard order, so the planned routing
  /// is byte-identical at any thread count. With `record` set the
  /// (server, row) routes are kept and Execute delivers the rows; without
  /// it only per-server receive counts accumulate (charge-only routing).
  /// `emits_per_row_hint` pre-sizes the route buffers (e.g. the hypercube
  /// replication factor). Returns the source index sinks are keyed by.
  template <typename RouteFn>
  size_t AddSource(const Relation& source, bool record, const RouteFn& route,
                   size_t emits_per_row_hint = 1);

  /// Plans a broadcast: every server receives `data_size` tuples.
  void PlanBroadcast(uint64_t data_size) {
    uniform_per_server_ += data_size;
    total_planned_ += data_size * num_servers_;
  }

  /// Plans one round of an O(N/p) sort-based primitive over `total_items`
  /// items: every server receives ceil(total_items / p).
  void PlanLinear(uint64_t total_items) {
    if (total_items == 0) return;
    uint64_t per_server = CeilDiv(total_items, num_servers_);
    uniform_per_server_ += per_server;
    total_planned_ += per_server * num_servers_;
  }

  /// Plans an explicit receive of `amount` tuples by `server`, on top of
  /// whatever routing planned for it. Amounts accumulate.
  void PlanReceive(uint32_t server, uint64_t amount) {
    CP_CHECK_LT(server, num_servers_);
    if (amount == 0) return;
    EnsureReceives();
    receives_[server] += amount;
    total_planned_ += amount;
  }

  /// Planned receive volume of one server.
  uint64_t PlannedReceive(uint32_t server) const {
    return uniform_per_server_ + (receives_.empty() ? 0 : receives_[server]);
  }

  /// Total volume this plan will charge.
  uint64_t total_planned() const { return total_planned_; }

  /// Volume of recorded routes (what Execute will actually deliver).
  uint64_t recorded_planned() const { return recorded_planned_; }

  /// Max planned receive over all servers.
  uint64_t MaxPlannedReceive() const {
    if (receives_.empty()) return uniform_per_server_;
    uint64_t max_receive = 0;
    for (uint64_t r : receives_) max_receive = std::max(max_receive, r);
    return max_receive + uniform_per_server_;
  }

  size_t num_sources() const { return sources_.size(); }

 private:
  friend class Exchange;
  friend class ExchangeDelivery;

  /// One (server, row) route of a recorded source.
  struct Route {
    uint32_t server;
    size_t row;
  };

  /// One routed source relation. `relation` is null for charge-only
  /// sources (their routes were counted, not recorded).
  struct Source {
    const Relation* relation = nullptr;
    std::vector<std::vector<Route>> shard_routes;  // ascending shard order
  };

  void EnsureReceives() {
    if (receives_.empty()) receives_.assign(num_servers_, 0);
  }

  uint32_t num_servers_;
  uint64_t uniform_per_server_ = 0;  ///< broadcast/linear component, per server
  std::vector<uint64_t> receives_;   ///< routed + explicit component; empty = all zero
  uint64_t total_planned_ = 0;
  uint64_t recorded_planned_ = 0;
  std::vector<Source> sources_;
};

/// Phase 2 destination lookup: sink(source_index, server) returns the
/// relation that server's rows of that source are delivered into.
using ExchangeSink = std::function<Relation*(size_t, uint32_t)>;

/// The delivery of one Execute call, reified so an interposer (the
/// resilience layer's FaultInjector) can drive it: run delivery attempts —
/// optionally corrupting them row by row — and roll the destinations back
/// to their pre-exchange checkpoint between attempts. Destinations are
/// resolved through the sink exactly once, at construction, so a
/// multi-attempt delivery observes the same relations a fault-free one
/// would; the checkpoint is each destination's row count at that moment
/// (destinations only grow by appends, so truncation restores them
/// bit-exactly).
class ExchangeDelivery {
 public:
  /// Verdict for one routed row of a corrupted attempt.
  enum class RowFate {
    kDeliver,    ///< deliver normally
    kDrop,       ///< lose the message (crashed or lossy receiver)
    kDuplicate,  ///< deliver twice (retransmission race)
  };

  /// Per-row corruption oracle of one attempt: the fate of row `row` of
  /// source `source` on its way to `server`. Called in the deterministic
  /// (source, shard, row, emit) delivery order, from one thread.
  using CorruptFn = std::function<RowFate(size_t source, uint32_t server, size_t row)>;

  uint32_t round() const { return round_; }
  const char* label() const { return label_; }
  const ExchangePlan& plan() const { return *plan_; }
  /// False for uncharged executions (null cluster: initial placement) —
  /// such moves model free data birth, not communication, so fault
  /// injection skips them.
  bool charged() const { return charged_; }

  /// Rows held by all destination relations at the pre-exchange
  /// checkpoint: the volume a round-boundary snapshot protects.
  uint64_t CheckpointedRows() const { return checkpointed_rows_; }

  /// Runs one clean delivery attempt (the fault-free fast path: coalesced
  /// bulk appends). Returns the rows delivered.
  uint64_t Attempt() { return RunAttempt(nullptr); }

  /// Runs one attempt under the corruption oracle. Returns the rows
  /// actually delivered (dropped rows excluded, duplicates counted twice).
  uint64_t Attempt(const CorruptFn& corrupt) { return RunAttempt(&corrupt); }

  /// Truncates every destination back to its pre-exchange checkpoint:
  /// restore-and-replay of the failed round.
  void Restore();

 private:
  friend class Exchange;

  ExchangeDelivery(const ExchangePlan& plan, const ExchangeSink& sink, uint32_t round,
                   const char* label, bool charged);

  uint64_t RunAttempt(const CorruptFn* corrupt);

  /// Destination state of one recorded source.
  struct Target {
    size_t source_index;
    std::vector<uint64_t> counts;    ///< planned rows per server
    std::vector<Relation*> dests;    ///< resolved once; null where counts == 0
  };

  /// Pre-exchange size of one (unique) destination relation.
  struct Checkpoint {
    Relation* relation;
    size_t rows;
  };

  const ExchangePlan* plan_;
  uint32_t round_;
  const char* label_;
  bool charged_;
  std::vector<Target> targets_;
  std::vector<Checkpoint> checkpoints_;
  uint64_t checkpointed_rows_ = 0;
};

/// Interposer seam of the Exchange layer: when installed, every Execute
/// hands its delivery to the interposer instead of performing the single
/// clean attempt itself. The resilience layer's FaultInjector uses this to
/// inject crashes, message drops/duplications, and round replays without
/// any algorithm knowing. The interposer MUST leave every destination in
/// the clean fault-free state (final attempt clean, earlier attempts rolled
/// back via Restore) — the conservation audit and the tracker charging run
/// after it returns, against the fault-free volumes.
class ExchangeInterposer {
 public:
  virtual ~ExchangeInterposer() = default;

  /// Drives the delivery of one exchange. Returns the rows delivered by
  /// the final (clean) attempt — must equal plan().recorded_planned().
  virtual uint64_t Deliver(ExchangeDelivery& delivery) = 0;

  /// Installs `interposer` process-wide (nullptr uninstalls) and returns
  /// the previously installed one, so scoped installers can nest. Install
  /// only from quiescent points — never while exchanges are executing.
  static ExchangeInterposer* Install(ExchangeInterposer* interposer);
  static ExchangeInterposer* Installed();
};

/// Phase 2: executes a plan.
class Exchange {
 public:
  /// Single-source plan sugar: routes `source` over `num_servers` in one
  /// call. See ExchangePlan::AddSource for the route-function contract.
  template <typename RouteFn>
  static ExchangePlan Plan(uint32_t num_servers, const Relation& source, const RouteFn& route,
                           bool record = true, size_t emits_per_row_hint = 1) {
    ExchangePlan plan(num_servers);
    plan.AddSource(source, record, route, emits_per_row_hint);
    return plan;
  }

  /// Performs the planned move: delivers every recorded source through
  /// `sink` and charges `cluster`'s tracker once per server in `round`.
  /// `cluster` may be null — deliver without charging, which models the
  /// *initial* placement of the input (data starts distributed; only
  /// communication counts). `label` names the exchange in audit failures
  /// and telemetry. Requires plan.num_servers() <= cluster->p().
  static ExchangeStats Execute(Cluster* cluster, uint32_t round, const ExchangePlan& plan,
                               const ExchangeSink& sink, const char* label);

  /// Charge-only execution (no recorded sources to deliver).
  static ExchangeStats Execute(Cluster* cluster, uint32_t round, const ExchangePlan& plan,
                               const char* label) {
    return Execute(cluster, round, plan, ExchangeSink(), label);
  }
};

/// A point-in-time copy of the process-global exchange telemetry: plain
/// values, so the mpc layer stays independent of the telemetry library
/// (telemetry::SnapshotExchangeTelemetryInto converts this into RunReport
/// metrics — see telemetry/exchange_metrics.h).
struct ExchangeTelemetrySnapshot {
  /// Per-label aggregate.
  struct LabelAggregate {
    uint64_t count = 0;
    uint64_t tuples_moved = 0;
  };

  uint64_t count = 0;         ///< exchanges executed
  uint64_t tuples_moved = 0;  ///< total planned volume over all exchanges
  uint64_t max_fanin = 0;     ///< largest single-server receive seen
  std::vector<std::pair<std::string, LabelAggregate>> by_label;  // sorted by label
  std::vector<double> tuples_samples;  ///< planned volume, one per exchange
  std::vector<double> skew_samples;    ///< max/mean receive, per moving exchange
};

/// Process-global aggregation of per-exchange telemetry. Everything
/// recorded here is content-determined (thread-count invariant): exchange
/// counts, tuples moved, per-exchange volume and fan-in-skew samples, and
/// the largest single-server fan-in seen. The bench harness resets it
/// before each experiment and snapshots it into the experiment's RunReport
/// metrics afterwards ("exchange.*" keys — see EXPERIMENTS.md).
/// Mutex-synchronized: Execute may run concurrently from pool tasks.
class ExchangeTelemetry {
 public:
  static void Reset();

  /// Folds one execution into the aggregate. Called by Exchange::Execute.
  static void Record(const char* label, const ExchangeStats& stats, uint32_t num_servers);

  /// Copies the current aggregate out.
  static ExchangeTelemetrySnapshot Snapshot();
};

// ---- template implementation ----------------------------------------------

template <typename RouteFn>
size_t ExchangePlan::AddSource(const Relation& source, bool record, const RouteFn& route,
                               size_t emits_per_row_hint) {
  const size_t rows = source.size();
  Source entry;
  if (record) entry.relation = &source;
  if (rows > 0) {
    const size_t num_shards = ThreadPool::NumShards(0, rows, kExchangeRouteGrain);
    ThreadPool& pool = ThreadPool::Global();
    if (record) {
      entry.shard_routes.resize(num_shards);
      pool.ParallelForShards(0, rows, kExchangeRouteGrain,
                             [&](size_t shard_begin, size_t shard_end, size_t shard) {
                               shard_end = std::min(shard_end, rows);
                               auto& routes = entry.shard_routes[shard];
                               routes.reserve((shard_end - shard_begin) * emits_per_row_hint);
                               for (size_t i = shard_begin; i < shard_end; ++i) {
                                 route(i, [&](uint64_t server) {
                                   routes.push_back(Route{static_cast<uint32_t>(server), i});
                                 });
                               }
                             });
      EnsureReceives();
      for (const auto& routes : entry.shard_routes) {
        for (const Route& r : routes) {
          CP_DCHECK(r.server < num_servers_);
          ++receives_[r.server];
        }
        total_planned_ += routes.size();
        recorded_planned_ += routes.size();
      }
    } else {
      // Charge-only routing: per-shard receive-count arrays, merged in
      // ascending shard order (sums are order-independent, but the fixed
      // order keeps this path structurally identical to the recorded one).
      std::vector<std::vector<uint64_t>> shard_counts(num_shards);
      pool.ParallelForShards(0, rows, kExchangeRouteGrain,
                             [&](size_t shard_begin, size_t shard_end, size_t shard) {
                               shard_end = std::min(shard_end, rows);
                               auto& local = shard_counts[shard];
                               local.assign(num_servers_, 0);
                               for (size_t i = shard_begin; i < shard_end; ++i) {
                                 route(i, [&](uint64_t server) { ++local[server]; });
                               }
                             });
      EnsureReceives();
      for (const auto& local : shard_counts) {
        for (uint32_t s = 0; s < num_servers_; ++s) {
          receives_[s] += local[s];
          total_planned_ += local[s];
        }
      }
    }
  }
  sources_.push_back(std::move(entry));
  return sources_.size() - 1;
}

}  // namespace mpc
}  // namespace coverpack

#endif  // COVERPACK_MPC_EXCHANGE_H_
