#include "cluster/cluster_telemetry.h"

#include <algorithm>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coverpack {
namespace cluster {

namespace {

/// The process-global ledger. Same shape as the resilience ledger: one
/// mutex, plain guarded fields, snapshot by copy under the lock.
struct LedgerState {
  Mutex mutex;
  uint64_t runs CP_GUARDED_BY(mutex) = 0;
  uint64_t migrations CP_GUARDED_BY(mutex) = 0;
  uint64_t servers_joined CP_GUARDED_BY(mutex) = 0;
  uint64_t servers_left CP_GUARDED_BY(mutex) = 0;
  uint64_t tuples_migrated CP_GUARDED_BY(mutex) = 0;
  uint64_t tuples_from_leavers CP_GUARDED_BY(mutex) = 0;
  uint64_t tuples_to_joiners CP_GUARDED_BY(mutex) = 0;
  uint64_t checkpoints_captured CP_GUARDED_BY(mutex) = 0;
  uint64_t checkpoint_tuples CP_GUARDED_BY(mutex) = 0;
  uint64_t max_single_migration CP_GUARDED_BY(mutex) = 0;
  std::vector<double> migration_samples CP_GUARDED_BY(mutex);
};

LedgerState& Ledger() {
  static LedgerState* state = new LedgerState();
  return *state;
}

}  // namespace

void ClusterTelemetry::Reset() {
  LedgerState& state = Ledger();
  MutexLock lock(state.mutex);
  state.runs = 0;
  state.migrations = 0;
  state.servers_joined = 0;
  state.servers_left = 0;
  state.tuples_migrated = 0;
  state.tuples_from_leavers = 0;
  state.tuples_to_joiners = 0;
  state.checkpoints_captured = 0;
  state.checkpoint_tuples = 0;
  state.max_single_migration = 0;
  state.migration_samples.clear();
}

void ClusterTelemetry::RecordRun() {
  LedgerState& state = Ledger();
  MutexLock lock(state.mutex);
  ++state.runs;
}

void ClusterTelemetry::RecordMigration(const MigrationRecord& record) {
  LedgerState& state = Ledger();
  MutexLock lock(state.mutex);
  ++state.migrations;
  state.servers_joined += record.servers_joined;
  state.servers_left += record.servers_left;
  state.tuples_migrated += record.tuples_moved;
  state.tuples_from_leavers += record.tuples_from_leavers;
  state.tuples_to_joiners += record.tuples_to_joiners;
  ++state.checkpoints_captured;
  state.checkpoint_tuples += record.checkpoint_tuples;
  state.max_single_migration =
      std::max(state.max_single_migration, record.max_single_receive);
  state.migration_samples.push_back(static_cast<double>(record.tuples_moved));
}

ClusterTelemetrySnapshot ClusterTelemetry::Snapshot() {
  LedgerState& state = Ledger();
  MutexLock lock(state.mutex);
  ClusterTelemetrySnapshot snapshot;
  snapshot.runs = state.runs;
  snapshot.migrations = state.migrations;
  snapshot.servers_joined = state.servers_joined;
  snapshot.servers_left = state.servers_left;
  snapshot.tuples_migrated = state.tuples_migrated;
  snapshot.tuples_from_leavers = state.tuples_from_leavers;
  snapshot.tuples_to_joiners = state.tuples_to_joiners;
  snapshot.checkpoints_captured = state.checkpoints_captured;
  snapshot.checkpoint_tuples = state.checkpoint_tuples;
  snapshot.max_single_migration = state.max_single_migration;
  snapshot.migration_samples = state.migration_samples;
  return snapshot;
}

}  // namespace cluster
}  // namespace coverpack
