#include "query/decomposition.h"

#include <algorithm>
#include <sstream>

#include "query/properties.h"
#include "util/logging.h"

namespace coverpack {

namespace {

/// Cross product of two set families: {a U b : a in X, b in Y}.
std::vector<EdgeSet> CrossFamilies(const std::vector<EdgeSet>& x, const std::vector<EdgeSet>& y) {
  std::vector<EdgeSet> result;
  result.reserve(x.size() * y.size());
  for (EdgeSet a : x) {
    for (EdgeSet b : y) result.push_back(a.Union(b));
  }
  return result;
}

void DedupFamily(std::vector<EdgeSet>* family) {
  std::sort(family->begin(), family->end());
  family->erase(std::unique(family->begin(), family->end()), family->end());
}

/// Grows one twig from `root` downward, stopping at (and including, as twig
/// leaves) internal cover nodes; returns the boundary nodes as next roots.
Twig GrowTwig(const JoinTree& tree, uint32_t root, EdgeSet internal_cover, bool owns_root,
              std::vector<uint32_t>* next_roots) {
  Twig twig;
  twig.root = root;
  twig.owns_root = owns_root;
  twig.nodes.Insert(root);
  std::vector<uint32_t> stack{root};
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    for (uint32_t child : tree.children(u)) {
      twig.nodes.Insert(child);
      if (internal_cover.Contains(child)) {
        next_roots->push_back(child);  // boundary: leaf here, root below
      } else {
        stack.push_back(child);
      }
    }
  }
  return twig;
}

/// Linear cover of the twig: peel root-to-leaf paths recursively
/// (Definition 4.7). Paths descend to the smallest-id child for
/// determinism; descent stops at nodes outside the twig.
void LinearCover(const JoinTree& tree, const Twig& twig, uint32_t start,
                 std::vector<std::vector<uint32_t>>* pieces) {
  std::vector<uint32_t> path;
  uint32_t u = start;
  for (;;) {
    path.push_back(u);
    uint32_t next = JoinTree::kNoParent;
    for (uint32_t child : tree.children(u)) {
      if (!twig.nodes.Contains(child)) continue;
      // Boundary cover nodes are twig leaves: they terminate a path but may
      // still be chosen as the endpoint.
      if (next == JoinTree::kNoParent || child < next) next = child;
    }
    if (next == JoinTree::kNoParent) break;
    bool next_is_twig_leaf = true;
    for (uint32_t grand : tree.children(next)) {
      if (twig.nodes.Contains(grand)) next_is_twig_leaf = false;
    }
    u = next;
    if (next_is_twig_leaf) {
      path.push_back(u);
      break;
    }
  }
  pieces->push_back(path);
  // Recurse into subtrees hanging off the path.
  for (uint32_t node : path) {
    for (uint32_t child : tree.children(node)) {
      if (!twig.nodes.Contains(child)) continue;
      if (std::find(path.begin(), path.end(), child) != path.end()) continue;
      LinearCover(tree, twig, child, pieces);
    }
  }
}

/// Family of one linear piece per Theorem 3 rule 4: pick any one relation
/// of the piece; when the piece contains an owned root r, additionally
/// cross with {{r}, empty}.
std::vector<EdgeSet> PieceFamily(const std::vector<uint32_t>& piece, uint32_t root,
                                 bool piece_has_owned_root) {
  std::vector<EdgeSet> base;
  for (uint32_t node : piece) {
    if (piece_has_owned_root && node == root) continue;
    if (!piece_has_owned_root && node == root) continue;  // root owned by parent twig
    base.push_back(EdgeSet::Single(node));
  }
  if (base.empty()) base.push_back(EdgeSet());
  if (piece_has_owned_root) {
    std::vector<EdgeSet> with_root{EdgeSet::Single(root), EdgeSet()};
    return CrossFamilies(base, with_root);
  }
  return base;
}

/// Family of one twig: cross product over its pieces.
std::vector<EdgeSet> TwigFamily(const Twig& twig) {
  std::vector<EdgeSet> family{EdgeSet()};
  for (size_t i = 0; i < twig.pieces.size(); ++i) {
    const auto& piece = twig.pieces[i];
    bool contains_root = std::find(piece.begin(), piece.end(), twig.root) != piece.end();
    std::vector<EdgeSet> piece_family =
        PieceFamily(piece, twig.root, contains_root && twig.owns_root);
    family = CrossFamilies(family, piece_family);
  }
  return family;
}

}  // namespace

TwigDecomposition DecomposeTwigs(JoinTree tree, EdgeSet component_nodes, EdgeSet cover) {
  // Internal cover nodes of this component (cover nodes that are not
  // leaves of the tree).
  EdgeSet internal_cover;
  for (uint32_t node : component_nodes.ToVector()) {
    if (cover.Contains(node) && !tree.IsLeaf(node)) internal_cover.Insert(node);
  }

  // Root selection: an internal cover node if one exists, else any leaf
  // (leaves of a reduced acyclic query are always in the cover).
  uint32_t root = JoinTree::kNoParent;
  if (!internal_cover.empty()) {
    root = internal_cover.First();
  } else {
    for (uint32_t node : component_nodes.ToVector()) {
      if (tree.IsLeaf(node)) {
        root = node;
        break;
      }
    }
    if (root == JoinTree::kNoParent) root = component_nodes.First();
  }
  tree.RerootAt(root);

  TwigDecomposition decomposition;
  std::vector<uint32_t> roots{root};
  bool first = true;
  while (!roots.empty()) {
    uint32_t r = roots.back();
    roots.pop_back();
    // The twig root itself never splits again, so exclude it from the
    // boundary set while growing (a boundary node becomes the next root).
    EdgeSet boundary = internal_cover;
    boundary.Remove(r);
    Twig twig = GrowTwig(tree, r, boundary, /*owns_root=*/first, &roots);
    first = false;
    LinearCover(tree, twig, twig.root, &twig.pieces);
    decomposition.twigs.push_back(std::move(twig));
  }
  // Re-derive ownership: only the very first twig owns its root; all later
  // roots are boundary nodes owned (as leaves) by their parent twig.
  for (size_t i = 1; i < decomposition.twigs.size(); ++i) {
    decomposition.twigs[i].owns_root = false;
  }
  return decomposition;
}

std::vector<EdgeSet> SFamily(const Hypergraph& query) {
  // Rule 1: strip subsumed relations; each contributes its singleton.
  std::vector<EdgeSet> family_subsumed;
  EdgeSet live = query.AllEdges();
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId i : live.ToVector()) {
      for (EdgeId j : live.ToVector()) {
        if (i == j) continue;
        if (query.edge(i).attrs.IsSubsetOf(query.edge(j).attrs)) {
          family_subsumed.push_back(EdgeSet::Single(i));
          live.Remove(i);
          changed = true;
          break;
        }
      }
      if (changed) break;
    }
  }

  Hypergraph reduced = query.InducedByEdges(live);
  auto tree = JoinTree::Build(reduced);
  CP_CHECK(tree.has_value()) << "SFamily requires an alpha-acyclic query: " << query.ToString();
  EdgeSet cover = MinimumIntegralEdgeCover(reduced).edges;

  // Per component: twig decomposition, then cross the twig families.
  std::vector<EdgeSet> family{EdgeSet()};
  for (EdgeSet component : tree->Components()) {
    TwigDecomposition decomposition = DecomposeTwigs(*tree, component, cover);
    for (const Twig& twig : decomposition.twigs) {
      family = CrossFamilies(family, TwigFamily(twig));
    }
  }

  // Translate reduced-query edge ids back to original ids (by name).
  std::vector<EdgeId> live_ids = live.ToVector();
  std::vector<EdgeSet> translated;
  translated.reserve(family.size());
  for (EdgeSet s : family) {
    EdgeSet original;
    for (EdgeId reduced_id : s.ToVector()) {
      original.Insert(live_ids[reduced_id]);
    }
    translated.push_back(original);
  }
  translated.insert(translated.end(), family_subsumed.begin(), family_subsumed.end());
  DedupFamily(&translated);
  return translated;
}

uint32_t MaxSFamilySetSize(const Hypergraph& query) {
  uint32_t max_size = 0;
  for (EdgeSet s : SFamily(query)) max_size = std::max(max_size, s.size());
  return max_size;
}

std::string DecompositionToString(const Hypergraph& query,
                                  const TwigDecomposition& decomposition) {
  std::ostringstream oss;
  for (size_t t = 0; t < decomposition.twigs.size(); ++t) {
    const Twig& twig = decomposition.twigs[t];
    oss << "twig " << t << " (root " << query.edge(twig.root).name
        << (twig.owns_root ? ", owned" : ", shared") << "): pieces";
    for (const auto& piece : twig.pieces) {
      oss << " [";
      for (size_t i = 0; i < piece.size(); ++i) {
        if (i) oss << "-";
        oss << query.edge(piece[i]).name;
      }
      oss << "]";
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace coverpack
