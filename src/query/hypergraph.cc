#include "query/hypergraph.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace coverpack {

AttrId Hypergraph::Builder::AddAttribute(const std::string& name) {
  for (size_t i = 0; i < attr_names_.size(); ++i) {
    if (attr_names_[i] == name) return static_cast<AttrId>(i);
  }
  CP_CHECK_LT(attr_names_.size(), 64u) << "at most 64 attributes supported";
  attr_names_.push_back(name);
  return static_cast<AttrId>(attr_names_.size() - 1);
}

EdgeId Hypergraph::Builder::AddRelation(const std::string& name,
                                        const std::vector<std::string>& attr_names) {
  std::vector<AttrId> ids;
  ids.reserve(attr_names.size());
  for (const auto& attr : attr_names) ids.push_back(AddAttribute(attr));
  return AddRelationByIds(name, ids);
}

EdgeId Hypergraph::Builder::AddRelationByIds(const std::string& name,
                                             const std::vector<AttrId>& attr_ids) {
  for (const auto& edge : edges_) {
    CP_CHECK(edge.name != name) << "duplicate relation name " << name;
  }
  CP_CHECK_LT(edges_.size(), 64u) << "at most 64 relations supported";
  Edge edge;
  edge.name = name;
  for (AttrId id : attr_ids) {
    CP_CHECK_LT(id, attr_names_.size());
    edge.attrs.Insert(id);
  }
  CP_CHECK(!edge.attrs.empty()) << "relation " << name << " has no attributes";
  edges_.push_back(std::move(edge));
  return static_cast<EdgeId>(edges_.size() - 1);
}

Hypergraph Hypergraph::Builder::Build() const { return Hypergraph(attr_names_, edges_); }

std::optional<AttrId> Hypergraph::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attr_names_.size(); ++i) {
    if (attr_names_[i] == name) return static_cast<AttrId>(i);
  }
  return std::nullopt;
}

std::optional<EdgeId> Hypergraph::FindEdge(const std::string& name) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].name == name) return static_cast<EdgeId>(i);
  }
  return std::nullopt;
}

AttrSet Hypergraph::AllAttrs() const {
  AttrSet all;
  for (const auto& edge : edges_) all = all.Union(edge.attrs);
  return all;
}

EdgeSet Hypergraph::EdgesContaining(AttrId x) const {
  EdgeSet set;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].attrs.Contains(x)) set.Insert(static_cast<EdgeId>(i));
  }
  return set;
}

AttrSet Hypergraph::AttrsOf(EdgeSet edges) const {
  AttrSet attrs;
  for (EdgeId id : edges.ToVector()) attrs = attrs.Union(edges_[id].attrs);
  return attrs;
}

Hypergraph Hypergraph::Residual(AttrSet removed_attrs) const {
  std::vector<Edge> edges;
  for (const auto& edge : edges_) {
    Edge residual{edge.name, edge.attrs.Minus(removed_attrs)};
    if (!residual.attrs.empty()) edges.push_back(std::move(residual));
  }
  return Hypergraph(attr_names_, std::move(edges));
}

Hypergraph Hypergraph::InducedByEdges(EdgeSet kept) const {
  std::vector<Edge> edges;
  for (EdgeId id : kept.ToVector()) {
    CP_CHECK_LT(id, edges_.size());
    edges.push_back(edges_[id]);
  }
  return Hypergraph(attr_names_, std::move(edges));
}

std::optional<EdgeId> Hypergraph::SameNamedEdgeIn(const Hypergraph& other, EdgeId id) const {
  CP_CHECK_LT(id, edges_.size());
  return other.FindEdge(edges_[id].name);
}

bool Hypergraph::IsReduced() const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    for (size_t j = 0; j < edges_.size(); ++j) {
      if (i == j) continue;
      if (edges_[i].attrs.IsSubsetOf(edges_[j].attrs)) return false;
    }
  }
  return true;
}

std::vector<EdgeSet> Hypergraph::ConnectedComponents() const {
  std::vector<EdgeSet> components;
  uint64_t visited = 0;
  for (uint32_t start = 0; start < edges_.size(); ++start) {
    if ((visited >> start) & 1) continue;
    // BFS over edges connected through shared attributes.
    EdgeSet component = EdgeSet::Single(start);
    AttrSet frontier_attrs = edges_[start].attrs;
    bool grew = true;
    while (grew) {
      grew = false;
      for (uint32_t e = 0; e < edges_.size(); ++e) {
        if (component.Contains(e)) continue;
        if (edges_[e].attrs.Intersects(frontier_attrs)) {
          component.Insert(e);
          frontier_attrs = frontier_attrs.Union(edges_[e].attrs);
          grew = true;
        }
      }
    }
    visited |= component.bits();
    components.push_back(component);
  }
  return components;
}

std::string Hypergraph::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i != 0) oss << " |><| ";
    oss << edges_[i].name << "(";
    std::vector<AttrId> ids = edges_[i].attrs.ToVector();
    for (size_t j = 0; j < ids.size(); ++j) {
      if (j != 0) oss << ",";
      oss << attr_names_[ids[j]];
    }
    oss << ")";
  }
  return oss.str();
}

}  // namespace coverpack
