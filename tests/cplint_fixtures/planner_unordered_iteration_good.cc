// cplint fixture: the sanctioned shape of planner memo tables — std::map
// keyed by subset bits, so the DP visits candidates in one deterministic
// order and equal-cost tie-breaks are stable by construction.
#include <map>
#include <string>

std::string BestOrder() {
  std::map<unsigned long, std::string> memo;
  std::string best;
  for (const auto& [subset, order] : memo) {
    if (best.empty() || order < best) best = order;
  }
  return best;
}
