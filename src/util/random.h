/// \file random.h
/// \brief Deterministic pseudo-random generation for workloads and hard
/// instances.
///
/// All randomized constructions in the paper (the probabilistic relation
/// R2(D,E,F) of Theorem 6, the probabilistic edges of Theorem 7) are
/// instantiated from a seeded generator so every experiment is replayable.

#ifndef COVERPACK_UTIL_RANDOM_H_
#define COVERPACK_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace coverpack {

/// SplitMix64 stream-splitting: derives the `stream`-th child seed of
/// `seed`. The result is the (stream+1)-th output of a SplitMix64 generator
/// seeded with `seed`, so child seeds are pairwise distinct for a fixed
/// parent and fully mixed (nearby streams give unrelated seeds). Sharded
/// generators use `Rng(SplitSeed(seed, shard))` so that every shard has a
/// private, replayable stream derived only from the experiment seed and the
/// shard index — never from the thread count.
uint64_t SplitSeed(uint64_t seed, uint64_t stream);

/// xoshiro256** by Blackman & Vigna: fast, high-quality, and tiny.
/// Seeded through SplitMix64 so that nearby seeds give unrelated streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// bound must be positive.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability prob (clamped to [0,1]).
  bool Bernoulli(double prob);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Samples from a Zipf(skew) distribution over {0, ..., n-1} via the
/// inverse-CDF table. Used to generate skewed join attributes that defeat
/// the plain hypercube algorithm.
class ZipfSampler {
 public:
  /// \param n universe size (must be >= 1)
  /// \param skew Zipf exponent; 0 gives uniform, >=1 is heavily skewed.
  ZipfSampler(uint64_t n, double skew);

  /// Draws one sample (0-based rank; rank 0 is the most frequent value).
  uint64_t Sample(Rng* rng) const;

  uint64_t universe_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace coverpack

#endif  // COVERPACK_UTIL_RANDOM_H_
