/// \file output_balanced.h
/// \brief Output-balanced Yannakakis: the O(N/p + OUT/p) algorithm of [15]
/// that Section 1.3 compares against.
///
/// After a full semi-join reduction, the join results of an acyclic query
/// can be counted per root tuple (bottom-up weights) and assigned to
/// servers as contiguous rank ranges of size OUT/p. Each server then pulls
/// exactly the input fragment its range needs (the root slice plus its
/// downward semi-joins). The load is O(N/p + OUT/p) — *output-optimal*
/// when OUT = O(p * N), but when OUT approaches the AGM bound N^{rho*} the
/// load degenerates to ~N^{rho*}/p, far above Theorem 5's N/p^(1/rho*):
/// exactly the gap Table 1 and Section 1.3 point out.

#ifndef COVERPACK_CORE_OUTPUT_BALANCED_H_
#define COVERPACK_CORE_OUTPUT_BALANCED_H_

#include <cstdint>

#include "mpc/load_tracker.h"
#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {

/// Outcome of an output-balanced run.
struct OutputBalancedResult {
  uint64_t output_count = 0;
  uint64_t max_load = 0;   ///< max input tuples received by one server
  uint32_t rounds = 0;
  uint64_t total_communication = 0;
  Relation results;        ///< materialized when collect (small instances)
  /// Full (round, server) load matrix for telemetry skew profiling.
  LoadTracker load_tracker{1};
};

/// Options for ComputeOutputBalanced.
struct OutputBalancedOptions {
  bool collect = false;
};

/// Runs the output-balanced algorithm on p servers. The query must be
/// alpha-acyclic and *connected* (a single join-tree component; Cartesian
/// products across components are delegated to the Case II machinery of
/// the main algorithm and are out of scope for this baseline).
///
/// Simplification vs [15]: a root tuple's extensions are not split across
/// servers, so a single root tuple heavier than OUT/p skews one server's
/// range (a constant factor on balanced instances; the benches use
/// balanced weights).
OutputBalancedResult ComputeOutputBalanced(const Hypergraph& query, const Instance& instance,
                                           uint32_t p, const OutputBalancedOptions& options);

}  // namespace coverpack

#endif  // COVERPACK_CORE_OUTPUT_BALANCED_H_
