#include "planner/plan_chooser.h"

#include <sstream>

#include "util/logging.h"

namespace coverpack {
namespace planner {

std::string PlanDecision::Digest() const {
  std::ostringstream out;
  out << "algo=" << AlgorithmName(algorithm) << ";load=" << est_load
      << ";rounds=" << est_rounds << ";ticks=" << est_cost_ticks
      << ";out=" << out_estimate << ";order=" << join_order << ";rho=" << lp.rho_star.num()
      << "/" << lp.rho_star.den() << ";psi=" << lp.psi_star.num() << "/"
      << lp.psi_star.den() << ";L=" << table.thm5_threshold;
  for (const CostEstimate& est : table.entries) {
    out << ";" << AlgorithmName(est.algorithm) << "=" << (est.applicable ? 1 : 0)
        << "/" << (est.exponent_safe ? 1 : 0) << "/" << est.est_load << "/"
        << est.est_rounds;
  }
  return out.str();
}

void DecisionLedger::CountDecision(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kOneRound: ++decisions_one_round; break;
    case Algorithm::kAcyclicMultiRound: ++decisions_acyclic; break;
    case Algorithm::kOutputBalanced: ++decisions_output_balanced; break;
  }
}

uint64_t DecisionLedger::TotalDecisions() const {
  return decisions_one_round + decisions_acyclic + decisions_output_balanced;
}

PlanDecision PlanChooser::Choose(const Hypergraph& query, uint32_t p,
                                 const StatsSnapshot& stats) {
  return Choose(query, p, stats, ComputeLpNumbers(query));
}

PlanDecision PlanChooser::Choose(const Hypergraph& query, uint32_t p,
                                 const StatsSnapshot& stats, const LpNumbers& lp) {
  PlanDecision decision;
  decision.lp = lp;
  decision.table = EstimateCosts(query, p, stats, lp);
  decision.out_estimate = decision.table.join_order.out_estimate;
  decision.join_order = decision.table.join_order.order;

  const CostEstimate* best = nullptr;
  for (const CostEstimate& est : decision.table.entries) {
    if (!est.applicable || !est.exponent_safe) continue;
    // Total order: load, then simulated ticks, then the fixed menu order
    // (the enum values), so ties are broken identically everywhere.
    if (best == nullptr || est.est_load < best->est_load ||
        (est.est_load == best->est_load && est.est_cost_ticks < best->est_cost_ticks)) {
      best = &est;
    }
  }
  // One-round is always applicable and is exponent-safe whenever nothing
  // else is (cyclic queries), so a winner always exists.
  CP_CHECK(best != nullptr) << "no applicable exponent-safe candidate";

  decision.algorithm = best->algorithm;
  decision.est_load = best->est_load;
  decision.est_rounds = best->est_rounds;
  decision.est_cost_ticks = best->est_cost_ticks;
  std::ostringstream why;
  why << AlgorithmName(best->algorithm) << " wins at load~" << best->est_load << " ("
      << best->detail << ")";
  decision.rationale = why.str();
  return decision;
}

}  // namespace planner
}  // namespace coverpack
