/// \file exchange_metrics.h
/// \brief Bridges the Exchange layer's process-global telemetry into a
/// MetricsRegistry (and therefore into RunReport / BENCH_results.json).
///
/// Lives in the telemetry library, not in mpc/exchange.cc, because the
/// dependency points this way: cp_telemetry links cp_mpc. The Exchange
/// layer exposes a plain-struct snapshot; this translates it into the
/// "exchange.*" metric keys documented in EXPERIMENTS.md.

#ifndef COVERPACK_TELEMETRY_EXCHANGE_METRICS_H_
#define COVERPACK_TELEMETRY_EXCHANGE_METRICS_H_

#include "telemetry/metrics.h"

namespace coverpack {
namespace telemetry {

/// Writes the current ExchangeTelemetry aggregate into `registry`:
/// counters "exchange.count", "exchange.tuples_moved" and their per-label
/// variants "exchange.<label>.{count,tuples_moved}", gauge
/// "exchange.max_fanin", and histograms "exchange.tuples_per_exchange" and
/// "exchange.fanin_skew". No-op when no exchange has executed since the
/// last ExchangeTelemetry::Reset(), so reports without data movement keep
/// their schema unchanged. Call from the thread that owns `registry`.
void SnapshotExchangeTelemetryInto(MetricsRegistry* registry);

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_EXCHANGE_METRICS_H_
