// cplint fixture: a cluster profile that reads server speeds off the host
// clock. In src/cluster/ this would make SpeedOfSlot impure, so two
// profiles built from the same spec would route rows differently — the
// hetero-vs-uniform makespan comparison and the elastic byte-identity
// claim both collapse.
#include <chrono>
#include <ctime>

struct SlotProbe {
  double speed = 1.0;
  long measured_at = 0;
};

SlotProbe MeasureSlotSpeed(unsigned slot) {
  SlotProbe probe;
  const long now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  probe.speed = 1.0 + static_cast<double>((now + slot) % 7);
  probe.measured_at = time(nullptr);
  return probe;
}
