#include "cplint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace coverpack {
namespace cplint {

namespace {

// ---- Rule catalog ----------------------------------------------------------

const char kChargeChokePoint[] = "charge-choke-point";
const char kNoWallClock[] = "no-wall-clock";
const char kNoUnseededRng[] = "no-unseeded-rng";
const char kNoUnorderedIteration[] = "no-unordered-iteration";
const char kAuditPairing[] = "audit-pairing";
const char kIncludeHygiene[] = "include-hygiene";
const char kNoPerRowAppend[] = "no-per-row-append";

// ---- Text utilities --------------------------------------------------------

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// A file prepared for analysis: raw lines (for suppression comments),
/// stripped lines (comments and literal contents removed), and the
/// per-line set of allowed rules.
struct FileContext {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> stripped;
  /// allowed[i] holds the rules suppressed on 1-based line i+1.
  std::vector<std::set<std::string>> allowed;

  std::string Joined() const {
    std::string all;
    for (const std::string& line : stripped) {
      all += line;
      all += '\n';
    }
    return all;
  }
};

/// Parses `// cplint: allow(rule-a, rule-b)` out of a raw line. Returns
/// the listed rule names (empty when the directive is absent).
std::vector<std::string> ParseAllowDirective(const std::string& raw_line) {
  static const std::regex kDirective(R"(cplint:\s*allow\(([^)]*)\))");
  std::smatch match;
  std::vector<std::string> rules;
  if (!std::regex_search(raw_line, match, kDirective)) return rules;
  std::string list = match[1].str();
  std::string name;
  std::stringstream stream(list);
  while (std::getline(stream, name, ',')) {
    // trim
    size_t first = name.find_first_not_of(" \t");
    size_t last = name.find_last_not_of(" \t");
    if (first == std::string::npos) continue;
    rules.push_back(name.substr(first, last - first + 1));
  }
  return rules;
}

FileContext MakeContext(const std::string& path, const std::string& content) {
  FileContext ctx;
  ctx.path = path;
  ctx.raw = SplitLines(content);
  ctx.stripped = StripForAnalysis(content);
  ctx.allowed.resize(ctx.raw.size());
  for (size_t i = 0; i < ctx.raw.size(); ++i) {
    for (const std::string& rule : ParseAllowDirective(ctx.raw[i])) {
      // An allow covers its own line and the next one, so both trailing
      // comments and a standalone comment line above the code work.
      ctx.allowed[i].insert(rule);
      if (i + 1 < ctx.allowed.size()) ctx.allowed[i + 1].insert(rule);
    }
  }
  return ctx;
}

bool Allowed(const FileContext& ctx, size_t line_index, const std::string& rule) {
  return line_index < ctx.allowed.size() && ctx.allowed[line_index].count(rule) > 0;
}

void Emit(std::vector<Finding>* findings, const FileContext& ctx, size_t line_index,
          const std::string& rule, const std::string& message) {
  if (Allowed(ctx, line_index, rule)) return;
  findings->push_back(Finding{ctx.path, line_index + 1, rule, message});
}

// ---- Rules -----------------------------------------------------------------

/// charge-choke-point: any `<something>tracker[_ |()].Add(` outside
/// src/mpc/exchange.cc. The Exchange layer must stay the only site that
/// charges the load model (DESIGN.md §4c); a stray Add would silently
/// shift the paper's measured loads.
void CheckChargeChokePoint(const FileContext& ctx, std::vector<Finding>* findings) {
  if (EndsWith(ctx.path, "mpc/exchange.cc")) return;
  static const std::regex kCharge(
      R"([Tt]racker[A-Za-z0-9_]*(\(\))?\s*(\.|->)\s*Add\s*\()");
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    if (std::regex_search(ctx.stripped[i], kCharge)) {
      Emit(findings, ctx, i, kChargeChokePoint,
           "LoadTracker charging outside mpc/exchange.cc; route the movement "
           "through Exchange::Execute");
    }
  }
}

/// no-wall-clock: wall-clock reads poison determinism (reports must be
/// byte-identical across reruns). steady_clock is fine — it is monotonic
/// and only feeds wall_ms fields the comparison tooling masks.
void CheckNoWallClock(const FileContext& ctx, std::vector<Finding>* findings) {
  // The telemetry timer internals are the sanctioned wall-time site.
  if (EndsWith(ctx.path, "telemetry/metrics.cc")) return;
  static const std::regex kPatterns[] = {
      std::regex(R"(system_clock)"),
      std::regex(R"((^|[^A-Za-z0-9_.>])time\s*\()"),
      std::regex(R"((^|[^A-Za-z0-9_.>])clock\s*\()"),
      std::regex(
          R"((^|[^A-Za-z0-9_])(gettimeofday|clock_gettime|localtime(_r)?|gmtime(_r)?|strftime|asctime|ctime)\s*\()"),
      std::regex(R"(__DATE__|__TIME__|__TIMESTAMP__)"),
  };
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    for (const std::regex& pattern : kPatterns) {
      if (std::regex_search(ctx.stripped[i], pattern)) {
        Emit(findings, ctx, i, kNoWallClock,
             "wall-clock source outside telemetry timer internals; "
             "determinism requires steady_clock (telemetry) or no clock at all");
        break;
      }
    }
  }
}

/// no-unseeded-rng: every random draw must derive from the experiment
/// seed via SplitSeed so reruns and thread counts cannot diverge.
void CheckNoUnseededRng(const FileContext& ctx, std::vector<Finding>* findings) {
  static const std::regex kAlwaysBad(
      R"(random_device|(^|[^A-Za-z0-9_])(srand|rand|drand48|lrand48|mrand48)\s*\(|default_random_engine)");
  static const std::regex kMt(R"(mt19937(_64)?)");
  static const std::regex kMtSeeded(R"(mt19937(_64)?\b[^;]*([Ss]eed|SplitSeed))");
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    const std::string& line = ctx.stripped[i];
    if (std::regex_search(line, kAlwaysBad)) {
      Emit(findings, ctx, i, kNoUnseededRng,
           "ambient randomness source; derive all seeds via SplitSeed from "
           "the experiment seed");
      continue;
    }
    if (std::regex_search(line, kMt) && !std::regex_search(line, kMtSeeded)) {
      Emit(findings, ctx, i, kNoUnseededRng,
           "mt19937 without a visible SplitSeed-derived seed on the "
           "construction line");
    }
  }
}

/// no-unordered-iteration: collect identifiers declared (or returned by
/// file-local functions) with unordered_map/set types, then flag range-for
/// loops whose range expression mentions one of them (or an unordered_
/// type directly).
void CheckNoUnorderedIteration(const FileContext& ctx, std::vector<Finding>* findings) {
  static const std::regex kDecl(
      R"(unordered_(map|set)\s*<.*>\s*[&*]?\s*([A-Za-z_][A-Za-z0-9_]*)\s*[;={(\[])");
  std::set<std::string> unordered_names;
  for (const std::string& line : ctx.stripped) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[2].str());
    }
  }

  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    const std::string& line = ctx.stripped[i];
    size_t for_pos = line.find("for");
    if (for_pos == std::string::npos) continue;
    static const std::regex kRangeFor(R"((^|[^A-Za-z0-9_])for\s*\()");
    std::smatch for_match;
    if (!std::regex_search(line, for_match, kRangeFor)) continue;
    // Find the range-for ':' at paren depth 1 (skipping '::'), stopping at
    // ';' (a classic for) or the matching ')'.
    size_t open = line.find('(', for_match.position(0));
    if (open == std::string::npos) continue;
    int depth = 0;
    size_t colon = std::string::npos;
    size_t close = line.size();
    bool classic = false;
    for (size_t j = open; j < line.size(); ++j) {
      char c = line[j];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (depth == 1 && c == ';') {
        classic = true;
        break;
      }
      if (depth == 1 && c == ':' && colon == std::string::npos) {
        if ((j + 1 < line.size() && line[j + 1] == ':') || (j > 0 && line[j - 1] == ':')) {
          continue;  // scope resolution
        }
        colon = j;
      }
    }
    if (classic || colon == std::string::npos) continue;
    std::string range_expr = line.substr(colon + 1, close - colon - 1);
    bool bad = range_expr.find("unordered_") != std::string::npos;
    if (!bad) {
      static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
      auto begin = std::sregex_iterator(range_expr.begin(), range_expr.end(), kIdent);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        if (unordered_names.count(it->str()) > 0) {
          bad = true;
          break;
        }
      }
    }
    if (bad) {
      Emit(findings, ctx, i, kNoUnorderedIteration,
           "range-for over an unordered container: iteration order is "
           "implementation-defined; sort first, or allow() with a rationale "
           "when the order provably cannot escape");
    }
  }
}

/// audit-pairing: a file declaring a mutex member must carry clang
/// thread-safety annotations, so the runtime mutex/audit discipline is
/// always paired with the compile-time analysis.
void CheckAuditPairing(const FileContext& ctx, std::vector<Finding>* findings) {
  static const std::regex kMutexDecl(
      R"((^|\s)(mutable\s+)?(static\s+)?(std::)?[Mm]utex\s+[A-Za-z_][A-Za-z0-9_]*\s*(;|=|\{))");
  static const std::regex kAnnotation(
      R"(CP_(GUARDED_BY|PT_GUARDED_BY|CAPABILITY|SCOPED_CAPABILITY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE|TRY_ACQUIRE|RETURN_CAPABILITY)\b)");
  const std::string joined = ctx.Joined();
  const bool has_annotations = std::regex_search(joined, kAnnotation);
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    if (std::regex_search(ctx.stripped[i], kMutexDecl) && !has_annotations) {
      Emit(findings, ctx, i, kAuditPairing,
           "mutex-guarded state without clang thread-safety annotations; "
           "declare a coverpack::Mutex and mark members CP_GUARDED_BY "
           "(util/thread_annotations.h)");
    }
  }
}

/// include-hygiene: headers include what they use from util/.
void CheckIncludeHygiene(const FileContext& ctx, std::vector<Finding>* findings) {
  if (!EndsWith(ctx.path, ".h")) return;
  struct Requirement {
    std::regex use;
    std::string include;
  };
  static const std::vector<Requirement> kRequirements = {
      {std::regex(R"(CP_D?CHECK)"), "util/logging.h"},
      {std::regex(R"(CP_AUDIT)"), "util/audit.h"},
      {std::regex(
           R"(CP_(GUARDED_BY|PT_GUARDED_BY|CAPABILITY|SCOPED_CAPABILITY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE|TRY_ACQUIRE|RETURN_CAPABILITY|NO_THREAD_SAFETY_ANALYSIS)\b)"),
       "util/thread_annotations.h"},
      {std::regex(R"((^|[^A-Za-z0-9_:])(Mutex|MutexLock|DualMutexLock)\b)"), "util/mutex.h"},
      {std::regex(R"((^|[^A-Za-z0-9_:])(SplitSeed|Rng)\b)"), "util/random.h"},
      {std::regex(R"((^|[^A-Za-z0-9_:])HashCombine\b)"), "util/hash.h"},
      {std::regex(R"((^|[^A-Za-z0-9_:])ThreadPool\b)"), "util/thread_pool.h"},
  };
  for (const Requirement& requirement : kRequirements) {
    if (EndsWith(ctx.path, requirement.include)) continue;  // the definer itself
    const std::string include_directive = "#include \"" + requirement.include + "\"";
    bool included = false;
    for (const std::string& line : ctx.raw) {
      if (line.find(include_directive) != std::string::npos) {
        included = true;
        break;
      }
    }
    if (included) continue;
    for (size_t i = 0; i < ctx.stripped.size(); ++i) {
      if (std::regex_search(ctx.stripped[i], requirement.use)) {
        Emit(findings, ctx, i, kIncludeHygiene,
             "uses a util/ symbol without including \"" + requirement.include +
                 "\" directly (include what you use)");
        break;  // one finding per missing include is enough
      }
    }
  }
}

/// no-per-row-append: Relation::AppendRow in the src/mpc/ and src/query/
/// hot paths. Those layers sit on every experiment's critical path, and the
/// columnar substrate's contract is count-first bulk appends (AppendRows /
/// AppendUninitialized): one growth check and one contiguous copy per
/// operator call instead of one per tuple. A stray per-row append is a
/// quiet O(rows) regression the benchmarks only catch at full size.
void CheckNoPerRowAppend(const FileContext& ctx, std::vector<Finding>* findings) {
  const bool hot_path = ctx.path.find("src/mpc/") != std::string::npos ||
                        ctx.path.find("src/query/") != std::string::npos;
  if (!hot_path) return;
  static const std::regex kPerRowAppend(R"((\.|->)\s*AppendRow\s*\()");
  for (size_t i = 0; i < ctx.stripped.size(); ++i) {
    if (std::regex_search(ctx.stripped[i], kPerRowAppend)) {
      Emit(findings, ctx, i, kNoPerRowAppend,
           "per-row AppendRow on a hot path; count the output first and use "
           "AppendRows/AppendUninitialized for one bulk write");
    }
  }
}

}  // namespace

// ---- Comment/string stripping ----------------------------------------------

std::vector<std::string> StripForAnalysis(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary literals do not span lines in valid C++.
      if (state == State::kString || state == State::kChar) state = State::kCode;
      lines.push_back(current);
      current.clear();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
          current += ' ';  // keep token separation
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string literal: find the delimiter up to '('.
          size_t paren = content.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + content.substr(i + 2, paren - (i + 2)) + "\"";
            state = State::kRawString;
            current += "\"\"";
            i = paren;  // skip past the opening '('
          } else {
            current += c;
          }
        } else if (c == '"') {
          state = State::kString;
          current += '"';
        } else if (c == '\'') {
          state = State::kChar;
          current += '\'';
        } else {
          current += c;
        }
        break;
      case State::kLineComment:
        break;  // drop
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char (stays within the literal)
        } else if (c == '"') {
          state = State::kCode;
          current += '"';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current += '\'';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (!current.empty() || state != State::kCode) lines.push_back(current);
  return lines;
}

// ---- Public API ------------------------------------------------------------

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {kChargeChokePoint,
       "LoadTracker charging (*tracker*.Add) only in src/mpc/exchange.cc"},
      {kNoWallClock,
       "no wall-clock sources (system_clock, time(), __DATE__/__TIME__) outside "
       "telemetry timer internals"},
      {kNoUnseededRng,
       "no ambient RNG (random_device, rand(), unseeded mt19937); seeds derive via "
       "SplitSeed"},
      {kNoUnorderedIteration,
       "no range-for over unordered containers (implementation-defined order)"},
      {kAuditPairing,
       "mutex-declaring files carry clang thread-safety annotations"},
      {kIncludeHygiene, "headers include what they use from util/"},
      {kNoPerRowAppend,
       "no per-row Relation::AppendRow in the src/mpc/ and src/query/ hot paths; "
       "bulk AppendRows/AppendUninitialized only"},
  };
  return kRules;
}

bool IsRule(const std::string& name) {
  for (const RuleInfo& rule : Rules()) {
    if (rule.name == name) return true;
  }
  return false;
}

std::vector<Finding> LintContent(const std::string& path, const std::string& content,
                                 const std::vector<std::string>& rules) {
  const FileContext ctx = MakeContext(path, content);
  auto enabled = [&rules](const char* rule) {
    return rules.empty() || std::find(rules.begin(), rules.end(), rule) != rules.end();
  };
  std::vector<Finding> findings;
  if (enabled(kChargeChokePoint)) CheckChargeChokePoint(ctx, &findings);
  if (enabled(kNoWallClock)) CheckNoWallClock(ctx, &findings);
  if (enabled(kNoUnseededRng)) CheckNoUnseededRng(ctx, &findings);
  if (enabled(kNoUnorderedIteration)) CheckNoUnorderedIteration(ctx, &findings);
  if (enabled(kAuditPairing)) CheckAuditPairing(ctx, &findings);
  if (enabled(kIncludeHygiene)) CheckIncludeHygiene(ctx, &findings);
  if (enabled(kNoPerRowAppend)) CheckNoPerRowAppend(ctx, &findings);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

std::vector<Finding> LintFile(const std::string& path, const std::vector<std::string>& rules) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return {Finding{path, 0, "io-error", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return LintContent(path, buffer.str(), rules);
}

std::vector<std::string> CollectSources(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> sources;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (fs::recursive_directory_iterator it(path, ec), end; it != end && !ec;
         it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string file = it->path().generic_string();
      if (EndsWith(file, ".h") || EndsWith(file, ".cc")) sources.push_back(file);
    }
  } else if (fs::is_regular_file(path, ec)) {
    if (EndsWith(path, ".h") || EndsWith(path, ".cc")) sources.push_back(path);
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

}  // namespace cplint
}  // namespace coverpack
