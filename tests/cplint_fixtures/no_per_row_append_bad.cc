// cplint fixture: per-row appends on a hot path (linted as src/mpc/...).
void EmitMatches(const Relation& input, const std::vector<size_t>& matches,
                 Relation* output) {
  for (size_t i : matches) {
    output->AppendRow(input.row(i));
  }
}
void EmitConstant(Relation& output, Value value) {
  output.AppendRow({value});
}
