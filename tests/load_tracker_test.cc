/// Edge-case coverage for LoadTracker: offset merges, non-surjective
/// mapped merges, zero-amount adds, out-of-range reads — the accounting
/// corners where a silent bug would corrupt every bench downstream.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mpc/load_tracker.h"

namespace coverpack {
namespace {

TEST(LoadTrackerEdgeTest, MergeWithNonzeroRoundOffsetShiftsRounds) {
  LoadTracker parent(4);
  parent.Add(0, 0, 5);
  LoadTracker child(2);
  child.Add(0, 0, 3);
  child.Add(2, 1, 4);

  parent.Merge(child, /*server_offset=*/2, /*round_offset=*/3);

  // Child round r lands at parent round 3 + r; earlier rounds untouched.
  EXPECT_EQ(parent.At(0, 0), 5u);
  EXPECT_EQ(parent.At(3, 2), 3u);
  EXPECT_EQ(parent.At(5, 3), 4u);
  EXPECT_EQ(parent.num_rounds(), 6u);
  EXPECT_EQ(parent.TotalCommunication(), 12u);
}

TEST(LoadTrackerEdgeTest, MergeAtBothOffsetsPreservesTotals) {
  LoadTracker parent(8);
  parent.Add(1, 7, 11);
  LoadTracker child(3);
  child.Add(0, 0, 1);
  child.Add(0, 2, 2);
  child.Add(1, 1, 3);
  const uint64_t before = parent.TotalCommunication();

  parent.Merge(child, /*server_offset=*/5, /*round_offset=*/2);

  EXPECT_EQ(parent.TotalCommunication(), before + child.TotalCommunication());
  EXPECT_EQ(parent.At(2, 5), 1u);
  EXPECT_EQ(parent.At(2, 7), 2u);
  EXPECT_EQ(parent.At(3, 6), 3u);
}

TEST(LoadTrackerEdgeTest, MergeMappedNonSurjectiveSkipsUnmappedServers) {
  // Only physical servers 0 and 1 map into the child; everyone else maps
  // out of range and must receive nothing.
  LoadTracker parent(6);
  LoadTracker child(2);
  child.Add(0, 0, 10);
  child.Add(0, 1, 20);

  parent.MergeMapped(child, /*round_offset=*/0,
                     [](uint32_t s) { return s < 2 ? s : uint32_t{1000}; });

  EXPECT_EQ(parent.At(0, 0), 10u);
  EXPECT_EQ(parent.At(0, 1), 20u);
  for (uint32_t s = 2; s < 6; ++s) EXPECT_EQ(parent.At(0, s), 0u) << "server " << s;
  EXPECT_EQ(parent.TotalCommunication(), 30u);
}

TEST(LoadTrackerEdgeTest, MergeMappedUnmappedChildServerLosesItsColumn) {
  // The map only ever selects child server 0; child server 1's loads are
  // (by contract) not replicated anywhere.
  LoadTracker parent(3);
  LoadTracker child(2);
  child.Add(0, 0, 7);
  child.Add(0, 1, 99);

  parent.MergeMapped(child, /*round_offset=*/1, [](uint32_t) { return uint32_t{0}; });

  // Replication factor 3 for child column 0, zero for column 1.
  for (uint32_t s = 0; s < 3; ++s) EXPECT_EQ(parent.At(1, s), 7u);
  EXPECT_EQ(parent.TotalCommunication(), 21u);
}

TEST(LoadTrackerEdgeTest, MergeMappedWithRoundOffsetAlignsChildRounds) {
  LoadTracker parent(2);
  LoadTracker child(1);
  child.Add(0, 0, 4);
  child.Add(1, 0, 6);

  parent.MergeMapped(child, /*round_offset=*/2, [](uint32_t) { return uint32_t{0}; });

  EXPECT_EQ(parent.At(0, 0), 0u);
  EXPECT_EQ(parent.At(2, 0), 4u);
  EXPECT_EQ(parent.At(3, 1), 6u);
  EXPECT_EQ(parent.num_rounds(), 4u);
}

TEST(LoadTrackerEdgeTest, AddZeroAmountStillMaterializesTheRound) {
  LoadTracker tracker(2);
  tracker.Add(3, 1, 0);
  // Rounds grow on demand even for a zero charge; the cell itself is 0.
  EXPECT_EQ(tracker.num_rounds(), 4u);
  EXPECT_EQ(tracker.At(3, 1), 0u);
  EXPECT_EQ(tracker.MaxLoad(), 0u);
  EXPECT_EQ(tracker.TotalCommunication(), 0u);
}

TEST(LoadTrackerEdgeTest, AtOutOfRangeRoundIsZeroNotAbort) {
  LoadTracker tracker(2);
  tracker.Add(0, 0, 1);
  EXPECT_EQ(tracker.At(1, 0), 0u);
  EXPECT_EQ(tracker.At(1000000, 1), 0u);
  EXPECT_EQ(tracker.MaxLoadOfRound(17), 0u);
}

TEST(LoadTrackerEdgeTest, MergeEmptyChildIsNoOp) {
  LoadTracker parent(4);
  parent.Add(0, 2, 9);
  LoadTracker child(2);

  parent.Merge(child, 0, 0);
  parent.MergeMapped(child, 0, [](uint32_t s) { return s; });

  EXPECT_EQ(parent.num_rounds(), 1u);
  EXPECT_EQ(parent.TotalCommunication(), 9u);
}

TEST(LoadTrackerDeathTest, AddBeyondServerCountAborts) {
  LoadTracker tracker(2);
  EXPECT_DEATH(tracker.Add(0, 2, 1), "server < num_servers_");
}

TEST(LoadTrackerDeathTest, MergeChildLargerThanParentRangeAborts) {
  LoadTracker parent(4);
  LoadTracker child(3);
  child.Add(0, 0, 1);
  EXPECT_DEATH(parent.Merge(child, /*server_offset=*/2, 0), "check failed");
}

}  // namespace
}  // namespace coverpack
