#include "planner/stats.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace planner {

namespace {

/// Smallest log2 domain (>= kMinLog2Domain) containing `value`.
uint32_t Log2DomainFor(Value value) {
  uint32_t log2_domain = kMinLog2Domain;
  while (log2_domain < 64 && (value >> log2_domain) != 0) ++log2_domain;
  return log2_domain;
}

constexpr uint32_t kLog2Buckets = 4;
static_assert(kHistogramBuckets == (1u << kLog2Buckets));
static_assert(kMinLog2Domain >= kLog2Buckets);

}  // namespace

void ColumnHistogram::WidenTo(uint32_t target_log2_domain) {
  CP_CHECK_LE(target_log2_domain, 64u);
  while (log2_domain < target_log2_domain) {
    // One doubling: narrow buckets 2i and 2i+1 tile exactly wide bucket i
    // (both domains are powers of two with the same bucket count), so the
    // fold is exact — no row is attributed to a different value range.
    std::array<uint64_t, kHistogramBuckets> folded{};
    for (uint32_t i = 0; i < kHistogramBuckets / 2; ++i) {
      folded[i] = buckets[2 * i] + buckets[2 * i + 1];
    }
    buckets = folded;
    ++log2_domain;
  }
}

void ColumnHistogram::Add(Value value) {
  WidenTo(Log2DomainFor(value));
  buckets[value >> (log2_domain - kLog2Buckets)] += 1;
  rows += 1;
  max_value = std::max(max_value, value);
}

uint64_t ColumnHistogram::Digest() const {
  uint64_t h = HashCombine(log2_domain, rows);
  h = HashCombine(h, max_value);
  for (uint64_t bucket : buckets) h = HashCombine(h, bucket);
  return h;
}

ColumnHistogram MergeHistograms(const ColumnHistogram& a, const ColumnHistogram& b) {
  ColumnHistogram merged = a;
  ColumnHistogram widened = b;
  const uint32_t target = std::max(a.log2_domain, b.log2_domain);
  merged.WidenTo(target);
  widened.WidenTo(target);
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    merged.buckets[i] += widened.buckets[i];
  }
  merged.rows += widened.rows;
  if (a.rows == 0) {
    merged.max_value = widened.max_value;
  } else if (widened.rows > 0) {
    merged.max_value = std::max(a.max_value, widened.max_value);
  }
  return merged;
}

DegreeMap MergeDegreeMaps(const DegreeMap& a, const DegreeMap& b) {
  DegreeMap merged = a;
  for (const auto& [value, count] : b) merged[value] += count;
  return merged;
}

uint64_t ColumnStats::Digest() const {
  uint64_t h = HashCombine(rows, distinct);
  h = HashCombine(h, max_degree);
  return HashCombine(h, histogram.Digest());
}

const ColumnStats& RelationStats::ColumnFor(AttrId attr) const {
  for (const ColumnStats& column : columns) {
    if (column.attr == attr) return column;
  }
  CP_CHECK(false) << "no stats for attribute " << attr;
  return columns.front();  // unreachable
}

uint64_t RelationStats::Digest() const {
  std::vector<uint64_t> digests;
  digests.reserve(columns.size());
  for (const ColumnStats& column : columns) digests.push_back(column.Digest());
  // Sorted: the digest must not depend on attribute order, so isomorphic
  // relations under attribute renaming agree.
  std::sort(digests.begin(), digests.end());
  return HashCombine(rows, HashVector(digests));
}

std::vector<uint64_t> StatsSnapshot::RelationSizes() const {
  std::vector<uint64_t> sizes;
  sizes.reserve(relations.size());
  for (const RelationStats& relation : relations) sizes.push_back(relation.rows);
  return sizes;
}

std::string StatsSnapshot::ToString(const Hypergraph& query) const {
  std::ostringstream out;
  for (size_t e = 0; e < relations.size(); ++e) {
    const RelationStats& relation = relations[e];
    out << query.edge(static_cast<EdgeId>(e)).name << "[rows=" << relation.rows << "]";
    for (const ColumnStats& column : relation.columns) {
      out << " " << query.attr_name(column.attr) << "(d=" << column.distinct
          << ",max=" << column.max_degree << ")";
    }
    out << "\n";
  }
  return out.str();
}

RelationStats BuildRelationStats(const Relation& relation) {
  RelationStats stats;
  stats.rows = relation.size();
  const std::vector<AttrId> attrs = relation.attrs().ToVector();
  stats.columns.resize(attrs.size());

  constexpr size_t kGrain = 1024;
  const size_t shards = ThreadPool::NumShards(0, relation.size(), kGrain);
  // Per-shard accumulation, merged in ascending shard order: decomposition
  // depends only on (rows, grain), so the result is thread-count-invariant.
  std::vector<std::vector<DegreeMap>> shard_degrees(shards);
  std::vector<std::vector<ColumnHistogram>> shard_histograms(shards);
  ThreadPool::Global().ParallelForShards(
      0, relation.size(), kGrain,
      [&](size_t begin, size_t end, size_t shard) {
        std::vector<DegreeMap> degrees(attrs.size());
        std::vector<ColumnHistogram> histograms(attrs.size());
        for (size_t i = begin; i < end; ++i) {
          const std::span<const Value> row = relation.row(i);
          for (size_t c = 0; c < attrs.size(); ++c) {
            degrees[c][row[c]] += 1;
            histograms[c].Add(row[c]);
          }
        }
        shard_degrees[shard] = std::move(degrees);
        shard_histograms[shard] = std::move(histograms);
      });

  for (size_t c = 0; c < attrs.size(); ++c) {
    DegreeMap degrees;
    ColumnHistogram histogram;
    for (size_t shard = 0; shard < shards; ++shard) {
      degrees = MergeDegreeMaps(degrees, shard_degrees[shard][c]);
      histogram = MergeHistograms(histogram, shard_histograms[shard][c]);
    }
    ColumnStats& column = stats.columns[c];
    column.attr = attrs[c];
    column.rows = relation.size();
    column.distinct = degrees.size();
    for (const auto& [value, count] : degrees) {
      column.max_degree = std::max(column.max_degree, count);
    }
    column.histogram = histogram;
  }
  return stats;
}

StatsSnapshot BuildStatsSnapshot(const Hypergraph& query, const Instance& instance) {
  CP_CHECK_EQ(instance.num_relations(), query.num_edges());
  StatsSnapshot snapshot;
  snapshot.relations.reserve(instance.num_relations());
  for (EdgeId e = 0; e < query.num_edges(); ++e) {
    snapshot.relations.push_back(BuildRelationStats(instance[e]));
    snapshot.max_relation_rows =
        std::max(snapshot.max_relation_rows, snapshot.relations.back().rows);
    snapshot.total_rows += snapshot.relations.back().rows;
  }
  return snapshot;
}

uint64_t SnapshotSignature(const std::vector<uint64_t>& edge_colors,
                           const StatsSnapshot& snapshot, uint64_t base_signature) {
  CP_CHECK_EQ(edge_colors.size(), snapshot.relations.size());
  // (canonical edge color, relation content digest) pairs, sorted: two
  // isomorphic instances place equal digests on equal color classes no
  // matter how their edges were ordered or named.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  pairs.reserve(edge_colors.size());
  for (size_t e = 0; e < edge_colors.size(); ++e) {
    pairs.emplace_back(edge_colors[e], snapshot.relations[e].Digest());
  }
  std::sort(pairs.begin(), pairs.end());
  uint64_t h = base_signature;
  for (const auto& [color, digest] : pairs) {
    h = HashCombine(HashCombine(h, color), digest);
  }
  return h;
}

}  // namespace planner
}  // namespace coverpack
