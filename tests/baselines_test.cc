#include <gtest/gtest.h>

#include "core/one_round.h"
#include "core/yannakakis.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "relation/oracle.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

class YannakakisCorrectness
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(YannakakisCorrectness, MatchesOracle) {
  auto [text, seed] = GetParam();
  Hypergraph q = ParseQuery(text);
  Rng rng(seed);
  Instance instance = workload::UniformInstance(q, 100, 10, &rng);
  YannakakisResult run = ComputeYannakakis(q, instance, 16);
  Relation expected = GenericJoin(q, instance);
  EXPECT_EQ(run.output_count, expected.size());
  EXPECT_TRUE(run.results.SameContentAs(expected));
  EXPECT_GT(run.rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, YannakakisCorrectness,
    ::testing::Combine(::testing::Values("R1(A,B), R2(B,C), R3(C,D)",
                                         "R1(A,B), R2(A,C), R3(A,D)",
                                         "R0(A,B,C), R1(A,B,D), R2(B,C,E), R3(A,C,F)",
                                         "R1(A,B), R2(B,C), R3(X,Y)"),
                       ::testing::Values(1u, 2u, 3u)));

TEST(YannakakisTest, OutputDrivenLoad) {
  // A high-output instance drags Yannakakis' load toward OUT/p while its
  // input is tiny: the weakness Table 1 documents.
  Hypergraph q = catalog::Line3();
  uint64_t n = 200;
  Instance instance(q);
  // R1 = {*} x sqrt(n) B-values, R2 = full bipartite on sqrt(n) x sqrt(n).
  uint64_t side = 14;
  for (Value a = 0; a < side; ++a) {
    for (Value b = 0; b < side; ++b) {
      instance[0].AppendRow({a, b});
      instance[1].AppendRow({a, b});
      instance[2].AppendRow({a, b});
    }
  }
  YannakakisResult run = ComputeYannakakis(q, instance, 4);
  // OUT = side^4; the communicated intermediate R1 |><| R2 has side^3 rows,
  // so the load must be at least side^3 / p — far above the N/p of the
  // paper's algorithm on the same instance.
  uint64_t out = side * side * side * side;
  EXPECT_EQ(run.output_count, out);
  EXPECT_GE(run.max_load, side * side * side / 4);
  (void)n;
}

class OneRoundCorrectness
    : public ::testing::TestWithParam<std::tuple<const char*, double, uint64_t>> {};

TEST_P(OneRoundCorrectness, SkewAwareMatchesOracle) {
  auto [text, skew, seed] = GetParam();
  Hypergraph q = ParseQuery(text);
  Rng rng(seed);
  Instance instance = skew == 0.0 ? workload::UniformInstance(q, 100, 10, &rng)
                                  : workload::ZipfInstance(q, 100, 16, skew, &rng);
  OneRoundOptions options;
  options.collect = true;
  OneRoundResult run = ComputeOneRoundSkewAware(q, instance, 32, options);
  Relation expected = GenericJoin(q, instance);
  EXPECT_EQ(run.output_count, expected.size());
  EXPECT_TRUE(run.results.SameContentAs(expected));
  EXPECT_EQ(run.rounds, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OneRoundCorrectness,
    ::testing::Combine(::testing::Values("R1(A,B), R2(B,C), R3(C,A)",
                                         "R1(A,B), R2(B,C), R3(C,D)",
                                         "R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F)"),
                       ::testing::Values(0.0, 1.2), ::testing::Values(1u, 5u)));

TEST(OneRoundTest, SkewAwareBeatsVanillaOnHeavyHitter) {
  // The motivating skew scenario: vanilla hypercube funnels a heavy value
  // into one server; the skew-aware variant splits it off.
  Hypergraph q = catalog::Triangle();
  uint64_t n = 3000;
  Instance instance(q);
  for (Value v = 0; v < n; ++v) {
    instance[0].AppendRow({0, v});          // A=0 heavy in R1
    instance[1].AppendRow({v, v % 50});
    instance[2].AppendRow({v % 50, 0});     // A=0 heavy in R3
  }
  uint32_t p = 64;
  OneRoundResult vanilla = ComputeOneRoundVanilla(q, instance, p, /*collect=*/false);
  OneRoundOptions options;
  options.collect = false;
  OneRoundResult aware = ComputeOneRoundSkewAware(q, instance, p, options);
  EXPECT_LT(aware.max_load, vanilla.max_load);
}

TEST(OneRoundTest, VanillaMatchesOracleOnUniform) {
  Hypergraph q = catalog::Triangle();
  Rng rng(11);
  Instance instance = workload::UniformInstance(q, 90, 9, &rng);
  OneRoundResult run = ComputeOneRoundVanilla(q, instance, 27, /*collect=*/true);
  Relation expected = GenericJoin(q, instance);
  EXPECT_EQ(run.output_count, expected.size());
  EXPECT_TRUE(run.results.SameContentAs(expected));
}

}  // namespace
}  // namespace coverpack
