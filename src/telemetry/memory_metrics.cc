#include "telemetry/memory_metrics.h"

#include "util/arena.h"

namespace coverpack {
namespace telemetry {

void SnapshotMemoryTelemetryInto(MetricsRegistry* registry) {
  const MemoryTelemetrySnapshot snapshot = MemoryTelemetry::Snapshot();
  if (snapshot.scopes == 0) return;
  registry->AddCounter("memory.arena_scopes", snapshot.scopes);
  registry->AddCounter("memory.arena_bytes_total", snapshot.bytes_total);
  registry->SetGauge("memory.arena_high_water_bytes",
                     static_cast<double>(snapshot.high_water_bytes));
}

}  // namespace telemetry
}  // namespace coverpack
