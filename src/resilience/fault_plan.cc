#include "resilience/fault_plan.h"

#include "util/hash.h"

namespace coverpack {
namespace resilience {

namespace {

/// Distinct stream tags keep the decision families independent: a crash
/// decision never correlates with a drop decision at the same coordinates.
enum StreamTag : uint64_t {
  kCrashStream = 0x43524153u,      // "CRAS"
  kDropStream = 0x44524F50u,       // "DROP"
  kDuplicateStream = 0x44555043u,  // "DUPC"
  kStragglerStream = 0x53545247u,  // "STRG"
};

/// Maps a mixed hash to a uniform double in [0, 1).
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// True with probability `rate` for the decision stream `h`.
bool Decide(uint64_t h, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  return ToUnit(MixHash(h)) < rate;
}

}  // namespace

uint64_t FaultPlan::ExchangeKey(uint32_t round, const char* label, uint64_t planned,
                                uint64_t recorded, uint32_t num_servers) {
  uint64_t h = HashCombine(0x45584348u /* "EXCH" */, round);
  for (const char* c = label; *c != '\0'; ++c) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(*c)));
  }
  h = HashCombine(h, planned);
  h = HashCombine(h, recorded);
  h = HashCombine(h, num_servers);
  return h;
}

bool FaultPlan::CrashesDelivery(uint64_t key, uint32_t attempt, uint32_t server) const {
  uint64_t h = HashCombine(HashCombine(HashCombine(spec_.seed, kCrashStream), key),
                           (uint64_t{attempt} << 32) | server);
  return Decide(h, spec_.crash_rate);
}

bool FaultPlan::DropsRow(uint64_t key, uint32_t attempt, uint64_t source, uint32_t server,
                         uint64_t row) const {
  uint64_t h = HashCombine(HashCombine(HashCombine(spec_.seed, kDropStream), key),
                           (uint64_t{attempt} << 32) | server);
  h = HashCombine(HashCombine(h, source), row);
  return Decide(h, spec_.drop_rate);
}

bool FaultPlan::DuplicatesRow(uint64_t key, uint32_t attempt, uint64_t source,
                              uint32_t server, uint64_t row) const {
  uint64_t h = HashCombine(HashCombine(HashCombine(spec_.seed, kDuplicateStream), key),
                           (uint64_t{attempt} << 32) | server);
  h = HashCombine(HashCombine(h, source), row);
  return Decide(h, spec_.duplicate_rate);
}

double FaultPlan::SpeedOf(uint32_t round, uint32_t server) const {
  if (spec_.straggler_rate <= 0.0 || spec_.straggler_severity <= 1.0) return 1.0;
  uint64_t h = HashCombine(HashCombine(spec_.seed, kStragglerStream),
                           (uint64_t{round} << 32) | server);
  return Decide(h, spec_.straggler_rate) ? 1.0 / spec_.straggler_severity : 1.0;
}

}  // namespace resilience
}  // namespace coverpack
