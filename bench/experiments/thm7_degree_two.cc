/// \file thm7_degree_two.cc
/// \brief Validates Theorem 7: the edge-packing lower bound
/// Omega(N / p^(1/tau*)) for every edge-packing-provable degree-two join.
///
/// For each example join we build the witness-driven hard instance, search
/// the per-server emit capacity J(L), verify J(L) <= 2 L^{tau*} N^{rho*-tau*}
/// across seeds (the Chernoff concentration of Step 2), and report the
/// resulting load bound next to the AGM-based one.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "experiments/runners.h"
#include "lowerbound/emit_capacity.h"
#include "lowerbound/hard_instance.h"
#include "query/catalog.h"

namespace coverpack {
namespace bench {

namespace {

struct DegreeTwoExample {
  std::string name;
  Hypergraph query;
  PackingProvability witness;
  uint64_t n;
};

}  // namespace

telemetry::RunReport RunThm7DegreeTwo(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  std::vector<DegreeTwoExample> examples;
  {
    Hypergraph box = catalog::BoxJoin();
    examples.push_back({"box_join", box, lowerbound::BoxJoinWitness(box), 32768});
  }
  {
    Hypergraph rotated = catalog::PackingProvableSixEdges();
    // Same witness shape as the box join (the bridges are rotated).
    VertexWeighting x;
    x.weights.assign(rotated.num_attrs(), Rational(0));
    for (const char* name : {"A", "B", "C"}) {
      x.weights[*rotated.FindAttribute(name)] = Rational(1, 3);
    }
    for (const char* name : {"D", "E", "F"}) {
      x.weights[*rotated.FindAttribute(name)] = Rational(2, 3);
    }
    x.total = Rational(3);
    PackingProvability witness = AnalyzeWithCover(rotated, x);
    examples.push_back({"rotated_bridges", rotated, witness, 32768});
  }
  {
    Hypergraph c6 = catalog::Cycle(6);
    examples.push_back({"even_cycle_C6", c6, lowerbound::UniformHalfWitness(c6), 16384});
  }
  report.AddParam("p", uint64_t{512});
  report.AddParam("seeds_per_example", uint64_t{5});

  bool all_ok = true;
  for (const auto& example : examples) {
    if (!example.witness.provable) {
      std::cout << example.name << ": witness rejected: " << example.witness.reason << "\n";
      all_ok = false;
      continue;
    }
    std::cout << "--- " << example.name << " (rho* = " << example.witness.rho_star
              << ", tau* = " << example.witness.tau_star << ")\n";
    uint32_t p = 512;
    double tau = example.witness.tau_star.ToDouble();

    TablePrinter table({"seed", "N", "L", "J(L) measured", "cap 2L^t N^(r-t)",
                        "measured/cap"});
    bool concentration = true;
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      telemetry::MetricsRegistry::ScopedTimer timer(&report.metrics,
                                                    "emit_capacity/" + example.name);
      lowerbound::HardInstance hard = lowerbound::DegreeTwoHardInstance(
          example.query, example.witness, example.n, ExperimentSeed(seed));
      uint64_t load = static_cast<uint64_t>(static_cast<double>(hard.n) /
                                            std::pow(static_cast<double>(p), 1.0 / tau));
      lowerbound::EmitCapacityResult r =
          lowerbound::SearchEmitCapacity(example.query, hard, example.witness, load, 100);
      report.metrics.AddCounter("shapes_searched", r.shapes_searched);
      double ratio = static_cast<double>(r.measured) / r.predicted_cap;
      table.AddRow({std::to_string(seed), std::to_string(hard.n), std::to_string(load),
                    std::to_string(r.measured), FormatDouble(r.predicted_cap, 0),
                    FormatDouble(ratio, 3)});
      if (ratio > 1.0 || ratio < 1.0 / 64.0) concentration = false;
    }
    table.Print(std::cout);

    double new_bound = lowerbound::CountingArgumentLoadBound(example.n, p,
                                                             example.witness.tau_star);
    double agm_bound = static_cast<double>(example.n) /
                       std::pow(static_cast<double>(p),
                                1.0 / example.witness.rho_star.ToDouble());
    std::cout << "load bound at p=512: tau*-based " << FormatDouble(new_bound, 1)
              << " vs rho*-based " << FormatDouble(agm_bound, 1) << " ("
              << (new_bound >= agm_bound ? "stronger-or-equal" : "weaker") << ")\n\n";
    all_ok = all_ok && concentration && new_bound + 1e-9 >= agm_bound * 0.5;
  }

  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
