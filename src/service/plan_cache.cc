#include "service/plan_cache.h"

#include "util/logging.h"

namespace coverpack {
namespace service {

PlanCacheStats PlanCacheStats::Since(const PlanCacheStats& earlier) const {
  PlanCacheStats delta = *this;
  delta.hits -= earlier.hits;
  delta.misses -= earlier.misses;
  delta.insertions -= earlier.insertions;
  delta.evictions -= earlier.evictions;
  delta.collisions -= earlier.collisions;
  return delta;
}

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  CP_CHECK(capacity_ > 0) << "PlanCache needs a positive capacity";
}

std::optional<CachedPlan> PlanCache::Lookup(const PlanCacheKey& key,
                                            const std::string& canonical_form) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->second.canonical_form != canonical_form) {
    // A 64-bit shape-hash collision between structurally distinct queries:
    // never serve the foreign plan. The entry stays (its own query still
    // hits); the colliding query just plans fresh every time.
    ++stats_.collisions;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void PlanCache::Insert(const PlanCacheKey& key, CachedPlan plan) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.size = lru_.size();
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  ++stats_.insertions;
  stats_.size = lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lock(mutex_);
  PlanCacheStats snapshot = stats_;
  snapshot.size = lru_.size();
  snapshot.capacity = capacity_;
  return snapshot;
}

size_t PlanCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

void PlanCache::Clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = PlanCacheStats{};
}

}  // namespace service
}  // namespace coverpack
