#include "telemetry/cluster_metrics.h"

#include <vector>

#include "cluster/cluster_telemetry.h"

namespace coverpack {
namespace telemetry {

void SnapshotClusterTelemetryInto(MetricsRegistry* registry) {
  static const std::vector<double> kMigrationBounds = {1.0, 10.0, 100.0, 1000.0,
                                                       1e4, 1e5,  1e6,   1e7};
  const cluster::ClusterTelemetrySnapshot snapshot = cluster::ClusterTelemetry::Snapshot();
  if (snapshot.runs == 0) return;
  registry->AddCounter("cluster.runs", snapshot.runs);
  registry->AddCounter("cluster.migrations", snapshot.migrations);
  registry->AddCounter("cluster.servers_joined", snapshot.servers_joined);
  registry->AddCounter("cluster.servers_left", snapshot.servers_left);
  registry->AddCounter("cluster.tuples_migrated", snapshot.tuples_migrated);
  registry->AddCounter("cluster.tuples_from_leavers", snapshot.tuples_from_leavers);
  registry->AddCounter("cluster.tuples_to_joiners", snapshot.tuples_to_joiners);
  registry->AddCounter("cluster.checkpoints_captured", snapshot.checkpoints_captured);
  registry->AddCounter("cluster.checkpoint_tuples", snapshot.checkpoint_tuples);
  registry->SetGauge("cluster.max_single_migration",
                     static_cast<double>(snapshot.max_single_migration));
  Histogram& migrated =
      registry->GetHistogram("cluster.migration_tuples", kMigrationBounds);
  for (double v : snapshot.migration_samples) migrated.Observe(v);
}

}  // namespace telemetry
}  // namespace coverpack
