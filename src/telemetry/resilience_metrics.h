/// \file resilience_metrics.h
/// \brief Bridges the resilience layer's recovery ledger into a
/// MetricsRegistry (and therefore into RunReport / BENCH_results.json).
///
/// Same shape as exchange_metrics.h: cp_telemetry links cp_resilience, the
/// resilience layer exposes a plain-struct snapshot, and this translates
/// it into the "fault.*" / "recovery.*" metric keys documented in
/// EXPERIMENTS.md.

#ifndef COVERPACK_TELEMETRY_RESILIENCE_METRICS_H_
#define COVERPACK_TELEMETRY_RESILIENCE_METRICS_H_

#include "telemetry/metrics.h"

namespace coverpack {
namespace telemetry {

/// Writes the current ResilienceTelemetry ledger into `registry`: fault.*
/// counters (exchanges injected/faulted, crashes, rows dropped/duplicated)
/// and recovery.* counters/gauge/histograms (retries, full reruns, backoff
/// units, tuples resent with per-cause splits, checkpoint accounting, max
/// single resend, attempts and resend-volume distributions). No-op when no
/// exchange ran under fault injection since the last
/// ResilienceTelemetry::Reset(), so fault-free reports keep their schema
/// byte-identical. Call from the thread that owns `registry`.
void SnapshotResilienceTelemetryInto(MetricsRegistry* registry);

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_RESILIENCE_METRICS_H_
