#include "cluster/routing.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "cluster/cluster_profile.h"
#include "util/hash.h"
#include "util/logging.h"

namespace coverpack {
namespace cluster {

SpeedWeightedRouter::SpeedWeightedRouter(std::vector<uint32_t> slots,
                                         std::vector<double> speeds)
    : slots_(std::move(slots)), speeds_(std::move(speeds)) {
  CP_CHECK(!slots_.empty());
  CP_CHECK_EQ(slots_.size(), speeds_.size());
  prefix_.reserve(speeds_.size());
  double total = 0.0;
  for (size_t i = 0; i < speeds_.size(); ++i) {
    CP_CHECK(speeds_[i] > 0.0);
    if (i > 0) CP_CHECK_GT(slots_[i], slots_[i - 1]);
    total += speeds_[i];
    prefix_.push_back(total);
  }
}

uint32_t SpeedWeightedRouter::PickByHash(uint64_t hash) const {
  // Map the hash's high 53 bits to a point in [0, total_weight); the slot
  // whose prefix interval contains it receives the row. Pure arithmetic on
  // the hash: identical at any thread count.
  const double unit = static_cast<double>(hash >> 11) * 0x1.0p-53;
  const double point = unit * prefix_.back();
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), point);
  const size_t index = std::min<size_t>(it - prefix_.begin(), slots_.size() - 1);
  return slots_[index];
}

std::vector<uint64_t> SpeedWeightedRouter::ScatterTargets(uint64_t total_rows) const {
  return ProportionalShares(speeds_, total_rows);
}

size_t AddWeightedScatter(mpc::ExchangePlan* plan, const Relation& source,
                          const SpeedWeightedRouter& router, bool record) {
  const std::vector<uint64_t> targets = router.ScatterTargets(source.size());
  // Cumulative block boundaries: rows [cuts[b-1], cuts[b]) -> slots()[b].
  std::vector<uint64_t> cuts(targets.size());
  uint64_t running = 0;
  for (size_t b = 0; b < targets.size(); ++b) {
    running += targets[b];
    cuts[b] = running;
  }
  const std::vector<uint32_t> slots = router.slots();
  return plan->AddSource(source, record, [cuts, slots](size_t i, auto emit) {
    const auto it = std::upper_bound(cuts.begin(), cuts.end(), static_cast<uint64_t>(i));
    emit(slots[it - cuts.begin()]);
  });
}

size_t AddWeightedHashPartition(mpc::ExchangePlan* plan, const Relation& source,
                                const std::vector<uint32_t>& key_columns, uint64_t salt,
                                const SpeedWeightedRouter& router, bool record) {
  const SpeedWeightedRouter* r = &router;
  return plan->AddSource(source, record,
                         [r, salt, &key_columns, &source](size_t i, auto emit) {
                           uint64_t h = HashCombine(0x9E3779B97F4A7C15ull, salt);
                           const auto row = source.row(i);
                           for (uint32_t c : key_columns) h = HashCombine(h, row[c]);
                           emit(r->PickByHash(MixHash(h)));
                         });
}

FoldedMakespan PlacementMakespan(const LoadTracker& virtual_tracker,
                                 const std::vector<uint32_t>& assignment,
                                 const std::vector<double>& speeds) {
  CP_CHECK_EQ(assignment.size(), virtual_tracker.num_servers());
  FoldedMakespan result;
  result.round_makespans.reserve(virtual_tracker.num_rounds());
  std::vector<double> folded(speeds.size());
  for (uint32_t r = 0; r < virtual_tracker.num_rounds(); ++r) {
    std::fill(folded.begin(), folded.end(), 0.0);
    for (uint32_t v = 0; v < virtual_tracker.num_servers(); ++v) {
      const uint32_t s = assignment[v];
      CP_DCHECK(s < speeds.size());
      folded[s] += static_cast<double>(virtual_tracker.At(r, v));
    }
    double round_makespan = 0.0;
    for (size_t s = 0; s < folded.size(); ++s) {
      round_makespan = std::max(round_makespan, folded[s] / speeds[s]);
    }
    result.round_makespans.push_back(round_makespan);
    result.makespan += round_makespan;
  }
  return result;
}

std::vector<uint32_t> AssignVirtualServers(const std::vector<double>& virtual_total_loads,
                                           const std::vector<double>& speeds) {
  CP_CHECK(!speeds.empty());
  std::vector<size_t> order(virtual_total_loads.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return virtual_total_loads[a] > virtual_total_loads[b];
  });
  std::vector<double> assigned(speeds.size(), 0.0);
  std::vector<uint32_t> assignment(virtual_total_loads.size(), 0);
  for (size_t v : order) {
    uint32_t best = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (uint32_t s = 0; s < speeds.size(); ++s) {
      const double finish = (assigned[s] + virtual_total_loads[v]) / speeds[s];
      if (finish < best_finish) {
        best_finish = finish;
        best = s;
      }
    }
    assignment[v] = best;
    assigned[best] += virtual_total_loads[v];
  }
  return assignment;
}

PlacementChoice ChoosePlacement(const LoadTracker& virtual_tracker,
                                const std::vector<double>& speeds) {
  const uint32_t num_virtual = virtual_tracker.num_servers();
  std::vector<double> totals(num_virtual, 0.0);
  for (uint32_t r = 0; r < virtual_tracker.num_rounds(); ++r) {
    for (uint32_t v = 0; v < num_virtual; ++v) {
      totals[v] += static_cast<double>(virtual_tracker.At(r, v));
    }
  }
  PlacementChoice choice;
  choice.assignment = AssignVirtualServers(totals, speeds);
  const double lpt_makespan =
      PlacementMakespan(virtual_tracker, choice.assignment, speeds).makespan;
  choice.makespan = lpt_makespan;
  if (num_virtual == speeds.size()) {
    std::vector<uint32_t> identity(num_virtual);
    std::iota(identity.begin(), identity.end(), 0u);
    choice.identity_makespan =
        PlacementMakespan(virtual_tracker, identity, speeds).makespan;
    // The policy never does worse than speed-oblivious placement: identity
    // stays a candidate and wins ties.
    if (choice.identity_makespan < lpt_makespan) {
      choice.assignment = std::move(identity);
      choice.makespan = choice.identity_makespan;
    } else {
      choice.lpt_won = lpt_makespan < choice.identity_makespan;
    }
  } else {
    choice.identity_makespan = lpt_makespan;
    choice.lpt_won = false;
  }
  return choice;
}

}  // namespace cluster
}  // namespace coverpack
