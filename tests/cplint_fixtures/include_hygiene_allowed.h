// cplint fixture: a suppressed missing include.
#ifndef CPLINT_FIXTURE_INCLUDE_HYGIENE_ALLOWED_H_
#define CPLINT_FIXTURE_INCLUDE_HYGIENE_ALLOWED_H_

// cplint: allow(include-hygiene)
inline void Check(int x) { CP_CHECK(x > 0); }

#endif  // CPLINT_FIXTURE_INCLUDE_HYGIENE_ALLOWED_H_
