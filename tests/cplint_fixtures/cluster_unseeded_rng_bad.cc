// cplint fixture: migration planning driven by ambient randomness. In
// src/cluster/ this would let two runs of the same join/leave schedule
// pick different surplus-to-deficit moves, so migrated state could not be
// byte-diffed across thread counts and the crash-storm replay would
// diverge from the clean run.
#include <random>

unsigned PickDeficitSlot(unsigned num_deficits) {
  std::random_device entropy;
  std::mt19937_64 gen;
  return static_cast<unsigned>((gen() ^ entropy()) % num_deficits);
}

int JitterMigrationOrder() { return rand(); }
