/// \file catalog.h
/// \brief Named query families used throughout the paper and the benches.
///
/// Every query the paper mentions (Figures 1-7, examples in Sections 1-5)
/// has a constructor here so tests and benchmarks can refer to them by name.

#ifndef COVERPACK_QUERY_CATALOG_H_
#define COVERPACK_QUERY_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/hypergraph.h"

namespace coverpack {
namespace catalog {

/// Path join of k binary relations: R1(X0,X1), R2(X1,X2), ..., Rk(Xk-1,Xk).
/// rho* = ceil(k/2); the psi*/rho* gap grows with k (Section 1.4).
Hypergraph Path(uint32_t k);

/// Star join: R1(X0,X1), R2(X0,X2), ..., Rk(X0,Xk). r-hierarchical.
Hypergraph Star(uint32_t k);

/// Star-dual join of Section 1.3: R0(X1..Xk), R1(X1), ..., Rk(Xk).
/// rho* = 1, psi* = k; the 1-round vs multi-round gap is p^((k-1)/k).
Hypergraph StarDual(uint32_t k);

/// Cycle join of length k: R1(X1,X2), ..., Rk(Xk,X1). Cyclic for k >= 3;
/// degree-two. Even k has integral cover/packing, odd k half-integral.
Hypergraph Cycle(uint32_t k);

/// Loomis-Whitney join on n attributes: n relations, each omitting one
/// attribute. rho* = tau* = n/(n-1).
Hypergraph LoomisWhitney(uint32_t n);

/// Clique (tetrahedron-style) join: one binary relation per pair of the k
/// attributes. Triangle is Clique(3) == Cycle(3).
Hypergraph Clique(uint32_t k);

/// Triangle join R1(A,B), R2(B,C), R3(C,A).
Hypergraph Triangle();

/// The box join Q_box of Figure 2 / Theorem 6:
///   R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F).
/// rho* = 2 {R1,R2}, tau* = 3 {R3,R4,R5}; degree-two, no odd cycle;
/// edge-packing-provable with x_A=x_B=x_C=1/3, x_D=x_E=x_F=2/3.
Hypergraph BoxJoin();

/// The acyclic 8-relation query of Figure 4:
///   e0(A,B,C,H), e1(A,B,D), e2(B,C,E), e3(A,C,F), e4(A,B,H,J),
///   e5(A,H,I), e6(A,I,K), e7(A,I,G).
Hypergraph Figure4Query();

/// Section 1.3's two-round example: R1(A), R2(A,B), R3(B).
/// rho* = 1 {R2}, tau* = psi* = 2 {R1,R3}.
Hypergraph SemiJoinExample();

/// Line-3 join R1(A,B), R2(B,C), R3(C,D): acyclic but not r-hierarchical.
Hypergraph Line3();

/// The alpha-acyclic but not berge-acyclic example of Section 1.3:
///   R0(A,B,C), R1(A,B,D), R2(B,C,E), R3(A,C,F).
Hypergraph AlphaNotBerge();

/// A larger edge-packing-provable degree-two join in the style of Figure 7:
/// two ternary "hub" relations matched by three binary relations plus a
/// pendant 4-cycle. Constructed so every vertex has degree exactly two and
/// there is no odd cycle.
Hypergraph PackingProvableSixEdges();

/// Degree-two join formed by an even cycle of length 2k (same as Cycle(2k));
/// convenience wrapper used in Theorem 7 benches.
Hypergraph EvenCycle(uint32_t k);

/// A named catalog entry for table-driven tests and benches.
struct NamedQuery {
  std::string name;
  Hypergraph query;
};

/// The standard roster used by classification benches (Figure 1 / Figure 3).
std::vector<NamedQuery> StandardRoster();

}  // namespace catalog
}  // namespace coverpack

#endif  // COVERPACK_QUERY_CATALOG_H_
