#include "relation/relation.h"

#include <gtest/gtest.h>

#include "relation/operators.h"

namespace coverpack {
namespace {

Relation MakeAB() {
  Relation r(AttrSet::FromIds({0, 1}));  // A=0, B=1
  r.AppendRow({1, 10});
  r.AppendRow({1, 11});
  r.AppendRow({2, 10});
  return r;
}

TEST(RelationTest, RowAccessAndColumns) {
  Relation r = MakeAB();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.width(), 2u);
  EXPECT_EQ(r.ColumnOf(0), 0u);
  EXPECT_EQ(r.ColumnOf(1), 1u);
  EXPECT_EQ(r.At(1, 1), 11u);
}

TEST(RelationTest, ColumnOfSparseSchema) {
  Relation r(AttrSet::FromIds({2, 5, 9}));
  EXPECT_EQ(r.ColumnOf(2), 0u);
  EXPECT_EQ(r.ColumnOf(5), 1u);
  EXPECT_EQ(r.ColumnOf(9), 2u);
}

TEST(RelationTest, DedupAndCompare) {
  Relation r = MakeAB();
  r.AppendRow({1, 10});
  r.Dedup();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.SameContentAs(MakeAB()));
  Relation other = MakeAB();
  other.AppendRow({9, 9});
  EXPECT_FALSE(r.SameContentAs(other));
}

TEST(RelationTest, NullaryRelationCountsEmptyTuples) {
  // Regression: AppendRow({}) on a zero-width schema used to be a silent
  // no-op (size() inferred 0-or-1 from the flat storage). Nullary relations
  // are boolean subquery results and must count rows like any other schema.
  Relation r((AttrSet()));
  EXPECT_EQ(r.width(), 0u);
  EXPECT_TRUE(r.empty());
  r.AppendRow({});
  r.AppendRow({});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_FALSE(r.empty());
  r.Dedup();  // copies of the empty tuple dedup to one
  EXPECT_EQ(r.size(), 1u);
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.empty());
}

TEST(RelationTest, NullarySameContentComparesRowCounts) {
  Relation two((AttrSet())), also_two((AttrSet())), one((AttrSet()));
  two.AppendRow({});
  two.AppendRow({});
  also_two.AppendRow({});
  also_two.AppendRow({});
  one.AppendRow({});
  EXPECT_TRUE(two.SameContentAs(also_two));
  EXPECT_FALSE(two.SameContentAs(one));
}

TEST(RelationTest, AppendRowsBulkMatchesPerRowAppends) {
  Relation bulk = MakeAB();
  Relation target(bulk.attrs());
  target.AppendRows(bulk.raw().data(), bulk.size());
  EXPECT_EQ(target.size(), 3u);
  EXPECT_TRUE(target.SameContentAs(bulk));
  // AppendAll concatenates whole relations.
  target.AppendAll(bulk);
  EXPECT_EQ(target.size(), 6u);
  // Nullary bulk appends advance the row count too.
  Relation nullary((AttrSet()));
  nullary.AppendRows(nullptr, 4);
  EXPECT_EQ(nullary.size(), 4u);
}

TEST(RelationTest, SortRowsOrdersLexicographically) {
  Relation r(AttrSet::FromIds({0, 1}));
  r.AppendRow({2, 10});
  r.AppendRow({1, 11});
  r.AppendRow({1, 10});
  r.SortRows();
  EXPECT_EQ(r.row(0)[0], 1u);
  EXPECT_EQ(r.row(0)[1], 10u);
  EXPECT_EQ(r.row(1)[1], 11u);
  EXPECT_EQ(r.row(2)[0], 2u);
}

TEST(OperatorsTest, SelectAndSelectIn) {
  Relation r = MakeAB();
  Relation sel = Select(r, 0, 1);
  EXPECT_EQ(sel.size(), 2u);
  Relation sel_in = SelectIn(r, 1, {10});
  EXPECT_EQ(sel_in.size(), 2u);
}

TEST(OperatorsTest, ProjectDeduplicates) {
  Relation r = MakeAB();
  Relation p = Project(r, AttrSet::Single(0));
  EXPECT_EQ(p.size(), 2u);  // values 1 and 2
  EXPECT_EQ(p.width(), 1u);
}

TEST(OperatorsTest, DistinctValues) {
  Relation r = MakeAB();
  EXPECT_EQ(DistinctValues(r, 0), (std::vector<Value>{1, 2}));
  EXPECT_EQ(DistinctValues(r, 1), (std::vector<Value>{10, 11}));
}

TEST(OperatorsTest, SemiJoinKeepsMatching) {
  Relation left = MakeAB();
  Relation right(AttrSet::FromIds({1, 2}));  // B, C
  right.AppendRow({10, 100});
  Relation result = SemiJoin(left, right);
  EXPECT_EQ(result.size(), 2u);  // the two B=10 rows
}

TEST(OperatorsTest, SemiJoinDisjointSchemas) {
  Relation left = MakeAB();
  Relation right(AttrSet::Single(5));
  EXPECT_TRUE(SemiJoin(left, right).empty());  // right empty
  right.AppendRow({7});
  EXPECT_EQ(SemiJoin(left, right).size(), left.size());
}

TEST(OperatorsTest, HashJoinNatural) {
  Relation left = MakeAB();
  Relation right(AttrSet::FromIds({1, 2}));  // B, C
  right.AppendRow({10, 100});
  right.AppendRow({10, 101});
  Relation joined = HashJoin(left, right);
  // (1,10) and (2,10) each join with two C values.
  EXPECT_EQ(joined.size(), 4u);
  EXPECT_EQ(joined.attrs(), AttrSet::FromIds({0, 1, 2}));
}

TEST(OperatorsTest, HashJoinCartesianWhenDisjoint) {
  Relation left = MakeAB();
  Relation right(AttrSet::Single(5));
  right.AppendRow({7});
  right.AppendRow({8});
  EXPECT_EQ(HashJoin(left, right).size(), 6u);
}

TEST(OperatorsTest, MultiwayJoinTriangleShape) {
  Relation ab(AttrSet::FromIds({0, 1}));
  ab.AppendRow({1, 2});
  Relation bc(AttrSet::FromIds({1, 2}));
  bc.AppendRow({2, 3});
  Relation ca(AttrSet::FromIds({0, 2}));
  ca.AppendRow({1, 3});
  Relation result = MultiwayJoin({&ab, &bc, &ca});
  EXPECT_EQ(result.size(), 1u);
  EXPECT_EQ(result.row(0)[0], 1u);
  EXPECT_EQ(result.row(0)[1], 2u);
  EXPECT_EQ(result.row(0)[2], 3u);
}

TEST(OperatorsTest, DegreeHistogram) {
  Relation r = MakeAB();
  auto histogram = DegreeHistogram(r, 0);
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram[0], (std::pair<Value, uint64_t>{1, 2}));
  EXPECT_EQ(histogram[1], (std::pair<Value, uint64_t>{2, 1}));
}

}  // namespace
}  // namespace coverpack
