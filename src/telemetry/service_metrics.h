/// \file service_metrics.h
/// \brief Bridges a ServiceRunStats into a MetricsRegistry (and therefore
/// into RunReport / BENCH_results.json).
///
/// Follows the exchange_metrics.h pattern: the service layer exposes a
/// plain struct (no telemetry dependency), and this translation lives in
/// cp_telemetry, which links cp_service. Keys are scoped by scenario —
/// "service.<scenario>.*" for the scheduler-side numbers and
/// "cache.<scenario>.*" for the PlanCache counters — so one report can
/// carry every (client count, arrival mode, cache state) combination the
/// service_throughput experiment sweeps. EXPERIMENTS.md documents the
/// schema.

#ifndef COVERPACK_TELEMETRY_SERVICE_METRICS_H_
#define COVERPACK_TELEMETRY_SERVICE_METRICS_H_

#include <string>

#include "service/query_service.h"
#include "telemetry/metrics.h"

namespace coverpack {
namespace telemetry {

/// Writes `stats` into `registry` under "service.<scenario>.*" and
/// "cache.<scenario>.*". Every value is simulated-tick-denominated or a
/// pure count — bit-identical across thread counts by construction. Call
/// from the thread that owns `registry`.
void SnapshotServiceStatsInto(const service::ServiceRunStats& stats,
                              const std::string& scenario, MetricsRegistry* registry);

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_SERVICE_METRICS_H_
