#include "telemetry/exchange_metrics.h"

#include <vector>

#include "mpc/exchange.h"

namespace coverpack {
namespace telemetry {

void SnapshotExchangeTelemetryInto(MetricsRegistry* registry) {
  static const std::vector<double> kTupleBounds = {1.0, 10.0, 100.0, 1000.0,
                                                   1e4, 1e5,  1e6,   1e7};
  static const std::vector<double> kSkewBounds = {1.0,  2.0,  4.0,  8.0,
                                                  16.0, 32.0, 64.0, 128.0};
  const mpc::ExchangeTelemetrySnapshot snapshot = mpc::ExchangeTelemetry::Snapshot();
  if (snapshot.count == 0) return;
  registry->AddCounter("exchange.count", snapshot.count);
  registry->AddCounter("exchange.tuples_moved", snapshot.tuples_moved);
  registry->SetGauge("exchange.max_fanin", static_cast<double>(snapshot.max_fanin));
  for (const auto& [label, agg] : snapshot.by_label) {
    registry->AddCounter("exchange." + label + ".count", agg.count);
    registry->AddCounter("exchange." + label + ".tuples_moved", agg.tuples_moved);
  }
  Histogram& tuples = registry->GetHistogram("exchange.tuples_per_exchange", kTupleBounds);
  for (double v : snapshot.tuples_samples) tuples.Observe(v);
  Histogram& skew = registry->GetHistogram("exchange.fanin_skew", kSkewBounds);
  for (double v : snapshot.skew_samples) skew.Observe(v);
}

}  // namespace telemetry
}  // namespace coverpack
