/// \file rational.h
/// \brief Exact rational arithmetic for LP coefficients and exponents.
///
/// The fractional edge covering number rho*, edge packing number tau* and
/// quasi-packing number psi* of a query become *exponents* in load formulas
/// (L = N / p^(1/rho*)), so they must be computed exactly. Rational stores a
/// normalized num/den pair of int64 and promotes through __int128 on
/// multiplication so that the simplex pivots used on constant-size queries
/// never overflow in practice; overflow aborts rather than silently wrapping.

#ifndef COVERPACK_UTIL_RATIONAL_H_
#define COVERPACK_UTIL_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <numeric>
#include <string>

namespace coverpack {

/// An exact rational number with overflow-checked int64 numerator and
/// denominator. Always stored in lowest terms with a positive denominator.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}

  /// An integer value.
  constexpr Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT

  /// The fraction num/den; den must be nonzero.
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }
  bool is_positive() const { return num_ > 0; }
  bool is_integer() const { return den_ == 1; }

  /// Converts to double (for reporting only, never for decisions).
  double ToDouble() const { return static_cast<double>(num_) / static_cast<double>(den_); }

  /// Renders as "a" or "a/b".
  std::string ToString() const;

  /// True iff the representation is canonical: den > 0, gcd(|num|, den) == 1,
  /// and zero is stored as 0/1. Every public operation maintains this (the
  /// COVERPACK_AUDIT build re-verifies it after each construction).
  bool IsNormalized() const;

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& other) { return *this = *this + other; }
  Rational& operator-=(const Rational& other) { return *this = *this - other; }
  Rational& operator*=(const Rational& other) { return *this = *this * other; }
  Rational& operator/=(const Rational& other) { return *this = *this / other; }

  bool operator==(const Rational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const;
  bool operator<=(const Rational& other) const { return *this < other || *this == other; }
  bool operator>(const Rational& other) const { return other < *this; }
  bool operator>=(const Rational& other) const { return other <= *this; }

  /// Reciprocal; aborts on zero.
  Rational Inverse() const;

  /// min/max helpers.
  static Rational Min(const Rational& a, const Rational& b) { return a < b ? a : b; }
  static Rational Max(const Rational& a, const Rational& b) { return a < b ? b : a; }

 private:
  void Normalize();

  int64_t num_;
  int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace coverpack

#endif  // COVERPACK_UTIL_RATIONAL_H_
