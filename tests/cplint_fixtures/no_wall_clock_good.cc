// cplint fixture: monotonic timing only, and identifiers that merely
// contain clock-ish substrings (runtime() etc.) must not trip the rule.
#include <chrono>

long Elapsed() {
  auto start = std::chrono::steady_clock::now();
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(stop - start).count();
}
long runtime() { return 0; }
long Total() { return runtime(); }
