#include "service/query_service.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <utility>

#include "core/acyclic_join.h"
#include "core/load_planner.h"
#include "core/one_round.h"
#include "core/output_balanced.h"
#include "lp/covers.h"
#include "planner/stats.h"
#include "query/decomposition.h"
#include "query/join_tree.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace service {

uint64_t FingerprintTrackerHash(const LoadTracker& tracker) {
  uint64_t h = HashCombine(tracker.num_servers(), tracker.num_rounds());
  for (uint32_t r = 0; r < tracker.num_rounds(); ++r) {
    for (uint32_t s = 0; s < tracker.num_servers(); ++s) {
      h = HashCombine(h, tracker.At(r, s));
    }
  }
  return h;
}

namespace {

uint64_t ExecutionTicks(const LoadTracker& tracker) {
  uint64_t ticks = 0;
  for (uint32_t r = 0; r < tracker.num_rounds(); ++r) {
    ticks += kRoundLatencyTicks + CeilDiv(tracker.MaxLoadOfRound(r), kTuplesPerTick);
  }
  return ticks;
}

/// Nearest-rank percentile of an ascending-sorted vector (0 when empty).
uint64_t Percentile(const std::vector<uint64_t>& sorted, uint32_t pct) {
  if (sorted.empty()) return 0;
  const size_t index = (static_cast<size_t>(pct) * (sorted.size() - 1)) / 100;
  return sorted[index];
}

ExecStrategy StrategyFor(planner::Algorithm algorithm) {
  switch (algorithm) {
    case planner::Algorithm::kOneRound: return ExecStrategy::kOneRound;
    case planner::Algorithm::kAcyclicMultiRound: return ExecStrategy::kAcyclicMultiRound;
    case planner::Algorithm::kOutputBalanced: return ExecStrategy::kOutputBalanced;
  }
  return ExecStrategy::kOneRound;
}

planner::Algorithm AlgorithmFor(ExecStrategy strategy) {
  switch (strategy) {
    case ExecStrategy::kOneRound: return planner::Algorithm::kOneRound;
    case ExecStrategy::kAcyclicMultiRound: return planner::Algorithm::kAcyclicMultiRound;
    case ExecStrategy::kOutputBalanced: return planner::Algorithm::kOutputBalanced;
  }
  return planner::Algorithm::kOneRound;
}

}  // namespace

const char* PlannerModeName(PlannerMode mode) {
  switch (mode) {
    case PlannerMode::kAuto: return "auto";
    case PlannerMode::kForceOneRound: return "one_round";
    case PlannerMode::kForceAcyclic: return "acyclic";
    case PlannerMode::kForceOutputBalanced: return "output_balanced";
  }
  return "auto";
}

std::optional<PlannerMode> ParsePlannerMode(const std::string& text) {
  if (text == "auto") return PlannerMode::kAuto;
  if (text == "one_round") return PlannerMode::kForceOneRound;
  if (text == "acyclic") return PlannerMode::kForceAcyclic;
  if (text == "output_balanced") return PlannerMode::kForceOutputBalanced;
  return std::nullopt;
}

CachedPlan ComputePlan(const Hypergraph& query, const Instance& instance, uint32_t p,
                       const ShapeCanon& canon, PlannerMode mode) {
  CachedPlan plan;
  plan.canonical_form = canon.canonical_form;
  const auto tree = JoinTree::Build(query);
  plan.acyclic = tree.has_value();
  plan.rho_star = RhoStar(query);
  plan.tau_star = TauStar(query);
  plan.psi_star = EdgeQuasiPackingNumber(query);
  if (plan.acyclic) {
    plan.join_tree_roots = static_cast<uint32_t>(tree->Roots().size());
    plan.max_s_family_size = MaxSFamilySetSize(query);
    plan.load_threshold = PlanLoadOptimal(query, instance, p);
    plan.theoretical_servers =
        TheoreticalServerDemand(query, instance, plan.load_threshold, RunPolicy::kOptimal);
  }
  // Strategy selection: the cost-based chooser ranks the menu from the
  // per-attribute statistics; a forced mode overrides it whenever that
  // algorithm is structurally applicable.
  planner::LpNumbers lp;
  lp.rho_star = plan.rho_star;
  lp.tau_star = plan.tau_star;
  lp.psi_star = plan.psi_star;
  lp.acyclic = plan.acyclic;
  lp.join_tree_roots = plan.join_tree_roots;
  const planner::StatsSnapshot stats = planner::BuildStatsSnapshot(query, instance);
  const planner::PlanDecision decision = planner::PlanChooser::Choose(query, p, stats, lp);
  plan.strategy = StrategyFor(decision.algorithm);
  plan.planner_est_load = decision.est_load;
  plan.planner_out_estimate = decision.out_estimate;
  plan.join_order = decision.join_order;
  if (mode != PlannerMode::kAuto) {
    planner::Algorithm forced = planner::Algorithm::kOneRound;
    if (mode == PlannerMode::kForceAcyclic) forced = planner::Algorithm::kAcyclicMultiRound;
    if (mode == PlannerMode::kForceOutputBalanced) {
      forced = planner::Algorithm::kOutputBalanced;
    }
    const planner::CostEstimate& entry = decision.table.ForAlgorithm(forced);
    if (entry.applicable) {
      plan.strategy = StrategyFor(forced);
      plan.planner_est_load = entry.est_load;
    }
  }
  // Cold planning cost: dominated by the psi* subset sweep (2^attrs LP
  // solves) plus per-edge tree/decomposition work. A deterministic
  // function of the shape only.
  const uint32_t attrs = std::min<uint32_t>(canon.num_attrs, 20);
  plan.plan_cost_ticks = kPlanBaseTicks + (uint64_t{1} << attrs) * kLpSubsetTicks +
                         uint64_t{canon.num_edges} * kTreeTicks;
  return plan;
}

ExecutionResult ExecuteRegistered(const Hypergraph& query, const Instance& instance,
                                  const CachedPlan& plan, uint32_t p, bool collect) {
  ExecutionResult result;
  result.fingerprint.executed = true;
  if (plan.strategy == ExecStrategy::kAcyclicMultiRound) {
    AcyclicRunOptions options;
    options.policy = RunPolicy::kOptimal;
    options.collect = collect;
    options.p = p;
    // The cached threshold equals PlanLoadOptimal for this (shape, stats,
    // p) key, so a cache-hit execution is byte-identical to a standalone
    // auto-planned run — the bench experiment asserts exactly this.
    options.load_threshold = plan.load_threshold;
    const AcyclicRunResult run = ComputeAcyclicJoin(query, instance, options);
    result.fingerprint.max_load = run.max_load;
    result.fingerprint.rounds = run.rounds;
    result.fingerprint.total_communication = run.total_communication;
    result.fingerprint.servers_used = run.servers_used;
    result.fingerprint.load_threshold = run.load_threshold;
    result.fingerprint.output_count = run.output_count;
    result.fingerprint.tracker_hash = FingerprintTrackerHash(run.load_tracker);
    result.exec_ticks = ExecutionTicks(run.load_tracker);
  } else if (plan.strategy == ExecStrategy::kOutputBalanced) {
    OutputBalancedOptions options;
    options.collect = collect;
    const OutputBalancedResult run = ComputeOutputBalanced(query, instance, p, options);
    result.fingerprint.max_load = run.max_load;
    result.fingerprint.rounds = run.rounds;
    result.fingerprint.total_communication = run.total_communication;
    result.fingerprint.servers_used = run.load_tracker.num_servers();
    result.fingerprint.load_threshold = 0;
    result.fingerprint.output_count = run.output_count;
    result.fingerprint.tracker_hash = FingerprintTrackerHash(run.load_tracker);
    result.exec_ticks = ExecutionTicks(run.load_tracker);
  } else {
    OneRoundOptions options;
    options.collect = collect;
    const OneRoundResult run = ComputeOneRoundSkewAware(query, instance, p, options);
    result.fingerprint.max_load = run.max_load;
    result.fingerprint.rounds = run.rounds;
    result.fingerprint.total_communication = run.load_tracker.TotalCommunication();
    result.fingerprint.servers_used = run.servers_used;
    result.fingerprint.load_threshold = 0;
    result.fingerprint.output_count = run.output_count;
    result.fingerprint.tracker_hash = FingerprintTrackerHash(run.load_tracker);
    result.exec_ticks = ExecutionTicks(run.load_tracker);
  }
  return result;
}

std::string ServiceRunStats::Digest() const {
  std::ostringstream out;
  out << "arrivals=" << arrivals << ";completed=" << completed
      << ";end=" << sim_end_ticks << ";qpk=" << throughput_qpk
      << ";p50=" << latency_p50_ticks << ";p99=" << latency_p99_ticks
      << ";max=" << latency_max_ticks << ";mean=" << latency_mean_ticks
      << ";wait99=" << queue_wait_p99_ticks << ";depth=" << max_queue_depth
      << ";peak=" << peak_servers_leased << ";bypass=" << plan_bypasses
      << ";mismatch=" << load_mismatches << ";cache=" << cache.hits << "/"
      << cache.misses << "/" << cache.insertions << "/" << cache.evictions << "/"
      << cache.collisions << "/" << cache.size << ";planner=" << planner.decisions_one_round
      << "/" << planner.decisions_acyclic << "/" << planner.decisions_output_balanced << "/"
      << planner.cache_hits << "/" << planner.cache_misses << "\n";
  for (const QueryOutcome& o : outcomes) {
    out << "q" << o.query_id << ":c" << o.client << ":e" << o.catalog_index << ":a"
        << o.arrival_ticks << ":s" << o.start_ticks << ":f" << o.completion_ticks << ":h"
        << (o.cache_hit ? 1 : 0) << ":p" << o.plan_ticks << ":x" << o.exec_ticks << ":l"
        << o.max_load << ":r" << o.rounds << ":y"
        << static_cast<uint32_t>(o.strategy) << ":v" << o.planner_est_load << "\n";
  }
  for (size_t i = 0; i < entry_fingerprints.size(); ++i) {
    const LoadFingerprint& f = entry_fingerprints[i];
    out << "fp" << i << ":" << (f.executed ? 1 : 0) << ":" << f.max_load << ":" << f.rounds
        << ":" << f.total_communication << ":" << f.servers_used << ":" << f.load_threshold
        << ":" << f.output_count << ":" << f.tracker_hash << "\n";
  }
  return out.str();
}

QueryService::QueryService(ServiceConfig config)
    : config_(std::move(config)), cache_(config_.cache_capacity) {
  CP_CHECK(config_.servers_per_query > 0);
  CP_CHECK_LE(config_.servers_per_query, config_.total_servers);
}

RegisteredQuery::RegisteredQuery(std::string name_in, Hypergraph query_in,
                                 Instance instance_in)
    : name(std::move(name_in)),
      query(std::move(query_in)),
      instance(std::move(instance_in)) {
  instance.CheckAgainst(query);
  canon = CanonicalizeShape(query);
  stats = planner::BuildStatsSnapshot(query, instance);
  stats_signature =
      planner::SnapshotSignature(canon.edge_colors, stats, StatsSignature(canon, instance));
  cacheable = SizesUniformPerColorClass(canon, instance);
}

uint32_t QueryService::RegisterQuery(std::string name, Hypergraph query, Instance instance) {
  catalog_.emplace_back(std::move(name), std::move(query), std::move(instance));
  return static_cast<uint32_t>(catalog_.size() - 1);
}

/// A query holding a lease with its plan resolved, awaiting execution.
struct QueryService::Dispatched {
  uint64_t query_id = 0;
  uint32_t client = 0;
  uint32_t catalog_index = 0;
  uint64_t arrival_ticks = 0;
  SubClusterLease lease;
  CachedPlan plan;
  bool cache_hit = false;
  uint64_t plan_ticks = 0;
};

ServiceRunStats QueryService::Run() {
  CP_CHECK(!catalog_.empty()) << "run needs at least one registered query";
  ServiceRunStats stats;
  const PlanCacheStats cache_before = cache_.stats();

  // Seed the arrival stream. Open-loop and bursty clients issue on their
  // own clock, so their whole schedule is known up front; closed-loop
  // clients issue their next query only after the previous one completes.
  std::vector<ClientSim> clients;
  clients.reserve(config_.workload.clients);
  for (uint32_t c = 0; c < config_.workload.clients; ++c) {
    clients.emplace_back(config_.workload, c, catalog_.size());
  }
  SimEventQueue events;
  uint64_t next_query_id = 0;
  const bool closed_loop = config_.workload.mode == ArrivalMode::kClosedLoop;
  for (uint32_t c = 0; c < clients.size(); ++c) {
    uint64_t t = 0;
    while (!clients[c].Done()) {
      const ClientSim::Draw draw = clients[c].NextArrival();
      t += draw.delay_ticks;
      events.Push({t, 0, SimEventKind::kArrival, c, draw.catalog_index, next_query_id++});
      if (closed_loop) break;  // later arrivals are completion-triggered
    }
  }

  struct Pending {
    uint64_t query_id = 0;
    uint32_t client = 0;
    uint32_t catalog_index = 0;
    uint64_t arrival_ticks = 0;
  };
  struct Running {
    QueryOutcome outcome;
    SubClusterLease lease;
  };
  std::deque<Pending> wait_queue;
  std::map<uint64_t, Running> running;  // query_id -> in-flight record
  LeaseManager leases(config_.total_servers);
  leases.SetSpeeds(config_.server_speeds);
  // Heterogeneous pools lease in speed-capacity units (servers_per_query
  // units of aggregate speed); uniform pools keep count-based grants.
  const bool capacity_mode = !config_.server_speeds.empty();
  stats.entry_fingerprints.assign(catalog_.size(), LoadFingerprint{});
  std::vector<uint64_t> queue_waits;

  uint64_t now = 0;
  while (!events.empty()) {
    now = events.Top().time;
    // Drain every event scheduled for this tick before dispatching, so all
    // queries admissible at `now` form one batch for the thread pool.
    while (!events.empty() && events.Top().time == now) {
      const SimEvent event = events.PopMin();
      if (event.kind == SimEventKind::kArrival) {
        ++stats.arrivals;
        wait_queue.push_back({event.query_id, event.client, event.catalog_index, now});
        stats.max_queue_depth = std::max<uint64_t>(stats.max_queue_depth, wait_queue.size());
      } else {
        auto it = running.find(event.query_id);
        CP_CHECK(it != running.end());
        leases.Release(it->second.lease);
        QueryOutcome outcome = it->second.outcome;
        running.erase(it);
        ++stats.completed;
        stats.sim_end_ticks = std::max(stats.sim_end_ticks, outcome.completion_ticks);
        stats.latencies_sorted.push_back(outcome.completion_ticks - outcome.arrival_ticks);
        queue_waits.push_back(outcome.start_ticks - outcome.arrival_ticks);
        const uint32_t client = outcome.client;
        stats.outcomes.push_back(std::move(outcome));
        if (closed_loop && !clients[client].Done()) {
          const ClientSim::Draw draw = clients[client].NextArrival();
          events.Push({now + draw.delay_ticks, 0, SimEventKind::kArrival, client,
                       draw.catalog_index, next_query_id++});
        }
      }
    }

    // Work-queue scheduling: grant leases FIFO until the pool runs dry.
    // Planning stays serial (deterministic cache state); the batch's
    // pipelines then execute concurrently on the thread pool.
    std::vector<Dispatched> batch;
    while (!wait_queue.empty()) {
      auto lease = capacity_mode
                       ? leases.AcquireCapacity(
                             static_cast<double>(config_.servers_per_query))
                       : leases.Acquire(config_.servers_per_query);
      if (!lease.has_value()) break;
      const Pending pending = wait_queue.front();
      wait_queue.pop_front();
      Dispatched dispatched;
      dispatched.query_id = pending.query_id;
      dispatched.client = pending.client;
      dispatched.catalog_index = pending.catalog_index;
      dispatched.arrival_ticks = pending.arrival_ticks;
      dispatched.lease = *lease;

      const RegisteredQuery& entry = catalog_[pending.catalog_index];
      if (!config_.cache_enabled || !entry.cacheable) {
        if (!entry.cacheable) ++stats.plan_bypasses;
        dispatched.plan = ComputePlan(entry.query, entry.instance,
                                      config_.servers_per_query, entry.canon,
                                      config_.planner_mode);
        dispatched.plan_ticks = dispatched.plan.plan_cost_ticks;
        ++stats.planner.cache_misses;
      } else {
        const PlanCacheKey key{entry.canon.hash, config_.servers_per_query,
                               entry.stats_signature};
        auto cached = cache_.Lookup(key, entry.canon.canonical_form);
        if (cached.has_value()) {
          dispatched.plan = std::move(*cached);
          dispatched.cache_hit = true;
          dispatched.plan_ticks = kPlanHitTicks;
          ++stats.planner.cache_hits;
        } else {
          dispatched.plan = ComputePlan(entry.query, entry.instance,
                                        config_.servers_per_query, entry.canon,
                                        config_.planner_mode);
          dispatched.plan_ticks = dispatched.plan.plan_cost_ticks;
          cache_.Insert(key, dispatched.plan);
          ++stats.planner.cache_misses;
        }
      }
      batch.push_back(std::move(dispatched));
    }
    stats.peak_servers_leased = std::max(stats.peak_servers_leased, leases.peak_leased());

    if (batch.empty()) continue;
    // Execute the batch's pipelines concurrently; results land in
    // per-slot storage, so the merge below is deterministic regardless of
    // which worker ran which pipeline.
    std::vector<ExecutionResult> results(batch.size());
    const auto run_one = [&](size_t i) {
      const RegisteredQuery& entry = catalog_[batch[i].catalog_index];
      // Plans are keyed and computed at p = servers_per_query; a capacity
      // lease may hold fewer physical servers (its aggregate speed covers
      // the same p speed-units), so execution uses the plan's p, not the
      // lease footprint. Identical in count mode where the two agree.
      results[i] = ExecuteRegistered(entry.query, entry.instance, batch[i].plan,
                                     config_.servers_per_query,
                                     config_.collect_results);
    };
    if (batch.size() == 1) {
      run_one(0);
    } else {
      ThreadPool::Global().ParallelFor(0, batch.size(), /*grain=*/1, run_one);
    }

    for (size_t i = 0; i < batch.size(); ++i) {
      const Dispatched& dispatched = batch[i];
      LoadFingerprint& first = stats.entry_fingerprints[dispatched.catalog_index];
      if (!first.executed) {
        first = results[i].fingerprint;
      } else if (!(first == results[i].fingerprint)) {
        ++stats.load_mismatches;  // same entry, same p: loads must repeat
      }
      Running run;
      run.lease = dispatched.lease;
      run.outcome.query_id = dispatched.query_id;
      run.outcome.client = dispatched.client;
      run.outcome.catalog_index = dispatched.catalog_index;
      run.outcome.arrival_ticks = dispatched.arrival_ticks;
      run.outcome.start_ticks = now;
      run.outcome.completion_ticks = now + dispatched.plan_ticks + results[i].exec_ticks;
      run.outcome.cache_hit = dispatched.cache_hit;
      run.outcome.plan_ticks = dispatched.plan_ticks;
      run.outcome.exec_ticks = results[i].exec_ticks;
      run.outcome.max_load = results[i].fingerprint.max_load;
      run.outcome.rounds = results[i].fingerprint.rounds;
      run.outcome.strategy = dispatched.plan.strategy;
      run.outcome.planner_est_load = dispatched.plan.planner_est_load;
      stats.planner.CountDecision(AlgorithmFor(dispatched.plan.strategy));
      if (results[i].fingerprint.max_load > 0) {
        stats.planner.est_error_ratios.push_back(
            static_cast<double>(dispatched.plan.planner_est_load) /
            static_cast<double>(results[i].fingerprint.max_load));
      }
      events.Push({run.outcome.completion_ticks, 0, SimEventKind::kCompletion,
                   dispatched.client, dispatched.catalog_index, dispatched.query_id});
      running.emplace(dispatched.query_id, std::move(run));
    }
  }
  CP_CHECK(wait_queue.empty());
  CP_CHECK(running.empty());
  CP_CHECK_EQ(stats.arrivals, stats.completed);

  std::sort(stats.latencies_sorted.begin(), stats.latencies_sorted.end());
  std::sort(queue_waits.begin(), queue_waits.end());
  stats.latency_p50_ticks = Percentile(stats.latencies_sorted, 50);
  stats.latency_p99_ticks = Percentile(stats.latencies_sorted, 99);
  stats.latency_max_ticks =
      stats.latencies_sorted.empty() ? 0 : stats.latencies_sorted.back();
  if (!stats.latencies_sorted.empty()) {
    uint64_t total = 0;
    for (uint64_t latency : stats.latencies_sorted) total += latency;
    stats.latency_mean_ticks =
        static_cast<double>(total) / static_cast<double>(stats.latencies_sorted.size());
  }
  stats.queue_wait_p99_ticks = Percentile(queue_waits, 99);
  if (stats.sim_end_ticks > 0) {
    stats.throughput_qpk = static_cast<double>(stats.completed) * 1000.0 /
                           static_cast<double>(stats.sim_end_ticks);
  }
  stats.cache = cache_.stats().Since(cache_before);
  return stats;
}

}  // namespace service
}  // namespace coverpack
