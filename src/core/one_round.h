/// \file one_round.h
/// \brief Skew-aware single-round join in the spirit of [19] (BinHC).
///
/// Vanilla HyperCube collapses under skew: all tuples of a heavy value hash
/// to one grid slice. The one-round algorithm of [19] fixes this by binning
/// dom(x) by degree and running a residual-query hypercube per bin, reaching
/// load ~N / p^(1/psi*) in the worst case (psi* = edge quasi-packing number).
/// We implement the same heavy/residual decomposition; all sub-hypercubes
/// fire in the same communication round on disjoint server groups (the
/// degree statistics that steer them are free in the lower-bound model and
/// O(N/p) to compute with reduce-by-key).

#ifndef COVERPACK_CORE_ONE_ROUND_H_
#define COVERPACK_CORE_ONE_ROUND_H_

#include <cstdint>

#include "mpc/load_tracker.h"
#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {

/// Outcome of a one-round run.
struct OneRoundResult {
  Relation results;          ///< join results (collect mode)
  uint64_t output_count = 0;
  uint64_t max_load = 0;     ///< max tuples received by one server
  uint64_t servers_used = 0;
  uint32_t rounds = 1;
  /// Concatenated per-server loads of every sub-hypercube the run fired
  /// (all in round 0; disjoint server ranges). Source for the telemetry
  /// layer's skew profiles.
  LoadTracker load_tracker{1};
};

/// Options for the one-round algorithm.
struct OneRoundOptions {
  bool collect = true;
  /// A value is heavy when its degree exceeds `skew_factor * |R| / share`.
  double skew_factor = 2.0;
};

/// Computes the join in one communication round on p servers, splitting
/// heavy values off into residual-query hypercubes. Works for any query
/// (acyclic or cyclic).
OneRoundResult ComputeOneRoundSkewAware(const Hypergraph& query, const Instance& instance,
                                        uint32_t p, const OneRoundOptions& options);

/// Vanilla one-round HyperCube (no skew handling) for comparison.
OneRoundResult ComputeOneRoundVanilla(const Hypergraph& query, const Instance& instance,
                                      uint32_t p, bool collect);

}  // namespace coverpack

#endif  // COVERPACK_CORE_ONE_ROUND_H_
