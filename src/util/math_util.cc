#include "util/math_util.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace coverpack {

uint64_t SaturatingPow(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  for (uint32_t i = 0; i < exp; ++i) {
    if (base != 0 && result > std::numeric_limits<uint64_t>::max() / base) {
      return std::numeric_limits<uint64_t>::max();
    }
    result *= base;
  }
  return result;
}

uint64_t FloorNthRoot(uint64_t x, uint32_t k) {
  CP_CHECK_GE(k, 1u);
  if (k == 1 || x <= 1) return x;
  uint64_t lo = 0;
  uint64_t hi = x;
  // Invariant: lo^k <= x < (hi+1)^k.
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo + 1) / 2;
    if (SaturatingPow(mid, k) <= x) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

uint64_t CeilNthRoot(uint64_t x, uint32_t k) {
  const uint64_t root = FloorNthRoot(x, k);
  if (SaturatingPow(root, k) == x) return root;
  return root + 1;
}

PowerLawFit FitPowerLaw(const std::vector<double>& xs, const std::vector<double>& ys) {
  CP_CHECK_EQ(xs.size(), ys.size());
  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0 && ys[i] > 0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  CP_CHECK_GE(lx.size(), 2u) << "power-law fit needs at least two positive points";
  const double n = static_cast<double>(lx.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < lx.size(); ++i) {
    sx += lx[i];
    sy += ly[i];
    sxx += lx[i] * lx[i];
    sxy += lx[i] * ly[i];
    syy += ly[i] * ly[i];
  }
  PowerLawFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (size_t i = 0; i < lx.size(); ++i) {
    const double pred = fit.slope * lx[i] + fit.intercept;
    ss_res += (ly[i] - pred) * (ly[i] - pred);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace coverpack
