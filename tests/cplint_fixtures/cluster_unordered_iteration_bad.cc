// cplint fixture: epoch membership kept in an unordered set and iterated
// to build the active-slot list. In src/cluster/ the routing cuts and
// migration targets would then depend on hash-table layout, so the same
// elastic schedule could place rows differently between runs.
#include <unordered_set>
#include <vector>

std::vector<unsigned> ActiveSlots() {
  std::unordered_set<unsigned> members{0, 1, 2, 3};
  std::vector<unsigned> active;
  for (unsigned slot : members) active.push_back(slot);
  return active;
}
