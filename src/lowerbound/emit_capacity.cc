#include "lowerbound/emit_capacity.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/arena.h"
#include "util/logging.h"

namespace coverpack {
namespace lowerbound {

namespace {

/// One candidate Cartesian load shape with its expected yield.
struct Shape {
  std::vector<uint64_t> z;  ///< loaded distinct values per attribute
  double expected;          ///< expected join results from this shape
};

/// Candidate per-attribute load counts: powers of two up to the domain,
/// plus the domain size itself.
std::vector<uint64_t> CandidateCounts(uint64_t domain) {
  std::vector<uint64_t> counts;
  for (uint64_t z = 1; z < domain; z *= 2) counts.push_back(z);
  counts.push_back(domain);
  return counts;
}

/// Exact number of tuples of relation e inside the box
/// prod_{v in e} [0, z_v), capped at `load`. Columnar: the row-major data is
/// walked in blocks with a branch-free inside-the-box test per row, checking
/// the cap only at block boundaries (counting in row order, so the cap fires
/// at the same prefix as a row-at-a-time scan would).
uint64_t ExactInBox(const Hypergraph& query, const HardInstance& hard, EdgeId e,
                    const std::vector<uint64_t>& z, uint64_t load) {
  const Relation& relation = hard.instance[e];
  std::vector<AttrId> attrs = query.edge(e).attrs.ToVector();
  const size_t width = attrs.size();
  const Value* base = relation.raw().data();
  const size_t n = relation.size();
  // Bounds in column order (columns follow ascending AttrId, like attrs).
  uint64_t bound[64];
  CP_CHECK_LE(width, sizeof(bound) / sizeof(bound[0]));
  for (size_t c = 0; c < width; ++c) bound[c] = z[attrs[c]];

  constexpr size_t kBlock = 1024;
  uint64_t count = 0;
  for (size_t begin = 0; begin < n; begin += kBlock) {
    const size_t end = std::min(n, begin + kBlock);
    uint64_t in_block = 0;
    const Value* row = base + begin * width;
    for (size_t i = begin; i < end; ++i, row += width) {
      uint64_t inside = 1;
      for (size_t c = 0; c < width; ++c) inside &= (row[c] < bound[c]) ? 1u : 0u;
      in_block += inside;
    }
    count += in_block;
    if (count >= load) return load;
  }
  return std::min(count, load);
}

}  // namespace

EmitCapacityResult SearchEmitCapacity(const Hypergraph& query, const HardInstance& hard,
                                      const PackingProvability& witness, uint64_t load,
                                      size_t exact_top_k) {
  CP_CHECK(witness.provable);
  EmitCapacityResult result;
  result.predicted_cap =
      2.0 * std::pow(static_cast<double>(load), witness.tau_star.ToDouble()) *
      std::pow(static_cast<double>(hard.n),
               witness.rho_star.ToDouble() - witness.tau_star.ToDouble());

  EdgeSet probabilistic;
  for (EdgeId e : witness.probabilistic) probabilistic.Insert(e);
  // Attributes covered by some probabilistic edge (their combinations are
  // filtered by membership); the rest contribute their full product.
  AttrSet prob_attrs;
  for (EdgeId e : probabilistic.ToVector()) {
    prob_attrs = prob_attrs.Union(query.edge(e).attrs);
  }

  std::vector<AttrId> attrs = query.AllAttrs().ToVector();
  const size_t num_attrs = attrs.size();
  std::vector<std::vector<uint64_t>> candidates;
  candidates.reserve(num_attrs);
  for (AttrId v : attrs) candidates.push_back(CandidateCounts(hard.domain_sizes[v]));

  // Deterministic load constraints: prod_{v in e} z_v <= load. The DFS
  // maintains one running product per deterministic edge, multiplied in
  // attribute-binding order — the same ascending-AttrId sequence a fresh
  // product over edge-intersect-bound would use, so pruning decisions are
  // bit-identical to recomputation. Scratch lives in the per-thread arena.
  std::vector<AttrSet> deterministic_edges;
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (!probabilistic.Contains(e)) deterministic_edges.push_back(query.edge(e).attrs);
  }
  const size_t num_det = deterministic_edges.size();

  ArenaScope scope;
  Arena* arena = scope.arena();
  double* det_product = arena->AllocateArray<double>(std::max<size_t>(1, num_det));
  for (size_t d = 0; d < num_det; ++d) det_product[d] = 1.0;
  // det_of[depth] = indices of deterministic edges containing attrs[depth].
  uint32_t** det_of = arena->AllocateArray<uint32_t*>(num_attrs);
  uint32_t* det_of_count = arena->AllocateArray<uint32_t>(num_attrs);
  for (size_t i = 0; i < num_attrs; ++i) {
    det_of[i] = arena->AllocateArray<uint32_t>(std::max<size_t>(1, num_det));
    det_of_count[i] = 0;
    for (size_t d = 0; d < num_det; ++d) {
      if (deterministic_edges[d].Contains(attrs[i])) det_of[i][det_of_count[i]++] = d;
    }
  }
  // Per-depth saved products for backtracking (restore, never divide — a
  // divide would reintroduce rounding and change pruning decisions).
  double** saved_product = arena->AllocateArray<double*>(num_attrs);
  for (size_t i = 0; i < num_attrs; ++i) {
    saved_product[i] = arena->AllocateArray<double>(std::max<size_t>(1, num_det));
  }

  // Leaf-evaluation metadata, hoisted out of the enumeration: which
  // attributes multiply directly (not covered by a probabilistic edge), and
  // per probabilistic edge its attribute list and domain-size product
  // (accumulated once in the same ascending order as before, so the divisor
  // is the identical double).
  std::vector<EdgeId> prob_edges = probabilistic.ToVector();
  std::vector<std::vector<AttrId>> prob_edge_attrs;
  std::vector<double> prob_edge_domain;
  for (EdgeId e : prob_edges) {
    prob_edge_attrs.push_back(query.edge(e).attrs.ToVector());
    double domain = 1.0;
    for (AttrId v : prob_edge_attrs.back()) {
      domain *= static_cast<double>(hard.domain_sizes[v]);
    }
    prob_edge_domain.push_back(domain);
  }
  const double n_as_double = static_cast<double>(hard.n);
  const double load_as_double = static_cast<double>(load);

  std::vector<Shape> top;
  std::vector<uint64_t> z(query.num_attrs(), 1);

  const auto shape_greater = [](const Shape& a, const Shape& b) {
    return a.expected > b.expected;
  };

  std::function<void(size_t)> enumerate = [&](size_t depth) {
    if (depth == num_attrs) {
      ++result.shapes_searched;
      double expected = 1.0;
      for (AttrId v : attrs) {
        if (!prob_attrs.Contains(v)) expected *= static_cast<double>(z[v]);
      }
      // Probabilistic edges are vertex-disjoint, so combinations over their
      // attributes are exactly their expected in-box tuples (volume * N /
      // prod dom, capped at the load).
      for (size_t pe = 0; pe < prob_edges.size(); ++pe) {
        double volume = 1.0;
        for (AttrId v : prob_edge_attrs[pe]) volume *= static_cast<double>(z[v]);
        expected *=
            std::min(load_as_double, volume * n_as_double / prob_edge_domain[pe]);
      }
      result.expected_best = std::max(result.expected_best, expected);
      top.push_back(Shape{z, expected});
      std::push_heap(top.begin(), top.end(), shape_greater);
      if (top.size() > exact_top_k) {
        std::pop_heap(top.begin(), top.end(), shape_greater);
        top.pop_back();
      }
      return;
    }
    const uint32_t* touched = det_of[depth];
    const uint32_t num_touched = det_of_count[depth];
    double* saved = saved_product[depth];
    for (uint64_t candidate : candidates[depth]) {
      z[attrs[depth]] = candidate;
      bool viable = true;
      const double multiplier = static_cast<double>(candidate);
      for (uint32_t t = 0; t < num_touched; ++t) {
        const uint32_t d = touched[t];
        saved[t] = det_product[d];
        det_product[d] *= multiplier;
        if (det_product[d] > load_as_double) viable = false;
      }
      if (viable) enumerate(depth + 1);
      for (uint32_t t = 0; t < num_touched; ++t) det_product[touched[t]] = saved[t];
    }
    z[attrs[depth]] = 1;
  };
  // The empty prefix is feasible iff every (empty) product 1.0 <= load;
  // matches the historical root feasibility check.
  bool root_feasible = true;
  for (size_t d = 0; d < num_det; ++d) {
    if (det_product[d] > load_as_double) root_feasible = false;
  }
  if (root_feasible) enumerate(0);

  // Exact evaluation of the best shapes.
  for (const Shape& shape : top) {
    ++result.shapes_evaluated_exactly;
    uint64_t exact = 1;
    bool overflow = false;
    for (AttrId v : attrs) {
      if (!prob_attrs.Contains(v)) {
        if (shape.z[v] != 0 && exact > UINT64_MAX / shape.z[v]) {
          overflow = true;
          break;
        }
        exact *= shape.z[v];
      }
    }
    if (overflow) continue;
    for (EdgeId e : prob_edges) {
      uint64_t in_box = ExactInBox(query, hard, e, shape.z, load);
      if (in_box != 0 && exact > UINT64_MAX / in_box) {
        overflow = true;
        break;
      }
      exact *= in_box;
    }
    if (overflow) continue;
    if (exact > result.measured) {
      result.measured = exact;
      result.best_shape = shape.z;
    }
  }
  return result;
}

double CountingArgumentLoadBound(uint64_t n, uint32_t p, const Rational& tau_star,
                                 double capacity_constant) {
  double tau = tau_star.ToDouble();
  return static_cast<double>(n) /
         std::pow(capacity_constant * static_cast<double>(p), 1.0 / tau);
}

}  // namespace lowerbound
}  // namespace coverpack
