#include "service/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace coverpack {
namespace service {

LeaseManager::LeaseManager(uint32_t total_servers) : total_(total_servers) {
  CP_CHECK(total_ > 0);
  free_[0] = total_;
}

SubClusterLease LeaseManager::Carve(std::map<uint32_t, uint32_t>::iterator it,
                                    uint32_t size) {
  SubClusterLease lease{it->first, size};
  const uint32_t remaining = it->second - size;
  const uint32_t new_start = it->first + size;
  free_.erase(it);
  if (remaining > 0) free_[new_start] = remaining;
  leased_ += size;
  peak_ = std::max(peak_, leased_);
  leased_capacity_ += CapacityOf(lease);
  peak_capacity_ = std::max(peak_capacity_, leased_capacity_);
  return lease;
}

std::optional<SubClusterLease> LeaseManager::Acquire(uint32_t size) {
  CP_CHECK(size > 0);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < size) continue;
    return Carve(it, size);
  }
  return std::nullopt;
}

std::optional<SubClusterLease> LeaseManager::AcquireCapacity(double capacity) {
  CP_CHECK(capacity > 0.0);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    double sum = 0.0;
    for (uint32_t k = 0; k < it->second; ++k) {
      sum += SpeedOf(it->first + k);
      if (sum >= capacity) return Carve(it, k + 1);
    }
  }
  return std::nullopt;
}

void LeaseManager::Release(const SubClusterLease& lease) {
  CP_CHECK(lease.size > 0);
  CP_CHECK_LE(lease.first_server + lease.size, total_);
  CP_CHECK_LE(lease.size, leased_);
  uint32_t start = lease.first_server;
  uint32_t length = lease.size;
  // Coalesce with the successor interval, then with the predecessor.
  auto next = free_.lower_bound(start);
  if (next != free_.end() && next->first == start + length) {
    length += next->second;
    free_.erase(next);
  }
  if (!free_.empty()) {
    auto prev = free_.lower_bound(start);
    if (prev != free_.begin()) {
      --prev;
      if (prev->first + prev->second == start) {
        start = prev->first;
        length += prev->second;
        free_.erase(prev);
      }
    }
  }
  free_[start] = length;
  leased_ -= lease.size;
  leased_capacity_ -= CapacityOf(lease);
}

void LeaseManager::SetSpeeds(std::vector<double> speeds) {
  CP_CHECK_EQ(leased_, 0u);
  if (!speeds.empty()) {
    CP_CHECK_EQ(speeds.size(), static_cast<size_t>(total_));
    for (double speed : speeds) CP_CHECK(speed > 0.0);
  }
  speeds_ = std::move(speeds);
}

void LeaseManager::Resize(uint32_t new_total) {
  CP_CHECK(new_total > 0);
  if (new_total > total_) {
    // Grow: hand the new tail to Release's coalescing path by treating it
    // as a synthetic lease of the appended range.
    const SubClusterLease tail{total_, new_total - total_};
    if (!speeds_.empty()) speeds_.resize(new_total, 1.0);
    total_ = new_total;
    leased_ += tail.size;  // balance the Release bookkeeping below
    leased_capacity_ += CapacityOf(tail);
    Release(tail);
  } else if (new_total < total_) {
    // Shrink: the removed tail must sit entirely inside one free interval
    // that runs to the end of the pool.
    auto it = free_.upper_bound(new_total);
    if (it != free_.begin()) --it;
    CP_CHECK(it != free_.end());
    CP_CHECK_LE(it->first, new_total);
    CP_CHECK_EQ(it->first + it->second, total_);
    const uint32_t kept = new_total - it->first;
    if (kept > 0) {
      it->second = kept;
    } else {
      free_.erase(it);
    }
    if (!speeds_.empty()) speeds_.resize(new_total);
    total_ = new_total;
  }
}

double LeaseManager::SpeedOf(uint32_t server) const {
  CP_CHECK_LT(server, total_);
  return speeds_.empty() ? 1.0 : speeds_[server];
}

double LeaseManager::CapacityOf(const SubClusterLease& lease) const {
  double sum = 0.0;
  for (uint32_t k = 0; k < lease.size; ++k) sum += SpeedOf(lease.first_server + k);
  return sum;
}

void SimEventQueue::Push(SimEvent event) {
  event.seq = next_seq_++;
  heap_.push(event);
}

SimEvent SimEventQueue::PopMin() {
  CP_CHECK(!heap_.empty());
  SimEvent event = heap_.top();
  heap_.pop();
  return event;
}

}  // namespace service
}  // namespace coverpack
