/// \file service_test.cc
/// \brief Unit tests for src/service/: shape canonicalization (isomorphic
/// hypergraphs hash identically, non-isomorphic ones don't), the
/// structure-keyed PlanCache, the lease allocator and event queue, the
/// simulated clients, and the query service end to end.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"
#include "relation/instance.h"
#include "service/plan_cache.h"
#include "service/query_service.h"
#include "service/query_shape.h"
#include "service/scheduler.h"
#include "service/workload_sim.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

using service::ArrivalMode;
using service::CachedPlan;
using service::CanonicalizeShape;
using service::ClientSim;
using service::LeaseManager;
using service::PlanCache;
using service::PlanCacheKey;
using service::QueryShapeHash;
using service::ShapeCanon;
using service::SimEvent;
using service::SimEventKind;
using service::SimEventQueue;
using service::StatsSignature;
using service::SubClusterLease;

/// An instance whose relation e holds sizes[e] matching rows (v, v, ...).
Instance SizedInstance(const Hypergraph& query, const std::vector<uint64_t>& sizes) {
  Instance instance(query);
  for (size_t e = 0; e < query.num_edges(); ++e) {
    const size_t width = instance[static_cast<EdgeId>(e)].width();
    for (uint64_t v = 0; v < sizes[e]; ++v) {
      std::vector<Value> row(width, v);
      instance[static_cast<EdgeId>(e)].AppendRow(row);
    }
  }
  return instance;
}

// ---------------------------------------------------------------- shapes

TEST(QueryShapeTest, PermutedAttributeNamesHashIdentically) {
  // Line3 is Path(3) with attributes renamed A..D -> X0..X3.
  const ShapeCanon path = CanonicalizeShape(catalog::Path(3));
  const ShapeCanon line = CanonicalizeShape(catalog::Line3());
  EXPECT_EQ(path.hash, line.hash);
  EXPECT_EQ(path.canonical_form, line.canonical_form);
  EXPECT_EQ(path.num_attrs, 4u);
  EXPECT_EQ(path.num_edges, 3u);
}

TEST(QueryShapeTest, RelationOrderAndNamesAreIrrelevant) {
  const uint64_t triangle = QueryShapeHash(catalog::Triangle());
  // Same triangle: relations listed in a different order, all names new.
  EXPECT_EQ(triangle, QueryShapeHash(ParseQuery("S9(P,Q), S2(Q,R), S5(R,P)")));
  // Star(3) with permuted leaf insertion order and renamed center.
  EXPECT_EQ(QueryShapeHash(catalog::Star(3)),
            QueryShapeHash(ParseQuery("T3(H,C), T1(H,A), T2(H,B)")));
}

TEST(QueryShapeTest, NonIsomorphicShapesSeparate) {
  EXPECT_NE(QueryShapeHash(catalog::Triangle()), QueryShapeHash(catalog::Path(3)));
  EXPECT_NE(QueryShapeHash(catalog::Star(3)), QueryShapeHash(catalog::StarDual(3)));
  EXPECT_NE(QueryShapeHash(catalog::Path(4)), QueryShapeHash(catalog::Cycle(4)));
}

TEST(QueryShapeTest, IndividualizationSeparatesWlEquivalentPairs) {
  // Every attribute has degree 2 and every edge arity 2 in both queries, so
  // plain color refinement cannot tell one 6-cycle from two disjoint
  // triangles; the individualization sweep must.
  const Hypergraph six_cycle = catalog::Cycle(6);
  const Hypergraph two_triangles =
      ParseQuery("R1(A,B), R2(B,C), R3(C,A), R4(D,E), R5(E,F), R6(F,D)");
  EXPECT_NE(QueryShapeHash(six_cycle), QueryShapeHash(two_triangles));
  EXPECT_NE(CanonicalizeShape(six_cycle).canonical_form,
            CanonicalizeShape(two_triangles).canonical_form);
}

TEST(QueryShapeTest, StatsSignatureFollowsShapePositions) {
  const Hypergraph path = catalog::Path(3);
  const Hypergraph line = catalog::Line3();
  const ShapeCanon path_canon = CanonicalizeShape(path);
  const ShapeCanon line_canon = CanonicalizeShape(line);
  // Isomorphic queries with equal sizes at equivalent positions agree.
  EXPECT_EQ(StatsSignature(path_canon, SizedInstance(path, {10, 20, 10})),
            StatsSignature(line_canon, SizedInstance(line, {10, 20, 10})));
  // Changing any size changes the signature.
  EXPECT_NE(StatsSignature(path_canon, SizedInstance(path, {10, 20, 10})),
            StatsSignature(path_canon, SizedInstance(path, {10, 20, 11})));
}

TEST(QueryShapeTest, SizeUniformityPerColorClass) {
  const Hypergraph triangle = catalog::Triangle();
  const ShapeCanon canon = CanonicalizeShape(triangle);
  // All three triangle edges are structurally equivalent: uniform sizes are
  // cache-safe, mixed sizes within the class are not.
  EXPECT_TRUE(service::SizesUniformPerColorClass(canon, SizedInstance(triangle, {7, 7, 7})));
  EXPECT_FALSE(
      service::SizesUniformPerColorClass(canon, SizedInstance(triangle, {7, 7, 9})));
  // Structurally distinct edges may differ in size freely: in the semi-join
  // example the binary R2 is its own class, but the two unary relations
  // R1/R3 are symmetric to each other.
  const Hypergraph semi = catalog::SemiJoinExample();
  const ShapeCanon semi_canon = CanonicalizeShape(semi);
  EXPECT_TRUE(service::SizesUniformPerColorClass(semi_canon, SizedInstance(semi, {5, 50, 5})));
  EXPECT_FALSE(
      service::SizesUniformPerColorClass(semi_canon, SizedInstance(semi, {5, 50, 6})));
}

// ----------------------------------------------------------------- cache

CachedPlan PlanWithForm(const std::string& form, uint64_t threshold) {
  CachedPlan plan;
  plan.canonical_form = form;
  plan.load_threshold = threshold;
  return plan;
}

TEST(PlanCacheTest, HitMissInsertAndLruEviction) {
  PlanCache cache(2);
  const PlanCacheKey a{1, 64, 10};
  const PlanCacheKey b{2, 64, 20};
  const PlanCacheKey c{3, 64, 30};

  EXPECT_FALSE(cache.Lookup(a, "fa").has_value());
  cache.Insert(a, PlanWithForm("fa", 111));
  cache.Insert(b, PlanWithForm("fb", 222));
  ASSERT_TRUE(cache.Lookup(a, "fa").has_value());  // refreshes a over b
  cache.Insert(c, PlanWithForm("fc", 333));        // evicts b (LRU)
  EXPECT_FALSE(cache.Lookup(b, "fb").has_value());
  EXPECT_EQ(cache.Lookup(a, "fa")->load_threshold, 111u);
  EXPECT_EQ(cache.Lookup(c, "fc")->load_threshold, 333u);

  const service::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);  // the initial a miss and the evicted b miss
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(PlanCacheTest, CanonicalFormGuardsHashCollisions) {
  PlanCache cache(4);
  const PlanCacheKey key{42, 64, 7};
  cache.Insert(key, PlanWithForm("real-form", 1));
  // Same key, different canonical form: must NOT be served; counted as a
  // collision and a miss.
  EXPECT_FALSE(cache.Lookup(key, "colliding-form").has_value());
  const service::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(PlanCacheTest, ClearResetsEntriesAndCounters) {
  PlanCache cache(2);
  cache.Insert({1, 64, 1}, PlanWithForm("f", 9));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_FALSE(cache.Lookup({1, 64, 1}, "f").has_value());
}

// ------------------------------------------------------------- scheduler

TEST(LeaseManagerTest, FirstFitExhaustionAndCoalescing) {
  LeaseManager leases(192);
  auto a = leases.Acquire(64);
  auto b = leases.Acquire(64);
  auto c = leases.Acquire(64);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->first_server, 0u);
  EXPECT_EQ(b->first_server, 64u);
  EXPECT_EQ(c->first_server, 128u);
  EXPECT_FALSE(leases.Acquire(1).has_value());
  EXPECT_EQ(leases.peak_leased(), 192u);

  // Releasing b then a must coalesce [0,128) into one hole.
  leases.Release(*b);
  leases.Release(*a);
  auto wide = leases.Acquire(128);
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(wide->first_server, 0u);
  EXPECT_EQ(leases.leased(), 192u);
  leases.Release(*wide);
  leases.Release(*c);
  EXPECT_EQ(leases.leased(), 0u);
  auto all = leases.Acquire(192);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->first_server, 0u);
}

TEST(LeaseManagerTest, ChurnKeepsTheFreeMapCoalescedAndFirstFit) {
  // Deterministic churn: fragment the pool with interleaved grants, punch
  // holes in varying patterns, and refill; the free map must stay exact
  // (every release coalesces, every acquire is lowest-address first-fit).
  LeaseManager leases(100);
  std::vector<SubClusterLease> held;
  for (int round = 0; round < 50; ++round) {
    const uint32_t size = 1 + static_cast<uint32_t>((round * 7) % 13);
    auto lease = leases.Acquire(size);
    if (lease.has_value()) held.push_back(*lease);
    // Release a varying interior victim to fragment the free map.
    if (held.size() >= 3 && round % 3 == 0) {
      const size_t victim = (round / 3) % (held.size() - 1);
      leases.Release(held[victim]);
      held.erase(held.begin() + static_cast<long>(victim));
    }
  }
  uint32_t held_total = 0;
  for (const auto& lease : held) held_total += lease.size;
  EXPECT_EQ(leases.leased(), held_total);
  // Drain in an order unrelated to acquisition order; everything must
  // coalesce back into the single interval [0, 100).
  while (!held.empty()) {
    const size_t victim = held.size() / 2;
    leases.Release(held[victim]);
    held.erase(held.begin() + static_cast<long>(victim));
  }
  EXPECT_EQ(leases.leased(), 0u);
  EXPECT_EQ(leases.leased_capacity(), 0.0);
  auto all = leases.Acquire(100);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->first_server, 0u);
}

TEST(LeaseManagerTest, ChurnSurvivesChangingMembership) {
  // Grow/shrink interleaved with grants: Resize only fires at points where
  // its precondition (free tail) holds, mirroring round-boundary elasticity.
  LeaseManager leases(16);
  auto a = leases.Acquire(10);
  ASSERT_TRUE(a.has_value());
  leases.Resize(32);  // grow while leased: appended tail is free
  auto b = leases.Acquire(20);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first_server, 10u);
  EXPECT_FALSE(leases.Acquire(3).has_value());  // 2 free servers left
  leases.Release(*b);
  leases.Resize(12);  // shrink into the freed tail, below the old total
  EXPECT_EQ(leases.total_servers(), 12u);
  auto c = leases.Acquire(2);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->first_server, 10u);
  EXPECT_FALSE(leases.Acquire(1).has_value());
  leases.Release(*c);
  leases.Release(*a);
  EXPECT_EQ(leases.leased(), 0u);
  EXPECT_EQ(leases.Acquire(12)->first_server, 0u);
}

TEST(LeaseManagerTest, CapacityGrantsMatchCountGrantsUnderUniformSpeeds) {
  LeaseManager by_count(48);
  LeaseManager by_capacity(48);
  by_capacity.SetSpeeds(std::vector<double>(48, 1.0));
  std::vector<SubClusterLease> count_leases, capacity_leases;
  const uint32_t sizes[] = {5, 7, 5, 11, 3, 5};
  for (uint32_t size : sizes) {
    auto lease = by_count.Acquire(size);
    auto cap = by_capacity.AcquireCapacity(static_cast<double>(size));
    ASSERT_EQ(lease.has_value(), cap.has_value());
    EXPECT_EQ(lease->first_server, cap->first_server);
    EXPECT_EQ(lease->size, cap->size);
    count_leases.push_back(*lease);
    capacity_leases.push_back(*cap);
  }
  // Punch the same holes and re-grant: placements must keep agreeing.
  by_count.Release(count_leases[1]);
  by_capacity.Release(capacity_leases[1]);
  by_count.Release(count_leases[3]);
  by_capacity.Release(capacity_leases[3]);
  auto refit = by_count.Acquire(6);
  auto refit_cap = by_capacity.AcquireCapacity(6.0);
  ASSERT_TRUE(refit && refit_cap);
  EXPECT_EQ(refit->first_server, refit_cap->first_server);
  EXPECT_EQ(refit->size, refit_cap->size);
  EXPECT_EQ(by_count.leased(), by_capacity.leased());
  EXPECT_EQ(by_capacity.leased_capacity(),
            static_cast<double>(by_capacity.leased()));
}

TEST(LeaseManagerTest, CapacityGrantsTakeMinimalPrefixOfFastServers) {
  LeaseManager leases(9);
  leases.SetSpeeds({1.0, 1.0, 4.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0});
  // 4 units of capacity: servers 0,1 contribute 2, server 2 tops it up.
  auto a = leases.AcquireCapacity(4.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first_server, 0u);
  EXPECT_EQ(a->size, 3u);
  EXPECT_EQ(leases.CapacityOf(*a), 6.0);
  EXPECT_EQ(leases.leased_capacity(), 6.0);
  // The next interval starts at server 3; unit speeds until server 6.
  auto b = leases.AcquireCapacity(3.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->first_server, 3u);
  EXPECT_EQ(b->size, 3u);
  auto c = leases.AcquireCapacity(6.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->first_server, 6u);
  EXPECT_EQ(c->size, 3u);
  // Pool exhausted in servers: capacity requests fail cleanly.
  EXPECT_FALSE(leases.AcquireCapacity(0.5).has_value());
  leases.Release(*a);
  leases.Release(*c);
  // Free intervals [0,3) and [6,9) each aggregate 6.0 — a 7-unit request
  // fails even though the fragmented free speed (12.0) would cover it:
  // leases are contiguous sub-clusters, never stitched across holes.
  EXPECT_FALSE(leases.AcquireCapacity(7.0).has_value());
  auto refit = leases.AcquireCapacity(5.5);
  ASSERT_TRUE(refit.has_value());
  EXPECT_EQ(refit->first_server, 0u);
  EXPECT_EQ(refit->size, 3u);  // 1 + 1 + 4 = 6 >= 5.5
  leases.Release(*b);
  leases.Release(*refit);
  EXPECT_EQ(leases.leased_capacity(), 0.0);
  EXPECT_EQ(leases.peak_capacity(), 15.0);  // a + b + c held concurrently
}

TEST(LeaseManagerTest, ResizePreservesAndExtendsSpeeds) {
  LeaseManager leases(4);
  leases.SetSpeeds({2.0, 2.0, 2.0, 2.0});
  leases.Resize(6);  // appended servers default to unit speed
  EXPECT_EQ(leases.SpeedOf(3), 2.0);
  EXPECT_EQ(leases.SpeedOf(4), 1.0);
  EXPECT_EQ(leases.SpeedOf(5), 1.0);
  // Capacity 5 now needs servers {0,1,2}: 2+2+2 = 6 >= 5.
  auto lease = leases.AcquireCapacity(5.0);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->size, 3u);
  leases.Release(*lease);
  leases.Resize(2);  // shrink truncates the speed vector with the pool
  EXPECT_EQ(leases.total_servers(), 2u);
  EXPECT_EQ(leases.CapacityOf({0, 2}), 4.0);
}

TEST(SimEventQueueTest, OrdersByTimeThenPushOrder) {
  SimEventQueue events;
  SimEvent e1{5, 0, SimEventKind::kArrival, 0, 0, 1};
  SimEvent e2{3, 0, SimEventKind::kArrival, 0, 0, 2};
  SimEvent e3{5, 0, SimEventKind::kCompletion, 0, 0, 3};
  events.Push(e1);
  events.Push(e2);
  events.Push(e3);
  EXPECT_EQ(events.PopMin().query_id, 2u);
  EXPECT_EQ(events.PopMin().query_id, 1u);  // tick 5: push order breaks the tie
  EXPECT_EQ(events.PopMin().query_id, 3u);
  EXPECT_TRUE(events.empty());
}

// --------------------------------------------------------------- clients

TEST(ClientSimTest, StreamsAreReplayableAndBounded) {
  service::WorkloadConfig config;
  config.queries_per_client = 16;
  ClientSim first(config, /*client_id=*/3, /*catalog_size=*/9);
  ClientSim second(config, /*client_id=*/3, /*catalog_size=*/9);
  ClientSim other(config, /*client_id=*/4, /*catalog_size=*/9);
  bool any_difference = false;
  for (int i = 0; i < 16; ++i) {
    const ClientSim::Draw a = first.NextArrival();
    const ClientSim::Draw b = second.NextArrival();
    const ClientSim::Draw c = other.NextArrival();
    EXPECT_EQ(a.delay_ticks, b.delay_ticks);
    EXPECT_EQ(a.catalog_index, b.catalog_index);
    EXPECT_LT(a.catalog_index, 9u);
    EXPECT_GE(a.delay_ticks, 1u);
    any_difference = any_difference || a.delay_ticks != c.delay_ticks ||
                     a.catalog_index != c.catalog_index;
  }
  EXPECT_TRUE(first.Done());
  EXPECT_TRUE(any_difference);  // distinct clients get split streams
}

TEST(ClientSimTest, BurstyModeAlternatesGapsAndBursts) {
  service::WorkloadConfig config;
  config.mode = ArrivalMode::kBursty;
  config.queries_per_client = 32;
  config.burst_length = 8;
  config.burst_gap_ticks = 512;
  ClientSim client(config, 0, 4);
  uint64_t gap_draws = 0;
  uint64_t unit_draws = 0;
  while (!client.Done()) {
    const uint64_t delay = client.NextArrival().delay_ticks;
    if (delay == 1) {
      ++unit_draws;
    } else {
      ++gap_draws;
    }
  }
  EXPECT_EQ(gap_draws, 4u);    // 32 queries / burst_length 8
  EXPECT_EQ(unit_draws, 28u);  // everything inside a burst is back-to-back
}

// ---------------------------------------------------------------- service

service::ServiceConfig SmallConfig(bool cache_enabled) {
  service::ServiceConfig config;
  config.total_servers = 64;
  config.servers_per_query = 16;
  config.cache_enabled = cache_enabled;
  config.workload.clients = 3;
  config.workload.queries_per_client = 4;
  config.workload.mean_interarrival_ticks = 16;
  config.workload.seed = 0xFEED;
  return config;
}

void RegisterSmallCatalog(service::QueryService* svc) {
  svc->RegisterQuery("path3", catalog::Path(3),
                     workload::MatchingInstance(catalog::Path(3), 256));
  svc->RegisterQuery("line3", catalog::Line3(),
                     workload::MatchingInstance(catalog::Line3(), 256));
  svc->RegisterQuery("triangle", catalog::Triangle(),
                     workload::MatchingInstance(catalog::Triangle(), 256));
}

TEST(QueryServiceTest, ServesEveryArrivalAndCountsCacheTraffic) {
  service::QueryService svc(SmallConfig(/*cache_enabled=*/true));
  RegisterSmallCatalog(&svc);
  const service::ServiceRunStats stats = svc.Run();
  EXPECT_EQ(stats.arrivals, 12u);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.outcomes.size(), 12u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 12u);
  EXPECT_GT(stats.cache.hits, 0u);  // 12 arrivals over <= 2 distinct keys
  EXPECT_LE(stats.cache.misses, 2u);
  EXPECT_EQ(stats.plan_bypasses, 0u);
  EXPECT_EQ(stats.load_mismatches, 0u);
  EXPECT_GT(stats.sim_end_ticks, 0u);
  EXPECT_GT(stats.throughput_qpk, 0.0);
  EXPECT_LE(stats.peak_servers_leased, 64u);
}

TEST(QueryServiceTest, WarmRunIsAllHitsWithIdenticalLoads) {
  service::QueryService svc(SmallConfig(/*cache_enabled=*/true));
  RegisterSmallCatalog(&svc);
  const service::ServiceRunStats cold = svc.Run();
  const service::ServiceRunStats warm = svc.Run();
  EXPECT_GT(cold.cache.misses, 0u);
  EXPECT_EQ(warm.cache.misses, 0u);
  EXPECT_EQ(warm.cache.insertions, 0u);
  EXPECT_EQ(warm.cache.hits, warm.arrivals);
  ASSERT_EQ(warm.entry_fingerprints.size(), cold.entry_fingerprints.size());
  for (size_t i = 0; i < warm.entry_fingerprints.size(); ++i) {
    if (cold.entry_fingerprints[i].executed && warm.entry_fingerprints[i].executed) {
      EXPECT_EQ(warm.entry_fingerprints[i], cold.entry_fingerprints[i]) << "entry " << i;
    }
  }
  // Hits never change answers, only planning ticks: warm finishes earlier.
  EXPECT_LE(warm.sim_end_ticks, cold.sim_end_ticks);
}

TEST(QueryServiceTest, DisabledCacheNeverTouchesIt) {
  service::QueryService svc(SmallConfig(/*cache_enabled=*/false));
  RegisterSmallCatalog(&svc);
  const service::ServiceRunStats stats = svc.Run();
  EXPECT_EQ(stats.arrivals, stats.completed);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.cache.insertions, 0u);
}

TEST(QueryServiceTest, UncacheableEntriesBypassTheCache) {
  service::ServiceConfig config = SmallConfig(/*cache_enabled=*/true);
  service::QueryService svc(config);
  // Triangle with non-uniform sizes inside its symmetric edge class: must
  // be planned fresh on every arrival, never cached.
  svc.RegisterQuery("lopsided", catalog::Triangle(),
                    SizedInstance(catalog::Triangle(), {64, 64, 128}));
  const service::ServiceRunStats stats = svc.Run();
  EXPECT_EQ(stats.plan_bypasses, stats.arrivals);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 0u);
  EXPECT_EQ(stats.load_mismatches, 0u);
}

TEST(QueryServiceTest, ClosedLoopCompletesItsBudget) {
  service::ServiceConfig config = SmallConfig(/*cache_enabled=*/true);
  config.workload.mode = ArrivalMode::kClosedLoop;
  service::QueryService svc(config);
  RegisterSmallCatalog(&svc);
  const service::ServiceRunStats stats = svc.Run();
  EXPECT_EQ(stats.arrivals, 12u);
  EXPECT_EQ(stats.completed, 12u);
  // Closed loop: a client never has two queries in flight, so the queue
  // can never exceed the client count.
  EXPECT_LE(stats.max_queue_depth, 3u);
}

TEST(QueryServiceTest, ServiceLoadsMatchStandalonePipelineRuns) {
  service::ServiceConfig config = SmallConfig(/*cache_enabled=*/true);
  service::QueryService svc(config);
  RegisterSmallCatalog(&svc);
  const service::ServiceRunStats stats = svc.Run();
  for (uint32_t i = 0; i < svc.catalog_size(); ++i) {
    if (!stats.entry_fingerprints[i].executed) continue;
    const service::RegisteredQuery& entry = svc.entry(i);
    const CachedPlan plan =
        service::ComputePlan(entry.query, entry.instance, config.servers_per_query,
                             entry.canon);
    const service::ExecutionResult standalone = service::ExecuteRegistered(
        entry.query, entry.instance, plan, config.servers_per_query, /*collect=*/false);
    EXPECT_EQ(stats.entry_fingerprints[i], standalone.fingerprint) << entry.name;
  }
}

TEST(QueryServiceTest, UniformSpeedVectorIsIndistinguishableFromNoVector) {
  // Capacity-mode leasing with all-1.0 speeds must grant the same ranges
  // as historical count-based leasing, so the whole run digests equal.
  service::ServiceConfig with_speeds = SmallConfig(/*cache_enabled=*/true);
  with_speeds.server_speeds.assign(with_speeds.total_servers, 1.0);
  service::QueryService uniform(with_speeds);
  service::QueryService baseline(SmallConfig(/*cache_enabled=*/true));
  RegisterSmallCatalog(&uniform);
  RegisterSmallCatalog(&baseline);
  const service::ServiceRunStats a = uniform.Run();
  const service::ServiceRunStats b = baseline.Run();
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_EQ(a.peak_servers_leased, b.peak_servers_leased);
}

TEST(QueryServiceTest, FastServersShrinkTheLeaseFootprint) {
  // Speeds 2.0 everywhere: servers_per_query units of capacity fit in half
  // as many physical servers, so twice as many queries can run at once —
  // the lease footprint halves while every answer stays bit-identical.
  service::ServiceConfig fast = SmallConfig(/*cache_enabled=*/true);
  fast.server_speeds.assign(fast.total_servers, 2.0);
  service::QueryService doubled(fast);
  service::QueryService baseline(SmallConfig(/*cache_enabled=*/true));
  RegisterSmallCatalog(&doubled);
  RegisterSmallCatalog(&baseline);
  const service::ServiceRunStats a = doubled.Run();
  const service::ServiceRunStats b = baseline.Run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_LE(a.peak_servers_leased, b.peak_servers_leased);
  ASSERT_EQ(a.entry_fingerprints.size(), b.entry_fingerprints.size());
  for (size_t i = 0; i < a.entry_fingerprints.size(); ++i) {
    if (a.entry_fingerprints[i].executed && b.entry_fingerprints[i].executed) {
      EXPECT_EQ(a.entry_fingerprints[i], b.entry_fingerprints[i]) << "entry " << i;
    }
  }
}

TEST(QueryServiceTest, DigestIsReproducibleAcrossIdenticalServices) {
  service::QueryService a(SmallConfig(/*cache_enabled=*/true));
  service::QueryService b(SmallConfig(/*cache_enabled=*/true));
  RegisterSmallCatalog(&a);
  RegisterSmallCatalog(&b);
  EXPECT_EQ(a.Run().Digest(), b.Run().Digest());
  EXPECT_EQ(a.Run().Digest(), b.Run().Digest());  // warm runs agree too
}

}  // namespace
}  // namespace coverpack
