/// \file join_index.h
/// \brief Radix-partitioned grouped hash index over row keys.
///
/// The shared build side of the columnar join paths (HashJoin, SemiJoin,
/// grouped aggregation). One `Build` hashes each build row's key columns
/// once, partitions rows by the hash's top bits (counts first, then a
/// stable scatter — no per-bucket vectors), and lays the groups out as
/// contiguous ascending-row-id runs addressed by per-partition
/// open-addressing tables. A blocked bloom filter over the build hashes
/// lets probes reject misses with a single cache line before touching the
/// table.
///
/// Groups collect rows with *equal 64-bit key hash*, not equal keys: a
/// probe hit is a candidate set, and callers must verify key-column
/// equality per candidate (distinct keys can collide in the hash). Row ids
/// within a group ascend, so probe-in-left-order emission reproduces the
/// exact output row order of the historical unordered_map-of-vectors
/// implementation.
///
/// All scratch lives in a caller-provided Arena; Build allocates nothing
/// from the system heap in steady state.

#ifndef COVERPACK_RELATION_JOIN_INDEX_H_
#define COVERPACK_RELATION_JOIN_INDEX_H_

#include <cstdint>

#include "relation/relation.h"
#include "util/arena.h"

namespace coverpack {

/// FNV-seeded hash chain over the projection of a row onto `cols`
/// (bit-compatible with the historical operators.cc HashKey).
uint64_t HashRowKey(const Value* row, const uint32_t* cols, size_t num_cols);

/// True when the two rows agree on their projected key columns.
inline bool RowKeysEqual(const Value* a, const uint32_t* a_cols, const Value* b,
                         const uint32_t* b_cols, size_t num_cols) {
  for (size_t i = 0; i < num_cols; ++i) {
    if (a[a_cols[i]] != b[b_cols[i]]) return false;
  }
  return true;
}

class GroupedKeyIndex {
 public:
  explicit GroupedKeyIndex(Arena* arena) : arena_(arena) {}

  /// Indexes `rel` grouped by the hash of its `key_cols` projection.
  /// Requires rel.size() <= UINT32_MAX (row ids are 32-bit).
  void Build(const Relation& rel, const uint32_t* key_cols, size_t num_key_cols);

  /// Build-row ids whose key hash equals `hash`, ascending. Empty when no
  /// group matches. Callers verify key equality per id.
  struct Candidates {
    const uint32_t* begin = nullptr;
    const uint32_t* end = nullptr;
    bool empty() const { return begin == end; }
  };
  Candidates Probe(uint64_t hash) const;

  /// Dense id of the group whose key hash equals `hash`, or kNoGroup.
  static constexpr uint32_t kNoGroup = 0xFFFFFFFFu;
  uint32_t ProbeGroup(uint64_t hash) const;

  /// Row-id run of a group (ascending).
  Candidates GroupRows(uint32_t group) const {
    return Candidates{row_ids_ + group_start_[group], row_ids_ + group_start_[group + 1]};
  }

  /// Blocked bloom pre-filter: false means no build row hashes to `hash`.
  bool MightContain(uint64_t hash) const {
    if (num_rows_ == 0) return false;
    uint64_t word = bloom_[(hash >> 32) & bloom_mask_];
    uint64_t mask = (uint64_t{1} << (hash & 63)) | (uint64_t{1} << ((hash >> 6) & 63));
    return (word & mask) == mask;
  }

  size_t num_rows() const { return num_rows_; }

  /// The per-row key hashes computed during Build (index = build row id).
  const uint64_t* hashes() const { return hashes_; }

  /// Number of distinct key hashes (== number of groups).
  size_t num_groups() const { return num_groups_; }

  /// Group id a build row landed in (index = build row id); group ids are
  /// dense in [0, num_groups()). Useful for grouped aggregation.
  const uint32_t* group_of_row() const { return group_of_row_; }

 private:
  struct Partition {
    uint32_t slot_offset = 0;  // into slot arrays
    uint32_t slot_mask = 0;    // capacity - 1 (capacity is a power of two)
  };

  Arena* arena_;
  size_t num_rows_ = 0;
  size_t num_groups_ = 0;
  uint32_t partition_shift_ = 64;  // hash >> shift selects the partition

  const Partition* partitions_ = nullptr;
  uint64_t* slot_hash_ = nullptr;   // open-addressing: key hash per slot
  uint32_t* slot_group_ = nullptr;  // group id per slot; kEmptySlot if free
  uint32_t* group_start_ = nullptr; // group id -> offset into row_ids_
  uint32_t* group_len_ = nullptr;
  uint32_t* row_ids_ = nullptr;     // concatenated groups, ascending per group
  uint32_t* group_of_row_ = nullptr;
  uint64_t* hashes_ = nullptr;
  uint64_t* bloom_ = nullptr;
  uint64_t bloom_mask_ = 0;
};

/// Saturating per-key aggregation of 64-bit weights over a relation's key
/// columns: the grouped-hash replacement for the historical
/// `unordered_map<vector<Value>, uint64_t>` weight sums of the Yannakakis
/// passes. Exact keys, not hashes: colliding keys within a hash group get
/// separate entries (a short per-group chain, length 1 in practice).
class KeyedWeightSums {
 public:
  explicit KeyedWeightSums(Arena* arena)
      : arena_(arena), index_(arena), entries_(arena) {}

  /// Aggregates `weights[i]` (all ones when null) per exact key of `rel`'s
  /// `key_cols` projection, with saturating addition.
  void Build(const Relation& rel, const uint32_t* key_cols, size_t num_key_cols,
             const uint64_t* weights);

  /// Saturated weight sum for the key of `row` projected through `cols`
  /// (same column count as Build); 0 when the key never occurred.
  uint64_t Lookup(const Value* row, const uint32_t* cols) const;

 private:
  struct Entry {
    uint32_t rep_row;  // a build row carrying this exact key
    uint32_t next;     // next entry in the group chain, or kNone
    uint64_t sum;
  };
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  Arena* arena_;
  GroupedKeyIndex index_;
  ArenaVector<Entry> entries_;
  uint32_t* group_head_ = nullptr;
  const Value* build_base_ = nullptr;
  uint32_t build_width_ = 0;
  const uint32_t* key_cols_ = nullptr;
  size_t num_key_cols_ = 0;
};

}  // namespace coverpack

#endif  // COVERPACK_RELATION_JOIN_INDEX_H_
