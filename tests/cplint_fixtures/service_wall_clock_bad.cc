// cplint fixture: a service latency probe that reads the wall clock. Any of
// these in src/service/ would leak host time into throughput/p99 results and
// break bit-identical reports across thread counts.
#include <chrono>
#include <ctime>

struct QueryTimer {
  long admitted_at = 0;
  long completed_at = 0;
};

QueryTimer StampArrival() {
  QueryTimer timer;
  timer.admitted_at =
      std::chrono::system_clock::now().time_since_epoch().count();
  timer.completed_at = time(nullptr);
  return timer;
}
