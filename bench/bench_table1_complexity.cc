/// \file bench_table1_complexity.cc
/// \brief Thin wrapper: the experiment body lives in
/// bench/experiments/table1_complexity.cc and is registered in the experiment
/// registry, so the unified driver (coverpack_bench) and this historical
/// one-display binary share one implementation.

#include "experiments/experiments.h"

int main() { return coverpack::bench::RunExperimentStandalone("table1_complexity"); }
