/// \file random_queries.h
/// \brief Random query generators for property-based testing.
///
/// RandomAcyclicQuery builds a random join *tree* directly — every new
/// relation shares a nonempty subset of one existing relation's attributes
/// and adds fresh ones — so alpha-acyclicity holds by construction and the
/// structural theorems (integral rho*, S(E) max size, Theorem 5 load) can
/// be fuzzed across thousands of shapes. RandomDegreeTwoQuery samples the
/// dual graph (relations = vertices, attributes = edges), covering both
/// bipartite (no odd cycle) and non-bipartite cases of Section 5.2.

#ifndef COVERPACK_WORKLOAD_RANDOM_QUERIES_H_
#define COVERPACK_WORKLOAD_RANDOM_QUERIES_H_

#include <cstdint>

#include "query/hypergraph.h"
#include "util/random.h"

namespace coverpack {
namespace workload {

/// Options for RandomAcyclicQuery.
struct RandomAcyclicOptions {
  uint32_t min_edges = 2;
  uint32_t max_edges = 7;
  uint32_t max_shared_attrs = 2;  ///< attrs inherited from the parent
  uint32_t max_fresh_attrs = 2;   ///< new attrs per relation (>= 1 forced on roots)
};

/// A random alpha-acyclic query (acyclic by construction; verified in
/// debug builds). Relation names are R1..Rk; attributes X0, X1, ...
Hypergraph RandomAcyclicQuery(Rng* rng, const RandomAcyclicOptions& options = {});

/// A random degree-two query: every attribute appears in exactly two
/// relations. `num_edges` >= 2; `num_attrs` >= num_edges - 1 recommended.
/// The result may be reducible or disconnected; callers filter as needed.
Hypergraph RandomDegreeTwoQuery(Rng* rng, uint32_t num_edges, uint32_t num_attrs);

}  // namespace workload
}  // namespace coverpack

#endif  // COVERPACK_WORKLOAD_RANDOM_QUERIES_H_
