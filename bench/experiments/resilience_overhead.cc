/// \file resilience_overhead.cc
/// \brief Measures the resilience subsystem: recovery cost and makespan
/// under injected crashes, message corruption, and stragglers.
///
/// Three claims are checked, per workload and p:
///
///  1. **Bit-identical recovery.** Re-running an experiment under any
///     FaultPlan (crashes, drops, duplicates) yields exactly the fault-free
///     loads, rounds, and output counts — faults cost retries, never
///     answers.
///  2. **Bounded recovery cost.** Replaying a crashed server's round
///     re-sends at most its planned receive, which is at most the round's
///     bottleneck load: recovery.tuples_resent_crash <= crashes x L and
///     recovery.max_single_resend <= L.
///  3. **Makespan shape.** The heterogeneity cost model
///     makespan = sum_r max_s load(r,s)/speed_s collapses to the
///     round-summed load at uniform speeds — keeping Theorem 5's
///     N/p^(1/rho*) exponent — and under stragglers grows by at most the
///     severity factor.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "mpc/hypercube.h"
#include "query/catalog.h"
#include "resilience/cost_model.h"
#include "resilience/fault_injector.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

namespace {

/// One fault schedule of the sweep.
struct FaultConfig {
  const char* name;
  resilience::FaultSpec spec;
};

bool TrackersEqual(const LoadTracker& a, const LoadTracker& b) {
  if (a.num_servers() != b.num_servers() || a.num_rounds() != b.num_rounds()) return false;
  for (uint32_t r = 0; r < a.num_rounds(); ++r) {
    for (uint32_t s = 0; s < a.num_servers(); ++s) {
      if (a.At(r, s) != b.At(r, s)) return false;
    }
  }
  return true;
}

/// Ledger growth between two snapshots (counters only).
resilience::ResilienceTelemetrySnapshot Delta(
    const resilience::ResilienceTelemetrySnapshot& before,
    const resilience::ResilienceTelemetrySnapshot& after) {
  resilience::ResilienceTelemetrySnapshot d;
  d.exchanges_injected = after.exchanges_injected - before.exchanges_injected;
  d.exchanges_faulted = after.exchanges_faulted - before.exchanges_faulted;
  d.crashes = after.crashes - before.crashes;
  d.rows_dropped = after.rows_dropped - before.rows_dropped;
  d.rows_duplicated = after.rows_duplicated - before.rows_duplicated;
  d.retries = after.retries - before.retries;
  d.full_reruns = after.full_reruns - before.full_reruns;
  d.tuples_resent = after.tuples_resent - before.tuples_resent;
  d.tuples_resent_crash = after.tuples_resent_crash - before.tuples_resent_crash;
  return d;
}

}  // namespace

telemetry::RunReport RunResilienceOverhead(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  const Hypergraph query = catalog::Line3();
  const uint64_t n = 20000;
  const Rational rho = RhoStar(query);
  const double theory_exponent = -1.0 / rho.ToDouble();
  const Instance instance = workload::MatchingInstance(query, n);
  const std::vector<uint32_t> ps{4, 16, 64, 256};
  const uint64_t fault_seed = ExperimentSeed(0xC0FFEE);

  std::vector<FaultConfig> configs;
  {
    FaultConfig crash_light{"crash2%", {}};
    crash_light.spec.crash_rate = 0.02;
    FaultConfig crash_heavy{"crash10%", {}};
    crash_heavy.spec.crash_rate = 0.10;
    FaultConfig corrupt{"drop+dup", {}};
    corrupt.spec.drop_rate = 0.002;
    corrupt.spec.duplicate_rate = 0.002;
    FaultConfig straggle{"straggle8x", {}};
    straggle.spec.straggler_rate = 0.25;
    straggle.spec.straggler_severity = 8.0;
    FaultConfig mixed{"crash5%+straggle", {}};
    mixed.spec.crash_rate = 0.05;
    mixed.spec.straggler_rate = 0.25;
    mixed.spec.straggler_severity = 8.0;
    configs = {crash_light, crash_heavy, corrupt, straggle, mixed};
    for (FaultConfig& config : configs) config.spec.seed = fault_seed;
  }
  report.AddParam("query", query.ToString());
  report.AddParam("N", n);
  report.AddParam("fault_seed", fault_seed);
  report.AddParam("configs", static_cast<uint64_t>(configs.size()));
  {
    telemetry::JsonValue p_grid = telemetry::JsonValue::Array();
    for (uint32_t p : ps) p_grid.Append(telemetry::JsonValue::Uint(p));
    report.params.Set("p_sweep", std::move(p_grid));
  }

  bool identical_ok = true;
  bool resend_ok = true;
  bool makespan_ok = true;
  uint64_t max_baseline_load = 0;
  std::vector<double> xs;
  std::vector<double> ys;

  std::cout << "--- line3 acyclic runs (rho* = " << rho << ", N = " << n << ")\n";
  TablePrinter table({"p", "config", "crashes", "retries", "resent", "resent/crash cap",
                      "identical", "slowdown"});
  for (uint32_t p : ps) {
    AcyclicRunOptions options;
    options.policy = RunPolicy::kOptimal;
    options.collect = false;
    options.p = p;
    const AcyclicRunResult baseline = ComputeAcyclicJoin(query, instance, options);
    ProfileRun(report, "baseline/p" + std::to_string(p), baseline.load_tracker);
    max_baseline_load = std::max(max_baseline_load, baseline.max_load);

    // Claim 3, uniform part: at speed 1 the makespan is the round-summed
    // bottleneck load; with O(1) rounds its exponent in p is -1/rho*.
    const resilience::MakespanBreakdown uniform =
        resilience::SimulateMakespan(baseline.load_tracker, resilience::FaultPlan());
    if (uniform.slowdown != 1.0) makespan_ok = false;
    xs.push_back(static_cast<double>(p));
    ys.push_back(uniform.makespan);

    for (const FaultConfig& config : configs) {
      const auto before = resilience::ResilienceTelemetry::Snapshot();
      AcyclicRunResult faulted;
      {
        resilience::ScopedFaultInjection injection(config.spec);
        faulted = ComputeAcyclicJoin(query, instance, options);
      }
      const auto delta = Delta(before, resilience::ResilienceTelemetry::Snapshot());

      // Claim 1: recovery is invisible in every measured quantity.
      const bool identical = TrackersEqual(baseline.load_tracker, faulted.load_tracker) &&
                             baseline.max_load == faulted.max_load &&
                             baseline.rounds == faulted.rounds &&
                             baseline.output_count == faulted.output_count &&
                             baseline.servers_used == faulted.servers_used;
      identical_ok = identical_ok && identical;

      // Claim 2: each crash re-sends at most one round's bottleneck load.
      const uint64_t resend_cap = delta.crashes * baseline.max_load;
      if (delta.tuples_resent_crash > resend_cap) resend_ok = false;

      // Claim 3, straggler part: the makespan is monotone in the straggler
      // schedule and bounded by severity x the uniform makespan.
      const resilience::MakespanBreakdown hetero = resilience::SimulateMakespan(
          baseline.load_tracker, resilience::FaultPlan(config.spec));
      const double severity = std::max(config.spec.straggler_severity, 1.0);
      if (hetero.makespan + 1e-9 < uniform.makespan ||
          hetero.makespan > severity * uniform.makespan + 1e-9) {
        makespan_ok = false;
      }

      table.AddRow({std::to_string(p), config.name, std::to_string(delta.crashes),
                    std::to_string(delta.retries), std::to_string(delta.tuples_resent),
                    std::to_string(resend_cap), identical ? "yes" : "NO",
                    FormatDouble(hetero.slowdown, 3)});
    }
  }
  table.Print(std::cout);

  PowerLawFit fit = FitPowerLaw(xs, ys);
  const bool exponent_ok = ReportExponent(report, "uniform_makespan", fit.slope,
                                          theory_exponent, /*tolerance=*/0.15);

  // One hypercube workload: the box join's single-round routing records and
  // materializes every routed row (unlike the charge-only acyclic sweep
  // above), so here the per-message drop/duplicate corruption path really
  // mutates destination state and must be healed tuple-for-tuple.
  bool hypercube_ok = true;
  {
    const Hypergraph box = catalog::BoxJoin();
    const Instance box_instance = workload::MatchingInstance(box, 4096);
    const uint32_t p = 64;
    std::vector<uint64_t> sizes;
    for (size_t r = 0; r < box_instance.num_relations(); ++r) {
      sizes.push_back(box_instance[r].size());
    }
    const mpc::ShareVector shares = mpc::OptimizeSharesForSizes(box, sizes, p);
    Cluster clean(p);
    const mpc::HypercubeResult base =
        mpc::HypercubeJoin(&clean, box, box_instance, shares, /*round=*/0, /*collect=*/true);
    for (const size_t config_index : {size_t{1}, size_t{2}}) {  // crash10%, drop+dup
      const FaultConfig& config = configs[config_index];
      const auto before = resilience::ResilienceTelemetry::Snapshot();
      Cluster faulty(p);
      mpc::HypercubeResult recovered;
      {
        resilience::ScopedFaultInjection injection(config.spec);
        recovered = mpc::HypercubeJoin(&faulty, box, box_instance, shares, /*round=*/0,
                                       /*collect=*/true);
      }
      const auto delta = Delta(before, resilience::ResilienceTelemetry::Snapshot());
      bool identical = base.output_count == recovered.output_count &&
                       base.max_receive_load == recovered.max_receive_load &&
                       TrackersEqual(clean.tracker(), faulty.tracker()) &&
                       base.results.num_shards() == recovered.results.num_shards();
      for (uint32_t s = 0; identical && s < base.results.num_shards(); ++s) {
        identical = base.results.shard(s).raw() == recovered.results.shard(s).raw();
      }
      // The corruption config must actually corrupt something here —
      // otherwise the "healed" claim is vacuous.
      const bool exercised =
          config_index != 2 || delta.rows_dropped + delta.rows_duplicated > 0;
      hypercube_ok = hypercube_ok && identical && exercised;
      std::cout << "hypercube box join under " << config.name << ": output "
                << recovered.output_count << ", dropped " << delta.rows_dropped
                << ", duplicated " << delta.rows_duplicated << ", retries "
                << delta.retries << ", identical: " << (identical ? "yes" : "NO") << "\n";
    }
  }

  const auto ledger = resilience::ResilienceTelemetry::Snapshot();
  if (ledger.max_single_resend > max_baseline_load) resend_ok = false;
  report.metrics.SetGauge("max_baseline_load", static_cast<double>(max_baseline_load));
  std::cout << "all faulted runs bit-identical: " << (identical_ok ? "yes" : "NO")
            << "; resend within one round's load per crash: " << (resend_ok ? "yes" : "NO")
            << "; makespan model consistent: " << (makespan_ok ? "yes" : "NO") << "\n";

  FinishReport(report,
               identical_ok && resend_ok && makespan_ok && exponent_ok && hypercube_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
