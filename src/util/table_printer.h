/// \file table_printer.h
/// \brief Aligned plain-text tables for benchmark output.
///
/// Every bench binary regenerates one of the paper's tables/figures as a
/// text table; this class keeps the formatting uniform across binaries.

#ifndef COVERPACK_UTIL_TABLE_PRINTER_H_
#define COVERPACK_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace coverpack {

/// Collects rows of string cells and prints them with column alignment.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header (padded).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: appends a horizontal separator before the next row.
  void AddSeparator();

  /// Renders the table to the stream.
  void Print(std::ostream& os) const;

  /// Renders the table to a string.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Formats a double with the given precision (fixed).
std::string FormatDouble(double value, int precision = 3);

}  // namespace coverpack

#endif  // COVERPACK_UTIL_TABLE_PRINTER_H_
