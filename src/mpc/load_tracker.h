/// \file load_tracker.h
/// \brief Per-round, per-server load accounting for the MPC simulator.
///
/// The complexity measure of the MPC model is the *load* L: the maximum
/// number of tuples received by any server in any round (Section 1.2).
/// Every communication primitive in the simulator records its receives
/// here; the benches read MaxLoad() and NumRounds() off this tracker and
/// compare them against the paper's bounds.

#ifndef COVERPACK_MPC_LOAD_TRACKER_H_
#define COVERPACK_MPC_LOAD_TRACKER_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace coverpack {

/// A matrix of received-message counts indexed by (round, server).
class LoadTracker {
 public:
  explicit LoadTracker(uint32_t num_servers);

  uint32_t num_servers() const { return num_servers_; }
  uint32_t num_rounds() const { return static_cast<uint32_t>(rounds_.size()); }

  /// Records `amount` tuples received by `server` in `round`. Rounds grow
  /// on demand.
  void Add(uint32_t round, uint32_t server, uint64_t amount);

  /// Load of one (round, server) cell; zero if the round does not exist.
  uint64_t At(uint32_t round, uint32_t server) const;

  /// The MPC load L: max over all rounds and servers.
  uint64_t MaxLoad() const;

  /// Maximum load of a specific round.
  uint64_t MaxLoadOfRound(uint32_t round) const;

  /// Total communication volume (sum over all cells).
  uint64_t TotalCommunication() const;

  /// Per-server loads of one round (num_servers() entries, zeros included).
  /// The round must exist. Read-only view for the telemetry profiler.
  const std::vector<uint64_t>& RoundLoads(uint32_t round) const;

  /// Sum of one round's row; zero if the round does not exist.
  uint64_t TotalOfRound(uint32_t round) const;

  /// Mean load of one round over *all* servers (busy or not); zero if the
  /// round does not exist.
  double MeanLoadOfRound(uint32_t round) const;

  /// Merges a child tracker that ran on a contiguous sub-range of this
  /// tracker's servers, starting at `server_offset`, with its round 0
  /// aligned to `round_offset` here.
  void Merge(const LoadTracker& child, uint32_t server_offset, uint32_t round_offset);

  /// Merges a child tracker through an arbitrary child-server -> set of
  /// physical servers mapping: child server c's loads are added to every
  /// physical server s with map(s) == c. Used for the Case II hypercube
  /// grid, where the run of component i on p_i logical servers is
  /// replicated across the other grid dimensions.
  void MergeMapped(const LoadTracker& child, uint32_t round_offset,
                   const std::function<uint32_t(uint32_t)>& physical_to_child);

 private:
  uint32_t num_servers_;
  std::vector<std::vector<uint64_t>> rounds_;
};

}  // namespace coverpack

#endif  // COVERPACK_MPC_LOAD_TRACKER_H_
