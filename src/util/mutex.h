/// \file mutex.h
/// \brief Annotated mutex wrappers for clang Thread Safety Analysis.
///
/// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
/// annotations, so `CP_GUARDED_BY(some_std_mutex)` is unenforceable: the
/// analysis never sees an acquire. These zero-cost wrappers close that
/// gap — `Mutex` is a CP_CAPABILITY whose Lock/Unlock are annotated, and
/// `MutexLock` / `DualMutexLock` are the scoped guards the analysis
/// tracks. All shared-state classes in the repo (MetricsRegistry,
/// ThreadPool, the Exchange and resilience ledgers) lock through these.
///
/// Condition variables: use std::condition_variable_any and wait on the
/// Mutex directly (`cv.wait(mutex_)`) with an explicit predicate loop.
/// The wait re-locks before returning, so from the caller's (and the
/// analysis's) point of view the capability is held throughout — which is
/// exactly the guarantee the surrounding code relies on. Predicates must
/// be written as `while (!pred) cv.wait(mu);` rather than the
/// lambda-predicate overload: the analysis does not propagate held
/// capabilities into lambda bodies, so a guarded read inside the lambda
/// would (spuriously) fail the analysis.

#ifndef COVERPACK_UTIL_MUTEX_H_
#define COVERPACK_UTIL_MUTEX_H_

#include <mutex>

#include "util/thread_annotations.h"

namespace coverpack {

/// An annotated std::mutex. Also satisfies *BasicLockable* (lowercase
/// lock/unlock) so std::condition_variable_any can wait on it directly.
class CP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CP_ACQUIRE() { m_.lock(); }
  void Unlock() CP_RELEASE() { m_.unlock(); }

  // BasicLockable spelling, required by std::condition_variable_any. The
  // cv's internal unlock/relock during a wait is invisible to the
  // analysis, matching the caller-visible contract (held before, held
  // after).
  void lock() CP_ACQUIRE() { m_.lock(); }      // NOLINT(readability-identifier-naming)
  void unlock() CP_RELEASE() { m_.unlock(); }  // NOLINT(readability-identifier-naming)

  /// The wrapped std::mutex, for interop with std::lock-style algorithms.
  /// Acquisitions through it are invisible to the analysis — callers must
  /// carry their own annotations (see DualMutexLock).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII guard over one Mutex (the annotated std::lock_guard).
class CP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() CP_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII guard over two Mutexes with deadlock-avoiding acquisition order
/// (the annotated two-mutex std::scoped_lock, for symmetric operations
/// like MetricsRegistry copy-assignment where concurrent `a = b; b = a;`
/// must not deadlock).
class CP_SCOPED_CAPABILITY DualMutexLock {
 public:
  DualMutexLock(Mutex& a, Mutex& b) CP_ACQUIRE(a, b) : a_(a), b_(b) {
    // std::lock's ordering protocol on the native handles; the acquire is
    // carried by this constructor's annotation, as libc++'s scoped_lock
    // does with its own.
    std::lock(a_.native(), b_.native());
  }
  ~DualMutexLock() CP_RELEASE() {
    a_.native().unlock();
    b_.native().unlock();
  }

  DualMutexLock(const DualMutexLock&) = delete;
  DualMutexLock& operator=(const DualMutexLock&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

}  // namespace coverpack

#endif  // COVERPACK_UTIL_MUTEX_H_
