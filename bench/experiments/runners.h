/// \file runners.h
/// \brief Run-function declarations for every registered experiment.
///
/// One function per file under bench/experiments/; the registry table in
/// experiments.cc binds each to its id/title/claim row.

#ifndef COVERPACK_BENCH_EXPERIMENTS_RUNNERS_H_
#define COVERPACK_BENCH_EXPERIMENTS_RUNNERS_H_

#include <cstdint>
#include <string>

#include "experiments/experiments.h"

namespace coverpack {
namespace bench {

/// Base-seed override for experiment randomness — the driver's --seed
/// flag. 0 = unset: every experiment keeps its historical fixed seeds, so
/// default runs stay byte-identical run to run. When set, ExperimentSeed
/// mixes the base into each call site's historical seed, giving every
/// random stream a fresh but fully deterministic identity.
void SetExperimentBaseSeed(uint64_t seed);
uint64_t ExperimentBaseSeed();

/// The seed an experiment call site should use: `site_seed` itself when no
/// base override is set, HashCombine(base, site_seed) otherwise.
uint64_t ExperimentSeed(uint64_t site_seed);

telemetry::RunReport RunTable1Complexity(const Experiment& e);
telemetry::RunReport RunFig1Classification(const Experiment& e);
telemetry::RunReport RunFig2BoxJoin(const Experiment& e);
telemetry::RunReport RunFig3CoverVsPack(const Experiment& e);
telemetry::RunReport RunFig4JoinTree(const Experiment& e);
telemetry::RunReport RunFig56Decomposition(const Experiment& e);
telemetry::RunReport RunFig7PackingProvable(const Experiment& e);
telemetry::RunReport RunThm2SubjoinLoad(const Experiment& e);
telemetry::RunReport RunThm5OptimalAcyclic(const Experiment& e);
telemetry::RunReport RunThm5RandomQueries(const Experiment& e);
telemetry::RunReport RunThm6BoxLower(const Experiment& e);
telemetry::RunReport RunThm7DegreeTwo(const Experiment& e);
telemetry::RunReport RunEx34Gap(const Experiment& e);
telemetry::RunReport RunIntroGap(const Experiment& e);
telemetry::RunReport RunAblationPolicy(const Experiment& e);
telemetry::RunReport RunEmReduction(const Experiment& e);
telemetry::RunReport RunOutputSensitivity(const Experiment& e);
telemetry::RunReport RunResilienceOverhead(const Experiment& e);
telemetry::RunReport RunServiceThroughput(const Experiment& e);
telemetry::RunReport RunPlannerAblation(const Experiment& e);
telemetry::RunReport RunClusterElastic(const Experiment& e);

/// Driver-flag overrides for the service_throughput experiment — the
/// --clients / --arrival / --zipf-s / --no-cache flags of coverpack_bench.
/// Defaults leave the registered sweep untouched.
struct ServiceBenchOverrides {
  uint32_t clients = 0;    ///< 0 = default client sweep {2, 8, 16}
  std::string arrival;     ///< "" = open loop plus bursty/closed extras
  double zipf_skew = 0.0;  ///< <= 0 = WorkloadConfig default
  bool no_cache = false;   ///< true = run only the cache-off variant
};
void SetServiceBenchOverrides(const ServiceBenchOverrides& overrides);

/// Driver-flag override for the planner_ablation experiment — the
/// --planner flag of coverpack_bench. "" or "auto" = the cost-based
/// chooser; a forced algorithm name makes the experiment a diagnostic
/// sweep (claims auto-pass; the table shows what forcing costs).
struct PlannerBenchOverrides {
  std::string mode;  ///< "", "auto", "one_round", "acyclic", "output_balanced"
};
void SetPlannerBenchOverrides(const PlannerBenchOverrides& overrides);

/// Driver-flag overrides for the cluster_elastic experiment — the --speeds
/// and --elastic flags of coverpack_bench. Empty strings keep the
/// registered sweep (all speed specs x all schedules); a value narrows the
/// sweep to that single point. Values are validated by ParseSpeedSpec /
/// ParseElasticSpec at the driver.
struct ClusterBenchOverrides {
  std::string speeds;   ///< "" = sweep; else one SpeedSpec flag value
  std::string elastic;  ///< "" = sweep; else one ElasticSpec flag value
};
void SetClusterBenchOverrides(const ClusterBenchOverrides& overrides);

}  // namespace bench
}  // namespace coverpack

#endif  // COVERPACK_BENCH_EXPERIMENTS_RUNNERS_H_
