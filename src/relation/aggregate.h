/// \file aggregate.h
/// \brief Join-aggregate queries over annotated relations (Appendix A.5).
///
/// Every tuple carries an annotation from a commutative semiring
/// (S, combine, multiply). A join result's annotation is the product of
/// its constituent tuples'; the query groups results by the output
/// attributes y and combines each group's annotations. COUNT(*) GROUP BY y
/// is the (add, multiply) instance with all-1 annotations — exactly what
/// Section 3.2 uses to compute the subjoin statistics |subjoin(T,R,S)|.
///
/// Free-connex queries (the class evaluable in O(N) + output time) are
/// recognized with the classical criterion: Q with output y is free-connex
/// iff the hypergraph Q plus a virtual hyperedge covering exactly y is
/// alpha-acyclic; evaluation then runs Yannakakis-style message passing on
/// a join tree of the extended query rooted at the virtual edge.

#ifndef COVERPACK_RELATION_AGGREGATE_H_
#define COVERPACK_RELATION_AGGREGATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {

/// A commutative semiring over uint64 annotations.
struct Semiring {
  std::function<uint64_t(uint64_t, uint64_t)> combine;   ///< group aggregation
  uint64_t combine_identity;
  std::function<uint64_t(uint64_t, uint64_t)> multiply;  ///< join composition
  uint64_t multiply_identity;
};

/// (add, multiply) with saturation: COUNT/SUM-style aggregation.
Semiring CountingSemiring();

/// (min, add) tropical semiring: lightest join result per group.
Semiring TropicalSemiring();

/// Per-relation annotations; weights[e][i] annotates row i of relation e.
using Annotations = std::vector<std::vector<uint64_t>>;

/// All-1 annotations for an instance (the COUNT query).
Annotations UnitAnnotations(const Instance& instance);

/// Aggregated output: one row of `keys` (schema = the output attributes)
/// per group, with its combined annotation in `values`.
struct AggregateResult {
  Relation keys;
  std::vector<uint64_t> values;
};

/// True iff the query with output attributes y is free-connex acyclic:
/// Q plus a virtual edge over y is alpha-acyclic. (For y = all attributes
/// this reduces to plain alpha-acyclicity; for y = empty, too.)
bool IsFreeConnex(const Hypergraph& query, AttrSet output_attrs);

/// Evaluates the join-aggregate query by message passing over a join tree
/// of the extended hypergraph. Requires IsFreeConnex(query, output_attrs);
/// aborts otherwise. Runs in O(input log input + output).
AggregateResult JoinAggregate(const Hypergraph& query, const Instance& instance,
                              const Annotations& annotations, AttrSet output_attrs,
                              const Semiring& semiring);

/// Scalar aggregate (y = empty): e.g. |Q(R)| under the counting semiring.
uint64_t JoinAggregateScalar(const Hypergraph& query, const Instance& instance,
                             const Annotations& annotations, const Semiring& semiring);

/// Reference implementation: materialize the join, group, combine.
/// Exponential-size safe only for test instances.
AggregateResult JoinAggregateBruteForce(const Hypergraph& query, const Instance& instance,
                                        const Annotations& annotations, AttrSet output_attrs,
                                        const Semiring& semiring);

}  // namespace coverpack

#endif  // COVERPACK_RELATION_AGGREGATE_H_
