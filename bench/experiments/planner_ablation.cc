/// \file planner_ablation.cc
/// \brief Differential ablation of the cost-based plan chooser.
///
/// Runs the planner's seeded differential corpus (named catalog shapes
/// plus random acyclic / degree-two queries under matching, uniform, and
/// Zipf instances) and, per case, executes *every* applicable algorithm of
/// the menu, then checks two claims against the measured loads:
///
///  1. **Near-best constants.** The chooser's pick lands within 10% of the
///     best measured bottleneck load on at least 95% of the corpus.
///  2. **Exponent never lost.** On every single case the pick's measured
///     load stays within the output-balanced slack factor (4x) of the best
///     measured load — the guard rails in the cost model make losing more
///     than constants impossible, and this verifies it empirically.
///
/// Any violating case prints the full (query, stats, cost table, measured
/// runs) repro block. The --planner flag forces one algorithm for the
/// whole corpus (claims are only judged in auto mode — forced modes exist
/// to measure what the chooser is saving). Decision tallies, chooser
/// cache reuse, and the est/actual error distribution land in the report
/// as planner.* metrics (see EXPERIMENTS.md).

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "experiments/runners.h"
#include "planner/differential.h"
#include "service/query_service.h"
#include "telemetry/planner_metrics.h"
#include "util/hash.h"

namespace coverpack {
namespace bench {

namespace {

PlannerBenchOverrides g_planner_overrides;

constexpr uint32_t kRandomCases = 24;
constexpr uint32_t kServers = 64;
constexpr double kWithinSlack = 1.10;   ///< claim 1: within 10% of best
constexpr double kWithinQuota = 0.95;   ///< ... on >= 95% of the corpus
constexpr double kExponentSlack = 4.0;  ///< claim 2: never beyond 4x best

}  // namespace

void SetPlannerBenchOverrides(const PlannerBenchOverrides& overrides) {
  g_planner_overrides = overrides;
}

telemetry::RunReport RunPlannerAblation(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  const std::string mode_name =
      g_planner_overrides.mode.empty() ? "auto" : g_planner_overrides.mode;
  // The driver validates --planner, so value_or only covers direct callers.
  const service::PlannerMode mode =
      service::ParsePlannerMode(mode_name).value_or(service::PlannerMode::kAuto);
  const bool forced = mode != service::PlannerMode::kAuto;
  planner::Algorithm forced_algorithm = planner::Algorithm::kOneRound;
  if (mode == service::PlannerMode::kForceAcyclic) {
    forced_algorithm = planner::Algorithm::kAcyclicMultiRound;
  } else if (mode == service::PlannerMode::kForceOutputBalanced) {
    forced_algorithm = planner::Algorithm::kOutputBalanced;
  }

  const uint64_t seed = ExperimentSeed(HashCombine(0x91A77E4, 1));
  const std::vector<planner::DifferentialCase> corpus =
      planner::BuildDifferentialCorpus(seed, kRandomCases);

  report.AddParam("planner_mode", mode_name);
  report.AddParam("corpus_cases", static_cast<uint64_t>(corpus.size()));
  report.AddParam("servers", uint64_t{kServers});
  report.AddParam("seed", seed);

  planner::DecisionLedger ledger;
  uint64_t within = 0;
  uint64_t exponent_ok = 0;
  TablePrinter table({"case", "decision", "est_load", "actual", "best", "best_algo",
                      "est/actual"});
  for (const planner::DifferentialCase& c : corpus) {
    planner::DifferentialOutcome outcome =
        planner::EvaluateCase(c.query, c.instance, kServers);
    // A forced mode overrides the chooser wherever the algorithm applies —
    // the same fallback-to-auto semantics the service uses.
    if (forced) {
      for (const planner::AlgorithmRun& run : outcome.runs) {
        if (run.algorithm != forced_algorithm) continue;
        outcome.decision.algorithm = forced_algorithm;
        outcome.decision.est_load =
            outcome.decision.table.ForAlgorithm(forced_algorithm).est_load;
        outcome.chosen_actual_load = run.actual_load;
        outcome.chosen_actual_ticks = run.actual_ticks;
      }
    }
    ledger.CountDecision(outcome.decision.algorithm);
    ++ledger.cache_misses;  // every bench case is planned fresh
    if (outcome.chosen_actual_load > 0) {
      ledger.est_error_ratios.push_back(
          static_cast<double>(outcome.decision.est_load) /
          static_cast<double>(outcome.chosen_actual_load));
    }

    const bool case_within = outcome.ChooserWithin(kWithinSlack);
    const bool case_exponent = outcome.ChooserWithin(kExponentSlack);
    if (case_within) ++within;
    if (case_exponent) ++exponent_ok;
    if (!forced && (!case_within || !case_exponent)) {
      std::cout << outcome.Repro(c.name, c.query, kServers);
    }
    const double ratio =
        outcome.chosen_actual_load == 0
            ? 0.0
            : static_cast<double>(outcome.decision.est_load) /
                  static_cast<double>(outcome.chosen_actual_load);
    table.AddRow({c.name, planner::AlgorithmName(outcome.decision.algorithm),
                  std::to_string(outcome.decision.est_load),
                  std::to_string(outcome.chosen_actual_load),
                  std::to_string(outcome.best_actual_load),
                  planner::AlgorithmName(outcome.best_algorithm),
                  FormatDouble(ratio, 3)});
  }
  table.Print(std::cout);

  const double within_fraction =
      corpus.empty() ? 0.0 : static_cast<double>(within) / static_cast<double>(corpus.size());
  const bool within_ok = within_fraction >= kWithinQuota;
  const bool exponent_never_lost = exponent_ok == corpus.size();

  telemetry::SnapshotPlannerStatsInto(ledger, "ablation", &report.metrics);
  report.metrics.SetGauge("planner.ablation.within_10pct_fraction", within_fraction);
  report.metrics.AddCounter("planner.ablation.exponent_violations",
                            static_cast<uint64_t>(corpus.size()) - exponent_ok);

  std::cout << "within 10% of best actual load: " << within << "/" << corpus.size()
            << " (need >= " << kWithinQuota * 100 << "%): "
            << (within_ok ? "yes" : "NO")
            << "\nexponent never lost (<= " << kExponentSlack << "x best on every case): "
            << (exponent_never_lost ? "yes" : "NO") << "\n";

  // Forced modes are diagnostic sweeps; only the chooser itself is judged.
  FinishReport(report, forced || (within_ok && exponent_never_lost));
  return report;
}

}  // namespace bench
}  // namespace coverpack
