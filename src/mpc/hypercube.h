/// \file hypercube.h
/// \brief The one-round HyperCube (shares) algorithm [3, 6].
///
/// Servers are arranged in a grid with one dimension per attribute; each
/// attribute gets a *share* p_x with prod_x p_x <= p. A tuple of relation e
/// is replicated to every grid cell that agrees with the hashes of its
/// attributes. On skew-free instances the optimal share exponents come from
/// the LP dual of fractional edge packing, giving load ~ N / p^(1/tau*);
/// on skewed instances the load degrades (the very gap Table 1 shows and
/// that the paper's multi-round algorithm closes).

#ifndef COVERPACK_MPC_HYPERCUBE_H_
#define COVERPACK_MPC_HYPERCUBE_H_

#include <cstdint>
#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "query/hypergraph.h"
#include "relation/instance.h"
#include "util/rational.h"

namespace coverpack {
namespace mpc {

/// Share assignment: one integer share per AttrId (attrs outside the query
/// get share 1). prod(shares) <= p.
struct ShareVector {
  std::vector<uint32_t> shares;          ///< grid extent per attribute
  std::vector<Rational> exponents;       ///< the LP exponents y_x (share_x ~ p^y_x)
  Rational objective;                    ///< min_e sum_{x in e} y_x (= 1/tau* at optimum)
  uint64_t grid_size = 1;                ///< prod(shares)
};

/// Solves max_y min_e sum_{x in e} y_x subject to sum_x y_x <= 1, y >= 0,
/// then rounds shares to integers with prod <= p (largest-share decrement).
/// The optimal objective equals 1/tau* by LP duality.
ShareVector OptimizeShares(const Hypergraph& query, uint32_t p);

/// Uniform shares p^(1/k) over a chosen subset of attributes; others 1.
/// Used by the Cartesian-product step and by tests.
ShareVector UniformShares(const Hypergraph& query, AttrSet attrs, uint32_t p);

/// Size-aware integer share optimization: greedily grows shares to
/// minimize the actual per-server replication cost
/// sum_e N_e / prod_{x in e} share_x subject to prod shares <= p.
/// The LP of OptimizeShares can have many optimal vertices with poor grid
/// utilization on concrete instances; this greedy optimizes the measured
/// quantity directly and is what the executable algorithms use.
ShareVector OptimizeSharesForSizes(const Hypergraph& query,
                                   const std::vector<uint64_t>& relation_sizes, uint32_t p);

/// Result of a hypercube run.
struct HypercubeResult {
  uint64_t max_receive_load = 0;  ///< max tuples received by one server
  uint64_t output_count = 0;      ///< join results found (collect mode)
  DistRelation results;           ///< per-server results (collect mode)
};

/// Executes one round of HyperCube routing for `instance` with `shares`,
/// charging actual receives in `round`. If `collect` is set, every server
/// then joins its fragments locally (worst-case-optimal sequential join)
/// and the results are returned.
HypercubeResult HypercubeJoin(Cluster* cluster, const Hypergraph& query,
                              const Instance& instance, const ShareVector& shares,
                              uint32_t round, bool collect);

}  // namespace mpc
}  // namespace coverpack

#endif  // COVERPACK_MPC_HYPERCUBE_H_
