/// \file planner_metrics.h
/// \brief Bridges a planner::DecisionLedger into a MetricsRegistry (and
/// therefore into RunReport / BENCH_results.json).
///
/// Follows the service_metrics.h pattern: the planner layer exposes a
/// plain struct (no telemetry dependency), and this translation lives in
/// cp_telemetry. Keys are scoped by scenario — "planner.<scenario>.*" —
/// covering the decision tallies (one_round / acyclic / output_balanced),
/// the chooser's PlanCache reuse counters, and the estimated-vs-actual
/// load error distribution. EXPERIMENTS.md documents the schema.

#ifndef COVERPACK_TELEMETRY_PLANNER_METRICS_H_
#define COVERPACK_TELEMETRY_PLANNER_METRICS_H_

#include <string>

#include "planner/plan_chooser.h"
#include "telemetry/metrics.h"

namespace coverpack {
namespace telemetry {

/// Writes `ledger` into `registry` under "planner.<scenario>.*". Every
/// value is a pure count or a ratio of two deterministic integers —
/// bit-identical across thread counts by construction. Call from the
/// thread that owns `registry`.
void SnapshotPlannerStatsInto(const planner::DecisionLedger& ledger,
                              const std::string& scenario, MetricsRegistry* registry);

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_PLANNER_METRICS_H_
