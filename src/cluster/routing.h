/// \file routing.h
/// \brief Heterogeneity-aware routing and placement over the Exchange seam.
///
/// Two layers, both deterministic and both honoring the charge-choke-point
/// invariant (all data movement goes through ExchangePlan/Exchange::Execute,
/// nothing here touches a LoadTracker directly):
///
///  * **Routing** — SpeedWeightedRouter turns an epoch's (slots, speeds)
///    into route functions for ExchangePlan::AddSource. Scatter routes row
///    i into contiguous blocks sized by largest-remainder apportionment
///    (shares exactly proportional to speed); hash partition picks the
///    destination by weighted binary search on the key hash (same key ->
///    same server, shares proportional in expectation). Conservation
///    audits and telemetry apply unchanged, because the only thing that
///    changed is the route function.
///
///  * **Placement** — the cost model as a policy. A run's LoadTracker is
///    read as p *virtual* servers; AssignVirtualServers folds them onto
///    physical servers (LPT greedy on speed-scaled finish times) and
///    ChoosePlacement evaluates every candidate assignment under the
///    folded makespan, keeping the argmin. The identity assignment is
///    always a candidate, so the chosen placement's makespan is <= the
///    speed-oblivious baseline by construction — the interesting question,
///    answered by the cluster_elastic experiment, is how often and by how
///    much the speed-aware fold wins.

#ifndef COVERPACK_CLUSTER_ROUTING_H_
#define COVERPACK_CLUSTER_ROUTING_H_

#include <cstdint>
#include <vector>

#include "mpc/exchange.h"
#include "mpc/load_tracker.h"
#include "relation/relation.h"

namespace coverpack {
namespace cluster {

/// Weighted destination picking over an active server set. Immutable after
/// construction; all queries are pure.
class SpeedWeightedRouter {
 public:
  /// `slots` are the destination server ids (ascending), `speeds` their
  /// weights (> 0), aligned by index.
  SpeedWeightedRouter(std::vector<uint32_t> slots, std::vector<double> speeds);

  uint32_t num_destinations() const { return static_cast<uint32_t>(slots_.size()); }
  const std::vector<uint32_t>& slots() const { return slots_; }
  const std::vector<double>& speeds() const { return speeds_; }

  /// Slot receiving a row with key hash `hash`: binary search of the
  /// speed-prefix-sum at a point derived from the hash's high bits.
  /// Share of hash space per slot is proportional to its speed.
  uint32_t PickByHash(uint64_t hash) const;

  /// Exact largest-remainder row targets for `total_rows` rows, aligned
  /// with slots().
  std::vector<uint64_t> ScatterTargets(uint64_t total_rows) const;

 private:
  std::vector<uint32_t> slots_;
  std::vector<double> speeds_;
  std::vector<double> prefix_;  ///< inclusive prefix sums of speeds_
};

/// Adds `source` to `plan` routed in contiguous blocks whose sizes are the
/// router's exact proportional scatter targets: block b goes to
/// router.slots()[b]. Load shares are proportional to speed to the tuple.
/// Returns the plan source index.
size_t AddWeightedScatter(mpc::ExchangePlan* plan, const Relation& source,
                          const SpeedWeightedRouter& router, bool record);

/// Adds `source` to `plan` hash-partitioned on `key_columns`: destination
/// = router.PickByHash(hash of key columns mixed with `salt`). Same key
/// always lands on the same server. Returns the plan source index.
size_t AddWeightedHashPartition(mpc::ExchangePlan* plan, const Relation& source,
                                const std::vector<uint32_t>& key_columns, uint64_t salt,
                                const SpeedWeightedRouter& router, bool record);

/// The makespan of a run when virtual server v's loads are executed on
/// physical server assignment[v]: Σ_r max_s (Σ_{v: a[v]=s} load(r,v)) / speed_s.
/// Read-only over the tracker — folding happens in the cost model, never
/// by re-charging loads.
struct FoldedMakespan {
  double makespan = 0.0;
  std::vector<double> round_makespans;
};
FoldedMakespan PlacementMakespan(const LoadTracker& virtual_tracker,
                                 const std::vector<uint32_t>& assignment,
                                 const std::vector<double>& speeds);

/// LPT greedy on related machines: virtual servers in descending total
/// load (ties by index) each go to the physical server minimizing the
/// resulting speed-scaled finish time (ties by lower server index).
std::vector<uint32_t> AssignVirtualServers(const std::vector<double>& virtual_total_loads,
                                           const std::vector<double>& speeds);

/// The placement policy: evaluates candidate virtual->physical assignments
/// (the LPT fold and, when the counts match, the identity assignment)
/// under PlacementMakespan and returns the best. `makespan` is the
/// winner's; `identity_makespan` the speed-oblivious baseline (identity
/// assignment), so makespan <= identity_makespan always holds when the
/// tracker has num_servers() == speeds.size().
struct PlacementChoice {
  std::vector<uint32_t> assignment;
  double makespan = 0.0;
  double identity_makespan = 0.0;
  bool lpt_won = false;  ///< the speed-aware fold strictly beat identity
};
PlacementChoice ChoosePlacement(const LoadTracker& virtual_tracker,
                                const std::vector<double>& speeds);

}  // namespace cluster
}  // namespace coverpack

#endif  // COVERPACK_CLUSTER_ROUTING_H_
