#include "core/em_reduction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/load_planner.h"
#include "query/catalog.h"

namespace coverpack {
namespace {

TEST(EmReductionTest, PStarSolvesTheLoadEquation) {
  // Line-3 (rho* = 2): L(N, p) = N / sqrt(p); L <= M/r at p ~ (rN/M)^2.
  Hypergraph q = catalog::Line3();
  EmCostModel em;
  em.memory = 4096;
  em.block = 64;
  uint64_t n = 1 << 16;
  EmReductionResult result = ReduceMpcToEm(q, n, em, /*rounds=*/1);
  // p* = ceil((N/M)^2) = 256.
  EXPECT_EQ(result.p_star, 256u);
  EXPECT_LE(result.load_at_p_star, em.memory);
  // One more server would be too few: check minimality.
  EXPECT_GT(PlanLoadUniform(q, n, static_cast<uint32_t>(result.p_star - 1)), em.memory);
}

TEST(EmReductionTest, IoMatchesClosedFormWithinConstants) {
  EmCostModel em;
  em.memory = 1 << 14;
  em.block = 1 << 8;
  for (uint32_t rounds : {1u, 4u}) {
    for (uint64_t n : {uint64_t{1} << 17, uint64_t{1} << 19}) {
      Hypergraph q = catalog::Line3();
      EmReductionResult result = ReduceMpcToEm(q, n, em, rounds);
      double measured = static_cast<double>(result.io_count);
      // r * p* * L / B with L = M/r and p* = (rN/M)^rho gives
      // r^rho * closed_form; allow that round-dependent constant.
      double rounds_factor = std::pow(static_cast<double>(rounds), 2.0);
      EXPECT_LE(measured, 4.0 * rounds_factor * result.closed_form + 16) << n;
      EXPECT_GE(measured * 4.0, result.closed_form) << n;
    }
  }
}

TEST(EmReductionTest, HigherRhoCostsMoreIo) {
  EmCostModel em;
  em.memory = 1 << 12;
  em.block = 1 << 6;
  uint64_t n = 1 << 15;
  EmReductionResult line = ReduceMpcToEm(catalog::Line3(), n, em, 1);       // rho* = 2
  EmReductionResult path5 = ReduceMpcToEm(catalog::Path(5), n, em, 1);      // rho* = 3
  EXPECT_GT(path5.io_count, line.io_count);
  EXPECT_GT(path5.p_star, line.p_star);
}

TEST(EmReductionTest, TrivialWhenDataFitsInMemory) {
  EmCostModel em;
  em.memory = 1 << 20;
  em.block = 1 << 10;
  EmReductionResult result = ReduceMpcToEm(catalog::Line3(), 1000, em, 1);
  EXPECT_EQ(result.p_star, 1u);  // one "server" suffices: in-memory join
}

}  // namespace
}  // namespace coverpack
