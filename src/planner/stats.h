/// \file stats.h
/// \brief Lightweight per-attribute statistics for the plan chooser.
///
/// The cost model (cost_model.h) ranks the paper's algorithm menu from
/// three per-column summaries computed over every relation of an instance:
///
///  * an equi-width histogram over a power-of-two domain with a fixed
///    power-of-two bucket count — bucket boundaries of a narrower domain
///    nest *exactly* inside a wider one, so merging two histograms (widen
///    to the larger domain, fold buckets pairwise, add) is exact and
///    associative, and shard-parallel construction is bit-identical to
///    serial construction at any thread count;
///  * an exact per-value degree map (std::map — ordered, per the
///    no-unordered-iteration project rule), reduced to distinct count and
///    maximum degree; merge is key-wise addition, likewise associative;
///  * the row count.
///
/// A StatsSnapshot bundles the per-relation summaries and extends the
/// service's structure-keyed StatsSignature: per-relation digests are
/// built from sorted per-column digests (invariant under attribute
/// renaming), paired with the canonical edge colors of the query shape
/// (invariant under relation renaming), sorted, and hashed. Isomorphic
/// queries over identically-distributed instances therefore share one
/// extended signature — and one PlanCache entry — while instances whose
/// statistics drift apart get distinct signatures even when their relation
/// sizes agree.

#ifndef COVERPACK_PLANNER_STATS_H_
#define COVERPACK_PLANNER_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "query/hypergraph.h"
#include "relation/instance.h"
#include "relation/relation.h"

namespace coverpack {
namespace planner {

/// Bucket count of every histogram; a power of two so domain widening
/// folds buckets exactly (pairs of narrow buckets tile one wide bucket).
inline constexpr uint32_t kHistogramBuckets = 16;

/// log2 of the smallest histogram domain: bucket width 1 at 16 buckets.
inline constexpr uint32_t kMinLog2Domain = 4;

/// Equi-width histogram over the value domain [0, 2^log2_domain).
struct ColumnHistogram {
  uint32_t log2_domain = kMinLog2Domain;
  uint64_t rows = 0;
  Value max_value = 0;  ///< meaningful only when rows > 0
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Adds one value, widening the domain (exactly) as needed.
  void Add(Value value);

  /// Widens to a larger domain by folding buckets pairwise per doubling.
  /// Exact: the fold loses no information a wider histogram would have.
  void WidenTo(uint32_t target_log2_domain);

  /// Content digest, independent of construction order.
  uint64_t Digest() const;

  bool operator==(const ColumnHistogram& other) const = default;
};

/// Exact and associative merge (both sides widened to the max domain).
ColumnHistogram MergeHistograms(const ColumnHistogram& a, const ColumnHistogram& b);

/// Exact per-value occurrence counts of one column. Ordered by
/// construction (std::map), so iteration is deterministic.
using DegreeMap = std::map<Value, uint64_t>;

/// Key-wise sum — the (associative, commutative) merge of two counts.
DegreeMap MergeDegreeMaps(const DegreeMap& a, const DegreeMap& b);

/// The summary the cost model reads for one column of one relation.
struct ColumnStats {
  AttrId attr = 0;  ///< attribute id (not part of the digest: rename-free)
  uint64_t rows = 0;
  uint64_t distinct = 0;
  uint64_t max_degree = 0;  ///< heaviest value's occurrence count
  ColumnHistogram histogram;

  /// Rename-invariant content digest (excludes `attr`).
  uint64_t Digest() const;
};

/// All column summaries of one relation, in ascending-AttrId schema order.
struct RelationStats {
  uint64_t rows = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats& ColumnFor(AttrId attr) const;

  /// Digest over the *sorted multiset* of column digests plus the row
  /// count — invariant under any permutation or renaming of attributes.
  uint64_t Digest() const;
};

/// Per-attribute statistics for a whole instance, indexed by EdgeId.
struct StatsSnapshot {
  std::vector<RelationStats> relations;
  uint64_t max_relation_rows = 0;  ///< the paper's N
  uint64_t total_rows = 0;

  std::vector<uint64_t> RelationSizes() const;

  /// Pretty rendering for differential-test repro output.
  std::string ToString(const Hypergraph& query) const;
};

/// Builds the column summaries of one relation, shard-parallel over its
/// rows with shard-ordered merges: bit-identical at any thread count.
RelationStats BuildRelationStats(const Relation& relation);

/// Builds the full snapshot (every relation of the instance).
StatsSnapshot BuildStatsSnapshot(const Hypergraph& query, const Instance& instance);

/// Extends a structure-keyed stats signature with the snapshot's content:
/// per-relation digests are paired with the canonical edge colors
/// (service::ShapeCanon::edge_colors — passed as a plain vector so the
/// planner does not depend on the service layer), sorted, hashed, and
/// combined with `base_signature`. Isomorphic queries over isomorphic
/// instances agree; drifting value distributions diverge.
uint64_t SnapshotSignature(const std::vector<uint64_t>& edge_colors,
                           const StatsSnapshot& snapshot, uint64_t base_signature);

}  // namespace planner
}  // namespace coverpack

#endif  // COVERPACK_PLANNER_STATS_H_
