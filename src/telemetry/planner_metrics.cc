#include "telemetry/planner_metrics.h"

#include <algorithm>
#include <vector>

namespace coverpack {
namespace telemetry {

void SnapshotPlannerStatsInto(const planner::DecisionLedger& ledger,
                              const std::string& scenario, MetricsRegistry* registry) {
  const std::string prefix = "planner." + scenario + ".";

  registry->AddCounter(prefix + "decisions_one_round", ledger.decisions_one_round);
  registry->AddCounter(prefix + "decisions_acyclic", ledger.decisions_acyclic);
  registry->AddCounter(prefix + "decisions_output_balanced",
                       ledger.decisions_output_balanced);
  registry->AddCounter(prefix + "decisions_total", ledger.TotalDecisions());
  registry->AddCounter(prefix + "cache_hits", ledger.cache_hits);
  registry->AddCounter(prefix + "cache_misses", ledger.cache_misses);

  // Estimated-vs-actual bottleneck load, as the ratio est/actual. 1.0 is a
  // perfect estimate; buckets tighten around it so the report shows how
  // much of the corpus the model got within 10% / 25% / 2x.
  static const std::vector<double> kErrorBounds{0.25, 0.5, 0.75, 0.9,  1.0,
                                                1.1,  1.25, 1.5,  2.0, 4.0};
  Histogram& errors = registry->GetHistogram(prefix + "est_error_ratio", kErrorBounds);
  double max_ratio = 0.0;
  double sum = 0.0;
  for (double ratio : ledger.est_error_ratios) {
    errors.Observe(ratio);
    max_ratio = std::max(max_ratio, ratio);
    sum += ratio;
  }
  registry->SetGauge(prefix + "est_error_max", max_ratio);
  registry->SetGauge(prefix + "est_error_mean",
                     ledger.est_error_ratios.empty()
                         ? 0.0
                         : sum / static_cast<double>(ledger.est_error_ratios.size()));
}

}  // namespace telemetry
}  // namespace coverpack
