/// \file cplint_main.cc
/// \brief CLI driver for cplint. Usage:
///
///   cplint [--rule=<name>]... [--list-rules] <path>...
///
/// Paths may be files or directories (directories are walked recursively
/// for .h/.cc). Exit status: 0 clean, 1 findings, 2 usage error.

#include <iostream>
#include <string>
#include <vector>

#include "cplint.h"

int main(int argc, char** argv) {
  std::vector<std::string> rules;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : coverpack::cplint::Rules()) {
        std::cout << rule.name << ": " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      const std::string name = arg.substr(7);
      if (!coverpack::cplint::IsRule(name)) {
        std::cerr << "cplint: unknown rule '" << name << "' (see --list-rules)\n";
        return 2;
      }
      rules.push_back(name);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cplint: unknown flag '" << arg << "'\n"
                << "usage: cplint [--rule=<name>]... [--list-rules] <path>...\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "usage: cplint [--rule=<name>]... [--list-rules] <path>...\n";
    return 2;
  }

  size_t files = 0;
  std::vector<coverpack::cplint::Finding> findings;
  for (const std::string& path : paths) {
    const std::vector<std::string> sources = coverpack::cplint::CollectSources(path);
    if (sources.empty()) {
      std::cerr << "cplint: no lintable files under '" << path << "'\n";
      return 2;
    }
    for (const std::string& source : sources) {
      ++files;
      for (auto& finding : coverpack::cplint::LintFile(source, rules)) {
        findings.push_back(std::move(finding));
      }
    }
  }

  for (const auto& finding : findings) {
    std::cout << finding.file << ":" << finding.line << ": " << finding.rule << ": "
              << finding.message << "\n";
  }
  std::cerr << "cplint: " << files << " files, " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return findings.empty() ? 0 : 1;
}
