/// \file bench_output_sensitivity.cc
/// \brief Thin wrapper: the experiment body lives in
/// bench/experiments/output_sensitivity.cc and is registered in the experiment
/// registry, so the unified driver (coverpack_bench) and this historical
/// one-display binary share one implementation.

#include "experiments/experiments.h"

int main() { return coverpack::bench::RunExperimentStandalone("output_sensitivity"); }
