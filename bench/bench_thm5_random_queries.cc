/// \file bench_thm5_random_queries.cc
/// \brief Generalization check for Theorem 5: the fitted load exponent
/// matches -1/rho* not just on the catalog queries but on randomly
/// generated alpha-acyclic shapes.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "lp/covers.h"
#include "query/join_tree.h"
#include "workload/generators.h"
#include "workload/random_queries.h"

namespace coverpack {
namespace {

int RunBench() {
  bench::Banner("Theorem 5 (random shapes)",
                "load exponent -1/rho* on randomly generated acyclic queries");

  std::vector<uint32_t> ps{16, 64, 256, 1024};
  TablePrinter table({"seed", "query", "rho*", "fitted", "theory", "match"});
  uint32_t matches = 0;
  uint32_t total = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 48271);
    workload::RandomAcyclicOptions options;
    options.min_edges = 3;
    options.max_edges = 6;
    Hypergraph q = workload::RandomAcyclicQuery(&rng, options);
    Rational rho = RhoStar(q);
    double theory = -1.0 / rho.ToDouble();
    // Size N by query weight so the sweep stays fast.
    uint64_t n = rho >= Rational(4) ? 2000 : 8000;
    Instance instance = workload::MatchingInstance(q, n);

    std::vector<double> xs;
    std::vector<double> ys;
    for (uint32_t p : ps) {
      AcyclicRunOptions run_options;
      run_options.collect = false;
      run_options.p = p;
      AcyclicRunResult run = ComputeAcyclicJoin(q, instance, run_options);
      xs.push_back(p);
      ys.push_back(static_cast<double>(run.max_load));
    }
    PowerLawFit fit = FitPowerLaw(xs, ys);
    bool ok = std::abs(fit.slope - theory) < 0.15;
    matches += ok;
    ++total;
    table.AddRow({std::to_string(seed), q.ToString(), rho.ToString(),
                  FormatDouble(fit.slope, 3), FormatDouble(theory, 3),
                  ok ? "MATCH" : "DEVIATION"});
  }
  table.Print(std::cout);
  std::cout << matches << "/" << total << " random acyclic queries match -1/rho*\n";
  bool ok = matches == total;
  bench::Verdict("Theorem5Random", ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace coverpack

int main() { return coverpack::RunBench(); }
