#include "relation/oracle.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "relation/operators.h"
#include "util/hash.h"
#include "util/logging.h"

namespace coverpack {

namespace {

/// Backtracking state for GenericJoin: per relation, the row indices still
/// compatible with the bound attribute prefix.
struct SearchState {
  const Hypergraph* query;
  const Instance* instance;
  std::vector<AttrId> attr_order;
  std::vector<std::vector<size_t>> live_rows;  // per edge
  std::vector<Value> assignment;               // per attr_order position
  Relation* output;
};

void Recurse(SearchState* state, size_t depth) {
  if (depth == state->attr_order.size()) {
    state->output->AppendRow(std::span<const Value>(state->assignment));
    return;
  }
  AttrId attr = state->attr_order[depth];
  EdgeSet holders = state->query->EdgesContaining(attr);
  CP_CHECK(!holders.empty());

  // Candidate values: distinct attr-values of the smallest live relation,
  // verified against all other holders.
  std::vector<EdgeId> holder_ids = holders.ToVector();
  EdgeId smallest = holder_ids[0];
  for (EdgeId e : holder_ids) {
    if (state->live_rows[e].size() < state->live_rows[smallest].size()) smallest = e;
  }
  const Relation& lead = (*state->instance)[smallest];
  uint32_t lead_col = lead.ColumnOf(attr);
  std::vector<Value> candidates;
  candidates.reserve(state->live_rows[smallest].size());
  for (size_t i : state->live_rows[smallest]) candidates.push_back(lead.row(i)[lead_col]);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  for (Value value : candidates) {
    // Refine every holder; back out if any becomes empty.
    std::vector<std::pair<EdgeId, std::vector<size_t>>> saved;
    bool viable = true;
    for (EdgeId e : holder_ids) {
      const Relation& r = (*state->instance)[e];
      uint32_t col = r.ColumnOf(attr);
      std::vector<size_t> refined;
      for (size_t i : state->live_rows[e]) {
        if (r.row(i)[col] == value) refined.push_back(i);
      }
      if (refined.empty()) {
        viable = false;
      }
      saved.emplace_back(e, std::move(state->live_rows[e]));
      state->live_rows[e] = std::move(refined);
      if (!viable) break;
    }
    if (viable) {
      state->assignment[depth] = value;
      Recurse(state, depth + 1);
    }
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      state->live_rows[it->first] = std::move(it->second);
    }
  }
}

/// Saturating multiply for counts.
uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) return std::numeric_limits<uint64_t>::max();
  return a * b;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a > std::numeric_limits<uint64_t>::max() - b) return std::numeric_limits<uint64_t>::max();
  return a + b;
}

/// Exact composite key of a row projected to `cols` (no hash collisions).
std::vector<Value> RowKey(std::span<const Value> row, const std::vector<uint32_t>& cols) {
  std::vector<Value> key;
  key.reserve(cols.size());
  for (uint32_t col : cols) key.push_back(row[col]);
  return key;
}

struct VectorHash {
  size_t operator()(const std::vector<Value>& v) const { return HashVector(v); }
};

}  // namespace

Relation GenericJoin(const Hypergraph& query, const Instance& instance) {
  instance.CheckAgainst(query);
  SearchState state;
  state.query = &query;
  state.instance = &instance;
  state.attr_order = query.AllAttrs().ToVector();  // ascending AttrId
  state.live_rows.resize(query.num_edges());
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    state.live_rows[e].resize(instance[e].size());
    for (size_t i = 0; i < instance[e].size(); ++i) state.live_rows[e][i] = i;
  }
  state.assignment.resize(state.attr_order.size());
  Relation output(query.AllAttrs());
  state.output = &output;
  // An empty relation means an empty join.
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (instance[e].empty()) return output;
  }
  Recurse(&state, 0);
  return output;
}

uint64_t AcyclicJoinCount(const Hypergraph& query, const JoinTree& tree,
                          const Instance& instance) {
  instance.CheckAgainst(query);
  uint32_t m = query.num_edges();
  CP_CHECK_EQ(tree.num_nodes(), m);

  // Bottom-up order: children before parents.
  std::vector<uint32_t> order;
  order.reserve(m);
  for (uint32_t root : tree.Roots()) {
    std::vector<uint32_t> stack{root};
    size_t begin = order.size();
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (uint32_t c : tree.children(u)) stack.push_back(c);
    }
    std::reverse(order.begin() + static_cast<long>(begin), order.end());
  }

  // weight[e][i]: number of join extensions of row i of relation e into the
  // subtree rooted at e.
  std::vector<std::vector<uint64_t>> weight(m);
  for (uint32_t e = 0; e < m; ++e) weight[e].assign(instance[e].size(), 1);

  for (uint32_t node : order) {
    for (uint32_t child : tree.children(node)) {
      AttrSet shared = query.edge(node).attrs.Intersect(query.edge(child).attrs);
      const Relation& parent_rel = instance[node];
      const Relation& child_rel = instance[child];
      std::vector<uint32_t> parent_cols;
      std::vector<uint32_t> child_cols;
      for (AttrId a : shared.ToVector()) {
        parent_cols.push_back(parent_rel.ColumnOf(a));
        child_cols.push_back(child_rel.ColumnOf(a));
      }
      // Aggregate the child's weights per shared key.
      std::unordered_map<std::vector<Value>, uint64_t, VectorHash> sums;
      for (size_t i = 0; i < child_rel.size(); ++i) {
        auto [it, inserted] = sums.try_emplace(RowKey(child_rel.row(i), child_cols), 0);
        it->second = SatAdd(it->second, weight[child][i]);
      }
      for (size_t i = 0; i < parent_rel.size(); ++i) {
        auto it = sums.find(RowKey(parent_rel.row(i), parent_cols));
        uint64_t factor = it == sums.end() ? 0 : it->second;
        weight[node][i] = SatMul(weight[node][i], factor);
      }
    }
  }

  uint64_t total = 1;
  for (uint32_t root : tree.Roots()) {
    uint64_t component = 0;
    for (uint64_t w : weight[root]) component = SatAdd(component, w);
    total = SatMul(total, component);
  }
  return total;
}

uint64_t JoinCount(const Hypergraph& query, const Instance& instance) {
  if (auto tree = JoinTree::Build(query)) {
    return AcyclicJoinCount(query, *tree, instance);
  }
  return GenericJoin(query, instance).size();
}

uint64_t SubjoinSize(const Hypergraph& query, const JoinTree& tree, const Instance& instance,
                     EdgeSet s) {
  if (s.empty()) return 1;
  uint64_t total = 1;
  for (EdgeSet component : tree.TreeComponents(s)) {
    Hypergraph sub = query.InducedByEdges(component);
    Instance sub_instance(sub);
    std::vector<EdgeId> members = component.ToVector();
    for (size_t i = 0; i < members.size(); ++i) {
      sub_instance[static_cast<EdgeId>(i)] = instance[members[i]];
    }
    total = SatMul(total, JoinCount(sub, sub_instance));
  }
  return total;
}

Instance SemiJoinReduce(const Hypergraph& query, const JoinTree& tree,
                        const Instance& instance) {
  Instance reduced = instance;
  uint32_t m = query.num_edges();

  // Top-down order per component; reversed for the upward pass.
  std::vector<uint32_t> top_down;
  for (uint32_t root : tree.Roots()) {
    std::vector<uint32_t> stack{root};
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      top_down.push_back(u);
      for (uint32_t c : tree.children(u)) stack.push_back(c);
    }
  }
  CP_CHECK_EQ(top_down.size(), m);

  // Upward: parent := parent semijoin child.
  for (auto it = top_down.rbegin(); it != top_down.rend(); ++it) {
    uint32_t node = *it;
    uint32_t parent = tree.parent(node);
    if (parent != JoinTree::kNoParent) {
      reduced[parent] = SemiJoin(reduced[parent], reduced[node]);
    }
  }
  // Downward: child := child semijoin parent.
  for (uint32_t node : top_down) {
    for (uint32_t child : tree.children(node)) {
      reduced[child] = SemiJoin(reduced[child], reduced[node]);
    }
  }
  return reduced;
}

}  // namespace coverpack
