// cplint fixture: count-first bulk appends — the sanctioned hot-path shape.
void EmitMatches(const Relation& input, const std::vector<size_t>& matches,
                 Relation* output) {
  output->Reserve(output->size() + matches.size());
  Value* out = output->AppendUninitialized(matches.size());
  const Value* base = input.raw().data();
  const size_t width = input.width();
  for (size_t i : matches) {
    std::memcpy(out, base + i * width, width * sizeof(Value));
    out += width;
  }
}
void EmitAll(const Relation& input, Relation* output) {
  output->AppendRows(input.raw().data(), input.size());
}
