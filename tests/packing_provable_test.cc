#include "lp/packing_provable.h"

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"
#include "query/properties.h"

namespace coverpack {
namespace {

TEST(PackingProvableTest, BoxJoinIsProvable) {
  // Section 5.2: Q_box is edge-packing-provable with x_A=x_B=x_C=1/3 and
  // x_D=x_E=x_F=2/3.
  PackingProvability result = AnalyzePackingProvable(catalog::BoxJoin());
  EXPECT_TRUE(result.provable) << result.reason;
  EXPECT_EQ(result.tau_star, Rational(3));
  EXPECT_EQ(result.rho_star, Rational(2));
  EXPECT_EQ(result.probabilistic.size(), 1u);  // exactly R2 (or a symmetric twin)
}

TEST(PackingProvableTest, BoxJoinWithHandCover) {
  Hypergraph box = catalog::BoxJoin();
  VertexWeighting x;
  x.weights.assign(box.num_attrs(), Rational(0));
  for (const char* name : {"A", "B", "C"}) x.weights[*box.FindAttribute(name)] = Rational(1, 3);
  for (const char* name : {"D", "E", "F"}) x.weights[*box.FindAttribute(name)] = Rational(2, 3);
  x.total = Rational(3);
  PackingProvability result = AnalyzeWithCover(box, x);
  EXPECT_TRUE(result.provable) << result.reason;
  ASSERT_EQ(result.probabilistic.size(), 1u);
  EXPECT_EQ(box.edge(result.probabilistic[0]).name, "R2");
}

TEST(PackingProvableTest, TriangleFailsOddCycle) {
  PackingProvability result = AnalyzePackingProvable(catalog::Triangle());
  EXPECT_FALSE(result.provable);
  EXPECT_NE(result.reason.find("odd"), std::string::npos);
}

TEST(PackingProvableTest, NonReducedFails) {
  PackingProvability result = AnalyzePackingProvable(catalog::SemiJoinExample());
  EXPECT_FALSE(result.provable);
  EXPECT_NE(result.reason.find("reduced"), std::string::npos);
}

TEST(PackingProvableTest, NonDegreeTwoFails) {
  PackingProvability result = AnalyzePackingProvable(catalog::Star(4));
  EXPECT_FALSE(result.provable);
  EXPECT_NE(result.reason.find("degree-two"), std::string::npos);
}

TEST(PackingProvableTest, EvenCycleIsProvable) {
  // Even cycles are degree-two with no odd cycle; x = 1/2 everywhere is an
  // optimal constant-small cover with E' empty.
  PackingProvability result = AnalyzePackingProvable(catalog::Cycle(6));
  EXPECT_TRUE(result.provable) << result.reason;
  EXPECT_TRUE(result.probabilistic.empty());
  EXPECT_EQ(result.tau_star, Rational(3));
}

TEST(PackingProvableTest, RotatedBridgesVariant) {
  PackingProvability result = AnalyzePackingProvable(catalog::PackingProvableSixEdges());
  EXPECT_TRUE(result.provable) << result.reason;
  EXPECT_EQ(result.tau_star, Rational(3));
  EXPECT_EQ(result.rho_star, Rational(2));
}

TEST(PackingProvableTest, OddCycleDetectionMatchesLemma53) {
  // Lemma 5.3 (4): no odd cycle -> integral packing; the witness analysis
  // agrees with the structural predicate for all degree-two catalog joins.
  for (const auto& entry : catalog::StandardRoster()) {
    if (!IsDegreeTwo(entry.query) || !entry.query.IsReduced()) continue;
    bool no_odd = DegreeTwoHasNoOddCycle(entry.query);
    PackingProvability result = AnalyzePackingProvable(entry.query);
    if (!no_odd) {
      EXPECT_FALSE(result.provable) << entry.name;
    }
  }
}

}  // namespace
}  // namespace coverpack
