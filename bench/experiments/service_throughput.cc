/// \file service_throughput.cc
/// \brief Measures the concurrent query service: queries/sec and tail
/// latency vs client count, with the structure-keyed plan cache off, cold,
/// and warm.
///
/// For each (client count, arrival mode) scenario the service runs three
/// times over the same Zipf-skewed catalog stream: once with the cache
/// disabled, then twice on one cached service — the first run is the cold
/// cache, the second the warm cache. Four claims are checked:
///
///  1. **Caching pays.** warm throughput > cold throughput >= no-cache
///     throughput, and warm p99 <= cold p99, on every scenario. All
///     tick-denominated (simulated clock), so the comparison is exact and
///     thread-count-independent.
///  2. **Warm means warm.** The warm run's per-run cache delta is 100%
///     hits: hits == arrivals, misses == insertions == 0.
///  3. **Structure sharing.** Path(3) and Line3 are isomorphic under
///     attribute renaming, so they share one cache entry: the cold run
///     plans at most one of them, and distinct cold misses stay below the
///     catalog size.
///  4. **Cached plans are exact.** Every per-entry load fingerprint the
///     service recorded (max load, rounds, total communication, servers,
///     threshold, output count, full load-matrix hash) equals a standalone
///     auto-planned ComputeAcyclicJoin / ComputeOneRoundSkewAware run of
///     the same entry at the same sub-cluster size, and the warm run's
///     fingerprints equal the cold run's. Hits save ticks, never answers.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "core/one_round.h"
#include "core/output_balanced.h"
#include "experiments/runners.h"
#include "planner/plan_chooser.h"
#include "query/catalog.h"
#include "query/join_tree.h"
#include "service/query_service.h"
#include "telemetry/service_metrics.h"
#include "util/hash.h"
#include "workload/generators.h"

namespace coverpack {
namespace bench {

namespace {

ServiceBenchOverrides g_service_overrides;

/// Relation cardinality of every catalog entry (matching instances, so all
/// relations share one size and every entry is cacheable).
constexpr uint64_t kEntryN = 1024;

/// Registers the experiment's query catalog: a structural mix of acyclic
/// (multi-round) and cyclic (one-round) shapes, including the isomorphic
/// pair Path(3)/Line3 that must share one cache entry.
void RegisterCatalog(service::QueryService* svc) {
  const auto add = [&](const char* name, Hypergraph query) {
    Instance instance = workload::MatchingInstance(query, kEntryN);
    svc->RegisterQuery(name, std::move(query), std::move(instance));
  };
  add("path3", catalog::Path(3));
  add("line3", catalog::Line3());  // Path(3) with renamed attributes
  add("star3", catalog::Star(3));
  add("stardual3", catalog::StarDual(3));
  add("semijoin", catalog::SemiJoinExample());
  add("alpha_not_berge", catalog::AlphaNotBerge());
  add("triangle", catalog::Triangle());
  add("cycle4", catalog::Cycle(4));
  add("box", catalog::BoxJoin());
}

/// The fingerprint a standalone, auto-planned pipeline run produces for
/// one catalog entry — the algorithm comes from a fresh PlanChooser
/// decision over freshly built statistics (the same decision the service's
/// cold path must reach), but the execution goes through the raw core API
/// (load_threshold auto-planned from scratch), not through the service's
/// ExecuteRegistered, so claim 4 really compares two independent paths.
service::LoadFingerprint StandaloneFingerprint(const service::RegisteredQuery& entry,
                                               uint32_t p) {
  service::LoadFingerprint fp;
  fp.executed = true;
  const planner::StatsSnapshot stats =
      planner::BuildStatsSnapshot(entry.query, entry.instance);
  const planner::PlanDecision decision = planner::PlanChooser::Choose(entry.query, p, stats);
  if (decision.algorithm == planner::Algorithm::kAcyclicMultiRound) {
    AcyclicRunOptions options;
    options.policy = RunPolicy::kOptimal;
    options.collect = false;
    options.p = p;
    const AcyclicRunResult run = ComputeAcyclicJoin(entry.query, entry.instance, options);
    fp.max_load = run.max_load;
    fp.rounds = run.rounds;
    fp.total_communication = run.total_communication;
    fp.servers_used = run.servers_used;
    fp.load_threshold = run.load_threshold;
    fp.output_count = run.output_count;
    fp.tracker_hash = service::FingerprintTrackerHash(run.load_tracker);
  } else if (decision.algorithm == planner::Algorithm::kOutputBalanced) {
    OutputBalancedOptions options;
    options.collect = false;
    const OutputBalancedResult run =
        ComputeOutputBalanced(entry.query, entry.instance, p, options);
    fp.max_load = run.max_load;
    fp.rounds = run.rounds;
    fp.total_communication = run.total_communication;
    fp.servers_used = run.load_tracker.num_servers();
    fp.load_threshold = 0;
    fp.output_count = run.output_count;
    fp.tracker_hash = service::FingerprintTrackerHash(run.load_tracker);
  } else {
    OneRoundOptions options;
    options.collect = false;
    const OneRoundResult run =
        ComputeOneRoundSkewAware(entry.query, entry.instance, p, options);
    fp.max_load = run.max_load;
    fp.rounds = run.rounds;
    fp.total_communication = run.load_tracker.TotalCommunication();
    fp.servers_used = run.servers_used;
    fp.load_threshold = 0;
    fp.output_count = run.output_count;
    fp.tracker_hash = service::FingerprintTrackerHash(run.load_tracker);
  }
  return fp;
}

/// One (client count, arrival mode) point of the sweep.
struct Scenario {
  std::string name;  ///< metric-key scope, e.g. "open_c8"
  uint32_t clients = 0;
  service::ArrivalMode mode = service::ArrivalMode::kOpenLoop;
};

service::ServiceConfig MakeConfig(const Scenario& scenario, bool cache_enabled,
                                  uint64_t seed) {
  service::ServiceConfig config;
  config.total_servers = 256;
  config.servers_per_query = 64;
  config.cache_enabled = cache_enabled;
  config.workload.clients = scenario.clients;
  config.workload.queries_per_client = 6;
  config.workload.mode = scenario.mode;
  config.workload.mean_interarrival_ticks = 32;
  if (g_service_overrides.zipf_skew > 0.0) {
    config.workload.zipf_skew = g_service_overrides.zipf_skew;
  }
  config.workload.seed = seed;
  return config;
}

}  // namespace

void SetServiceBenchOverrides(const ServiceBenchOverrides& overrides) {
  g_service_overrides = overrides;
}

telemetry::RunReport RunServiceThroughput(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  // The sweep; --clients / --arrival narrow it to one custom scenario.
  std::vector<Scenario> scenarios;
  const bool custom_arrival = !g_service_overrides.arrival.empty();
  std::vector<uint32_t> client_counts{2, 8, 16};
  if (g_service_overrides.clients > 0) {
    client_counts = {g_service_overrides.clients};
  }
  // The driver validates --arrival, so value_or only covers direct callers.
  const service::ArrivalMode main_mode =
      custom_arrival ? service::ParseArrivalMode(g_service_overrides.arrival)
                           .value_or(service::ArrivalMode::kOpenLoop)
                     : service::ArrivalMode::kOpenLoop;
  for (uint32_t clients : client_counts) {
    scenarios.push_back({std::string(service::ArrivalModeName(main_mode)) + "_c" +
                             std::to_string(clients),
                         clients, main_mode});
  }
  if (!custom_arrival) {
    // One bursty and one closed-loop point, to exercise all arrival modes.
    const uint32_t extra_clients =
        g_service_overrides.clients > 0 ? g_service_overrides.clients : 8;
    scenarios.push_back(
        {"bursty_c" + std::to_string(extra_clients), extra_clients,
         service::ArrivalMode::kBursty});
    scenarios.push_back(
        {"closed_c" + std::to_string(extra_clients), extra_clients,
         service::ArrivalMode::kClosedLoop});
  }
  const bool cache_disabled = g_service_overrides.no_cache;

  report.AddParam("entry_n", kEntryN);
  report.AddParam("total_servers", uint64_t{256});
  report.AddParam("servers_per_query", uint64_t{64});
  report.AddParam("scenarios", static_cast<uint64_t>(scenarios.size()));
  report.AddParam("cache_disabled", cache_disabled ? uint64_t{1} : uint64_t{0});

  // Standalone fingerprints, computed once per entry (claim 4's baseline),
  // plus the Path(3)/Line3 shared-structure check (claim 3).
  std::vector<service::LoadFingerprint> standalone;
  uint64_t distinct_shape_keys = 0;
  bool isomorphic_pair_ok = false;
  {
    service::ServiceConfig probe_config;
    service::QueryService probe(probe_config);
    RegisterCatalog(&probe);
    std::vector<uint64_t> keys;
    for (uint32_t i = 0; i < probe.catalog_size(); ++i) {
      const service::RegisteredQuery& entry = probe.entry(i);
      standalone.push_back(StandaloneFingerprint(entry, 64));
      keys.push_back(HashCombine(entry.canon.hash, entry.stats_signature));
    }
    isomorphic_pair_ok = probe.entry(0).canon.hash == probe.entry(1).canon.hash &&
                         probe.entry(0).stats_signature == probe.entry(1).stats_signature &&
                         probe.entry(0).canon.canonical_form ==
                             probe.entry(1).canon.canonical_form;
    std::sort(keys.begin(), keys.end());
    distinct_shape_keys =
        static_cast<uint64_t>(std::unique(keys.begin(), keys.end()) - keys.begin());
    std::cout << "catalog: " << probe.catalog_size() << " entries, "
              << distinct_shape_keys << " distinct cache keys (path3 == line3: "
              << (isomorphic_pair_ok ? "yes" : "NO") << ")\n";
  }

  bool caching_pays_ok = true;
  bool warm_all_hits_ok = true;
  bool sharing_ok = isomorphic_pair_ok;
  bool exact_ok = true;
  bool clean_ok = true;  // no bypasses, no load mismatches anywhere

  const auto check_run = [&](const service::ServiceRunStats& stats) {
    if (stats.plan_bypasses != 0 || stats.load_mismatches != 0) clean_ok = false;
    for (size_t i = 0; i < stats.entry_fingerprints.size(); ++i) {
      const service::LoadFingerprint& fp = stats.entry_fingerprints[i];
      if (fp.executed && !(fp == standalone[i])) exact_ok = false;
    }
  };

  TablePrinter table({"scenario", "cache", "arrivals", "qpk", "p50", "p99", "hits",
                      "misses", "peak_leased"});
  const auto add_row = [&](const Scenario& scenario, const char* variant,
                           const service::ServiceRunStats& stats) {
    table.AddRow({scenario.name, variant, std::to_string(stats.arrivals),
                  FormatDouble(stats.throughput_qpk, 3),
                  std::to_string(stats.latency_p50_ticks),
                  std::to_string(stats.latency_p99_ticks),
                  std::to_string(stats.cache.hits), std::to_string(stats.cache.misses),
                  std::to_string(stats.peak_servers_leased)});
    telemetry::SnapshotServiceStatsInto(stats, scenario.name + "_" + variant,
                                        &report.metrics);
  };

  for (size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    const uint64_t seed = ExperimentSeed(HashCombine(0x5EAF00D, s));

    service::QueryService nocache(MakeConfig(scenario, /*cache_enabled=*/false, seed));
    RegisterCatalog(&nocache);
    const service::ServiceRunStats off = nocache.Run();
    check_run(off);
    add_row(scenario, "nocache", off);
    if (cache_disabled) continue;

    // One cached service, run twice: cold then warm. Identical workload
    // seed, so the arrival schedule is the same stream three times over.
    service::QueryService cached(MakeConfig(scenario, /*cache_enabled=*/true, seed));
    RegisterCatalog(&cached);
    const service::ServiceRunStats cold = cached.Run();
    const service::ServiceRunStats warm = cached.Run();
    check_run(cold);
    check_run(warm);
    add_row(scenario, "cold", cold);
    add_row(scenario, "warm", warm);

    // Claim 1: hits buy throughput and never cost tail latency.
    if (!(warm.throughput_qpk > cold.throughput_qpk &&
          cold.throughput_qpk >= off.throughput_qpk - 1e-9 &&
          warm.latency_p99_ticks <= cold.latency_p99_ticks)) {
      caching_pays_ok = false;
    }
    // Claim 2: the second identical run is served entirely from the cache.
    if (!(warm.cache.hits == warm.arrivals && warm.cache.misses == 0 &&
          warm.cache.insertions == 0)) {
      warm_all_hits_ok = false;
    }
    // Claim 3: cold misses == distinct structure keys touched, which the
    // isomorphic pair keeps strictly below the catalog size.
    if (cold.cache.misses >= cached.catalog_size() ||
        cold.cache.misses > distinct_shape_keys) {
      sharing_ok = false;
    }
    // Claim 4, cross-run half: warm loads repeat the cold loads exactly.
    for (size_t i = 0; i < warm.entry_fingerprints.size(); ++i) {
      if (warm.entry_fingerprints[i].executed && cold.entry_fingerprints[i].executed &&
          !(warm.entry_fingerprints[i] == cold.entry_fingerprints[i])) {
        exact_ok = false;
      }
    }
  }
  table.Print(std::cout);

  std::cout << "caching pays (warm > cold >= off, warm p99 <= cold p99): "
            << (caching_pays_ok ? "yes" : "NO")
            << "\nwarm runs 100% hits: " << (warm_all_hits_ok ? "yes" : "NO")
            << "\nisomorphic shapes share cache entries: " << (sharing_ok ? "yes" : "NO")
            << "\nservice loads == standalone pipeline loads: " << (exact_ok ? "yes" : "NO")
            << "\nno bypasses or load mismatches: " << (clean_ok ? "yes" : "NO") << "\n";

  FinishReport(report, caching_pays_ok && warm_all_hits_ok && sharing_ok && exact_ok &&
                           clean_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
