#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace coverpack {
namespace {

TEST(SimplexTest, SimpleMaximize) {
  // max x + y s.t. x <= 2, y <= 3, x + y <= 4.
  LinearProgram lp(2);
  lp.AddLeq({Rational(1), Rational(0)}, Rational(2));
  lp.AddLeq({Rational(0), Rational(1)}, Rational(3));
  lp.AddLeq({Rational(1), Rational(1)}, Rational(4));
  lp.SetObjective({Rational(1), Rational(1)});
  LpResult result = lp.Maximize();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.objective, Rational(4));
}

TEST(SimplexTest, FractionalOptimum) {
  // max x + y s.t. 2x + y <= 2, x + 2y <= 2 -> optimum 4/3 at (2/3, 2/3).
  LinearProgram lp(2);
  lp.AddLeq({Rational(2), Rational(1)}, Rational(2));
  lp.AddLeq({Rational(1), Rational(2)}, Rational(2));
  lp.SetObjective({Rational(1), Rational(1)});
  LpResult result = lp.Maximize();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.objective, Rational(4, 3));
  EXPECT_EQ(result.solution[0], Rational(2, 3));
  EXPECT_EQ(result.solution[1], Rational(2, 3));
}

TEST(SimplexTest, PhaseOneNeeded) {
  // min x + y s.t. x + y >= 3, x <= 5, y <= 5. Optimum 3.
  LinearProgram lp(2);
  lp.AddGeq({Rational(1), Rational(1)}, Rational(3));
  lp.AddLeq({Rational(1), Rational(0)}, Rational(5));
  lp.AddLeq({Rational(0), Rational(1)}, Rational(5));
  lp.SetObjective({Rational(1), Rational(1)});
  LpResult result = lp.Minimize();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.objective, Rational(3));
}

TEST(SimplexTest, Infeasible) {
  // x >= 3 and x <= 1.
  LinearProgram lp(1);
  lp.AddGeq({Rational(1)}, Rational(3));
  lp.AddLeq({Rational(1)}, Rational(1));
  lp.SetObjective({Rational(1)});
  LpResult result = lp.Maximize();
  EXPECT_EQ(result.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, Unbounded) {
  // max x s.t. -x <= 1 (x can grow forever).
  LinearProgram lp(1);
  lp.AddLeq({Rational(-1)}, Rational(1));
  lp.SetObjective({Rational(1)});
  LpResult result = lp.Maximize();
  EXPECT_EQ(result.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + 2y s.t. x + y == 1, x,y >= 0 -> optimum 2 at (0,1).
  LinearProgram lp(2);
  lp.AddEq({Rational(1), Rational(1)}, Rational(1));
  lp.SetObjective({Rational(1), Rational(2)});
  LpResult result = lp.Maximize();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.objective, Rational(2));
  EXPECT_EQ(result.solution[0], Rational(0));
  EXPECT_EQ(result.solution[1], Rational(1));
}

TEST(SimplexTest, DegenerateDoesNotCycle) {
  // Classic degenerate setup; Bland's rule must terminate.
  LinearProgram lp(4);
  lp.AddLeq({Rational(1, 2), Rational(-11, 2), Rational(-5, 2), Rational(9)}, Rational(0));
  lp.AddLeq({Rational(1, 2), Rational(-3, 2), Rational(-1, 2), Rational(1)}, Rational(0));
  lp.AddLeq({Rational(1), Rational(0), Rational(0), Rational(0)}, Rational(1));
  lp.SetObjective({Rational(10), Rational(-57), Rational(-9), Rational(-24)});
  LpResult result = lp.Maximize();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.objective, Rational(1));
}

TEST(SimplexTest, MinimizeFlipsSignBack) {
  // min 3x s.t. x >= 2 (x <= 10 keeps it bounded) -> 6.
  LinearProgram lp(1);
  lp.AddGeq({Rational(1)}, Rational(2));
  lp.AddLeq({Rational(1)}, Rational(10));
  lp.SetObjective({Rational(3)});
  LpResult result = lp.Minimize();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.objective, Rational(6));
}

}  // namespace
}  // namespace coverpack
