/// \file math_util.h
/// \brief Small numeric helpers shared by the planner and the benchmarks.

#ifndef COVERPACK_UTIL_MATH_UTIL_H_
#define COVERPACK_UTIL_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace coverpack {

/// ceil(a / b) for positive integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Integer power with saturation at UINT64_MAX.
uint64_t SaturatingPow(uint64_t base, uint32_t exp);

/// ceil(x^(1/k)) computed by integer binary search (no floating point drift).
/// k must be >= 1.
uint64_t CeilNthRoot(uint64_t x, uint32_t k);

/// floor(x^(1/k)) computed by integer binary search. k must be >= 1.
uint64_t FloorNthRoot(uint64_t x, uint32_t k);

/// Result of a least-squares fit of log(y) = slope * log(x) + intercept.
struct PowerLawFit {
  double slope = 0.0;      ///< Fitted exponent.
  double intercept = 0.0;  ///< Fitted log-constant.
  double r_squared = 0.0;  ///< Goodness of fit.
};

/// Fits y ~ C * x^slope on log-log scale. Points with nonpositive
/// coordinates are skipped; requires at least two usable points.
PowerLawFit FitPowerLaw(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace coverpack

#endif  // COVERPACK_UTIL_MATH_UTIL_H_
