#include "mpc/dist_relation.h"

#include "mpc/exchange.h"

namespace coverpack {

namespace {

/// Round-robin delivery of `data` into fresh shards. Models the paper's
/// "evenly distributed" starting condition: server i % p receives row i.
DistRelation RoundRobinExchange(Cluster* cluster, const Relation& data, uint32_t round,
                                uint32_t p, const char* label) {
  DistRelation dist(data.attrs(), p);
  mpc::ExchangePlan plan = mpc::Exchange::Plan(
      p, data, [p](size_t i, auto emit) { emit(i % p); });
  mpc::Exchange::Execute(cluster, round, plan,
                         [&dist](size_t, uint32_t server) { return &dist.shard(server); },
                         label);
  return dist;
}

}  // namespace

std::vector<size_t> DistRelation::ShardSizes() const {
  std::vector<size_t> sizes(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) sizes[s] = shards_[s].size();
  return sizes;
}

void DistRelation::TruncateShards(const std::vector<size_t>& sizes) {
  CP_CHECK_EQ(sizes.size(), shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) shards_[s].Truncate(sizes[s]);
}

DistRelation DistRelation::Scatter(Cluster* cluster, const Relation& data, uint32_t round) {
  return RoundRobinExchange(cluster, data, round, cluster->p(), "scatter");
}

DistRelation DistRelation::InitialPlacement(const Cluster& cluster, const Relation& data) {
  return RoundRobinExchange(nullptr, data, 0, cluster.p(), "initial_placement");
}

}  // namespace coverpack
