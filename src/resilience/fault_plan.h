/// \file fault_plan.h
/// \brief Seeded, fully deterministic fault schedules for the MPC simulator.
///
/// The paper's MPC model charges every algorithm by its per-round
/// bottleneck load, implicitly assuming p perfectly reliable, identical
/// servers. A FaultPlan describes the world where they are not: per-round
/// server crashes during delivery, heterogeneous/straggling server speeds,
/// and per-message drop/duplicate corruptions. Every decision is a pure
/// function of (seed, arguments) — no internal state, no sequence counters
/// — so a plan answers identically regardless of call order or thread
/// count. That is what lets the FaultInjector promise bit-identical final
/// results: the same exchange asks the same questions and gets the same
/// faults at any parallelism level.

#ifndef COVERPACK_RESILIENCE_FAULT_PLAN_H_
#define COVERPACK_RESILIENCE_FAULT_PLAN_H_

#include <cstdint>

namespace coverpack {
namespace resilience {

/// The knobs of a fault schedule. Rates are probabilities in [0, 1].
struct FaultSpec {
  uint64_t seed = 0;  ///< base seed of every fault decision stream

  /// P[a receiving server crashes during one delivery attempt]. A crash
  /// loses every message bound for that server in the attempt; recovery
  /// restores the round checkpoint and replays the round for it.
  double crash_rate = 0.0;

  /// P[(round, server) runs slow] and how slow: a straggling server
  /// processes its round at 1/straggler_severity speed. severity 1 = no
  /// slowdown even for "straggling" servers.
  double straggler_rate = 0.0;
  double straggler_severity = 1.0;

  /// Per-routed-row corruption probabilities of a delivery attempt:
  /// dropped messages and duplicated retransmissions. Both are detected by
  /// the per-server receive accounting and repaired by round replay.
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;

  /// Bounded-retry policy: after `max_attempts` faulty delivery attempts
  /// of one exchange, recovery degrades gracefully to a full deterministic
  /// rerun of the round (accounted as replaying the whole plan volume).
  uint32_t max_attempts = 4;

  /// Simulated backoff accounting: faulty attempt k (0-based) charges
  /// min(backoff_base << k, backoff_cap) backoff units to the ledger.
  uint64_t backoff_base = 1;
  uint64_t backoff_cap = 64;

  /// True when any fault can actually occur under this spec.
  bool active() const {
    return crash_rate > 0.0 || drop_rate > 0.0 || duplicate_rate > 0.0 ||
           (straggler_rate > 0.0 && straggler_severity > 1.0);
  }
};

/// A deterministic oracle over one FaultSpec. Copyable and cheap; all
/// queries are const and thread-safe (pure hashing).
class FaultPlan {
 public:
  FaultPlan() = default;  ///< inert plan: no faults, uniform speeds
  explicit FaultPlan(const FaultSpec& spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }

  /// Content key of one exchange: mixes the round, the label, and the plan
  /// shape. Every fault decision of an exchange hangs off this key, so two
  /// executions of the same exchange — in any order, on any thread — fault
  /// identically. (Structurally identical exchanges share a key and
  /// therefore share faults; that is deterministic, which is the point.)
  static uint64_t ExchangeKey(uint32_t round, const char* label, uint64_t planned,
                              uint64_t recorded, uint32_t num_servers);

  /// Does `server` crash during attempt `attempt` of the exchange `key`?
  bool CrashesDelivery(uint64_t key, uint32_t attempt, uint32_t server) const;

  /// Is this routed row dropped / duplicated in attempt `attempt`? A row
  /// is identified by its (source, server, row) delivery coordinates.
  bool DropsRow(uint64_t key, uint32_t attempt, uint64_t source, uint32_t server,
                uint64_t row) const;
  bool DuplicatesRow(uint64_t key, uint32_t attempt, uint64_t source, uint32_t server,
                     uint64_t row) const;

  /// Relative speed of `server` in `round`: 1.0, or 1/straggler_severity
  /// when the (round, server) pair straggles. Always > 0.
  double SpeedOf(uint32_t round, uint32_t server) const;

 private:
  FaultSpec spec_;
};

}  // namespace resilience
}  // namespace coverpack

#endif  // COVERPACK_RESILIENCE_FAULT_PLAN_H_
