#include "workload/generators.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace workload {

namespace {

/// Rows per generation shard. Fixed — never derived from the thread
/// count — so the shard decomposition, the per-shard Rng streams, and the
/// merge order are identical at any parallelism level.
constexpr size_t kGenGrain = 4096;

/// Appends the shard buffers (flat row-major Value runs) to the relation in
/// ascending shard order.
void AppendShardBuffers(Relation* relation, uint32_t width,
                        const std::vector<std::vector<Value>>& shard_rows) {
  if (width == 0) return;
  for (const std::vector<Value>& buffer : shard_rows) {
    for (size_t i = 0; i + width <= buffer.size(); i += width) {
      relation->AppendRow(std::span<const Value>(buffer.data() + i, width));
    }
  }
}

}  // namespace

Relation UniformRandom(AttrSet attrs, size_t n, uint64_t domain, Rng* rng) {
  CP_CHECK_GT(domain, 0u);
  Relation relation(attrs);
  relation.Reserve(n);
  uint32_t width = attrs.size();
  // Draw until n distinct tuples exist (or the domain is exhausted). Each
  // refill round consumes exactly one base draw from the caller's rng;
  // shards split private streams off that base, so the output depends only
  // on the caller's rng state and the deficit — never on the thread count.
  size_t attempts = 0;
  size_t max_attempts = n * 20 + 1000;
  while (relation.size() < n && attempts < max_attempts) {
    size_t deficit = n - relation.size();
    uint64_t round_base = rng->Next();
    size_t num_shards = ThreadPool::NumShards(0, deficit, kGenGrain);
    std::vector<std::vector<Value>> shard_rows(num_shards);
    ThreadPool::Global().ParallelForShards(
        0, deficit, kGenGrain, [&](size_t shard_begin, size_t shard_end, size_t shard) {
          shard_end = std::min(shard_end, deficit);
          Rng shard_rng(SplitSeed(round_base, shard));
          std::vector<Value>& buffer = shard_rows[shard];
          buffer.reserve((shard_end - shard_begin) * width);
          for (size_t i = shard_begin; i < shard_end; ++i) {
            for (uint32_t c = 0; c < width; ++c) buffer.push_back(shard_rng.Uniform(domain));
          }
        });
    AppendShardBuffers(&relation, width, shard_rows);
    relation.Dedup();
    attempts += deficit;
  }
  return relation;
}

Relation Matching(AttrSet attrs, size_t n) {
  Relation relation(attrs);
  relation.Reserve(n);
  uint32_t width = attrs.size();
  std::vector<Value> row(width);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t c = 0; c < width; ++c) row[c] = i;
    relation.AppendRow(std::span<const Value>(row));
  }
  return relation;
}

Relation Cartesian(AttrSet attrs, const std::vector<uint64_t>& dims) {
  uint32_t width = attrs.size();
  CP_CHECK_EQ(dims.size(), width);
  uint64_t total = 1;
  for (uint64_t d : dims) {
    CP_CHECK_GT(d, 0u);
    total *= d;
    CP_CHECK_LT(total, uint64_t{1} << 32) << "Cartesian relation too large";
  }
  Relation relation(attrs);
  relation.Reserve(total);
  // Mixed-radix decoding is independent per index: shards decode into
  // private buffers appended in shard order (= ascending index order).
  size_t num_shards = ThreadPool::NumShards(0, total, kGenGrain);
  std::vector<std::vector<Value>> shard_rows(num_shards);
  ThreadPool::Global().ParallelForShards(
      0, total, kGenGrain, [&](size_t shard_begin, size_t shard_end, size_t shard) {
        shard_end = std::min<size_t>(shard_end, total);
        std::vector<Value>& buffer = shard_rows[shard];
        buffer.reserve((shard_end - shard_begin) * width);
        for (size_t index = shard_begin; index < shard_end; ++index) {
          uint64_t rest = index;
          for (uint32_t c = 0; c < width; ++c) {
            buffer.push_back(rest % dims[c]);
            rest /= dims[c];
          }
        }
      });
  AppendShardBuffers(&relation, width, shard_rows);
  return relation;
}

Relation Zipf(AttrSet attrs, size_t n, uint64_t domain, double skew, Rng* rng) {
  ZipfSampler sampler(domain, skew);  // const after construction; shared by shards
  Relation relation(attrs);
  relation.Reserve(n);
  uint32_t width = attrs.size();
  // Same refill scheme as UniformRandom: one base draw per round, private
  // per-shard streams, shard-ordered merge.
  size_t attempts = 0;
  size_t max_attempts = n * 50 + 1000;
  while (relation.size() < n && attempts < max_attempts) {
    size_t deficit = n - relation.size();
    uint64_t round_base = rng->Next();
    size_t num_shards = ThreadPool::NumShards(0, deficit, kGenGrain);
    std::vector<std::vector<Value>> shard_rows(num_shards);
    ThreadPool::Global().ParallelForShards(
        0, deficit, kGenGrain, [&](size_t shard_begin, size_t shard_end, size_t shard) {
          shard_end = std::min(shard_end, deficit);
          Rng shard_rng(SplitSeed(round_base, shard));
          std::vector<Value>& buffer = shard_rows[shard];
          buffer.reserve((shard_end - shard_begin) * width);
          for (size_t i = shard_begin; i < shard_end; ++i) {
            for (uint32_t c = 0; c < width; ++c) buffer.push_back(sampler.Sample(&shard_rng));
          }
        });
    AppendShardBuffers(&relation, width, shard_rows);
    relation.Dedup();
    attempts += deficit;
  }
  return relation;
}

Relation OneToOne(AttrSet attrs, AttrId a, AttrId b, size_t n) {
  CP_CHECK(attrs.Contains(a));
  CP_CHECK(attrs.Contains(b));
  CP_CHECK(a != b);
  Relation relation(attrs);
  relation.Reserve(n);
  uint32_t width = attrs.size();
  uint32_t col_a = relation.ColumnOf(a);
  uint32_t col_b = relation.ColumnOf(b);
  std::vector<Value> row(width, 0);
  for (size_t i = 0; i < n; ++i) {
    row[col_a] = i;
    row[col_b] = i;
    relation.AppendRow(std::span<const Value>(row));
  }
  return relation;
}

Instance UniformInstance(const Hypergraph& query, size_t n, uint64_t domain, Rng* rng) {
  Instance instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    instance[e] = UniformRandom(query.edge(e).attrs, n, domain, rng);
  }
  return instance;
}

Instance MatchingInstance(const Hypergraph& query, size_t n) {
  Instance instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    instance[e] = Matching(query.edge(e).attrs, n);
  }
  return instance;
}

Instance ZipfInstance(const Hypergraph& query, size_t n, uint64_t domain, double skew,
                      Rng* rng) {
  Instance instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    instance[e] = Zipf(query.edge(e).attrs, n, domain, skew, rng);
  }
  return instance;
}

}  // namespace workload
}  // namespace coverpack
