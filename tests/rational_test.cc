#include "util/rational.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "util/audit.h"

namespace coverpack {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.ToString(), "0");
}

TEST(RationalTest, NormalizesSignAndGcd) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(0, -7), Rational(0));
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 8), Rational(3, 4));
  EXPECT_GE(Rational(-1, 2), Rational(-2, 3));
  EXPECT_LT(Rational(-1), Rational(0));
}

TEST(RationalTest, IntegerDetection) {
  EXPECT_TRUE(Rational(6, 3).is_integer());
  EXPECT_FALSE(Rational(5, 3).is_integer());
}

TEST(RationalTest, Inverse) {
  EXPECT_EQ(Rational(3, 7).Inverse(), Rational(7, 3));
  EXPECT_EQ(Rational(-2).Inverse(), Rational(-1, 2));
}

TEST(RationalTest, MinMax) {
  EXPECT_EQ(Rational::Min(Rational(1, 2), Rational(1, 3)), Rational(1, 3));
  EXPECT_EQ(Rational::Max(Rational(1, 2), Rational(1, 3)), Rational(1, 2));
}

TEST(RationalTest, ToDoubleAndString) {
  EXPECT_DOUBLE_EQ(Rational(3, 2).ToDouble(), 1.5);
  EXPECT_EQ(Rational(3, 2).ToString(), "3/2");
  EXPECT_EQ(Rational(-4, 2).ToString(), "-2");
}

TEST(RationalTest, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 2);
  EXPECT_EQ(r, Rational(1));
  r *= Rational(2, 3);
  EXPECT_EQ(r, Rational(2, 3));
  r -= Rational(1, 3);
  EXPECT_EQ(r, Rational(1, 3));
  r /= Rational(1, 3);
  EXPECT_EQ(r, Rational(1));
}

TEST(RationalTest, LargeValuesReduceBeforeMultiplying) {
  // (1000000/3) * (3/1000000) must not overflow intermediates.
  Rational a(1000000, 3);
  Rational b(3, 1000000);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(RationalTest, EveryOperatorLeavesResultNormalized) {
  // The COVERPACK_AUDIT build re-checks this inside Normalize() after every
  // construction; here we assert the invariant itself in all builds.
  const Rational a(6, 4);
  const Rational b(-10, 15);
  for (const Rational& r : {a + b, a - b, a * b, a / b, -a, a.Inverse(),
                            Rational(0, -9), Rational(-21, -14)}) {
    EXPECT_TRUE(r.IsNormalized()) << r.ToString();
    EXPECT_GT(r.den(), 0) << r.ToString();
  }
  Rational c = a;
  c += b;
  EXPECT_TRUE(c.IsNormalized());
  c *= Rational(7, 3);
  EXPECT_TRUE(c.IsNormalized());
  c -= Rational(1, 6);
  EXPECT_TRUE(c.IsNormalized());
  c /= Rational(-2, 5);
  EXPECT_TRUE(c.IsNormalized());
}

#ifdef COVERPACK_AUDIT
TEST(RationalTest, AuditHooksFireOnEveryOperation) {
  audit::SimulatorAuditor::ResetStats();
  Rational r = Rational(3, 9) + Rational(1, 2);
  r = r * Rational(4, 6);
  EXPECT_FALSE(r.is_zero());
  EXPECT_GT(audit::SimulatorAuditor::checks_performed(), 0u);
}
#endif  // COVERPACK_AUDIT

// Overflow regression: products and sums that leave int64 must abort with
// the overflow message, never wrap into a plausible-looking exponent.
TEST(RationalOverflowDeathTest, ProductNearInt64MaxAborts) {
  const Rational big(INT64_MAX / 2 + 1);  // 2^62, coprime with any odd den
  EXPECT_DEATH({ Rational r = big * big; (void)r; }, "rational overflow in multiply");
}

TEST(RationalOverflowDeathTest, ProductOfLargeCoprimeFractionsAborts) {
  // Cross-cancellation cannot save this one: INT64_MAX is odd and coprime
  // with 3 (2^63-1 ≡ 1 mod 3), INT64_MAX-2 is odd, so every gcd is 1.
  const Rational a(INT64_MAX, 2);
  const Rational b(INT64_MAX - 2, 3);
  ASSERT_EQ(a.den(), 2);
  ASSERT_EQ(b.den(), 3);
  EXPECT_DEATH({ Rational r = a * b; (void)r; }, "rational overflow in multiply");
}

TEST(RationalOverflowDeathTest, SumNearInt64MaxAborts) {
  const Rational a(INT64_MAX - 1);
  EXPECT_DEATH({ Rational r = a + a; (void)r; }, "rational overflow in add");
}

TEST(RationalOverflowDeathTest, AdditionWithHugeDenominatorsAborts) {
  // Denominators are coprime, so the common denominator alone overflows.
  const Rational a(1, INT64_MAX - 1);
  const Rational b(1, INT64_MAX - 2);
  EXPECT_DEATH({ Rational r = a + b; (void)r; }, "rational overflow");
}

TEST(RationalOverflowDeathTest, JustBelowOverflowStillExact) {
  // 2^31 * 2^31 = 2^62 fits; the checked path must not be over-eager.
  const Rational c(int64_t{1} << 31);
  const Rational product = c * c;
  EXPECT_EQ(product, Rational(int64_t{1} << 62));
  EXPECT_TRUE(product.IsNormalized());
}

TEST(RationalDeathTest, ZeroDenominatorAborts) {
  EXPECT_DEATH(Rational(1, 0), "zero denominator");
}

TEST(RationalDeathTest, InverseOfZeroAborts) {
  EXPECT_DEATH(Rational(0).Inverse(), "inverse of zero");
}

}  // namespace
}  // namespace coverpack
