/// \file properties.h
/// \brief Structural classification of join queries (Figure 1 of the paper).
///
/// Implements alpha-acyclicity via GYO reduction (Appendix A.1),
/// Berge-acyclicity via the incidence bipartite graph (Appendix A.2), and
/// the sub-classes named in the paper: path joins, tree joins,
/// r-hierarchical joins, Loomis-Whitney joins, and degree-two joins.

#ifndef COVERPACK_QUERY_PROPERTIES_H_
#define COVERPACK_QUERY_PROPERTIES_H_

#include <string>
#include <vector>

#include "query/hypergraph.h"

namespace coverpack {

/// One step of the GYO trace, for tests and for building join trees.
struct GyoStep {
  enum Kind {
    kRemoveUniqueAttr,  ///< attribute appeared in a single edge
    kRemoveSubsumedEdge ///< edge contained in another edge
  };
  Kind kind;
  AttrId attr = 0;       ///< for kRemoveUniqueAttr
  EdgeId edge = 0;       ///< edge acted upon (id in the ORIGINAL query)
  EdgeId container = 0;  ///< for kRemoveSubsumedEdge: the containing edge
};

/// Result of running the GYO reduction to fixpoint.
struct GyoResult {
  bool acyclic = false;        ///< true iff the reduction emptied the query
  std::vector<GyoStep> steps;  ///< the applied reduction steps, in order
};

/// Runs the GYO reduction (Appendix A.1). Deterministic: always applies the
/// lowest-numbered applicable rule/edge first.
GyoResult GyoReduce(const Hypergraph& query);

/// True iff the query is alpha-acyclic.
bool IsAlphaAcyclic(const Hypergraph& query);

/// True iff the query is Berge-acyclic: the attribute/relation incidence
/// bipartite graph is a forest. Treats attributes that always co-occur as
/// distinct (the strict definition), so two relations sharing two
/// attributes are Berge-cyclic.
bool IsBergeAcyclic(const Hypergraph& query);

/// True iff every relation has at most two attributes and the query is
/// alpha-acyclic (a "tree join", footnote 7).
bool IsTreeJoin(const Hypergraph& query);

/// True iff the query is a tree join whose relations form a single simple
/// path (a "path join").
bool IsPathJoin(const Hypergraph& query);

/// True iff the query is hierarchical: for any two attributes x, y the
/// edge sets E_x, E_y are nested or disjoint.
bool IsHierarchical(const Hypergraph& query);

/// True iff the query becomes hierarchical after removing relations that
/// are contained in other relations ("r-hierarchical" of [15]).
bool IsRHierarchical(const Hypergraph& query);

/// True iff E = { V - {x} : x in V } (Loomis-Whitney join).
bool IsLoomisWhitney(const Hypergraph& query);

/// True iff every attribute appears in exactly two relations (degree-two
/// join, Section 5.2).
bool IsDegreeTwo(const Hypergraph& query);

/// For a degree-two join: true iff its dual graph (relations as vertices,
/// one edge per shared attribute) has no odd cycle, i.e. is bipartite.
/// Precondition: IsDegreeTwo(query).
bool DegreeTwoHasNoOddCycle(const Hypergraph& query);

/// Smallest *integral* edge cover, found by exhaustive subset search
/// (queries are constant-size). For alpha-acyclic queries its size always
/// matches rho* (Lemma A.2).
struct IntegralEdgeCover {
  EdgeSet edges;
  uint32_t size = 0;
};
IntegralEdgeCover MinimumIntegralEdgeCover(const Hypergraph& query);

/// Removes subsumed edges (e contained in e') until the query is reduced.
/// Deterministic; keeps the lexicographically-first containing edge.
Hypergraph Reduce(const Hypergraph& query);

/// Human-readable classification summary, e.g.
/// "alpha-acyclic, berge-acyclic, tree, path".
std::string ClassificationString(const Hypergraph& query);

}  // namespace coverpack

#endif  // COVERPACK_QUERY_PROPERTIES_H_
