/// \file fig2_box_join.cc
/// \brief Regenerates Figure 2: the box join's hypergraph and its
/// cover/packing structure (rho* = 2 via {R1,R2}, tau* = 3 via {R3,R4,R5}).

#include <iostream>

#include "bench_util.h"
#include "experiments/runners.h"
#include "lowerbound/hard_instance.h"
#include "lp/covers.h"
#include "lp/packing_provable.h"
#include "query/catalog.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunFig2BoxJoin(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);
  Hypergraph box = catalog::BoxJoin();
  std::cout << "query: " << box.ToString() << "\n\n";
  report.AddParam("query", box.ToString());

  EdgeWeighting cover = FractionalEdgeCover(box);
  EdgeWeighting packing = FractionalEdgePacking(box);
  TablePrinter table({"relation", "cover weight", "packing weight"});
  for (uint32_t edge = 0; edge < box.num_edges(); ++edge) {
    table.AddRow({box.edge(edge).name, cover.weights[edge].ToString(),
                  packing.weights[edge].ToString()});
  }
  table.Print(std::cout);
  std::cout << "rho* = " << cover.total << ", tau* = " << packing.total
            << ", psi* = " << EdgeQuasiPackingNumber(box) << "\n";
  report.metrics.SetGauge("rho_star", cover.total.ToDouble());
  report.metrics.SetGauge("tau_star", packing.total.ToDouble());

  PackingProvability witness = lowerbound::BoxJoinWitness(box);
  std::cout << "edge-packing-provable: " << (witness.provable ? "yes" : "no")
            << "; witness vertex cover x_A=x_B=x_C=1/3, x_D=x_E=x_F=2/3; probabilistic E' = {";
  for (size_t i = 0; i < witness.probabilistic.size(); ++i) {
    std::cout << (i ? ", " : "") << box.edge(witness.probabilistic[i]).name;
  }
  std::cout << "}\n";

  bool ok = cover.total == Rational(2) && packing.total == Rational(3) && witness.provable;
  FinishReport(report, ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
