/// \file io.h
/// \brief Plain-text (CSV) serialization of relations and instances.
///
/// Format: one header line naming the attributes (matching the query's
/// attribute names, in ascending AttrId order), then one comma-separated
/// row of unsigned integers per tuple. Instances are stored as one file
/// per relation named `<relation>.csv` under a directory.

#ifndef COVERPACK_RELATION_IO_H_
#define COVERPACK_RELATION_IO_H_

#include <iosfwd>
#include <string>

#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {

/// Writes the relation as CSV with attribute names from `query`.
void WriteCsv(std::ostream& os, const Hypergraph& query, const Relation& relation);

/// Reads a CSV produced by WriteCsv. The header attributes must exist in
/// `query` and exactly match `expected_attrs` (any order in the header;
/// values are reordered into ascending-AttrId row layout). Aborts on
/// malformed input (files are produced by this library).
Relation ReadCsv(std::istream& is, const Hypergraph& query, AttrSet expected_attrs);

/// Saves every relation of the instance to `<directory>/<name>.csv`.
/// The directory must exist. Returns the number of files written.
size_t SaveInstance(const std::string& directory, const Hypergraph& query,
                    const Instance& instance);

/// Loads an instance previously written by SaveInstance.
Instance LoadInstance(const std::string& directory, const Hypergraph& query);

}  // namespace coverpack

#endif  // COVERPACK_RELATION_IO_H_
