#include "lp/covers.h"

#include "lp/simplex.h"
#include "util/logging.h"

namespace coverpack {

namespace {

/// Builds the incidence constraint row for attribute v: coefficient 1 for
/// every edge containing v.
std::vector<Rational> IncidenceRow(const Hypergraph& query, AttrId v) {
  std::vector<Rational> row(query.num_edges(), Rational(0));
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (query.edge(e).attrs.Contains(v)) row[e] = Rational(1);
  }
  return row;
}

}  // namespace

EdgeWeighting FractionalEdgeCover(const Hypergraph& query) {
  CP_CHECK_GT(query.num_edges(), 0u);
  LinearProgram lp(query.num_edges());
  for (AttrId v : query.AllAttrs().ToVector()) {
    lp.AddGeq(IncidenceRow(query, v), Rational(1));
  }
  // Keep the polytope bounded even for attribute-free corner cases.
  std::vector<Rational> ones(query.num_edges(), Rational(1));
  lp.SetObjective(ones);
  LpResult result = lp.Minimize();
  CP_CHECK_EQ(result.status, LpStatus::kOptimal) << "edge cover LP must be feasible";
  return EdgeWeighting{result.objective, result.solution};
}

EdgeWeighting FractionalEdgePacking(const Hypergraph& query) {
  CP_CHECK_GT(query.num_edges(), 0u);
  LinearProgram lp(query.num_edges());
  for (AttrId v : query.AllAttrs().ToVector()) {
    lp.AddLeq(IncidenceRow(query, v), Rational(1));
  }
  std::vector<Rational> ones(query.num_edges(), Rational(1));
  // Packing weights are individually bounded by 1 only through vertex
  // constraints; an attribute-free edge would make the LP unbounded, so we
  // also cap each f(e) <= 1 (a packing never benefits from more: any edge
  // has at least one vertex in our hypergraphs, but the cap is harmless).
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    std::vector<Rational> row(query.num_edges(), Rational(0));
    row[e] = Rational(1);
    lp.AddLeq(row, Rational(1));
  }
  lp.SetObjective(ones);
  LpResult result = lp.Maximize();
  CP_CHECK_EQ(result.status, LpStatus::kOptimal) << "edge packing LP must be solvable";
  return EdgeWeighting{result.objective, result.solution};
}

Rational EdgeQuasiPackingNumber(const Hypergraph& query) {
  Rational best(0);
  AttrSet all = query.AllAttrs();
  for (SubsetIterator it(all); !it.Done(); it.Next()) {
    Hypergraph residual = query.Residual(it.Current());
    if (residual.num_edges() == 0) continue;
    Rational tau = FractionalEdgePacking(residual).total;
    best = Rational::Max(best, tau);
  }
  return best;
}

VertexWeighting FractionalVertexCover(const Hypergraph& query) {
  uint32_t num_attrs = query.num_attrs();
  CP_CHECK_GT(num_attrs, 0u);
  LinearProgram lp(num_attrs);
  for (const auto& edge : query.edges()) {
    std::vector<Rational> row(num_attrs, Rational(0));
    for (AttrId v : edge.attrs.ToVector()) row[v] = Rational(1);
    lp.AddGeq(row, Rational(1));
  }
  std::vector<Rational> objective(num_attrs, Rational(0));
  for (AttrId v : query.AllAttrs().ToVector()) objective[v] = Rational(1);
  // Attributes outside every edge must stay at zero; give them a cap so the
  // minimization cannot be degenerate.
  lp.SetObjective(objective);
  LpResult result = lp.Minimize();
  CP_CHECK_EQ(result.status, LpStatus::kOptimal) << "vertex cover LP must be feasible";
  return VertexWeighting{result.objective, result.solution};
}

Rational RhoStar(const Hypergraph& query) { return FractionalEdgeCover(query).total; }

Rational TauStar(const Hypergraph& query) { return FractionalEdgePacking(query).total; }

bool IsIntegral(const std::vector<Rational>& weights) {
  for (const auto& w : weights) {
    if (w.den() != 1) return false;
  }
  return true;
}

bool IsHalfIntegral(const std::vector<Rational>& weights) {
  for (const auto& w : weights) {
    if (w.den() != 1 && w.den() != 2) return false;
  }
  return true;
}

Rational RhoStarOfAttrs(const Hypergraph& query, AttrSet attrs) {
  if (attrs.empty()) return Rational(0);
  LinearProgram lp(query.num_edges());
  for (AttrId v : attrs.ToVector()) {
    lp.AddGeq(IncidenceRow(query, v), Rational(1));
  }
  std::vector<Rational> ones(query.num_edges(), Rational(1));
  lp.SetObjective(ones);
  LpResult result = lp.Minimize();
  CP_CHECK_EQ(result.status, LpStatus::kOptimal);
  return result.objective;
}

}  // namespace coverpack
