/// Tests for the resilience subsystem: the deterministic FaultPlan oracle,
/// the ExchangeDelivery/ExchangeInterposer seam, FaultInjector recovery
/// (bounded retries, full-rerun degradation, ledger accounting), round
/// checkpoints, and the heterogeneity cost model. Includes the negative
/// path: a corrupting interposer that does NOT recover must trip the
/// exchange conservation audit.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/exchange.h"
#include "mpc/load_tracker.h"
#include "resilience/checkpoint.h"
#include "resilience/cost_model.h"
#include "resilience/fault_injector.h"
#include "resilience/fault_plan.h"
#include "util/audit.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace coverpack {
namespace {

using mpc::ExchangeDelivery;
using mpc::ExchangeInterposer;
using resilience::FaultInjector;
using resilience::FaultPlan;
using resilience::FaultSpec;
using resilience::ResilienceTelemetry;
using resilience::ScopedFaultInjection;

// ---- FaultPlan -------------------------------------------------------------

TEST(FaultPlanTest, DecisionsArePureFunctionsOfTheirCoordinates) {
  FaultSpec spec;
  spec.seed = 42;
  spec.crash_rate = 0.3;
  spec.drop_rate = 0.3;
  spec.duplicate_rate = 0.3;
  spec.straggler_rate = 0.3;
  spec.straggler_severity = 4.0;
  FaultPlan plan(spec);
  const uint64_t key = FaultPlan::ExchangeKey(2, "hash_partition", 1000, 1000, 16);
  for (uint32_t attempt = 0; attempt < 4; ++attempt) {
    for (uint32_t server = 0; server < 16; ++server) {
      EXPECT_EQ(plan.CrashesDelivery(key, attempt, server),
                plan.CrashesDelivery(key, attempt, server));
      EXPECT_EQ(plan.DropsRow(key, attempt, 0, server, 7),
                plan.DropsRow(key, attempt, 0, server, 7));
      EXPECT_EQ(plan.SpeedOf(attempt, server), plan.SpeedOf(attempt, server));
    }
  }
}

TEST(FaultPlanTest, RateZeroNeverFiresAndRateOneAlwaysFires) {
  FaultSpec never;
  never.seed = 7;
  FaultPlan quiet(never);
  FaultSpec always;
  always.seed = 7;
  always.crash_rate = 1.0;
  always.drop_rate = 1.0;
  FaultPlan loud(always);
  const uint64_t key = FaultPlan::ExchangeKey(0, "broadcast", 64, 0, 8);
  for (uint32_t s = 0; s < 8; ++s) {
    EXPECT_FALSE(quiet.CrashesDelivery(key, 0, s));
    EXPECT_FALSE(quiet.DropsRow(key, 0, 0, s, s));
    EXPECT_TRUE(loud.CrashesDelivery(key, 0, s));
    EXPECT_TRUE(loud.DropsRow(key, 0, 0, s, s));
  }
}

TEST(FaultPlanTest, EmpiricalRatesTrackTheSpec) {
  FaultSpec spec;
  spec.seed = 99;
  spec.crash_rate = 0.2;
  FaultPlan plan(spec);
  uint64_t fired = 0;
  const uint64_t trials = 20000;
  for (uint64_t i = 0; i < trials; ++i) {
    const uint64_t key = FaultPlan::ExchangeKey(static_cast<uint32_t>(i), "x", i, i, 4);
    fired += plan.CrashesDelivery(key, 0, 1) ? 1 : 0;
  }
  const double rate = static_cast<double>(fired) / static_cast<double>(trials);
  EXPECT_GT(rate, 0.17);
  EXPECT_LT(rate, 0.23);
}

TEST(FaultPlanTest, SeedsAndCoordinatesDecorrelateDecisions) {
  FaultSpec a;
  a.seed = 1;
  a.crash_rate = 0.5;
  FaultSpec b = a;
  b.seed = 2;
  FaultPlan plan_a(a);
  FaultPlan plan_b(b);
  const uint64_t key1 = FaultPlan::ExchangeKey(0, "scatter", 100, 100, 8);
  const uint64_t key2 = FaultPlan::ExchangeKey(1, "scatter", 100, 100, 8);
  EXPECT_NE(key1, key2);
  EXPECT_NE(key1, FaultPlan::ExchangeKey(0, "linear", 100, 100, 8));
  bool differs = false;
  for (uint32_t s = 0; s < 64 && !differs; ++s) {
    differs = plan_a.CrashesDelivery(key1, 0, s) != plan_b.CrashesDelivery(key1, 0, s);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, StragglerSpeedsAreSeveritiesOrUnit) {
  FaultSpec spec;
  spec.seed = 5;
  spec.straggler_rate = 0.5;
  spec.straggler_severity = 4.0;
  FaultPlan plan(spec);
  uint32_t slow = 0;
  for (uint32_t s = 0; s < 1000; ++s) {
    const double speed = plan.SpeedOf(3, s);
    EXPECT_TRUE(speed == 1.0 || speed == 0.25);
    slow += speed < 1.0 ? 1 : 0;
  }
  EXPECT_GT(slow, 400u);
  EXPECT_LT(slow, 600u);
  // Inert straggler config: unit speed everywhere.
  EXPECT_EQ(FaultPlan().SpeedOf(0, 0), 1.0);
}

// ---- Exchange seam ---------------------------------------------------------

/// Builds a small routed exchange over `p` shards and executes it,
/// returning destination shards + tracker.
struct ExchangeRun {
  std::vector<Relation> shards;
  LoadTracker tracker{1};
  mpc::ExchangeStats stats;
};

ExchangeRun RunSeededExchange(uint32_t p, uint64_t salt, size_t rows,
                              const char* label = "resilience_property") {
  Rng rng(salt);
  Relation data(AttrSet::FirstN(2));
  for (size_t i = 0; i < rows; ++i) {
    const Value row[2] = {rng.Next(), rng.Next()};
    data.AppendRow(std::span<const Value>(row, 2));
  }
  Cluster cluster(p);
  ExchangeRun run;
  run.shards.assign(p, Relation(data.attrs()));
  mpc::ExchangePlan plan = mpc::Exchange::Plan(
      p, data, [p, salt](size_t i, auto emit) { emit(SplitSeed(salt, i) % p); });
  run.stats = mpc::Exchange::Execute(
      &cluster, 0, plan, [&run](size_t, uint32_t s) { return &run.shards[s]; }, label);
  run.tracker = cluster.tracker();
  return run;
}

TEST(ExchangeInterposerTest, InstallReturnsPreviousForNesting) {
  ASSERT_EQ(ExchangeInterposer::Installed(), nullptr);
  FaultInjector outer(FaultSpec{});
  FaultInjector inner(FaultSpec{});
  ExchangeInterposer* prev = ExchangeInterposer::Install(&outer);
  EXPECT_EQ(prev, nullptr);
  EXPECT_EQ(ExchangeInterposer::Installed(), &outer);
  prev = ExchangeInterposer::Install(&inner);
  EXPECT_EQ(prev, &outer);
  ExchangeInterposer::Install(prev);
  EXPECT_EQ(ExchangeInterposer::Installed(), &outer);
  ExchangeInterposer::Install(nullptr);
  EXPECT_EQ(ExchangeInterposer::Installed(), nullptr);
}

TEST(ExchangeInterposerTest, RestoreTruncatesDestinationsToCheckpoint) {
  /// An interposer that runs one fully-dropped attempt, checks the
  /// destinations, restores, and hands back a clean attempt.
  class Probe : public ExchangeInterposer {
   public:
    uint64_t Deliver(ExchangeDelivery& delivery) override {
      const uint64_t corrupted = delivery.Attempt(
          [](size_t, uint32_t, size_t) { return ExchangeDelivery::RowFate::kDuplicate; });
      EXPECT_EQ(corrupted, 2 * delivery.plan().recorded_planned());
      delivery.Restore();
      saw_exchange = true;
      return delivery.Attempt();
    }
    bool saw_exchange = false;
  };
  Probe probe;
  ExchangeInterposer::Install(&probe);
  ExchangeRun doubled = RunSeededExchange(8, 0xAB, 500);
  ExchangeInterposer::Install(nullptr);
  EXPECT_TRUE(probe.saw_exchange);
  ExchangeRun clean = RunSeededExchange(8, 0xAB, 500);
  // After duplicate-everything + Restore + clean attempt, state matches a
  // never-faulted run exactly.
  EXPECT_EQ(doubled.stats.delivered, clean.stats.delivered);
  for (uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(doubled.shards[s].raw(), clean.shards[s].raw());
  }
}

TEST(DistRelationTest, TruncateShardsRestoresShardSizes) {
  DistRelation dist(AttrSet::FirstN(1), 3);
  const Value v = 7;
  dist.shard(0).AppendRow(std::span<const Value>(&v, 1));
  dist.shard(2).AppendRow(std::span<const Value>(&v, 1));
  const std::vector<size_t> snapshot = dist.ShardSizes();
  EXPECT_EQ(snapshot, (std::vector<size_t>{1, 0, 1}));
  dist.shard(0).AppendRow(std::span<const Value>(&v, 1));
  dist.shard(1).AppendRow(std::span<const Value>(&v, 1));
  EXPECT_EQ(dist.TotalSize(), 4u);
  dist.TruncateShards(snapshot);
  EXPECT_EQ(dist.ShardSizes(), snapshot);
  EXPECT_EQ(dist.TotalSize(), 2u);
}

// ---- FaultInjector ---------------------------------------------------------

TEST(FaultInjectorTest, RecoversBitIdenticalStateUnderCrashesAndCorruption) {
  ExchangeRun clean = RunSeededExchange(8, 0xBEEF, 1500);

  FaultSpec spec;
  spec.seed = 3;
  spec.crash_rate = 0.3;
  spec.drop_rate = 0.01;
  spec.duplicate_rate = 0.01;
  ResilienceTelemetry::Reset();
  ExchangeRun faulted = [&] {
    ScopedFaultInjection injection(spec);
    return RunSeededExchange(8, 0xBEEF, 1500);
  }();

  EXPECT_EQ(faulted.stats.delivered, clean.stats.delivered);
  EXPECT_EQ(faulted.stats.charged, clean.stats.charged);
  for (uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(faulted.shards[s].raw(), clean.shards[s].raw());
    EXPECT_EQ(faulted.tracker.At(0, s), clean.tracker.At(0, s));
  }
  const auto ledger = ResilienceTelemetry::Snapshot();
  EXPECT_EQ(ledger.exchanges_injected, 1u);
  EXPECT_EQ(ledger.checkpoints_captured, 1u);
  ASSERT_EQ(ledger.exchanges_faulted, 1u);  // crash_rate .3 over 8 servers
  EXPECT_GT(ledger.retries, 0u);
  EXPECT_GT(ledger.tuples_resent, 0u);
  EXPECT_GT(ledger.backoff_units, 0u);
  EXPECT_EQ(ledger.attempts_samples.size(), 1u);
  EXPECT_GE(ledger.attempts_samples[0], 2.0);
}

TEST(FaultInjectorTest, PerCrashResendStaysWithinBottleneckReceive) {
  FaultSpec spec;
  spec.seed = 21;
  spec.crash_rate = 0.25;
  ResilienceTelemetry::Reset();
  ExchangeRun faulted;
  {
    ScopedFaultInjection injection(spec);
    faulted = RunSeededExchange(16, 0xD00D, 4000);
  }
  const auto ledger = ResilienceTelemetry::Snapshot();
  ASSERT_GT(ledger.crashes, 0u);
  // Each crash replays one server's round: at most the bottleneck receive.
  EXPECT_LE(ledger.max_single_resend, faulted.stats.max_receive);
  EXPECT_LE(ledger.tuples_resent_crash, ledger.crashes * faulted.stats.max_receive);
}

TEST(FaultInjectorTest, RetryBudgetExhaustionDegradesToFullRerun) {
  FaultSpec spec;
  spec.seed = 8;
  spec.crash_rate = 1.0;  // every attempt crashes every receiving server
  spec.max_attempts = 3;
  ResilienceTelemetry::Reset();
  ExchangeRun clean = RunSeededExchange(4, 0xFEED, 800);
  ExchangeRun faulted;
  {
    ScopedFaultInjection injection(spec);
    faulted = RunSeededExchange(4, 0xFEED, 800);
  }
  // Degraded, but still exact.
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(faulted.shards[s].raw(), clean.shards[s].raw());
  }
  const auto ledger = ResilienceTelemetry::Snapshot();
  EXPECT_EQ(ledger.full_reruns, 1u);
  EXPECT_EQ(ledger.retries, 3u);
  // 4 attempts total: three faulty ones plus the final clean replay.
  ASSERT_EQ(ledger.attempts_samples.size(), 1u);
  EXPECT_EQ(ledger.attempts_samples[0], 4.0);
  // The full rerun re-ships the entire plan on top of the per-crash resends.
  EXPECT_EQ(ledger.tuples_resent_full_rerun, faulted.stats.planned);
  EXPECT_EQ(ledger.tuples_resent,
            ledger.tuples_resent_crash + ledger.tuples_resent_full_rerun);
}

TEST(FaultInjectorTest, UnchargedExchangesAreOutsideTheFaultModel) {
  FaultSpec spec;
  spec.seed = 4;
  spec.crash_rate = 1.0;
  Rng rng(1);
  Relation data(AttrSet::FirstN(1));
  for (size_t i = 0; i < 100; ++i) {
    const Value v = rng.Next();
    data.AppendRow(std::span<const Value>(&v, 1));
  }
  std::vector<Relation> shards(4, Relation(data.attrs()));
  mpc::ExchangePlan plan =
      mpc::Exchange::Plan(4, data, [](size_t i, auto emit) { emit(i % 4); });
  ResilienceTelemetry::Reset();
  {
    ScopedFaultInjection injection(spec);
    // Null cluster = initial placement: delivered but never charged, so the
    // injector must pass it through untouched.
    mpc::Exchange::Execute(
        nullptr, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; },
        "initial_placement");
  }
  const auto ledger = ResilienceTelemetry::Snapshot();
  EXPECT_EQ(ledger.exchanges_injected, 0u);
  EXPECT_EQ(ledger.crashes, 0u);
  uint64_t total = 0;
  for (const Relation& shard : shards) total += shard.size();
  EXPECT_EQ(total, 100u);
}

TEST(FaultInjectorTest, InjectionIsDeterministicAcrossThreadCounts) {
  FaultSpec spec;
  spec.seed = 17;
  spec.crash_rate = 0.3;
  spec.drop_rate = 0.02;
  spec.duplicate_rate = 0.02;
  const unsigned saved = ThreadPool::GlobalThreads();
  ResilienceTelemetry::Reset();
  ThreadPool::SetGlobalThreads(1);
  ExchangeRun serial;
  {
    ScopedFaultInjection injection(spec);
    serial = RunSeededExchange(8, 0xFACE, 6000);
  }
  const auto serial_ledger = ResilienceTelemetry::Snapshot();
  ResilienceTelemetry::Reset();
  ThreadPool::SetGlobalThreads(4);
  ExchangeRun parallel;
  {
    ScopedFaultInjection injection(spec);
    parallel = RunSeededExchange(8, 0xFACE, 6000);
  }
  const auto parallel_ledger = ResilienceTelemetry::Snapshot();
  ThreadPool::SetGlobalThreads(saved);
  for (uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(serial.shards[s].raw(), parallel.shards[s].raw());
  }
  // The fault schedule itself — not just the healed result — is identical.
  EXPECT_EQ(serial_ledger.crashes, parallel_ledger.crashes);
  EXPECT_EQ(serial_ledger.rows_dropped, parallel_ledger.rows_dropped);
  EXPECT_EQ(serial_ledger.rows_duplicated, parallel_ledger.rows_duplicated);
  EXPECT_EQ(serial_ledger.retries, parallel_ledger.retries);
  EXPECT_EQ(serial_ledger.tuples_resent, parallel_ledger.tuples_resent);
}

// ---- Round checkpoints -----------------------------------------------------

TEST(RoundCheckpointTest, CaptureAndRestoreRoundTripsDistributedState) {
  Cluster cluster(3);
  DistRelation dist(AttrSet::FirstN(1), 3);
  const Value v1 = 1, v2 = 2;
  dist.shard(0).AppendRow(std::span<const Value>(&v1, 1));
  cluster.tracker().Add(0, 0, 10);
  const resilience::RoundCheckpoint checkpoint =
      resilience::RoundCheckpoint::Capture(1, dist, cluster.tracker());
  EXPECT_EQ(checkpoint.round(), 1u);
  EXPECT_EQ(checkpoint.snapshot_tuples(), 1u);

  dist.shard(1).AppendRow(std::span<const Value>(&v2, 1));
  cluster.tracker().Add(1, 2, 99);
  checkpoint.Restore(&dist, &cluster.tracker());
  EXPECT_EQ(dist.TotalSize(), 1u);
  EXPECT_EQ(dist.shard(1).size(), 0u);
  EXPECT_EQ(cluster.tracker().num_rounds(), 1u);
  EXPECT_EQ(cluster.tracker().At(0, 0), 10u);
}

TEST(RoundCheckpointStoreTest, TracksCapturesAndRestoresPerRound) {
  resilience::RoundCheckpointStore store;
  store.NoteCapture(0, 100);
  store.NoteCapture(0, 50);
  store.NoteCapture(2, 10);
  store.NoteRestore(0);
  EXPECT_EQ(store.num_captures(), 3u);
  EXPECT_EQ(store.num_restores(), 1u);
  EXPECT_EQ(store.total_tuples(), 160u);
  EXPECT_EQ(store.num_rounds(), 2u);
  store.Clear();
  EXPECT_EQ(store.num_captures(), 0u);
  EXPECT_EQ(store.num_rounds(), 0u);
}

TEST(RoundCheckpointStoreTest, InjectorLedgersOneCheckpointPerChargedExchange) {
  FaultSpec spec;
  spec.seed = 12;
  spec.crash_rate = 0.5;
  ScopedFaultInjection injection(spec);
  RunSeededExchange(4, 1, 300);
  RunSeededExchange(4, 2, 300);
  const resilience::RoundCheckpointStore store = injection.injector().CheckpointLedger();
  EXPECT_EQ(store.num_captures(), 2u);
  EXPECT_GE(store.num_restores(), 1u);  // crash_rate .5 over two exchanges
}

// ---- Cost model ------------------------------------------------------------

TEST(CostModelTest, UniformSpeedsCollapseToRoundSummedBottleneckLoad) {
  LoadTracker tracker(3);
  tracker.Add(0, 0, 100);
  tracker.Add(0, 1, 40);
  tracker.Add(1, 2, 60);
  const resilience::MakespanBreakdown breakdown =
      resilience::SimulateMakespan(tracker, FaultPlan());
  EXPECT_DOUBLE_EQ(breakdown.makespan, 160.0);
  EXPECT_DOUBLE_EQ(breakdown.uniform_makespan, 160.0);
  EXPECT_DOUBLE_EQ(breakdown.slowdown, 1.0);
  EXPECT_EQ(breakdown.rounds, 2u);
  EXPECT_EQ(breakdown.straggler_bottlenecks, 0u);
  ASSERT_EQ(breakdown.round_makespans.size(), 2u);
  EXPECT_DOUBLE_EQ(breakdown.round_makespans[0], 100.0);
  EXPECT_DOUBLE_EQ(breakdown.round_makespans[1], 60.0);
}

TEST(CostModelTest, UniversalStragglersScaleMakespanBySeverity) {
  LoadTracker tracker(4);
  tracker.Add(0, 0, 100);
  tracker.Add(1, 3, 50);
  FaultSpec spec;
  spec.seed = 1;
  spec.straggler_rate = 1.0;  // every (round, server) straggles
  spec.straggler_severity = 4.0;
  const resilience::MakespanBreakdown breakdown =
      resilience::SimulateMakespan(tracker, FaultPlan(spec));
  EXPECT_DOUBLE_EQ(breakdown.uniform_makespan, 150.0);
  EXPECT_DOUBLE_EQ(breakdown.makespan, 600.0);
  EXPECT_DOUBLE_EQ(breakdown.slowdown, 4.0);
  EXPECT_EQ(breakdown.straggler_bottlenecks, 2u);
}

TEST(CostModelTest, PartialStragglersBoundTheSlowdown) {
  LoadTracker tracker(8);
  for (uint32_t s = 0; s < 8; ++s) tracker.Add(0, s, 100);
  FaultSpec spec;
  spec.seed = 77;
  spec.straggler_rate = 0.5;
  spec.straggler_severity = 8.0;
  const resilience::MakespanBreakdown breakdown =
      resilience::SimulateMakespan(tracker, FaultPlan(spec));
  EXPECT_GE(breakdown.makespan, breakdown.uniform_makespan);
  EXPECT_LE(breakdown.makespan, 8.0 * breakdown.uniform_makespan);
}

// ---- Negative path: corruption without recovery must trip the audit --------

/// An interposer that corrupts the delivery (one dropped row, two
/// duplicated rows — so sent != received even in aggregate) and hands the
/// corrupted state back WITHOUT restoring. The exchange conservation
/// invariant must catch it.
class NonRecoveringCorruptor : public ExchangeInterposer {
 public:
  uint64_t Deliver(ExchangeDelivery& delivery) override {
    size_t index = 0;
    return delivery.Attempt([&index](size_t, uint32_t, size_t) {
      ++index;
      if (index == 1) return ExchangeDelivery::RowFate::kDrop;
      if (index <= 3) return ExchangeDelivery::RowFate::kDuplicate;
      return ExchangeDelivery::RowFate::kDeliver;
    });
  }
};

TEST(ResilienceAuditDeathTest, UnrecoveredCorruptionTripsExchangeConservation) {
  EXPECT_DEATH(
      {
        NonRecoveringCorruptor corruptor;
        ExchangeInterposer::Install(&corruptor);
        Rng rng(123);
        Relation data(AttrSet::FirstN(1));
        for (size_t i = 0; i < 64; ++i) {
          const Value v = rng.Next();
          data.AppendRow(std::span<const Value>(&v, 1));
        }
        Cluster cluster(4);
        std::vector<Relation> shards(4, Relation(data.attrs()));
        mpc::ExchangePlan plan =
            mpc::Exchange::Plan(4, data, [](size_t i, auto emit) { emit(i % 4); });
        // In audit builds Execute's own conservation check fires; in plain
        // builds the same named verifier is invoked on the stats directly.
        mpc::ExchangeStats stats = mpc::Exchange::Execute(
            &cluster, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; },
            "corrupted_exchange");
        audit::SimulatorAuditor::VerifyExchange(plan.recorded_planned(), stats.delivered,
                                                "corrupted_exchange");
      },
      "exchange imbalance in corrupted_exchange");
}

}  // namespace
}  // namespace coverpack
