/// \file agm.h
/// \brief The AGM bound on join output size.
///
/// The maximum output size of a join is bounded by min over fractional edge
/// covers f of prod_e |R(e)|^{f(e)} [4]; for uniform relation sizes N this
/// is N^{rho*}. Used by the benches to report how close hard instances come
/// to their worst case and by the counting-argument lower bound calculator.

#ifndef COVERPACK_RELATION_AGM_H_
#define COVERPACK_RELATION_AGM_H_

#include "query/hypergraph.h"
#include "relation/instance.h"
#include "util/rational.h"

namespace coverpack {

/// The AGM bound for this instance, as a double (exact optimization is over
/// log-space weights; we rationalize logs at denominator 2^16 so the result
/// is accurate to well under a percent).
double AgmBound(const Hypergraph& query, const Instance& instance);

/// The AGM bound when every relation has exactly N tuples: N^{rho*}.
/// Returned as a double; exponents stay exact internally.
double AgmBoundUniform(const Hypergraph& query, uint64_t n);

}  // namespace coverpack

#endif  // COVERPACK_RELATION_AGM_H_
