/// Property and metamorphic tests for the planner's statistics layer:
/// histogram widening/merge exactness and associativity, rename invariance
/// of the extended stats signature (agreeing with CanonicalizeShape's
/// isomorphism classes), monotonicity under row subsetting, thread-count
/// invariance of shard-parallel construction, and PlanCache eviction churn
/// when same-shape queries drift apart in their statistics.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "planner/stats.h"
#include "query/catalog.h"
#include "query/hypergraph.h"
#include "relation/instance.h"
#include "relation/relation.h"
#include "service/plan_cache.h"
#include "service/query_shape.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace coverpack {
namespace planner {
namespace {

using service::CachedPlan;
using service::CanonicalizeShape;
using service::PlanCache;
using service::PlanCacheKey;
using service::ShapeCanon;

ColumnHistogram HistogramOf(const std::vector<Value>& values) {
  ColumnHistogram h;
  for (Value v : values) h.Add(v);
  return h;
}

TEST(ColumnHistogramTest, WideningIsExactAgainstDirectConstruction) {
  // Build narrow, then widen — must equal the histogram built directly at
  // the wide domain (pairs of narrow buckets tile one wide bucket).
  const std::vector<Value> values = {0, 1, 2, 3, 7, 8, 9, 15, 15, 15};
  ColumnHistogram narrow = HistogramOf(values);
  ColumnHistogram wide = narrow;
  wide.WidenTo(narrow.log2_domain + 3);
  ColumnHistogram direct;
  direct.WidenTo(narrow.log2_domain + 3);
  for (Value v : values) direct.Add(v);
  EXPECT_EQ(wide, direct);
  EXPECT_EQ(wide.Digest(), direct.Digest());
}

TEST(ColumnHistogramTest, MergeIsAssociativeAcrossMixedDomains) {
  Rng rng(0x57A75);
  for (int trial = 0; trial < 32; ++trial) {
    const auto sample = [&rng](uint32_t log2_domain, size_t n) {
      std::vector<Value> values;
      for (size_t i = 0; i < n; ++i) {
        values.push_back(rng.Uniform(uint64_t{1} << log2_domain));
      }
      return HistogramOf(values);
    };
    // Deliberately different domains so merges exercise widening.
    const ColumnHistogram a = sample(4 + rng.Uniform(3), 1 + rng.Uniform(64));
    const ColumnHistogram b = sample(4 + rng.Uniform(8), 1 + rng.Uniform(64));
    const ColumnHistogram c = sample(4 + rng.Uniform(12), 1 + rng.Uniform(64));
    const ColumnHistogram left = MergeHistograms(MergeHistograms(a, b), c);
    const ColumnHistogram right = MergeHistograms(a, MergeHistograms(b, c));
    EXPECT_EQ(left, right) << "trial " << trial;
    EXPECT_EQ(left.Digest(), right.Digest()) << "trial " << trial;
  }
}

TEST(ColumnHistogramTest, MergeAgreesWithSingleStreamConstruction) {
  Rng rng(0xFEED);
  std::vector<Value> all;
  std::vector<Value> half_a;
  std::vector<Value> half_b;
  for (int i = 0; i < 256; ++i) {
    const Value v = rng.Uniform(1u << 10);
    all.push_back(v);
    (i % 2 == 0 ? half_a : half_b).push_back(v);
  }
  EXPECT_EQ(MergeHistograms(HistogramOf(half_a), HistogramOf(half_b)),
            HistogramOf(all));
}

TEST(DegreeMapTest, MergeIsAssociativeAndCommutative) {
  const DegreeMap a = {{1, 3}, {2, 1}};
  const DegreeMap b = {{2, 4}, {9, 2}};
  const DegreeMap c = {{1, 1}, {9, 5}, {12, 1}};
  EXPECT_EQ(MergeDegreeMaps(MergeDegreeMaps(a, b), c),
            MergeDegreeMaps(a, MergeDegreeMaps(b, c)));
  EXPECT_EQ(MergeDegreeMaps(a, b), MergeDegreeMaps(b, a));
}

TEST(RelationStatsTest, DigestIsInvariantUnderAttributeRenaming) {
  // Same rows under two schemas over different AttrIds: the relation
  // digest must not see the names (it hashes the sorted column digests).
  Relation r1(AttrSet::FromIds({0, 1}));
  Relation r2(AttrSet::FromIds({5, 9}));
  Rng rng(0xCAFE);
  for (int i = 0; i < 200; ++i) {
    const Value x = rng.Uniform(1u << 12);
    const Value y = rng.Uniform(1u << 6);
    r1.AppendRow({x, y});
    r2.AppendRow({x, y});
  }
  EXPECT_EQ(BuildRelationStats(r1).Digest(), BuildRelationStats(r2).Digest());
}

TEST(RelationStatsTest, SubsettingRowsIsMonotone) {
  Relation full(AttrSet::FromIds({0, 1}));
  Relation half(AttrSet::FromIds({0, 1}));
  Rng rng(0x5B5E7);
  for (int i = 0; i < 300; ++i) {
    const Value x = rng.Uniform(1u << 14);
    const Value y = rng.Uniform(1u << 5);
    full.AppendRow({x, y});
    if (i % 2 == 0) half.AppendRow({x, y});
  }
  const RelationStats fs = BuildRelationStats(full);
  const RelationStats hs = BuildRelationStats(half);
  ASSERT_EQ(fs.columns.size(), hs.columns.size());
  EXPECT_LE(hs.rows, fs.rows);
  for (size_t c = 0; c < fs.columns.size(); ++c) {
    EXPECT_LE(hs.columns[c].distinct, fs.columns[c].distinct);
    EXPECT_LE(hs.columns[c].max_degree, fs.columns[c].max_degree);
    // Bucket-wise dominance once both histograms cover the same domain.
    ColumnHistogram wide_half = hs.columns[c].histogram;
    ColumnHistogram wide_full = fs.columns[c].histogram;
    const uint32_t domain = std::max(wide_half.log2_domain, wide_full.log2_domain);
    wide_half.WidenTo(domain);
    wide_full.WidenTo(domain);
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      EXPECT_LE(wide_half.buckets[b], wide_full.buckets[b]);
    }
  }
}

TEST(RelationStatsTest, ShardParallelConstructionIsThreadCountInvariant) {
  const unsigned saved = ThreadPool::GlobalThreads();
  Relation r(AttrSet::FromIds({0, 1, 2}));
  Rng rng(0x7EA4);
  for (int i = 0; i < 10000; ++i) {
    r.AppendRow({rng.Uniform(1u << 16), rng.Uniform(1u << 8), rng.Uniform(4u)});
  }
  ThreadPool::SetGlobalThreads(1);
  const RelationStats serial = BuildRelationStats(r);
  ThreadPool::SetGlobalThreads(4);
  const RelationStats parallel = BuildRelationStats(r);
  ThreadPool::SetGlobalThreads(saved);
  ASSERT_EQ(serial.columns.size(), parallel.columns.size());
  EXPECT_EQ(serial.Digest(), parallel.Digest());
  for (size_t c = 0; c < serial.columns.size(); ++c) {
    EXPECT_EQ(serial.columns[c].histogram, parallel.columns[c].histogram);
    EXPECT_EQ(serial.columns[c].distinct, parallel.columns[c].distinct);
    EXPECT_EQ(serial.columns[c].max_degree, parallel.columns[c].max_degree);
  }
}

TEST(SnapshotSignatureTest, AgreesWithCanonicalShapeUnderRenaming) {
  // Two renderings of the same path shape: different attribute names,
  // different relation names, different insertion order. Canonicalization
  // must identify the shapes, and the extended signature must identify the
  // (shape, distribution) pairs when the instances match positionally.
  Hypergraph::Builder ba;
  ba.AddRelation("R", {"A", "B"});
  ba.AddRelation("S", {"B", "C"});
  const Hypergraph qa = ba.Build();

  Hypergraph::Builder bb;
  bb.AddRelation("T2", {"y", "z"});  // the S-position edge, added first
  bb.AddRelation("T1", {"x", "y"});
  const Hypergraph qb = bb.Build();

  const ShapeCanon ca = CanonicalizeShape(qa);
  const ShapeCanon cb = CanonicalizeShape(qb);
  ASSERT_EQ(ca.hash, cb.hash);
  ASSERT_EQ(ca.canonical_form, cb.canonical_form);

  const Instance ia = workload::MatchingInstance(qa, 512);
  const Instance ib = workload::MatchingInstance(qb, 512);
  const StatsSnapshot sa = BuildStatsSnapshot(qa, ia);
  const StatsSnapshot sb = BuildStatsSnapshot(qb, ib);
  EXPECT_EQ(SnapshotSignature(ca.edge_colors, sa, StatsSignature(ca, ia)),
            SnapshotSignature(cb.edge_colors, sb, StatsSignature(cb, ib)));
}

TEST(SnapshotSignatureTest, DriftingDistributionsDivergeAtEqualSizes) {
  // Same shape, same relation sizes, different value distributions: the
  // base StatsSignature (sizes only) agrees, the extension must not.
  const Hypergraph q = catalog::Path(3);
  Rng rng(0xD41F7);
  const Instance uniform = workload::UniformInstance(q, 1024, 4096, &rng);
  const Instance zipf = workload::ZipfInstance(q, 1024, 4096, 1.2, &rng);
  const ShapeCanon canon = CanonicalizeShape(q);
  ASSERT_EQ(StatsSignature(canon, uniform), StatsSignature(canon, zipf));
  const StatsSnapshot su = BuildStatsSnapshot(q, uniform);
  const StatsSnapshot sz = BuildStatsSnapshot(q, zipf);
  EXPECT_NE(SnapshotSignature(canon.edge_colors, su, StatsSignature(canon, uniform)),
            SnapshotSignature(canon.edge_colors, sz, StatsSignature(canon, zipf)));
}

TEST(PlanCacheChurnTest, StatsSignatureDriftEvictsDeterministically) {
  // One shape, one p, a stream of drifting stats signatures: every drift is
  // a distinct key, so a capacity-4 cache must evict FIFO-of-recency and
  // its counters must account for every lookup exactly.
  PlanCache cache(4);
  const std::string form = "canonical-form";
  const auto key_for = [](uint64_t signature) {
    PlanCacheKey key;
    key.shape_hash = 0xABCD;
    key.p = 64;
    key.stats_signature = signature;
    return key;
  };
  for (uint64_t sig = 0; sig < 8; ++sig) {
    EXPECT_FALSE(cache.Lookup(key_for(sig), form).has_value());
    CachedPlan plan;
    plan.canonical_form = form;
    plan.planner_est_load = sig;
    cache.Insert(key_for(sig), plan);
  }
  const service::PlanCacheStats after = cache.stats();
  EXPECT_EQ(after.misses, 8u);
  EXPECT_EQ(after.insertions, 8u);
  EXPECT_EQ(after.evictions, 4u);
  EXPECT_EQ(after.size, 4u);
  // The four oldest signatures are gone; the four newest survive with
  // their planner artifacts intact.
  for (uint64_t sig = 0; sig < 4; ++sig) {
    EXPECT_FALSE(cache.Lookup(key_for(sig), form).has_value()) << sig;
  }
  for (uint64_t sig = 4; sig < 8; ++sig) {
    const auto hit = cache.Lookup(key_for(sig), form);
    ASSERT_TRUE(hit.has_value()) << sig;
    EXPECT_EQ(hit->planner_est_load, sig);
  }
}

}  // namespace
}  // namespace planner
}  // namespace coverpack
