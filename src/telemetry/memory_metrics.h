/// \file memory_metrics.h
/// \brief Bridges the arena substrate's process-global scratch-memory
/// telemetry into a MetricsRegistry (and therefore into RunReport /
/// BENCH_results.json).
///
/// Lives in the telemetry library, not in util/arena.cc, because the
/// dependency points this way: cp_telemetry links cp_util. The arena
/// exposes a plain-struct snapshot; this translates it into the "memory.*"
/// metric keys documented in EXPERIMENTS.md.

#ifndef COVERPACK_TELEMETRY_MEMORY_METRICS_H_
#define COVERPACK_TELEMETRY_MEMORY_METRICS_H_

#include "telemetry/metrics.h"

namespace coverpack {
namespace telemetry {

/// Writes the current MemoryTelemetry aggregate into `registry`: counters
/// "memory.arena_scopes" and "memory.arena_bytes_total", and gauge
/// "memory.arena_high_water_bytes". Every value is a pure function of the
/// operator inputs (logical bytes per operator-level arena frame — never
/// physical page counts), so reports stay byte-identical across thread
/// counts and fault schedules. No-op when no arena scope has closed since
/// the last MemoryTelemetry::Reset(), keeping schemas of arena-free runs
/// unchanged. Call from the thread that owns `registry`.
void SnapshotMemoryTelemetryInto(MetricsRegistry* registry);

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_MEMORY_METRICS_H_
