#include "relation/operators.h"

#include <algorithm>
#include <cstring>

#include "relation/join_index.h"
#include "util/arena.h"
#include "util/hash.h"
#include "util/logging.h"

namespace coverpack {

namespace {

bool KeysEqual(const Value* a, const uint32_t* a_cols, const Value* b,
               const uint32_t* b_cols, size_t num_cols) {
  for (size_t i = 0; i < num_cols; ++i) {
    if (a[a_cols[i]] != b[b_cols[i]]) return false;
  }
  return true;
}

uint32_t* ColumnsOf(const Relation& relation, AttrSet attrs, Arena* arena) {
  uint32_t* cols = arena->AllocateArray<uint32_t>(attrs.size());
  size_t k = 0;
  for (AttrId attr : attrs.ToVector()) cols[k++] = relation.ColumnOf(attr);
  return cols;
}

/// Copies the rows flagged in `keep` into `output`, coalescing consecutive
/// keepers into single bulk copies. Preserves input row order.
void GatherKeptRows(const Relation& input, const uint8_t* keep, size_t matches,
                    Relation* output) {
  const size_t n = input.size();
  const uint32_t width = input.width();
  const Value* src = input.raw().data();
  Value* dst = output->AppendUninitialized(matches);
  size_t i = 0;
  while (i < n) {
    if (!keep[i]) {
      ++i;
      continue;
    }
    size_t run = i + 1;
    while (run < n && keep[run]) ++run;
    std::memcpy(dst, src + i * width, (run - i) * width * sizeof(Value));
    dst += (run - i) * width;
    i = run;
  }
}

/// Shared core of SelectIn/SelectNotIn: keep rows whose `col` value is
/// (resp. is not) present in `sorted_values`.
Relation SelectByMembership(const Relation& input, uint32_t col,
                            const std::vector<Value>& sorted_values, bool keep_members) {
  Relation output(input.attrs());
  const size_t n = input.size();
  if (n == 0) return output;
  ArenaScope scope;
  uint8_t* keep = scope.arena()->AllocateArray<uint8_t>(n);
  const Value* src = input.raw().data();
  const uint32_t width = input.width();
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    bool member = std::binary_search(sorted_values.begin(), sorted_values.end(),
                                     src[i * width + col]);
    keep[i] = (member == keep_members);
    matches += keep[i];
  }
  output.Reserve(matches);
  GatherKeptRows(input, keep, matches, &output);
  return output;
}

}  // namespace

Relation Select(const Relation& input, AttrId attr, Value value) {
  Relation output(input.attrs());
  const size_t n = input.size();
  if (n == 0) return output;
  const uint32_t col = input.ColumnOf(attr);
  const uint32_t width = input.width();
  const Value* src = input.raw().data();
  // Branch-free flag-and-count over the column, then one bulk append filled
  // by run-coalesced copies.
  ArenaScope scope;
  uint8_t* keep = scope.arena()->AllocateArray<uint8_t>(n);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    keep[i] = (src[i * width + col] == value);
    matches += keep[i];
  }
  output.Reserve(matches);
  GatherKeptRows(input, keep, matches, &output);
  return output;
}

Relation SelectIn(const Relation& input, AttrId attr, const std::vector<Value>& sorted_values) {
  return SelectByMembership(input, input.ColumnOf(attr), sorted_values, true);
}

Relation SelectNotIn(const Relation& input, AttrId attr,
                     const std::vector<Value>& sorted_values) {
  return SelectByMembership(input, input.ColumnOf(attr), sorted_values, false);
}

Relation Project(const Relation& input, AttrSet attrs) {
  CP_CHECK(attrs.IsSubsetOf(input.attrs()));
  Relation output(attrs);
  const size_t n = input.size();
  if (n == 0) return output;
  ArenaScope scope;
  uint32_t* cols = ColumnsOf(input, attrs, scope.arena());
  const size_t out_width = attrs.size();
  const uint32_t in_width = input.width();
  const Value* src = input.raw().data();
  Value* dst = output.AppendUninitialized(n);
  for (size_t i = 0; i < n; ++i) {
    const Value* row = src + i * in_width;
    for (size_t j = 0; j < out_width; ++j) dst[j] = row[cols[j]];
    dst += out_width;
  }
  output.Dedup();
  return output;
}

std::vector<Value> DistinctValues(const Relation& input, AttrId attr) {
  std::vector<Value> values(input.size());
  const uint32_t col = input.ColumnOf(attr);
  const uint32_t width = input.width();
  const Value* src = input.raw().data() + col;
  for (size_t i = 0; i < values.size(); ++i) values[i] = src[i * width];
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

Relation SemiJoin(const Relation& left, const Relation& right) {
  AttrSet shared = left.attrs().Intersect(right.attrs());
  if (shared.empty()) {
    return right.empty() ? Relation(left.attrs()) : left;
  }
  Relation output(left.attrs());
  const size_t n = left.size();
  if (n == 0 || right.empty()) return output;

  ArenaScope scope;
  Arena* arena = scope.arena();
  uint32_t* left_cols = ColumnsOf(left, shared, arena);
  uint32_t* right_cols = ColumnsOf(right, shared, arena);
  const size_t num_keys = shared.size();

  GroupedKeyIndex index(arena);
  index.Build(right, right_cols, num_keys);

  const Value* lbase = left.raw().data();
  const Value* rbase = right.raw().data();
  const uint32_t lwidth = left.width();
  const uint32_t rwidth = right.width();

  uint8_t* keep = arena->AllocateArray<uint8_t>(n);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value* lrow = lbase + i * lwidth;
    uint64_t h = HashRowKey(lrow, left_cols, num_keys);
    uint8_t hit = 0;
    if (index.MightContain(h)) {
      auto candidates = index.Probe(h);
      for (const uint32_t* j = candidates.begin; j != candidates.end; ++j) {
        if (KeysEqual(lrow, left_cols, rbase + size_t{*j} * rwidth, right_cols,
                      num_keys)) {
          hit = 1;
          break;
        }
      }
    }
    keep[i] = hit;
    matches += hit;
  }
  output.Reserve(matches);
  GatherKeptRows(left, keep, matches, &output);
  return output;
}

Relation HashJoin(const Relation& left, const Relation& right) {
  AttrSet shared = left.attrs().Intersect(right.attrs());
  AttrSet out_attrs = left.attrs().Union(right.attrs());
  Relation output(out_attrs);
  if (left.empty() || right.empty()) return output;

  ArenaScope scope;
  Arena* arena = scope.arena();
  uint32_t* left_cols = ColumnsOf(left, shared, arena);
  uint32_t* right_cols = ColumnsOf(right, shared, arena);
  const size_t num_keys = shared.size();

  GroupedKeyIndex index(arena);
  index.Build(right, right_cols, num_keys);

  const Value* lbase = left.raw().data();
  const Value* rbase = right.raw().data();
  const uint32_t lwidth = left.width();
  const uint32_t rwidth = right.width();
  const size_t n = left.size();
  CP_CHECK(n <= 0xFFFFFFFFu);

  // Probe pass: verified (left, right) row-id pairs in output order —
  // ascending left row, then ascending right row within a key group.
  ArenaVector<uint64_t> pairs(arena);
  for (size_t i = 0; i < n; ++i) {
    const Value* lrow = lbase + i * lwidth;
    uint64_t h = HashRowKey(lrow, left_cols, num_keys);
    if (!index.MightContain(h)) continue;
    auto candidates = index.Probe(h);
    for (const uint32_t* j = candidates.begin; j != candidates.end; ++j) {
      if (KeysEqual(lrow, left_cols, rbase + size_t{*j} * rwidth, right_cols,
                    num_keys)) {
        pairs.push_back((uint64_t{i} << 32) | *j);
      }
    }
  }

  // Output column plan: for each output attribute, where to read it from.
  const uint32_t out_width = output.width();
  struct Source {
    uint8_t from_left;
    uint32_t col;
  };
  Source* plan = arena->AllocateArray<Source>(out_width);
  {
    size_t k = 0;
    for (AttrId attr : out_attrs.ToVector()) {
      if (left.attrs().Contains(attr)) {
        plan[k++] = {1, left.ColumnOf(attr)};
      } else {
        plan[k++] = {0, right.ColumnOf(attr)};
      }
    }
  }

  // Emit pass: one bulk append, columns gathered pair by pair.
  Value* dst = output.AppendUninitialized(pairs.size());
  for (uint64_t pair : pairs) {
    const Value* lrow = lbase + (pair >> 32) * lwidth;
    const Value* rrow = rbase + (pair & 0xFFFFFFFFu) * rwidth;
    for (uint32_t k = 0; k < out_width; ++k) {
      dst[k] = plan[k].from_left ? lrow[plan[k].col] : rrow[plan[k].col];
    }
    dst += out_width;
  }
  return output;
}

Relation MultiwayJoin(const std::vector<const Relation*>& inputs) {
  CP_CHECK(!inputs.empty());
  std::vector<const Relation*> ordered = inputs;
  std::sort(ordered.begin(), ordered.end(),
            [](const Relation* a, const Relation* b) { return a->size() < b->size(); });
  Relation result = *ordered[0];
  for (size_t i = 1; i < ordered.size(); ++i) {
    result = HashJoin(result, *ordered[i]);
    if (result.empty()) break;
  }
  return result;
}

Relation AttachConstant(const Relation& input, AttrId attr, Value value) {
  CP_CHECK(!input.attrs().Contains(attr));
  AttrSet out_attrs = input.attrs().Union(AttrSet::Single(attr));
  Relation output(out_attrs);
  const size_t n = input.size();
  if (n == 0) return output;
  const uint32_t insert_at = output.ColumnOf(attr);
  const uint32_t in_width = input.width();
  const Value* src = input.raw().data();
  Value* dst = output.AppendUninitialized(n);
  for (size_t i = 0; i < n; ++i) {
    const Value* row = src + i * in_width;
    for (uint32_t c = 0; c < insert_at; ++c) dst[c] = row[c];
    dst[insert_at] = value;
    for (uint32_t c = insert_at; c < in_width; ++c) dst[c + 1] = row[c];
    dst += in_width + 1;
  }
  return output;
}

Relation DropColumn(const Relation& input, AttrId attr) {
  CP_CHECK(input.attrs().Contains(attr));
  AttrSet out_attrs = input.attrs().Minus(AttrSet::Single(attr));
  Relation output(out_attrs);
  const size_t n = input.size();
  if (n == 0) return output;
  const uint32_t drop_at = input.ColumnOf(attr);
  const uint32_t in_width = input.width();
  const Value* src = input.raw().data();
  Value* dst = output.AppendUninitialized(n);
  for (size_t i = 0; i < n; ++i) {
    const Value* row = src + i * in_width;
    for (uint32_t c = 0; c < drop_at; ++c) dst[c] = row[c];
    for (uint32_t c = drop_at + 1; c < in_width; ++c) dst[c - 1] = row[c];
    dst += in_width - 1;
  }
  return output;
}

std::vector<std::pair<Value, uint64_t>> DegreeHistogram(const Relation& input, AttrId attr) {
  std::vector<std::pair<Value, uint64_t>> histogram;
  const size_t n = input.size();
  if (n == 0) return histogram;
  // Gather the column, sort it, and run-length encode: no hash table, and
  // the histogram comes out sorted by value for free.
  ArenaScope scope;
  Value* values = scope.arena()->AllocateArray<Value>(n);
  const uint32_t width = input.width();
  const Value* src = input.raw().data() + input.ColumnOf(attr);
  for (size_t i = 0; i < n; ++i) values[i] = src[i * width];
  std::sort(values, values + n);
  size_t i = 0;
  while (i < n) {
    size_t run = i + 1;
    while (run < n && values[run] == values[i]) ++run;
    histogram.emplace_back(values[i], run - i);
    i = run;
  }
  return histogram;
}

}  // namespace coverpack
