/// \file workload_sim.h
/// \brief Simulated clients issuing registered queries against the service.
///
/// Every client is a deterministic stream of (inter-arrival delay, catalog
/// index) draws from its own split Rng stream — SplitSeed(seed, client) —
/// so the offered workload depends only on the configuration, never on
/// thread scheduling. Three arrival disciplines:
///
///  * open loop — clients issue on their own clock regardless of
///    completions (queueing builds up under overload);
///  * closed loop — a client issues its next query one think-delay after
///    its previous query completed (load self-limits);
///  * bursty — open loop, but queries arrive in back-to-back bursts
///    separated by long gaps (phase behavior for the scheduler).
///
/// Which catalog entry a client asks for follows a Zipf(skew) popularity
/// distribution over the registered catalog: rank 0 is the most popular.
/// Skewed popularity is what makes the plan cache earn its keep inside a
/// single cold run.

#ifndef COVERPACK_SERVICE_WORKLOAD_SIM_H_
#define COVERPACK_SERVICE_WORKLOAD_SIM_H_

#include <cstdint>
#include <optional>
#include <string>

#include "util/random.h"

namespace coverpack {
namespace service {

/// Client arrival discipline.
enum class ArrivalMode : uint8_t {
  kOpenLoop,
  kClosedLoop,
  kBursty,
};

/// Stable names for configs/reports: "open", "closed", "bursty".
const char* ArrivalModeName(ArrivalMode mode);

/// Parses an ArrivalModeName; nullopt on anything else.
std::optional<ArrivalMode> ParseArrivalMode(const std::string& name);

/// The simulated client population.
struct WorkloadConfig {
  uint32_t clients = 8;
  uint32_t queries_per_client = 8;
  ArrivalMode mode = ArrivalMode::kOpenLoop;
  /// Mean inter-arrival delay in ticks (open loop), mean think time
  /// (closed loop), and the intra-burst gap is 1 tick (bursty).
  uint64_t mean_interarrival_ticks = 32;
  uint32_t burst_length = 8;          ///< bursty: queries per burst
  uint64_t burst_gap_ticks = 512;     ///< bursty: mean gap between bursts
  double zipf_skew = 1.1;             ///< popularity skew over the catalog
  uint64_t seed = 0x5EAF00D;
};

/// One simulated client: a replayable draw stream over its query budget.
class ClientSim {
 public:
  ClientSim(const WorkloadConfig& config, uint32_t client_id, size_t catalog_size);

  /// True once the client has issued its full queries_per_client budget.
  bool Done() const { return issued_ >= config_.queries_per_client; }

  uint32_t issued() const { return issued_; }

  /// Draws the next (delay, catalog index) pair and advances the stream.
  /// The delay is relative to the previous issue (open/bursty) or to the
  /// previous completion (closed loop); the caller anchors it.
  struct Draw {
    uint64_t delay_ticks = 0;
    uint32_t catalog_index = 0;
  };
  Draw NextArrival();

 private:
  const WorkloadConfig config_;
  uint32_t issued_ = 0;
  Rng rng_;
  ZipfSampler zipf_;
};

}  // namespace service
}  // namespace coverpack

#endif  // COVERPACK_SERVICE_WORKLOAD_SIM_H_
