#include "core/output_balanced.h"

#include <gtest/gtest.h>

#include <cmath>

#include "query/catalog.h"
#include "query/parser.h"
#include "relation/oracle.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

class OutputBalancedCorrectness
    : public ::testing::TestWithParam<std::tuple<const char*, uint32_t, uint64_t>> {};

TEST_P(OutputBalancedCorrectness, MatchesOracle) {
  auto [text, p, seed] = GetParam();
  Hypergraph q = ParseQuery(text);
  Rng rng(seed);
  Instance instance = workload::UniformInstance(q, 120, 12, &rng);
  OutputBalancedOptions options;
  options.collect = true;
  OutputBalancedResult run = ComputeOutputBalanced(q, instance, p, options);
  Relation expected = GenericJoin(q, instance);
  EXPECT_EQ(run.output_count, expected.size()) << text;
  EXPECT_TRUE(run.results.SameContentAs(expected)) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OutputBalancedCorrectness,
    ::testing::Combine(::testing::Values("R1(A,B), R2(B,C), R3(C,D)",
                                         "R1(A,B), R2(A,C), R3(A,D)",
                                         "R0(A,B,C), R1(A,B,D), R2(B,C,E), R3(A,C,F)"),
                       ::testing::Values(3u, 8u, 32u), ::testing::Values(1u, 9u)));

TEST(OutputBalancedTest, EmptyJoin) {
  Hypergraph q = catalog::Line3();
  Instance instance(q);
  instance[0].AppendRow({1, 2});
  instance[1].AppendRow({3, 4});  // B mismatch
  instance[2].AppendRow({4, 5});
  OutputBalancedOptions options;
  options.collect = true;
  OutputBalancedResult run = ComputeOutputBalanced(q, instance, 4, options);
  EXPECT_EQ(run.output_count, 0u);
}

TEST(OutputBalancedTest, LoadIsOutputSensitive) {
  // OUT = N here (matching data): load should be ~N/p, not intermediate-
  // sized like plain Yannakakis on adversarial inputs.
  Hypergraph q = catalog::Line3();
  uint64_t n = 8000;
  Instance instance = workload::MatchingInstance(q, n);
  OutputBalancedOptions options;
  OutputBalancedResult run = ComputeOutputBalanced(q, instance, 16, options);
  EXPECT_EQ(run.output_count, n);
  EXPECT_LE(run.max_load, 8 * n / 16 + 8);
}

TEST(OutputBalancedTest, LoadDegeneratesNearAgmBound) {
  // Full bipartite relations: OUT = side^4 ~ AGM bound N^2. The load must
  // carry ~OUT/p worth of replicated inputs (far above N / sqrt(p)).
  Hypergraph q = catalog::Line3();
  uint64_t side = 24;  // N = 576, OUT = 331776
  Instance instance(q);
  for (Value a = 0; a < side; ++a) {
    for (Value b = 0; b < side; ++b) {
      instance[0].AppendRow({a, b});
      instance[1].AppendRow({a, b});
      instance[2].AppendRow({a, b});
    }
  }
  uint32_t p = 16;
  OutputBalancedOptions options;
  OutputBalancedResult run = ComputeOutputBalanced(q, instance, p, options);
  EXPECT_EQ(run.output_count, side * side * side * side);
  uint64_t n = side * side;
  // Every server needs nearly all of R2 and R3 for its root slice.
  EXPECT_GE(run.max_load, n);
  // Theorem 5's load would be ~N / sqrt(p) = 144: an order of magnitude less.
  EXPECT_GE(run.max_load, 4 * (n / static_cast<uint64_t>(std::sqrt(p))));
}

TEST(OutputBalancedTest, RejectsDisconnectedQueries) {
  Hypergraph q = ParseQuery("R1(A,B), R2(X,Y)");
  Instance instance(q);
  instance[0].AppendRow({1, 2});
  instance[1].AppendRow({3, 4});
  OutputBalancedOptions options;
  EXPECT_DEATH(ComputeOutputBalanced(q, instance, 4, options), "connected");
}

}  // namespace
}  // namespace coverpack
