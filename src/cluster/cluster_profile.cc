#include "cluster/cluster_profile.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/hash.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace coverpack {
namespace cluster {

namespace {

/// Period of the geometric speed ladder: slots cycle through 8 speed
/// steps, so any contiguous active window sees the full spread.
constexpr uint32_t kGeometricPeriod = 8;

/// Range of kSeeded speeds: uniform in [1, 8).
constexpr double kSeededSpan = 7.0;

bool ParsePositiveDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!(value > 0.0) || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// Fixed-point with `places` decimals, trailing zeros (and a bare '.')
/// trimmed, so ToString round-trips through ParseSpeedSpec and stays
/// byte-stable across platforms.
std::string FormatDouble(double value, int places) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(places);
  out << value;
  std::string text = out.str();
  if (text.find('.') != std::string::npos) {
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
  }
  return text;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

std::string SpeedSpec::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kUniform:
      out << "uniform";
      break;
    case Kind::kHalves:
      out << "halves:" << FormatDouble(param, 3);
      break;
    case Kind::kGeometric:
      out << "geom:" << FormatDouble(param, 3);
      break;
    case Kind::kSeeded:
      out << "seeded:" << seed;
      break;
    case Kind::kExplicit:
      for (size_t i = 0; i < explicit_speeds.size(); ++i) {
        if (i != 0) out << ",";
        out << FormatDouble(explicit_speeds[i], 3);
      }
      break;
  }
  return out.str();
}

std::optional<SpeedSpec> ParseSpeedSpec(const std::string& text) {
  SpeedSpec spec;
  if (text.empty() || text == "uniform") return spec;
  if (text.rfind("halves:", 0) == 0) {
    spec.kind = SpeedSpec::Kind::kHalves;
    if (!ParsePositiveDouble(text.substr(7), &spec.param)) return std::nullopt;
    return spec;
  }
  if (text.rfind("geom:", 0) == 0) {
    spec.kind = SpeedSpec::Kind::kGeometric;
    if (!ParsePositiveDouble(text.substr(5), &spec.param)) return std::nullopt;
    if (spec.param < 1.0) return std::nullopt;
    return spec;
  }
  if (text.rfind("seeded:", 0) == 0) {
    spec.kind = SpeedSpec::Kind::kSeeded;
    const std::string digits = text.substr(7);
    if (digits.empty()) return std::nullopt;
    char* end = nullptr;
    spec.seed = std::strtoull(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size()) return std::nullopt;
    return spec;
  }
  spec.kind = SpeedSpec::Kind::kExplicit;
  for (const std::string& part : SplitCommas(text)) {
    double speed = 0.0;
    if (!ParsePositiveDouble(part, &speed)) return std::nullopt;
    spec.explicit_speeds.push_back(speed);
  }
  return spec;
}

std::string ElasticSpec::ToString() const {
  if (events.empty()) return "none";
  std::ostringstream out;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out << ",";
    out << (events[i].delta > 0 ? "+" : "") << events[i].delta << "@" << events[i].round;
  }
  return out.str();
}

std::optional<ElasticSpec> ParseElasticSpec(const std::string& text) {
  ElasticSpec spec;
  if (text.empty() || text == "none") return spec;
  for (const std::string& part : SplitCommas(text)) {
    const size_t at = part.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= part.size()) return std::nullopt;
    char* end = nullptr;
    const std::string delta_text = part.substr(0, at);
    const long delta = std::strtol(delta_text.c_str(), &end, 10);
    if (end != delta_text.c_str() + delta_text.size() || delta == 0) return std::nullopt;
    const std::string round_text = part.substr(at + 1);
    const unsigned long round = std::strtoul(round_text.c_str(), &end, 10);
    if (end != round_text.c_str() + round_text.size() || round == 0) return std::nullopt;
    spec.events.push_back(
        {static_cast<uint32_t>(round), static_cast<int32_t>(delta)});
  }
  // Canonical form: sorted by round, one merged event per round.
  std::stable_sort(spec.events.begin(), spec.events.end(),
                   [](const ElasticEvent& a, const ElasticEvent& b) {
                     return a.round < b.round;
                   });
  std::vector<ElasticEvent> merged;
  for (const ElasticEvent& event : spec.events) {
    if (!merged.empty() && merged.back().round == event.round) {
      merged.back().delta += event.delta;
    } else {
      merged.push_back(event);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const ElasticEvent& e) { return e.delta == 0; }),
               merged.end());
  spec.events = std::move(merged);
  return spec;
}

ClusterProfile::ClusterProfile(uint32_t base_p, const SpeedSpec& speeds,
                               const ElasticSpec& schedule)
    : base_p_(base_p), speed_spec_(speeds), schedule_(schedule) {
  CP_CHECK_GE(base_p, 1u);
  if (speed_spec_.kind == SpeedSpec::Kind::kExplicit) {
    CP_CHECK(!speed_spec_.explicit_speeds.empty());
    for (double s : speed_spec_.explicit_speeds) CP_CHECK(s > 0.0);
  }
  // Resolve the schedule into epochs. `active` is kept sorted; joins take
  // the lowest inactive slots, leaves the highest active ones.
  Epoch epoch;
  epoch.first_round = 0;
  for (uint32_t s = 0; s < base_p; ++s) epoch.active.push_back(s);
  uint32_t next_fresh_slot = base_p;
  epochs_.push_back(epoch);
  uint32_t previous_round = 0;
  for (const ElasticEvent& event : schedule_.events) {
    CP_CHECK_GT(event.round, previous_round)
        << "elastic events must be strictly ordered by round";
    previous_round = event.round;
    Epoch next = epochs_.back();
    next.first_round = event.round;
    if (event.delta > 0) {
      // Joins reuse the lowest departed slots first, then fresh ids.
      for (int32_t j = 0; j < event.delta; ++j) {
        uint32_t slot = 0;
        bool found = false;
        for (uint32_t candidate = 0; candidate < next_fresh_slot; ++candidate) {
          if (!std::binary_search(next.active.begin(), next.active.end(), candidate)) {
            slot = candidate;
            found = true;
            break;
          }
        }
        if (!found) slot = next_fresh_slot++;
        next.active.insert(
            std::lower_bound(next.active.begin(), next.active.end(), slot), slot);
      }
    } else {
      const uint32_t leaving = static_cast<uint32_t>(-event.delta);
      CP_CHECK_GT(next.active.size(), leaving)
          << "elastic schedule would drop the fleet below one server";
      next.active.resize(next.active.size() - leaving);
    }
    epochs_.push_back(std::move(next));
  }
  num_slots_ = next_fresh_slot;
  for (const Epoch& e : epochs_) {
    num_slots_ = std::max(num_slots_, e.active.back() + 1);
  }
}

double ClusterProfile::SpeedOfSlot(uint32_t slot) const {
  switch (speed_spec_.kind) {
    case SpeedSpec::Kind::kUniform:
      return 1.0;
    case SpeedSpec::Kind::kHalves:
      return (slot % 2 == 0) ? speed_spec_.param : 1.0;
    case SpeedSpec::Kind::kGeometric: {
      const double frac = static_cast<double>(slot % kGeometricPeriod) /
                          static_cast<double>(kGeometricPeriod - 1);
      return std::pow(speed_spec_.param, frac);
    }
    case SpeedSpec::Kind::kSeeded: {
      // Pure hash of (seed, slot), mapped to [1, 1 + kSeededSpan): the
      // FaultPlan idiom — no state, bit-identical at any thread count.
      const uint64_t h = MixHash(HashCombine(speed_spec_.seed, 0x5eedull + slot));
      const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
      return 1.0 + kSeededSpan * unit;
    }
    case SpeedSpec::Kind::kExplicit:
      return speed_spec_.explicit_speeds[slot % speed_spec_.explicit_speeds.size()];
  }
  return 1.0;
}

const Epoch& ClusterProfile::EpochForRound(uint32_t round) const {
  const Epoch* chosen = &epochs_.front();
  for (const Epoch& epoch : epochs_) {
    if (epoch.first_round <= round) chosen = &epoch;
  }
  return *chosen;
}

std::vector<double> ClusterProfile::ActiveSpeeds(const Epoch& epoch) const {
  std::vector<double> speeds;
  speeds.reserve(epoch.active.size());
  for (uint32_t slot : epoch.active) speeds.push_back(SpeedOfSlot(slot));
  return speeds;
}

std::vector<double> ClusterProfile::NormalizedActiveSpeeds(const Epoch& epoch) const {
  std::vector<double> speeds = ActiveSpeeds(epoch);
  double total = 0.0;
  for (double s : speeds) total += s;
  const double mean = total / static_cast<double>(speeds.size());
  for (double& s : speeds) s /= mean;
  return speeds;
}

std::vector<double> ClusterProfile::SlotSpeeds() const {
  std::vector<double> speeds;
  speeds.reserve(num_slots_);
  for (uint32_t slot = 0; slot < num_slots_; ++slot) speeds.push_back(SpeedOfSlot(slot));
  return speeds;
}

uint64_t ClusterProfile::ContentKey() const {
  uint64_t key = HashCombine(0xC1057E12ull, base_p_);
  key = HashCombine(key, static_cast<uint64_t>(speed_spec_.kind));
  uint64_t param_bits = 0;
  static_assert(sizeof(param_bits) == sizeof(speed_spec_.param));
  std::memcpy(&param_bits, &speed_spec_.param, sizeof(param_bits));
  key = HashCombine(key, param_bits);
  key = HashCombine(key, speed_spec_.seed);
  for (double s : speed_spec_.explicit_speeds) {
    uint64_t bits = 0;
    std::memcpy(&bits, &s, sizeof(bits));
    key = HashCombine(key, bits);
  }
  for (const ElasticEvent& event : schedule_.events) {
    key = HashCombine(key, event.round);
    key = HashCombine(key, static_cast<uint64_t>(static_cast<int64_t>(event.delta)));
  }
  return key;
}

std::vector<uint64_t> ProportionalShares(const std::vector<double>& weights,
                                         uint64_t total_units) {
  CP_CHECK(!weights.empty());
  double total_weight = 0.0;
  for (double w : weights) {
    CP_CHECK(w > 0.0);
    total_weight += w;
  }
  std::vector<uint64_t> shares(weights.size(), 0);
  std::vector<std::pair<double, size_t>> remainders;
  remainders.reserve(weights.size());
  uint64_t assigned = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double exact =
        static_cast<double>(total_units) * (weights[i] / total_weight);
    shares[i] = static_cast<uint64_t>(exact);
    assigned += shares[i];
    remainders.emplace_back(exact - static_cast<double>(shares[i]), i);
  }
  // Largest remainder first; equal remainders go to the lower index.
  std::sort(remainders.begin(), remainders.end(),
            [](const std::pair<double, size_t>& a, const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  CP_CHECK_LE(assigned, total_units);
  uint64_t leftover = total_units - assigned;
  for (size_t i = 0; leftover > 0; i = (i + 1) % remainders.size(), --leftover) {
    ++shares[remainders[i].second];
  }
  return shares;
}

}  // namespace cluster
}  // namespace coverpack
