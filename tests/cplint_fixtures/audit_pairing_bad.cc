// cplint fixture: mutex-guarded state without thread-safety annotations.
#include <mutex>

class Ledger {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }

 private:
  std::mutex mutex_;
  long count_ = 0;
};
