#include "lowerbound/hard_instance.h"

#include <algorithm>
#include <cmath>

#include "lp/covers.h"
#include "query/catalog.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace coverpack {
namespace lowerbound {

namespace {

/// Samples each of the `total - begin` combinations in [begin, total)
/// independently with probability `prob`, visiting only the successes via
/// geometric gap skipping. `emit(index)` is called for every sampled
/// combination index, in ascending order.
template <typename Emit>
void BernoulliRange(uint64_t begin, uint64_t end, double prob, Rng* rng, Emit emit) {
  uint64_t range = end - begin;
  if (prob <= 0.0 || range == 0) return;
  if (prob >= 1.0) {
    for (uint64_t i = begin; i < end; ++i) emit(i);
    return;
  }
  double log_one_minus_p = std::log1p(-prob);
  uint64_t index = 0;
  for (;;) {
    double u = rng->NextDouble();
    if (u <= 0.0) u = 1e-18;
    uint64_t gap = static_cast<uint64_t>(std::floor(std::log(u) / log_one_minus_p));
    if (gap > range || index > range - 1 - gap) break;
    index += gap;
    emit(begin + index);
    if (index == range - 1) break;
    ++index;
  }
}

/// Combination indices each Bernoulli shard spans. Depends only on `total`
/// (the shard count is capped so huge sparse grids don't allocate millions
/// of shard buffers) — never on the thread count.
uint64_t BernoulliShardSpan(uint64_t total) {
  uint64_t span = uint64_t{1} << 16;
  while ((total + span - 1) / span > 4096) span *= 2;
  return span;
}

/// Parallel Bernoulli process over [0, total): fixed-span shards sample
/// their subranges with private Rng streams split off `seed` by shard
/// index, and the successes are emitted in ascending index order. The
/// sampled set depends only on (total, prob, seed).
template <typename Emit>
void ShardedBernoulliProcess(uint64_t total, double prob, uint64_t seed, Emit emit) {
  if (prob <= 0.0 || total == 0) return;
  if (prob >= 1.0) {
    for (uint64_t i = 0; i < total; ++i) emit(i);
    return;
  }
  uint64_t span = BernoulliShardSpan(total);
  size_t num_shards = static_cast<size_t>((total + span - 1) / span);
  std::vector<std::vector<uint64_t>> shard_hits(num_shards);
  ThreadPool::Global().ParallelFor(0, num_shards, 1, [&](size_t shard) {
    uint64_t begin = static_cast<uint64_t>(shard) * span;
    uint64_t end = std::min(total, begin + span);
    Rng rng(SplitSeed(seed, shard));
    BernoulliRange(begin, end, prob, &rng,
                   [&](uint64_t index) { shard_hits[shard].push_back(index); });
  });
  for (const std::vector<uint64_t>& hits : shard_hits) {
    for (uint64_t index : hits) emit(index);
  }
}

/// Decodes mixed-radix combination indices into attribute values and
/// appends them to the relation in one bulk write (row order follows
/// ascending AttrId, rows in the order of `indices`).
void AppendCombinations(Relation* relation, const std::vector<uint64_t>& indices,
                        const std::vector<uint64_t>& dims) {
  const size_t width = dims.size();
  Value* out = relation->AppendUninitialized(indices.size());
  for (uint64_t index : indices) {
    uint64_t rest = index;
    for (size_t c = 0; c < width; ++c) {
      out[c] = rest % dims[c];
      rest /= dims[c];
    }
    out += width;
  }
}

}  // namespace

PackingProvability BoxJoinWitness(const Hypergraph& box) {
  VertexWeighting x;
  x.weights.assign(box.num_attrs(), Rational(0));
  for (const char* name : {"A", "B", "C"}) {
    auto attr = box.FindAttribute(name);
    CP_CHECK(attr.has_value());
    x.weights[*attr] = Rational(1, 3);
  }
  for (const char* name : {"D", "E", "F"}) {
    auto attr = box.FindAttribute(name);
    CP_CHECK(attr.has_value());
    x.weights[*attr] = Rational(2, 3);
  }
  x.total = Rational(3);
  PackingProvability witness = AnalyzeWithCover(box, x);
  CP_CHECK(witness.provable) << witness.reason;
  return witness;
}

PackingProvability UniformHalfWitness(const Hypergraph& query) {
  VertexWeighting x;
  x.weights.assign(query.num_attrs(), Rational(0));
  Rational total(0);
  for (AttrId v : query.AllAttrs().ToVector()) {
    x.weights[v] = Rational(1, 2);
    total += Rational(1, 2);
  }
  x.total = total;
  PackingProvability witness = AnalyzeWithCover(query, x);
  CP_CHECK(witness.provable) << witness.reason;
  return witness;
}

HardInstance BoxJoinHardInstance(const Hypergraph& query, uint64_t n, uint64_t seed) {
  // Verify this is the box join shape.
  CP_CHECK_EQ(query.num_edges(), 5u);
  CP_CHECK(query.FindEdge("R1").has_value() && query.FindEdge("R2").has_value());

  uint64_t d1 = FloorNthRoot(n, 3);  // |dom(A)| = |dom(B)| = |dom(C)|
  CP_CHECK_GE(d1, 2u) << "n too small for the box-join construction";
  uint64_t d2 = d1 * d1;             // |dom(D)| = |dom(E)| = |dom(F)|
  uint64_t effective_n = d1 * d1 * d1;

  HardInstance hard;
  hard.n = effective_n;
  hard.domain_sizes.assign(query.num_attrs(), 1);
  for (const char* name : {"A", "B", "C"}) {
    hard.domain_sizes[*query.FindAttribute(name)] = d1;
  }
  for (const char* name : {"D", "E", "F"}) {
    hard.domain_sizes[*query.FindAttribute(name)] = d2;
  }

  hard.instance = Instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    const Edge& edge = query.edge(e);
    std::vector<uint64_t> dims;
    uint64_t total = 1;
    for (AttrId v : edge.attrs.ToVector()) {
      dims.push_back(hard.domain_sizes[v]);
      total *= hard.domain_sizes[v];
    }
    if (edge.name == "R2") {
      // Probabilistic: each (d, e, f) with probability 1/N. The stream is
      // split per edge so relations stay independent and replayable.
      double prob = 1.0 / static_cast<double>(effective_n);
      std::vector<uint64_t> hits;
      ShardedBernoulliProcess(total, prob, SplitSeed(seed, e),
                              [&](uint64_t index) { hits.push_back(index); });
      AppendCombinations(&hard.instance[e], hits, dims);
    } else {
      CP_CHECK_EQ(total, effective_n) << "deterministic relation size drifted";
      hard.instance[e] = workload::Cartesian(edge.attrs, dims);
    }
  }
  hard.expected_output = effective_n * effective_n;  // N^{rho*} with rho* = 2
  return hard;
}

HardInstance DegreeTwoHardInstance(const Hypergraph& query, const PackingProvability& witness,
                                   uint64_t n, uint64_t seed) {
  CP_CHECK(witness.provable) << "Theorem 7 requires an edge-packing-provable join";
  HardInstance hard;
  hard.n = n;
  hard.domain_sizes.assign(query.num_attrs(), 1);
  long double log_n = std::log(static_cast<long double>(n));
  for (AttrId v : query.AllAttrs().ToVector()) {
    long double exponent = static_cast<long double>(witness.cover.weights[v].ToDouble());
    uint64_t size = static_cast<uint64_t>(std::llroundl(std::exp(exponent * log_n)));
    hard.domain_sizes[v] = std::max<uint64_t>(1, size);
  }

  EdgeSet probabilistic;
  for (EdgeId e : witness.probabilistic) probabilistic.Insert(e);

  hard.instance = Instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    const Edge& edge = query.edge(e);
    std::vector<uint64_t> dims;
    long double total = 1.0L;
    uint64_t total_int = 1;
    for (AttrId v : edge.attrs.ToVector()) {
      dims.push_back(hard.domain_sizes[v]);
      total *= static_cast<long double>(hard.domain_sizes[v]);
      total_int *= hard.domain_sizes[v];
    }
    if (probabilistic.Contains(e)) {
      // Each combination with probability N / prod dom = N^{1 - sum x_v}.
      // Per-edge split seed keeps the relations independent and replayable.
      double prob = static_cast<double>(static_cast<long double>(n) / total);
      std::vector<uint64_t> hits;
      ShardedBernoulliProcess(total_int, prob, SplitSeed(seed, e),
                              [&](uint64_t index) { hits.push_back(index); });
      AppendCombinations(&hard.instance[e], hits, dims);
    } else {
      // Deterministic: a Cartesian product of ~N tuples (sum x_v = 1 up to
      // the integer rounding of the domain sizes).
      hard.instance[e] = workload::Cartesian(edge.attrs, dims);
    }
  }

  long double out = std::exp(static_cast<long double>(witness.rho_star.ToDouble()) * log_n);
  hard.expected_output = static_cast<uint64_t>(std::min<long double>(out, 1e18L));
  return hard;
}

HardInstance Example34Instance(const Hypergraph& figure4_query, uint64_t n) {
  const Hypergraph& q = figure4_query;
  CP_CHECK_EQ(q.num_edges(), 8u);
  HardInstance hard;
  hard.n = n;
  hard.domain_sizes.assign(q.num_attrs(), 1);
  // N distinct values for D, E, F, G, H, J, K; a single value for A, B, C, I.
  for (const char* name : {"D", "E", "F", "G", "H", "J", "K"}) {
    auto attr = q.FindAttribute(name);
    CP_CHECK(attr.has_value()) << "Figure 4 query missing attribute " << name;
    hard.domain_sizes[*attr] = n;
  }

  hard.instance = Instance(q);
  AttrId h = *q.FindAttribute("H");
  AttrId j = *q.FindAttribute("J");
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    const Edge& edge = q.edge(e);
    if (edge.name == "e4") {
      // One-to-one over (H, J); other attributes pinned to their single value.
      hard.instance[e] = workload::OneToOne(edge.attrs, h, j, n);
      continue;
    }
    std::vector<uint64_t> dims;
    for (AttrId v : edge.attrs.ToVector()) dims.push_back(hard.domain_sizes[v]);
    hard.instance[e] = workload::Cartesian(edge.attrs, dims);
    CP_CHECK_EQ(hard.instance[e].size(), n) << "relation " << edge.name << " size drifted";
  }
  // Free attributes D, E, F, H(=J), K, G give N^6 results (the AGM bound).
  long double out = std::pow(static_cast<long double>(n), 6.0L);
  hard.expected_output = static_cast<uint64_t>(std::min<long double>(out, 1e18L));
  return hard;
}

}  // namespace lowerbound
}  // namespace coverpack
