#include "core/em_reduction.h"

#include <cmath>

#include "core/load_planner.h"
#include "lp/covers.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace coverpack {

EmReductionResult ReduceMpcToEm(const Hypergraph& query, uint64_t n, const EmCostModel& em,
                                uint32_t rounds) {
  CP_CHECK_GE(rounds, 1u);
  CP_CHECK_GE(em.memory, em.block);
  EmReductionResult result;

  uint64_t target = std::max<uint64_t>(1, em.memory / rounds);

  // Binary search the smallest p with L(N, p) <= M / r; L is monotone
  // nonincreasing in p.
  uint64_t lo = 1;
  uint64_t hi = 1;
  while (PlanLoadUniform(query, n, static_cast<uint32_t>(hi)) > target &&
         hi < (uint64_t{1} << 40)) {
    hi *= 2;
  }
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (PlanLoadUniform(query, n, static_cast<uint32_t>(mid)) <= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.p_star = lo;
  result.load_at_p_star = PlanLoadUniform(query, n, static_cast<uint32_t>(lo));
  // One scan of the communicated data per round: r * p° * L words / B.
  long double words = static_cast<long double>(rounds) *
                      static_cast<long double>(result.p_star) *
                      static_cast<long double>(result.load_at_p_star);
  result.io_count = static_cast<uint64_t>(words / static_cast<long double>(em.block)) + 1;
  result.closed_form = EmIoClosedForm(query, n, em);
  return result;
}

double EmIoClosedForm(const Hypergraph& query, uint64_t n, const EmCostModel& em) {
  double rho = RhoStar(query).ToDouble();
  return std::pow(static_cast<double>(n), rho) /
         (std::pow(static_cast<double>(em.memory), rho - 1.0) *
          static_cast<double>(em.block));
}

}  // namespace coverpack
