// cplint fixture: uses util/ symbols without including their headers.
#ifndef CPLINT_FIXTURE_INCLUDE_HYGIENE_BAD_H_
#define CPLINT_FIXTURE_INCLUDE_HYGIENE_BAD_H_

inline void Check(int x) { CP_CHECK(x > 0); }

class Guarded {
 private:
  Mutex mutex_;
  int value_ CP_GUARDED_BY(mutex_) = 0;
};

#endif  // CPLINT_FIXTURE_INCLUDE_HYGIENE_BAD_H_
