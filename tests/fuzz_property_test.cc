/// Property-based sweeps over randomly generated queries: the structural
/// theorems must hold on every shape, not just the catalog examples.
///
/// These tests carry the `fuzz` ctest label (their own cp_fuzz_tests
/// binary). COVERPACK_FUZZ_ROUNDS (default 1) repeats every property with
/// that many decorrelated seeds per test instance, so the sanitizer CI job
/// can sweep a much larger query space without changing test discovery.

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "lp/covers.h"
#include "lp/packing_provable.h"
#include "query/decomposition.h"
#include "query/join_tree.h"
#include "query/properties.h"
#include "relation/oracle.h"
#include "workload/generators.h"
#include "workload/random_queries.h"

namespace coverpack {
namespace {

/// Number of decorrelated repetitions per test instance, from
/// COVERPACK_FUZZ_ROUNDS (>= 1; unparsable or absent means 1).
uint64_t FuzzRounds() {
  static const uint64_t rounds = [] {
    const char* env = std::getenv("COVERPACK_FUZZ_ROUNDS");
    if (env == nullptr) return uint64_t{1};
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || parsed == 0) return uint64_t{1};
    return static_cast<uint64_t>(parsed);
  }();
  return rounds;
}

/// The base seed of this test instance plus FuzzRounds()-1 decorrelated
/// follow-ups (golden-ratio stride keeps the follow-up streams disjoint
/// from the base Range(1, 41) seeds).
std::vector<uint64_t> FuzzSeeds(uint64_t base) {
  std::vector<uint64_t> seeds(FuzzRounds());
  for (uint64_t i = 0; i < seeds.size(); ++i) {
    seeds[i] = base + i * 0x9E3779B97F4A7C15ull;
  }
  return seeds;
}

class RandomAcyclicTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomAcyclicTest, StructuralTheoremsHold) {
  for (uint64_t seed : FuzzSeeds(GetParam())) {
    Rng rng(seed);
    Hypergraph q = workload::RandomAcyclicQuery(&rng);

    // Construction guarantees alpha-acyclicity.
    ASSERT_TRUE(IsAlphaAcyclic(q)) << q.ToString();
    auto tree = JoinTree::Build(q);
    ASSERT_TRUE(tree.has_value()) << q.ToString();

    // Lemma A.2: integral optimal edge cover; rho* integral.
    Rational rho = RhoStar(q);
    EXPECT_TRUE(rho.is_integer()) << q.ToString();
    EXPECT_EQ(Rational(MinimumIntegralEdgeCover(q).size), rho) << q.ToString();

    // Theorem 3 / 5: the S(E) family peaks at rho*.
    EXPECT_EQ(MaxSFamilySetSize(q), static_cast<uint32_t>(rho.num())) << q.ToString();

    // Residuals stay acyclic (Lemma A.1).
    AttrSet all = q.AllAttrs();
    AttrId first = all.First();
    Hypergraph residual = q.Residual(AttrSet::Single(first));
    if (residual.num_edges() > 0) {
      EXPECT_TRUE(IsAlphaAcyclic(residual)) << q.ToString();
    }
  }
}

TEST_P(RandomAcyclicTest, MpcRunMatchesOracle) {
  for (uint64_t seed : FuzzSeeds(GetParam())) {
    Rng rng(seed * 7919 + 13);
    Hypergraph q = workload::RandomAcyclicQuery(&rng);
    Instance instance = workload::UniformInstance(q, 40, 6, &rng);

    Relation expected = GenericJoin(q, instance);
    for (RunPolicy policy : {RunPolicy::kConservative, RunPolicy::kOptimal}) {
      AcyclicRunOptions options;
      options.policy = policy;
      options.collect = true;
      options.p = 8;
      AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
      EXPECT_TRUE(run.results.SameContentAs(expected))
          << q.ToString() << " policy " << static_cast<int>(policy) << " got "
          << run.output_count << " want " << expected.size();
    }
  }
}

TEST_P(RandomAcyclicTest, CountingOracleAgrees) {
  for (uint64_t seed : FuzzSeeds(GetParam())) {
    Rng rng(seed * 104729 + 5);
    Hypergraph q = workload::RandomAcyclicQuery(&rng);
    Instance instance = workload::UniformInstance(q, 50, 5, &rng);
    auto tree = JoinTree::Build(q);
    ASSERT_TRUE(tree);
    EXPECT_EQ(AcyclicJoinCount(q, *tree, instance), GenericJoin(q, instance).size())
        << q.ToString();
  }
}

TEST_P(RandomAcyclicTest, SemiJoinReductionPreservesJoin) {
  for (uint64_t seed : FuzzSeeds(GetParam())) {
    Rng rng(seed * 31 + 3);
    Hypergraph q = workload::RandomAcyclicQuery(&rng);
    Instance instance = workload::UniformInstance(q, 50, 5, &rng);
    auto tree = JoinTree::Build(q);
    ASSERT_TRUE(tree);
    Instance reduced = SemiJoinReduce(q, *tree, instance);
    EXPECT_TRUE(GenericJoin(q, reduced).SameContentAs(GenericJoin(q, instance)))
        << q.ToString();
    for (uint32_t e = 0; e < q.num_edges(); ++e) {
      EXPECT_LE(reduced[e].size(), instance[e].size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAcyclicTest, ::testing::Range<uint64_t>(1, 41));

class RandomDegreeTwoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDegreeTwoTest, Lemma53Properties) {
  for (uint64_t seed : FuzzSeeds(GetParam())) {
    Rng rng(seed);
    uint32_t m = 3 + static_cast<uint32_t>(rng.Uniform(4));        // 3..6 relations
    uint32_t a = m + static_cast<uint32_t>(rng.Uniform(m));        // m..2m-1 attrs
    Hypergraph q = workload::RandomDegreeTwoQuery(&rng, m, a);
    ASSERT_TRUE(IsDegreeTwo(q));

    if (!q.IsReduced()) continue;  // Lemma 5.3 assumes reduced queries

    Rational rho = RhoStar(q);
    Rational tau = TauStar(q);
    // (1) tau* >= m/2 >= rho*; (2) tau* + rho* = m.
    EXPECT_GE(tau, Rational(m, 2)) << q.ToString();
    EXPECT_LE(rho, Rational(m, 2)) << q.ToString();
    EXPECT_EQ(tau + rho, Rational(m)) << q.ToString();

    // (3) half-integrality; (4) integrality without odd cycles.
    EdgeWeighting cover = FractionalEdgeCover(q);
    EdgeWeighting packing = FractionalEdgePacking(q);
    EXPECT_TRUE(IsHalfIntegral(cover.weights)) << q.ToString();
    EXPECT_TRUE(IsHalfIntegral(packing.weights)) << q.ToString();
    if (DegreeTwoHasNoOddCycle(q)) {
      EXPECT_TRUE(tau.is_integer()) << q.ToString();
      EXPECT_TRUE(rho.is_integer()) << q.ToString();
    }

    // Vertex-cover duality: total == tau*.
    EXPECT_EQ(FractionalVertexCover(q).total, tau) << q.ToString();
  }
}

TEST_P(RandomDegreeTwoTest, ProvabilityRequiresNoOddCycle) {
  for (uint64_t seed : FuzzSeeds(GetParam())) {
    Rng rng(seed * 7 + 1);
    uint32_t m = 3 + static_cast<uint32_t>(rng.Uniform(3));
    Hypergraph q = workload::RandomDegreeTwoQuery(&rng, m, m + 1);
    if (!q.IsReduced()) continue;
    PackingProvability result = AnalyzePackingProvable(q);
    if (result.provable) {
      EXPECT_TRUE(DegreeTwoHasNoOddCycle(q)) << q.ToString();
      // The witness's probabilistic edges must be pairwise vertex-disjoint.
      for (size_t i = 0; i < result.probabilistic.size(); ++i) {
        for (size_t j = i + 1; j < result.probabilistic.size(); ++j) {
          EXPECT_FALSE(q.edge(result.probabilistic[i])
                           .attrs.Intersects(q.edge(result.probabilistic[j]).attrs))
              << q.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDegreeTwoTest, ::testing::Range<uint64_t>(1, 41));

class RandomBergeAcyclicTest : public ::testing::TestWithParam<uint64_t> {};

/// Lemma A.3: for reduced berge-acyclic joins, tau* <= rho*. Random
/// acyclic queries with single shared attributes are berge-acyclic by
/// construction (the incidence graph stays a forest).
TEST_P(RandomBergeAcyclicTest, TauBoundedByRho) {
  for (uint64_t seed : FuzzSeeds(GetParam())) {
    Rng rng(seed * 6364136223846793005ull + 9);
    workload::RandomAcyclicOptions options;
    options.max_shared_attrs = 1;  // one shared attribute per tree edge
    Hypergraph q = workload::RandomAcyclicQuery(&rng, options);
    if (!IsBergeAcyclic(q)) continue;  // duplicate relations can collapse edges
    Hypergraph reduced = Reduce(q);
    if (reduced.num_edges() == 0) continue;
    EXPECT_LE(TauStar(reduced), RhoStar(reduced)) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBergeAcyclicTest, ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace coverpack
