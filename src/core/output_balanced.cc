#include "core/output_balanced.h"

#include <algorithm>
#include <limits>

#include "mpc/cluster.h"
#include "mpc/exchange.h"
#include "mpc/primitives.h"
#include "query/join_tree.h"
#include "relation/join_index.h"
#include "relation/operators.h"
#include "relation/oracle.h"
#include "util/arena.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace coverpack {

namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a > std::numeric_limits<uint64_t>::max() - b) return std::numeric_limits<uint64_t>::max();
  return a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) return std::numeric_limits<uint64_t>::max();
  return a * b;
}

}  // namespace

OutputBalancedResult ComputeOutputBalanced(const Hypergraph& query, const Instance& instance,
                                           uint32_t p, const OutputBalancedOptions& options) {
  instance.CheckAgainst(query);
  auto tree = JoinTree::Build(query);
  CP_CHECK(tree.has_value()) << "output-balanced Yannakakis requires an acyclic query";
  CP_CHECK_EQ(tree->Roots().size(), 1u)
      << "output-balanced baseline handles connected queries only";
  uint32_t root = tree->Roots()[0];

  Cluster cluster(p);
  uint32_t round = 0;

  // Phase 1: full semi-join reduction + bottom-up weights, all O(N/p)
  // primitives (charged as such).
  Instance reduced = SemiJoinReduce(query, *tree, instance);
  mpc::ChargeLinear(&cluster, instance.TotalSize(), round);
  mpc::ChargeLinear(&cluster, instance.TotalSize(), round + 1);
  round += 2;

  // weight[e][i] = number of extensions of row i into the subtree of e
  // (computed like AcyclicJoinCount, kept per-row for the root ranking).
  uint32_t m = query.num_edges();
  std::vector<std::vector<uint64_t>> weight(m);
  for (uint32_t e = 0; e < m; ++e) weight[e].assign(reduced[e].size(), 1);
  std::vector<uint32_t> order;  // bottom-up
  {
    std::vector<uint32_t> stack{root};
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (uint32_t c : tree->children(u)) stack.push_back(c);
    }
    std::reverse(order.begin(), order.end());
  }
  for (uint32_t node : order) {
    for (uint32_t child : tree->children(node)) {
      AttrSet shared = query.edge(node).attrs.Intersect(query.edge(child).attrs);
      const Relation& parent_rel = reduced[node];
      const Relation& child_rel = reduced[child];
      ArenaScope scope;
      Arena* arena = scope.arena();
      uint32_t* pc = arena->AllocateArray<uint32_t>(shared.size());
      uint32_t* cc = arena->AllocateArray<uint32_t>(shared.size());
      size_t nk = 0;
      for (AttrId a : shared.ToVector()) {
        pc[nk] = parent_rel.ColumnOf(a);
        cc[nk] = child_rel.ColumnOf(a);
        ++nk;
      }
      // Saturating per-exact-key aggregation of the child's weights (the
      // grouped-hash replacement for the per-edge unordered_map).
      KeyedWeightSums sums(arena);
      sums.Build(child_rel, cc, nk, weight[child].data());
      const Value* pbase = parent_rel.raw().data();
      const uint32_t pwidth = parent_rel.width();
      for (size_t i = 0; i < parent_rel.size(); ++i) {
        weight[node][i] = SatMul(weight[node][i], sums.Lookup(pbase + i * pwidth, pc));
      }
    }
  }
  mpc::ChargeLinear(&cluster, instance.TotalSize(), round);
  round += 1;

  OutputBalancedResult result;
  uint64_t out = 0;
  for (uint64_t w : weight[root]) out = SatAdd(out, w);
  result.output_count = out;
  if (out == 0) {
    result.rounds = round;
    result.max_load = cluster.tracker().MaxLoad();
    result.total_communication = cluster.tracker().TotalCommunication();
    result.load_tracker = cluster.tracker();
    if (options.collect) result.results = Relation(query.AllAttrs());
    return result;
  }

  // Phase 2: assign contiguous output-rank ranges of ~OUT/p to servers;
  // server k receives the root tuples of its range and, downward, every
  // child tuple joining them (one semi-join per tree edge). These receives
  // are charged for real — they are where the OUT/p term materializes.
  uint64_t per_server = CeilDiv(out, p);
  std::vector<size_t> slice_begin(p + 1, reduced[root].size());
  {
    uint64_t prefix = 0;
    uint32_t server = 0;
    slice_begin[0] = 0;
    for (size_t i = 0; i < reduced[root].size(); ++i) {
      while (server + 1 <= p - 1 &&
             prefix >= static_cast<uint64_t>(server + 1) * per_server) {
        slice_begin[++server] = i;
      }
      prefix = SatAdd(prefix, weight[root][i]);
    }
    while (server < p) slice_begin[++server] = reduced[root].size();
  }

  std::vector<uint32_t> top_down(order.rbegin(), order.rend());
  // Each server's slice is independent. Pool tasks fill per-server receive
  // lists and local join results; the tracker charges and result appends
  // happen serially in server order afterwards (LoadTracker::Add resizes and
  // must not run concurrently), keeping everything thread-count-invariant.
  struct ServerOutcome {
    std::vector<uint64_t> receives;  // in charge order: root slice, then tree edges
    Relation local;
  };
  std::vector<ServerOutcome> per_server_out(p);
  ThreadPool::Global().ParallelFor(0, p, 1, [&](size_t k) {
    size_t begin = slice_begin[k];
    size_t end = slice_begin[k + 1];
    if (begin >= end) return;
    ServerOutcome& out = per_server_out[k];
    // Root slice.
    Instance needed(query);
    Relation root_slice(reduced[root].attrs());
    // The slice is a contiguous row range: one bulk copy.
    root_slice.AppendRows(reduced[root].raw().data() + begin * reduced[root].width(),
                          end - begin);
    out.receives.push_back(root_slice.size());
    needed[root] = std::move(root_slice);
    // Downward: each child restricted to tuples joining the parent slice.
    for (uint32_t node : top_down) {
      for (uint32_t child : tree->children(node)) {
        needed[child] = SemiJoin(reduced[child], needed[node]);
        out.receives.push_back(needed[child].size());
      }
    }
    if (options.collect) out.local = GenericJoin(query, needed);
  });
  mpc::ExchangePlan plan(p);
  for (uint32_t k = 0; k < p; ++k) {
    ServerOutcome& out = per_server_out[k];
    for (uint64_t amount : out.receives) plan.PlanReceive(k, amount);
    if (options.collect && !out.receives.empty()) {
      if (result.results.attrs() != query.AllAttrs()) {
        result.results = Relation(query.AllAttrs());
      }
      result.results.AppendAll(out.local);
    }
  }
  mpc::Exchange::Execute(&cluster, round, plan, "output_slices");
  round += 1;

  if (options.collect) {
    // Boundary root tuples can be shared by adjacent servers; dedup.
    if (result.results.attrs() == query.AllAttrs()) result.results.Dedup();
    result.output_count = result.results.size();
  }
  result.rounds = round;
  result.max_load = cluster.tracker().MaxLoad();
  result.total_communication = cluster.tracker().TotalCommunication();
  result.load_tracker = cluster.tracker();
  return result;
}

}  // namespace coverpack
