/// \file yannakakis.h
/// \brief Parallel Yannakakis baseline for acyclic joins.
///
/// The classical algorithm (Section 1.3): a full semi-join reduction over
/// the join tree followed by bottom-up pairwise joins, each implemented as
/// a hash repartition on the shared attributes. Its load is O(N/p + OUT/p)
/// on friendly instances but degenerates toward OUT/p ~ N^rho*/p when the
/// output approaches the AGM bound — the gap to N / p^(1/rho*) that the
/// paper's algorithm closes.

#ifndef COVERPACK_CORE_YANNAKAKIS_H_
#define COVERPACK_CORE_YANNAKAKIS_H_

#include <cstdint>

#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {

/// Outcome of a parallel Yannakakis run.
struct YannakakisResult {
  Relation results;        ///< full join results (always materialized:
                           ///< intermediates drive the communication)
  uint64_t output_count = 0;
  uint64_t max_load = 0;
  uint32_t rounds = 0;
  uint64_t total_communication = 0;
};

/// Runs parallel Yannakakis on p servers. The query must be alpha-acyclic.
YannakakisResult ComputeYannakakis(const Hypergraph& query, const Instance& instance,
                                   uint32_t p);

}  // namespace coverpack

#endif  // COVERPACK_CORE_YANNAKAKIS_H_
