/// \file cost_model.h
/// \brief Heterogeneity-aware makespan model over a finished run's loads.
///
/// The MPC load L = max_{r,s} load(r,s) is the paper's cost measure under
/// identical servers. With heterogeneous speeds the natural generalization
/// charges each round by its *slowest finisher* and the run by the sum of
/// rounds (rounds are synchronization barriers):
///
///     makespan = Σ_r  max_s  load(r, s) / speed(r, s)
///
/// where speed comes either from a FaultPlan's straggler schedule or from
/// a standalone per-server speed vector (a ClusterProfile's fleet — the
/// cost model works without any fault machinery). With uniform speeds this
/// collapses to Σ_r MaxLoadOfRound(r) — the round-summed load the paper's
/// O(1)-round bounds control — so the model strictly extends the paper's
/// measure. Computed post-run from the LoadTracker; nothing here mutates
/// simulator state.

#ifndef COVERPACK_RESILIENCE_COST_MODEL_H_
#define COVERPACK_RESILIENCE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "mpc/load_tracker.h"
#include "resilience/fault_plan.h"

namespace coverpack {
namespace resilience {

/// Makespan of one run under one straggler schedule.
struct MakespanBreakdown {
  double makespan = 0.0;          ///< Σ_r max_s load(r,s)/speed(r,s)
  double uniform_makespan = 0.0;  ///< same with all speeds 1 (paper's measure)
  double slowdown = 1.0;          ///< makespan / uniform_makespan; 1 if no work
  uint32_t rounds = 0;            ///< rounds with nonzero load
  uint32_t straggler_bottlenecks = 0;  ///< rounds whose critical server straggled
  std::vector<double> round_makespans;  ///< per-round max_s load/speed
};

/// Evaluates the heterogeneous makespan of `tracker` under a standalone
/// per-server speed vector, constant across rounds (speeds.size() must be
/// >= tracker.num_servers(); all speeds > 0). A server counts as a
/// straggler bottleneck when its speed is below 1.
MakespanBreakdown SimulateMakespan(const LoadTracker& tracker,
                                   const std::vector<double>& speeds);

/// Evaluates the heterogeneous makespan of `tracker` under `plan`'s
/// straggler speeds. Thin wrapper over the same per-(round, server) speed
/// evaluation as the vector overload.
MakespanBreakdown SimulateMakespan(const LoadTracker& tracker, const FaultPlan& plan);

}  // namespace resilience
}  // namespace coverpack

#endif  // COVERPACK_RESILIENCE_COST_MODEL_H_
