#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/hash.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace coverpack {
namespace {

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 5), 1u);
}

TEST(MathUtilTest, SaturatingPow) {
  EXPECT_EQ(SaturatingPow(2, 10), 1024u);
  EXPECT_EQ(SaturatingPow(10, 0), 1u);
  EXPECT_EQ(SaturatingPow(0, 5), 0u);
  EXPECT_EQ(SaturatingPow(UINT64_C(1) << 32, 3), UINT64_MAX);  // saturates
}

TEST(MathUtilTest, IntegerRoots) {
  EXPECT_EQ(FloorNthRoot(64, 3), 4u);
  EXPECT_EQ(FloorNthRoot(63, 3), 3u);
  EXPECT_EQ(CeilNthRoot(64, 3), 4u);
  EXPECT_EQ(CeilNthRoot(65, 3), 5u);
  EXPECT_EQ(FloorNthRoot(1, 7), 1u);
  EXPECT_EQ(FloorNthRoot(0, 2), 0u);
  EXPECT_EQ(FloorNthRoot(1000000, 1), 1000000u);
  // Large values stay exact (no floating-point drift).
  uint64_t big = UINT64_C(999999999999999999);
  uint64_t root = FloorNthRoot(big, 2);
  EXPECT_LE(root * root, big);
  EXPECT_GT((root + 1) * (root + 1), big);
}

TEST(MathUtilTest, PowerLawFitRecoversSlope) {
  // y = 5 * x^(-1/3).
  std::vector<double> xs{4, 16, 64, 256};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(5.0 * std::pow(x, -1.0 / 3.0));
  PowerLawFit fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.slope, -1.0 / 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(MathUtilTest, PowerLawFitSkipsNonPositive) {
  std::vector<double> xs{1, 2, 0, 4};
  std::vector<double> ys{2, 4, 100, 8};
  PowerLawFit fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);  // the (0, 100) point is ignored
}

TEST(RandomTest, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(43);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 80000; ++i) ++counts[rng.Uniform(8)];
  for (int count : counts) {
    EXPECT_GT(count, 9200);
    EXPECT_LT(count, 10800);
  }
}

TEST(RandomTest, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

TEST(RandomTest, ZipfIsSkewed) {
  Rng rng(5);
  ZipfSampler sampler(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[sampler.Sample(&rng)];
  // Rank 0 dominates rank 50 heavily.
  EXPECT_GT(counts[0], 10 * std::max(1, counts[50]));
}

TEST(RandomTest, ZipfZeroSkewIsUniform) {
  Rng rng(5);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.Sample(&rng)];
  for (int count : counts) {
    EXPECT_GT(count, 4300);
    EXPECT_LT(count, 5700);
  }
}

TEST(RandomTest, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(HashTest, MixAndCombine) {
  EXPECT_NE(MixHash(1), MixHash(2));
  EXPECT_NE(HashCombine(0, 1), HashCombine(1, 0));
  EXPECT_EQ(HashVector({1, 2, 3}), HashVector({1, 2, 3}));
  EXPECT_NE(HashVector({1, 2, 3}), HashVector({3, 2, 1}));
  EXPECT_NE(HashVector({}), HashVector({0}));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("| name        |"), std::string::npos);
  EXPECT_NE(text.find("| longer-name | 22"), std::string::npos);
}

TEST(TablePrinterTest, PadsMissingCells) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only-one"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("only-one"), std::string::npos);
  // Three header cells always rendered.
  EXPECT_NE(text.find("| a"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendersRule) {
  TablePrinter table({"h"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string text = table.ToString();
  // 5 rules: top, under header, separator, bottom... count '+---+' lines.
  int rules = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace coverpack
