#include "util/audit.h"

#include <atomic>
#include <numeric>

namespace coverpack {
namespace audit {

namespace {

std::atomic<uint64_t> g_audit_checks{0};

}  // namespace

uint64_t SimulatorAuditor::checks_performed() {
  return g_audit_checks.load(std::memory_order_relaxed);
}

void SimulatorAuditor::ResetStats() { g_audit_checks.store(0, std::memory_order_relaxed); }

void SimulatorAuditor::NoteCheck() { g_audit_checks.fetch_add(1, std::memory_order_relaxed); }

void SimulatorAuditor::VerifyConservation(uint64_t before, uint64_t delta, uint64_t after,
                                          const char* context) {
  NoteCheck();
  CP_CHECK_EQ(after, before + delta)
      << "conservation violated in " << context << ": " << before << " + " << delta
      << " != " << after << " ";
}

void SimulatorAuditor::VerifyExchange(uint64_t sent, uint64_t received, const char* context) {
  NoteCheck();
  CP_CHECK_EQ(received, sent)
      << "exchange imbalance in " << context << ": sent " << sent << ", received " << received
      << " ";
}

void SimulatorAuditor::VerifyGridFits(const std::vector<uint32_t>& shares, uint64_t grid_size,
                                      uint64_t p, const char* context) {
  NoteCheck();
  uint64_t product = 1;
  for (uint32_t share : shares) {
    CP_CHECK_GE(share, 1u) << "degenerate grid dimension in " << context << " ";
    // The running product can only legitimately stay <= p; anything past
    // 2^40 has already blown the bound and saturates to avoid overflow.
    if (product > (uint64_t{1} << 40)) break;
    product *= share;
  }
  CP_CHECK_EQ(product, grid_size) << "grid size mismatch in " << context << " ";
  CP_CHECK_LE(grid_size, p) << "hypercube grid exceeds cluster in " << context << " ";
}

void SimulatorAuditor::VerifyNormalizedFraction(int64_t num, int64_t den, const char* context) {
  NoteCheck();
  CP_CHECK_GT(den, 0) << "denormalized rational (den <= 0) in " << context << " ";
  const uint64_t magnitude =
      num < 0 ? uint64_t{0} - static_cast<uint64_t>(num) : static_cast<uint64_t>(num);
  if (num == 0) {
    CP_CHECK_EQ(den, 1) << "zero rational not canonical in " << context << " ";
  } else {
    CP_CHECK_EQ(std::gcd(magnitude, static_cast<uint64_t>(den)), 1u)
        << "rational not in lowest terms in " << context << ": " << num << "/" << den << " ";
  }
}

}  // namespace audit
}  // namespace coverpack
