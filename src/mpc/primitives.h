/// \file primitives.h
/// \brief The deterministic MPC primitives of Section 2.
///
/// All of these are known to run in O(1) rounds with O(N/p) load on p
/// servers [13, 15]. Data *placement* operations (hash partition,
/// broadcast, scatter) charge the actual per-server receive counts;
/// aggregate statistics (reduce-by-key, parallel-packing) are computed on
/// the driver and charged their proven O(N/p)-per-round cost, because their
/// published implementations (sorting-network based) bound the load
/// irrespective of skew — simulating the sorting network itself would only
/// re-derive that constant. DESIGN.md discusses this substitution.

#ifndef COVERPACK_MPC_PRIMITIVES_H_
#define COVERPACK_MPC_PRIMITIVES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "relation/instance.h"

namespace coverpack {
namespace mpc {

/// Repartitions `input` by a hash of its `key` attributes; tuples with
/// equal keys land on the same server. Charges actual receives in `round`.
DistRelation HashPartition(Cluster* cluster, const DistRelation& input, AttrSet key,
                           uint32_t round);

/// Broadcasts `data` to every server of the cluster: charges |data| to each
/// server in `round`. Returns nothing — broadcast data is globally visible
/// to subsequent local computation by construction.
void ChargeBroadcast(Cluster* cluster, size_t data_size, uint32_t round);

/// Charges every server ceil(total_items / p) in `round` — the O(N/p) cost
/// of one round of a sort-based primitive over `total_items` items.
void ChargeLinear(Cluster* cluster, uint64_t total_items, uint32_t round);

/// Reduce-by-key over (value of `attr`, 1) pairs of `input`: the degree of
/// every value of `attr` (Section 2, "Reduce-by-key"). Charges two rounds
/// of O(N/p) starting at *round; advances *round past them.
std::unordered_map<Value, uint64_t> DegreeByValue(Cluster* cluster, const DistRelation& input,
                                                  AttrId attr, uint32_t* round);

/// MPC semi-join (Section 2): keeps the tuples of `left` that match
/// `right` on the shared attributes. Both sides are hash-partitioned on
/// the shared attributes (actual receives charged), then filtered locally.
/// Advances *round by one.
DistRelation SemiJoinMpc(Cluster* cluster, const DistRelation& left, const DistRelation& right,
                         uint32_t* round);

/// Parallel-packing (Section 2 / [15]): groups weights (each <= capacity)
/// into bins of total weight <= 2 * capacity such that all but one bin is
/// at least capacity full. Deterministic first-fit over descending weights.
/// Returns bin index per item. Charges one O(n/p) round; advances *round.
std::vector<uint32_t> ParallelPack(Cluster* cluster, const std::vector<uint64_t>& weights,
                                   uint64_t capacity, uint32_t* round);

}  // namespace mpc
}  // namespace coverpack

#endif  // COVERPACK_MPC_PRIMITIVES_H_
