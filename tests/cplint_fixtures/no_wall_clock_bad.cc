// cplint fixture: wall-clock reads that would leak into reports.
#include <chrono>
#include <ctime>

long Stamp() {
  auto now = std::chrono::system_clock::now();
  (void)now;
  return time(nullptr);
}
