/// \file em_reduction.cc
/// \brief Regenerates the Section 1.3/1.4 EM-model corollary: Theorem 5
/// plus the MPC->EM reduction of [19] yields an external-memory algorithm
/// with O(N^{rho*} / (M^{rho*-1} B)) I/Os for every alpha-acyclic join —
/// covering queries the earlier Berge-acyclic-only EM algorithm [14]
/// could not (e.g. the alpha-not-berge query).

#include <iostream>

#include "bench_util.h"
#include "core/em_reduction.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "query/catalog.h"
#include "query/properties.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunEmReduction(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  EmCostModel em;
  em.memory = 1 << 16;
  em.block = 1 << 8;
  uint64_t n = 1 << 20;
  report.AddParam("N", n);
  report.AddParam("M", em.memory);
  report.AddParam("B", em.block);
  std::cout << "N = " << n << ", M = " << em.memory << ", B = " << em.block << "\n\n";

  TablePrinter table({"query", "rho*", "berge-acyclic?", "p* (servers simulated)",
                      "I/O (reduction)", "closed form N^r/(M^(r-1)B)", "ratio"});
  bool all_ok = true;
  for (const auto& entry : catalog::StandardRoster()) {
    if (!IsAlphaAcyclic(entry.query)) continue;
    telemetry::MetricsRegistry::ScopedTimer timer(&report.metrics,
                                                  "reduction/" + entry.name);
    EmReductionResult result = ReduceMpcToEm(entry.query, n, em, /*rounds=*/1);
    double ratio = static_cast<double>(result.io_count) / result.closed_form;
    report.metrics.AddCounter("acyclic_queries_reduced", 1);
    report.metrics.SetGauge("io_ratio/" + entry.name, ratio);
    table.AddRow({entry.name, RhoStar(entry.query).ToString(),
                  IsBergeAcyclic(entry.query) ? "yes" : "no", std::to_string(result.p_star),
                  std::to_string(result.io_count), FormatDouble(result.closed_form, 0),
                  FormatDouble(ratio, 2)});
    if (ratio > 8.0 || ratio < 1.0 / 8.0) all_ok = false;
  }
  table.Print(std::cout);
  std::cout << "rows with berge-acyclic = no (e.g. alpha_not_berge, figure4) are exactly\n"
               "the acyclic joins the paper newly brings into this EM bound.\n";
  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
