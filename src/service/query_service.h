/// \file query_service.h
/// \brief A long-running query service over the simulated MPC cluster.
///
/// The service owns a catalog of registered (query, instance) pairs and a
/// structure-keyed PlanCache, and serves a stream of simulated client
/// requests (workload_sim.h). Each Run() is one discrete-event simulation:
///
///   admission  — an arrival event enqueues the request FIFO;
///   scheduling — a deterministic work-queue scheduler leases a disjoint
///                sub-cluster (LeaseManager) per admitted query, batching
///                every query dispatchable at the same tick;
///   planning   — serial, in admission order: PlanCache lookup by
///                (shape hash, p, stats signature), cold plans computed
///                and inserted (LP numbers, join-forest summary, Theorem 4
///                load threshold, server demand);
///   execution  — the batch's pipelines run concurrently on the existing
///                ThreadPool (each internally shard-parallel); acyclic
///                queries run Theorem 5's multi-round algorithm with the
///                cached threshold, cyclic queries the one-round
///                skew-aware fallback;
///   latency    — completion is scheduled on the *simulated* clock:
///                planning ticks (cold >> hit) plus execution ticks
///                derived from the run's per-round bottleneck loads. No
///                wall clock anywhere, so throughput and p99 are
///                bit-identical at any thread count.
///
/// The PlanCache persists across Run() calls on the same service: a second
/// identical Run() is the warm-cache experiment (100% hits, identical
/// loads, higher simulated throughput).

#ifndef COVERPACK_SERVICE_QUERY_SERVICE_H_
#define COVERPACK_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mpc/load_tracker.h"
#include "planner/plan_chooser.h"
#include "query/hypergraph.h"
#include "relation/instance.h"
#include "service/plan_cache.h"
#include "service/query_shape.h"
#include "service/scheduler.h"
#include "service/workload_sim.h"

namespace coverpack {
namespace service {

/// Simulated-latency model constants (ticks). Planning cost scales with
/// the psi* subset enumeration (exponential in attributes) so cold plans
/// on wider queries pay proportionally more; a cache hit pays a flat
/// near-zero lookup cost. Execution charges each round a fixed latency
/// plus its bottleneck load at kTuplesPerTick tuples per tick.
inline constexpr uint64_t kPlanHitTicks = 8;
inline constexpr uint64_t kPlanBaseTicks = 96;
inline constexpr uint64_t kLpSubsetTicks = 6;
inline constexpr uint64_t kTreeTicks = 12;
inline constexpr uint64_t kRoundLatencyTicks = 32;
inline constexpr uint64_t kTuplesPerTick = 64;

/// Which algorithm the planner is allowed to pick. kAuto defers to the
/// cost-based PlanChooser (src/planner); a forced mode overrides the
/// chooser whenever that algorithm is applicable to the query, falling
/// back to the chooser's pick when it is not (e.g. output-balanced forced
/// on a cyclic query).
enum class PlannerMode : uint8_t {
  kAuto = 0,
  kForceOneRound,
  kForceAcyclic,
  kForceOutputBalanced,
};

/// Stable name for reports / flags ("auto", "one_round", ...).
const char* PlannerModeName(PlannerMode mode);

/// Parses a --planner flag value; nullopt on unknown strings.
std::optional<PlannerMode> ParsePlannerMode(const std::string& text);

/// Service-wide configuration.
struct ServiceConfig {
  uint32_t total_servers = 256;     ///< the simulated p-server pool
  uint32_t servers_per_query = 64;  ///< sub-cluster lease size
  /// Per-server speeds (size total_servers, all > 0) for a heterogeneous
  /// pool. When non-empty, leases are granted in speed-capacity units:
  /// each query asks for `servers_per_query` units of aggregate speed and
  /// receives the first-fit minimal range covering them (LeaseManager::
  /// AcquireCapacity), so fast servers shrink the footprint. Empty keeps
  /// the historical count-based Acquire, and a vector of all 1.0 grants
  /// bit-identical leases to empty — the cluster_elastic experiment and
  /// the service tests verify the run digests match.
  std::vector<double> server_speeds;
  bool cache_enabled = true;
  size_t cache_capacity = 64;
  bool collect_results = false;  ///< pipelines run charge-only by default
  PlannerMode planner_mode = PlannerMode::kAuto;
  WorkloadConfig workload;
};

/// One registered catalog entry with its precomputed cache identity.
struct RegisteredQuery {
  /// Canonicalizes the shape and stats signature once, at registration.
  RegisteredQuery(std::string name_in, Hypergraph query_in, Instance instance_in);

  std::string name;
  Hypergraph query;
  Instance instance;
  ShapeCanon canon;
  planner::StatsSnapshot stats;  ///< per-attribute histograms + degrees
  /// Extended signature: the positional-size base signature folded with the
  /// planner's rename-invariant per-column stats digests, so chooser
  /// decisions are keyed by the stats they actually depend on.
  uint64_t stats_signature = 0;
  /// False when relation sizes differ inside a symmetric edge-color class;
  /// such entries bypass the cache (see query_shape.h).
  bool cacheable = true;
};

/// The load profile one execution produced — byte-comparable against an
/// equivalent standalone pipeline run.
struct LoadFingerprint {
  bool executed = false;
  uint64_t max_load = 0;
  uint32_t rounds = 0;
  uint64_t total_communication = 0;
  uint64_t servers_used = 0;
  uint64_t load_threshold = 0;  ///< 0 for one-round runs
  uint64_t output_count = 0;
  uint64_t tracker_hash = 0;  ///< hash of the full (round, server) load matrix

  bool operator==(const LoadFingerprint& other) const = default;
};

/// One served query, recorded at completion.
struct QueryOutcome {
  uint64_t query_id = 0;
  uint32_t client = 0;
  uint32_t catalog_index = 0;
  uint64_t arrival_ticks = 0;
  uint64_t start_ticks = 0;       ///< dispatch (lease granted)
  uint64_t completion_ticks = 0;
  bool cache_hit = false;
  uint64_t plan_ticks = 0;
  uint64_t exec_ticks = 0;
  uint64_t max_load = 0;
  uint32_t rounds = 0;
  ExecStrategy strategy = ExecStrategy::kOneRound;  ///< what actually ran
  uint64_t planner_est_load = 0;  ///< chooser's estimate for this plan
};

/// Everything one Run() measured. All tick-denominated — no wall clock.
struct ServiceRunStats {
  uint64_t arrivals = 0;
  uint64_t completed = 0;
  uint64_t sim_end_ticks = 0;       ///< tick of the last completion
  double throughput_qpk = 0.0;      ///< completed queries per 1000 ticks
  uint64_t latency_p50_ticks = 0;
  uint64_t latency_p99_ticks = 0;
  uint64_t latency_max_ticks = 0;
  double latency_mean_ticks = 0.0;
  uint64_t queue_wait_p99_ticks = 0;
  uint64_t max_queue_depth = 0;
  uint32_t peak_servers_leased = 0;
  uint64_t plan_bypasses = 0;   ///< uncacheable entries planned fresh
  uint64_t load_mismatches = 0; ///< re-executions whose loads diverged (must be 0)
  PlanCacheStats cache;         ///< per-run delta of the cache counters
  planner::DecisionLedger planner;  ///< chooser decision tallies + est error
  std::vector<QueryOutcome> outcomes;              ///< completion order
  std::vector<LoadFingerprint> entry_fingerprints; ///< per catalog index
  std::vector<uint64_t> latencies_sorted;

  /// A deterministic digest of every field above (including each outcome
  /// and fingerprint) — equal digests mean bit-identical runs. Tests use
  /// it to compare 1-thread vs N-thread and clean vs fault-injected runs.
  std::string Digest() const;
};

/// The service facade.
class QueryService {
 public:
  explicit QueryService(ServiceConfig config);

  /// Registers a catalog entry; returns its catalog index. The shape is
  /// canonicalized once here, off the serving path.
  uint32_t RegisterQuery(std::string name, Hypergraph query, Instance instance);

  size_t catalog_size() const { return catalog_.size(); }
  const RegisteredQuery& entry(uint32_t catalog_index) const {
    return catalog_[catalog_index];
  }

  /// Serves one full client workload to completion and returns its stats.
  /// The plan cache carries over between calls; counters in the returned
  /// stats are per-run deltas.
  ServiceRunStats Run();

  const PlanCache& cache() const { return cache_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Dispatched;

  ServiceConfig config_;
  std::vector<RegisteredQuery> catalog_;
  PlanCache cache_;
};

/// Hash of a full (round, server) load matrix — the `tracker_hash` field
/// of LoadFingerprint. Exposed so tests and the bench experiment can build
/// fingerprints from raw standalone ComputeAcyclicJoin /
/// ComputeOneRoundSkewAware runs and compare them byte-for-byte against
/// what the service recorded.
uint64_t FingerprintTrackerHash(const LoadTracker& tracker);

/// Computes a fresh plan for (query, instance, p) — the cold path the
/// cache short-circuits. Builds the planner's StatsSnapshot, runs the
/// cost-based PlanChooser (or honors a forced mode when that algorithm is
/// applicable), and bundles the LP numbers + strategy + load threshold
/// into the cacheable artifact. Exposed for tests and for the bench
/// experiment's standalone-equivalence checks.
CachedPlan ComputePlan(const Hypergraph& query, const Instance& instance, uint32_t p,
                       const ShapeCanon& canon,
                       PlannerMode mode = PlannerMode::kAuto);

/// Runs the pipeline an admitted query executes (strategy from `plan`) and
/// returns its load fingerprint plus simulated execution ticks. Exposed so
/// the bench experiment can prove service loads byte-identical to
/// standalone runs.
struct ExecutionResult {
  LoadFingerprint fingerprint;
  uint64_t exec_ticks = 0;
};
ExecutionResult ExecuteRegistered(const Hypergraph& query, const Instance& instance,
                                  const CachedPlan& plan, uint32_t p, bool collect);

}  // namespace service
}  // namespace coverpack

#endif  // COVERPACK_SERVICE_QUERY_SERVICE_H_
