/// \file instance.h
/// \brief A database instance of a join query: one Relation per hyperedge.

#ifndef COVERPACK_RELATION_INSTANCE_H_
#define COVERPACK_RELATION_INSTANCE_H_

#include <vector>

#include "query/hypergraph.h"
#include "relation/relation.h"
#include "util/logging.h"

namespace coverpack {

/// The input database for a query: relations indexed by EdgeId, each with a
/// schema equal to the corresponding hyperedge.
class Instance {
 public:
  Instance() = default;

  /// Creates empty relations matching the query's edge schemas.
  explicit Instance(const Hypergraph& query) {
    relations_.reserve(query.num_edges());
    for (const auto& edge : query.edges()) relations_.emplace_back(edge.attrs);
  }

  size_t num_relations() const { return relations_.size(); }
  Relation& operator[](EdgeId e) { return relations_[e]; }
  const Relation& operator[](EdgeId e) const { return relations_[e]; }

  /// Maximum relation size (the paper's N).
  size_t MaxRelationSize() const {
    size_t n = 0;
    for (const auto& r : relations_) n = std::max(n, r.size());
    return n;
  }

  /// Total number of input tuples.
  size_t TotalSize() const {
    size_t n = 0;
    for (const auto& r : relations_) n += r.size();
    return n;
  }

  /// Checks schemas against the query; aborts on mismatch (programming bug).
  void CheckAgainst(const Hypergraph& query) const {
    CP_CHECK_EQ(relations_.size(), query.num_edges());
    for (size_t e = 0; e < relations_.size(); ++e) {
      CP_CHECK(relations_[e].attrs() == query.edge(static_cast<EdgeId>(e)).attrs)
          << "schema mismatch on edge " << query.edge(static_cast<EdgeId>(e)).name;
    }
  }

 private:
  std::vector<Relation> relations_;
};

}  // namespace coverpack

#endif  // COVERPACK_RELATION_INSTANCE_H_
