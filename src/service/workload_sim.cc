#include "service/workload_sim.h"

#include "util/logging.h"

namespace coverpack {
namespace service {

const char* ArrivalModeName(ArrivalMode mode) {
  switch (mode) {
    case ArrivalMode::kOpenLoop:
      return "open";
    case ArrivalMode::kClosedLoop:
      return "closed";
    case ArrivalMode::kBursty:
      return "bursty";
  }
  return "open";
}

std::optional<ArrivalMode> ParseArrivalMode(const std::string& name) {
  if (name == "open") return ArrivalMode::kOpenLoop;
  if (name == "closed") return ArrivalMode::kClosedLoop;
  if (name == "bursty") return ArrivalMode::kBursty;
  return std::nullopt;
}

ClientSim::ClientSim(const WorkloadConfig& config, uint32_t client_id, size_t catalog_size)
    : config_(config),
      rng_(SplitSeed(config.seed, client_id)),
      zipf_(catalog_size, config.zipf_skew) {
  CP_CHECK(catalog_size > 0) << "clients need a nonempty query catalog";
  CP_CHECK(config.queries_per_client > 0);
}

ClientSim::Draw ClientSim::NextArrival() {
  CP_CHECK(!Done());
  Draw draw;
  // Integer delays in [1, 2*mean]: mean-matched without floating point, so
  // tick arithmetic stays exact and bit-stable everywhere.
  switch (config_.mode) {
    case ArrivalMode::kOpenLoop:
    case ArrivalMode::kClosedLoop:
      draw.delay_ticks = 1 + rng_.Uniform(2 * config_.mean_interarrival_ticks);
      break;
    case ArrivalMode::kBursty:
      if (issued_ % config_.burst_length == 0) {
        draw.delay_ticks = 1 + rng_.Uniform(2 * config_.burst_gap_ticks);
      } else {
        draw.delay_ticks = 1;
      }
      break;
  }
  draw.catalog_index = static_cast<uint32_t>(zipf_.Sample(&rng_));
  ++issued_;
  return draw;
}

}  // namespace service
}  // namespace coverpack
