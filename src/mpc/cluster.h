/// \file cluster.h
/// \brief A (virtual) cluster of p MPC servers with its load tracker.
///
/// Recursive algorithms allocate child Clusters for their subqueries and
/// merge the children's trackers back into their own (at a server/round
/// offset), so load accounting composes exactly like the paper's analysis:
/// the subqueries of a decomposition run in parallel on disjoint server
/// groups, in lock-stepped rounds.

#ifndef COVERPACK_MPC_CLUSTER_H_
#define COVERPACK_MPC_CLUSTER_H_

#include <cstdint>

#include "mpc/load_tracker.h"

namespace coverpack {

/// p servers plus the tracker recording what each of them received.
class Cluster {
 public:
  explicit Cluster(uint32_t p) : p_(p), tracker_(p) {}

  uint32_t p() const { return p_; }
  LoadTracker& tracker() { return tracker_; }
  const LoadTracker& tracker() const { return tracker_; }

 private:
  uint32_t p_;
  LoadTracker tracker_;
};

}  // namespace coverpack

#endif  // COVERPACK_MPC_CLUSTER_H_
