/// \file metrics.h
/// \brief MetricsRegistry: counters, gauges, fixed-bucket histograms, and
/// scoped wall-clock timers for experiment instrumentation.
///
/// The registry is the mutable half of a RunReport: an experiment creates
/// one (usually through its RunReport), bumps counters and observes
/// histogram samples while it runs, and the driver serializes the whole
/// registry into BENCH_results.json at the end. Design constraints:
///
///  * deterministic serialization — metrics are stored in sorted maps so
///    the JSON output is byte-stable across runs of the same binary;
///  * pool-synchronized mutation — the simulator's hot loops run on the
///    ThreadPool (DESIGN.md §4), so registry mutations are serialized by
///    an internal mutex. Audit builds (COVERPACK_AUDIT=ON) still reject
///    *unsanctioned* cross-thread mutation: a mutation must come either
///    from the thread that first touched the registry or from inside a
///    pool task (ThreadPool::InPoolTask()) — a foreign thread bypassing
///    the pool aborts the audit;
///  * invariant-audited histograms — bucket upper bounds are strictly
///    increasing (always checked) and, in audit builds, every Observe
///    re-verifies that bucket counts sum to the observation count.
///    Note: the Histogram& returned by GetHistogram is NOT internally
///    synchronized — observe into it from one thread, or from shard-private
///    histograms merged after the parallel region.

#ifndef COVERPACK_TELEMETRY_METRICS_H_
#define COVERPACK_TELEMETRY_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/json_writer.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coverpack {
namespace telemetry {

/// A fixed-bucket histogram: `bounds` are strictly increasing inclusive
/// upper bounds, plus an implicit overflow bucket, so counts().size() ==
/// bounds().size() + 1. A sample v lands in the first bucket with
/// v <= bounds[i], or in the overflow bucket.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t total_count() const { return total_count_; }
  double sum() const { return sum_; }

  /// Verifies the structural invariants (bucket count, strictly increasing
  /// bounds, counts summing to total_count). Always compiled; aborts via
  /// CP_CHECK on violation. Audit builds call this after every Observe.
  void VerifyInvariants(const char* context) const;

  JsonValue ToJson() const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 entries
  uint64_t total_count_ = 0;
  double sum_ = 0.0;
};

/// Aggregated wall-clock samples for one named timer.
struct TimerStat {
  uint64_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};

/// Named counters, gauges, histograms, and timers for one experiment run.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  // Copy/move transfer the data but not the mutex or the audit's mutator
  // claim — the destination starts unclaimed, owned by whichever thread
  // mutates it next.
  MetricsRegistry(const MetricsRegistry& other);
  MetricsRegistry& operator=(const MetricsRegistry& other);
  MetricsRegistry(MetricsRegistry&& other) noexcept;
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept;

  /// Adds `delta` to counter `name` (creating it at zero). Counters are
  /// monotone by construction: delta is unsigned.
  void AddCounter(const std::string& name, uint64_t delta = 1);
  uint64_t CounterValue(const std::string& name) const;

  void SetGauge(const std::string& name, double value);
  double GaugeValue(const std::string& name) const;

  /// Returns the histogram `name`, creating it with `bounds` on first use.
  /// Later calls must pass identical bounds.
  Histogram& GetHistogram(const std::string& name, const std::vector<double>& bounds);
  const Histogram* FindHistogram(const std::string& name) const;

  /// Records one wall-clock sample for timer `name`.
  void RecordTimeMs(const std::string& name, double elapsed_ms);
  const TimerStat* FindTimer(const std::string& name) const;

  bool empty() const {
    MutexLock lock(mutex_);
    return counters_.empty() && gauges_.empty() && histograms_.empty() && timers_.empty();
  }

  JsonValue ToJson() const;

  /// RAII wall-clock timer: records the elapsed time into `registry`
  /// under `name` on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(MetricsRegistry* registry, std::string name);
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer();

    /// Milliseconds elapsed so far (without stopping the timer).
    double ElapsedMs() const;

   private:
    MetricsRegistry* registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  /// Audit hook, called with mutex_ held: the mutation must come from the
  /// first mutator thread or from a sanctioned pool task; any other thread
  /// aborts. Compiles to a no-op outside COVERPACK_AUDIT builds.
  void NoteMutation() CP_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, uint64_t> counters_ CP_GUARDED_BY(mutex_);
  std::map<std::string, double> gauges_ CP_GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ CP_GUARDED_BY(mutex_);
  std::map<std::string, TimerStat> timers_ CP_GUARDED_BY(mutex_);
  uint64_t mutator_thread_hash_ CP_GUARDED_BY(mutex_) = 0;  // 0 = no mutation seen yet
};

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_METRICS_H_
