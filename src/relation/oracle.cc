#include "relation/oracle.h"

#include <algorithm>
#include <limits>

#include "relation/join_index.h"
#include "relation/operators.h"
#include "util/arena.h"
#include "util/logging.h"

namespace coverpack {

namespace {

/// Backtracking state for GenericJoin over sorted row-id slices.
///
/// Each edge keeps one arena array of row ids; the live set at any depth is
/// a contiguous slice of it. At depth d (attribute A), every holder's slice
/// is sorted by its A-column, candidate values are walked off the smallest
/// holder's sorted slice in ascending order, and each holder's refinement
/// is the equal-value run located by a monotone cursor — O(L log L) per
/// level instead of the old O(candidates * L) rescans. Rows in a slice
/// agree on every already-bound attribute of their edge, so deeper sorts
/// permute only within equal keys and never break an ancestor's order;
/// backtracking restores slice bounds only. Candidates ascend, so the
/// output rows appear in the same lexicographic order as the historical
/// per-candidate-rescan implementation.
struct SearchState {
  struct Holder {
    EdgeId edge;
    uint32_t col;          // column of the level's attribute in this edge
    const Value* base;     // flat row storage of the edge's relation
    uint32_t width;
  };
  struct Level {
    std::vector<Holder> holders;
  };
  struct Slice {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  std::vector<Level> levels;
  std::vector<uint32_t*> rows;  // per edge: arena row-id array
  std::vector<Slice> slice;     // per edge: live range of rows[e]
  std::vector<Value> assignment;
  Relation* output = nullptr;
};

void Recurse(SearchState* state, size_t depth) {
  if (depth == state->levels.size()) {
    state->output->AppendRow(std::span<const Value>(state->assignment));
    return;
  }
  const SearchState::Level& level = state->levels[depth];
  const size_t num_holders = level.holders.size();

  // Sort each holder's live slice by the level attribute's column.
  size_t lead = 0;
  for (size_t h = 0; h < num_holders; ++h) {
    const SearchState::Holder& holder = level.holders[h];
    SearchState::Slice s = state->slice[holder.edge];
    uint32_t* begin = state->rows[holder.edge] + s.begin;
    uint32_t* end = state->rows[holder.edge] + s.end;
    const Value* base = holder.base;
    const uint32_t width = holder.width;
    const uint32_t col = holder.col;
    std::sort(begin, end, [base, width, col](uint32_t a, uint32_t b) {
      return base[size_t{a} * width + col] < base[size_t{b} * width + col];
    });
    if (s.end - s.begin < state->slice[level.holders[lead].edge].end -
                              state->slice[level.holders[lead].edge].begin) {
      lead = h;
    }
  }

  // Walk candidate values off the lead holder's sorted slice; every
  // holder's cursor advances monotonically (candidates ascend).
  constexpr size_t kMaxEdges = 64;
  CP_DCHECK(num_holders <= kMaxEdges);
  uint32_t cursor[kMaxEdges];
  SearchState::Slice refined[kMaxEdges];
  SearchState::Slice saved[kMaxEdges];
  for (size_t h = 0; h < num_holders; ++h) {
    cursor[h] = state->slice[level.holders[h].edge].begin;
  }
  const SearchState::Holder& lead_holder = level.holders[lead];
  const SearchState::Slice lead_slice = state->slice[lead_holder.edge];
  uint32_t pos = lead_slice.begin;
  while (pos < lead_slice.end) {
    const uint32_t* lead_rows = state->rows[lead_holder.edge];
    Value value = lead_holder.base[size_t{lead_rows[pos]} * lead_holder.width +
                                   lead_holder.col];
    bool viable = true;
    for (size_t h = 0; h < num_holders; ++h) {
      const SearchState::Holder& holder = level.holders[h];
      const SearchState::Slice s = state->slice[holder.edge];
      const uint32_t* rows = state->rows[holder.edge];
      const Value* base = holder.base;
      const uint32_t width = holder.width;
      const uint32_t col = holder.col;
      uint32_t cur = cursor[h];
      while (cur < s.end && base[size_t{rows[cur]} * width + col] < value) ++cur;
      uint32_t run = cur;
      while (run < s.end && base[size_t{rows[run]} * width + col] == value) ++run;
      refined[h] = SearchState::Slice{cur, run};
      cursor[h] = run;
      if (cur == run) viable = false;
    }
    if (viable) {
      for (size_t h = 0; h < num_holders; ++h) {
        EdgeId e = level.holders[h].edge;
        saved[h] = state->slice[e];
        state->slice[e] = refined[h];
      }
      state->assignment[depth] = value;
      Recurse(state, depth + 1);
      for (size_t h = 0; h < num_holders; ++h) {
        state->slice[level.holders[h].edge] = saved[h];
      }
    }
    pos = cursor[lead];
  }
}

/// Saturating multiply for counts.
uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) return std::numeric_limits<uint64_t>::max();
  return a * b;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a > std::numeric_limits<uint64_t>::max() - b) return std::numeric_limits<uint64_t>::max();
  return a + b;
}

}  // namespace

Relation GenericJoin(const Hypergraph& query, const Instance& instance) {
  instance.CheckAgainst(query);
  Relation output(query.AllAttrs());
  const uint32_t m = query.num_edges();
  // An empty relation means an empty join.
  for (uint32_t e = 0; e < m; ++e) {
    if (instance[e].empty()) return output;
  }

  ArenaScope scope;
  SearchState state;
  std::vector<AttrId> attr_order = query.AllAttrs().ToVector();  // ascending
  state.levels.resize(attr_order.size());
  for (size_t d = 0; d < attr_order.size(); ++d) {
    AttrId attr = attr_order[d];
    EdgeSet holders = query.EdgesContaining(attr);
    CP_CHECK(!holders.empty());
    for (EdgeId e : holders.ToVector()) {
      const Relation& r = instance[e];
      state.levels[d].holders.push_back(SearchState::Holder{
          e, r.ColumnOf(attr), r.raw().data(), r.width()});
    }
  }
  state.rows.resize(m);
  state.slice.resize(m);
  for (uint32_t e = 0; e < m; ++e) {
    const size_t n = instance[e].size();
    CP_CHECK(n <= 0xFFFFFFFFu);
    state.rows[e] = scope.arena()->AllocateArray<uint32_t>(n);
    for (size_t i = 0; i < n; ++i) state.rows[e][i] = static_cast<uint32_t>(i);
    state.slice[e] = SearchState::Slice{0, static_cast<uint32_t>(n)};
  }
  state.assignment.resize(attr_order.size());
  state.output = &output;
  Recurse(&state, 0);
  return output;
}

uint64_t AcyclicJoinCount(const Hypergraph& query, const JoinTree& tree,
                          const Instance& instance) {
  instance.CheckAgainst(query);
  uint32_t m = query.num_edges();
  CP_CHECK_EQ(tree.num_nodes(), m);

  // Bottom-up order: children before parents.
  std::vector<uint32_t> order;
  order.reserve(m);
  for (uint32_t root : tree.Roots()) {
    std::vector<uint32_t> stack{root};
    size_t begin = order.size();
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (uint32_t c : tree.children(u)) stack.push_back(c);
    }
    std::reverse(order.begin() + static_cast<long>(begin), order.end());
  }

  // weight[e][i]: number of join extensions of row i of relation e into the
  // subtree rooted at e.
  std::vector<std::vector<uint64_t>> weight(m);
  for (uint32_t e = 0; e < m; ++e) weight[e].assign(instance[e].size(), 1);

  for (uint32_t node : order) {
    for (uint32_t child : tree.children(node)) {
      AttrSet shared = query.edge(node).attrs.Intersect(query.edge(child).attrs);
      const Relation& parent_rel = instance[node];
      const Relation& child_rel = instance[child];
      ArenaScope scope;
      Arena* arena = scope.arena();
      uint32_t* parent_cols = arena->AllocateArray<uint32_t>(shared.size());
      uint32_t* child_cols = arena->AllocateArray<uint32_t>(shared.size());
      size_t k = 0;
      for (AttrId a : shared.ToVector()) {
        parent_cols[k] = parent_rel.ColumnOf(a);
        child_cols[k] = child_rel.ColumnOf(a);
        ++k;
      }
      // Aggregate the child's weights per exact shared key, then fold the
      // per-key factor into each parent row.
      KeyedWeightSums sums(arena);
      sums.Build(child_rel, child_cols, k, weight[child].data());
      const Value* pbase = parent_rel.raw().data();
      const uint32_t pwidth = parent_rel.width();
      for (size_t i = 0; i < parent_rel.size(); ++i) {
        uint64_t factor = sums.Lookup(pbase + i * pwidth, parent_cols);
        weight[node][i] = SatMul(weight[node][i], factor);
      }
    }
  }

  uint64_t total = 1;
  for (uint32_t root : tree.Roots()) {
    uint64_t component = 0;
    for (uint64_t w : weight[root]) component = SatAdd(component, w);
    total = SatMul(total, component);
  }
  return total;
}

uint64_t JoinCount(const Hypergraph& query, const Instance& instance) {
  if (auto tree = JoinTree::Build(query)) {
    return AcyclicJoinCount(query, *tree, instance);
  }
  return GenericJoin(query, instance).size();
}

uint64_t SubjoinSize(const Hypergraph& query, const JoinTree& tree, const Instance& instance,
                     EdgeSet s) {
  if (s.empty()) return 1;
  uint64_t total = 1;
  for (EdgeSet component : tree.TreeComponents(s)) {
    Hypergraph sub = query.InducedByEdges(component);
    Instance sub_instance(sub);
    std::vector<EdgeId> members = component.ToVector();
    for (size_t i = 0; i < members.size(); ++i) {
      sub_instance[static_cast<EdgeId>(i)] = instance[members[i]];
    }
    total = SatMul(total, JoinCount(sub, sub_instance));
  }
  return total;
}

Instance SemiJoinReduce(const Hypergraph& query, const JoinTree& tree,
                        const Instance& instance) {
  Instance reduced = instance;
  uint32_t m = query.num_edges();

  // Top-down order per component; reversed for the upward pass.
  std::vector<uint32_t> top_down;
  for (uint32_t root : tree.Roots()) {
    std::vector<uint32_t> stack{root};
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      top_down.push_back(u);
      for (uint32_t c : tree.children(u)) stack.push_back(c);
    }
  }
  CP_CHECK_EQ(top_down.size(), m);

  // Upward: parent := parent semijoin child. SemiJoin's build side carries
  // a bloom filter, so each pass is a filtered probe scan (see §4h).
  for (auto it = top_down.rbegin(); it != top_down.rend(); ++it) {
    uint32_t node = *it;
    uint32_t parent = tree.parent(node);
    if (parent != JoinTree::kNoParent) {
      reduced[parent] = SemiJoin(reduced[parent], reduced[node]);
    }
  }
  // Downward: child := child semijoin parent.
  for (uint32_t node : top_down) {
    for (uint32_t child : tree.children(node)) {
      reduced[child] = SemiJoin(reduced[child], reduced[node]);
    }
  }
  return reduced;
}

}  // namespace coverpack
