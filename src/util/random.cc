#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace coverpack {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitSeed(uint64_t seed, uint64_t stream) {
  // The (stream+1)-th output of SplitMix64(seed): SplitMix64 pre-increments
  // its state by the golden-ratio gamma, so jumping the state ahead by
  // `stream` gammas and drawing once lands exactly on that output.
  uint64_t state = seed + stream * 0x9E3779B97F4A7C15ull;
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  CP_CHECK_GT(bound, 0u) << "Uniform bound must be positive";
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  CP_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double prob) {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return NextDouble() < prob;
}

ZipfSampler::ZipfSampler(uint64_t n, double skew) {
  CP_CHECK_GE(n, 1u);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (auto& value : cdf_) value /= total;
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace coverpack
