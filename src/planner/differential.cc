#include "planner/differential.h"

#include <algorithm>
#include <sstream>

#include "core/acyclic_join.h"
#include "core/one_round.h"
#include "core/output_balanced.h"
#include "query/catalog.h"
#include "query/join_tree.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/random.h"
#include "workload/generators.h"
#include "workload/random_queries.h"

namespace coverpack {
namespace planner {

namespace {

/// The planner's simulated clock over a measured load matrix — the same
/// charge the service's latency model applies.
uint64_t TrackerTicks(const LoadTracker& tracker) {
  uint64_t ticks = 0;
  for (uint32_t r = 0; r < tracker.num_rounds(); ++r) {
    ticks += kPlannerRoundLatencyTicks +
             CeilDiv(tracker.MaxLoadOfRound(r), kPlannerTuplesPerTick);
  }
  return ticks;
}

}  // namespace

bool DifferentialOutcome::ChooserWithin(double slack) const {
  const uint64_t input_floor = CeilDiv(stats.total_rows, std::max<uint64_t>(1, p));
  const uint64_t yardstick = std::max(best_actual_load, input_floor);
  return static_cast<double>(chosen_actual_load) <=
         slack * static_cast<double>(yardstick);
}

std::string DifferentialOutcome::Repro(const std::string& case_name,
                                       const Hypergraph& query, uint32_t p) const {
  std::ostringstream out;
  out << "=== differential repro: " << case_name << " (p=" << p << ") ===\n"
      << "query: " << query.ToString() << "\n"
      << stats.ToString(query) << decision.table.ToString()
      << "decision: " << decision.Digest() << "\n"
      << "rationale: " << decision.rationale << "\n";
  for (const AlgorithmRun& run : runs) {
    out << "actual " << AlgorithmName(run.algorithm) << ": load=" << run.actual_load
        << " rounds=" << run.rounds << " ticks=" << run.actual_ticks
        << " out=" << run.output_count << "\n";
  }
  out << "chosen actual load=" << chosen_actual_load << " vs best=" << best_actual_load
      << " (" << AlgorithmName(best_algorithm) << ")\n";
  return out.str();
}

DifferentialOutcome EvaluateCase(const Hypergraph& query, const Instance& instance,
                                 uint32_t p) {
  DifferentialOutcome outcome;
  outcome.stats = BuildStatsSnapshot(query, instance);
  outcome.p = p;
  outcome.decision = PlanChooser::Choose(query, p, outcome.stats);

  const auto tree = JoinTree::Build(query);
  {
    OneRoundOptions options;
    options.collect = false;
    const OneRoundResult run = ComputeOneRoundSkewAware(query, instance, p, options);
    outcome.runs.push_back({Algorithm::kOneRound, run.max_load, run.rounds,
                            TrackerTicks(run.load_tracker), run.output_count});
  }
  if (tree.has_value()) {
    AcyclicRunOptions options;
    options.policy = RunPolicy::kOptimal;
    options.collect = false;
    options.p = p;
    const AcyclicRunResult run = ComputeAcyclicJoin(query, instance, options);
    outcome.runs.push_back({Algorithm::kAcyclicMultiRound, run.max_load, run.rounds,
                            TrackerTicks(run.load_tracker), run.output_count});
  }
  if (tree.has_value() && tree->Roots().size() == 1) {
    OutputBalancedOptions options;
    options.collect = false;
    const OutputBalancedResult run = ComputeOutputBalanced(query, instance, p, options);
    outcome.runs.push_back({Algorithm::kOutputBalanced, run.max_load, run.rounds,
                            TrackerTicks(run.load_tracker), run.output_count});
  }

  bool found_best = false;
  bool found_chosen = false;
  for (const AlgorithmRun& run : outcome.runs) {
    if (!found_best || run.actual_load < outcome.best_actual_load) {
      found_best = true;
      outcome.best_actual_load = run.actual_load;
      outcome.best_algorithm = run.algorithm;
    }
    if (run.algorithm == outcome.decision.algorithm) {
      found_chosen = true;
      outcome.chosen_actual_load = run.actual_load;
      outcome.chosen_actual_ticks = run.actual_ticks;
    }
  }
  CP_CHECK(found_chosen) << "chooser picked an algorithm the menu did not run";
  return outcome;
}

std::vector<DifferentialCase> BuildDifferentialCorpus(uint64_t seed,
                                                      uint32_t random_cases) {
  std::vector<DifferentialCase> corpus;
  const auto add = [&](const std::string& name, Hypergraph query, Instance instance) {
    corpus.push_back({name, std::move(query), std::move(instance)});
  };

  // Fixed block: the named shapes the rest of the repo exercises, under
  // all three distribution regimes.
  {
    Rng rng(SplitSeed(seed, 0));
    add("path3_matching", catalog::Path(3),
        workload::MatchingInstance(catalog::Path(3), 1024));
    add("path4_uniform", catalog::Path(4),
        workload::UniformInstance(catalog::Path(4), 1024, 4096, &rng));
    add("star3_zipf", catalog::Star(3),
        workload::ZipfInstance(catalog::Star(3), 1024, 1024, 1.1, &rng));
    add("stardual3_matching", catalog::StarDual(3),
        workload::MatchingInstance(catalog::StarDual(3), 1024));
    add("semijoin_matching", catalog::SemiJoinExample(),
        workload::MatchingInstance(catalog::SemiJoinExample(), 1024));
    add("alpha_not_berge_uniform", catalog::AlphaNotBerge(),
        workload::UniformInstance(catalog::AlphaNotBerge(), 512, 2048, &rng));
    add("triangle_uniform", catalog::Triangle(),
        workload::UniformInstance(catalog::Triangle(), 512, 512, &rng));
    add("cycle4_matching", catalog::Cycle(4),
        workload::MatchingInstance(catalog::Cycle(4), 1024));
    add("box_uniform", catalog::BoxJoin(),
        workload::UniformInstance(catalog::BoxJoin(), 512, 1024, &rng));
    add("lw3_uniform", catalog::LoomisWhitney(3),
        workload::UniformInstance(catalog::LoomisWhitney(3), 512, 512, &rng));
  }

  // Random block: generator kind cycles with the index; every case gets
  // its own split seed, so dropping or adding cases never shifts streams.
  for (uint32_t i = 0; i < random_cases; ++i) {
    Rng rng(SplitSeed(seed, 1 + i));
    const uint64_t n = 256u << rng.Uniform(3);  // 256, 512, or 1024
    switch (i % 4) {
      case 0: {
        Hypergraph query = workload::RandomAcyclicQuery(&rng);
        Instance instance = workload::MatchingInstance(query, n);
        add("rand_acyclic_matching_" + std::to_string(i), std::move(query),
            std::move(instance));
        break;
      }
      case 1: {
        Hypergraph query = workload::RandomAcyclicQuery(&rng);
        Instance instance = workload::UniformInstance(query, n, 4 * n, &rng);
        add("rand_acyclic_uniform_" + std::to_string(i), std::move(query),
            std::move(instance));
        break;
      }
      case 2: {
        Hypergraph query = workload::RandomAcyclicQuery(&rng);
        Instance instance = workload::ZipfInstance(query, n, n, 1.1, &rng);
        add("rand_acyclic_zipf_" + std::to_string(i), std::move(query),
            std::move(instance));
        break;
      }
      default: {
        const uint32_t edges = 3 + static_cast<uint32_t>(rng.Uniform(3));
        Hypergraph query = workload::RandomDegreeTwoQuery(&rng, edges, edges + 1);
        Instance instance = workload::UniformInstance(query, n, 2 * n, &rng);
        add("rand_degree2_uniform_" + std::to_string(i), std::move(query),
            std::move(instance));
        break;
      }
    }
  }
  return corpus;
}

}  // namespace planner
}  // namespace coverpack
