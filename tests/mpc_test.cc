#include <gtest/gtest.h>

#include "mpc/cluster.h"
#include "mpc/dist_relation.h"
#include "mpc/primitives.h"
#include "query/catalog.h"
#include "relation/operators.h"
#include "relation/oracle.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

TEST(LoadTrackerTest, AddAndMax) {
  LoadTracker tracker(4);
  tracker.Add(0, 1, 10);
  tracker.Add(0, 1, 5);
  tracker.Add(2, 3, 7);
  EXPECT_EQ(tracker.num_rounds(), 3u);
  EXPECT_EQ(tracker.At(0, 1), 15u);
  EXPECT_EQ(tracker.At(1, 0), 0u);
  EXPECT_EQ(tracker.MaxLoad(), 15u);
  EXPECT_EQ(tracker.MaxLoadOfRound(2), 7u);
  EXPECT_EQ(tracker.TotalCommunication(), 22u);
}

TEST(LoadTrackerTest, MergeChildAtOffsets) {
  LoadTracker parent(8);
  LoadTracker child(2);
  child.Add(0, 0, 3);
  child.Add(1, 1, 4);
  parent.Merge(child, /*server_offset=*/4, /*round_offset=*/2);
  EXPECT_EQ(parent.At(2, 4), 3u);
  EXPECT_EQ(parent.At(3, 5), 4u);
  EXPECT_EQ(parent.MaxLoad(), 4u);
}

TEST(LoadTrackerTest, MergeMappedReplicatesAcrossGrid) {
  // 2x3 grid: component with 2 logical servers mapped by s % 2.
  LoadTracker parent(6);
  LoadTracker child(2);
  child.Add(0, 0, 10);
  child.Add(0, 1, 20);
  parent.MergeMapped(child, 0, [](uint32_t s) { return s % 2; });
  EXPECT_EQ(parent.At(0, 0), 10u);
  EXPECT_EQ(parent.At(0, 1), 20u);
  EXPECT_EQ(parent.At(0, 4), 10u);
  EXPECT_EQ(parent.At(0, 5), 20u);
  EXPECT_EQ(parent.TotalCommunication(), 90u);
}

TEST(DistRelationTest, ScatterChargesReceives) {
  Cluster cluster(4);
  Relation data(AttrSet::Single(0));
  for (Value v = 0; v < 10; ++v) data.AppendRow({v});
  DistRelation dist = DistRelation::Scatter(&cluster, data, 0);
  EXPECT_EQ(dist.TotalSize(), 10u);
  EXPECT_EQ(cluster.tracker().TotalCommunication(), 10u);
  EXPECT_EQ(cluster.tracker().MaxLoad(), 3u);  // ceil(10/4)
  EXPECT_TRUE(dist.Gather().SameContentAs(data));
}

TEST(DistRelationTest, InitialPlacementIsFree) {
  Cluster cluster(4);
  Relation data(AttrSet::Single(0));
  for (Value v = 0; v < 10; ++v) data.AppendRow({v});
  DistRelation dist = DistRelation::InitialPlacement(cluster, data);
  EXPECT_EQ(dist.TotalSize(), 10u);
  EXPECT_EQ(cluster.tracker().TotalCommunication(), 0u);
}

TEST(PrimitivesTest, HashPartitionColocatesKeys) {
  Cluster cluster(8);
  Hypergraph q = catalog::Line3();
  Rng rng(7);
  Relation data = workload::UniformRandom(q.edge(0).attrs, 200, 20, &rng);
  DistRelation input = DistRelation::InitialPlacement(cluster, data);
  AttrId b = *q.FindAttribute("B");
  DistRelation output = mpc::HashPartition(&cluster, input, AttrSet::Single(b), 0);
  EXPECT_EQ(output.TotalSize(), 200u);
  // Every value of B lives on exactly one shard.
  std::unordered_map<Value, uint32_t> home;
  for (uint32_t s = 0; s < output.num_shards(); ++s) {
    const Relation& shard = output.shard(s);
    if (shard.empty()) continue;
    uint32_t col = shard.ColumnOf(b);
    for (size_t i = 0; i < shard.size(); ++i) {
      Value v = shard.row(i)[col];
      auto [it, inserted] = home.try_emplace(v, s);
      EXPECT_EQ(it->second, s) << "value " << v << " split across shards";
    }
  }
  EXPECT_EQ(cluster.tracker().TotalCommunication(), 200u);
}

TEST(PrimitivesTest, DegreeByValueMatchesSequentialHistogram) {
  Cluster cluster(4);
  Hypergraph q = catalog::Line3();
  Rng rng(13);
  Relation data = workload::Zipf(q.edge(0).attrs, 150, 30, 1.0, &rng);
  DistRelation input = DistRelation::InitialPlacement(cluster, data);
  AttrId a = *q.FindAttribute("A");
  uint32_t round = 0;
  auto degrees = mpc::DegreeByValue(&cluster, input, a, &round);
  EXPECT_EQ(round, 2u);
  auto expected = DegreeHistogram(data, a);
  ASSERT_EQ(degrees.size(), expected.size());
  for (const auto& [value, count] : expected) {
    EXPECT_EQ(degrees[value], count);
  }
}

TEST(PrimitivesTest, SemiJoinMpcMatchesSequential) {
  Cluster cluster(8);
  Hypergraph q = catalog::Line3();
  Rng rng(99);
  Relation left = workload::UniformRandom(q.edge(0).attrs, 100, 15, &rng);
  Relation right = workload::UniformRandom(q.edge(1).attrs, 100, 15, &rng);
  DistRelation dl = DistRelation::InitialPlacement(cluster, left);
  DistRelation dr = DistRelation::InitialPlacement(cluster, right);
  uint32_t round = 0;
  DistRelation result = mpc::SemiJoinMpc(&cluster, dl, dr, &round);
  EXPECT_EQ(round, 1u);
  EXPECT_TRUE(result.Gather().SameContentAs(SemiJoin(left, right)));
}

TEST(PrimitivesTest, ParallelPackRespectsGuarantees) {
  Cluster cluster(4);
  std::vector<uint64_t> weights{5, 3, 8, 2, 2, 7, 1, 9, 4, 6};
  uint64_t capacity = 10;
  uint32_t round = 0;
  std::vector<uint32_t> bin_of = mpc::ParallelPack(&cluster, weights, capacity, &round);
  ASSERT_EQ(bin_of.size(), weights.size());
  std::unordered_map<uint32_t, uint64_t> bin_load;
  for (size_t i = 0; i < weights.size(); ++i) bin_load[bin_of[i]] += weights[i];
  uint32_t under_full = 0;
  for (const auto& [bin, load] : bin_load) {
    EXPECT_LE(load, 2 * capacity);
    if (load < capacity) ++under_full;
  }
  EXPECT_LE(under_full, 1u);  // all but one bin at least `capacity` full
}

TEST(PrimitivesTest, ChargeBroadcastHitsEveryServer) {
  Cluster cluster(5);
  mpc::ChargeBroadcast(&cluster, 42, 3);
  for (uint32_t s = 0; s < 5; ++s) EXPECT_EQ(cluster.tracker().At(3, s), 42u);
}

}  // namespace
}  // namespace coverpack
