// cplint fixture: the sanctioned migration plan — no randomness at all.
// Surplus tails stream to deficit slots in ascending (source, destination)
// order, a pure function of the shard sizes, so the rebalancing exchange
// is bit-identical on every replay.
#include <cstdint>
#include <utility>
#include <vector>

std::vector<std::pair<uint32_t, uint32_t>> PlanMoves(
    const std::vector<uint32_t>& surplus_slots,
    const std::vector<uint32_t>& deficit_slots) {
  std::vector<std::pair<uint32_t, uint32_t>> moves;
  for (uint32_t src : surplus_slots) {
    for (uint32_t dst : deficit_slots) moves.emplace_back(src, dst);
  }
  return moves;
}
