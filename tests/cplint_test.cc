/// \file cplint_test.cc
/// \brief Proves every cplint rule live: fires on the bad fixture, stays
/// quiet on the good one, and honors `// cplint: allow(<rule>)`.

#include "cplint.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace coverpack {
namespace cplint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(CPLINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream stream(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(stream.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

std::set<std::string> RuleNames(const std::vector<Finding>& findings) {
  std::set<std::string> names;
  for (const auto& finding : findings) names.insert(finding.rule);
  return names;
}

struct RuleFixture {
  std::string rule;
  std::string stem;       // fixture file stem
  std::string extension;  // ".cc" or ".h"
};

const std::vector<RuleFixture>& Fixtures() {
  static const std::vector<RuleFixture> kFixtures = {
      {"charge-choke-point", "charge_choke_point", ".cc"},
      {"no-wall-clock", "no_wall_clock", ".cc"},
      {"no-unseeded-rng", "no_unseeded_rng", ".cc"},
      {"no-unordered-iteration", "no_unordered_iteration", ".cc"},
      {"audit-pairing", "audit_pairing", ".cc"},
      {"include-hygiene", "include_hygiene", ".h"},
  };
  return kFixtures;
}

TEST(CplintCatalog, HasAtLeastSixRulesAndFixturesCoverThem) {
  EXPECT_GE(Rules().size(), 6u);
  for (const auto& fixture : Fixtures()) {
    EXPECT_TRUE(IsRule(fixture.rule)) << fixture.rule;
  }
  EXPECT_FALSE(IsRule("no-such-rule"));
}

TEST(CplintRules, BadFixturesFire) {
  for (const auto& fixture : Fixtures()) {
    const auto findings = LintFile(FixturePath(fixture.stem + "_bad" + fixture.extension), {});
    EXPECT_TRUE(RuleNames(findings).count(fixture.rule) > 0)
        << fixture.rule << " did not fire on its bad fixture";
    for (const auto& finding : findings) {
      EXPECT_GT(finding.line, 0u);
      EXPECT_FALSE(finding.message.empty());
    }
  }
}

TEST(CplintRules, GoodFixturesStayQuiet) {
  for (const auto& fixture : Fixtures()) {
    const auto findings =
        LintFile(FixturePath(fixture.stem + "_good" + fixture.extension), {});
    EXPECT_TRUE(findings.empty())
        << fixture.rule << " false-positive: " << findings[0].rule << " at line "
        << findings[0].line << ": " << findings[0].message;
  }
}

TEST(CplintRules, AllowDirectiveSuppresses) {
  for (const auto& fixture : Fixtures()) {
    const auto findings =
        LintFile(FixturePath(fixture.stem + "_allowed" + fixture.extension), {});
    EXPECT_TRUE(findings.empty())
        << fixture.rule << " ignored its allow(): " << findings[0].rule << " at line "
        << findings[0].line;
  }
}

TEST(CplintRules, RuleFilterSelectsSubset) {
  const std::string bad = ReadFixture("charge_choke_point_bad.cc");
  // Filtered to an unrelated rule, the charge leak must not be reported.
  EXPECT_TRUE(LintContent("src/foo.cc", bad, {"no-wall-clock"}).empty());
  // Filtered to the matching rule, it must be.
  EXPECT_FALSE(LintContent("src/foo.cc", bad, {"charge-choke-point"}).empty());
}

TEST(CplintRules, ChargeChokePointExemptsExchange) {
  const std::string bad = ReadFixture("charge_choke_point_bad.cc");
  EXPECT_FALSE(LintContent("src/other.cc", bad, {"charge-choke-point"}).empty());
  EXPECT_TRUE(LintContent("src/mpc/exchange.cc", bad, {"charge-choke-point"}).empty());
}

TEST(CplintRules, WallClockExemptsTelemetryTimerInternals) {
  const std::string bad = ReadFixture("no_wall_clock_bad.cc");
  EXPECT_FALSE(LintContent("src/other.cc", bad, {"no-wall-clock"}).empty());
  EXPECT_TRUE(LintContent("src/telemetry/metrics.cc", bad, {"no-wall-clock"}).empty());
}

TEST(CplintRules, IncludeHygieneExemptsDefiningHeader) {
  // util/mutex.h itself mentions Mutex without including util/mutex.h.
  const std::string content = "class Mutex {};\n";
  EXPECT_FALSE(LintContent("src/util/other.h", content, {"include-hygiene"}).empty());
  EXPECT_TRUE(LintContent("src/util/mutex.h", content, {"include-hygiene"}).empty());
}

TEST(CplintRules, DeterminismRulesGuardServicePaths) {
  // The query service's simulated clock and replayable client streams depend
  // on these two rules holding inside src/service/ specifically: prove the
  // service-flavored bad fixtures fire under service paths (no exemption
  // applies there, unlike telemetry/metrics.cc) and the good ones stay quiet.
  const struct {
    std::string rule;
    std::string stem;
    std::string service_path;
  } kCases[] = {
      {"no-wall-clock", "service_wall_clock", "src/service/query_service.cc"},
      {"no-unseeded-rng", "service_unseeded_rng", "src/service/workload_sim.cc"},
  };
  for (const auto& c : kCases) {
    const std::string bad = ReadFixture(c.stem + "_bad.cc");
    const std::string good = ReadFixture(c.stem + "_good.cc");
    EXPECT_TRUE(RuleNames(LintContent(c.service_path, bad, {c.rule})).count(c.rule) > 0)
        << c.rule << " did not fire on " << c.service_path;
    EXPECT_TRUE(LintContent(c.service_path, good, {}).empty())
        << c.rule << " false-positive on " << c.service_path;
    // Unfiltered, the full rule catalog must also surface the violation.
    EXPECT_TRUE(RuleNames(LintContent(c.service_path, bad, {})).count(c.rule) > 0);
  }
}

TEST(CplintRules, DeterminismRulesGuardPlannerPaths) {
  // Plan decisions must be pure functions of (query, p, stats): byte-diffed
  // across thread counts by the determinism suite and across fault
  // schedules by the chaos suite. That only holds if src/planner/ stays
  // free of wall clocks, ambient rng, and unordered iteration — prove each
  // rule live on a planner-flavored violation and quiet on the sanctioned
  // counterpart.
  const struct {
    std::string rule;
    std::string stem;
    std::string planner_path;
  } kCases[] = {
      {"no-wall-clock", "planner_wall_clock", "src/planner/cost_model.cc"},
      {"no-unseeded-rng", "planner_unseeded_rng", "src/planner/stats.cc"},
      {"no-unordered-iteration", "planner_unordered_iteration",
       "src/planner/join_order_dp.cc"},
  };
  for (const auto& c : kCases) {
    const std::string bad = ReadFixture(c.stem + "_bad.cc");
    const std::string good = ReadFixture(c.stem + "_good.cc");
    EXPECT_TRUE(RuleNames(LintContent(c.planner_path, bad, {c.rule})).count(c.rule) > 0)
        << c.rule << " did not fire on " << c.planner_path;
    EXPECT_TRUE(LintContent(c.planner_path, good, {}).empty())
        << c.rule << " false-positive on " << c.planner_path;
    // Unfiltered, the full rule catalog must also surface the violation.
    EXPECT_TRUE(RuleNames(LintContent(c.planner_path, bad, {})).count(c.rule) > 0);
  }
}

TEST(CplintRules, DeterminismRulesGuardClusterPaths) {
  // The cluster subsystem's whole contract is content-keyed determinism:
  // speeds are pure functions of (spec, slot), epochs of (base_p,
  // schedule), migration plans of the shard sizes. Prove all three
  // determinism rules live on cluster-flavored violations under
  // src/cluster/ paths (no exemption applies there) and quiet on the
  // sanctioned counterparts.
  const struct {
    std::string rule;
    std::string stem;
    std::string cluster_path;
  } kCases[] = {
      {"no-wall-clock", "cluster_wall_clock", "src/cluster/cluster_profile.cc"},
      {"no-unseeded-rng", "cluster_unseeded_rng", "src/cluster/elastic.cc"},
      {"no-unordered-iteration", "cluster_unordered_iteration",
       "src/cluster/routing.cc"},
  };
  for (const auto& c : kCases) {
    const std::string bad = ReadFixture(c.stem + "_bad.cc");
    const std::string good = ReadFixture(c.stem + "_good.cc");
    EXPECT_TRUE(RuleNames(LintContent(c.cluster_path, bad, {c.rule})).count(c.rule) > 0)
        << c.rule << " did not fire on " << c.cluster_path;
    EXPECT_TRUE(LintContent(c.cluster_path, good, {}).empty())
        << c.rule << " false-positive on " << c.cluster_path;
    // Unfiltered, the full rule catalog must also surface the violation.
    EXPECT_TRUE(RuleNames(LintContent(c.cluster_path, bad, {})).count(c.rule) > 0);
  }
}

TEST(CplintRules, NoPerRowAppendGuardsHotPaths) {
  // The columnar substrate's hot-path contract: src/mpc/ and src/query/
  // append in bulk only (AppendRows/AppendUninitialized). The rule is
  // path-scoped, so the fixtures are linted under explicit hot-path names
  // and proven inert everywhere else (relation/ operators legitimately
  // build rows one at a time in cold constructors and tests).
  const std::string bad = ReadFixture("no_per_row_append_bad.cc");
  const std::string good = ReadFixture("no_per_row_append_good.cc");
  const std::string allowed = ReadFixture("no_per_row_append_allowed.cc");
  for (const char* hot : {"src/mpc/primitives.cc", "src/query/hypergraph.cc"}) {
    EXPECT_TRUE(RuleNames(LintContent(hot, bad, {"no-per-row-append"}))
                    .count("no-per-row-append") > 0)
        << "no-per-row-append did not fire on " << hot;
    // Unfiltered, the full rule catalog must also surface the violation.
    EXPECT_TRUE(
        RuleNames(LintContent(hot, bad, {})).count("no-per-row-append") > 0);
    EXPECT_TRUE(LintContent(hot, good, {"no-per-row-append"}).empty())
        << "bulk appends false-positive on " << hot;
    EXPECT_TRUE(LintContent(hot, allowed, {"no-per-row-append"}).empty())
        << "allow() directive ignored on " << hot;
  }
  // AppendRows must never be mistaken for the per-row call.
  EXPECT_TRUE(LintContent("src/mpc/exchange.cc",
                          "void F(Relation* r, const Value* v, size_t n) {\n"
                          "  r->AppendRows(v, n);\n"
                          "}\n",
                          {"no-per-row-append"})
                  .empty());
  // Outside the hot paths the rule stays quiet.
  EXPECT_TRUE(LintContent("src/relation/operators.cc", bad, {"no-per-row-append"}).empty());
  EXPECT_TRUE(LintContent("tests/relation_test.cc", bad, {"no-per-row-append"}).empty());
}

TEST(CplintStrip, DropsCommentsAndLiteralContents) {
  const std::string content =
      "int a = 1;  // trailing time( comment\n"
      "/* block rand() */ int b = 2;\n"
      "const char* s = \"system_clock\";\n"
      "const char* r = R\"(random_device)\";\n";
  const auto lines = StripForAnalysis(content);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].find("time("), std::string::npos);
  EXPECT_EQ(lines[1].find("rand()"), std::string::npos);
  EXPECT_NE(lines[1].find("int b = 2;"), std::string::npos);
  EXPECT_EQ(lines[2].find("system_clock"), std::string::npos);
  EXPECT_EQ(lines[3].find("random_device"), std::string::npos);
}

TEST(CplintStrip, CommentsCannotSuppressViaStrippedText) {
  // The directive parser reads raw lines; stripped text drops comments, so a
  // rule-token inside a comment never fires and an allow() still works.
  const std::string content =
      "// mentions tracker.Add( in prose only\n"
      "int x = 0;\n";
  EXPECT_TRUE(LintContent("src/foo.cc", content, {"charge-choke-point"}).empty());
}

TEST(CplintIo, UnreadableFileReportsIoError) {
  const auto findings = LintFile(FixturePath("does_not_exist.cc"), {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

TEST(CplintCollect, FindsFixtureSourcesSorted) {
  const auto sources = CollectSources(CPLINT_FIXTURE_DIR);
  EXPECT_GE(sources.size(), 22u);
  for (size_t i = 1; i < sources.size(); ++i) EXPECT_LE(sources[i - 1], sources[i]);
}

}  // namespace
}  // namespace cplint
}  // namespace coverpack
