// cplint fixture: the service's simulated tick clock. All latencies derive
// from event timestamps on a uint64 tick axis, never from the host clock, so
// throughput and p99 are pure functions of (config, seed).
#include <cstdint>

struct SimClock {
  uint64_t now_ticks = 0;
  void AdvanceTo(uint64_t t) {
    if (t > now_ticks) now_ticks = t;
  }
};

uint64_t QueryLatency(const SimClock& clock, uint64_t admitted_at_ticks) {
  return clock.now_ticks - admitted_at_ticks;
}
