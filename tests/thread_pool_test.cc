#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace coverpack {
namespace {

TEST(ThreadPoolTest, NumShardsDependsOnlyOnRangeAndGrain) {
  EXPECT_EQ(ThreadPool::NumShards(0, 0, 16), 0u);
  EXPECT_EQ(ThreadPool::NumShards(0, 1, 16), 1u);
  EXPECT_EQ(ThreadPool::NumShards(0, 16, 16), 1u);
  EXPECT_EQ(ThreadPool::NumShards(0, 17, 16), 2u);
  EXPECT_EQ(ThreadPool::NumShards(5, 37, 8), 4u);
  // Zero grain is clamped to 1 instead of dividing by zero.
  EXPECT_EQ(ThreadPool::NumShards(0, 3, 0), 3u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<uint32_t>> hits(1000);
    pool.ParallelFor(0, hits.size(), 7, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, ShardDecompositionIsThreadCountInvariant) {
  constexpr size_t kBegin = 3, kEnd = 1003, kGrain = 64;
  const size_t shards = ThreadPool::NumShards(kBegin, kEnd, kGrain);
  for (unsigned threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    std::vector<std::pair<size_t, size_t>> ranges(shards, {0, 0});
    pool.ParallelForShards(kBegin, kEnd, kGrain,
                           [&](size_t b, size_t e, size_t shard) { ranges[shard] = {b, e}; });
    // Shards tile [begin, end) contiguously in index order, independent of
    // which thread ran them.
    size_t cursor = kBegin;
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(ranges[s].first, cursor);
      EXPECT_EQ(ranges[s].second, s + 1 == shards ? kEnd : cursor + kGrain);
      cursor = ranges[s].second;
    }
    EXPECT_EQ(cursor, kEnd);
  }
}

TEST(ThreadPoolTest, PerShardBuffersMergedInOrderMatchSerial) {
  // The call-site pattern the simulator relies on: shard-private buffers
  // concatenated in ascending shard order must equal the serial result.
  constexpr size_t kN = 5000, kGrain = 129;
  std::vector<uint64_t> serial;
  for (size_t i = 0; i < kN; ++i) serial.push_back(i * i);

  for (unsigned threads : {2u, 4u, 16u}) {
    ThreadPool pool(threads);
    const size_t shards = ThreadPool::NumShards(0, kN, kGrain);
    std::vector<std::vector<uint64_t>> buffers(shards);
    pool.ParallelForShards(0, kN, kGrain, [&](size_t b, size_t e, size_t shard) {
      for (size_t i = b; i < e; ++i) buffers[shard].push_back(i * i);
    });
    std::vector<uint64_t> merged;
    for (const auto& buffer : buffers) merged.insert(merged.end(), buffer.begin(), buffer.end());
    EXPECT_EQ(merged, serial) << "at " << threads << " threads";
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToSubmitter) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100, 1,
                                [](size_t i) {
                                  if (i == 37) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a poisoned batch and keeps working.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ExceptionPropagatesOnInlineSerialPath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 10, 1,
                                [](size_t i) {
                                  if (i == 3) throw std::logic_error("serial boom");
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<uint64_t>> outer_sums(8);
    pool.ParallelFor(0, outer_sums.size(), 1, [&](size_t outer) {
      pool.ParallelFor(0, 32, 4, [&](size_t inner) { outer_sums[outer].fetch_add(inner); });
    });
    for (size_t outer = 0; outer < outer_sums.size(); ++outer) {
      EXPECT_EQ(outer_sums[outer].load(), 496u) << "at " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, DeepRecursiveSplittingCompletes) {
  // The recursive Cluster subquery shape: each level fans out through the
  // pool again. With one worker this deadlocks unless submitters drain
  // their own batches.
  ThreadPool pool(2);
  std::function<uint64_t(size_t, size_t)> recursive_sum = [&](size_t b, size_t e) -> uint64_t {
    if (e - b <= 4) {
      uint64_t sum = 0;
      for (size_t i = b; i < e; ++i) sum += i;
      return sum;
    }
    size_t half = (e - b) / 2;
    std::atomic<uint64_t> total{0};
    pool.ParallelForShards(b, e, half, [&](size_t sb, size_t se, size_t) {
      total.fetch_add(recursive_sum(sb, se));
    });
    return total.load();
  };
  EXPECT_EQ(recursive_sum(0, 1024), 1024u * 1023u / 2);
}

TEST(ThreadPoolTest, ExceptionEscapesNestedParallelFor) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 4, 1,
                                [&](size_t outer) {
                                  pool.ParallelFor(0, 4, 1, [&](size_t inner) {
                                    if (outer == 2 && inner == 1) {
                                      throw std::runtime_error("nested boom");
                                    }
                                  });
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, OversubscribedPoolHandlesManySmallShards) {
  // More threads than cores, far more shards than threads.
  ThreadPool pool(16);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 100000, 3, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100000ull * 99999ull / 2);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<uint32_t> calls{0};
  pool.ParallelFor(5, 5, 1, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelForShards(7, 7, 16, [&](size_t, size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, TeardownWithPendingSubmitsJoinsCleanly) {
  std::atomic<uint32_t> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // Destructor runs with most closures still queued: claimed ones finish,
    // unclaimed ones are discarded, and nothing hangs or crashes.
  }
  EXPECT_LE(ran.load(), 64u);
}

TEST(ThreadPoolTest, SubmitRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  bool ran = false;
  pool.Submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, InPoolTaskMarksPoolExecutionOnly) {
  EXPECT_FALSE(ThreadPool::InPoolTask());
  ThreadPool pool(2);
  std::atomic<uint32_t> inside{0};
  pool.ParallelFor(0, 16, 1, [&](size_t) {
    if (ThreadPool::InPoolTask()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 16u);
  EXPECT_FALSE(ThreadPool::InPoolTask());
}

TEST(ThreadPoolTest, GlobalPoolResizesOnDemand) {
  const unsigned before = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3u);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3u);
  std::atomic<uint64_t> sum{0};
  ThreadPool::Global().ParallelFor(0, 100, 8, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
  ThreadPool::SetGlobalThreads(before);
  EXPECT_EQ(ThreadPool::GlobalThreads(), before);
}

}  // namespace
}  // namespace coverpack
