#include "mpc/dist_relation.h"

namespace coverpack {

DistRelation DistRelation::Scatter(Cluster* cluster, const Relation& data, uint32_t round) {
  DistRelation dist(data.attrs(), cluster->p());
  uint32_t p = cluster->p();
  for (size_t i = 0; i < data.size(); ++i) {
    uint32_t target = static_cast<uint32_t>(i % p);
    dist.shards_[target].AppendRow(data.row(i));
  }
  for (uint32_t s = 0; s < p; ++s) {
    if (dist.shards_[s].size() > 0) {
      cluster->tracker().Add(round, s, dist.shards_[s].size());
    }
  }
  return dist;
}

DistRelation DistRelation::InitialPlacement(const Cluster& cluster, const Relation& data) {
  DistRelation dist(data.attrs(), cluster.p());
  uint32_t p = cluster.p();
  for (size_t i = 0; i < data.size(); ++i) {
    dist.shards_[i % p].AppendRow(data.row(i));
  }
  return dist;
}

}  // namespace coverpack
