#include "mpc/exchange.h"

#include <atomic>
#include <map>
#include <string>

#include "util/audit.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coverpack {
namespace mpc {

namespace {

/// The process-global interposer (resilience fault injection). Installed
/// and uninstalled only at quiescent points, so relaxed ordering suffices.
std::atomic<ExchangeInterposer*> g_interposer{nullptr};

}  // namespace

ExchangeInterposer* ExchangeInterposer::Install(ExchangeInterposer* interposer) {
  return g_interposer.exchange(interposer, std::memory_order_acq_rel);
}

ExchangeInterposer* ExchangeInterposer::Installed() {
  return g_interposer.load(std::memory_order_acquire);
}

ExchangeDelivery::ExchangeDelivery(const ExchangePlan& plan, const ExchangeSink& sink,
                                   uint32_t round, const char* label, bool charged)
    : plan_(&plan), round_(round), label_(label), charged_(charged) {
  // Resolve every destination exactly once (same sink contract as a
  // fault-free delivery) and checkpoint its pre-exchange size. Reserve
  // ahead for one clean attempt; faulty attempts are rolled back to the
  // checkpoint, so capacity is reused across retries.
  for (size_t src = 0; src < plan.sources_.size(); ++src) {
    const ExchangePlan::Source& source = plan.sources_[src];
    if (source.relation == nullptr) continue;
    CP_CHECK(sink != nullptr);
    Target target;
    target.source_index = src;
    target.counts.assign(plan.num_servers_, 0);
    for (const auto& routes : source.shard_routes) {
      for (const ExchangePlan::Route& r : routes) ++target.counts[r.server];
    }
    target.dests.assign(plan.num_servers_, nullptr);
    for (uint32_t s = 0; s < plan.num_servers_; ++s) {
      if (target.counts[s] == 0) continue;
      Relation* dest = sink(src, s);
      CP_CHECK(dest != nullptr);
      bool seen = false;
      for (const Checkpoint& checkpoint : checkpoints_) {
        if (checkpoint.relation == dest) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        checkpoints_.push_back(Checkpoint{dest, dest->size()});
        checkpointed_rows_ += dest->size();
      }
      dest->Reserve(dest->size() + target.counts[s]);
      target.dests[s] = dest;
    }
    targets_.push_back(std::move(target));
  }
}

uint64_t ExchangeDelivery::RunAttempt(const CorruptFn* corrupt) {
  uint64_t delivered = 0;
  for (const Target& target : targets_) {
    const ExchangePlan::Source& source = plan_->sources_[target.source_index];
    const uint32_t width = source.relation->width();
    const Value* base = source.relation->raw().data();
    for (const auto& routes : source.shard_routes) {
      if (corrupt == nullptr) {
        // Clean path: replay routes in ascending (shard, route) order with
        // runs of consecutive rows bound for the same server coalesced
        // into one flat AppendRows copy.
        const size_t n = routes.size();
        size_t k = 0;
        while (k < n) {
          const uint32_t server = routes[k].server;
          const size_t first_row = routes[k].row;
          size_t run = 1;
          while (k + run < n && routes[k + run].server == server &&
                 routes[k + run].row == first_row + run) {
            ++run;
          }
          target.dests[server]->AppendRows(base + first_row * width, run);
          delivered += run;
          k += run;
        }
      } else {
        // Corrupted path: per-row fates, same deterministic order.
        for (const ExchangePlan::Route& r : routes) {
          switch ((*corrupt)(target.source_index, r.server, r.row)) {
            case RowFate::kDrop:
              break;
            case RowFate::kDuplicate:
              target.dests[r.server]->AppendRows(base + r.row * width, 1);
              target.dests[r.server]->AppendRows(base + r.row * width, 1);
              delivered += 2;
              break;
            case RowFate::kDeliver:
              target.dests[r.server]->AppendRows(base + r.row * width, 1);
              ++delivered;
              break;
          }
        }
      }
    }
  }
  return delivered;
}

void ExchangeDelivery::Restore() {
  for (const Checkpoint& checkpoint : checkpoints_) {
    checkpoint.relation->Truncate(checkpoint.rows);
  }
}

namespace {

/// Process-global telemetry state. Plain values under one mutex rather
/// than a MetricsRegistry: registries enforce a single-owner mutation
/// audit, while exchanges legitimately execute from both the main thread
/// and pool tasks. One sample pair per Execute call — exchanges happen per
/// primitive per round, so the sample vectors stay small.
struct TelemetryState {
  Mutex mutex;
  uint64_t count CP_GUARDED_BY(mutex) = 0;
  uint64_t tuples_moved CP_GUARDED_BY(mutex) = 0;
  uint64_t max_fanin CP_GUARDED_BY(mutex) = 0;
  std::map<std::string, ExchangeTelemetrySnapshot::LabelAggregate> by_label
      CP_GUARDED_BY(mutex);
  // planned volume per exchange
  std::vector<double> tuples_samples CP_GUARDED_BY(mutex);
  // max receive / mean receive per exchange
  std::vector<double> skew_samples CP_GUARDED_BY(mutex);
};

TelemetryState& State() {
  static TelemetryState state;
  return state;
}

}  // namespace

ExchangeStats Exchange::Execute(Cluster* cluster, uint32_t round, const ExchangePlan& plan,
                                const ExchangeSink& sink, const char* label) {
  if (cluster != nullptr) CP_CHECK_LE(plan.num_servers_, cluster->p());
  ExchangeStats stats;
  stats.planned = plan.total_planned_;
  stats.max_receive = plan.MaxPlannedReceive();

  // Delivery: replay each recorded source's routes in ascending
  // (shard, route) order — the order AddSource planned them in, which is
  // thread-count invariant. Destinations are fetched once per server and
  // reserved ahead; runs of consecutive rows bound for the same server
  // coalesce into one flat AppendRows copy. With an interposer installed
  // (resilience fault injection), the interposer drives the attempts; it
  // must hand back a clean final delivery, verified by the audit below.
  {
    ExchangeDelivery delivery(plan, sink, round, label, cluster != nullptr);
    ExchangeInterposer* interposer = ExchangeInterposer::Installed();
    stats.delivered =
        interposer != nullptr ? interposer->Deliver(delivery) : delivery.Attempt();
  }
  CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyExchange(plan.recorded_planned_, stats.delivered,
                                                        label);)

  // Charging: exactly once per server for the round. Zero amounts are
  // skipped — a zero Add would still grow the tracker's round list, giving
  // a different tracker shape than a path that never charged.
  if (cluster != nullptr) {
    CP_AUDIT_ONLY(const uint64_t volume_before = cluster->tracker().TotalCommunication();)
    LoadTracker& tracker = cluster->tracker();
    for (uint32_t s = 0; s < plan.num_servers_; ++s) {
      const uint64_t amount = plan.PlannedReceive(s);
      if (amount == 0) continue;
      tracker.Add(round, s, amount);
      stats.charged += amount;
    }
    CP_AUDIT_EQ(stats.charged, plan.total_planned_);
    CP_AUDIT_ONLY(audit::SimulatorAuditor::VerifyConservation(
        volume_before, stats.charged, cluster->tracker().TotalCommunication(), label);)
  }

  ExchangeTelemetry::Record(label, stats, plan.num_servers_);
  return stats;
}

void ExchangeTelemetry::Reset() {
  TelemetryState& state = State();
  MutexLock lock(state.mutex);
  state.count = 0;
  state.tuples_moved = 0;
  state.max_fanin = 0;
  state.by_label.clear();
  state.tuples_samples.clear();
  state.skew_samples.clear();
}

void ExchangeTelemetry::Record(const char* label, const ExchangeStats& stats,
                               uint32_t num_servers) {
  TelemetryState& state = State();
  MutexLock lock(state.mutex);
  ++state.count;
  state.tuples_moved += stats.planned;
  state.max_fanin = std::max(state.max_fanin, stats.max_receive);
  ExchangeTelemetrySnapshot::LabelAggregate& agg = state.by_label[label];
  ++agg.count;
  agg.tuples_moved += stats.planned;
  state.tuples_samples.push_back(static_cast<double>(stats.planned));
  // Skew of the fan-in: max planned receive over the mean planned receive.
  // 1.0 = perfectly balanced; recorded only for exchanges that moved data.
  if (stats.planned > 0) {
    const double mean = static_cast<double>(stats.planned) / num_servers;
    state.skew_samples.push_back(static_cast<double>(stats.max_receive) / mean);
  }
}

ExchangeTelemetrySnapshot ExchangeTelemetry::Snapshot() {
  TelemetryState& state = State();
  MutexLock lock(state.mutex);
  ExchangeTelemetrySnapshot snapshot;
  snapshot.count = state.count;
  snapshot.tuples_moved = state.tuples_moved;
  snapshot.max_fanin = state.max_fanin;
  snapshot.by_label.assign(state.by_label.begin(), state.by_label.end());
  snapshot.tuples_samples = state.tuples_samples;
  snapshot.skew_samples = state.skew_samples;
  return snapshot;
}

}  // namespace mpc
}  // namespace coverpack
