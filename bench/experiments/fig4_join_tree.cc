/// \file fig4_join_tree.cc
/// \brief Regenerates Figure 4: the join tree of the 8-relation example
/// query, built by GYO reduction / maximum-weight spanning forest, plus the
/// GYO trace proving alpha-acyclicity.

#include <iostream>

#include "bench_util.h"
#include "experiments/runners.h"
#include "lp/covers.h"
#include "query/catalog.h"
#include "query/join_tree.h"
#include "query/properties.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunFig4JoinTree(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);
  Hypergraph q = catalog::Figure4Query();
  std::cout << "query: " << q.ToString() << "\n\n";
  report.AddParam("query", q.ToString());

  GyoResult gyo = GyoReduce(q);
  std::cout << "GYO reduction: " << gyo.steps.size() << " steps, empties the query: "
            << (gyo.acyclic ? "yes (alpha-acyclic)" : "NO") << "\n";
  report.metrics.AddCounter("gyo_steps", gyo.steps.size());

  auto tree = JoinTree::Build(q);
  bool ok = gyo.acyclic && tree.has_value();
  if (tree) {
    std::cout << "join tree (indentation = depth):\n" << tree->ToString(q);
    // Running-intersection check per attribute.
    for (AttrId v : q.AllAttrs().ToVector()) {
      EdgeSet holders = q.EdgesContaining(v);
      std::cout << "attribute " << q.attr_name(v) << " in " << holders.size()
                << " relations -> connected subtree\n";
    }
  }
  Rational rho = RhoStar(q);
  std::cout << "rho* = " << rho << " (integral, Lemma A.2); minimum integral cover: {";
  EdgeSet cover = MinimumIntegralEdgeCover(q).edges;
  bool first = true;
  for (EdgeId edge : cover.ToVector()) {
    std::cout << (first ? "" : ", ") << q.edge(edge).name;
    first = false;
  }
  std::cout << "}\n";
  report.metrics.SetGauge("rho_star", rho.ToDouble());
  ok = ok && rho == Rational(6) && cover.size() == 6;
  FinishReport(report, ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
