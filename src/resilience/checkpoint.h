/// \file checkpoint.h
/// \brief Round-boundary checkpoints of distributed simulator state.
///
/// The recovery unit of the resilience layer is one round: every algorithm
/// in the paper is analyzed round by round, so when a server crashes the
/// cheapest sound repair is to restore the round's starting state and
/// replay only that round. Two granularities:
///
///  * RoundCheckpoint — a deep snapshot of a DistRelation plus the
///    cluster's LoadTracker, captured at a round boundary and restorable
///    wholesale. This is the coarse unit an outer driver uses for the
///    degraded "full deterministic rerun" path.
///  * Inside the Exchange layer the checkpoint is implicit and cheaper:
///    destinations only grow by appends during a round, so
///    ExchangeDelivery records pre-exchange row counts and restores by
///    truncation (see mpc/exchange.h). RoundCheckpointStore is the ledger
///    of those implicit checkpoints — which rounds were protected, how
///    many tuples each snapshot covered, and how often a restore fired.

#ifndef COVERPACK_RESILIENCE_CHECKPOINT_H_
#define COVERPACK_RESILIENCE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "mpc/dist_relation.h"
#include "mpc/load_tracker.h"

namespace coverpack {
namespace resilience {

/// A deep round-boundary snapshot of one DistRelation and the tracker.
class RoundCheckpoint {
 public:
  /// Captures the state at the boundary of `round`.
  static RoundCheckpoint Capture(uint32_t round, const DistRelation& data,
                                 const LoadTracker& tracker);

  /// Restores `data` and `tracker` to the captured state (deep copy back).
  void Restore(DistRelation* data, LoadTracker* tracker) const;

  uint32_t round() const { return round_; }
  /// Tuples the snapshot protects (total rows across shards).
  uint64_t snapshot_tuples() const { return snapshot_tuples_; }

 private:
  RoundCheckpoint(uint32_t round, DistRelation data, LoadTracker tracker);

  uint32_t round_;
  uint64_t snapshot_tuples_;
  DistRelation data_;
  LoadTracker tracker_;
};

/// Bookkeeping of the per-round implicit checkpoints taken at the Exchange
/// choke point: capture/restore counts and protected volume per round.
/// Rounds here are exchange-local (child clusters report their own round
/// numbers), which is the right granularity for recovery accounting.
class RoundCheckpointStore {
 public:
  void NoteCapture(uint32_t round, uint64_t tuples);
  void NoteRestore(uint32_t round);
  void Clear();

  uint64_t num_captures() const { return num_captures_; }
  uint64_t num_restores() const { return num_restores_; }
  /// Total tuples protected across all captures.
  uint64_t total_tuples() const { return total_tuples_; }
  /// Distinct rounds that took at least one checkpoint.
  uint64_t num_rounds() const { return rounds_.size(); }

 private:
  struct RoundEntry {
    uint64_t captures = 0;
    uint64_t restores = 0;
    uint64_t tuples = 0;
  };

  uint64_t num_captures_ = 0;
  uint64_t num_restores_ = 0;
  uint64_t total_tuples_ = 0;
  std::map<uint32_t, RoundEntry> rounds_;
};

}  // namespace resilience
}  // namespace coverpack

#endif  // COVERPACK_RESILIENCE_CHECKPOINT_H_
