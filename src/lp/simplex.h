/// \file simplex.h
/// \brief Exact rational linear programming via two-phase simplex.
///
/// The LPs solved here (fractional edge cover / packing / vertex cover,
/// hypercube share optimization) have a handful of variables and
/// constraints, but their optima become exponents in load formulas, so we
/// solve them exactly over rationals. Bland's pivoting rule guarantees
/// termination.

#ifndef COVERPACK_LP_SIMPLEX_H_
#define COVERPACK_LP_SIMPLEX_H_

#include <iosfwd>
#include <vector>

#include "util/rational.h"

namespace coverpack {

/// Outcome of an LP solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
};

/// Human-readable status name (so CP_CHECK_EQ failures print "optimal"
/// instead of a raw enum value).
std::ostream& operator<<(std::ostream& os, LpStatus status);

/// Solution of max c.x subject to A x <= b, x >= 0.
struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  Rational objective;              ///< Optimal value (valid when kOptimal).
  std::vector<Rational> solution;  ///< Optimal x (valid when kOptimal).
};

/// A linear program in canonical form: maximize c.x s.t. A x <= b, x >= 0.
/// Rows of A may have any sign in b (phase one handles infeasible starts).
class LinearProgram {
 public:
  /// \param num_vars number of decision variables (>= 1).
  explicit LinearProgram(size_t num_vars);

  size_t num_vars() const { return num_vars_; }

  /// Adds the constraint sum_i coeffs[i] * x_i <= bound.
  void AddLeq(const std::vector<Rational>& coeffs, const Rational& bound);

  /// Adds sum_i coeffs[i] * x_i >= bound (stored as negated <=).
  void AddGeq(const std::vector<Rational>& coeffs, const Rational& bound);

  /// Adds sum_i coeffs[i] * x_i == bound (as a <= / >= pair).
  void AddEq(const std::vector<Rational>& coeffs, const Rational& bound);

  /// Sets the objective to maximize.
  void SetObjective(const std::vector<Rational>& coeffs);

  /// Solves the program.
  LpResult Maximize() const;

  /// Convenience: solves min c.x by maximizing -c.x; the returned objective
  /// is the *minimum* (sign already flipped back).
  LpResult Minimize() const;

 private:
  size_t num_vars_;
  std::vector<std::vector<Rational>> rows_;
  std::vector<Rational> bounds_;
  std::vector<Rational> objective_;
};

}  // namespace coverpack

#endif  // COVERPACK_LP_SIMPLEX_H_
