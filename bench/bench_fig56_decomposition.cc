/// \file bench_fig56_decomposition.cc
/// \brief Thin wrapper: the experiment body lives in
/// bench/experiments/fig56_decomposition.cc and is registered in the experiment
/// registry, so the unified driver (coverpack_bench) and this historical
/// one-display binary share one implementation.

#include "experiments/experiments.h"

int main() { return coverpack::bench::RunExperimentStandalone("fig56_decomposition"); }
