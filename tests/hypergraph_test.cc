#include "query/hypergraph.h"

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"

namespace coverpack {
namespace {

TEST(AttrSetTest, BasicOperations) {
  AttrSet s;
  EXPECT_TRUE(s.empty());
  s.Insert(3);
  s.Insert(7);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.First(), 7u);
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a = AttrSet::FromIds({0, 1, 2});
  AttrSet b = AttrSet::FromIds({2, 3});
  EXPECT_EQ(a.Union(b), AttrSet::FromIds({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttrSet::Single(2));
  EXPECT_EQ(a.Minus(b), AttrSet::FromIds({0, 1}));
  EXPECT_TRUE(AttrSet::FromIds({0, 1}).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.Intersects(b));
}

TEST(AttrSetTest, SubsetIteratorEnumeratesPowerSet) {
  AttrSet universe = AttrSet::FromIds({1, 4, 6});
  int count = 0;
  bool saw_empty = false;
  bool saw_full = false;
  for (SubsetIterator it(universe); !it.Done(); it.Next()) {
    ++count;
    if (it.Current().empty()) saw_empty = true;
    if (it.Current() == universe) saw_full = true;
    EXPECT_TRUE(it.Current().IsSubsetOf(universe));
  }
  EXPECT_EQ(count, 8);
  EXPECT_TRUE(saw_empty);
  EXPECT_TRUE(saw_full);
}

TEST(ParserTest, ParsesBoxJoin) {
  Hypergraph q = ParseQuery("R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F)");
  EXPECT_EQ(q.num_edges(), 5u);
  EXPECT_EQ(q.num_attrs(), 6u);
  EXPECT_EQ(q.edge(0).name, "R1");
  EXPECT_EQ(q.edge(0).attrs.size(), 3u);
  ASSERT_TRUE(q.FindAttribute("D").has_value());
  EXPECT_TRUE(q.edge(2).attrs.Contains(*q.FindAttribute("D")));
}

TEST(HypergraphTest, EdgesContainingAndDegree) {
  Hypergraph box = catalog::BoxJoin();
  AttrId a = *box.FindAttribute("A");
  EdgeSet holders = box.EdgesContaining(a);
  EXPECT_EQ(holders.size(), 2u);
  EXPECT_EQ(box.AttrDegree(a), 2u);
  EXPECT_TRUE(holders.Contains(*box.FindEdge("R1")));
  EXPECT_TRUE(holders.Contains(*box.FindEdge("R3")));
}

TEST(HypergraphTest, ResidualDropsAttribute) {
  Hypergraph q = catalog::SemiJoinExample();  // R1(A), R2(A,B), R3(B)
  AttrId a = *q.FindAttribute("A");
  Hypergraph residual = q.Residual(AttrSet::Single(a));
  // R1 becomes empty and is dropped; R2 loses A.
  EXPECT_EQ(residual.num_edges(), 2u);
  EXPECT_EQ(residual.edge(0).name, "R2");
  EXPECT_EQ(residual.edge(0).attrs.size(), 1u);
}

TEST(HypergraphTest, InducedByEdgesKeepsNames) {
  Hypergraph box = catalog::BoxJoin();
  EdgeSet kept;
  kept.Insert(*box.FindEdge("R1"));
  kept.Insert(*box.FindEdge("R5"));
  Hypergraph induced = box.InducedByEdges(kept);
  EXPECT_EQ(induced.num_edges(), 2u);
  EXPECT_TRUE(induced.FindEdge("R1").has_value());
  EXPECT_TRUE(induced.FindEdge("R5").has_value());
  EXPECT_EQ(box.SameNamedEdgeIn(induced, *box.FindEdge("R5")), induced.FindEdge("R5"));
}

TEST(HypergraphTest, ConnectedComponents) {
  Hypergraph q = ParseQuery("R1(A,B), R2(B,C), R3(X,Y), R4(Z)");
  std::vector<EdgeSet> components = q.ConnectedComponents();
  EXPECT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0].size(), 2u);  // R1-R2 linked through B
}

TEST(HypergraphTest, IsReduced) {
  EXPECT_FALSE(catalog::SemiJoinExample().IsReduced());
  EXPECT_TRUE(catalog::BoxJoin().IsReduced());
  EXPECT_TRUE(catalog::Path(4).IsReduced());
}

TEST(HypergraphTest, BuilderRejectsDuplicateRelationNames) {
  Hypergraph::Builder builder;
  builder.AddRelation("R", {"A"});
  EXPECT_DEATH(builder.AddRelation("R", {"B"}), "duplicate");
}

TEST(HypergraphTest, ToStringRoundTrip) {
  Hypergraph q = catalog::Line3();
  EXPECT_EQ(q.ToString(), "R1(A,B) |><| R2(B,C) |><| R3(C,D)");
}

}  // namespace
}  // namespace coverpack
