/// \file operators.h
/// \brief Local (single-machine) relational operators.
///
/// These are the building blocks the MPC servers run between communication
/// rounds: selection, projection, semi-join, binary hash join, and a
/// multiway join used to combine co-located fragments at emission time.

#ifndef COVERPACK_RELATION_OPERATORS_H_
#define COVERPACK_RELATION_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "relation/relation.h"

namespace coverpack {

/// sigma_{attr = value}(input).
Relation Select(const Relation& input, AttrId attr, Value value);

/// sigma_{attr in values}(input); `values` should be sorted (binary search).
Relation SelectIn(const Relation& input, AttrId attr, const std::vector<Value>& sorted_values);

/// sigma_{attr not in values}(input); `values` should be sorted. The
/// complement selection of the skew-split pipelines (rows whose value is
/// not heavy), previously open-coded with per-row appends.
Relation SelectNotIn(const Relation& input, AttrId attr,
                     const std::vector<Value>& sorted_values);

/// pi_{attrs}(input) with duplicate elimination (set semantics).
Relation Project(const Relation& input, AttrSet attrs);

/// Distinct values of a single attribute.
std::vector<Value> DistinctValues(const Relation& input, AttrId attr);

/// Semi-join: tuples of `left` that agree with at least one tuple of
/// `right` on their shared attributes. If the schemas are disjoint,
/// returns `left` when `right` is nonempty and empty otherwise.
Relation SemiJoin(const Relation& left, const Relation& right);

/// Natural (hash) join of two relations.
Relation HashJoin(const Relation& left, const Relation& right);

/// Natural join of any number of co-located relations, evaluated as a
/// left-deep sequence of hash joins in ascending size order. Intended for
/// emission-time combination of small fragments; not worst-case optimal.
Relation MultiwayJoin(const std::vector<const Relation*>& inputs);

/// Adds a constant column `attr = value` to every row (attr must not be in
/// the schema). Used to re-attach a heavy assignment x = a to the results
/// of the residual query Q_x.
Relation AttachConstant(const Relation& input, AttrId attr, Value value);

/// Drops one column from the schema without deduplication (rows stay
/// distinct when the dropped attribute was constant across the relation).
Relation DropColumn(const Relation& input, AttrId attr);

/// Degree of each value of `attr`: pairs (value, count) sorted by value.
std::vector<std::pair<Value, uint64_t>> DegreeHistogram(const Relation& input, AttrId attr);

}  // namespace coverpack

#endif  // COVERPACK_RELATION_OPERATORS_H_
