#include "util/rational.h"

#include <ostream>

#include "util/audit.h"
#include "util/logging.h"

namespace coverpack {

namespace {

/// Multiplies through __int128 and checks the product still fits in int64.
int64_t CheckedMul(int64_t a, int64_t b) {
  __int128 wide = static_cast<__int128>(a) * static_cast<__int128>(b);
  CP_CHECK(wide <= INT64_MAX && wide >= INT64_MIN) << "rational overflow in multiply";
  return static_cast<int64_t>(wide);
}

int64_t CheckedAdd(int64_t a, int64_t b) {
  __int128 wide = static_cast<__int128>(a) + static_cast<__int128>(b);
  CP_CHECK(wide <= INT64_MAX && wide >= INT64_MIN) << "rational overflow in add";
  return static_cast<int64_t>(wide);
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  CP_CHECK_NE(den, 0) << "rational with zero denominator";
  Normalize();
}

void Rational::Normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
  } else {
    int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    num_ /= g;
    den_ /= g;
  }
  CP_AUDIT(IsNormalized());
}

bool Rational::IsNormalized() const {
  if (den_ <= 0) return false;
  if (num_ == 0) return den_ == 1;
  const uint64_t magnitude =
      num_ < 0 ? uint64_t{0} - static_cast<uint64_t>(num_) : static_cast<uint64_t>(num_);
  return std::gcd(magnitude, static_cast<uint64_t>(den_)) == 1;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  CP_AUDIT(r.IsNormalized());
  return r;
}

Rational Rational::operator+(const Rational& other) const {
  // Reduce via gcd of denominators first to keep intermediates small.
  int64_t g = std::gcd(den_, other.den_);
  int64_t lhs_scale = other.den_ / g;
  int64_t rhs_scale = den_ / g;
  int64_t num = CheckedAdd(CheckedMul(num_, lhs_scale), CheckedMul(other.num_, rhs_scale));
  int64_t den = CheckedMul(den_, lhs_scale);
  return Rational(num, den);
}

Rational Rational::operator-(const Rational& other) const { return *this + (-other); }

Rational Rational::operator*(const Rational& other) const {
  // Cross-cancel before multiplying to limit growth.
  int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, other.den_);
  int64_t g2 = std::gcd(other.num_ < 0 ? -other.num_ : other.num_, den_);
  int64_t num = CheckedMul(num_ / g1, other.num_ / g2);
  int64_t den = CheckedMul(den_ / g2, other.den_ / g1);
  return Rational(num, den);
}

Rational Rational::operator/(const Rational& other) const { return *this * other.Inverse(); }

bool Rational::operator<(const Rational& other) const {
  __int128 lhs = static_cast<__int128>(num_) * other.den_;
  __int128 rhs = static_cast<__int128>(other.num_) * den_;
  return lhs < rhs;
}

Rational Rational::Inverse() const {
  CP_CHECK_NE(num_, 0) << "inverse of zero rational";
  return Rational(den_, num_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) { return os << r.ToString(); }

}  // namespace coverpack
