// cplint fixture: the sanctioned membership shape — ascending slot-id
// vectors (joins activate the lowest inactive ids, leaves drop the
// highest), so every epoch's active list is deterministic by construction
// and routing cuts never depend on container layout.
#include <algorithm>
#include <vector>

std::vector<unsigned> ActiveSlots(std::vector<unsigned> members) {
  std::sort(members.begin(), members.end());
  return members;
}
