/// \file ex34_gap.cc
/// \brief Regenerates Example 3.4: on the Figure 4 query's hard instance,
/// the conservative (Theorem 2) threshold pays for a 7-relation subjoin of
/// size N^7 and lands at N / p^(1/7), strictly worse than the optimal
/// run's N / p^(1/6) — the non-tightness that motivates Section 4.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/acyclic_join.h"
#include "core/load_planner.h"
#include "experiments/runners.h"
#include "lowerbound/hard_instance.h"
#include "query/catalog.h"
#include "query/join_tree.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunEx34Gap(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  Hypergraph q = catalog::Figure4Query();
  uint64_t n = 512;
  lowerbound::HardInstance hard = lowerbound::Example34Instance(q, n);
  auto tree = JoinTree::Build(q);
  report.AddParam("N", n);
  report.AddParam("query", q.ToString());

  TablePrinter table({"p", "L conservative", "N/p^(1/7)", "L optimal", "N/p^(1/6)",
                      "gap L_cons/L_opt"});
  bool gap_everywhere = true;
  for (uint32_t p : {64u, 512u, 4096u}) {
    uint64_t conservative = PlanLoadConservative(q, *tree, hard.instance, p);
    uint64_t optimal = PlanLoadOptimal(q, hard.instance, p);
    double t7 = static_cast<double>(n) / std::pow(static_cast<double>(p), 1.0 / 7.0);
    double t6 = static_cast<double>(n) / std::pow(static_cast<double>(p), 1.0 / 6.0);
    table.AddRow({std::to_string(p), std::to_string(conservative), FormatDouble(t7, 1),
                  std::to_string(optimal), FormatDouble(t6, 1),
                  FormatDouble(static_cast<double>(conservative) / optimal, 3)});
    if (p == 512) {
      report.metrics.SetGauge("gap_at_p512",
                              static_cast<double>(conservative) / static_cast<double>(optimal));
    }
    if (conservative <= optimal) gap_everywhere = false;
  }
  table.Print(std::cout);

  // Execute both runs at p = 512 and report measured loads.
  uint32_t p = 512;
  bool run_ok = true;
  for (RunPolicy policy : {RunPolicy::kConservative, RunPolicy::kOptimal}) {
    AcyclicRunOptions options;
    options.policy = policy;
    options.collect = false;
    options.p = p;
    AcyclicRunResult run = ComputeAcyclicJoin(q, hard.instance, options);
    const char* policy_name =
        policy == RunPolicy::kConservative ? "conservative" : "optimal";
    ProfileRun(report, std::string(policy_name) + "/p512", run.load_tracker);
    std::cout << policy_name << " run at p=512: L planned " << run.load_threshold
              << ", measured " << run.max_load << ", rounds " << run.rounds << ", servers "
              << run.servers_used << "\n";
    if (run.max_load > 16 * run.load_threshold) run_ok = false;
  }

  FinishReport(report, gap_everywhere && run_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
