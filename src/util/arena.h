/// \file arena.h
/// \brief Page-backed scratch memory for the intra-server hot paths.
///
/// The paper's cost model charges only the Exchange choke point; everything
/// a server does locally is free in the model but dominates wall time. The
/// local operators (joins, semijoins, dedup, degree statistics) used to pay
/// one or more heap allocations per call — per-bucket vectors, per-call
/// unordered_maps — which made them allocation- and cache-bound. This file
/// provides the replacement discipline:
///
///  * `Arena` — a bump allocator over geometrically growing pages. `Reset()`
///    rewinds the cursor but keeps the pages, so steady-state operator calls
///    allocate nothing from the system.
///  * `ArenaVector<T>` — a minimal push_back/index container for trivially
///    copyable T backed by an Arena. Growth relocates into a fresh arena
///    block (the abandoned prefix is reclaimed at the next Reset/scope pop).
///  * `ScratchArena::Local()` — the per-thread scratch arena the operators
///    share. Every operator call opens an `ArenaScope`, which remembers the
///    cursor and rewinds it on destruction — nesting (HashJoin inside
///    MultiwayJoin inside a pool task) works like a stack of frames.
///
/// Determinism contract: arena contents never influence results, and the
/// telemetry recorded per scope (logical bytes handed out) is a pure
/// function of the operator inputs — so `memory.*` report metrics are
/// byte-identical at any thread count and under any fault schedule, even
/// though the physical pages are per-thread.

#ifndef COVERPACK_UTIL_ARENA_H_
#define COVERPACK_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace coverpack {

/// A bump allocator over geometrically growing pages.
class Arena {
 public:
  /// First page size; later pages double up to kMaxPageBytes.
  static constexpr size_t kMinPageBytes = size_t{1} << 16;   // 64 KiB
  static constexpr size_t kMaxPageBytes = size_t{1} << 26;   // 64 MiB

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never fails except by std::bad_alloc; zero-byte requests return a
  /// unique non-null cursor position.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    CP_DCHECK((align & (align - 1)) == 0);
    size_t cursor = (cursor_ + (align - 1)) & ~(align - 1);
    if (cursor + bytes > limit_ || pages_.empty()) {
      return AllocateSlow(bytes, align);
    }
    void* out = base_ + cursor;
    cursor_ = cursor + bytes;
    used_ += bytes;
    return out;
  }

  /// Typed array allocation (uninitialized storage).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is never destroyed element-wise");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds the cursor to empty, keeping every page for reuse.
  void Reset();

  /// Logical bytes handed out since the last Reset (excludes alignment
  /// padding and block-switch waste): the content-determined quantity the
  /// memory telemetry reports.
  size_t used() const { return used_; }

  /// Physical bytes reserved from the system across all pages. Depends on
  /// allocation history (and therefore on thread count when arenas are
  /// thread-local) — never put this in a RunReport.
  size_t reserved() const { return reserved_; }

  size_t num_pages() const { return pages_.size(); }

  /// A cursor position for scope save/restore. Opaque: only meaningful to
  /// RewindTo on the same arena.
  struct Mark {
    size_t page = 0;
    size_t cursor = 0;
    size_t used = 0;
  };

  Mark Position() const { return Mark{page_index_, cursor_, used_}; }

  /// Rewinds to a previously captured position. Pages allocated since stay
  /// reserved for reuse.
  void RewindTo(const Mark& mark);

 private:
  void* AllocateSlow(size_t bytes, size_t align);
  void ActivatePage(size_t index);

  struct Page {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  std::vector<Page> pages_;
  size_t page_index_ = 0;  // active page (valid iff !pages_.empty())
  char* base_ = nullptr;   // active page base
  size_t cursor_ = 0;      // offset into active page
  size_t limit_ = 0;       // active page size
  size_t used_ = 0;        // logical bytes since Reset
  size_t reserved_ = 0;    // physical bytes across all pages
};

/// A minimal vector for trivially copyable T over an Arena. Not an STL
/// container: no destructors run, growth relocates with memcpy, and the
/// memory is reclaimed by the owning ArenaScope/Reset, never by this class.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ArenaVector(Arena* arena) : arena_(arena) {}
  ArenaVector(Arena* arena, size_t size) : arena_(arena) { resize(size); }

  void reserve(size_t capacity) {
    if (capacity > capacity_) Grow(capacity);
  }

  /// Resizes without initializing new elements (trivial T; callers fill).
  void resize(size_t size) {
    reserve(size);
    size_ = size;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& back() { return data_[size_ - 1]; }

 private:
  void Grow(size_t needed) {
    size_t capacity = capacity_ == 0 ? 16 : capacity_ * 2;
    if (capacity < needed) capacity = needed;
    T* grown = arena_->AllocateArray<T>(capacity);
    if (size_ != 0) std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = capacity;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// The per-thread scratch arena shared by the local operators.
class ScratchArena {
 public:
  /// This thread's scratch arena. Pool threads and the main thread each own
  /// one; capacity persists across operator calls.
  static Arena& Local();
};

/// RAII frame over an arena: remembers the cursor on entry, rewinds on
/// exit, and reports the frame's logical byte usage to MemoryTelemetry.
/// Operators open one scope per call; nested calls stack.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena = &ScratchArena::Local())
      : arena_(arena), mark_(arena->Position()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope();

  Arena* arena() const { return arena_; }

  /// Logical bytes this frame has handed out so far.
  size_t used() const { return arena_->used() - mark_.used; }

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// A point-in-time copy of the process-global scratch-memory telemetry.
/// Every field is content-determined (sums and maxima over per-scope
/// logical usage), so it is thread-count and fault-schedule invariant —
/// the property that lets memory.* metrics live in byte-compared reports.
struct MemoryTelemetrySnapshot {
  uint64_t scopes = 0;            ///< operator-level arena frames closed
  uint64_t bytes_total = 0;       ///< sum of logical bytes over all frames
  uint64_t high_water_bytes = 0;  ///< largest single frame
};

/// Process-global aggregation of arena-frame usage, following the
/// ExchangeTelemetry pattern: the bench harness resets it before each
/// experiment and snapshots it into RunReport metrics afterwards
/// ("memory.*" keys — see EXPERIMENTS.md). Mutation is a single atomic
/// fold per closed ArenaScope.
class MemoryTelemetry {
 public:
  static void Reset();

  /// Folds one closed frame into the aggregate. Called by ~ArenaScope.
  static void RecordScope(uint64_t bytes);

  static MemoryTelemetrySnapshot Snapshot();
};

}  // namespace coverpack

#endif  // COVERPACK_UTIL_ARENA_H_
