/// \file hash.h
/// \brief Hashing helpers for tuples and composite keys.

#ifndef COVERPACK_UTIL_HASH_H_
#define COVERPACK_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace coverpack {

/// A strong 64-bit mix (from MurmurHash3's finalizer).
inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// Combines a hash with a new value (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (MixHash(value) + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

/// Hashes a sequence of 64-bit values.
inline uint64_t HashSpan(const uint64_t* data, size_t count) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < count; ++i) h = HashCombine(h, data[i]);
  return h;
}

inline uint64_t HashVector(const std::vector<uint64_t>& values) {
  return HashSpan(values.data(), values.size());
}

}  // namespace coverpack

#endif  // COVERPACK_UTIL_HASH_H_
