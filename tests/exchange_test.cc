/// \file exchange_test.cc
/// \brief Unit tests for the unified Exchange layer: planning, delivery,
/// charging, and the telemetry aggregate.

#include "mpc/exchange.h"

#include <gtest/gtest.h>

#include <vector>

#include "mpc/cluster.h"
#include "relation/relation.h"

namespace coverpack {
namespace mpc {
namespace {

Relation MakeSequential(uint32_t width, size_t rows) {
  Relation r(AttrSet::FirstN(width));
  std::vector<Value> row(width);
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t c = 0; c < width; ++c) row[c] = i * 100 + c;
    r.AppendRow(std::span<const Value>(row));
  }
  return r;
}

std::vector<Relation> MakeShards(const Relation& schema_of, uint32_t p) {
  return std::vector<Relation>(p, Relation(schema_of.attrs()));
}

TEST(ExchangeTest, RoundRobinPlanDeliversAndCharges) {
  const uint32_t p = 4;
  Relation data = MakeSequential(2, 10);
  Cluster cluster(p);
  std::vector<Relation> shards = MakeShards(data, p);
  ExchangePlan plan = Exchange::Plan(p, data, [p](size_t i, auto emit) { emit(i % p); });
  EXPECT_EQ(plan.total_planned(), 10u);
  EXPECT_EQ(plan.recorded_planned(), 10u);
  EXPECT_EQ(plan.PlannedReceive(0), 3u);  // rows 0, 4, 8
  EXPECT_EQ(plan.PlannedReceive(3), 2u);  // rows 3, 7
  EXPECT_EQ(plan.MaxPlannedReceive(), 3u);

  ExchangeStats stats = Exchange::Execute(
      &cluster, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; }, "test");
  EXPECT_EQ(stats.planned, 10u);
  EXPECT_EQ(stats.delivered, 10u);
  EXPECT_EQ(stats.charged, 10u);
  EXPECT_EQ(stats.max_receive, 3u);
  // Delivery preserves row order within each destination.
  ASSERT_EQ(shards[1].size(), 3u);
  EXPECT_EQ(shards[1].row(0)[0], 100u);
  EXPECT_EQ(shards[1].row(1)[0], 500u);
  EXPECT_EQ(shards[1].row(2)[0], 900u);
  // Tracker charged exactly the per-server receive volume, once.
  for (uint32_t s = 0; s < p; ++s) {
    EXPECT_EQ(cluster.tracker().At(0, s), shards[s].size());
  }
  EXPECT_EQ(cluster.tracker().TotalCommunication(), 10u);
}

TEST(ExchangeTest, ReplicatedRoutesDeliverToEveryEmittedServer) {
  const uint32_t p = 3;
  Relation data = MakeSequential(1, 5);
  Cluster cluster(p);
  std::vector<Relation> shards = MakeShards(data, p);
  // Full replication: every row to every server.
  ExchangePlan plan = Exchange::Plan(
      p, data,
      [p](size_t, auto emit) {
        for (uint32_t s = 0; s < p; ++s) emit(s);
      },
      /*record=*/true, /*emits_per_row_hint=*/p);
  ExchangeStats stats = Exchange::Execute(
      &cluster, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; }, "test");
  EXPECT_EQ(stats.delivered, 15u);
  EXPECT_EQ(stats.charged, 15u);
  for (uint32_t s = 0; s < p; ++s) {
    EXPECT_TRUE(shards[s].SameContentAs(data));
    EXPECT_EQ(cluster.tracker().At(0, s), 5u);
  }
}

TEST(ExchangeTest, ChargeOnlyRoutingCountsWithoutDelivering) {
  const uint32_t p = 4;
  Relation data = MakeSequential(2, 9);
  Cluster cluster(p);
  ExchangePlan plan = Exchange::Plan(p, data, [p](size_t i, auto emit) { emit(i % p); },
                                     /*record=*/false);
  EXPECT_EQ(plan.total_planned(), 9u);
  EXPECT_EQ(plan.recorded_planned(), 0u);
  ExchangeStats stats = Exchange::Execute(&cluster, 2, plan, "test");
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.charged, 9u);
  EXPECT_EQ(cluster.tracker().At(2, 0), 3u);
  EXPECT_EQ(cluster.tracker().At(2, 3), 2u);
}

TEST(ExchangeTest, UniformChargesAccumulatePerCallCeilings) {
  const uint32_t p = 4;
  Cluster cluster(p);
  ExchangePlan plan(p);
  plan.PlanBroadcast(5);  // every server receives 5
  plan.PlanLinear(10);    // ceil(10/4) = 3 each
  plan.PlanLinear(3);     // ceil(3/4) = 1 each — per-call ceil, not pooled
  EXPECT_EQ(plan.PlannedReceive(2), 9u);
  EXPECT_EQ(plan.total_planned(), 36u);
  ExchangeStats stats = Exchange::Execute(&cluster, 0, plan, "test");
  EXPECT_EQ(stats.charged, 36u);
  for (uint32_t s = 0; s < p; ++s) EXPECT_EQ(cluster.tracker().At(0, s), 9u);
}

TEST(ExchangeTest, NullClusterDeliversWithoutCharging) {
  const uint32_t p = 2;
  Relation data = MakeSequential(1, 4);
  std::vector<Relation> shards = MakeShards(data, p);
  ExchangePlan plan = Exchange::Plan(p, data, [p](size_t i, auto emit) { emit(i % p); });
  ExchangeStats stats = Exchange::Execute(
      nullptr, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; }, "test");
  EXPECT_EQ(stats.delivered, 4u);
  EXPECT_EQ(stats.charged, 0u);
  EXPECT_EQ(shards[0].size() + shards[1].size(), 4u);
}

TEST(ExchangeTest, PlanReceiveAccumulatesExplicitVolumes) {
  const uint32_t p = 3;
  Cluster cluster(p);
  ExchangePlan plan(p);
  plan.PlanReceive(0, 7);
  plan.PlanReceive(0, 2);
  plan.PlanReceive(2, 4);
  plan.PlanReceive(1, 0);  // zero amounts plan nothing
  EXPECT_EQ(plan.total_planned(), 13u);
  EXPECT_EQ(plan.MaxPlannedReceive(), 9u);
  ExchangeStats stats = Exchange::Execute(&cluster, 1, plan, "test");
  EXPECT_EQ(stats.charged, 13u);
  EXPECT_EQ(cluster.tracker().At(1, 0), 9u);
  EXPECT_EQ(cluster.tracker().At(1, 1), 0u);
  EXPECT_EQ(cluster.tracker().At(1, 2), 4u);
}

TEST(ExchangeTest, ZeroVolumePlanChargesNothingAndCreatesNoRound) {
  Cluster cluster(2);
  ExchangePlan plan(2);
  plan.PlanLinear(0);
  ExchangeStats stats = Exchange::Execute(&cluster, 0, plan, "test");
  EXPECT_EQ(stats.charged, 0u);
  // Skipped zero charges must not grow the round list.
  EXPECT_EQ(cluster.tracker().num_rounds(), 0u);
}

TEST(ExchangeTest, ZeroWidthRowsMoveThroughExchange) {
  const uint32_t p = 2;
  Relation nullary((AttrSet()));
  for (int i = 0; i < 5; ++i) nullary.AppendRow({});
  ASSERT_EQ(nullary.size(), 5u);
  Cluster cluster(p);
  std::vector<Relation> shards = MakeShards(nullary, p);
  ExchangePlan plan = Exchange::Plan(p, nullary, [p](size_t i, auto emit) { emit(i % p); });
  ExchangeStats stats = Exchange::Execute(
      &cluster, 0, plan, [&shards](size_t, uint32_t s) { return &shards[s]; }, "test");
  EXPECT_EQ(stats.delivered, 5u);
  EXPECT_EQ(shards[0].size(), 3u);
  EXPECT_EQ(shards[1].size(), 2u);
  EXPECT_EQ(cluster.tracker().At(0, 0), 3u);
  EXPECT_EQ(cluster.tracker().At(0, 1), 2u);
}

TEST(ExchangeTest, MultiSourceSinkKeyedBySourceIndex) {
  const uint32_t p = 2;
  Relation first = MakeSequential(1, 3);
  Relation second = MakeSequential(1, 4);
  Cluster cluster(p);
  std::vector<std::vector<Relation>> dest(2, MakeShards(first, p));
  ExchangePlan plan(p);
  size_t idx_first = plan.AddSource(first, true, [p](size_t i, auto emit) { emit(i % p); });
  size_t idx_second = plan.AddSource(second, true, [p](size_t i, auto emit) { emit(i % p); });
  EXPECT_EQ(idx_first, 0u);
  EXPECT_EQ(idx_second, 1u);
  ExchangeStats stats = Exchange::Execute(
      &cluster, 0, plan,
      [&dest](size_t source, uint32_t s) { return &dest[source][s]; }, "test");
  EXPECT_EQ(stats.delivered, 7u);
  EXPECT_EQ(dest[0][0].size() + dest[0][1].size(), 3u);
  EXPECT_EQ(dest[1][0].size() + dest[1][1].size(), 4u);
  // The per-server charge spans both sources.
  EXPECT_EQ(cluster.tracker().At(0, 0), 2u + 2u);
}

TEST(ExchangeTest, TelemetryAggregatesAcrossExchanges) {
  ExchangeTelemetry::Reset();
  const uint32_t p = 2;
  Relation data = MakeSequential(1, 6);
  Cluster cluster(p);
  std::vector<Relation> shards = MakeShards(data, p);
  ExchangePlan plan = Exchange::Plan(p, data, [p](size_t i, auto emit) { emit(i % p); });
  Exchange::Execute(&cluster, 0, plan,
                    [&shards](size_t, uint32_t s) { return &shards[s]; }, "alpha");
  ExchangePlan broadcast(p);
  broadcast.PlanBroadcast(4);
  Exchange::Execute(&cluster, 1, broadcast, "beta");

  ExchangeTelemetrySnapshot snapshot = ExchangeTelemetry::Snapshot();
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_EQ(snapshot.tuples_moved, 6u + 8u);
  EXPECT_EQ(snapshot.max_fanin, 4u);
  ASSERT_EQ(snapshot.by_label.size(), 2u);
  EXPECT_EQ(snapshot.by_label[0].first, "alpha");
  EXPECT_EQ(snapshot.by_label[0].second.tuples_moved, 6u);
  EXPECT_EQ(snapshot.by_label[1].first, "beta");
  EXPECT_EQ(snapshot.by_label[1].second.count, 1u);
  EXPECT_EQ(snapshot.tuples_samples.size(), 2u);
  // Round-robin of 6 rows over 2 servers is perfectly balanced; broadcast
  // is too (every server gets the same volume): both skews are 1.0.
  ASSERT_EQ(snapshot.skew_samples.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.skew_samples[0], 1.0);
  EXPECT_DOUBLE_EQ(snapshot.skew_samples[1], 1.0);

  ExchangeTelemetry::Reset();
  EXPECT_EQ(ExchangeTelemetry::Snapshot().count, 0u);
}

}  // namespace
}  // namespace mpc
}  // namespace coverpack
