#include "relation/io.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace coverpack {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void WriteCsv(std::ostream& os, const Hypergraph& query, const Relation& relation) {
  std::vector<AttrId> attrs = relation.attrs().ToVector();
  for (size_t c = 0; c < attrs.size(); ++c) {
    if (c) os << ",";
    os << query.attr_name(attrs[c]);
  }
  os << "\n";
  for (size_t i = 0; i < relation.size(); ++i) {
    auto row = relation.row(i);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  }
}

Relation ReadCsv(std::istream& is, const Hypergraph& query, AttrSet expected_attrs) {
  std::string header;
  CP_CHECK(static_cast<bool>(std::getline(is, header))) << "missing CSV header";
  std::vector<std::string> names = SplitCsvLine(header);
  CP_CHECK_EQ(names.size(), expected_attrs.size()) << "CSV header arity mismatch";

  // Map file columns to attribute ids, then to row positions.
  std::vector<AttrId> file_attr(names.size());
  AttrSet seen;
  for (size_t c = 0; c < names.size(); ++c) {
    auto attr = query.FindAttribute(names[c]);
    CP_CHECK(attr.has_value()) << "unknown attribute " << names[c];
    CP_CHECK(expected_attrs.Contains(*attr)) << "unexpected attribute " << names[c];
    CP_CHECK(!seen.Contains(*attr)) << "duplicate attribute " << names[c];
    seen.Insert(*attr);
    file_attr[c] = *attr;
  }

  Relation relation(expected_attrs);
  std::vector<uint32_t> position(names.size());
  for (size_t c = 0; c < names.size(); ++c) position[c] = relation.ColumnOf(file_attr[c]);

  std::string line;
  std::vector<Value> row(names.size());
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitCsvLine(line);
    CP_CHECK_EQ(cells.size(), names.size()) << "row arity mismatch: " << line;
    for (size_t c = 0; c < cells.size(); ++c) {
      row[position[c]] = std::strtoull(cells[c].c_str(), nullptr, 10);
    }
    relation.AppendRow(std::span<const Value>(row));
  }
  return relation;
}

size_t SaveInstance(const std::string& directory, const Hypergraph& query,
                    const Instance& instance) {
  instance.CheckAgainst(query);
  size_t written = 0;
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    std::string path = directory + "/" + query.edge(e).name + ".csv";
    std::ofstream file(path);
    CP_CHECK(file.good()) << "cannot open " << path;
    WriteCsv(file, query, instance[e]);
    ++written;
  }
  return written;
}

Instance LoadInstance(const std::string& directory, const Hypergraph& query) {
  Instance instance(query);
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    std::string path = directory + "/" + query.edge(e).name + ".csv";
    std::ifstream file(path);
    CP_CHECK(file.good()) << "cannot open " << path;
    instance[e] = ReadCsv(file, query, query.edge(e).attrs);
  }
  return instance;
}

}  // namespace coverpack
