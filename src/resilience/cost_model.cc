#include "resilience/cost_model.h"

#include <algorithm>

#include "util/logging.h"

namespace coverpack {
namespace resilience {

namespace {

/// Shared core: `speed_of(round, server)` must return a positive speed.
template <typename SpeedFn>
MakespanBreakdown SimulateMakespanImpl(const LoadTracker& tracker, const SpeedFn& speed_of) {
  MakespanBreakdown breakdown;
  breakdown.round_makespans.reserve(tracker.num_rounds());
  for (uint32_t r = 0; r < tracker.num_rounds(); ++r) {
    double round_makespan = 0.0;
    double round_uniform = 0.0;
    bool bottleneck_straggles = false;
    for (uint32_t s = 0; s < tracker.num_servers(); ++s) {
      const uint64_t load = tracker.At(r, s);
      if (load == 0) continue;
      const double speed = speed_of(r, s);
      const double finish = static_cast<double>(load) / speed;
      if (finish > round_makespan) {
        round_makespan = finish;
        bottleneck_straggles = speed < 1.0;
      }
      round_uniform = std::max(round_uniform, static_cast<double>(load));
    }
    breakdown.round_makespans.push_back(round_makespan);
    if (round_makespan == 0.0) continue;
    ++breakdown.rounds;
    breakdown.makespan += round_makespan;
    breakdown.uniform_makespan += round_uniform;
    if (bottleneck_straggles) ++breakdown.straggler_bottlenecks;
  }
  if (breakdown.uniform_makespan > 0.0) {
    breakdown.slowdown = breakdown.makespan / breakdown.uniform_makespan;
  }
  return breakdown;
}

}  // namespace

MakespanBreakdown SimulateMakespan(const LoadTracker& tracker,
                                   const std::vector<double>& speeds) {
  CP_CHECK_GE(speeds.size(), tracker.num_servers());
  return SimulateMakespanImpl(tracker,
                              [&speeds](uint32_t, uint32_t s) { return speeds[s]; });
}

MakespanBreakdown SimulateMakespan(const LoadTracker& tracker, const FaultPlan& plan) {
  return SimulateMakespanImpl(
      tracker, [&plan](uint32_t r, uint32_t s) { return plan.SpeedOf(r, s); });
}

}  // namespace resilience
}  // namespace coverpack
