/// \file join_tree.h
/// \brief Join trees (and forests) of alpha-acyclic queries.
///
/// A join tree has one node per relation such that, for every attribute,
/// the nodes containing it form a connected subtree (Section 1.4). We build
/// one with Kruskal's algorithm on the intersection-weight graph — a
/// maximal-weight spanning forest of that graph is a join tree iff the
/// query is alpha-acyclic (Bernstein–Goodman) — and then validate the
/// running-intersection property, so Build doubles as an acyclicity test.

#ifndef COVERPACK_QUERY_JOIN_TREE_H_
#define COVERPACK_QUERY_JOIN_TREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "query/hypergraph.h"

namespace coverpack {

/// A rooted forest over the relations of an acyclic query. Node ids equal
/// the EdgeIds of the Hypergraph the tree was built from.
class JoinTree {
 public:
  static constexpr uint32_t kNoParent = UINT32_MAX;

  /// Builds a join forest for the query, or nullopt if the query is cyclic.
  static std::optional<JoinTree> Build(const Hypergraph& query);

  uint32_t num_nodes() const { return static_cast<uint32_t>(parent_.size()); }

  uint32_t parent(uint32_t node) const { return parent_[node]; }
  const std::vector<uint32_t>& children(uint32_t node) const { return children_[node]; }
  bool IsRoot(uint32_t node) const { return parent_[node] == kNoParent; }
  bool IsLeaf(uint32_t node) const { return children_[node].empty(); }

  /// All root nodes (one per connected subtree).
  std::vector<uint32_t> Roots() const;

  /// All leaf nodes. A single-node tree counts as a leaf.
  std::vector<uint32_t> Leaves() const;

  /// Nodes of each connected subtree, as edge sets.
  std::vector<EdgeSet> Components() const;

  /// T[S]: the maximally connected components of the node subset S *on the
  /// tree* (Definition 3.1's T[S], distinct from hypergraph connectivity).
  std::vector<EdgeSet> TreeComponents(EdgeSet s) const;

  /// The unique tree path between two nodes of the same component
  /// (inclusive of both endpoints). Aborts if they are in different
  /// components.
  std::vector<uint32_t> PathBetween(uint32_t a, uint32_t b) const;

  /// Re-roots the component containing `node` at `node`.
  void RerootAt(uint32_t node);

  /// Pretty tree rendering for debugging/benches.
  std::string ToString(const Hypergraph& query) const;

 private:
  JoinTree() = default;

  std::vector<uint32_t> parent_;
  std::vector<std::vector<uint32_t>> children_;
};

}  // namespace coverpack

#endif  // COVERPACK_QUERY_JOIN_TREE_H_
