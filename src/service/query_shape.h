/// \file query_shape.h
/// \brief Structure-only canonicalization of join queries for plan caching.
///
/// The expensive per-query planning artifacts (rho*, tau*, psi*, join
/// trees, load thresholds) depend only on the *shape* of the hypergraph —
/// never on attribute or relation names, and never on the order Builder
/// calls happened in. The PlanCache therefore keys its entries by a
/// canonical shape hash: isomorphic hypergraphs (same structure under any
/// renaming/permutation of attributes and relations) canonicalize to the
/// same hash and the same canonical form string.
///
/// Canonicalization runs Weisfeiler-Leman color refinement on the
/// attribute/edge incidence structure, strengthened by a single-vertex
/// individualization sweep whenever refinement alone leaves symmetric
/// attributes (the sweep separates WL-equivalent non-isomorphic pairs such
/// as one 6-cycle vs. two disjoint triangles). The resulting colors are
/// invariant under isomorphism by construction; the canonical form string
/// renders the colored structure and doubles as the cache's collision
/// guard — two queries are treated as shape-equal only when their forms
/// compare equal, never on the hash alone.

#ifndef COVERPACK_SERVICE_QUERY_SHAPE_H_
#define COVERPACK_SERVICE_QUERY_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {
namespace service {

/// The canonical (isomorphism-invariant) identity of a query's shape.
struct ShapeCanon {
  uint64_t hash = 0;             ///< shape hash; equal for isomorphic queries
  std::string canonical_form;    ///< rendered colored structure (collision guard)
  std::vector<uint64_t> edge_colors;  ///< final refinement color per EdgeId
  uint32_t num_attrs = 0;        ///< attributes occurring in at least one edge
  uint32_t num_edges = 0;
};

/// Canonicalizes the query's shape. Deterministic, and invariant under any
/// permutation of attribute names, relation names, or insertion order.
ShapeCanon CanonicalizeShape(const Hypergraph& query);

/// Shorthand: CanonicalizeShape(query).hash.
uint64_t QueryShapeHash(const Hypergraph& query);

/// Hash of the instance's relation sizes *by shape position*: the sorted
/// multiset of (edge color, relation size) pairs. Isomorphic queries whose
/// instances assign equal sizes to structurally equivalent relations get
/// equal signatures, regardless of edge order.
uint64_t StatsSignature(const ShapeCanon& canon, const Instance& instance);

/// True when every edge color class has one uniform relation size. Only
/// then is a (shape, stats signature) key a *proof* that the planner's
/// load threshold transfers exactly: with non-uniform sizes inside a
/// symmetric class, two instances can share a signature yet assign sizes
/// to structurally distinct positions, so the service bypasses the cache.
bool SizesUniformPerColorClass(const ShapeCanon& canon, const Instance& instance);

}  // namespace service
}  // namespace coverpack

#endif  // COVERPACK_SERVICE_QUERY_SHAPE_H_
