#include <gtest/gtest.h>

#include <cmath>

#include "core/load_planner.h"
#include "lowerbound/emit_capacity.h"
#include "lowerbound/hard_instance.h"
#include "query/catalog.h"
#include "query/join_tree.h"
#include "relation/oracle.h"

namespace coverpack {
namespace lowerbound {
namespace {

TEST(HardInstanceTest, BoxJoinConstruction) {
  Hypergraph box = catalog::BoxJoin();
  HardInstance hard = BoxJoinHardInstance(box, 4096, /*seed=*/42);
  EXPECT_EQ(hard.n, 4096u);
  // Deterministic relations have exactly N tuples.
  for (const char* name : {"R1", "R3", "R4", "R5"}) {
    EXPECT_EQ(hard.instance[*box.FindEdge(name)].size(), 4096u) << name;
  }
  // R2 is Binomial(N^2, 1/N): within 5 sigma of N.
  double sigma = std::sqrt(4096.0);
  double r2 = static_cast<double>(hard.instance[*box.FindEdge("R2")].size());
  EXPECT_NEAR(r2, 4096.0, 5 * sigma);
  // Domains: N^(1/3) for A,B,C and N^(2/3) for D,E,F.
  EXPECT_EQ(hard.domain_sizes[*box.FindAttribute("A")], 16u);
  EXPECT_EQ(hard.domain_sizes[*box.FindAttribute("D")], 256u);
}

TEST(HardInstanceTest, BoxJoinOutputIsCrossProductOfR1R2) {
  // The join result is R1 x R2 (Section 5.1): every (a,b,c) joins every
  // (d,e,f) in R2 because R3, R4, R5 are full Cartesian products.
  Hypergraph box = catalog::BoxJoin();
  HardInstance hard = BoxJoinHardInstance(box, 512, /*seed=*/7);
  uint64_t expected = hard.instance[*box.FindEdge("R1")].size() *
                      hard.instance[*box.FindEdge("R2")].size();
  EXPECT_EQ(JoinCount(box, hard.instance), expected);
}

TEST(HardInstanceTest, SeedsAreReproducible) {
  Hypergraph box = catalog::BoxJoin();
  HardInstance a = BoxJoinHardInstance(box, 1000, 5);
  HardInstance b = BoxJoinHardInstance(box, 1000, 5);
  HardInstance c = BoxJoinHardInstance(box, 1000, 6);
  EdgeId r2 = *box.FindEdge("R2");
  EXPECT_TRUE(a.instance[r2].SameContentAs(b.instance[r2]));
  EXPECT_FALSE(a.instance[r2].SameContentAs(c.instance[r2]));
}

TEST(HardInstanceTest, DegreeTwoGeneralizationMatchesBoxShape) {
  Hypergraph box = catalog::BoxJoin();
  PackingProvability witness = BoxJoinWitness(box);
  HardInstance hard = DegreeTwoHardInstance(box, witness, 4096, 11);
  // Same domain structure as the dedicated construction.
  EXPECT_EQ(hard.domain_sizes[*box.FindAttribute("A")], 16u);
  EXPECT_EQ(hard.domain_sizes[*box.FindAttribute("E")], 256u);
  // Deterministic relations have ~N tuples.
  EXPECT_EQ(hard.instance[*box.FindEdge("R1")].size(), 4096u);
  double sigma = std::sqrt(4096.0);
  EXPECT_NEAR(static_cast<double>(hard.instance[*box.FindEdge("R2")].size()), 4096.0,
              5 * sigma);
}

TEST(HardInstanceTest, EvenCycleHardInstanceIsDeterministic) {
  // C6 has an empty probabilistic set: the instance is fully Cartesian.
  Hypergraph c6 = catalog::Cycle(6);
  PackingProvability witness = UniformHalfWitness(c6);
  HardInstance hard = DegreeTwoHardInstance(c6, witness, 1024, 3);
  for (uint32_t e = 0; e < c6.num_edges(); ++e) {
    EXPECT_EQ(hard.instance[e].size(), 1024u);
  }
}

TEST(HardInstanceTest, Example34Construction) {
  Hypergraph fig4 = catalog::Figure4Query();
  HardInstance hard = Example34Instance(fig4, 4);
  for (uint32_t e = 0; e < fig4.num_edges(); ++e) {
    EXPECT_EQ(hard.instance[e].size(), 4u) << fig4.edge(e).name;
  }
  // Join size = n^6 (D, E, F, H(=J), K, G free).
  EXPECT_EQ(JoinCount(fig4, hard.instance), 4096u);
}

TEST(Example34Test, ConservativePlannerPaysTheSubjoinGap) {
  // Section 3.3 / Example 3.4: on this instance the conservative Theorem 2
  // threshold is strictly larger than the worst-case-optimal Theorem 4
  // threshold (N/p^(1/7) vs N/p^(1/6) for a suitable join tree).
  Hypergraph fig4 = catalog::Figure4Query();
  HardInstance hard = Example34Instance(fig4, 64);
  auto tree = JoinTree::Build(fig4);
  ASSERT_TRUE(tree);
  uint32_t p = 4096;
  uint64_t conservative = PlanLoadConservative(fig4, *tree, hard.instance, p);
  uint64_t optimal = PlanLoadOptimal(fig4, hard.instance, p);
  EXPECT_EQ(optimal, PlanLoadUniform(fig4, 64, p));
  EXPECT_GT(conservative, optimal);
}

TEST(EmitCapacityTest, BoxMeasuredStaysUnderPredictedCap) {
  // Theorem 6 Step 2: no Cartesian load shape beats 2 L^3 / N (whp).
  Hypergraph box = catalog::BoxJoin();
  PackingProvability witness = BoxJoinWitness(box);
  HardInstance hard = BoxJoinHardInstance(box, 4096, 17);
  for (uint64_t load : {256u, 512u, 1024u}) {
    EmitCapacityResult r = SearchEmitCapacity(box, hard, witness, load, /*exact_top_k=*/100);
    EXPECT_LE(static_cast<double>(r.measured), r.predicted_cap) << "L=" << load;
    // Tightness: the construction admits shapes achieving ~L^3/N.
    EXPECT_GE(static_cast<double>(r.measured), r.predicted_cap / 16.0) << "L=" << load;
    EXPECT_GT(r.shapes_searched, 100u);
  }
}

TEST(EmitCapacityTest, ExpectedYieldIsShapeIndependentAtOptimum) {
  // Any feasible shape achieves expected ~L^3/N on the box instance, so
  // the searched optimum is within a constant of L^3/N.
  Hypergraph box = catalog::BoxJoin();
  PackingProvability witness = BoxJoinWitness(box);
  HardInstance hard = BoxJoinHardInstance(box, 4096, 23);
  uint64_t load = 512;
  EmitCapacityResult r = SearchEmitCapacity(box, hard, witness, load, 50);
  double reference = std::pow(static_cast<double>(load), 3.0) / 4096.0;
  EXPECT_GE(r.expected_best, reference / 2.0);
  EXPECT_LE(r.expected_best, reference * 4.0);
}

TEST(EmitCapacityTest, CountingArgumentRecoversTauExponent) {
  // L >= N / (2p)^(1/tau*): doubling p by 8 shrinks the bound by 2 when
  // tau* = 3.
  Rational tau(3);
  double l64 = CountingArgumentLoadBound(1 << 20, 64, tau);
  double l512 = CountingArgumentLoadBound(1 << 20, 512, tau);
  EXPECT_NEAR(l64 / l512, 2.0, 1e-9);
  // And the bound beats the AGM-based N / p^(1/rho*) = N / sqrt(p).
  double agm_style = static_cast<double>(1 << 20) / std::sqrt(64.0);
  EXPECT_GT(l64, agm_style);
}

TEST(EmitCapacityTest, LoadingEverythingEmitsEverything) {
  // With L = N the search finds the full output N^2 (one server).
  Hypergraph box = catalog::BoxJoin();
  PackingProvability witness = BoxJoinWitness(box);
  HardInstance hard = BoxJoinHardInstance(box, 512, 31);
  // R2's sampled size can exceed N slightly; allow loading all of it.
  uint64_t load = hard.instance.MaxRelationSize();
  EmitCapacityResult r = SearchEmitCapacity(box, hard, witness, load, 100);
  uint64_t out = JoinCount(box, hard.instance);
  EXPECT_EQ(r.measured, out);
}

}  // namespace
}  // namespace lowerbound
}  // namespace coverpack
