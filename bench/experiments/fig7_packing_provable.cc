/// \file fig7_packing_provable.cc
/// \brief Regenerates Figure 7: examples of edge-packing-provable
/// degree-two joins, with the Definition 5.4 analysis of each.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "experiments/runners.h"
#include "lp/packing_provable.h"
#include "query/catalog.h"
#include "query/properties.h"

namespace coverpack {
namespace bench {

telemetry::RunReport RunFig7PackingProvable(const Experiment& e) {
  telemetry::RunReport report = MakeReport(e);
  Banner(e.title, e.claim);

  struct Example {
    std::string name;
    Hypergraph query;
    bool expect_provable;
  };
  std::vector<Example> examples;
  examples.push_back({"box_join", catalog::BoxJoin(), true});
  examples.push_back({"rotated_bridges", catalog::PackingProvableSixEdges(), true});
  examples.push_back({"even_cycle_C6", catalog::Cycle(6), true});
  examples.push_back({"even_cycle_C8", catalog::Cycle(8), true});
  examples.push_back({"triangle (odd cycle)", catalog::Triangle(), false});
  examples.push_back({"pentagon (odd cycle)", catalog::Cycle(5), false});
  examples.push_back({"star4 (not degree-two)", catalog::Star(4), false});
  report.AddParam("examples", static_cast<uint64_t>(examples.size()));

  TablePrinter table({"join", "rho*", "tau*", "provable", "|E'|", "why not"});
  bool all_ok = true;
  for (const auto& example : examples) {
    PackingProvability result = AnalyzePackingProvable(example.query);
    all_ok = all_ok && (result.provable == example.expect_provable);
    report.metrics.AddCounter(result.provable ? "provable" : "not_provable");
    table.AddRow({example.name, result.rho_star.ToString(), result.tau_star.ToString(),
                  result.provable ? "yes" : "no",
                  result.provable ? std::to_string(result.probabilistic.size()) : "-",
                  result.provable ? "" : result.reason});
  }
  table.Print(std::cout);
  std::cout << "for every provable join the lower bound is Omega(N / p^(1/tau*)),\n"
               "exceeding the AGM-based Omega(N / p^(1/rho*)) whenever tau* > rho*.\n";
  FinishReport(report, all_ok);
  return report;
}

}  // namespace bench
}  // namespace coverpack
