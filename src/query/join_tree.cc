#include "query/join_tree.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace coverpack {

namespace {

/// Small union-find over node ids.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns false if already united.
  bool Unite(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

std::optional<JoinTree> JoinTree::Build(const Hypergraph& query) {
  uint32_t m = query.num_edges();
  CP_CHECK_GT(m, 0u);

  // Kruskal on pairwise intersection weights (descending).
  struct Candidate {
    uint32_t weight;
    uint32_t a;
    uint32_t b;
  };
  std::vector<Candidate> candidates;
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = i + 1; j < m; ++j) {
      uint32_t weight = query.edge(i).attrs.Intersect(query.edge(j).attrs).size();
      if (weight > 0) candidates.push_back({weight, i, j});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) { return x.weight > y.weight; });

  UnionFind uf(m);
  std::vector<std::vector<uint32_t>> adjacency(m);
  for (const auto& candidate : candidates) {
    if (uf.Unite(candidate.a, candidate.b)) {
      adjacency[candidate.a].push_back(candidate.b);
      adjacency[candidate.b].push_back(candidate.a);
    }
  }

  // Orient each component from its smallest-id node.
  JoinTree tree;
  tree.parent_.assign(m, kNoParent);
  tree.children_.assign(m, {});
  std::vector<bool> visited(m, false);
  for (uint32_t root = 0; root < m; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    std::vector<uint32_t> queue{root};
    while (!queue.empty()) {
      uint32_t u = queue.back();
      queue.pop_back();
      for (uint32_t w : adjacency[u]) {
        if (visited[w]) continue;
        visited[w] = true;
        tree.parent_[w] = u;
        tree.children_[u].push_back(w);
        queue.push_back(w);
      }
    }
  }

  // Validate the running-intersection property: for every attribute, the
  // nodes containing it must be connected within the forest.
  for (AttrId v : query.AllAttrs().ToVector()) {
    EdgeSet holders = query.EdgesContaining(v);
    if (holders.size() <= 1) continue;
    std::vector<EdgeId> nodes = holders.ToVector();
    // BFS within holders along tree adjacency.
    EdgeSet reached = EdgeSet::Single(nodes[0]);
    std::vector<uint32_t> queue{nodes[0]};
    while (!queue.empty()) {
      uint32_t u = queue.back();
      queue.pop_back();
      auto visit = [&](uint32_t w) {
        if (holders.Contains(w) && !reached.Contains(w)) {
          reached.Insert(w);
          queue.push_back(w);
        }
      };
      if (tree.parent_[u] != kNoParent) visit(tree.parent_[u]);
      for (uint32_t child : tree.children_[u]) visit(child);
    }
    if (reached != holders) return std::nullopt;  // cyclic query
  }
  return tree;
}

std::vector<uint32_t> JoinTree::Roots() const {
  std::vector<uint32_t> roots;
  for (uint32_t i = 0; i < num_nodes(); ++i) {
    if (IsRoot(i)) roots.push_back(i);
  }
  return roots;
}

std::vector<uint32_t> JoinTree::Leaves() const {
  std::vector<uint32_t> leaves;
  for (uint32_t i = 0; i < num_nodes(); ++i) {
    if (IsLeaf(i)) leaves.push_back(i);
  }
  return leaves;
}

std::vector<EdgeSet> JoinTree::Components() const {
  std::vector<EdgeSet> components;
  std::vector<bool> visited(num_nodes(), false);
  for (uint32_t root : Roots()) {
    EdgeSet component;
    std::vector<uint32_t> queue{root};
    while (!queue.empty()) {
      uint32_t u = queue.back();
      queue.pop_back();
      if (visited[u]) continue;
      visited[u] = true;
      component.Insert(u);
      for (uint32_t child : children_[u]) queue.push_back(child);
    }
    components.push_back(component);
  }
  return components;
}

std::vector<EdgeSet> JoinTree::TreeComponents(EdgeSet s) const {
  UnionFind uf(num_nodes());
  for (uint32_t node = 0; node < num_nodes(); ++node) {
    if (!s.Contains(node) || parent_[node] == kNoParent) continue;
    if (s.Contains(parent_[node])) uf.Unite(node, parent_[node]);
  }
  std::vector<EdgeSet> components;
  std::vector<int> component_of_root(num_nodes(), -1);
  for (uint32_t node : s.ToVector()) {
    uint32_t root = uf.Find(node);
    if (component_of_root[root] == -1) {
      component_of_root[root] = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[static_cast<size_t>(component_of_root[root])].Insert(node);
  }
  return components;
}

std::vector<uint32_t> JoinTree::PathBetween(uint32_t a, uint32_t b) const {
  // Collect ancestors of a, then walk up from b to the first common one.
  std::vector<uint32_t> a_chain;
  for (uint32_t u = a;; u = parent_[u]) {
    a_chain.push_back(u);
    if (parent_[u] == kNoParent) break;
  }
  auto position_in_a_chain = [&](uint32_t node) -> std::optional<size_t> {
    for (size_t i = 0; i < a_chain.size(); ++i) {
      if (a_chain[i] == node) return i;
    }
    return std::nullopt;
  };
  std::vector<uint32_t> b_chain;
  for (uint32_t u = b;; u = parent_[u]) {
    if (auto pos = position_in_a_chain(u)) {
      std::vector<uint32_t> path(a_chain.begin(), a_chain.begin() + static_cast<long>(*pos) + 1);
      for (auto it = b_chain.rbegin(); it != b_chain.rend(); ++it) path.push_back(*it);
      return path;
    }
    b_chain.push_back(u);
    CP_CHECK(parent_[u] != kNoParent) << "nodes in different components";
  }
}

void JoinTree::RerootAt(uint32_t node) {
  // Reverse parent links along the node->old-root path.
  std::vector<uint32_t> chain;
  for (uint32_t u = node; u != kNoParent; u = parent_[u]) chain.push_back(u);
  for (size_t i = chain.size(); i-- > 1;) {
    uint32_t upper = chain[i];
    uint32_t lower = chain[i - 1];
    // upper was parent of lower; now lower becomes parent of upper.
    auto& upper_children = children_[upper];
    upper_children.erase(std::find(upper_children.begin(), upper_children.end(), lower));
    children_[lower].push_back(upper);
    parent_[upper] = lower;
  }
  parent_[node] = kNoParent;
}

std::string JoinTree::ToString(const Hypergraph& query) const {
  std::ostringstream oss;
  for (uint32_t root : Roots()) {
    std::vector<std::pair<uint32_t, uint32_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto [node, depth] = stack.back();
      stack.pop_back();
      oss << std::string(depth * 2, ' ') << query.edge(node).name << "\n";
      for (uint32_t child : children_[node]) stack.push_back({child, depth + 1});
    }
  }
  return oss.str();
}

}  // namespace coverpack
