#include "workload/random_queries.h"

#include <string>
#include <vector>

#include "util/logging.h"

namespace coverpack {
namespace workload {

Hypergraph RandomAcyclicQuery(Rng* rng, const RandomAcyclicOptions& options) {
  CP_CHECK_GE(options.min_edges, 1u);
  CP_CHECK_GE(options.max_edges, options.min_edges);
  uint32_t num_edges = static_cast<uint32_t>(
      rng->UniformInRange(options.min_edges, options.max_edges));

  Hypergraph::Builder builder;
  uint32_t next_attr = 0;
  std::vector<std::vector<std::string>> edge_attrs;  // by name, per edge

  auto fresh = [&]() { return "X" + std::to_string(next_attr++); };

  for (uint32_t e = 0; e < num_edges; ++e) {
    std::vector<std::string> attrs;
    if (e > 0) {
      // Attach to a random existing relation, inheriting a random nonempty
      // subset of its attributes (this preserves the join-tree property).
      const auto& parent = edge_attrs[rng->Uniform(e)];
      uint32_t shared = 1 + static_cast<uint32_t>(rng->Uniform(
                                std::min<uint64_t>(options.max_shared_attrs, parent.size())));
      std::vector<std::string> pool = parent;
      rng->Shuffle(&pool);
      for (uint32_t i = 0; i < shared; ++i) attrs.push_back(pool[i]);
    }
    uint32_t fresh_count = static_cast<uint32_t>(rng->Uniform(options.max_fresh_attrs + 1));
    if (attrs.empty() && fresh_count == 0) fresh_count = 1;  // nonempty schema
    for (uint32_t i = 0; i < fresh_count; ++i) attrs.push_back(fresh());
    builder.AddRelation("R" + std::to_string(e + 1), attrs);
    edge_attrs.push_back(std::move(attrs));
  }
  return builder.Build();
}

Hypergraph RandomDegreeTwoQuery(Rng* rng, uint32_t num_edges, uint32_t num_attrs) {
  CP_CHECK_GE(num_edges, 2u);
  CP_CHECK_GE(num_attrs, 1u);
  // Dual view: relations are vertices; each attribute connects two distinct
  // relations. First lay a spanning path so no relation ends up empty, then
  // sprinkle the remaining attributes randomly.
  std::vector<std::vector<std::string>> edge_attrs(num_edges);
  uint32_t attr = 0;
  auto connect = [&](uint32_t a, uint32_t b) {
    std::string name = "X" + std::to_string(attr++);
    edge_attrs[a].push_back(name);
    edge_attrs[b].push_back(name);
  };
  for (uint32_t e = 0; e + 1 < num_edges && attr < num_attrs; ++e) connect(e, e + 1);
  while (attr < num_attrs) {
    uint32_t a = static_cast<uint32_t>(rng->Uniform(num_edges));
    uint32_t b = static_cast<uint32_t>(rng->Uniform(num_edges));
    if (a == b) continue;
    connect(a, b);
  }
  Hypergraph::Builder builder;
  for (uint32_t e = 0; e < num_edges; ++e) {
    CP_CHECK(!edge_attrs[e].empty());
    builder.AddRelation("R" + std::to_string(e + 1), edge_attrs[e]);
  }
  return builder.Build();
}

}  // namespace workload
}  // namespace coverpack
