/// \file plan_cache.h
/// \brief Structure-keyed LRU cache of planning artifacts.
///
/// A CachedPlan bundles everything the planner derives from a query's
/// shape and its instance's size profile: the LP numbers (rho*, tau*,
/// psi*), the join-forest / twig-decomposition summary, the execution
/// strategy, and the exchange-plan skeleton (Theorem 4's load threshold L
/// and the theoretical server demand at that L). Entries are keyed by
/// (shape hash, p, stats signature) — see query_shape.h — so two
/// isomorphic queries over same-sized relations share one entry no matter
/// how they were parsed.
///
/// The cache is a deterministic LRU: hit/miss/eviction sequences depend
/// only on the lookup order, which the service keeps serial (admission
/// order), so cache counters are bit-identical at any thread count. The
/// stored canonical form guards against shape-hash collisions: a key match
/// with a different form is reported as a collision and treated as a miss.

#ifndef COVERPACK_SERVICE_PLAN_CACHE_H_
#define COVERPACK_SERVICE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "util/mutex.h"
#include "util/rational.h"
#include "util/thread_annotations.h"

namespace coverpack {
namespace service {

/// How the service executes an admitted query.
enum class ExecStrategy : uint8_t {
  kAcyclicMultiRound,  ///< Theorem 5: ComputeAcyclicJoin, optimal policy
  kOneRound,           ///< skew-aware one-round hypercube (any query)
  kOutputBalanced,     ///< output-balanced Yannakakis (connected acyclic)
};

/// Cache key: shape x sub-cluster size x relation-size profile.
struct PlanCacheKey {
  uint64_t shape_hash = 0;
  uint32_t p = 0;
  uint64_t stats_signature = 0;

  bool operator<(const PlanCacheKey& other) const {
    if (shape_hash != other.shape_hash) return shape_hash < other.shape_hash;
    if (p != other.p) return p < other.p;
    return stats_signature < other.stats_signature;
  }
  bool operator==(const PlanCacheKey& other) const {
    return shape_hash == other.shape_hash && p == other.p &&
           stats_signature == other.stats_signature;
  }
};

/// The reusable planning artifact for one (shape, p, stats) key.
struct CachedPlan {
  std::string canonical_form;  ///< collision guard (see PlanCache::Lookup)
  bool acyclic = false;
  ExecStrategy strategy = ExecStrategy::kOneRound;
  Rational rho_star;  ///< fractional edge cover number
  Rational tau_star;  ///< fractional edge packing number
  Rational psi_star;  ///< edge quasi-packing number (one-round exponent)
  uint32_t join_tree_roots = 0;      ///< components of the join forest (acyclic)
  uint32_t max_s_family_size = 0;    ///< == rho* for acyclic queries (Thm 5)
  uint64_t load_threshold = 0;       ///< Theorem 4's L for this stats profile
  uint64_t theoretical_servers = 0;  ///< server demand at L (plan skeleton)
  uint64_t plan_cost_ticks = 0;      ///< simulated cost a cold plan pays
  // Chooser artifacts (src/planner): cached so telemetry can report
  // estimated-vs-actual error without re-planning on cache hits.
  uint64_t planner_est_load = 0;     ///< chooser's estimated bottleneck load
  uint64_t planner_out_estimate = 0; ///< join-order DP's OUT estimate
  std::string join_order;            ///< DP's intra-server join order
};

/// Monotone counters describing the cache's history.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t collisions = 0;  ///< key matched but canonical form differed
  uint64_t size = 0;        ///< current entry count (gauge, not monotone)
  uint64_t capacity = 0;

  /// Counter-wise difference (for per-run deltas); size/capacity are taken
  /// from `*this` (the later snapshot).
  PlanCacheStats Since(const PlanCacheStats& earlier) const;
};

/// A bounded, deterministic LRU cache of CachedPlan entries.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity);

  /// Returns a copy of the cached plan if the key is present AND the
  /// stored canonical form matches (the collision guard). Records a hit,
  /// a miss, or a collision (counted as a miss too) and refreshes recency
  /// on hits.
  std::optional<CachedPlan> Lookup(const PlanCacheKey& key,
                                   const std::string& canonical_form);

  /// Inserts (or overwrites) the entry, evicting the least recently used
  /// entry when at capacity.
  void Insert(const PlanCacheKey& key, CachedPlan plan);

  PlanCacheStats stats() const;
  size_t size() const;

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  using LruList = std::list<std::pair<PlanCacheKey, CachedPlan>>;

  const size_t capacity_;
  mutable Mutex mutex_;
  LruList lru_ CP_GUARDED_BY(mutex_);  // front = most recently used
  std::map<PlanCacheKey, LruList::iterator> index_ CP_GUARDED_BY(mutex_);
  PlanCacheStats stats_ CP_GUARDED_BY(mutex_);
};

}  // namespace service
}  // namespace coverpack

#endif  // COVERPACK_SERVICE_PLAN_CACHE_H_
