/// \file load_stats.h
/// \brief Load-skew profiling over a LoadTracker.
///
/// The MPC load L = max over (round, server) cells hides *how* the load is
/// distributed — two runs with the same L can differ wildly in balance,
/// which is exactly what "Instance and Output Optimal Parallel Algorithms
/// for Acyclic Joins" and heterogeneous-machine MPC analyses care about.
/// ProfileLoadTracker condenses a tracker into per-round distribution
/// statistics (max/mean/percentiles over servers, skew ratio max/mean,
/// round totals) plus run-level aggregates, ready for RunReport
/// serialization.
///
/// Percentiles use the nearest-rank definition over *all* servers of the
/// round (idle servers count as zero-load), so a run that leaves most of
/// the cluster idle shows up as a high skew ratio and a low median.

#ifndef COVERPACK_TELEMETRY_LOAD_STATS_H_
#define COVERPACK_TELEMETRY_LOAD_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/json_writer.h"

namespace coverpack {

class LoadTracker;

namespace telemetry {

/// Distribution of one round's per-server loads.
struct RoundLoadStats {
  uint32_t round = 0;
  uint64_t max_load = 0;
  double mean_load = 0.0;      ///< over all servers, idle ones included
  uint64_t p50 = 0;            ///< nearest-rank percentiles over servers
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  double skew_ratio = 0.0;     ///< max / mean; 0 when the round is empty
  uint64_t total = 0;          ///< communication volume of the round
  uint32_t busy_servers = 0;   ///< servers with nonzero load
};

/// A full skew profile of one tracker (one simulated run).
struct LoadSkewProfile {
  std::string name;            ///< which run this profiles (experiment-chosen)
  uint32_t num_servers = 0;
  uint32_t num_rounds = 0;
  uint64_t max_load = 0;       ///< the MPC load L
  uint64_t total_communication = 0;
  double overall_skew_ratio = 0.0;  ///< max cell / mean cell (all rounds x servers)
  std::vector<RoundLoadStats> rounds;

  JsonValue ToJson() const;
};

/// Nearest-rank percentile (q in [0, 100]) of a load vector. Exposed for
/// testing; `loads` is taken by value because it is sorted internally.
uint64_t LoadPercentile(std::vector<uint64_t> loads, double q);

/// Profiles `tracker` into per-round and overall skew statistics. In audit
/// builds the result is cross-checked against the tracker (percentile
/// monotonicity p50 <= p90 <= p99 <= max, round totals summing to
/// TotalCommunication).
LoadSkewProfile ProfileLoadTracker(const LoadTracker& tracker, std::string name);

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_LOAD_STATS_H_
