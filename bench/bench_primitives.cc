/// \file bench_primitives.cc
/// \brief google-benchmark microbenchmarks of the MPC primitives and the
/// sequential substrate (Section 2 building blocks).
///
/// This is the only bench binary that stays outside the experiment
/// registry (bench/experiments/): it measures primitive throughput, not a
/// paper claim, so it has no RunReport to emit and no place in
/// BENCH_results.json.

#include <benchmark/benchmark.h>

#include "mpc/cluster.h"
#include "mpc/hypercube.h"
#include "mpc/primitives.h"
#include "query/catalog.h"
#include "relation/oracle.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

void BM_HashPartition(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Hypergraph q = catalog::Line3();
  Rng rng(1);
  Relation data = workload::UniformRandom(q.edge(0).attrs, n, n / 4 + 1, &rng);
  for (auto _ : state) {
    Cluster cluster(64);
    DistRelation input = DistRelation::InitialPlacement(cluster, data);
    DistRelation output =
        mpc::HashPartition(&cluster, input, AttrSet::Single(*q.FindAttribute("B")), 0);
    benchmark::DoNotOptimize(output.TotalSize());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_HashPartition)->Arg(1 << 12)->Arg(1 << 15);

void BM_DegreeByValue(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Hypergraph q = catalog::Line3();
  Rng rng(2);
  Relation data = workload::Zipf(q.edge(0).attrs, n, n / 4 + 1, 1.0, &rng);
  for (auto _ : state) {
    Cluster cluster(64);
    DistRelation input = DistRelation::InitialPlacement(cluster, data);
    uint32_t round = 0;
    auto degrees = mpc::DegreeByValue(&cluster, input, *q.FindAttribute("A"), &round);
    benchmark::DoNotOptimize(degrees.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_DegreeByValue)->Arg(1 << 12)->Arg(1 << 15);

void BM_SemiJoinMpc(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Hypergraph q = catalog::Line3();
  Rng rng(3);
  Relation left = workload::UniformRandom(q.edge(0).attrs, n, n / 4 + 1, &rng);
  Relation right = workload::UniformRandom(q.edge(1).attrs, n, n / 4 + 1, &rng);
  for (auto _ : state) {
    Cluster cluster(64);
    DistRelation dl = DistRelation::InitialPlacement(cluster, left);
    DistRelation dr = DistRelation::InitialPlacement(cluster, right);
    uint32_t round = 0;
    DistRelation result = mpc::SemiJoinMpc(&cluster, dl, dr, &round);
    benchmark::DoNotOptimize(result.TotalSize());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SemiJoinMpc)->Arg(1 << 12)->Arg(1 << 15);

void BM_HypercubeRouting(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Hypergraph q = catalog::Triangle();
  Instance instance = workload::MatchingInstance(q, n);
  mpc::ShareVector shares = mpc::OptimizeShares(q, 64);
  for (auto _ : state) {
    Cluster cluster(64);
    mpc::HypercubeResult result =
        mpc::HypercubeJoin(&cluster, q, instance, shares, 0, /*collect=*/false);
    benchmark::DoNotOptimize(result.max_receive_load);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * 3 * state.iterations());
}
BENCHMARK(BM_HypercubeRouting)->Arg(1 << 12)->Arg(1 << 15);

void BM_GenericJoinOracle(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Hypergraph q = catalog::Triangle();
  Rng rng(4);
  Instance instance = workload::UniformInstance(q, n, n / 8 + 2, &rng);
  for (auto _ : state) {
    Relation result = GenericJoin(q, instance);
    benchmark::DoNotOptimize(result.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_GenericJoinOracle)->Arg(1 << 9)->Arg(1 << 11);

void BM_AcyclicJoinCount(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Hypergraph q = catalog::Path(5);
  Rng rng(5);
  Instance instance = workload::UniformInstance(q, n, n / 4 + 1, &rng);
  auto tree = JoinTree::Build(q);
  for (auto _ : state) {
    uint64_t count = AcyclicJoinCount(q, *tree, instance);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * 5 * state.iterations());
}
BENCHMARK(BM_AcyclicJoinCount)->Arg(1 << 12)->Arg(1 << 15);

}  // namespace
}  // namespace coverpack

BENCHMARK_MAIN();
