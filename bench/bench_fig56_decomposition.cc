/// \file bench_fig56_decomposition.cc
/// \brief Regenerates Figures 5/6: twig decompositions, linear covers, and
/// the S(E) family of Theorem 3.
///
/// For each acyclic catalog query we print the twig decomposition (split
/// at internal cover nodes), the linear cover of every twig, and the
/// assembled family S(E), and verify the pivotal identity
/// max_{S in S(E)} |S| = rho* that turns Theorem 4 into Theorem 5.

#include <iostream>

#include "bench_util.h"
#include "lp/covers.h"
#include "query/catalog.h"
#include "query/decomposition.h"
#include "query/properties.h"

namespace coverpack {
namespace {

int RunBench() {
  bench::Banner("Figures 5+6",
                "twig decompositions / linear covers assemble S(E) with max set size rho*");
  bool all_ok = true;
  for (const auto& entry : catalog::StandardRoster()) {
    if (!IsAlphaAcyclic(entry.query)) continue;
    const Hypergraph& q = entry.query;
    std::cout << "--- " << entry.name << ": " << q.ToString() << "\n";
    Hypergraph reduced = Reduce(q);
    auto tree = JoinTree::Build(reduced);
    if (!tree) continue;
    EdgeSet cover = MinimumIntegralEdgeCover(reduced).edges;
    for (EdgeSet component : tree->Components()) {
      TwigDecomposition d = DecomposeTwigs(*tree, component, cover);
      std::cout << DecompositionToString(reduced, d);
    }
    std::vector<EdgeSet> family = SFamily(q);
    uint32_t max_size = 0;
    for (EdgeSet s : family) max_size = std::max(max_size, s.size());
    Rational rho = RhoStar(q);
    bool ok = rho.is_integer() && max_size == static_cast<uint32_t>(rho.num());
    all_ok = all_ok && ok;
    std::cout << "|S(E)| = " << family.size() << " sets, max set size " << max_size
              << " vs rho* = " << rho << "  [" << (ok ? "MATCH" : "DEVIATION") << "]\n";
  }
  bench::Verdict("Figures5and6", all_ok);
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace coverpack

int main() { return coverpack::RunBench(); }
