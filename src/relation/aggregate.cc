#include "relation/aggregate.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "query/join_tree.h"
#include "query/properties.h"
#include "relation/oracle.h"
#include "util/hash.h"
#include "util/logging.h"

namespace coverpack {

namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a > std::numeric_limits<uint64_t>::max() - b) return std::numeric_limits<uint64_t>::max();
  return a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) return std::numeric_limits<uint64_t>::max();
  return a * b;
}

struct VectorHash {
  size_t operator()(const std::vector<Value>& v) const { return HashVector(v); }
};

/// A relation whose rows carry semiring annotations.
struct AnnRel {
  Relation rows;
  std::vector<uint64_t> weights;
};

std::vector<Value> KeyOf(std::span<const Value> row, const std::vector<uint32_t>& cols) {
  std::vector<Value> key;
  key.reserve(cols.size());
  for (uint32_t c : cols) key.push_back(row[c]);
  return key;
}

std::vector<uint32_t> ColumnsOf(const Relation& relation, AttrSet attrs) {
  std::vector<uint32_t> cols;
  for (AttrId v : attrs.ToVector()) cols.push_back(relation.ColumnOf(v));
  return cols;
}

/// Groups an annotated relation by `out_attrs`, combining annotations.
AnnRel GroupBy(const AnnRel& input, AttrSet out_attrs, const Semiring& semiring) {
  AnnRel output;
  output.rows = Relation(out_attrs);
  std::vector<uint32_t> cols = ColumnsOf(input.rows, out_attrs);
  std::unordered_map<std::vector<Value>, uint64_t, VectorHash> groups;
  for (size_t i = 0; i < input.rows.size(); ++i) {
    auto [it, inserted] = groups.try_emplace(KeyOf(input.rows.row(i), cols),
                                             semiring.combine_identity);
    it->second = semiring.combine(it->second, input.weights[i]);
  }
  // Deterministic for a fixed standard library: groups is populated
  // single-threaded in input order, and aggregate results are compared as
  // key/value multisets downstream. Reordering here would change recorded
  // outputs, so the site is suppressed rather than rewritten.
  // cplint: allow(no-unordered-iteration)
  for (const auto& [key, value] : groups) {
    output.rows.AppendRow(std::span<const Value>(key));
    output.weights.push_back(value);
  }
  return output;
}

/// Multiplies each row's weight by the matching weight of `message`
/// (unique keys over its full schema, a subset of input's schema);
/// rows with no match are dropped (the semiring zero).
AnnRel Absorb(const AnnRel& input, const AnnRel& message, const Semiring& semiring) {
  std::vector<uint32_t> message_cols = ColumnsOf(message.rows, message.rows.attrs());
  std::unordered_map<std::vector<Value>, uint64_t, VectorHash> index;
  for (size_t i = 0; i < message.rows.size(); ++i) {
    index[KeyOf(message.rows.row(i), message_cols)] = message.weights[i];
  }
  std::vector<uint32_t> input_cols = ColumnsOf(input.rows, message.rows.attrs());
  AnnRel output;
  output.rows = Relation(input.rows.attrs());
  for (size_t i = 0; i < input.rows.size(); ++i) {
    auto it = index.find(KeyOf(input.rows.row(i), input_cols));
    if (it == index.end()) continue;
    output.rows.AppendRow(input.rows.row(i));
    output.weights.push_back(semiring.multiply(input.weights[i], it->second));
  }
  return output;
}

/// Natural join of two annotated relations with annotation multiply.
AnnRel JoinAnnotated(const AnnRel& a, const AnnRel& b, const Semiring& semiring) {
  AttrSet shared = a.rows.attrs().Intersect(b.rows.attrs());
  AttrSet out_attrs = a.rows.attrs().Union(b.rows.attrs());
  std::vector<uint32_t> a_cols = ColumnsOf(a.rows, shared);
  std::vector<uint32_t> b_cols = ColumnsOf(b.rows, shared);
  std::unordered_map<std::vector<Value>, std::vector<size_t>, VectorHash> index;
  for (size_t i = 0; i < b.rows.size(); ++i) {
    index[KeyOf(b.rows.row(i), b_cols)].push_back(i);
  }
  AnnRel output;
  output.rows = Relation(out_attrs);
  std::vector<Value> buffer(out_attrs.size());
  std::vector<AttrId> out_ids = out_attrs.ToVector();
  for (size_t i = 0; i < a.rows.size(); ++i) {
    auto it = index.find(KeyOf(a.rows.row(i), a_cols));
    if (it == index.end()) continue;
    for (size_t j : it->second) {
      for (size_t c = 0; c < out_ids.size(); ++c) {
        AttrId v = out_ids[c];
        buffer[c] = a.rows.attrs().Contains(v) ? a.rows.row(i)[a.rows.ColumnOf(v)]
                                               : b.rows.row(j)[b.rows.ColumnOf(v)];
      }
      output.rows.AppendRow(std::span<const Value>(buffer));
      output.weights.push_back(semiring.multiply(a.weights[i], b.weights[j]));
    }
  }
  return output;
}

/// Builds Q extended with a virtual hyperedge over exactly `output_attrs`.
Hypergraph ExtendWithVirtualEdge(const Hypergraph& query, AttrSet output_attrs) {
  Hypergraph::Builder builder;
  for (AttrId v = 0; v < query.num_attrs(); ++v) builder.AddAttribute(query.attr_name(v));
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    std::vector<AttrId> ids;
    for (AttrId v : query.edge(e).attrs.ToVector()) ids.push_back(v);
    builder.AddRelationByIds(query.edge(e).name, ids);
  }
  std::vector<AttrId> y_ids;
  for (AttrId v : output_attrs.ToVector()) y_ids.push_back(v);
  builder.AddRelationByIds("__virtual_y", y_ids);
  return builder.Build();
}

/// Bottom-up message passing over one component of the join tree; returns
/// the message of `node` toward its parent (grouped on `up_attrs`).
AnnRel MessageUp(const Hypergraph& extended, const JoinTree& tree, uint32_t node,
                 AttrSet up_attrs, uint32_t virtual_id, const Instance& instance,
                 const Annotations& annotations, const Semiring& semiring) {
  CP_CHECK(node != virtual_id) << "the virtual root never sends messages";
  AnnRel local;
  local.rows = instance[node];
  if (node < annotations.size() && !annotations[node].empty()) {
    local.weights = annotations[node];
  } else {
    local.weights.assign(local.rows.size(), semiring.multiply_identity);
  }
  for (uint32_t child : tree.children(node)) {
    AttrSet child_up = extended.edge(child).attrs.Intersect(extended.edge(node).attrs);
    AnnRel message = MessageUp(extended, tree, child, child_up, virtual_id, instance,
                               annotations, semiring);
    local = Absorb(local, message, semiring);
  }
  return GroupBy(local, up_attrs, semiring);
}

}  // namespace

Semiring CountingSemiring() {
  return Semiring{[](uint64_t a, uint64_t b) { return SatAdd(a, b); }, 0,
                  [](uint64_t a, uint64_t b) { return SatMul(a, b); }, 1};
}

Semiring TropicalSemiring() {
  return Semiring{[](uint64_t a, uint64_t b) { return std::min(a, b); },
                  std::numeric_limits<uint64_t>::max(),
                  [](uint64_t a, uint64_t b) { return SatAdd(a, b); }, 0};
}

Annotations UnitAnnotations(const Instance& instance) {
  Annotations annotations(instance.num_relations());
  for (size_t e = 0; e < instance.num_relations(); ++e) {
    annotations[e].assign(instance[e].size(), 1);
  }
  return annotations;
}

bool IsFreeConnex(const Hypergraph& query, AttrSet output_attrs) {
  CP_CHECK(output_attrs.IsSubsetOf(query.AllAttrs()));
  if (output_attrs.empty()) return IsAlphaAcyclic(query);
  return IsAlphaAcyclic(ExtendWithVirtualEdge(query, output_attrs));
}

AggregateResult JoinAggregate(const Hypergraph& query, const Instance& instance,
                              const Annotations& annotations, AttrSet output_attrs,
                              const Semiring& semiring) {
  instance.CheckAgainst(query);
  CP_CHECK(IsFreeConnex(query, output_attrs))
      << "JoinAggregate requires a free-connex query: " << query.ToString();

  if (output_attrs.empty()) {
    AggregateResult result;
    result.keys = Relation(AttrSet());
    result.values.push_back(JoinAggregateScalar(query, instance, annotations, semiring));
    return result;
  }

  Hypergraph extended = ExtendWithVirtualEdge(query, output_attrs);
  uint32_t virtual_id = extended.num_edges() - 1;
  auto tree = JoinTree::Build(extended);
  CP_CHECK(tree.has_value());
  tree->RerootAt(virtual_id);

  // Components without the virtual edge contribute scalar factors.
  uint64_t scalar_factor = semiring.multiply_identity;
  bool scalar_zero = false;
  for (EdgeSet component : tree->Components()) {
    if (component.Contains(virtual_id)) continue;
    uint32_t root = JoinTree::kNoParent;
    for (uint32_t node : component.ToVector()) {
      if (tree->IsRoot(node)) root = node;
    }
    CP_CHECK(root != JoinTree::kNoParent);
    AnnRel message = MessageUp(extended, *tree, root, AttrSet(), virtual_id, instance,
                               annotations, semiring);
    if (message.rows.attrs().empty() && message.weights.empty()) {
      scalar_zero = true;  // an empty component: the whole join is empty
    } else {
      CP_CHECK_EQ(message.weights.size(), 1u);
      scalar_factor = semiring.multiply(scalar_factor, message.weights[0]);
    }
  }

  AggregateResult result;
  result.keys = Relation(output_attrs);
  if (scalar_zero) return result;

  // Combine the virtual root's children messages by natural join.
  AnnRel combined;
  bool first = true;
  for (uint32_t child : tree->children(virtual_id)) {
    AttrSet child_up = extended.edge(child).attrs.Intersect(output_attrs);
    AnnRel message = MessageUp(extended, *tree, child, child_up, virtual_id, instance,
                               annotations, semiring);
    combined = first ? std::move(message) : JoinAnnotated(combined, message, semiring);
    first = false;
  }
  if (first) {
    // No children: y attrs uncovered is impossible (every attribute occurs
    // in some edge, and that edge connects to the virtual node).
    CP_CHECK(false) << "virtual root without children";
  }
  CP_CHECK(combined.rows.attrs() == output_attrs)
      << "free-connex GHD must surface all output attributes";

  for (size_t i = 0; i < combined.rows.size(); ++i) {
    result.keys.AppendRow(combined.rows.row(i));
    result.values.push_back(semiring.multiply(combined.weights[i], scalar_factor));
  }
  return result;
}

uint64_t JoinAggregateScalar(const Hypergraph& query, const Instance& instance,
                             const Annotations& annotations, const Semiring& semiring) {
  instance.CheckAgainst(query);
  auto tree = JoinTree::Build(query);
  CP_CHECK(tree.has_value()) << "scalar aggregate requires an alpha-acyclic query";
  uint64_t total = semiring.multiply_identity;
  for (EdgeSet component : tree->Components()) {
    uint32_t root = JoinTree::kNoParent;
    for (uint32_t node : component.ToVector()) {
      if (tree->IsRoot(node)) root = node;
    }
    AnnRel message = MessageUp(query, *tree, root, AttrSet(), /*virtual_id=*/UINT32_MAX,
                               instance, annotations, semiring);
    if (message.weights.empty()) return semiring.combine_identity;  // empty join
    CP_CHECK_EQ(message.weights.size(), 1u);
    total = semiring.multiply(total, message.weights[0]);
  }
  return total;
}

AggregateResult JoinAggregateBruteForce(const Hypergraph& query, const Instance& instance,
                                        const Annotations& annotations, AttrSet output_attrs,
                                        const Semiring& semiring) {
  Relation joined = GenericJoin(query, instance);
  // Per relation: map from full row to annotation (rows are unique).
  std::vector<std::unordered_map<std::vector<Value>, uint64_t, VectorHash>> lookup(
      query.num_edges());
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    for (size_t i = 0; i < instance[e].size(); ++i) {
      auto row = instance[e].row(i);
      uint64_t weight = (e < annotations.size() && !annotations[e].empty())
                            ? annotations[e][i]
                            : semiring.multiply_identity;
      lookup[e][std::vector<Value>(row.begin(), row.end())] = weight;
    }
  }
  std::unordered_map<std::vector<Value>, uint64_t, VectorHash> groups;
  std::vector<uint32_t> out_cols = ColumnsOf(joined, output_attrs);
  for (size_t i = 0; i < joined.size(); ++i) {
    auto row = joined.row(i);
    uint64_t weight = semiring.multiply_identity;
    for (uint32_t e = 0; e < query.num_edges(); ++e) {
      std::vector<uint32_t> cols = ColumnsOf(joined, query.edge(e).attrs);
      weight = semiring.multiply(weight, lookup[e].at(KeyOf(row, cols)));
    }
    auto [it, inserted] = groups.try_emplace(KeyOf(row, out_cols), semiring.combine_identity);
    it->second = semiring.combine(it->second, weight);
  }
  AggregateResult result;
  result.keys = Relation(output_attrs);
  // Same as SemiringGroupBy above: single-threaded deterministic fill,
  // multiset comparison downstream; reordering would change recorded outputs.
  // cplint: allow(no-unordered-iteration)
  for (const auto& [key, value] : groups) {
    result.keys.AppendRow(std::span<const Value>(key));
    result.values.push_back(value);
  }
  return result;
}

}  // namespace coverpack
