/// Cross-cutting invariants of the core algorithms: constant rounds,
/// bounded server allocation, load within a constant of the planned L, and
/// share-optimizer sanity.

#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "mpc/hypercube.h"
#include "query/catalog.h"
#include "query/properties.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

struct InvariantCase {
  catalog::NamedQuery entry;
  uint32_t p;
};

void PrintTo(const InvariantCase& c, std::ostream* os) {
  *os << c.entry.name << " p=" << c.p;
}

class AcyclicInvariantsTest : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(AcyclicInvariantsTest, LoadRoundsServersWithinTheory) {
  const auto& [entry, p] = GetParam();
  Instance instance = workload::MatchingInstance(entry.query, 4000);
  AcyclicRunOptions options;
  options.collect = false;
  options.p = p;
  AcyclicRunResult run = ComputeAcyclicJoin(entry.query, instance, options);
  // Load within a constant of the planned threshold.
  EXPECT_LE(run.max_load, 16 * run.load_threshold) << entry.name;
  // Constant rounds (query-size dependent only).
  EXPECT_LE(run.rounds, 8u * entry.query.num_edges()) << entry.name;
  // Server allocation within a constant of the budget.
  EXPECT_LE(run.servers_used, 16ull * p + 16) << entry.name;
}

std::vector<InvariantCase> InvariantCases() {
  std::vector<InvariantCase> cases;
  for (const auto& entry : catalog::StandardRoster()) {
    if (!IsAlphaAcyclic(entry.query)) continue;
    for (uint32_t p : {8u, 64u, 512u}) cases.push_back({entry, p});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Catalog, AcyclicInvariantsTest,
                         ::testing::ValuesIn(InvariantCases()));

TEST(AcyclicInvariantsTest, RoundCountIsStableAcrossP) {
  // Rounds depend on the query, not on p (O(1) in data complexity).
  Hypergraph q = catalog::Path(4);
  Instance instance = workload::MatchingInstance(q, 4000);
  std::vector<uint32_t> rounds;
  for (uint32_t p : {4u, 64u, 1024u}) {
    AcyclicRunOptions options;
    options.collect = false;
    options.p = p;
    rounds.push_back(ComputeAcyclicJoin(q, instance, options).rounds);
  }
  EXPECT_EQ(rounds[0], rounds[1]);
  EXPECT_EQ(rounds[1], rounds[2]);
}

TEST(SharesForSizesTest, GridFitsAndBeatsNaive) {
  Hypergraph q = catalog::Triangle();
  std::vector<uint64_t> sizes{10000, 10000, 10000};
  mpc::ShareVector shares = mpc::OptimizeSharesForSizes(q, sizes, 64);
  EXPECT_LE(shares.grid_size, 64u);
  // Symmetric sizes give symmetric shares 4,4,4.
  EXPECT_EQ(shares.shares, (std::vector<uint32_t>{4, 4, 4}));
}

TEST(SharesForSizesTest, AsymmetricSizesSkewShares) {
  // One huge relation: its attributes deserve the shares.
  Hypergraph q = catalog::Line3();  // R1(A,B), R2(B,C), R3(C,D)
  std::vector<uint64_t> sizes{1000000, 100, 100};
  mpc::ShareVector shares = mpc::OptimizeSharesForSizes(q, sizes, 64);
  AttrId a = *q.FindAttribute("A");
  AttrId b = *q.FindAttribute("B");
  AttrId d = *q.FindAttribute("D");
  EXPECT_GE(shares.shares[a] * shares.shares[b], 16u);
  EXPECT_EQ(shares.shares[d], 1u);
}

TEST(SharesForSizesTest, UsesFullBudgetWhenProfitable) {
  // The LP degeneracy case: a 4-attribute query where some optimal LP
  // vertices under-use the grid; the greedy must reach utilization that
  // covers the dominant relations.
  Hypergraph q = catalog::Line3();
  std::vector<uint64_t> sizes{10000, 10000, 10000};
  mpc::ShareVector shares = mpc::OptimizeSharesForSizes(q, sizes, 64);
  EXPECT_GE(shares.grid_size, 32u);
}

TEST(ExplicitThresholdTest, SmallerLNeedsMoreServers) {
  Hypergraph q = catalog::Line3();
  Instance instance = workload::MatchingInstance(q, 4000);
  AcyclicRunOptions coarse;
  coarse.collect = false;
  coarse.load_threshold = 2000;
  AcyclicRunOptions fine = coarse;
  fine.load_threshold = 250;
  AcyclicRunResult coarse_run = ComputeAcyclicJoin(q, instance, coarse);
  AcyclicRunResult fine_run = ComputeAcyclicJoin(q, instance, fine);
  EXPECT_GT(fine_run.servers_used, coarse_run.servers_used);
  EXPECT_LE(fine_run.max_load, coarse_run.max_load * 2);
}

}  // namespace
}  // namespace coverpack
