/// \file cluster_metrics.h
/// \brief Bridges the elastic-cluster ledger into a MetricsRegistry (and
/// therefore into RunReport / BENCH_results.json).
///
/// Same shape as resilience_metrics.h: cp_telemetry links cp_cluster, the
/// cluster layer exposes a plain-struct snapshot, and this translates it
/// into the "cluster.*" metric keys documented in EXPERIMENTS.md.

#ifndef COVERPACK_TELEMETRY_CLUSTER_METRICS_H_
#define COVERPACK_TELEMETRY_CLUSTER_METRICS_H_

#include "telemetry/metrics.h"

namespace coverpack {
namespace telemetry {

/// Writes the current ClusterTelemetry ledger into `registry`: cluster.*
/// counters (runs, migrations, servers joined/left, tuples migrated with
/// leaver/joiner splits, checkpoint accounting), the max single-server
/// migration receive gauge, and the per-migration volume histogram. No-op
/// when no elastic pipeline ran since the last ClusterTelemetry::Reset(),
/// so non-cluster reports keep their schema byte-identical. Call from the
/// thread that owns `registry`.
void SnapshotClusterTelemetryInto(MetricsRegistry* registry);

}  // namespace telemetry
}  // namespace coverpack

#endif  // COVERPACK_TELEMETRY_CLUSTER_METRICS_H_
