#include "relation/oracle.h"

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"
#include "relation/agm.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

TEST(OracleTest, TriangleByHand) {
  Hypergraph q = catalog::Triangle();
  Instance instance(q);
  // R1(A,B), R2(B,C), R3(C,A): one triangle (1,2,3) plus noise.
  instance[0].AppendRow({1, 2});
  instance[0].AppendRow({1, 5});
  instance[1].AppendRow({2, 3});
  instance[1].AppendRow({5, 9});
  instance[2].AppendRow({1, 3});  // schema {C,A} stores rows as (A, C)
  Relation result = GenericJoin(q, instance);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.row(0)[0], 1u);  // A
  EXPECT_EQ(result.row(0)[1], 2u);  // B
  EXPECT_EQ(result.row(0)[2], 3u);  // C
}

TEST(OracleTest, EmptyRelationEmptyJoin) {
  Hypergraph q = catalog::Line3();
  Instance instance(q);
  instance[0].AppendRow({1, 2});
  // instance[1] empty
  instance[2].AppendRow({3, 4});
  EXPECT_TRUE(GenericJoin(q, instance).empty());
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree);
  EXPECT_EQ(AcyclicJoinCount(q, *tree, instance), 0u);
}

TEST(OracleTest, CartesianProductCount) {
  Hypergraph q = ParseQuery("R1(A), R2(B)");
  Instance instance(q);
  for (Value v = 0; v < 5; ++v) instance[0].AppendRow({v});
  for (Value v = 0; v < 7; ++v) instance[1].AppendRow({v});
  EXPECT_EQ(GenericJoin(q, instance).size(), 35u);
  EXPECT_EQ(JoinCount(q, instance), 35u);
}

class CountAgreementTest : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

/// Property: AcyclicJoinCount agrees with materializing GenericJoin on
/// random instances, across query shapes and seeds.
TEST_P(CountAgreementTest, CountMatchesMaterialization) {
  auto [text, seed] = GetParam();
  Hypergraph q = ParseQuery(text);
  Rng rng(seed);
  Instance instance = workload::UniformInstance(q, 60, 12, &rng);
  uint64_t materialized = GenericJoin(q, instance).size();
  EXPECT_EQ(JoinCount(q, instance), materialized) << text << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountAgreementTest,
    ::testing::Combine(::testing::Values("R1(A,B), R2(B,C), R3(C,D)",
                                         "R1(A,B), R2(A,C), R3(A,D)",
                                         "R0(A,B,C), R1(A,B,D), R2(B,C,E), R3(A,C,F)",
                                         "R1(A,B), R2(B,C), R3(C,A)",
                                         "R1(A,B,C), R2(D,E,F), R3(A,D), R4(B,E), R5(C,F)"),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(OracleTest, SemiJoinReduceRemovesDanglers) {
  Hypergraph q = catalog::Line3();
  Instance instance(q);
  instance[0].AppendRow({1, 2});
  instance[0].AppendRow({8, 9});  // dangling: B=9 unmatched
  instance[1].AppendRow({2, 3});
  instance[2].AppendRow({3, 4});
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree);
  Instance reduced = SemiJoinReduce(q, *tree, instance);
  EXPECT_EQ(reduced[0].size(), 1u);
  EXPECT_EQ(reduced[1].size(), 1u);
  EXPECT_EQ(reduced[2].size(), 1u);
  // Reduction preserves the join result.
  EXPECT_TRUE(GenericJoin(q, reduced).SameContentAs(GenericJoin(q, instance)));
}

TEST(OracleTest, SemiJoinReducePropertyOnRandomInstances) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Hypergraph q = catalog::Path(4);
    Rng rng(seed);
    Instance instance = workload::UniformInstance(q, 80, 10, &rng);
    auto tree = JoinTree::Build(q);
    ASSERT_TRUE(tree);
    Instance reduced = SemiJoinReduce(q, *tree, instance);
    EXPECT_TRUE(GenericJoin(q, reduced).SameContentAs(GenericJoin(q, instance)));
    // Every remaining tuple participates in some join result.
    uint64_t count = AcyclicJoinCount(q, *tree, reduced);
    if (count == 0) {
      for (uint32_t e = 0; e < q.num_edges(); ++e) EXPECT_TRUE(reduced[e].empty());
    }
  }
}

TEST(OracleTest, SubjoinSizeExample32Style) {
  // Subjoin multiplies over tree-connected components (Definition 3.1).
  Hypergraph q = catalog::Path(3);  // R1(X0,X1) R2(X1,X2) R3(X2,X3)
  Instance instance(q);
  for (Value v = 0; v < 4; ++v) {
    instance[0].AppendRow({v, v});
    instance[1].AppendRow({v, v});
    instance[2].AppendRow({v, v});
  }
  auto tree = JoinTree::Build(q);
  ASSERT_TRUE(tree);
  EdgeSet ends;  // R1 and R3: disconnected on the tree
  ends.Insert(0);
  ends.Insert(2);
  EXPECT_EQ(SubjoinSize(q, *tree, instance, ends), 16u);  // 4 * 4
  EdgeSet all = q.AllEdges();
  EXPECT_EQ(SubjoinSize(q, *tree, instance, all), 4u);  // the diagonal join
  EXPECT_EQ(SubjoinSize(q, *tree, instance, EdgeSet()), 1u);
}

TEST(OracleTest, AgmBoundUniformMatchesRhoStar) {
  // Triangle: N^(3/2).
  EXPECT_NEAR(AgmBoundUniform(catalog::Triangle(), 100), 1000.0, 1e-6);
  // Box join: N^2.
  EXPECT_NEAR(AgmBoundUniform(catalog::BoxJoin(), 100), 10000.0, 1e-6);
}

TEST(OracleTest, AgmBoundDominatesActualOutput) {
  for (uint64_t seed : {5u, 6u}) {
    Hypergraph q = catalog::Triangle();
    Rng rng(seed);
    Instance instance = workload::UniformInstance(q, 50, 8, &rng);
    double bound = AgmBound(q, instance);
    EXPECT_GE(bound * 1.01, static_cast<double>(GenericJoin(q, instance).size()));
  }
}

}  // namespace
}  // namespace coverpack
