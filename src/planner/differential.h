/// \file differential.h
/// \brief Differential harness for the plan chooser: run every applicable
/// algorithm on one (query, instance, p) and compare the chooser's pick
/// against the actual bottleneck loads.
///
/// This is the oracle both the planner differential test and the
/// planner_ablation bench experiment share. EvaluateCase builds the
/// statistics, asks the chooser, then *executes the whole menu* — the
/// one-round skew-aware hypercube always, the Theorem 5 multi-round run
/// when a join tree exists, the output-balanced run when that tree is a
/// single component — and records each run's actual max load plus its
/// simulated ticks under the planner's clock constants. The outcome knows
/// the best actual load, whether the chooser's pick landed within a given
/// slack of it, and how to print a full (query, stats, cost table, actual
/// runs) repro when it did not.
///
/// BuildDifferentialCorpus generates the seeded workload the claims are
/// checked over: named catalog shapes plus random acyclic / degree-two
/// queries under matching (skew-free), uniform, and Zipf-skewed instances.
/// Everything is derived from the one seed — no wall clock, no global rng
/// — so every failure is replayable from the case name alone.

#ifndef COVERPACK_PLANNER_DIFFERENTIAL_H_
#define COVERPACK_PLANNER_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "planner/plan_chooser.h"
#include "planner/stats.h"
#include "query/hypergraph.h"
#include "relation/instance.h"

namespace coverpack {
namespace planner {

/// One algorithm's measured run on one case.
struct AlgorithmRun {
  Algorithm algorithm = Algorithm::kOneRound;
  uint64_t actual_load = 0;   ///< measured bottleneck load (tuples)
  uint32_t rounds = 0;
  uint64_t actual_ticks = 0;  ///< planner-clock ticks of the real run
  uint64_t output_count = 0;
};

/// One corpus entry. The name encodes generator + seed index, so a failing
/// case is reconstructible from the printed repro alone.
struct DifferentialCase {
  std::string name;
  Hypergraph query;
  Instance instance;
};

/// The chooser's decision next to the whole menu's measured truth.
struct DifferentialOutcome {
  PlanDecision decision;
  StatsSnapshot stats;
  uint32_t p = 0;
  std::vector<AlgorithmRun> runs;  ///< ascending Algorithm order, applicable only
  uint64_t chosen_actual_load = 0;
  uint64_t chosen_actual_ticks = 0;
  uint64_t best_actual_load = 0;
  Algorithm best_algorithm = Algorithm::kOneRound;

  /// True when the chosen algorithm's measured load is within `slack`
  /// (multiplicative, e.g. 1.10 = 10%) of the best measured load — with
  /// the best floored at one balanced input share (total rows / p): the
  /// input must reside somewhere, so any pick at or below that floor is
  /// as good as optimal even when a near-empty join let some algorithm
  /// measure an (incomparable) load of zero.
  bool ChooserWithin(double slack) const;

  /// Full repro block: query, per-relation stats, the cost table, and the
  /// measured run of every applicable algorithm.
  std::string Repro(const std::string& case_name, const Hypergraph& query,
                    uint32_t p) const;
};

/// Runs the chooser and the full applicable menu on one case.
DifferentialOutcome EvaluateCase(const Hypergraph& query, const Instance& instance,
                                 uint32_t p);

/// The seeded corpus: a fixed block of named catalog shapes (matching,
/// uniform, and Zipf instances) followed by `random_cases` generated
/// queries cycling through {acyclic x matching, acyclic x uniform,
/// acyclic x zipf, degree-two x uniform}.
std::vector<DifferentialCase> BuildDifferentialCorpus(uint64_t seed,
                                                      uint32_t random_cases);

}  // namespace planner
}  // namespace coverpack

#endif  // COVERPACK_PLANNER_DIFFERENTIAL_H_
