#include "lp/packing_provable.h"

#include "lp/simplex.h"
#include "query/properties.h"
#include "util/logging.h"

namespace coverpack {

namespace {

/// The constant-small cap: x_v <= 1 - kEpsilon (Definition 5.4 requires
/// max_v x_v <= 1 - epsilon for some constant epsilon; we fix 1/8).
const Rational kSmallCap(7, 8);

/// Sum of x over the attributes of edge e.
Rational EdgeSum(const Hypergraph& query, const std::vector<Rational>& x, EdgeId e) {
  Rational sum(0);
  for (AttrId v : query.edge(e).attrs.ToVector()) sum += x[v];
  return sum;
}

/// Neighbors Gamma(e) = edges sharing a vertex with e (excluding e).
EdgeSet Neighbors(const Hypergraph& query, EdgeId e) {
  EdgeSet neighbors;
  for (uint32_t f = 0; f < query.num_edges(); ++f) {
    if (f != e && query.edge(f).attrs.Intersects(query.edge(e).attrs)) {
      neighbors.Insert(f);
    }
  }
  return neighbors;
}

/// Checks the structural preconditions (1) and (2) of Definition 5.4.
bool CheckStructure(const Hypergraph& query, std::string* reason) {
  if (!query.IsReduced()) {
    *reason = "query is not reduced";
    return false;
  }
  if (!IsDegreeTwo(query)) {
    *reason = "query is not degree-two";
    return false;
  }
  if (!DegreeTwoHasNoOddCycle(query)) {
    *reason = "query has an odd-length cycle";
    return false;
  }
  return true;
}

}  // namespace

PackingProvability AnalyzeWithCover(const Hypergraph& query, const VertexWeighting& x) {
  PackingProvability result;
  result.rho_star = RhoStar(query);
  result.tau_star = TauStar(query);

  if (!CheckStructure(query, &result.reason)) return result;

  // x must be a valid vertex cover.
  CP_CHECK_EQ(x.weights.size(), query.num_attrs());
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (EdgeSum(query, x.weights, e) < Rational(1)) {
      result.reason = "witness is not a vertex cover";
      return result;
    }
  }
  // x must be optimal: by duality its total equals tau*.
  Rational total(0);
  for (AttrId v : query.AllAttrs().ToVector()) total += x.weights[v];
  if (total != result.tau_star) {
    result.reason = "witness cover is not optimal (total " + total.ToString() +
                    " vs tau* " + result.tau_star.ToString() + ")";
    return result;
  }
  // Constant-small.
  for (AttrId v : query.AllAttrs().ToVector()) {
    if (x.weights[v] > kSmallCap) {
      result.reason = "witness cover is not constant-small";
      return result;
    }
  }
  // Every edge has at most one probabilistic neighbor.
  std::vector<EdgeId> probabilistic;
  EdgeSet prob_set;
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (EdgeSum(query, x.weights, e) > Rational(1)) {
      probabilistic.push_back(e);
      prob_set.Insert(e);
    }
  }
  for (uint32_t e = 0; e < query.num_edges(); ++e) {
    if (Neighbors(query, e).Intersect(prob_set).size() > 1) {
      result.reason = "edge " + query.edge(e).name + " has more than one probabilistic neighbor";
      return result;
    }
  }

  result.provable = true;
  result.cover = VertexWeighting{total, x.weights};
  result.probabilistic = probabilistic;
  return result;
}

PackingProvability AnalyzePackingProvable(const Hypergraph& query) {
  PackingProvability failure;
  failure.rho_star = RhoStar(query);
  failure.tau_star = TauStar(query);
  if (!CheckStructure(query, &failure.reason)) return failure;

  // Attempt 1: the plain LP optimum.
  {
    VertexWeighting x = FractionalVertexCover(query);
    PackingProvability attempt = AnalyzeWithCover(query, x);
    if (attempt.provable) return attempt;
  }

  // Attempt 2: for each candidate probabilistic set P, force equality on
  // all other edges and the constant-small cap, and check optimality.
  uint32_t num_attrs = query.num_attrs();
  for (SubsetIterator it(query.AllEdges()); !it.Done(); it.Next()) {
    EdgeSet p = it.Current();
    LinearProgram lp(num_attrs);
    for (uint32_t e = 0; e < query.num_edges(); ++e) {
      std::vector<Rational> row(num_attrs, Rational(0));
      for (AttrId v : query.edge(e).attrs.ToVector()) row[v] = Rational(1);
      if (p.Contains(e)) {
        lp.AddGeq(row, Rational(1));
      } else {
        lp.AddEq(row, Rational(1));
      }
    }
    for (AttrId v : query.AllAttrs().ToVector()) {
      std::vector<Rational> row(num_attrs, Rational(0));
      row[v] = Rational(1);
      lp.AddLeq(row, kSmallCap);
    }
    std::vector<Rational> objective(num_attrs, Rational(0));
    for (AttrId v : query.AllAttrs().ToVector()) objective[v] = Rational(1);
    lp.SetObjective(objective);
    LpResult solved = lp.Minimize();
    if (solved.status != LpStatus::kOptimal) continue;
    if (solved.objective != failure.tau_star) continue;  // not an optimal cover
    VertexWeighting x{solved.objective, solved.solution};
    PackingProvability attempt = AnalyzeWithCover(query, x);
    if (attempt.provable) return attempt;
  }

  failure.reason = "no optimal constant-small witness cover found";
  return failure;
}

}  // namespace coverpack
