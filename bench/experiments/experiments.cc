#include "experiments/experiments.h"

#include <algorithm>
#include <cctype>
#include <iostream>

#include "cluster/cluster_telemetry.h"
#include "experiments/runners.h"
#include "mpc/exchange.h"
#include "resilience/fault_injector.h"
#include "telemetry/cluster_metrics.h"
#include "telemetry/exchange_metrics.h"
#include "telemetry/memory_metrics.h"
#include "telemetry/metrics.h"
#include "telemetry/resilience_metrics.h"
#include "util/arena.h"
#include "util/hash.h"

namespace coverpack {
namespace bench {

const std::vector<Experiment>& AllExperiments() {
  static const std::vector<Experiment> kExperiments = {
      {"table1_complexity", "Table 1", "Table1",
       "one-round ~ N/p^(1/psi*); multi-round acyclic ~ N/p^(1/rho*) (Thm 5); "
       "cyclic lower bound ~ N/p^(1/tau*) (Thms 6/7)",
       /*fast=*/true, &RunTable1Complexity},
      {"fig1_classification", "Figure 1", "Figure1",
       "classification of join queries into nested structural classes",
       /*fast=*/true, &RunFig1Classification},
      {"fig2_box_join", "Figure 2", "Figure2",
       "box join: rho* = 2 ({R1,R2}), tau* = 3 ({R3,R4,R5})",
       /*fast=*/true, &RunFig2BoxJoin},
      {"fig3_cover_vs_pack", "Figure 3", "Figure3",
       "rho* vs tau* splits reduced queries into three regions; psi* >= both",
       /*fast=*/true, &RunFig3CoverVsPack},
      {"fig4_join_tree", "Figure 4", "Figure4",
       "the example acyclic query has a valid join tree; rho* = 6",
       /*fast=*/true, &RunFig4JoinTree},
      {"fig56_decomposition", "Figures 5+6", "Figures5and6",
       "twig decompositions / linear covers assemble S(E) with max set size rho*",
       /*fast=*/true, &RunFig56Decomposition},
      {"fig7_packing_provable", "Figure 7", "Figure7",
       "edge-packing-provable degree-two joins (reduced, no odd cycle, "
       "constant-small witness cover)",
       /*fast=*/true, &RunFig7PackingProvable},
      {"thm2_subjoin_load", "Theorem 2", "Theorem2",
       "conservative run: load O(L) with L = max_S (|subjoin(S)|/p)^(1/|S|)",
       /*fast=*/true, &RunThm2SubjoinLoad},
      {"thm5_optimal_acyclic", "Theorem 5", "Theorem5",
       "acyclic joins run in O(1) rounds with load O(N / p^(1/rho*))",
       /*fast=*/false, &RunThm5OptimalAcyclic},
      {"thm5_random_queries", "Theorem 5 (random shapes)", "Theorem5Random",
       "load exponent -1/rho* on randomly generated acyclic queries",
       /*fast=*/false, &RunThm5RandomQueries},
      {"thm6_box_lower", "Theorem 6", "Theorem6",
       "box join needs load Omega(N / p^(1/3)) in O(1) rounds",
       /*fast=*/false, &RunThm6BoxLower},
      {"thm7_degree_two", "Theorem 7", "Theorem7",
       "edge-packing-provable degree-two joins need load Omega(N / p^(1/tau*))",
       /*fast=*/false, &RunThm7DegreeTwo},
      {"ex34_gap", "Example 3.4", "Example3.4",
       "conservative threshold N/p^(1/7) vs worst-case-optimal N/p^(1/6) on the "
       "Figure 4 hard instance",
       /*fast=*/true, &RunEx34Gap},
      {"intro_gap", "Section 1.3", "Section1.3",
       "multi-round beats one-round by sqrt(p) on the semi-join example and by "
       "p^((k-1)/k) on star-dual joins",
       /*fast=*/false, &RunIntroGap},
      {"ablation_policy", "Ablation", "Ablation",
       "S^x choice and threshold planner, factored apart",
       /*fast=*/false, &RunAblationPolicy},
      {"em_reduction", "Section 1.4 (EM corollary)", "EMReduction",
       "acyclic joins in EM with O(N^rho* / (M^(rho*-1) B)) I/Os via the "
       "MPC->EM reduction",
       /*fast=*/true, &RunEmReduction},
      {"output_sensitivity", "Output sensitivity (Sec. 1.3)", "OutputSensitivity",
       "output-balanced O(N/p + OUT/p) vs Theorem 5's N/p^(1/rho*): crossover "
       "as OUT approaches the AGM bound",
       /*fast=*/false, &RunOutputSensitivity},
      {"resilience_overhead", "Resilience overhead", "ResilienceOverhead",
       "under injected crashes/stragglers results and loads stay bit-identical; "
       "recovery resends at most one round's bottleneck load per crash and the "
       "uniform-speed makespan keeps the N/p^(1/rho*) exponent",
       /*fast=*/true, &RunResilienceOverhead},
      {"service_throughput", "Query service throughput", "ServiceThroughput",
       "a warm structure-keyed plan cache raises service throughput and never "
       "raises p99; cached plans reproduce standalone pipeline loads "
       "byte-for-byte; isomorphic query shapes share one cache entry",
       /*fast=*/true, &RunServiceThroughput},
      {"planner_ablation", "Plan chooser ablation", "PlannerAblation",
       "the cost-based chooser lands within 10% of the best measured load on "
       ">= 95% of a seeded differential corpus and never loses the "
       "theoretical exponent (<= 4x best on every case)",
       /*fast=*/true, &RunPlannerAblation},
      {"cluster_elastic", "Heterogeneous elastic cluster", "ClusterElastic",
       "speed-aware placement never loses to uniform placement and keeps the "
       "N/p^(1/rho*) exponent; elastic join/leave migrations conserve every "
       "row, are byte-invisible when no event fires, and recover "
       "bit-identically under a crash storm",
       /*fast=*/true, &RunClusterElastic},
  };
  return kExperiments;
}

const Experiment* FindExperiment(const std::string& id) {
  for (const Experiment& experiment : AllExperiments()) {
    if (id == experiment.id) return &experiment;
  }
  return nullptr;
}

namespace {

std::string Lowered(const std::string& s) {
  std::string lowered = s;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return lowered;
}

/// Full-string glob match: '*' spans any run (including empty), '?' any
/// one character. Both inputs are expected pre-lowered. Iterative
/// backtracking over the last '*', linear in practice.
bool GlobMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0;
  size_t p = 0;
  size_t star = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace

bool ExperimentMatchesFilter(const Experiment& experiment, const std::string& filter) {
  std::string needle = Lowered(filter);
  // A wildcard makes the term a whole-id glob ("thm5*"); otherwise it
  // keeps the historical case-insensitive substring semantics.
  if (needle.find('*') != std::string::npos || needle.find('?') != std::string::npos) {
    return GlobMatch(Lowered(experiment.id), needle) ||
           GlobMatch(Lowered(experiment.display_id), needle);
  }
  return Lowered(experiment.id).find(needle) != std::string::npos ||
         Lowered(experiment.display_id).find(needle) != std::string::npos;
}

int RunExperimentStandalone(const std::string& id) {
  const Experiment* experiment = FindExperiment(id);
  if (experiment == nullptr) {
    std::cerr << "unknown experiment id: " << id << "\n";
    return 2;
  }
  telemetry::RunReport report = RunExperiment(*experiment);
  return report.ok ? 0 : 1;
}

namespace {

/// The --seed override; 0 = unset (historical per-site seeds).
uint64_t g_base_seed = 0;

}  // namespace

void SetExperimentBaseSeed(uint64_t seed) { g_base_seed = seed; }

uint64_t ExperimentBaseSeed() { return g_base_seed; }

uint64_t ExperimentSeed(uint64_t site_seed) {
  return g_base_seed == 0 ? site_seed : HashCombine(g_base_seed, site_seed);
}

telemetry::RunReport RunExperiment(const Experiment& experiment) {
  mpc::ExchangeTelemetry::Reset();
  resilience::ResilienceTelemetry::Reset();
  cluster::ClusterTelemetry::Reset();
  MemoryTelemetry::Reset();
  telemetry::RunReport report = experiment.run(experiment);
  telemetry::SnapshotExchangeTelemetryInto(&report.metrics);
  // No-op unless this run executed exchanges under fault injection, so
  // fault-free reports keep their schema byte-identical.
  telemetry::SnapshotResilienceTelemetryInto(&report.metrics);
  // Same schema-invariance contract for the elastic-cluster ledger: only
  // runs that built a ClusterProfile pipeline emit cluster.* keys.
  telemetry::SnapshotClusterTelemetryInto(&report.metrics);
  // Arena-scope accounting: logical bytes only, so the values are identical
  // at any thread count or fault schedule (see DESIGN.md §4h).
  telemetry::SnapshotMemoryTelemetryInto(&report.metrics);
  if (g_base_seed != 0) report.AddParam("base_seed", g_base_seed);
  return report;
}

void ProfileRun(telemetry::RunReport& report, const std::string& name,
                const LoadTracker& tracker) {
  telemetry::LoadSkewProfile profile = telemetry::ProfileLoadTracker(tracker, name);
  // Skew ratios are max/mean >= 1 on nonempty rounds; the histogram makes
  // cross-experiment imbalance comparable at a glance.
  static const std::vector<double> kSkewBounds{1.0, 2.0, 4.0, 8.0,
                                               16.0, 32.0, 64.0, 128.0};
  telemetry::Histogram& histogram =
      report.metrics.GetHistogram("round_skew_ratio", kSkewBounds);
  for (const telemetry::RoundLoadStats& round : profile.rounds) {
    if (round.total != 0) histogram.Observe(round.skew_ratio);
  }
  report.metrics.AddCounter("profiled_runs");
  report.AddLoadProfile(std::move(profile));
}

}  // namespace bench
}  // namespace coverpack
