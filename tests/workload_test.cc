#include "workload/generators.h"

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/properties.h"
#include "relation/operators.h"
#include "workload/random_queries.h"

namespace coverpack {
namespace workload {
namespace {

TEST(GeneratorsTest, UniformRandomDistinctAndSized) {
  Rng rng(1);
  AttrSet attrs = AttrSet::FromIds({0, 1});
  Relation r = UniformRandom(attrs, 500, 100, &rng);
  EXPECT_EQ(r.size(), 500u);
  Relation copy = r;
  copy.Dedup();
  EXPECT_EQ(copy.size(), 500u);  // tuples are distinct
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_LT(r.row(i)[0], 100u);
    EXPECT_LT(r.row(i)[1], 100u);
  }
}

TEST(GeneratorsTest, UniformRandomSaturatesSmallDomains) {
  Rng rng(2);
  // Only 4 possible tuples exist; asking for 100 yields at most 4.
  Relation r = UniformRandom(AttrSet::FromIds({0, 1}), 100, 2, &rng);
  EXPECT_LE(r.size(), 4u);
  EXPECT_GE(r.size(), 3u);
}

TEST(GeneratorsTest, MatchingIsDiagonal) {
  Relation r = Matching(AttrSet::FromIds({0, 3}), 10);
  EXPECT_EQ(r.size(), 10u);
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r.row(i)[0], r.row(i)[1]);
  }
  // Every value appears exactly once per attribute: perfectly skew-free.
  auto histogram = DegreeHistogram(r, 0);
  for (const auto& [value, count] : histogram) EXPECT_EQ(count, 1u);
}

TEST(GeneratorsTest, CartesianEnumeratesAll) {
  Relation r = Cartesian(AttrSet::FromIds({0, 1, 2}), {2, 3, 4});
  EXPECT_EQ(r.size(), 24u);
  Relation copy = r;
  copy.Dedup();
  EXPECT_EQ(copy.size(), 24u);
}

TEST(GeneratorsTest, ZipfSkewsTheDegreeDistribution) {
  Rng rng(3);
  AttrSet attrs = AttrSet::FromIds({0, 1});
  Relation skewed = Zipf(attrs, 800, 2000, 1.1, &rng);
  auto histogram = DegreeHistogram(skewed, 0);
  uint64_t max_degree = 0;
  for (const auto& [value, count] : histogram) max_degree = std::max(max_degree, count);
  // The hottest value is far above the average degree.
  EXPECT_GT(max_degree, 8 * skewed.size() / histogram.size());
}

TEST(GeneratorsTest, OneToOnePinsOtherAttributes) {
  AttrSet attrs = AttrSet::FromIds({0, 2, 5, 7});
  Relation r = OneToOne(attrs, 2, 7, 6);
  EXPECT_EQ(r.size(), 6u);
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r.At(i, 2), r.At(i, 7));
    EXPECT_EQ(r.At(i, 0), 0u);
    EXPECT_EQ(r.At(i, 5), 0u);
  }
}

TEST(GeneratorsTest, InstanceBuildersMatchSchemas) {
  Hypergraph q = catalog::BoxJoin();
  Rng rng(4);
  Instance instance = UniformInstance(q, 50, 10, &rng);
  instance.CheckAgainst(q);  // aborts on mismatch
  EXPECT_EQ(instance.MaxRelationSize(), 50u);
  Instance matching = MatchingInstance(q, 20);
  matching.CheckAgainst(q);
  EXPECT_EQ(matching.TotalSize(), 100u);
}

TEST(RandomQueriesTest, AcyclicByConstruction) {
  for (uint64_t seed = 100; seed < 160; ++seed) {
    Rng rng(seed);
    Hypergraph q = RandomAcyclicQuery(&rng);
    EXPECT_TRUE(IsAlphaAcyclic(q)) << q.ToString();
    EXPECT_GE(q.num_edges(), 2u);
    EXPECT_LE(q.num_edges(), 7u);
  }
}

TEST(RandomQueriesTest, DegreeTwoByConstruction) {
  for (uint64_t seed = 200; seed < 260; ++seed) {
    Rng rng(seed);
    Hypergraph q = RandomDegreeTwoQuery(&rng, 4, 6);
    EXPECT_TRUE(IsDegreeTwo(q)) << q.ToString();
    EXPECT_EQ(q.num_edges(), 4u);
    EXPECT_EQ(q.AllAttrs().size(), 6u);
  }
}

TEST(RandomQueriesTest, RespectsSizeOptions) {
  RandomAcyclicOptions options;
  options.min_edges = 5;
  options.max_edges = 5;
  options.max_fresh_attrs = 1;
  Rng rng(77);
  Hypergraph q = RandomAcyclicQuery(&rng, options);
  EXPECT_EQ(q.num_edges(), 5u);
}

}  // namespace
}  // namespace workload
}  // namespace coverpack
