#include "telemetry/run_report.h"

#include <algorithm>
#include <utility>

namespace coverpack {
namespace telemetry {

void RunReport::AddLoadProfile(LoadSkewProfile profile) {
  max_load = std::max(max_load, profile.max_load);
  rounds = std::max(rounds, profile.num_rounds);
  load_profiles.push_back(std::move(profile));
}

JsonValue RunReport::ToJson() const {
  JsonValue value = JsonValue::Object();
  value.Set("schema_version", kSchemaVersion);
  value.Set("id", id);
  value.Set("display_id", display_id);
  value.Set("claim", claim);
  value.Set("verdict", verdict());
  value.Set("ok", ok);
  value.Set("wall_ms", wall_ms);
  value.Set("threads", static_cast<uint64_t>(threads));
  value.Set("wall_ms_serial", wall_ms_serial);
  value.Set("speedup", speedup);
  value.Set("max_load", max_load);
  value.Set("rounds", rounds);
  value.Set("params", params);
  JsonValue exponent_array = JsonValue::Array();
  for (const ExponentFit& fit : exponents) {
    JsonValue entry = JsonValue::Object();
    entry.Set("label", fit.label);
    entry.Set("fitted", fit.fitted);
    entry.Set("theory", fit.theory);
    entry.Set("tolerance", fit.tolerance);
    entry.Set("match", fit.match);
    exponent_array.Append(std::move(entry));
  }
  value.Set("exponents", std::move(exponent_array));
  JsonValue profile_array = JsonValue::Array();
  for (const LoadSkewProfile& profile : load_profiles) {
    profile_array.Append(profile.ToJson());
  }
  value.Set("load_profiles", std::move(profile_array));
  value.Set("metrics", metrics.ToJson());
  return value;
}

}  // namespace telemetry
}  // namespace coverpack
