/// \file scheduler.h
/// \brief Deterministic scheduling primitives for the query service.
///
/// Two pieces, both purely simulated-time (no wall clock anywhere):
///
///  * LeaseManager — carves the p-server pool into disjoint sub-clusters.
///    First-fit over a coalesced free-interval map: acquisition order
///    fully determines placement, so lease assignments are bit-identical
///    across runs and thread counts. Optionally speed-aware: with a
///    per-server speed vector installed, leases can be granted in
///    speed-capacity units (AcquireCapacity) — the minimal first-fit
///    prefix whose speed sum covers the request — which collapses to
///    Acquire(ceil(capacity)) under uniform unit speeds. The pool can
///    also be resized at quiesce points (Resize), modelling elastic
///    membership in the service layer.
///  * SimEventQueue — a min-heap of (tick, sequence) events driving the
///    discrete-event loop. The sequence number breaks same-tick ties in
///    push order, which the service keeps deterministic.

#ifndef COVERPACK_SERVICE_SCHEDULER_H_
#define COVERPACK_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <vector>

namespace coverpack {
namespace service {

/// A disjoint sub-cluster [first_server, first_server + size) of the pool.
struct SubClusterLease {
  uint32_t first_server = 0;
  uint32_t size = 0;
};

/// First-fit allocator of disjoint server ranges.
class LeaseManager {
 public:
  explicit LeaseManager(uint32_t total_servers);

  /// Leases the lowest-addressed free range of `size` servers, or nullopt
  /// when no contiguous range fits.
  std::optional<SubClusterLease> Acquire(uint32_t size);

  /// Leases the lowest-addressed free range whose speed sum reaches
  /// `capacity` using the fewest servers of that range's prefix — i.e.
  /// first-fit over intervals, minimal prefix within the interval. With
  /// no (or uniform 1.0) speeds installed this grants exactly the same
  /// ranges as Acquire(ceil(capacity)). Returns nullopt when no single
  /// free interval holds enough aggregate speed.
  std::optional<SubClusterLease> AcquireCapacity(double capacity);

  /// Returns a lease's servers to the pool (coalescing with neighbors).
  void Release(const SubClusterLease& lease);

  /// Installs per-server speeds (size must equal total_servers(), all
  /// > 0); an empty vector restores uniform unit speeds. Only legal while
  /// nothing is leased, so outstanding capacity accounting stays exact.
  void SetSpeeds(std::vector<double> speeds);

  /// Grows or shrinks the pool at a quiesce point. Growing appends free
  /// servers (speed 1.0 until SetSpeeds is called again); shrinking
  /// requires the removed tail [new_total, total) to be entirely free.
  void Resize(uint32_t new_total);

  /// Speed of one server (1.0 when no speed vector is installed).
  double SpeedOf(uint32_t server) const;

  /// Aggregate speed of a lease's servers.
  double CapacityOf(const SubClusterLease& lease) const;

  uint32_t total_servers() const { return total_; }
  uint32_t leased() const { return leased_; }
  uint32_t peak_leased() const { return peak_; }
  double leased_capacity() const { return leased_capacity_; }
  double peak_capacity() const { return peak_capacity_; }

 private:
  /// Carves [start, start + size) out of the free interval at `it` (which
  /// must start there and be at least `size` long) and books the lease.
  SubClusterLease Carve(std::map<uint32_t, uint32_t>::iterator it, uint32_t size);

  uint32_t total_;
  uint32_t leased_ = 0;
  uint32_t peak_ = 0;
  double leased_capacity_ = 0.0;
  double peak_capacity_ = 0.0;
  std::vector<double> speeds_;         // empty = uniform 1.0
  std::map<uint32_t, uint32_t> free_;  // start -> length, disjoint + coalesced
};

/// What a simulation event announces.
enum class SimEventKind : uint8_t {
  kArrival,     ///< a client issued a query
  kCompletion,  ///< a running query's simulated latency elapsed
};

/// One scheduled event of the discrete-event loop.
struct SimEvent {
  uint64_t time = 0;  ///< simulated tick
  uint64_t seq = 0;   ///< tie-break, assigned by the queue in push order
  SimEventKind kind = SimEventKind::kArrival;
  uint32_t client = 0;
  uint32_t catalog_index = 0;
  uint64_t query_id = 0;
};

/// Min-heap over (time, seq). Deterministic for a deterministic push order.
class SimEventQueue {
 public:
  void Push(SimEvent event);  // stamps event.seq
  bool empty() const { return heap_.empty(); }
  const SimEvent& Top() const { return heap_.top(); }
  SimEvent PopMin();

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace service
}  // namespace coverpack

#endif  // COVERPACK_SERVICE_SCHEDULER_H_
