#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "query/catalog.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

TEST(TraceTest, DisabledByDefault) {
  Hypergraph q = catalog::Line3();
  Rng rng(1);
  Instance instance = workload::UniformInstance(q, 50, 8, &rng);
  AcyclicRunOptions options;
  options.p = 4;
  AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
  EXPECT_TRUE(run.trace.empty());
}

TEST(TraceTest, RecordsDecompositionDecisions) {
  Hypergraph q = catalog::Line3();
  Rng rng(2);
  Instance instance = workload::UniformInstance(q, 100, 10, &rng);
  AcyclicRunOptions options;
  options.p = 8;
  options.trace = true;
  AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
  ASSERT_FALSE(run.trace.empty());
  // The first event is the top-level Case I on the full query.
  EXPECT_EQ(run.trace[0].kind, TraceEvent::kCaseOne);
  EXPECT_EQ(run.trace[0].depth, 0);
  EXPECT_FALSE(run.trace[0].attribute.empty());
  EXPECT_GT(run.trace[0].light_groups + run.trace[0].heavy_values, 0u);
  // Depths increase into the recursion and the recursion bottoms out.
  bool saw_base = false;
  for (const TraceEvent& event : run.trace) {
    if (event.kind == TraceEvent::kBaseCase) saw_base = true;
    EXPECT_GE(event.depth, 0);
  }
  EXPECT_TRUE(saw_base);
}

TEST(TraceTest, CaseTwoRecordsComponents) {
  Hypergraph q = ParseQuery("R1(A,B), R2(X,Y)");
  Instance instance(q);
  for (Value v = 0; v < 20; ++v) {
    instance[0].AppendRow({v, v});
    instance[1].AppendRow({v, v + 1});
  }
  AcyclicRunOptions options;
  options.p = 4;
  options.trace = true;
  AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
  ASSERT_FALSE(run.trace.empty());
  EXPECT_EQ(run.trace[0].kind, TraceEvent::kCaseTwo);
  EXPECT_EQ(run.trace[0].components, 2u);
}

TEST(TraceTest, PolicyChangesChoiceSet) {
  Hypergraph q = catalog::Line3();
  Instance instance = workload::MatchingInstance(q, 200);
  AcyclicRunOptions conservative;
  conservative.policy = RunPolicy::kConservative;
  conservative.trace = true;
  conservative.p = 8;
  AcyclicRunOptions optimal = conservative;
  optimal.policy = RunPolicy::kOptimal;
  AcyclicRunResult c = ComputeAcyclicJoin(q, instance, conservative);
  AcyclicRunResult o = ComputeAcyclicJoin(q, instance, optimal);
  ASSERT_FALSE(c.trace.empty());
  ASSERT_FALSE(o.trace.empty());
  // Conservative picks a single leaf; optimal takes all of E_x.
  EXPECT_EQ(c.trace[0].choice_set.find(','), std::string::npos);
  EXPECT_NE(o.trace[0].choice_set.find(','), std::string::npos);
}

TEST(TraceTest, TraceToStringRendersTree) {
  Hypergraph q = catalog::Path(4);
  Instance instance = workload::MatchingInstance(q, 100);
  AcyclicRunOptions options;
  options.trace = true;
  options.p = 8;
  AcyclicRunResult run = ComputeAcyclicJoin(q, instance, options);
  std::string text = TraceToString(run.trace);
  EXPECT_NE(text.find("case-I"), std::string::npos);
  EXPECT_NE(text.find("S^x="), std::string::npos);
  EXPECT_NE(text.find("tuples]"), std::string::npos);
}

}  // namespace
}  // namespace coverpack
