#include "resilience/checkpoint.h"

#include <utility>

namespace coverpack {
namespace resilience {

RoundCheckpoint::RoundCheckpoint(uint32_t round, DistRelation data, LoadTracker tracker)
    : round_(round),
      snapshot_tuples_(data.TotalSize()),
      data_(std::move(data)),
      tracker_(std::move(tracker)) {}

RoundCheckpoint RoundCheckpoint::Capture(uint32_t round, const DistRelation& data,
                                         const LoadTracker& tracker) {
  return RoundCheckpoint(round, data, tracker);
}

void RoundCheckpoint::Restore(DistRelation* data, LoadTracker* tracker) const {
  *data = data_;
  *tracker = tracker_;
}

void RoundCheckpointStore::NoteCapture(uint32_t round, uint64_t tuples) {
  RoundEntry& entry = rounds_[round];
  ++entry.captures;
  entry.tuples += tuples;
  ++num_captures_;
  total_tuples_ += tuples;
}

void RoundCheckpointStore::NoteRestore(uint32_t round) {
  ++rounds_[round].restores;
  ++num_restores_;
}

void RoundCheckpointStore::Clear() {
  num_captures_ = 0;
  num_restores_ = 0;
  total_tuples_ = 0;
  rounds_.clear();
}

}  // namespace resilience
}  // namespace coverpack
