#include "util/arena.h"

#include <algorithm>

#include "util/mutex.h"

namespace coverpack {

void Arena::Reset() {
  page_index_ = 0;
  cursor_ = 0;
  used_ = 0;
  if (!pages_.empty()) {
    base_ = pages_[0].data.get();
    limit_ = pages_[0].size;
  } else {
    base_ = nullptr;
    limit_ = 0;
  }
}

void Arena::ActivatePage(size_t index) {
  page_index_ = index;
  base_ = pages_[index].data.get();
  limit_ = pages_[index].size;
  cursor_ = 0;
}

void* Arena::AllocateSlow(size_t bytes, size_t align) {
  // Walk forward through already-reserved pages before growing.
  size_t next = pages_.empty() ? 0 : page_index_ + 1;
  while (next < pages_.size() && pages_[next].size < bytes) ++next;
  if (next >= pages_.size()) {
    size_t size = pages_.empty() ? kMinPageBytes
                                 : std::min(pages_.back().size * 2, kMaxPageBytes);
    // Oversized single requests get a dedicated page; alignment slack is
    // bounded by `align` because fresh pages start at a max-aligned base.
    if (size < bytes + align) size = bytes + align;
    pages_.push_back(Page{std::make_unique<char[]>(size), size});
    reserved_ += size;
    next = pages_.size() - 1;
  }
  ActivatePage(next);
  size_t cursor = (reinterpret_cast<uintptr_t>(base_) + (align - 1)) & ~(align - 1);
  cursor -= reinterpret_cast<uintptr_t>(base_);
  CP_CHECK(cursor + bytes <= limit_);
  void* out = base_ + cursor;
  cursor_ = cursor + bytes;
  used_ += bytes;
  return out;
}

void Arena::RewindTo(const Mark& mark) {
  CP_DCHECK(mark.used <= used_);
  if (mark.page < pages_.size()) {
    ActivatePage(mark.page);
  }
  cursor_ = mark.cursor;
  used_ = mark.used;
}

Arena& ScratchArena::Local() {
  static thread_local Arena arena;
  return arena;
}

namespace {

struct MemoryTelemetryState {
  Mutex mu;
  uint64_t scopes CP_GUARDED_BY(mu) = 0;
  uint64_t bytes_total CP_GUARDED_BY(mu) = 0;
  uint64_t high_water_bytes CP_GUARDED_BY(mu) = 0;
};

MemoryTelemetryState& TelemetryState() {
  static MemoryTelemetryState* state = new MemoryTelemetryState();
  return *state;
}

}  // namespace

ArenaScope::~ArenaScope() {
  MemoryTelemetry::RecordScope(used());
  arena_->RewindTo(mark_);
}

void MemoryTelemetry::Reset() {
  auto& state = TelemetryState();
  MutexLock lock(state.mu);
  state.scopes = 0;
  state.bytes_total = 0;
  state.high_water_bytes = 0;
}

void MemoryTelemetry::RecordScope(uint64_t bytes) {
  auto& state = TelemetryState();
  MutexLock lock(state.mu);
  ++state.scopes;
  state.bytes_total += bytes;
  if (bytes > state.high_water_bytes) state.high_water_bytes = bytes;
}

MemoryTelemetrySnapshot MemoryTelemetry::Snapshot() {
  auto& state = TelemetryState();
  MutexLock lock(state.mu);
  MemoryTelemetrySnapshot snapshot;
  snapshot.scopes = state.scopes;
  snapshot.bytes_total = state.bytes_total;
  snapshot.high_water_bytes = state.high_water_bytes;
  return snapshot;
}

}  // namespace coverpack
