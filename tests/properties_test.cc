#include "query/properties.h"

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"

namespace coverpack {
namespace {

TEST(PropertiesTest, AcyclicityOfCatalog) {
  EXPECT_TRUE(IsAlphaAcyclic(catalog::Path(5)));
  EXPECT_TRUE(IsAlphaAcyclic(catalog::Star(4)));
  EXPECT_TRUE(IsAlphaAcyclic(catalog::StarDual(3)));
  EXPECT_TRUE(IsAlphaAcyclic(catalog::Figure4Query()));
  EXPECT_TRUE(IsAlphaAcyclic(catalog::SemiJoinExample()));
  EXPECT_TRUE(IsAlphaAcyclic(catalog::Line3()));
  EXPECT_TRUE(IsAlphaAcyclic(catalog::AlphaNotBerge()));

  EXPECT_FALSE(IsAlphaAcyclic(catalog::Triangle()));
  EXPECT_FALSE(IsAlphaAcyclic(catalog::Cycle(4)));
  EXPECT_FALSE(IsAlphaAcyclic(catalog::Cycle(6)));
  EXPECT_FALSE(IsAlphaAcyclic(catalog::BoxJoin()));
  EXPECT_FALSE(IsAlphaAcyclic(catalog::LoomisWhitney(4)));
  EXPECT_FALSE(IsAlphaAcyclic(catalog::Clique(4)));
}

TEST(PropertiesTest, AlphaButNotBergeExample) {
  // Section 1.3's example separating the acyclicity notions.
  Hypergraph q = catalog::AlphaNotBerge();
  EXPECT_TRUE(IsAlphaAcyclic(q));
  EXPECT_FALSE(IsBergeAcyclic(q));
}

TEST(PropertiesTest, BergeAcyclicExamples) {
  EXPECT_TRUE(IsBergeAcyclic(catalog::Path(5)));
  EXPECT_TRUE(IsBergeAcyclic(catalog::Star(4)));
  EXPECT_TRUE(IsBergeAcyclic(catalog::Line3()));
  EXPECT_FALSE(IsBergeAcyclic(catalog::Triangle()));
  // Two relations sharing two attributes close a cycle in the incidence
  // graph, so this is alpha- but not berge-acyclic.
  EXPECT_FALSE(IsBergeAcyclic(ParseQuery("R1(A,B,C), R2(A,B)")));
}

TEST(PropertiesTest, TreeAndPathJoins) {
  EXPECT_TRUE(IsPathJoin(catalog::Path(5)));
  EXPECT_TRUE(IsPathJoin(catalog::Line3()));
  EXPECT_TRUE(IsTreeJoin(catalog::Star(4)));
  EXPECT_FALSE(IsPathJoin(catalog::Star(4)));
  EXPECT_FALSE(IsTreeJoin(catalog::Figure4Query()));  // relations of arity > 2
  EXPECT_FALSE(IsTreeJoin(catalog::Triangle()));      // cyclic
  EXPECT_TRUE(IsPathJoin(ParseQuery("R1(A,B)")));     // single relation
}

TEST(PropertiesTest, Hierarchical) {
  EXPECT_TRUE(IsHierarchical(catalog::Star(4)));
  // Line-3 is the paper's example of a non-r-hierarchical query.
  EXPECT_FALSE(IsHierarchical(catalog::Line3()));
  EXPECT_FALSE(IsRHierarchical(catalog::Line3()));
  // The semi-join example becomes a single relation after reduction.
  EXPECT_TRUE(IsRHierarchical(catalog::SemiJoinExample()));
}

TEST(PropertiesTest, LoomisWhitneyDetection) {
  EXPECT_TRUE(IsLoomisWhitney(catalog::LoomisWhitney(3)));
  EXPECT_TRUE(IsLoomisWhitney(catalog::LoomisWhitney(5)));
  EXPECT_TRUE(IsLoomisWhitney(catalog::Triangle()));  // LW(3) == triangle
  EXPECT_FALSE(IsLoomisWhitney(catalog::BoxJoin()));
  EXPECT_FALSE(IsLoomisWhitney(catalog::Path(3)));
}

TEST(PropertiesTest, DegreeTwoAndOddCycles) {
  EXPECT_TRUE(IsDegreeTwo(catalog::BoxJoin()));
  EXPECT_TRUE(DegreeTwoHasNoOddCycle(catalog::BoxJoin()));
  EXPECT_TRUE(IsDegreeTwo(catalog::Triangle()));
  EXPECT_FALSE(DegreeTwoHasNoOddCycle(catalog::Triangle()));
  EXPECT_TRUE(IsDegreeTwo(catalog::Cycle(6)));
  EXPECT_TRUE(DegreeTwoHasNoOddCycle(catalog::Cycle(6)));
  EXPECT_TRUE(IsDegreeTwo(catalog::Cycle(5)));
  EXPECT_FALSE(DegreeTwoHasNoOddCycle(catalog::Cycle(5)));
  EXPECT_FALSE(IsDegreeTwo(catalog::Star(4)));  // hub attribute has degree 4
}

TEST(PropertiesTest, ReduceRemovesSubsumedEdges) {
  Hypergraph q = catalog::SemiJoinExample();  // R1(A), R2(A,B), R3(B)
  Hypergraph reduced = Reduce(q);
  EXPECT_EQ(reduced.num_edges(), 1u);
  EXPECT_EQ(reduced.edge(0).name, "R2");
  EXPECT_TRUE(reduced.IsReduced());
}

TEST(PropertiesTest, GyoTraceEndsEmptyForAcyclic) {
  GyoResult result = GyoReduce(catalog::Figure4Query());
  EXPECT_TRUE(result.acyclic);
  EXPECT_FALSE(result.steps.empty());
}

TEST(PropertiesTest, MinimumIntegralEdgeCoverMatchesRhoStarOnAcyclic) {
  // Lemma A.2: acyclic joins have integral optimal edge covers.
  EXPECT_EQ(MinimumIntegralEdgeCover(catalog::Path(5)).size, 3u);
  EXPECT_EQ(MinimumIntegralEdgeCover(catalog::Star(4)).size, 4u);
  EXPECT_EQ(MinimumIntegralEdgeCover(catalog::Figure4Query()).size, 6u);
  EXPECT_EQ(MinimumIntegralEdgeCover(Reduce(catalog::SemiJoinExample())).size, 1u);
}

TEST(PropertiesTest, ClassificationStrings) {
  EXPECT_EQ(ClassificationString(catalog::Path(3)),
            "alpha-acyclic, berge-acyclic, tree, path");
  EXPECT_EQ(ClassificationString(catalog::Triangle()),
            "cyclic, loomis-whitney, degree-two (odd cycle)");
}

}  // namespace
}  // namespace coverpack
