/// \file scheduler.h
/// \brief Deterministic scheduling primitives for the query service.
///
/// Two pieces, both purely simulated-time (no wall clock anywhere):
///
///  * LeaseManager — carves the p-server pool into disjoint sub-clusters.
///    First-fit over a coalesced free-interval map: acquisition order
///    fully determines placement, so lease assignments are bit-identical
///    across runs and thread counts.
///  * SimEventQueue — a min-heap of (tick, sequence) events driving the
///    discrete-event loop. The sequence number breaks same-tick ties in
///    push order, which the service keeps deterministic.

#ifndef COVERPACK_SERVICE_SCHEDULER_H_
#define COVERPACK_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <vector>

namespace coverpack {
namespace service {

/// A disjoint sub-cluster [first_server, first_server + size) of the pool.
struct SubClusterLease {
  uint32_t first_server = 0;
  uint32_t size = 0;
};

/// First-fit allocator of disjoint server ranges.
class LeaseManager {
 public:
  explicit LeaseManager(uint32_t total_servers);

  /// Leases the lowest-addressed free range of `size` servers, or nullopt
  /// when no contiguous range fits.
  std::optional<SubClusterLease> Acquire(uint32_t size);

  /// Returns a lease's servers to the pool (coalescing with neighbors).
  void Release(const SubClusterLease& lease);

  uint32_t total_servers() const { return total_; }
  uint32_t leased() const { return leased_; }
  uint32_t peak_leased() const { return peak_; }

 private:
  uint32_t total_;
  uint32_t leased_ = 0;
  uint32_t peak_ = 0;
  std::map<uint32_t, uint32_t> free_;  // start -> length, disjoint + coalesced
};

/// What a simulation event announces.
enum class SimEventKind : uint8_t {
  kArrival,     ///< a client issued a query
  kCompletion,  ///< a running query's simulated latency elapsed
};

/// One scheduled event of the discrete-event loop.
struct SimEvent {
  uint64_t time = 0;  ///< simulated tick
  uint64_t seq = 0;   ///< tie-break, assigned by the queue in push order
  SimEventKind kind = SimEventKind::kArrival;
  uint32_t client = 0;
  uint32_t catalog_index = 0;
  uint64_t query_id = 0;
};

/// Min-heap over (time, seq). Deterministic for a deterministic push order.
class SimEventQueue {
 public:
  void Push(SimEvent event);  // stamps event.seq
  bool empty() const { return heap_.empty(); }
  const SimEvent& Top() const { return heap_.top(); }
  SimEvent PopMin();

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace service
}  // namespace coverpack

#endif  // COVERPACK_SERVICE_SCHEDULER_H_
