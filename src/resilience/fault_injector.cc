#include "resilience/fault_injector.h"

#include <algorithm>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coverpack {
namespace resilience {

namespace {

/// Process-global ledger state. Same single-mutex pattern as
/// ExchangeTelemetry: exchanges execute from both the main thread and pool
/// tasks, and the ledger must merge their recovery costs race-free.
struct LedgerState {
  Mutex mutex;
  uint64_t exchanges_injected CP_GUARDED_BY(mutex) = 0;
  uint64_t exchanges_faulted CP_GUARDED_BY(mutex) = 0;
  uint64_t crashes CP_GUARDED_BY(mutex) = 0;
  uint64_t rows_dropped CP_GUARDED_BY(mutex) = 0;
  uint64_t rows_duplicated CP_GUARDED_BY(mutex) = 0;
  uint64_t retries CP_GUARDED_BY(mutex) = 0;
  uint64_t full_reruns CP_GUARDED_BY(mutex) = 0;
  uint64_t backoff_units CP_GUARDED_BY(mutex) = 0;
  uint64_t tuples_resent CP_GUARDED_BY(mutex) = 0;
  uint64_t tuples_resent_crash CP_GUARDED_BY(mutex) = 0;
  uint64_t tuples_resent_corruption CP_GUARDED_BY(mutex) = 0;
  uint64_t tuples_resent_full_rerun CP_GUARDED_BY(mutex) = 0;
  uint64_t checkpoints_captured CP_GUARDED_BY(mutex) = 0;
  uint64_t checkpoint_tuples CP_GUARDED_BY(mutex) = 0;
  uint64_t max_single_resend CP_GUARDED_BY(mutex) = 0;
  std::vector<double> attempts_samples CP_GUARDED_BY(mutex);
  std::vector<double> resent_samples CP_GUARDED_BY(mutex);
};

LedgerState& Ledger() {
  static LedgerState state;
  return state;
}

}  // namespace

void ResilienceTelemetry::Reset() {
  LedgerState& state = Ledger();
  MutexLock lock(state.mutex);
  state.exchanges_injected = 0;
  state.exchanges_faulted = 0;
  state.crashes = 0;
  state.rows_dropped = 0;
  state.rows_duplicated = 0;
  state.retries = 0;
  state.full_reruns = 0;
  state.backoff_units = 0;
  state.tuples_resent = 0;
  state.tuples_resent_crash = 0;
  state.tuples_resent_corruption = 0;
  state.tuples_resent_full_rerun = 0;
  state.checkpoints_captured = 0;
  state.checkpoint_tuples = 0;
  state.max_single_resend = 0;
  state.attempts_samples.clear();
  state.resent_samples.clear();
}

void ResilienceTelemetry::Record(const ExchangeRecord& record) {
  LedgerState& state = Ledger();
  MutexLock lock(state.mutex);
  ++state.exchanges_injected;
  ++state.checkpoints_captured;
  state.checkpoint_tuples += record.checkpoint_tuples;
  if (!record.faulted) return;
  ++state.exchanges_faulted;
  state.crashes += record.crashes;
  state.rows_dropped += record.rows_dropped;
  state.rows_duplicated += record.rows_duplicated;
  state.retries += record.retries;
  if (record.full_rerun) ++state.full_reruns;
  state.backoff_units += record.backoff_units;
  state.tuples_resent += record.tuples_resent;
  state.tuples_resent_crash += record.tuples_resent_crash;
  state.tuples_resent_corruption += record.tuples_resent_corruption;
  state.tuples_resent_full_rerun += record.tuples_resent_full_rerun;
  state.max_single_resend = std::max(state.max_single_resend, record.max_single_resend);
  // Samples are integer counts stored as doubles: histogram sums over them
  // are exact in any accumulation order, which keeps reports bit-identical
  // across thread counts even though exchanges record concurrently.
  state.attempts_samples.push_back(static_cast<double>(record.attempts));
  state.resent_samples.push_back(static_cast<double>(record.tuples_resent));
}

ResilienceTelemetrySnapshot ResilienceTelemetry::Snapshot() {
  LedgerState& state = Ledger();
  MutexLock lock(state.mutex);
  ResilienceTelemetrySnapshot snapshot;
  snapshot.exchanges_injected = state.exchanges_injected;
  snapshot.exchanges_faulted = state.exchanges_faulted;
  snapshot.crashes = state.crashes;
  snapshot.rows_dropped = state.rows_dropped;
  snapshot.rows_duplicated = state.rows_duplicated;
  snapshot.retries = state.retries;
  snapshot.full_reruns = state.full_reruns;
  snapshot.backoff_units = state.backoff_units;
  snapshot.tuples_resent = state.tuples_resent;
  snapshot.tuples_resent_crash = state.tuples_resent_crash;
  snapshot.tuples_resent_corruption = state.tuples_resent_corruption;
  snapshot.tuples_resent_full_rerun = state.tuples_resent_full_rerun;
  snapshot.checkpoints_captured = state.checkpoints_captured;
  snapshot.checkpoint_tuples = state.checkpoint_tuples;
  snapshot.max_single_resend = state.max_single_resend;
  snapshot.attempts_samples = state.attempts_samples;
  snapshot.resent_samples = state.resent_samples;
  return snapshot;
}

RoundCheckpointStore FaultInjector::CheckpointLedger() const {
  MutexLock lock(mutex_);
  return checkpoints_;
}

uint64_t FaultInjector::Deliver(mpc::ExchangeDelivery& delivery) {
  const mpc::ExchangePlan& plan = delivery.plan();
  const FaultSpec& spec = plan_.spec();
  // Uncharged exchanges (driver-side moves like the initial placement) and
  // empty plans are outside the fault model — deliver them untouched.
  if (!spec.active() || !delivery.charged() || plan.total_planned() == 0) {
    return delivery.Attempt();
  }

  const uint64_t key =
      FaultPlan::ExchangeKey(delivery.round(), delivery.label(), plan.total_planned(),
                             plan.recorded_planned(), plan.num_servers());
  {
    MutexLock lock(mutex_);
    checkpoints_.NoteCapture(delivery.round(), delivery.CheckpointedRows());
  }

  ResilienceTelemetry::ExchangeRecord record;
  record.checkpoint_tuples = delivery.CheckpointedRows();
  const bool row_faults_possible = spec.drop_rate > 0.0 || spec.duplicate_rate > 0.0;

  uint64_t delivered = 0;
  bool accepted = false;
  uint32_t attempt = 0;
  for (; attempt < spec.max_attempts; ++attempt) {
    // Crashes are decided up front per attempt: a crashed receiver loses
    // every message bound for it in this attempt. Servers that receive
    // nothing cannot observably crash.
    std::vector<uint8_t> crashed(plan.num_servers(), 0);
    uint64_t attempt_crashes = 0;
    for (uint32_t s = 0; s < plan.num_servers(); ++s) {
      if (plan.PlannedReceive(s) == 0) continue;
      if (plan_.CrashesDelivery(key, attempt, s)) {
        crashed[s] = 1;
        ++attempt_crashes;
      }
    }
    // No crash and no per-row fault stream: this attempt is provably
    // clean, so fall through to the coalesced clean delivery below.
    if (attempt_crashes == 0 && !row_faults_possible) break;

    uint64_t attempt_drops = 0;
    uint64_t attempt_dups = 0;
    std::vector<uint8_t> corrupted = crashed;
    const auto fate = [&](size_t source, uint32_t server,
                          size_t row) -> mpc::ExchangeDelivery::RowFate {
      if (crashed[server] != 0) return mpc::ExchangeDelivery::RowFate::kDrop;
      if (plan_.DropsRow(key, attempt, source, server, row)) {
        ++attempt_drops;
        corrupted[server] = 1;
        return mpc::ExchangeDelivery::RowFate::kDrop;
      }
      if (plan_.DuplicatesRow(key, attempt, source, server, row)) {
        ++attempt_dups;
        corrupted[server] = 1;
        return mpc::ExchangeDelivery::RowFate::kDuplicate;
      }
      return mpc::ExchangeDelivery::RowFate::kDeliver;
    };
    delivered = delivery.Attempt(fate);
    ++record.attempts;
    if (attempt_crashes == 0 && attempt_drops == 0 && attempt_dups == 0) {
      // The dice came up clean: the attempt delivered every message exactly
      // once, so it is accepted as-is.
      accepted = true;
      break;
    }

    // Faulty attempt: roll every destination back to its round checkpoint,
    // charge the recovery ledger, and retry with backoff.
    delivery.Restore();
    {
      MutexLock lock(mutex_);
      checkpoints_.NoteRestore(delivery.round());
    }
    record.faulted = true;
    ++record.retries;
    record.crashes += attempt_crashes;
    record.rows_dropped += attempt_drops;
    record.rows_duplicated += attempt_dups;
    const uint64_t shift = attempt < 63 ? attempt : 63;
    record.backoff_units += std::min(spec.backoff_base << shift, spec.backoff_cap);
    // Replaying the round re-sends each affected server its full planned
    // receive — by definition at most the round's bottleneck load each.
    for (uint32_t s = 0; s < plan.num_servers(); ++s) {
      if (corrupted[s] == 0) continue;
      const uint64_t amount = plan.PlannedReceive(s);
      record.tuples_resent += amount;
      if (crashed[s] != 0) {
        record.tuples_resent_crash += amount;
      } else {
        record.tuples_resent_corruption += amount;
      }
      record.max_single_resend = std::max(record.max_single_resend, amount);
    }
  }

  if (!accepted) {
    if (record.faulted && attempt >= spec.max_attempts) {
      // Retry budget exhausted: degrade gracefully to a full deterministic
      // rerun of the exchange, accounted at full plan volume.
      record.full_rerun = true;
      record.tuples_resent += plan.total_planned();
      record.tuples_resent_full_rerun += plan.total_planned();
    }
    delivered = delivery.Attempt();
    ++record.attempts;
  }
  ResilienceTelemetry::Record(record);
  return delivered;
}

}  // namespace resilience
}  // namespace coverpack
