/// Chaos tests (ctest label: chaos): the resilience subsystem under
/// deliberately brutal fault schedules — crash storms that exhaust the
/// retry budget, heavy per-row corruption, universal stragglers, and
/// mixed schedules — always checked against the same invariant: the
/// healed run is bit-identical to the fault-free run, and the recovery
/// ledger accounts for every retry, resend, and backoff unit exactly.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "mpc/cluster.h"
#include "mpc/hypercube.h"
#include "query/catalog.h"
#include "report_compare.h"
#include "resilience/cost_model.h"
#include "resilience/fault_injector.h"
#include "resilience/fault_plan.h"
#include "service/query_service.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

using resilience::FaultSpec;
using resilience::ResilienceTelemetry;
using resilience::ResilienceTelemetrySnapshot;
using resilience::ScopedFaultInjection;
using testutil::RelationsEqual;
using testutil::TrackersEqual;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = ThreadPool::GlobalThreads();
    ResilienceTelemetry::Reset();
  }
  void TearDown() override { ThreadPool::SetGlobalThreads(saved_threads_); }

 private:
  unsigned saved_threads_ = 0;
};

/// One hypercube box-join run; records rows (collect mode), so both the
/// crash path and the per-row corruption path are exercised.
struct BoxRun {
  mpc::HypercubeResult result;
  LoadTracker tracker{1};
};

BoxRun RunBoxJoin(uint32_t p, size_t n) {
  const Hypergraph box = catalog::BoxJoin();
  const Instance instance = workload::MatchingInstance(box, n);
  std::vector<uint64_t> sizes;
  for (size_t r = 0; r < instance.num_relations(); ++r) sizes.push_back(instance[r].size());
  const mpc::ShareVector shares = mpc::OptimizeSharesForSizes(box, sizes, p);
  Cluster cluster(p);
  BoxRun run;
  run.result = mpc::HypercubeJoin(&cluster, box, instance, shares, /*round=*/0,
                                  /*collect=*/true);
  run.tracker = cluster.tracker();
  return run;
}

bool BoxRunsIdentical(const BoxRun& a, const BoxRun& b) {
  if (a.result.output_count != b.result.output_count ||
      a.result.max_receive_load != b.result.max_receive_load ||
      a.result.results.num_shards() != b.result.results.num_shards() ||
      !TrackersEqual(a.tracker, b.tracker)) {
    return false;
  }
  for (uint32_t s = 0; s < a.result.results.num_shards(); ++s) {
    if (a.result.results.shard(s).raw() != b.result.results.shard(s).raw()) return false;
  }
  return true;
}

TEST_F(ChaosTest, TotalCrashStormDegradesToFullRerunsYetStaysExact) {
  // Every attempt of every exchange crashes every receiving server; a tiny
  // retry budget forces the graceful-degradation path (full deterministic
  // rerun) on each exchange — and the answer still cannot change.
  const BoxRun clean = RunBoxJoin(16, 2048);
  FaultSpec spec;
  spec.seed = 0xC405;
  spec.crash_rate = 1.0;
  spec.max_attempts = 2;
  BoxRun stormed;
  {
    ScopedFaultInjection injection(spec);
    stormed = RunBoxJoin(16, 2048);
  }
  EXPECT_TRUE(BoxRunsIdentical(clean, stormed));
  const ResilienceTelemetrySnapshot ledger = ResilienceTelemetry::Snapshot();
  EXPECT_GT(ledger.exchanges_faulted, 0u);
  EXPECT_EQ(ledger.full_reruns, ledger.exchanges_faulted);
  EXPECT_EQ(ledger.retries, 2 * ledger.exchanges_faulted);
  EXPECT_GT(ledger.tuples_resent_full_rerun, 0u);
  // Every faulted exchange burned its whole budget plus the clean replay.
  for (const double attempts : ledger.attempts_samples) {
    EXPECT_EQ(attempts, static_cast<double>(spec.max_attempts + 1));
  }
}

TEST_F(ChaosTest, HeavyCorruptionIsHealedTupleForTuple) {
  // Nearly every attempt mangles rows (30% dropped, 30% duplicated);
  // recovery must keep retrying until a provably clean delivery lands.
  const BoxRun clean = RunBoxJoin(32, 2048);
  FaultSpec spec;
  spec.seed = 0xD153A5E;
  spec.drop_rate = 0.3;
  spec.duplicate_rate = 0.3;
  spec.max_attempts = 8;
  BoxRun mangled;
  {
    ScopedFaultInjection injection(spec);
    mangled = RunBoxJoin(32, 2048);
  }
  EXPECT_TRUE(BoxRunsIdentical(clean, mangled));
  const ResilienceTelemetrySnapshot ledger = ResilienceTelemetry::Snapshot();
  EXPECT_GT(ledger.rows_dropped, 0u);
  EXPECT_GT(ledger.rows_duplicated, 0u);
  EXPECT_GT(ledger.tuples_resent_corruption, 0u);
  EXPECT_EQ(ledger.crashes, 0u);
}

TEST_F(ChaosTest, AcyclicPipelineSurvivesMixedChaos) {
  // Multi-round acyclic decomposition under crashes + corruption +
  // universal stragglers, with trace recording on: results, loads, and the
  // decomposition tree all match the quiet run.
  const Hypergraph query = catalog::Path(4);
  Rng rng(29);
  const Instance instance = workload::UniformInstance(query, 3000, 250, &rng);
  AcyclicRunOptions options;
  options.policy = RunPolicy::kOptimal;
  options.collect = true;
  options.trace = true;
  options.p = 64;
  const AcyclicRunResult clean = ComputeAcyclicJoin(query, instance, options);

  FaultSpec spec;
  spec.seed = 0xBADBAD;
  spec.crash_rate = 0.6;
  spec.drop_rate = 0.05;
  spec.duplicate_rate = 0.05;
  spec.straggler_rate = 1.0;
  spec.straggler_severity = 16.0;
  spec.max_attempts = 12;
  AcyclicRunResult chaotic;
  {
    ScopedFaultInjection injection(spec);
    chaotic = ComputeAcyclicJoin(query, instance, options);
  }
  EXPECT_EQ(clean.output_count, chaotic.output_count);
  EXPECT_EQ(clean.max_load, chaotic.max_load);
  EXPECT_EQ(clean.rounds, chaotic.rounds);
  EXPECT_EQ(clean.total_communication, chaotic.total_communication);
  EXPECT_TRUE(RelationsEqual(clean.results, chaotic.results));
  EXPECT_TRUE(TrackersEqual(clean.load_tracker, chaotic.load_tracker));
  EXPECT_EQ(TraceToString(clean.trace), TraceToString(chaotic.trace));

  const ResilienceTelemetrySnapshot ledger = ResilienceTelemetry::Snapshot();
  EXPECT_GT(ledger.crashes, 0u);
  EXPECT_EQ(ledger.tuples_resent, ledger.tuples_resent_crash +
                                      ledger.tuples_resent_corruption +
                                      ledger.tuples_resent_full_rerun);
  for (const double attempts : ledger.attempts_samples) {
    EXPECT_LE(attempts, static_cast<double>(spec.max_attempts + 1));
  }
  // Stragglers never change results, only the simulated makespan: with the
  // whole cluster straggling the model degrades by exactly the severity.
  const resilience::MakespanBreakdown breakdown =
      resilience::SimulateMakespan(clean.load_tracker, resilience::FaultPlan(spec));
  EXPECT_DOUBLE_EQ(breakdown.slowdown, spec.straggler_severity);
}

TEST_F(ChaosTest, ChaosScheduleAndLedgerAreThreadCountInvariant) {
  // The whole point of content-keyed fault decisions: the injected chaos —
  // not just the healed result — is the same schedule at any parallelism.
  FaultSpec spec;
  spec.seed = 0x7EA;
  spec.crash_rate = 0.5;
  spec.drop_rate = 0.1;
  spec.duplicate_rate = 0.1;
  spec.max_attempts = 10;

  ThreadPool::SetGlobalThreads(1);
  BoxRun serial;
  {
    ScopedFaultInjection injection(spec);
    serial = RunBoxJoin(16, 4096);
  }
  const ResilienceTelemetrySnapshot serial_ledger = ResilienceTelemetry::Snapshot();

  ResilienceTelemetry::Reset();
  ThreadPool::SetGlobalThreads(4);
  BoxRun parallel;
  {
    ScopedFaultInjection injection(spec);
    parallel = RunBoxJoin(16, 4096);
  }
  const ResilienceTelemetrySnapshot parallel_ledger = ResilienceTelemetry::Snapshot();

  EXPECT_TRUE(BoxRunsIdentical(serial, parallel));
  EXPECT_EQ(serial_ledger.exchanges_faulted, parallel_ledger.exchanges_faulted);
  EXPECT_EQ(serial_ledger.crashes, parallel_ledger.crashes);
  EXPECT_EQ(serial_ledger.rows_dropped, parallel_ledger.rows_dropped);
  EXPECT_EQ(serial_ledger.rows_duplicated, parallel_ledger.rows_duplicated);
  EXPECT_EQ(serial_ledger.retries, parallel_ledger.retries);
  EXPECT_EQ(serial_ledger.full_reruns, parallel_ledger.full_reruns);
  EXPECT_EQ(serial_ledger.tuples_resent, parallel_ledger.tuples_resent);
  EXPECT_EQ(serial_ledger.backoff_units, parallel_ledger.backoff_units);
  EXPECT_EQ(serial_ledger.attempts_samples, parallel_ledger.attempts_samples);
  EXPECT_EQ(serial_ledger.resent_samples, parallel_ledger.resent_samples);
}

TEST_F(ChaosTest, BackoffFollowsTheCappedExponentialSchedule) {
  // crash_rate 1 with a deep budget: attempt a pays min(base << a, cap)
  // backoff units, so the total is a closed-form sum we can check exactly.
  FaultSpec spec;
  spec.seed = 0xB0FF;
  spec.crash_rate = 1.0;
  spec.max_attempts = 10;
  spec.backoff_base = 2;
  spec.backoff_cap = 8;
  {
    ScopedFaultInjection injection(spec);
    RunBoxJoin(4, 256);
  }
  const ResilienceTelemetrySnapshot ledger = ResilienceTelemetry::Snapshot();
  ASSERT_GT(ledger.exchanges_faulted, 0u);
  uint64_t per_exchange = 0;
  for (uint32_t attempt = 0; attempt < spec.max_attempts; ++attempt) {
    const uint64_t raw = spec.backoff_base << attempt;
    per_exchange += raw < spec.backoff_cap ? raw : spec.backoff_cap;
  }
  EXPECT_EQ(ledger.backoff_units, per_exchange * ledger.exchanges_faulted);
}

TEST_F(ChaosTest, RepeatedChaosRunsAreReproducible) {
  // Two identical chaotic runs produce identical ledgers: the fault
  // schedule is a pure function of the spec and the exchanged content.
  FaultSpec spec;
  spec.seed = 0x5EED;
  spec.crash_rate = 0.4;
  spec.drop_rate = 0.05;
  spec.duplicate_rate = 0.05;
  BoxRun first;
  {
    ScopedFaultInjection injection(spec);
    first = RunBoxJoin(16, 1024);
  }
  const ResilienceTelemetrySnapshot first_ledger = ResilienceTelemetry::Snapshot();
  ResilienceTelemetry::Reset();
  BoxRun second;
  {
    ScopedFaultInjection injection(spec);
    second = RunBoxJoin(16, 1024);
  }
  const ResilienceTelemetrySnapshot second_ledger = ResilienceTelemetry::Snapshot();
  EXPECT_TRUE(BoxRunsIdentical(first, second));
  EXPECT_EQ(first_ledger.crashes, second_ledger.crashes);
  EXPECT_EQ(first_ledger.rows_dropped, second_ledger.rows_dropped);
  EXPECT_EQ(first_ledger.rows_duplicated, second_ledger.rows_duplicated);
  EXPECT_EQ(first_ledger.retries, second_ledger.retries);
  EXPECT_EQ(first_ledger.tuples_resent, second_ledger.tuples_resent);
}

// Recovery must compose with the query service: a full client workload —
// many concurrent in-flight pipelines on leased sub-clusters — run under a
// heavy mixed fault schedule yields the exact digest of the fault-free
// run. Every completion tick, latency percentile, cache counter, and load
// fingerprint survives the chaos.
TEST_F(ChaosTest, QueryServiceSurvivesCrashStormBitIdentically) {
  const auto run_service = [] {
    service::ServiceConfig config;
    config.total_servers = 128;
    config.servers_per_query = 32;
    config.workload.clients = 4;
    config.workload.queries_per_client = 5;
    config.workload.seed = 0xCAFE;
    service::QueryService svc(config);
    svc.RegisterQuery("line3", catalog::Line3(),
                      workload::MatchingInstance(catalog::Line3(), 512));
    svc.RegisterQuery("triangle", catalog::Triangle(),
                      workload::MatchingInstance(catalog::Triangle(), 512));
    svc.RegisterQuery("star3", catalog::Star(3),
                      workload::MatchingInstance(catalog::Star(3), 512));
    return svc.Run();
  };

  ThreadPool::SetGlobalThreads(4);
  const service::ServiceRunStats clean = run_service();

  FaultSpec spec;
  spec.seed = 0xBAD5EED;
  spec.crash_rate = 0.15;
  spec.drop_rate = 0.01;
  spec.duplicate_rate = 0.01;
  service::ServiceRunStats faulted;
  {
    ScopedFaultInjection injection(spec);
    faulted = run_service();
  }
  const ResilienceTelemetrySnapshot ledger = ResilienceTelemetry::Snapshot();
  EXPECT_GT(ledger.crashes, 0u);  // the storm must actually hit the pipelines
  EXPECT_EQ(clean.Digest(), faulted.Digest());

  // And the chaotic run itself is thread-count invariant.
  ThreadPool::SetGlobalThreads(1);
  service::ServiceRunStats faulted_serial;
  {
    ScopedFaultInjection injection(spec);
    faulted_serial = run_service();
  }
  EXPECT_EQ(faulted.Digest(), faulted_serial.Digest());
}

// The plan chooser must be blind to the fault layer: a crash-storm run
// makes the *same* plan decision for every admitted query as the clean
// run — same strategy, same estimated load, same chooser tallies — and
// the full run digest (which embeds both per-outcome strategy and the
// planner ledger) stays byte-identical.
TEST_F(ChaosTest, CrashStormLeavesPlanDecisionsIdentical) {
  const auto run_service = [] {
    service::ServiceConfig config;
    config.total_servers = 128;
    config.servers_per_query = 32;
    config.workload.clients = 3;
    config.workload.queries_per_client = 6;
    config.workload.seed = 0x9A5;
    service::QueryService svc(config);
    // A menu that exercises every strategy: connected acyclic matching
    // (output-balanced territory), a skewed star (multi-round territory),
    // and a cyclic triangle (one-round only).
    svc.RegisterQuery("path3", catalog::Path(3),
                      workload::MatchingInstance(catalog::Path(3), 512));
    Rng rng(0x57AB);
    svc.RegisterQuery("star3", catalog::Star(3),
                      workload::ZipfInstance(catalog::Star(3), 512, 512, 1.1, &rng));
    svc.RegisterQuery("triangle", catalog::Triangle(),
                      workload::MatchingInstance(catalog::Triangle(), 512));
    return svc.Run();
  };

  ThreadPool::SetGlobalThreads(4);
  const service::ServiceRunStats clean = run_service();

  FaultSpec spec;
  spec.seed = 0x570A4;
  spec.crash_rate = 0.2;
  spec.drop_rate = 0.01;
  spec.duplicate_rate = 0.01;
  service::ServiceRunStats stormed;
  {
    ScopedFaultInjection injection(spec);
    stormed = run_service();
  }
  const ResilienceTelemetrySnapshot ledger = ResilienceTelemetry::Snapshot();
  EXPECT_GT(ledger.crashes, 0u);  // the storm must actually hit the pipelines

  // Decision-level comparison first, so a failure names the query whose
  // plan flipped rather than pointing at an opaque digest diff.
  ASSERT_EQ(clean.outcomes.size(), stormed.outcomes.size());
  for (size_t i = 0; i < clean.outcomes.size(); ++i) {
    EXPECT_EQ(clean.outcomes[i].strategy, stormed.outcomes[i].strategy) << i;
    EXPECT_EQ(clean.outcomes[i].planner_est_load, stormed.outcomes[i].planner_est_load)
        << i;
  }
  EXPECT_EQ(clean.planner.decisions_one_round, stormed.planner.decisions_one_round);
  EXPECT_EQ(clean.planner.decisions_acyclic, stormed.planner.decisions_acyclic);
  EXPECT_EQ(clean.planner.decisions_output_balanced,
            stormed.planner.decisions_output_balanced);
  EXPECT_EQ(clean.planner.cache_hits, stormed.planner.cache_hits);
  EXPECT_EQ(clean.planner.cache_misses, stormed.planner.cache_misses);
  EXPECT_GT(clean.planner.TotalDecisions(), 0u);
  EXPECT_EQ(clean.Digest(), stormed.Digest());
}

}  // namespace
}  // namespace coverpack
