#include "relation/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "query/catalog.h"
#include "workload/generators.h"

namespace coverpack {
namespace {

TEST(IoTest, RoundTripSingleRelation) {
  Hypergraph q = catalog::Line3();
  Rng rng(1);
  Relation original = workload::UniformRandom(q.edge(0).attrs, 100, 50, &rng);
  std::stringstream buffer;
  WriteCsv(buffer, q, original);
  Relation loaded = ReadCsv(buffer, q, q.edge(0).attrs);
  EXPECT_TRUE(loaded.SameContentAs(original));
}

TEST(IoTest, HeaderNamesAttributes) {
  Hypergraph q = catalog::Line3();
  Relation r(q.edge(1).attrs);  // R2(B, C)
  r.AppendRow({7, 9});
  std::stringstream buffer;
  WriteCsv(buffer, q, r);
  std::string text = buffer.str();
  EXPECT_EQ(text, "B,C\n7,9\n");
}

TEST(IoTest, ReadsReorderedColumns) {
  Hypergraph q = catalog::Line3();
  std::stringstream buffer("C,B\n9,7\n");
  Relation loaded = ReadCsv(buffer, q, q.edge(1).attrs);
  ASSERT_EQ(loaded.size(), 1u);
  AttrId b = *q.FindAttribute("B");
  AttrId c = *q.FindAttribute("C");
  EXPECT_EQ(loaded.At(0, b), 7u);
  EXPECT_EQ(loaded.At(0, c), 9u);
}

TEST(IoTest, RejectsWrongHeader) {
  Hypergraph q = catalog::Line3();
  std::stringstream buffer("A,Z\n1,2\n");
  EXPECT_DEATH(ReadCsv(buffer, q, q.edge(0).attrs), "attribute");
}

TEST(IoTest, InstanceRoundTripOnDisk) {
  Hypergraph q = catalog::Triangle();
  Rng rng(5);
  Instance original = workload::UniformInstance(q, 60, 12, &rng);

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "coverpack_io_test";
  std::filesystem::create_directories(dir);
  EXPECT_EQ(SaveInstance(dir.string(), q, original), 3u);
  Instance loaded = LoadInstance(dir.string(), q);
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    EXPECT_TRUE(loaded[e].SameContentAs(original[e])) << q.edge(e).name;
  }
  std::filesystem::remove_all(dir);
}

TEST(IoTest, EmptyRelationRoundTrip) {
  Hypergraph q = catalog::Line3();
  Relation empty(q.edge(0).attrs);
  std::stringstream buffer;
  WriteCsv(buffer, q, empty);
  Relation loaded = ReadCsv(buffer, q, q.edge(0).attrs);
  EXPECT_TRUE(loaded.empty());
}

}  // namespace
}  // namespace coverpack
