/// \file cluster_profile.h
/// \brief A first-class, mutable description of the simulated fleet:
/// per-server speeds plus membership epochs.
///
/// The paper's MPC model assumes p identical servers. "Parallel Query
/// Processing with Heterogeneous Machines" (PAPERS.md) shows that load
/// shares proportional to server speed preserve the optimal-load exponent
/// on heterogeneous fleets, so this module turns the cost model from a
/// post-hoc simulation into a *placement policy* (ROADMAP item 4):
///
///  * **Speeds** — every server slot has a speed, a pure function of the
///    SpeedSpec and the slot id (content-keyed, exactly like FaultPlan's
///    straggler schedule): two profiles built from equal specs agree on
///    every slot, at any thread count, with no stored state.
///  * **Epochs** — an ElasticSpec schedules servers joining/leaving at
///    round boundaries. The profile resolves the schedule into membership
///    epochs up front: joins activate the lowest inactive slot ids, leaves
///    deactivate the highest active ones, so the whole membership history
///    is deterministic given (base_p, schedule).
///
/// Nothing here touches relations or trackers; routing and migration live
/// in routing.h / elastic.h.

#ifndef COVERPACK_CLUSTER_CLUSTER_PROFILE_H_
#define COVERPACK_CLUSTER_CLUSTER_PROFILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace coverpack {
namespace cluster {

/// How per-slot speeds are generated. Content-keyed: the speed of slot s
/// is a pure function of this spec and s.
struct SpeedSpec {
  enum class Kind : uint8_t {
    kUniform,    ///< every slot at speed 1
    kHalves,     ///< alternating slots at speed `param` / speed 1
    kGeometric,  ///< speeds spread geometrically in [1, param], period 8
    kSeeded,     ///< hash-random speeds in [1, 8), keyed by (seed, slot)
    kExplicit,   ///< explicit per-slot list, cycled over the slot space
  };

  Kind kind = Kind::kUniform;
  double param = 1.0;   ///< kHalves: fast speed; kGeometric: max speed
  uint64_t seed = 0;    ///< kSeeded: hash key
  std::vector<double> explicit_speeds;  ///< kExplicit only; all > 0

  /// Canonical flag-value form ("uniform", "halves:4", "1,2,4", ...).
  std::string ToString() const;
};

/// Parses a --speeds flag value: "uniform", "halves:<speed>",
/// "geom:<max>", "seeded:<seed>", or a comma list of positive speeds.
/// nullopt on malformed input.
std::optional<SpeedSpec> ParseSpeedSpec(const std::string& text);

/// One membership event: `delta` servers join (> 0) or leave (< 0) at the
/// boundary before `round` begins. Rounds are >= 1 (round 0 is the initial
/// membership).
struct ElasticEvent {
  uint32_t round = 0;
  int32_t delta = 0;
};

/// A join/leave schedule, sorted by round (one merged event per round).
struct ElasticSpec {
  std::vector<ElasticEvent> events;

  bool empty() const { return events.empty(); }
  /// Canonical flag-value form ("none", "+2@1,-1@3", ...).
  std::string ToString() const;
};

/// Parses an --elastic flag value: "none" or a comma list of
/// "+<k>@<round>" / "-<k>@<round>" events with round >= 1. nullopt on
/// malformed input.
std::optional<ElasticSpec> ParseElasticSpec(const std::string& text);

/// Membership of one epoch: the active slot ids, ascending, valid for
/// rounds [first_round, next epoch's first_round).
struct Epoch {
  uint32_t first_round = 0;
  std::vector<uint32_t> active;
};

/// The resolved fleet description. Immutable after construction; all
/// queries are pure, so profiles are safe to share across threads.
class ClusterProfile {
 public:
  /// Resolves `schedule` against an initial membership of slots
  /// [0, base_p). Leaves may never drop the fleet below one server.
  ClusterProfile(uint32_t base_p, const SpeedSpec& speeds, const ElasticSpec& schedule);

  uint32_t base_p() const { return base_p_; }
  /// Size of the slot id space: every slot that is ever active.
  uint32_t num_slots() const { return num_slots_; }
  const SpeedSpec& speed_spec() const { return speed_spec_; }
  const std::vector<Epoch>& epochs() const { return epochs_; }

  /// Raw (unnormalized) speed of one slot; > 0, pure in (spec, slot).
  double SpeedOfSlot(uint32_t slot) const;

  /// The epoch covering `round`.
  const Epoch& EpochForRound(uint32_t round) const;

  /// Raw speeds of an epoch's active slots, aligned with epoch.active.
  std::vector<double> ActiveSpeeds(const Epoch& epoch) const;

  /// Like ActiveSpeeds but scaled to mean 1, so makespans computed from
  /// different epochs (or different p) share one unit of work.
  std::vector<double> NormalizedActiveSpeeds(const Epoch& epoch) const;

  /// Raw speeds of every slot, aligned with slot ids [0, num_slots).
  std::vector<double> SlotSpeeds() const;

  /// Deterministic identity of the whole profile: equal keys iff equal
  /// (base_p, speed spec, schedule). Mirrors FaultPlan's content keying.
  uint64_t ContentKey() const;

 private:
  uint32_t base_p_;
  uint32_t num_slots_;
  SpeedSpec speed_spec_;
  ElasticSpec schedule_;
  std::vector<Epoch> epochs_;
};

/// Largest-remainder apportionment: integer shares summing to
/// `total_units`, proportional to `weights` (all > 0), ties broken by
/// lower index. Deterministic; the workhorse behind speed-weighted
/// scatter targets, migration targets, and virtual-server placement.
std::vector<uint64_t> ProportionalShares(const std::vector<double>& weights,
                                         uint64_t total_units);

}  // namespace cluster
}  // namespace coverpack

#endif  // COVERPACK_CLUSTER_CLUSTER_PROFILE_H_
